// detect::serve::server — a sessioned serving front-end over the sharded
// executor.
//
// The server turns the one-shot script/run/check executor workflow into a
// long-lived multi-client service:
//
//   ingest      submit() validates the op, charges admission, stamps it with
//               an admission ticket, and appends it to its home shard's
//               bounded queue. Queues drain in *batch rounds*: each round
//               pops up to batch_max_ops per shard (in arrival order),
//               scripts them onto the executor preserving per-session
//               per-shard program order, and drives one executor::run().
//   admission   Three independent brakes, all returning the retryable
//               `overloaded` status: a per-shard queue high-water mark, a
//               per-session token bucket (refilled each round), and a global
//               admitted-but-incomplete cap. shutdown() flips admission to
//               `shutting_down` and drains what was already admitted.
//   completion  After each round the server scans the executor's merged
//               event log: a `response` — or a `recover_result(linearized)`
//               for an op whose response was lost to a crash — completes the
//               matching inflight ticket, keyed by (shard, pid, client_seq).
//               A duplicate completion (response persisted, then the crash
//               landed before the client's done_seq store, so recovery
//               re-reports it) is deduplicated by the ticket erase: first
//               event wins, callbacks fire exactly once. The executor runs
//               fail_policy::retry, so every admitted op eventually
//               completes — crashes delay completions, never drop them.
//   rebalance   A serve::rebalancer watches per-shard op-load windows;
//               sustained imbalance triggers executor::migrate() calls
//               between rounds (the quiescent point), each move logged into
//               serve::stats. Objects with queued-but-unscripted ops are
//               frozen for the cycle — their queue position encodes their
//               home shard, which therefore must not change under them.
//
// Two operating modes, one code path:
//   deterministic (default)  no background thread; the caller turns the
//               crank with pump()/drain(). Latency is measured in batch
//               rounds — a logical clock — so a seeded workload replays to
//               identical stats. This is the soak-test and CI mode.
//   threaded    a dispatcher thread runs rounds when a shard batch fills or
//               batch_window elapses with work pending. Latency is wall-
//               clock microseconds. submit() stays non-blocking either way.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "api/executor.hpp"
#include "serve/rebalancer.hpp"
#include "serve/session.hpp"
#include "serve/stats.hpp"

namespace detect::serve {

struct serve_config {
  // ---- executor (always the sharded backend, fail_policy::retry) ----------
  int shards = 4;
  int procs = 8;
  api::placement_policy placement;
  /// Driver-pool size passed through to the executor (0 = auto, env
  /// override; see executor::builder::pool_threads).
  int pool_threads = 0;
  /// Per-world step budget. Worlds count steps cumulatively across rounds,
  /// so a serving process needs a budget sized for its lifetime, not one
  /// run — hence the enormous default.
  std::uint64_t max_steps = 1ULL << 62;
  std::optional<std::uint64_t> sched_seed;  // nullopt → round robin
  sched::sched_policy sched;
  nvm::persist_model persist = nvm::persist_model::strict;
  /// Store-buffer visibility model the serving worlds run under (sc / tso /
  /// pso; see wmm::visibility_model). Non-sc serving is a stress mode: the
  /// scheduler interleaves buffered-store drains with op steps, so durably
  /// linearizable objects get exercised under delayed cross-process
  /// visibility while the serving contract (every admitted op completes)
  /// stays intact.
  wmm::visibility_model visibility = wmm::visibility_model::sc;
  /// Crash injection: a fresh plan per batch round crashing with `rate`
  /// before each step, at most `max` times per round.
  std::optional<std::tuple<std::uint64_t, double, std::uint64_t>> crash_random;

  // ---- ingest / batching ---------------------------------------------------
  /// Batch size trigger: a round takes at most this many ops per shard.
  std::size_t batch_max_ops = 256;
  /// Deadline trigger (threaded mode): run a round at latest this long
  /// after work arrived, even if no batch filled.
  std::chrono::microseconds batch_window{500};

  // ---- admission -----------------------------------------------------------
  /// Per-shard pending-queue high-water mark; submits beyond it bounce.
  std::size_t queue_high_water = 1024;
  /// Per-session token bucket: capacity, and tokens restored per round.
  double session_tokens = 256.0;
  double session_refill = 256.0;
  /// Global cap on admitted-but-incomplete ops across all sessions.
  std::size_t global_inflight = 1u << 20;

  rebalance_policy rebalance;

  /// false = deterministic pump()/drain() mode; true = dispatcher thread.
  bool threaded = false;
};

class server {
 public:
  class builder;

  explicit server(serve_config cfg);
  ~server();  // graceful: shutdown() if the caller has not already

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  // ---- sessions & objects --------------------------------------------------

  session open_session();

  /// Register a durable object (registry kind) with the service. Objects
  /// route to shards by the configured placement policy and may be moved
  /// later by the rebalancer. Blocks while a batch round is executing.
  api::object_handle add(const std::string& kind,
                         const api::object_params& params = {});

  api::reg add_reg(api::value_t init = 0) {
    return api::reg(add("reg", {.init = init}));
  }
  api::cas add_cas(api::value_t init = 0) {
    return api::cas(add("cas", {.init = init}));
  }
  api::counter add_counter(api::value_t init = 0) {
    return api::counter(add("counter", {.init = init}));
  }
  api::queue add_queue(std::size_t capacity = 64) {
    return api::queue(add("queue", {.capacity = capacity}));
  }
  api::stack add_stack(std::size_t capacity = 64) {
    return api::stack(add("stack", {.capacity = capacity}));
  }
  api::max_reg add_max_reg() { return api::max_reg(add("max_reg")); }

  // ---- turning the crank ---------------------------------------------------

  /// Deterministic mode: run one batch round. Returns false (and does
  /// nothing) when no ops are pending. Throws std::logic_error in threaded
  /// mode, where the dispatcher owns the crank.
  bool pump();

  /// Run/wait until every admitted op has completed: loops pump() in
  /// deterministic mode, blocks on the dispatcher in threaded mode.
  void drain();

  /// Graceful shutdown: new submits get `shutting_down`, already-admitted
  /// work drains to completion, the dispatcher (if any) exits. Idempotent;
  /// the destructor calls it.
  void shutdown();

  // ---- observation ---------------------------------------------------------

  stats snapshot() const;

  /// Durable linearizability + detectability of everything served so far,
  /// per object, including across migrations. Blocks while a round runs.
  /// The options carry the node budget and the per-object check fan-out
  /// (hist::check_options::jobs) — a long soak's certificate can use the
  /// same parallel driver the fuzzer does.
  hist::check_result check(const hist::check_options& opt = {}) const;

  /// Deprecated pre-check_options form (thin shim; prefer check(options)).
  hist::check_result check(std::size_t node_budget) const {
    hist::check_options opt;
    opt.node_budget = node_budget;
    return check(opt);
  }

  /// The executor's current object→shard assignment (reflects rebalancer
  /// moves).
  api::placement_policy current_assignment() const;

  /// The merged event log served so far.
  std::vector<hist::event> events() const;

  int shards() const noexcept { return cfg_.shards; }
  int procs() const noexcept { return cfg_.procs; }
  const serve_config& config() const noexcept { return cfg_; }

 private:
  friend class session;

  struct pending_op {
    std::uint64_t ticket = 0;
    std::uint64_t session = 0;
    int pid = 0;
    hist::op_desc op;
    completion_fn cb;
    std::uint64_t submit_tick = 0;
  };

  struct session_record {
    std::uint64_t id = 0;
    int pid = 0;
    double tokens = 0.0;
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
  };

  struct inflight_rec {
    std::uint64_t ticket = 0;
    std::uint64_t session = 0;
    std::uint32_t object = 0;
    completion_fn cb;
    std::uint64_t submit_tick = 0;
  };

  // (shard, pid, client_seq) — the executor's per-world numbering, which is
  // exactly what response/recover events carry. Safe as a key because an
  // object's home shard is stable from admission to scripting (queued
  // objects are frozen against moves).
  using inflight_key = std::tuple<int, int, std::uint64_t>;

  submit_status submit(std::uint64_t session_id, const hist::op_desc& op,
                       completion_fn cb);
  /// Copy of the session's record (default-constructed for unknown ids) —
  /// the backing store of the session handle's counter accessors.
  session_record session_snapshot(std::uint64_t id) const;

  /// One batch round: collect → script → run → complete → refill →
  /// rebalance. Returns false when no ops were pending.
  bool run_round();
  void dispatcher_main();
  bool batch_ready_locked() const;
  std::uint64_t now_tick_locked() const;

  serve_config cfg_;
  std::unique_ptr<api::executor> ex_;
  std::chrono::steady_clock::time_point start_;

  /// Serializes all executor access (rounds, add, check, migration).
  /// Ordering: exec_mu_ before mu_, never the reverse.
  mutable std::mutex exec_mu_;
  /// Guards every field below.
  mutable std::mutex mu_;
  std::condition_variable cv_work_;     // submit → dispatcher
  std::condition_variable cv_drained_;  // round done → drain() waiters

  bool stopping_ = false;
  std::uint64_t next_session_ = 0;
  std::uint64_t next_ticket_ = 0;

  std::map<std::uint64_t, session_record> sessions_;
  std::vector<std::deque<pending_op>> queues_;  // per shard, arrival order
  std::size_t pending_total_ = 0;
  std::map<inflight_key, inflight_rec> inflight_;
  std::vector<std::map<int, std::uint64_t>> seq_;  // per shard: pid → count
  std::map<std::uint32_t, int> homes_;             // object → current shard
  std::size_t scanned_events_ = 0;

  rebalancer reb_;

  // Stats accumulators (all under mu_).
  std::uint64_t submitted_ = 0, admitted_ = 0, completed_ = 0;
  std::uint64_t rejected_queue_ = 0, rejected_tokens_ = 0;
  std::uint64_t rejected_global_ = 0, rejected_shutdown_ = 0;
  std::uint64_t rejected_invalid_ = 0;
  std::uint64_t rounds_ = 0, batches_ = 0, batch_ops_ = 0, max_batch_ = 0;
  std::uint64_t crashes_ = 0, steps_ = 0;
  std::uint64_t nvm_cells_ = 0, nvm_bytes_ = 0;
  std::vector<shard_stats> shard_stats_;
  std::vector<move_record> moves_;
  latency_histogram lat_;

  std::thread dispatcher_;
};

class server::builder {
 public:
  builder& shards(int k) { cfg_.shards = k; return *this; }
  builder& procs(int n) { cfg_.procs = n; return *this; }
  builder& placement(api::placement_policy p) {
    cfg_.placement = std::move(p);
    return *this;
  }
  builder& pool_threads(int n) { cfg_.pool_threads = n; return *this; }
  builder& max_steps(std::uint64_t n) { cfg_.max_steps = n; return *this; }
  builder& seed(std::uint64_t s) { cfg_.sched_seed = s; return *this; }
  builder& schedule(sched::sched_policy p) {
    cfg_.sched = std::move(p);
    return *this;
  }
  builder& persist(nvm::persist_model m) { cfg_.persist = m; return *this; }
  builder& visibility(wmm::visibility_model m) {
    cfg_.visibility = m;
    return *this;
  }
  builder& crash_random(std::uint64_t s, double rate, std::uint64_t max) {
    cfg_.crash_random = {s, rate, max};
    return *this;
  }
  builder& batch_max_ops(std::size_t n) { cfg_.batch_max_ops = n; return *this; }
  builder& batch_window(std::chrono::microseconds w) {
    cfg_.batch_window = w;
    return *this;
  }
  builder& queue_high_water(std::size_t n) {
    cfg_.queue_high_water = n;
    return *this;
  }
  builder& session_tokens(double capacity, double refill) {
    cfg_.session_tokens = capacity;
    cfg_.session_refill = refill;
    return *this;
  }
  builder& global_inflight(std::size_t n) { cfg_.global_inflight = n; return *this; }
  builder& rebalance(rebalance_policy p) { cfg_.rebalance = p; return *this; }
  builder& threaded(bool on = true) { cfg_.threaded = on; return *this; }

  std::unique_ptr<server> build() const {
    return std::make_unique<server>(cfg_);
  }

 private:
  serve_config cfg_;
};

}  // namespace detect::serve
