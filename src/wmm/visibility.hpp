// detect::wmm — relaxed store-buffer visibility between live processes,
// orthogonal to the nvm persistency axis.
//
// The paper's constructions are proved under interleaving (sequentially
// consistent) semantics; real hardware is weaker. This layer models the two
// classic store-buffer relaxations on the simulated shared cells:
//
//   * sc  — no buffering; every store is globally visible the step it
//     executes. The historical behavior, and the default everywhere.
//   * tso — one FIFO store buffer per process. A buffered store is visible
//     to its own process immediately (store-to-load forwarding) but reaches
//     the other processes only when the buffer head *drains*. Drains retire
//     in program order.
//   * pso — like tso, but stores to *different* cells may drain out of
//     order: each distinct buffered cell is its own drainable slot (stores
//     to the same cell still retire FIFO).
//
// Drains are first-class schedulable steps: `sim::world` exposes one
// pseudo-pid per drainable slot alongside the real pids, so any
// `sched::strategy` (round_robin / uniform_random / pct / scripted replay)
// interleaves drains like ordinary steps and the shrinker can canonicalize
// them away. Composition with `nvm::persist_model` is drain → persist: a
// store becomes crash-persistent (strict) or journal-pending (buffered)
// only when it drains, never while it sits in a store buffer — a crash
// discards undrained stores outright, exactly like real hardware losing its
// store buffers.
//
// Atomic read-modify-writes (CAS / exchange), flushes, fences, and the
// runtime's control checkpoints behave as on real TSO: they do not execute
// past a non-empty store buffer. The world drains the issuing process's
// buffer before granting such a step (see sim::world), which also keeps
// every response-logging event ordered after the stores it reports — the
// property that lets all SC-crash-correct objects stay correct under tso
// and pso.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace detect::nvm {
class persistent_base;
}

namespace detect::wmm {

/// Visibility order between live processes. See file comment.
enum class visibility_model : std::uint8_t { sc, tso, pso };

/// Stable wire name ("sc" / "tso" / "pso").
inline const char* visibility_name(visibility_model m) noexcept {
  switch (m) {
    case visibility_model::tso:
      return "tso";
    case visibility_model::pso:
      return "pso";
    default:
      return "sc";
  }
}

/// Inverse of visibility_name; false on unknown names (`out` untouched).
inline bool visibility_from_name(const std::string& name,
                                 visibility_model& out) noexcept {
  if (name == "sc") {
    out = visibility_model::sc;
    return true;
  }
  if (name == "tso") {
    out = visibility_model::tso;
    return true;
  }
  if (name == "pso") {
    out = visibility_model::pso;
    return true;
  }
  return false;
}

/// One per-process FIFO store buffer. Entries are type-erased: the cell,
/// the raw value bytes, and an apply function the owning pcell<T> provides
/// (drain = replay the store against the cell with full persistency
/// semantics). Values are capped at 16 bytes — the widest atomic cell the
/// simulator supports (x86-64 cmpxchg16b).
class store_buffer {
 public:
  static constexpr std::size_t k_max_value = 16;

  using apply_fn = void (*)(nvm::persistent_base&, const unsigned char*);

  struct entry {
    nvm::persistent_base* cell;
    apply_fn apply;
    std::uint8_t size;
    unsigned char raw[k_max_value];
  };

  bool empty() const noexcept { return q_.empty(); }
  std::size_t size() const noexcept { return q_.size(); }
  /// Deepest the buffer has ever been (until discard/reset).
  std::size_t high_water() const noexcept { return high_water_; }

  /// Append a store. `n` must be <= k_max_value (the pcell caller
  /// static_asserts this).
  void push(nvm::persistent_base& cell, apply_fn apply, const void* bytes,
            std::size_t n);

  /// Store-to-load forwarding: copy the *newest* buffered value for `cell`
  /// into `out` (n bytes) and return true; false when no store to `cell` is
  /// buffered (the caller reads the globally visible value instead).
  bool forward(const nvm::persistent_base& cell, void* out,
               std::size_t n) const noexcept;

  /// Number of independently drainable slots under `m`: tso exposes only
  /// the FIFO head (0 or 1), pso one slot per distinct buffered cell.
  std::size_t slots(visibility_model m) const noexcept;

  /// Drain one store of slot `slot` (see slots()): apply it to its cell and
  /// pop it. tso: the FIFO head. pso: the oldest store to the slot-th
  /// distinct cell, distinct cells enumerated in first-occurrence order.
  void drain_slot(visibility_model m, std::size_t slot);

  /// Drain everything, oldest first (fences, explicit drain points, and
  /// end-of-run quiescence).
  void drain_all();

  /// Crash: undrained stores never happened. Keeps the high-water mark.
  void discard() noexcept { q_.clear(); }

 private:
  std::vector<entry> q_;  // front = oldest; tiny in practice
  std::size_t high_water_ = 0;
};

}  // namespace detect::wmm
