#include "sim/world.hpp"

#include <algorithm>
#include <stdexcept>

namespace detect::sim {

// ---------------------------------------------------------------------------
// process

process::process(world& w, int pid, std::string name)
    : world_(&w), pid_(pid), name_(std::move(name)) {
  thread_ = std::thread([this] { thread_main(); });
}

process::~process() {
  {
    std::scoped_lock lock(world_->mu_);
    stop_ = true;
  }
  world_->cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void process::thread_main() {
  nvm::tls_hook() = this;  // all NVM accesses on this thread yield to us
  std::unique_lock lock(world_->mu_);
  for (;;) {
    world_->cv_.wait(lock, [&] { return stop_ || state_ == pstate::launching; });
    if (stop_) {
      state_ = pstate::stopped;
      return;
    }
    std::function<void()> task = std::move(task_);
    task_ = nullptr;
    bool interrupted = false;
    std::exception_ptr error;
    lock.unlock();
    try {
      task();
    } catch (const nvm::crashed&) {
      interrupted = true;
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    task_interrupted_ = interrupted;
    task_error_ = error;
    state_ = pstate::done_task;
    world_->cv_.notify_all();
  }
}

void process::before_access(nvm::access kind) {
  std::unique_lock lock(world_->mu_);
  pending_kind_ = kind;
  state_ = pstate::at_yield;
  world_->cv_.notify_all();
  world_->cv_.wait(lock, [&] {
    return state_ == pstate::stepping || crash_me_ || stop_;
  });
  if (crash_me_ || stop_) {
    crash_me_ = false;
    // Unwind: volatile local state of the operation is lost here.
    throw nvm::crashed{};
  }
  // state_ == stepping: perform the access and keep running until the next
  // yield; the scheduler is blocked until we get back here or finish.
}

// ---------------------------------------------------------------------------
// world

world::world(int nprocs, world_config cfg) : cfg_(cfg) {
  if (nprocs <= 0) throw std::invalid_argument("world: nprocs must be >= 1");
  procs_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    procs_.push_back(std::make_unique<process>(*this, i, "p" + std::to_string(i)));
  }
}

world::~world() = default;

void world::absorb_done_locked(process& p) {
  if (p.state_ != process::pstate::done_task) return;
  p.state_ = process::pstate::idle;
  if (p.task_error_) {
    std::exception_ptr e = p.task_error_;
    p.task_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void world::quiesce_locked(std::unique_lock<std::mutex>& lock) {
  cv_.wait(lock, [&] {
    for (auto& p : procs_) {
      if (p->state_ == process::pstate::launching ||
          p->state_ == process::pstate::stepping) {
        return false;
      }
    }
    return true;
  });
  for (auto& p : procs_) absorb_done_locked(*p);
}

void world::submit(int pid, std::function<void()> task) {
  std::unique_lock lock(mu_);
  process& p = *procs_.at(static_cast<std::size_t>(pid));
  quiesce_locked(lock);
  if (p.state_ != process::pstate::idle) {
    throw std::logic_error("submit: process " + p.name_ + " already has a task");
  }
  p.task_ = std::move(task);
  p.task_interrupted_ = false;
  p.state_ = process::pstate::launching;
  cv_.notify_all();
}

std::vector<int> world::runnable() {
  std::unique_lock lock(mu_);
  quiesce_locked(lock);
  std::vector<int> out;
  for (auto& p : procs_) {
    if (p->state_ == process::pstate::at_yield) out.push_back(p->pid_);
  }
  return out;
}

bool world::busy() {
  std::unique_lock lock(mu_);
  quiesce_locked(lock);
  for (auto& p : procs_) {
    if (p->state_ == process::pstate::at_yield) return true;
  }
  return false;
}

void world::step(int pid) {
  std::unique_lock lock(mu_);
  quiesce_locked(lock);
  process& p = *procs_.at(static_cast<std::size_t>(pid));
  if (p.state_ != process::pstate::at_yield) {
    throw std::logic_error("step: process " + p.name_ + " is not runnable");
  }
  ++step_no_;
  p.state_ = process::pstate::stepping;
  cv_.notify_all();
  cv_.wait(lock, [&] {
    return p.state_ == process::pstate::at_yield ||
           p.state_ == process::pstate::done_task;
  });
  absorb_done_locked(p);
}

nvm::access world::pending_access(int pid) {
  std::unique_lock lock(mu_);
  quiesce_locked(lock);
  process& p = *procs_.at(static_cast<std::size_t>(pid));
  if (p.state_ != process::pstate::at_yield) {
    throw std::logic_error("pending_access: process is not at a yield");
  }
  return p.pending_kind_;
}

bool world::last_task_interrupted(int pid) {
  std::scoped_lock lock(mu_);
  return procs_.at(static_cast<std::size_t>(pid))->task_interrupted_;
}

void world::crash() {
  std::unique_lock lock(mu_);
  quiesce_locked(lock);
  bool any = false;
  for (auto& p : procs_) {
    if (p->state_ == process::pstate::at_yield) {
      p->crash_me_ = true;
      any = true;
    }
  }
  if (any) {
    cv_.notify_all();
    cv_.wait(lock, [&] {
      for (auto& p : procs_) {
        if (p->state_ == process::pstate::at_yield ||
            p->state_ == process::pstate::stepping ||
            p->state_ == process::pstate::launching) {
          return false;
        }
      }
      return true;
    });
  }
  for (auto& p : procs_) absorb_done_locked(*p);
  // All volatile frames are gone; now apply the memory model's crash rule,
  // then advance the system epoch durably (the hook is null on the driving
  // thread, so these are direct accesses).
  std::uint64_t e = epoch_.peek();
  domain_.crash_reset();
  if (domain_.last_crash_lost()) lost_persistence_ = true;
  epoch_.store(e + 1);
  epoch_.flush();
}

run_report world::run(scheduler& sched, crash_plan* crashes,
                      const std::function<void()>& on_crash_done) {
  run_report rep;
  for (;;) {
    std::vector<int> ready = runnable();
    if (ready.empty()) break;
    if (step_no_ >= cfg_.max_steps) {
      rep.hit_step_limit = true;
      rep.limit_note = "step limit " + std::to_string(cfg_.max_steps) +
                       " hit under scheduler " + sched.describe();
      break;
    }
    if (crashes != nullptr && crashes->should_crash(step_no_)) {
      crash();
      ++rep.crashes;
      if (on_crash_done) on_crash_done();
      continue;
    }
    int pid = sched.pick(ready, step_no_);
    step(pid);
    ++rep.steps;
  }
  rep.steps = step_no_;
  rep.lost_persistence = lost_persistence_;
  return rep;
}

// ---------------------------------------------------------------------------
// policies

int round_robin_scheduler::pick(const std::vector<int>& runnable,
                                std::uint64_t) {
  int pid = runnable[next_ % runnable.size()];
  ++next_;
  return pid;
}

int random_scheduler::pick(const std::vector<int>& runnable, std::uint64_t) {
  return runnable[next_rand(state_) % runnable.size()];
}

int scripted_scheduler::pick(const std::vector<int>& runnable, std::uint64_t) {
  if (pos_ < script_.size()) {
    int want = script_[pos_++];
    if (std::find(runnable.begin(), runnable.end(), want) != runnable.end()) {
      return want;
    }
  }
  return runnable.front();
}

bool crash_at_steps::should_crash(std::uint64_t step_no) {
  for (std::uint64_t& a : at_) {
    if (a == step_no) {
      a = static_cast<std::uint64_t>(-1);  // fire once
      return true;
    }
  }
  return false;
}

bool random_crashes::should_crash(std::uint64_t) {
  if (left_ == 0) return false;
  double u = static_cast<double>(next_rand(state_) >> 11) / 9007199254740992.0;
  if (u < rate_) {
    --left_;
    return true;
  }
  return false;
}

}  // namespace detect::sim
