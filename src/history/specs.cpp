#include "history/specs.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace detect::hist {

namespace {
[[noreturn]] void bad_op(const char* spec_name, const op_desc& op) {
  throw std::invalid_argument(std::string(spec_name) +
                              ": unsupported operation " + op.to_string());
}
}  // namespace

value_t register_spec::apply(const op_desc& op) {
  switch (op.code) {
    case opcode::reg_read:
      return value_;
    case opcode::reg_write:
      value_ = op.a;
      return k_ack;
    case opcode::swap: {
      value_t old = value_;
      value_ = op.a;
      return old;
    }
    default:
      bad_op("register", op);
  }
}

value_t lock_spec::apply(const op_desc& op) {
  switch (op.code) {
    case opcode::lock_try:
      if (owner_ == -1) {
        owner_ = op.a;
        return k_true;
      }
      return k_false;
    case opcode::lock_release:
      if (owner_ == op.a) {
        owner_ = -1;
        return k_true;
      }
      return k_false;
    default:
      bad_op("lock", op);
  }
}

value_t cas_spec::apply(const op_desc& op) {
  switch (op.code) {
    case opcode::cas_read:
      return value_;
    case opcode::cas:
      if (value_ == op.a) {
        value_ = op.b;
        return k_true;
      }
      return k_false;
    default:
      bad_op("cas", op);
  }
}

value_t counter_spec::apply(const op_desc& op) {
  switch (op.code) {
    case opcode::ctr_read:
      return value_;
    case opcode::ctr_add: {
      value_t old = value_;
      value_ += op.a;
      if (cap_ >= 0) value_ = std::min(value_, cap_);
      return old;
    }
    default:
      bad_op("counter", op);
  }
}

value_t tas_spec::apply(const op_desc& op) {
  switch (op.code) {
    case opcode::tas_set: {
      value_t old = bit_;
      bit_ = 1;
      return old;
    }
    case opcode::tas_reset:
      bit_ = 0;
      return k_ack;
    default:
      bad_op("tas", op);
  }
}

value_t queue_spec::apply(const op_desc& op) {
  switch (op.code) {
    case opcode::enq:
      items_.push_back(op.a);
      return k_ack;
    case opcode::deq: {
      if (items_.empty()) return k_empty;
      value_t v = items_.front();
      items_.pop_front();
      return v;
    }
    default:
      bad_op("queue", op);
  }
}

value_t stack_spec::apply(const op_desc& op) {
  switch (op.code) {
    case opcode::push:
      items_.push_back(op.a);
      return k_ack;
    case opcode::pop: {
      if (items_.empty()) return k_empty;
      value_t v = items_.back();
      items_.pop_back();
      return v;
    }
    default:
      bad_op("stack", op);
  }
}

std::string stack_spec::serialize() const {
  std::ostringstream os;
  os << 's';
  for (value_t v : items_) os << v << ',';
  return os.str();
}

std::string queue_spec::serialize() const {
  std::ostringstream os;
  os << 'q';
  for (value_t v : items_) os << v << ',';
  return os.str();
}

value_t max_register_spec::apply(const op_desc& op) {
  switch (op.code) {
    case opcode::max_read:
      return max_;
    case opcode::max_write:
      max_ = std::max(max_, op.a);
      return k_ack;
    default:
      bad_op("max_register", op);
  }
}

multi_spec::multi_spec(const multi_spec& other) {
  subs_.reserve(other.subs_.size());
  for (const auto& [id, s] : other.subs_) subs_.emplace_back(id, s->clone());
}

void multi_spec::add_object(std::uint32_t id, std::unique_ptr<spec> s) {
  subs_.emplace_back(id, std::move(s));
}

value_t multi_spec::apply(const op_desc& op) {
  for (auto& [id, s] : subs_) {
    if (id == op.object) return s->apply(op);
  }
  throw std::invalid_argument("multi_spec: unknown object id " +
                              std::to_string(op.object));
}

std::string multi_spec::serialize() const {
  std::ostringstream os;
  for (const auto& [id, s] : subs_) os << id << '=' << s->serialize() << ';';
  return os.str();
}

std::unique_ptr<spec> make_spec_for(opcode family, value_t init) {
  switch (family) {
    case opcode::reg_read:
    case opcode::reg_write:
    case opcode::swap:
      return std::make_unique<register_spec>(init);
    case opcode::lock_try:
    case opcode::lock_release:
      return std::make_unique<lock_spec>();
    case opcode::cas:
    case opcode::cas_read:
      return std::make_unique<cas_spec>(init);
    case opcode::ctr_read:
    case opcode::ctr_add:
      return std::make_unique<counter_spec>(init);
    case opcode::tas_set:
    case opcode::tas_reset:
      return std::make_unique<tas_spec>();
    case opcode::enq:
    case opcode::deq:
      return std::make_unique<queue_spec>();
    case opcode::push:
    case opcode::pop:
      return std::make_unique<stack_spec>();
    case opcode::max_write:
    case opcode::max_read:
      return std::make_unique<max_register_spec>(init);
    default:
      throw std::invalid_argument("make_spec_for: no spec for opcode");
  }
}

const char* opcode_name(opcode c) noexcept {
  switch (c) {
    case opcode::nop: return "nop";
    case opcode::reg_read: return "reg_read";
    case opcode::reg_write: return "reg_write";
    case opcode::swap: return "swap";
    case opcode::lock_try: return "lock_try";
    case opcode::lock_release: return "lock_release";
    case opcode::cas: return "cas";
    case opcode::cas_read: return "cas_read";
    case opcode::ctr_read: return "ctr_read";
    case opcode::ctr_add: return "ctr_add";
    case opcode::tas_set: return "tas_set";
    case opcode::tas_reset: return "tas_reset";
    case opcode::enq: return "enq";
    case opcode::deq: return "deq";
    case opcode::push: return "push";
    case opcode::pop: return "pop";
    case opcode::max_write: return "max_write";
    case opcode::max_read: return "max_read";
  }
  return "?";
}

std::string op_desc::to_string() const {
  std::ostringstream os;
  os << opcode_name(code) << "(";
  switch (code) {
    case opcode::reg_write:
    case opcode::swap:
    case opcode::ctr_add:
    case opcode::enq:
    case opcode::push:
    case opcode::max_write:
    case opcode::lock_try:
    case opcode::lock_release:
      os << a;
      break;
    case opcode::cas:
      os << a << "," << b;
      break;
    default:
      break;
  }
  os << ")@obj" << object;
  return os.str();
}

std::string event::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case event_kind::invoke:
      os << "p" << pid << " invoke  " << desc.to_string() << " seq=" << desc.client_seq;
      break;
    case event_kind::response:
      os << "p" << pid << " resp    " << desc.to_string() << " -> " << value;
      break;
    case event_kind::crash:
      os << "== CRASH ==";
      break;
    case event_kind::recover_begin:
      os << "p" << pid << " recover " << desc.to_string();
      break;
    case event_kind::recover_result:
      os << "p" << pid << " verdict " << desc.to_string() << " -> "
         << (verdict == recovery_verdict::fail ? std::string("FAIL")
                                               : std::to_string(value));
      break;
  }
  return os.str();
}

}  // namespace detect::hist
