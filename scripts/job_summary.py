#!/usr/bin/env python3
"""Render BENCH_e6.json / BENCH_serve.json / coverage.json as GitHub
job-summary markdown.

CI appends the output to $GITHUB_STEP_SUMMARY so coverage, throughput, and
serving-soak trends are readable per run without downloading artifacts:

    python3 scripts/job_summary.py BENCH_e6.json BENCH_serve.json coverage.json >> "$GITHUB_STEP_SUMMARY"

Files that do not exist are skipped with a note (the bench and fuzz jobs
each produce only their own artifact). Unknown JSON shapes fail loudly —
a silently empty summary would hide a broken emitter.
"""
import json
import os
import sys


def bench_table(data):
    yield "### E6 throughput (backend × shards × placement)"
    cfg = data.get("config", {})
    yield ""
    yield (f"{cfg.get('procs', '?')} procs, {cfg.get('objects', '?')} objects, "
           f"{cfg.get('ops_per_proc', '?')} ops/proc")
    yield ""
    yield "| backend | shards | placement | ops | ops/sec | scale vs K=1 |"
    yield "|---|---|---|---|---|---|"
    regressions = []
    for row in data["results"]:
        # Rows predating the placement sweep carry neither key; rows
        # predating the scaling column carry no scaling_efficiency.
        placement = row.get("placement", "modulo")
        eff = row.get("scaling_efficiency")
        eff_cell = f"{eff:.2f}×" if eff is not None else "—"
        # A sharded row running below its own K=1 baseline is a scaling
        # regression worth flagging (single/threads rows use the column as
        # context only — they are not expected to track the sharded curve).
        if (eff is not None and row["backend"] == "sharded"
                and row["shards"] > 1 and eff < 1.0):
            eff_cell += " ⚠️"
            regressions.append(
                f"sharded K={row['shards']}/{placement} runs at {eff:.2f}× "
                f"the K=1 baseline")
        yield (f"| {row['backend']} | {row['shards']} | {placement} "
               f"| {row['ops']} | {row['ops_per_sec']:,.0f} | {eff_cell} |")
    if regressions:
        yield ""
        yield "**Scaling regressions:**"
        for r in regressions:
            yield f"- ⚠️ {r}"
    # Per-shard op-load distribution: how evenly each placement policy
    # spreads the scripted workload over the worlds.
    load_rows = [r for r in data["results"]
                 if len(r.get("shard_load", [])) > 1]
    if load_rows:
        yield ""
        yield "#### Per-shard op load"
        yield ""
        yield "| backend | shards | placement | load per shard | max/ideal |"
        yield "|---|---|---|---|---|"
        for row in load_rows:
            load = row["shard_load"]
            ideal = sum(load) / len(load) if load else 0
            ratio = (max(load) / ideal) if ideal else 0
            cells = " ".join(str(n) for n in load)
            yield (f"| {row['backend']} | {row['shards']} "
                   f"| {row.get('placement', 'modulo')} | {cells} "
                   f"| {ratio:.2f} |")
    yield ""


def serve_table(data):
    yield "### Serve load scenarios"
    cfg = data.get("config", {})
    yield ""
    yield (f"soak sized at {cfg.get('sessions', '?')} sessions × "
           f"{cfg.get('ops_per_session', '?')} ops")
    yield ""
    yield ("| scenario | admitted | completed | rejected | crashes | moves "
           "| load ratio | p50 | p99 | seconds |")
    yield "|---|---|---|---|---|---|---|---|---|---|"
    lost = []
    for row in data["results"]:
        st = row["stats"]
        completed = st["completed"]
        cell = str(completed)
        # admitted != completed means the front-end lost (or never finished)
        # admitted work — bench_serve exits nonzero on it, but flag it here
        # too so the summary is self-explaining even on a red run.
        if completed != st["admitted"]:
            cell += " ⚠️"
            lost.append(f"{row['scenario']}: {st['admitted']} admitted but "
                        f"{completed} completed")
        unit = st.get("latency_unit", "")
        yield (f"| {row['scenario']} | {st['admitted']} | {cell} "
               f"| {st.get('rejected', 0)} | {st['crashes']} "
               f"| {len(st.get('moves', []))} "
               f"| {st.get('load_ratio_window', 0):.2f} "
               f"| {st['p50']} {unit} | {st['p99']} {unit} "
               f"| {row['seconds']:.3f} |")
    if lost:
        yield ""
        yield "**Lost completions:**"
        for entry in lost:
            yield f"- ⚠️ {entry}"
    # The rebalancer's move log for the soak row — which objects left the
    # hot shard, and at what trigger ratio.
    for row in data["results"]:
        moves = row["stats"].get("moves", [])
        if row["scenario"] == "soak" and moves:
            yield ""
            yield (f"soak rebalance: {len(moves)} move(s), first at round "
                   f"{moves[0]['round']} (trigger ratio "
                   f"{moves[0]['ratio_before']:.2f}), final window ratio "
                   f"{row['stats'].get('load_ratio_window', 0):.2f}")
    yield ""


def coverage_table(data):
    yield "### Fuzz coverage"
    yield ""
    yield "| metric | value |"
    yield "|---|---|"
    yield f"| scenarios executed | {data['executed']} |"
    yield f"| distinct buckets | {data['distinct_buckets']} |"
    yield f"| steered | {data['steered']} |"
    yield f"| corpus size | {len(data['corpus'])} |"
    yield f"| base seed | {data['base_seed']} |"
    if "jobs" in data:
        yield f"| worker processes | {data['jobs']} |"
    # Multi-process campaigns (fuzz_main --jobs N): one row per forked
    # worker. A lost worker (died without reporting — signal, OOM) is a red
    # flag even when every surviving slice passed: its iterations never ran.
    workers = data.get("workers", [])
    if workers:
        lost = []
        yield ""
        yield "#### Campaign workers"
        yield ""
        yield ("| worker | slice | executed | replays | new buckets "
               "| status |")
        yield "|---|---|---|---|---|---|"
        for w in workers:
            first = w["first_iteration"]
            span = f"[{first}, {first + w['iterations']})"
            if w.get("lost"):
                status = "⚠️ LOST"
                lost.append(f"worker {w['worker']} ({span}) died without "
                            "reporting")
            elif w.get("failed"):
                status = "❌ failed"
            else:
                status = "ok"
            yield (f"| {w['worker']} | {span} | {w['executed']} "
                   f"| {w['replays']} | {w['new_buckets']} | {status} |")
        if lost:
            yield ""
            yield "**Lost workers:**"
            for entry in lost:
                yield f"- ⚠️ {entry}"
    timeline = data["new_bucket_timeline"]
    if timeline:
        # New-bucket rate per quarter of the campaign: is discovery drying up?
        executed = data["executed"]
        yield ""
        yield "| campaign quarter | new buckets |"
        yield "|---|---|"
        prev = 0
        for q in range(1, 5):
            cutoff = executed * q // 4
            count = sum(1 for done, _ in timeline if prev < done <= cutoff)
            yield f"| ≤ {cutoff} | {count} |"
            prev = cutoff
    # Per-strategy slice (campaigns with schedule-exploration pools): how
    # many scenarios each strategy drove, how many distinct buckets its
    # slice reached, and when the last new one landed — the PCT-vs-uniform
    # comparison at a glance.
    by_strategy = data.get("by_strategy", [])
    if by_strategy:
        yield ""
        yield "#### Coverage by schedule strategy"
        yield ""
        yield "| strategy | executed | distinct buckets | last new bucket at |"
        yield "|---|---|---|---|"
        for st in by_strategy:
            timeline = st.get("new_bucket_timeline", [])
            last = timeline[-1][0] if timeline else "—"
            yield (f"| {st['strategy']} | {st['executed']} "
                   f"| {st['distinct_buckets']} | {last} |")
    # Per-visibility-model slice (campaigns with a mixed wmm pool): the
    # sc-vs-tso-vs-pso comparison — relaxed models should keep reaching
    # buckets (pending-store depths, drain placements) sc structurally
    # cannot.
    by_visibility = data.get("by_visibility", [])
    if by_visibility:
        yield ""
        yield "#### Coverage by visibility model"
        yield ""
        yield ("| visibility | executed | distinct buckets "
               "| last new bucket at |")
        yield "|---|---|---|---|"
        for vm in by_visibility:
            timeline = vm.get("new_bucket_timeline", [])
            last = timeline[-1][0] if timeline else "—"
            yield (f"| {vm['visibility']} | {vm['executed']} "
                   f"| {vm['distinct_buckets']} | {last} |")
    yield ""


RENDERERS = {
    "e6_backend_shards_sweep": bench_table,
    "serve_load": serve_table,
}


def render(path):
    with open(path) as f:
        data = json.load(f)
    if "distinct_buckets" in data:
        return coverage_table(data)
    renderer = RENDERERS.get(data.get("bench"))
    if renderer is None:
        raise SystemExit(f"job_summary: unrecognized JSON shape in {path}")
    return renderer(data)


def main(argv):
    if len(argv) < 2:
        raise SystemExit("usage: job_summary.py FILE.json...")
    for path in argv[1:]:
        if not os.path.exists(path):
            print(f"_{path} not produced by this run_")
            print()
            continue
        for line in render(path):
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
