// A/B pin of the two strand engines (sim/strand.hpp) plus the arena-log
// allocation contract (history/log.hpp).
//
// The fiber engine replaced the per-process OS-thread engine as the default
// step machinery of sim::world; the thread engine stays as the reference
// implementation precisely so this corpus can hold the two to byte-identical
// behavior. Every generated scenario must replay to the same event log, the
// same checker verdict, and the same run report under both engines — the
// fiber engine is a pure mechanism swap, never a semantics change.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/api.hpp"
#include "fuzz/scenario_gen.hpp"
#include "history/log.hpp"
#include "sim/strand.hpp"

namespace {

using namespace detect;

/// Restore the process-global default engine on scope exit, whatever the
/// test did to it.
struct engine_guard {
  sim::engine_kind saved = sim::default_engine();
  ~engine_guard() { sim::set_default_engine(saved); }
};

void expect_same_events(const std::vector<hist::event>& a,
                        const std::vector<hist::event>& b,
                        std::uint64_t seed) {
  ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const hist::event& x = a[i];
    const hist::event& y = b[i];
    ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind))
        << "seed " << seed << " event " << i;
    ASSERT_EQ(x.pid, y.pid) << "seed " << seed << " event " << i;
    ASSERT_EQ(x.desc.object, y.desc.object) << "seed " << seed << " event " << i;
    ASSERT_EQ(static_cast<int>(x.desc.code), static_cast<int>(y.desc.code))
        << "seed " << seed << " event " << i;
    ASSERT_EQ(x.desc.a, y.desc.a) << "seed " << seed << " event " << i;
    ASSERT_EQ(x.desc.b, y.desc.b) << "seed " << seed << " event " << i;
    ASSERT_EQ(x.desc.client_seq, y.desc.client_seq)
        << "seed " << seed << " event " << i;
    ASSERT_EQ(x.value, y.value) << "seed " << seed << " event " << i;
    ASSERT_EQ(static_cast<int>(x.verdict), static_cast<int>(y.verdict))
        << "seed " << seed << " event " << i;
  }
}

// 500 generated scenarios — multi-object, sharded, crashy, strategy- and
// persistency-mixed — each replayed once per engine. Logs must match byte
// for byte, verdicts and reports exactly.
TEST(EngineABTest, FiberAndThreadReplaysIdenticalOn500SeedCorpus) {
  engine_guard guard;
  fuzz::gen_config cfg;
  cfg.max_procs = 3;
  cfg.max_ops = 6;
  cfg.max_shards = 3;
  cfg.max_objects = 3;
  cfg.object_kind_pool = {"reg", "cas", "counter", "queue", "stack"};
  cfg.sched_pool = {"round_robin", "uniform_random", "pct"};
  cfg.persist_pool = {"strict", "buffered"};
  const std::vector<std::string> kinds = {"reg",   "cas",     "counter",
                                          "queue", "stack",   "swap",
                                          "tas",   "max_reg", "lock"};
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    api::scripted_scenario s =
        fuzz::generate(seed, kinds[seed % kinds.size()], cfg);

    sim::set_default_engine(sim::engine_kind::fiber);
    api::scripted_outcome fib = api::replay(s);
    sim::set_default_engine(sim::engine_kind::thread);
    api::scripted_outcome thr = api::replay(s);

    ASSERT_EQ(fib.log_text, thr.log_text) << "seed " << seed;
    expect_same_events(fib.events, thr.events, seed);
    ASSERT_EQ(fib.check.ok, thr.check.ok)
        << "seed " << seed << "\nfiber: " << fib.check.message
        << "\nthread: " << thr.check.message;
    ASSERT_EQ(fib.check.message, thr.check.message) << "seed " << seed;
    ASSERT_EQ(fib.report.steps, thr.report.steps) << "seed " << seed;
    ASSERT_EQ(fib.report.crashes, thr.report.crashes) << "seed " << seed;
    ASSERT_EQ(fib.report.hit_step_limit, thr.report.hit_step_limit)
        << "seed " << seed;
    ASSERT_EQ(fib.report.limit_note, thr.report.limit_note) << "seed " << seed;
    ASSERT_EQ(fib.report.lost_persistence, thr.report.lost_persistence)
        << "seed " << seed;
  }
}

// world_config.engine overrides the process-global default; absent, the
// default decides.
TEST(EngineTest, WorldConfigEngineOverridesDefault) {
  engine_guard guard;
  sim::set_default_engine(sim::engine_kind::thread);

  sim::world_config cfg;
  cfg.engine = sim::engine_kind::fiber;
  sim::world pinned(2, cfg);
  EXPECT_EQ(pinned.engine(), sim::engine_kind::fiber);

  sim::world defaulted(2);
  EXPECT_EQ(defaulted.engine(), sim::engine_kind::thread);

  sim::set_default_engine(sim::engine_kind::fiber);
  sim::world refreshed(2);
  EXPECT_EQ(refreshed.engine(), sim::engine_kind::fiber);
}

// The executor builder's engine() pin reaches the underlying world: a
// scripted run under an explicitly pinned thread engine still produces the
// fiber default's exact history.
TEST(EngineTest, BuilderEnginePinMatchesDefaultEngineRun) {
  engine_guard guard;
  sim::set_default_engine(sim::engine_kind::fiber);
  auto run_with = [](sim::engine_kind e) {
    auto ex = api::executor::builder()
                  .engine(e)
                  .procs(2)
                  .seed(7)
                  .crash_at({9})
                  .build();
    api::counter c = ex->add_counter();
    ex->script(0, {c.add(1), c.add(2)});
    ex->script(1, {c.add(3), c.read()});
    ex->run();
    return ex->log_text();
  };
  EXPECT_EQ(run_with(sim::engine_kind::fiber),
            run_with(sim::engine_kind::thread));
}

// Arena-log allocation contract: blocks are allocated once per
// k_block_events high-water mark and reused across clear() — a steady-state
// run cycle touches the allocator zero times.
TEST(ArenaLogTest, BlocksAllocateOncePerHighWaterMarkAndReuseAcrossClear) {
  hist::log log;
  EXPECT_EQ(log.blocks_allocated(), 0u);

  hist::event e{};
  e.kind = hist::event_kind::invoke;

  // Fill two full blocks plus one event: exactly three allocations.
  const std::size_t n = 2 * hist::log::k_block_events + 1;
  for (std::size_t i = 0; i < n; ++i) log.append(e);
  EXPECT_EQ(log.size(), n);
  EXPECT_EQ(log.blocks_allocated(), 3u);
  EXPECT_EQ(log.snapshot().size(), n);

  // Rewind and refill to the same high-water mark: zero new allocations.
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.blocks_allocated(), 3u);
  for (std::size_t i = 0; i < n; ++i) log.append(e);
  EXPECT_EQ(log.size(), n);
  EXPECT_EQ(log.blocks_allocated(), 3u);

  // Push past the old high-water mark: exactly one more block.
  for (std::size_t i = 0; i < hist::log::k_block_events; ++i) log.append(e);
  EXPECT_EQ(log.blocks_allocated(), 4u);
}

}  // namespace
