// Algorithm 2 (detectable CAS): sequential behaviour, flip-vector recovery
// semantics, crash sweeps, schedule fuzzing, and exhaustive exploration.
#include <gtest/gtest.h>

#include "core/detectable_cas.hpp"
#include "core/nrl.hpp"
#include "sim/explorer.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario_config cas_scenario(int nprocs,
                             std::map<int, std::vector<hist::op_desc>> scripts,
                             core::runtime::fail_policy policy =
                                 core::runtime::fail_policy::skip) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.policy = policy;
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_cas>(nprocs, f.board, 0,
                                                          f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::cas_spec(0)); };
  return cfg;
}

TEST(detectable_cas, rejects_too_many_processes) {
  sim_fixture f(1);
  EXPECT_THROW(core::detectable_cas(65, f.board, 0, f.w.domain()),
               std::invalid_argument);
}

TEST(detectable_cas, sequential_semantics) {
  auto cfg = cas_scenario(
      1, {{0, {op_cas(0, 1), op_cas(0, 2), op_cas(1, 2), op_cas_read()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_cas, contended_cas_exactly_one_winner) {
  // Both processes CAS(0→their value); exactly one must win.
  auto cfg = cas_scenario(2, {
                                 {0, {op_cas(0, 1), op_cas_read()}},
                                 {1, {op_cas(0, 2), op_cas_read()}},
                             });
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_cas, crash_sweep_single_proc) {
  auto cfg = cas_scenario(1, {{0, {op_cas(0, 1), op_cas(1, 2), op_cas_read()}}});
  crash_sweep(cfg, 1);
}

TEST(detectable_cas, crash_sweep_contended) {
  auto cfg = cas_scenario(2, {
                                 {0, {op_cas(0, 1), op_cas(1, 0)}},
                                 {1, {op_cas(0, 2), op_cas_read()}},
                             });
  crash_sweep(cfg, 9);
}

TEST(detectable_cas, crash_sweep_retry_policy) {
  auto cfg = cas_scenario(2,
                          {
                              {0, {op_cas(0, 1), op_cas(1, 2)}},
                              {1, {op_cas(0, 3), op_cas_read()}},
                          },
                          core::runtime::fail_policy::retry);
  crash_sweep(cfg, 17);
}

TEST(detectable_cas, multi_crash_fuzz) {
  auto cfg = cas_scenario(3, {
                                 {0, {op_cas(0, 1), op_cas(1, 2)}},
                                 {1, {op_cas(0, 2), op_cas(2, 3)}},
                                 {2, {op_cas_read(), op_cas(1, 4)}},
                             });
  crash_fuzz(cfg, 150, 2);
}

TEST(detectable_cas, abab_value_cycle_fuzz) {
  // Values cycle 0→1→0→1: without the flip vector this is the classic ABA
  // trap for recovery.
  auto cfg = cas_scenario(2, {
                                 {0, {op_cas(0, 1), op_cas(0, 1)}},
                                 {1, {op_cas(1, 0), op_cas(1, 0)}},
                             });
  crash_fuzz(cfg, 150, 2);
}

// Deterministic construction of Algorithm 2's two post-checkpoint recovery
// paths (lines 42-46): crash right BEFORE the CAS of line 35 ⇒ vec[p] still
// matches the pre-flip state ⇒ fail; crash right AFTER the successful CAS ⇒
// vec[p] equals the persisted flipped bit ⇒ linearized(true).
TEST(detectable_cas, line43_flip_bit_decides_both_ways) {
  for (bool crash_after_cas : {false, true}) {
    sim_fixture f(2);
    core::detectable_cas cas(2, f.board, 0, f.w.domain());
    f.rt.register_object(0, cas);
    f.w.submit(0, [&rt = f.rt] {
      hist::op_desc d = op_cas(0, 7);
      d.client_seq = 1;
      rt.announce_and_invoke(0, d);
    });
    // Step until the next access is the CAS itself (the only shared_cas in
    // the operation, issued with CP == 1).
    while (!(f.board.of(0).cp.peek() == 1 &&
             f.w.pending_access(0) == nvm::access::shared_cas)) {
      f.w.step(0);
    }
    if (crash_after_cas) f.w.step(0);  // execute line 35
    f.w.crash();
    {
      hist::event e;
      e.kind = hist::event_kind::crash;
      f.lg.append(e);
    }
    f.w.submit(0, [&rt = f.rt] { rt.maybe_recover(0); });
    for (;;) {
      auto ready = f.w.runnable();
      if (ready.empty()) break;
      f.w.step(ready.front());
    }
    hist::recovery_verdict verdict = hist::recovery_verdict::none;
    hist::value_t value = hist::k_bottom;
    for (const auto& e : f.lg.snapshot()) {
      if (e.kind == hist::event_kind::recover_result && e.pid == 0) {
        verdict = e.verdict;
        value = e.value;
      }
    }
    if (crash_after_cas) {
      EXPECT_EQ(verdict, hist::recovery_verdict::linearized);
      EXPECT_EQ(value, hist::k_true);
    } else {
      EXPECT_EQ(verdict, hist::recovery_verdict::fail);
    }
    auto check =
        hist::check_durable_linearizability(f.lg.snapshot(), hist::cas_spec(0));
    EXPECT_TRUE(check.ok) << check.message;
  }
}

// The failed-CAS case: another process wins the race between p's read and
// p's CAS; p's line-35 CAS executes but fails, leaving vec[p] unflipped —
// recovery must report fail ("it did not change the value of any variable
// that operations by other processes may read", Lemma 2).
TEST(detectable_cas, lost_race_recovers_as_fail) {
  sim_fixture f(2);
  core::detectable_cas cas(2, f.board, 0, f.w.domain());
  f.rt.register_object(0, cas);
  f.w.submit(0, [&rt = f.rt] {
    hist::op_desc d = op_cas(0, 7);
    d.client_seq = 1;
    rt.announce_and_invoke(0, d);
  });
  while (!(f.board.of(0).cp.peek() == 1 &&
           f.w.pending_access(0) == nvm::access::shared_cas)) {
    f.w.step(0);
  }
  // p1 sneaks in a full successful CAS(0→9).
  f.w.submit(1, [&rt = f.rt] {
    hist::op_desc d = op_cas(0, 9);
    d.client_seq = 1;
    rt.announce_and_invoke(1, d);
  });
  for (;;) {
    auto ready = f.w.runnable();
    bool p1 = false;
    for (int r : ready) p1 |= (r == 1);
    if (!p1) break;
    f.w.step(1);
  }
  f.board.of(1).done_seq.store(1);
  f.w.step(0);  // p0's CAS executes and fails
  f.w.crash();
  {
    hist::event e;
    e.kind = hist::event_kind::crash;
    f.lg.append(e);
  }
  f.w.submit(0, [&rt = f.rt] { rt.maybe_recover(0); });
  for (;;) {
    auto ready = f.w.runnable();
    if (ready.empty()) break;
    f.w.step(ready.front());
  }
  hist::recovery_verdict verdict = hist::recovery_verdict::none;
  for (const auto& e : f.lg.snapshot()) {
    if (e.kind == hist::event_kind::recover_result && e.pid == 0) {
      verdict = e.verdict;
    }
  }
  EXPECT_EQ(verdict, hist::recovery_verdict::fail);
  auto check =
      hist::check_durable_linearizability(f.lg.snapshot(), hist::cas_spec(0));
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(detectable_cas, exhaustive_two_procs_one_crash_one_preemption) {
  struct scen final : sim::exploration {
    sim_fixture f{2};
    std::vector<std::unique_ptr<core::detectable_object>> objs;
    scen() {
      objs.push_back(std::make_unique<core::detectable_cas>(2, f.board, 0,
                                                            f.w.domain()));
      f.rt.register_object(0, *objs.back());
      f.rt.set_script(0, {op_cas(0, 1)});
      f.rt.set_script(1, {op_cas(0, 2)});
      f.rt.start();
    }
    sim::world& get_world() override { return f.w; }
    void on_crash() override { f.rt.on_crash(); }
    void at_end() override {
      auto r = hist::check_durable_linearizability(f.lg.snapshot(),
                                                   hist::cas_spec(0));
      if (!r.ok) throw std::runtime_error(r.message);
    }
  };
  sim::explore_config cfg;
  cfg.max_crashes = 1;
  cfg.max_preemptions = 1;
  cfg.max_runs = 100'000;
  auto res = sim::explore_schedules([] { return std::make_unique<scen>(); }, cfg);
  EXPECT_FALSE(res.failed) << res.failure;
  EXPECT_TRUE(res.complete) << "runs=" << res.runs;
  EXPECT_GT(res.runs, 100u);
}

TEST(detectable_cas, vec_bit_flips_only_on_success) {
  // Drive the object directly (no crashes) and observe the vector.
  sim_fixture f(2);
  core::detectable_cas cas(2, f.board, 0, f.w.domain());
  f.rt.register_object(0, cas);
  f.rt.set_script(0, {op_cas(0, 1), op_cas(0, 9), op_cas(1, 2)});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  // p0: success (flip), fail (no flip), success (flip) → bit back to 0.
  auto events = f.lg.snapshot();
  int successes = 0;
  for (const auto& e : events) {
    if (e.kind == hist::event_kind::response &&
        e.desc.code == hist::opcode::cas && e.value == hist::k_true) {
      ++successes;
    }
  }
  EXPECT_EQ(successes, 2);
}

TEST(detectable_cas, read_recovery_returns_persisted_response) {
  auto cfg = cas_scenario(2, {
                                 {0, {op_cas(0, 5)}},
                                 {1, {op_cas_read(), op_cas_read()}},
                             });
  crash_sweep(cfg, 23);
}

TEST(detectable_cas, nrl_wrapper_battery) {
  scenario_config cfg;
  cfg.nprocs = 2;
  cfg.scripts = {{0, {op_cas(0, 1), op_cas(1, 2)}},
                 {1, {op_cas(0, 7), op_cas_read()}}};
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(
        std::make_unique<core::detectable_cas>(2, f.board, 0, f.w.domain()));
    objs.push_back(std::make_unique<core::nrl_adapter>(*objs[0], f.board));
    f.rt.register_object(0, *objs[1]);
  };
  cfg.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::cas_spec(0)); };
  crash_sweep(cfg, 31);
  crash_fuzz(cfg, 60, 2);
}

TEST(detectable_cas, shared_cache_with_transform) {
  scenario_config cfg;
  cfg.nprocs = 2;
  cfg.scripts = {{0, {op_cas(0, 1), op_cas(1, 0)}},
                 {1, {op_cas(0, 2), op_cas_read()}}};
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    f.w.domain().set_model(nvm::cache_model::shared_cache);
    f.w.domain().set_auto_persist(true);
    objs.push_back(
        std::make_unique<core::detectable_cas>(2, f.board, 0, f.w.domain()));
    f.rt.register_object(0, *objs.back());
    f.w.domain().persist_all();
  };
  cfg.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::cas_spec(0)); };
  crash_sweep(cfg, 37);
}

TEST(detectable_cas, extra_bits_are_theta_n) {
  sim_fixture f(1);
  for (int n : {1, 8, 33, 64}) {
    core::announcement_board board(n, f.w.domain());
    core::detectable_cas cas(n, board, 0, f.w.domain());
    EXPECT_EQ(cas.extra_shared_bits(), static_cast<std::size_t>(n));
  }
}

class cas_property
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(cas_property, durable_linearizable_and_detectable) {
  auto [seed, crashes] = GetParam();
  auto cfg = cas_scenario(3, {
                                 {0, {op_cas(0, 1), op_cas(1, 2)}},
                                 {1, {op_cas(0, 2), op_cas(2, 0)}},
                                 {2, {op_cas_read(), op_cas(1, 3)}},
                             });
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 15485863);
}

INSTANTIATE_TEST_SUITE_P(sweep, cas_property,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Values(0, 1, 2, 3)));

// Scale sweep: the flip vector grows with N; exercise several widths.
class cas_scale : public ::testing::TestWithParam<int> {};

TEST_P(cas_scale, crash_fuzz_at_n) {
  int n = GetParam();
  std::map<int, std::vector<hist::op_desc>> scripts;
  for (int p = 0; p < n; ++p) {
    scripts[p] = {op_cas(p, p + 1), op_cas(0, p + 10)};
  }
  auto cfg = cas_scenario(n, scripts);
  crash_fuzz(cfg, 25, 2, static_cast<std::uint64_t>(n) * 472882);
}

INSTANTIATE_TEST_SUITE_P(scale, cas_scale, ::testing::Values(2, 3, 4, 6));

}  // namespace
