// differ — differential replay of one generated scenario across
// implementation variants of the same opcode family.
//
// The registry holds several implementations per family: the paper's core
// algorithms ("reg", "cas", ...), the unbounded-identifier baselines
// ("attiya_reg", "bendavid_cas"), the nrl adapter, and the non-detectable
// plain_*/stripped_* variants. `diff_against` replays the identical
// scenario with ONE declared object's kind substituted by a variant of the
// same family (per-object substitution — the other objects stay put) and
// diffs:
//
//   * run health — neither replay may hit the step limit;
//   * checker verdicts — both executions must be durably linearizable
//     against the objects' sequential specs;
//   * exact response streams — when the scenario is deterministically
//     comparable (single process, crash-free), the per-process sequence of
//     responses must match op for op.
//
// Crash semantics only compare where every object honors the detectability
// contract: when the substituted variant or any declared object is
// non-detectable (plain_*, stripped_* — the Theorem-2 regime where verdicts
// can be wrong by construction), both replays are run crash-free (same
// scenario minus the crash plan).
#pragma once

#include <string>
#include <vector>

#include "api/api.hpp"

namespace detect::fuzz {

struct diff_report {
  bool ok = true;
  std::string message;  // first divergence, empty when ok
};

/// The registry kinds `kind` is differentially checked against: same opcode
/// family, distinct implementation. Kinds without a counterpart (max_reg,
/// lock, ...) return an empty list.
std::vector<std::string> variants_of(const std::string& kind);

/// Replay `s` as declared and with object `object_id`'s kind substituted by
/// `variant_kind`; diff as described above. Throws std::invalid_argument if
/// `object_id` is undeclared or the kinds' families differ.
diff_report diff_against(const api::scripted_scenario& s,
                         std::uint32_t object_id,
                         const std::string& variant_kind);

/// Same, substituting the first declared (primary) object.
diff_report diff_against(const api::scripted_scenario& s,
                         const std::string& variant_kind);

/// Backend-equivalence diff: replay `s` on the single backend and again on
/// the sharded backend with `shards` worlds, then diff run health, checker
/// verdicts, and — for single-object scenarios, whose execution is the
/// identical deterministic world on both sides — the exact response
/// streams. Multi-object scenarios genuinely split across shard worlds, so
/// their per-shard schedules legitimately interleave differently than the
/// one-world run; there the oracle is verdict equivalence (both executions
/// must check out), which is exactly what exercises the merged-log and
/// per-object decomposition paths. A migration plan weakens multi-process
/// scenarios to verdict equivalence too (the post-migration world's fresh
/// announcement board shifts the seeded schedule); single-proc migration
/// scenarios keep the exact-response oracle.
diff_report diff_sharded(const api::scripted_scenario& s, int shards);

/// Placement-equivalence diff: replay `s` on the sharded backend (with its
/// own shard count) under each of the three parameter-free placement
/// policies — modulo, hash, range — and require identical run health and
/// checker verdicts, plus identical response streams for single-object
/// scenarios (each object's world execution is deterministic regardless of
/// which shard index hosts it; as with diff_sharded, multi-process
/// migration scenarios compare verdicts only). Placement decides only
/// *where* an object
/// lives, never what its operations return — any divergence is a routing,
/// merged-log, or migration bug. Trivially ok when `s.shards < 2`.
diff_report diff_placement(const api::scripted_scenario& s);

/// Non-differential oracle for a single replay of `s`: the run must finish
/// within the step budget and pass the durable-linearizability +
/// detectability check. Returns the failure description, empty on success.
std::string verify_scenario(const api::scripted_scenario& s);

/// Full per-scenario oracle the fuzzer, shrinker, and `fuzz_main --replay`
/// share: verify_scenario, diff_against every variant of every declared
/// object's kind, and — whenever `s.shards > 1` on the single or sharded
/// backend — the single-vs-sharded equivalence diff. Empty on success.
/// `replays`, when set, is bumped per scenario replay performed (campaign
/// accounting). `diff` disables the variant pass (the sharded diff is
/// governed by `s.shards` alone). `primary_out`, when set, receives the
/// outcome of the scenario's own replay — the coverage layer's bucket food.
/// `placement` additionally arms the diff_placement stage on every scenario
/// with a shard knob (the `--placement-equiv` campaign mode). `check_jobs`
/// is the per-object checker fan-out threaded (as hist::check_options) into
/// every replay of the variant family — verdict-identical to serial by the
/// parallel driver's determinism guarantee.
std::string check_scenario(const api::scripted_scenario& s, bool diff = true,
                           std::uint64_t* replays = nullptr,
                           api::scripted_outcome* primary_out = nullptr,
                           bool placement = false, int check_jobs = 1);

}  // namespace detect::fuzz
