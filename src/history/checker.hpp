// Durable-linearizability + detectability verdict checker.
//
// Translates a raw event log into operation records and hands them to the
// linearizability checker, encoding the two correctness conditions the paper
// targets (§2, §6):
//
//  * Durable linearizability — ops that completed before a crash are
//    mandatory; ops pending at a crash (or at the end of the run) that were
//    never resolved by recovery are optional; the surviving history must
//    linearize.
//  * Detectability — a recovery verdict of `fail` asserts "not linearized":
//    the op is excluded, so if its effect was in fact observed by anyone the
//    remaining history cannot linearize and the checker reports a violation.
//    A verdict of `linearized(v)` asserts "linearized exactly once with
//    response v": the op becomes mandatory with response v.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "history/linearizer.hpp"
#include "history/log.hpp"

namespace detect::hist {

inline constexpr std::size_t k_default_node_budget = 4'000'000;

struct check_result {
  bool ok = false;
  bool inconclusive = false;  // node budget exhausted
  std::size_t nodes = 0;      // linearizer nodes expanded (summed per object)
  /// Checker-path observations (coverage-bucket food for the fuzzer):
  /// how many per-object sub-checks ran (0 for the product-spec path, so
  /// `objects > 1` means the decomposition was genuinely taken), and whether
  /// build_records synthesized a recovery-window interval for an op whose
  /// invoke was lost to an announcement-window crash.
  std::size_t objects = 0;
  bool synthesized_interval = false;
  /// Per-object path only: the object id `message` reports (the worst
  /// offender — see check_durable_linearizability_per_object), -1 when the
  /// check passed or did not take the per-object path. Lets callers (the
  /// sharded executor's migrated-object path, serve triage) annotate the
  /// failure without parsing the message.
  std::int64_t failed_object = -1;
  std::string message;
};

/// Convert an event log into checkable op records. Records whose recovery
/// verdict is `fail` are excluded (see header comment). Throws on malformed
/// logs (e.g. response without invoke). `synthesized_interval`, when
/// non-null, is set to true iff some record's interval had to be synthesized
/// from recovery events (announcement-window crash; see the comment inside).
std::vector<op_record> build_records(const std::vector<event>& events,
                                     bool* synthesized_interval = nullptr);

/// Full pipeline: build records, check against the spec.
check_result check_durable_linearizability(
    const std::vector<event>& events, const spec& initial,
    std::size_t node_budget = k_default_node_budget);

/// The objects of a history with their sequential specs, by object id (specs
/// are borrowed; they are cloned internally, never mutated).
using object_spec_list = std::vector<std::pair<std::uint32_t, const spec*>>;

/// The sub-history of one object: its invoke/response/recover events plus
/// every (global) crash event, in original order.
std::vector<event> object_events(const std::vector<event>& events,
                                 std::uint32_t object_id);

/// Cross-run memo for per-object sub-checks. The differ replays one scenario
/// many times (single vs sharded, placement variants, per-object kind
/// substitutions); most replays produce byte-identical per-object event
/// streams for most objects, so their linearizations are pure repeats. The
/// memo keys each sub-check on a 128-bit fingerprint of (spec dynamic type,
/// spec serialized state, node budget, the object's projected event stream)
/// and returns the recorded verdict on a hit. Fingerprints are compared, not
/// the streams themselves — two independent 64-bit FNV-1a hashes make an
/// accidental collision (~2^-64 per pair) vanishingly unlikely against the
/// thousands of sub-checks a fuzz campaign runs.
///
/// Externally synchronized for the parallel driver: lookup()/store() take an
/// internal mutex, so one memo may be shared across the concurrent sub-check
/// lanes of a jobs > 1 check (and across whole concurrent checks). Two lanes
/// that race on the same fingerprint at worst both compute it and store
/// byte-identical results — a benign duplicate, never a wrong answer,
/// because entries are pure functions of their key.
class lin_memo {
 public:
  lin_memo() = default;
  lin_memo(const lin_memo&) = delete;
  lin_memo& operator=(const lin_memo&) = delete;

  std::size_t hits() const noexcept {
    std::scoped_lock lock(mu_);
    return hits_;
  }
  std::size_t misses() const noexcept {
    std::scoped_lock lock(mu_);
    return misses_;
  }
  std::size_t size() const noexcept {
    std::scoped_lock lock(mu_);
    return entries_.size();
  }

  /// The 128-bit fingerprint (implementation detail, public so the checker's
  /// hashing helper can produce one; the entry map itself stays private).
  struct key {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const key& o) const noexcept {
      return lo == o.lo && hi == o.hi;
    }
  };
  struct key_hash {
    std::size_t operator()(const key& k) const noexcept {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ULL));
    }
  };

  /// Checker-internal: copy the recorded verdict for `k` into `*out` and
  /// count a hit; false (and no count) on a miss.
  bool lookup(const key& k, check_result* out);
  /// Checker-internal: record a freshly computed verdict and count the
  /// compute as a miss. First store of a racing pair wins; the loser's
  /// byte-identical result is dropped.
  void store(const key& k, const check_result& r);

 private:
  mutable std::mutex mu_;
  std::unordered_map<key, check_result, key_hash> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Knobs of a durable-linearizability check, threaded as one struct through
/// executor::check → harness::check_per_object → the hist driver (and
/// api::replay / the differ's variant families) instead of a growing
/// positional parameter list. Designated initializers keep call sites
/// self-describing: `check({.node_budget = 1'000'000, .jobs = 4})`.
struct check_options {
  std::size_t node_budget = k_default_node_budget;
  /// Shared fingerprint cache for per-object sub-checks (see lin_memo).
  lin_memo* memo = nullptr;
  /// Memory-model tag mixed into every lin_memo fingerprint — callers that
  /// share one memo across replays under different (visibility, persist)
  /// pairs set it so a verdict recorded under one model pair can never
  /// satisfy a lookup under another. Two model pairs can produce
  /// byte-identical projected event streams for an object while the
  /// surrounding run differs, and a memo keyed on the stream alone would
  /// silently launder the sc verdict into the tso check. api::replay packs
  /// (visibility << 8 | persist) here; 0 is the pre-model-salt legacy value.
  std::uint64_t model_salt = 0;
  /// Per-object sub-check fan-out. 1 (default) runs sub-checks serially on
  /// the calling thread. N > 1 drives them on N lanes of the process-global
  /// util::task_pool — the pool grows to N real workers even on a one-core
  /// host, so an explicit request always exercises true concurrency.
  /// 0 = auto: min(hardware cores, object count), which collapses to inline
  /// serial when the host cannot actually run two lanes at once. Verdicts,
  /// messages, and node counts are byte-identical across every jobs value
  /// (results merge in declaration order; see docs/checking.md).
  int jobs = 1;
};

/// Per-object decomposition: run one linearization per object against its own
/// spec instead of one search against the product spec. Sound and complete —
/// linearizability is compositional, and every real-time edge between two ops
/// of the same object survives the projection — while the search space drops
/// from the product of all objects' interleavings to their sum. Events naming
/// an object absent from `specs` fail the check. Every object is checked
/// (`nodes` sums over all of them; each gets the full node budget); on
/// failure the message names the *worst offender* — the failing object whose
/// own sub-check expanded the most nodes, ties broken toward the smallest
/// object id — a deterministic choice regardless of `opt.jobs`.
check_result check_durable_linearizability_per_object(
    const std::vector<event>& events, const object_spec_list& specs,
    const check_options& opt);

/// Deprecated pre-check_options form (thin shim; prefer the overload above).
check_result check_durable_linearizability_per_object(
    const std::vector<event>& events, const object_spec_list& specs,
    std::size_t node_budget = k_default_node_budget, lin_memo* memo = nullptr);

/// One object's pre-projected sub-history with its spec — what the sharded
/// executor's migrated-object path assembles by hand (prefix carried across
/// shards + the hosting shard's slice), where no single event vector exists
/// to project from.
struct object_stream {
  std::uint32_t id = 0;
  const spec* sp = nullptr;  // borrowed; cloned internally, never mutated
  std::vector<event> events;
};

/// The same parallel driver over pre-projected streams: one independent
/// linearization per stream, fanned out per `opt.jobs`, merged in `streams`
/// order with the worst-offender failure rule above.
check_result check_object_streams(const std::vector<object_stream>& streams,
                                  const check_options& opt);

}  // namespace detect::hist
