// Detectable read-modify-write objects built with Algorithm 2's flip-vector
// technique, demonstrating the composability §6 highlights.
//
// A detectable_rmw applies value' = f(value) in a CAS retry loop; every
// attempt runs the Algorithm-2 capsule: persist the pre-state and the
// expected flipped bit in RD_p, checkpoint, then a single CAS that installs
// the new value and flips vec[p] atomically. On recovery, a flipped vec[p]
// proves the *last* attempt was linearized; the response (derived from the
// pre-state persisted before the attempt) is returned. An unflipped bit means
// no attempt of this operation ever took effect — the operation wrote nothing
// observable — so recovery may report fail.
//
// Instantiations: fetch-and-add / counter (Lemmas 5 and 7's objects) and a
// resettable test-and-set (the object of [3]'s unbounded-space lower bound).
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/detectable_cas.hpp"
#include "core/object.hpp"

namespace detect::core {

class detectable_rmw : public detectable_object {
 public:
  static constexpr int max_procs = detectable_cas::max_procs;

  detectable_rmw(int nprocs, announcement_board& board, value_t init,
                 nvm::pmem_domain& dom)
      : n_(nprocs), board_(&board), c_(cas_word{init, 0}, dom) {
    if (nprocs > max_procs) {
      throw std::invalid_argument("detectable_rmw: N exceeds vector width");
    }
    for (int p = 0; p < n_; ++p) {
      rd_bit_.push_back(std::make_unique<nvm::pvar<std::uint8_t>>(0, dom));
      rd_old_.push_back(std::make_unique<nvm::pvar<value_t>>(0, dom));
    }
  }

  value_t invoke(int pid, const hist::op_desc& op) override {
    if (is_pure_read(op)) {
      ann_fields& ann = board_->of(pid);
      value_t v = c_.load().val;
      ann.resp.store(v);
      return v;
    }
    return run(pid, op);
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    ann_fields& ann = board_->of(pid);
    value_t r = ann.resp.load();
    if (r != hist::k_bottom) return recovery_result::linearized(r);
    if (is_pure_read(op)) {
      // Reads recover by re-invocation, as in Algorithms 1-2.
      return recovery_result::linearized(invoke(pid, op));
    }
    if (ann.cp.load() == 0) return recovery_result::failed();
    cas_word c = c_.load();
    if (static_cast<std::uint8_t>((c.vec >> pid) & 1) != rd_bit_[pid]->load()) {
      // No attempt's CAS took effect; nothing observable was written.
      return recovery_result::failed();
    }
    // The last attempt was linearized; its pre-state yields the response.
    value_t resp = response_of(op, rd_old_[pid]->load());
    ann.resp.store(resp);
    return recovery_result::linearized(resp);
  }

 protected:
  /// The state transition: new value as a function of the old.
  virtual value_t transition(const hist::op_desc& op, value_t old) const = 0;
  /// The operation's response given the old value (default: return old).
  virtual value_t response_of(const hist::op_desc&, value_t old) const {
    return old;
  }
  /// Pure read operation of this object (no write attempt)?
  virtual bool is_pure_read(const hist::op_desc&) const { return false; }
  /// An attempt may short-circuit without writing when the transition is a
  /// no-op (e.g. test-and-set on an already-set bit): linearize at the read.
  virtual bool can_skip_write(const hist::op_desc&, value_t) const {
    return false;
  }

 private:
  value_t run(int p, const hist::op_desc& op) {
    ann_fields& ann = board_->of(p);
    for (;;) {
      cas_word c = c_.load();
      if (can_skip_write(op, c.val)) {
        value_t resp = response_of(op, c.val);
        ann.resp.store(resp);
        return resp;
      }
      std::uint64_t newvec = c.vec ^ (std::uint64_t{1} << p);
      rd_old_[p]->store(c.val);
      rd_bit_[p]->store(static_cast<std::uint8_t>((newvec >> p) & 1));
      ann.cp.store(1);
      cas_word desired{transition(op, c.val), newvec};
      if (c_.compare_exchange(c, desired)) {
        value_t resp = response_of(op, c.val);
        ann.resp.store(resp);
        return resp;
      }
      // Lost the race; retry with a fresh capsule.
    }
  }

  int n_;
  announcement_board* board_;
  nvm::pcell<cas_word> c_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint8_t>>> rd_bit_;
  std::vector<std::unique_ptr<nvm::pvar<value_t>>> rd_old_;
};

/// Detectable counter / fetch-and-add: ctr_add(delta) returns the old value;
/// ctr_read returns the current value.
class detectable_counter final : public detectable_rmw {
 public:
  using detectable_rmw::detectable_rmw;

 protected:
  value_t transition(const hist::op_desc& op, value_t old) const override {
    if (op.code != hist::opcode::ctr_add) {
      throw std::invalid_argument("detectable_counter: bad opcode");
    }
    return old + op.a;
  }
  bool is_pure_read(const hist::op_desc& op) const override {
    return op.code == hist::opcode::ctr_read;
  }
};

/// Detectable swap (fetch-and-store): swap(v) installs v and returns the old
/// value. Swap is doubly-perturbing (it is perturbable in the sense of [21]
/// and the register witness adapts directly), so it needs the full capsule.
class detectable_swap final : public detectable_rmw {
 public:
  using detectable_rmw::detectable_rmw;

 protected:
  value_t transition(const hist::op_desc& op, value_t) const override {
    if (op.code != hist::opcode::swap) {
      throw std::invalid_argument("detectable_swap: bad opcode");
    }
    return op.a;
  }
  bool is_pure_read(const hist::op_desc& op) const override {
    return op.code == hist::opcode::reg_read;
  }
};

/// Detectable resettable test-and-set: tas_set returns the previous bit and
/// sets it; tas_reset clears it.
class detectable_tas final : public detectable_rmw {
 public:
  detectable_tas(int nprocs, announcement_board& brd, nvm::pmem_domain& dom)
      : detectable_rmw(nprocs, brd, 0, dom) {}

 protected:
  value_t transition(const hist::op_desc& op, value_t) const override {
    switch (op.code) {
      case hist::opcode::tas_set:
        return 1;
      case hist::opcode::tas_reset:
        return 0;
      default:
        throw std::invalid_argument("detectable_tas: bad opcode");
    }
  }
  value_t response_of(const hist::op_desc& op, value_t old) const override {
    return op.code == hist::opcode::tas_set ? old : hist::k_ack;
  }
  bool can_skip_write(const hist::op_desc& op, value_t cur) const override {
    // set on an already-set bit and reset on an already-clear bit are
    // no-ops; linearize at the read.
    return (op.code == hist::opcode::tas_set && cur == 1) ||
           (op.code == hist::opcode::tas_reset && cur == 0);
  }
};

}  // namespace detect::core
