// Durable-linearizability + detectability verdict checker.
//
// Translates a raw event log into operation records and hands them to the
// linearizability checker, encoding the two correctness conditions the paper
// targets (§2, §6):
//
//  * Durable linearizability — ops that completed before a crash are
//    mandatory; ops pending at a crash (or at the end of the run) that were
//    never resolved by recovery are optional; the surviving history must
//    linearize.
//  * Detectability — a recovery verdict of `fail` asserts "not linearized":
//    the op is excluded, so if its effect was in fact observed by anyone the
//    remaining history cannot linearize and the checker reports a violation.
//    A verdict of `linearized(v)` asserts "linearized exactly once with
//    response v": the op becomes mandatory with response v.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "history/linearizer.hpp"
#include "history/log.hpp"

namespace detect::hist {

inline constexpr std::size_t k_default_node_budget = 4'000'000;

struct check_result {
  bool ok = false;
  bool inconclusive = false;  // node budget exhausted
  std::size_t nodes = 0;      // linearizer nodes expanded (summed per object)
  /// Checker-path observations (coverage-bucket food for the fuzzer):
  /// how many per-object sub-checks ran (0 for the product-spec path, so
  /// `objects > 1` means the decomposition was genuinely taken), and whether
  /// build_records synthesized a recovery-window interval for an op whose
  /// invoke was lost to an announcement-window crash.
  std::size_t objects = 0;
  bool synthesized_interval = false;
  std::string message;
};

/// Convert an event log into checkable op records. Records whose recovery
/// verdict is `fail` are excluded (see header comment). Throws on malformed
/// logs (e.g. response without invoke). `synthesized_interval`, when
/// non-null, is set to true iff some record's interval had to be synthesized
/// from recovery events (announcement-window crash; see the comment inside).
std::vector<op_record> build_records(const std::vector<event>& events,
                                     bool* synthesized_interval = nullptr);

/// Full pipeline: build records, check against the spec.
check_result check_durable_linearizability(
    const std::vector<event>& events, const spec& initial,
    std::size_t node_budget = k_default_node_budget);

/// The objects of a history with their sequential specs, by object id (specs
/// are borrowed; they are cloned internally, never mutated).
using object_spec_list = std::vector<std::pair<std::uint32_t, const spec*>>;

/// The sub-history of one object: its invoke/response/recover events plus
/// every (global) crash event, in original order.
std::vector<event> object_events(const std::vector<event>& events,
                                 std::uint32_t object_id);

/// Cross-run memo for per-object sub-checks. The differ replays one scenario
/// many times (single vs sharded, placement variants, per-object kind
/// substitutions); most replays produce byte-identical per-object event
/// streams for most objects, so their linearizations are pure repeats. The
/// memo keys each sub-check on a 128-bit fingerprint of (spec dynamic type,
/// spec serialized state, node budget, the object's projected event stream)
/// and returns the recorded verdict on a hit. Fingerprints are compared, not
/// the streams themselves — two independent 64-bit FNV-1a hashes make an
/// accidental collision (~2^-64 per pair) vanishingly unlikely against the
/// thousands of sub-checks a fuzz campaign runs. Not thread-safe; share one
/// memo only across sequential replays of the same scenario family.
class lin_memo {
 public:
  std::size_t hits() const noexcept { return hits_; }
  std::size_t misses() const noexcept { return misses_; }
  std::size_t size() const noexcept { return entries_.size(); }

  /// The 128-bit fingerprint (implementation detail, public so the checker's
  /// hashing helper can produce one; the entry map itself stays private).
  struct key {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const key& o) const noexcept {
      return lo == o.lo && hi == o.hi;
    }
  };
  struct key_hash {
    std::size_t operator()(const key& k) const noexcept {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ULL));
    }
  };

 private:
  friend check_result check_durable_linearizability_per_object(
      const std::vector<event>&, const object_spec_list&, std::size_t,
      lin_memo*);

  std::unordered_map<key, check_result, key_hash> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Per-object decomposition: run one linearization per object against its own
/// spec instead of one search against the product spec. Sound and complete —
/// linearizability is compositional, and every real-time edge between two ops
/// of the same object survives the projection — while the search space drops
/// from the product of all objects' interleavings to their sum. Events naming
/// an object absent from `specs` fail the check. `nodes` accumulates across
/// objects; each object gets the full `node_budget`. With a non-null `memo`,
/// sub-checks whose (spec, budget, object stream) fingerprint was already
/// checked reuse the recorded verdict (see lin_memo).
check_result check_durable_linearizability_per_object(
    const std::vector<event>& events, const object_spec_list& specs,
    std::size_t node_budget = k_default_node_budget, lin_memo* memo = nullptr);

}  // namespace detect::hist
