// Algorithm 1 — bounded-space detectable read/write register.
//
// O's state is one shared register R holding a triplet ⟨v, q, b⟩: the current
// value, the id of the process that last wrote it, and the index of the
// toggle-bit array q used for that write. Each process owns two size-N
// toggle-bit arrays A[·][p][0], A[·][p][1], used by its writes alternately.
//
// The toggle bits replace the unbounded sequence numbers of Attiya et al.:
// before writing, p clears its bit in the previous writer q's *other*
// toggle array; q can only reuse the same toggle index after completing an
// intervening write with the other index, whose closing for-loop sets all of
// its bits of that other array — so on recovery, p's cleared bit being set
// again witnesses that a write was linearized in between (the key observation
// of Lemma 1). Space: R carries O(log N) bits beside the value; the arrays
// are 2N² bits. Both bounded.
//
// Line numbers in comments refer to the paper's pseudo-code.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/object.hpp"
#include "nvm/pcell.hpp"
#include "nvm/pvar.hpp"

namespace detect::core {

/// ⟨value, writer pid, toggle index⟩ packed into one 64-bit word: 48-bit
/// signed value, 15-bit pid, 1-bit toggle.
struct reg_word {
  static constexpr int value_bits = 48;
  static constexpr std::int64_t value_min = -(std::int64_t{1} << (value_bits - 1));
  static constexpr std::int64_t value_max = (std::int64_t{1} << (value_bits - 1)) - 1;

  static std::uint64_t pack(value_t v, int pid, int toggle) {
    if (v < value_min || v > value_max) {
      throw std::out_of_range("detectable_register: value exceeds 48 bits");
    }
    auto uv = static_cast<std::uint64_t>(v) & ((std::uint64_t{1} << value_bits) - 1);
    return uv | (static_cast<std::uint64_t>(pid) << value_bits) |
           (static_cast<std::uint64_t>(toggle) << 63);
  }
  static value_t value_of(std::uint64_t w) {
    auto uv = w & ((std::uint64_t{1} << value_bits) - 1);
    // sign-extend from 48 bits
    if (uv & (std::uint64_t{1} << (value_bits - 1))) {
      uv |= ~((std::uint64_t{1} << value_bits) - 1);
    }
    return static_cast<value_t>(uv);
  }
  static int pid_of(std::uint64_t w) {
    return static_cast<int>((w >> value_bits) & 0x7fff);
  }
  static int toggle_of(std::uint64_t w) { return static_cast<int>(w >> 63); }
};

class detectable_register final : public detectable_object {
 public:
  detectable_register(int nprocs, announcement_board& board, value_t init,
                      nvm::pmem_domain& dom)
      : n_(nprocs),
        board_(&board),
        // R initially ⟨v_init, 0, 0⟩ — the initial value is attributed to a
        // write by process 0 that used toggle-bit array 0.
        r_(reg_word::pack(init, 0, 0), dom) {
    a_.reserve(static_cast<std::size_t>(n_) * n_ * 2);
    for (int i = 0; i < n_ * n_ * 2; ++i) {
      a_.push_back(std::make_unique<nvm::pcell<std::uint8_t>>(0, dom));
    }
    rd_.reserve(static_cast<std::size_t>(n_));
    t_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      rd_.push_back(std::make_unique<nvm::pvar<rd_data>>(rd_data{}, dom));
      t_.push_back(std::make_unique<nvm::pvar<std::uint8_t>>(0, dom));
    }
  }

  value_t invoke(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::reg_write:
        return write(pid, op.a);
      case hist::opcode::reg_read:
        return read(pid);
      default:
        throw std::invalid_argument("detectable_register: bad opcode");
    }
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::reg_write:
        return write_recover(pid, op.a);
      case hist::opcode::reg_read:
        return read_recover(pid);
      default:
        throw std::invalid_argument("detectable_register: bad opcode");
    }
  }

  int nprocs() const noexcept { return n_; }

  /// Shared-memory footprint in bits (beyond nothing: includes the value
  /// field). Used by experiment E1.
  std::size_t shared_bits() const noexcept {
    return 64 + static_cast<std::size_t>(n_) * n_ * 2;
  }

 private:
  struct rd_data {
    std::uint8_t mtoggle = 0;
    std::uint64_t qword = 0;  // ⟨qval, q, qtoggle⟩ as read in line 1
  };

  nvm::pcell<std::uint8_t>& a(int i, int j, int t) {
    return *a_[(static_cast<std::size_t>(i) * n_ + j) * 2 + t];
  }

  value_t write(int p, value_t val) {
    ann_fields& ann = board_->of(p);
    std::uint64_t qword = r_.load();             // line 1
    int q = reg_word::pid_of(qword);
    int qtoggle = reg_word::toggle_of(qword);
    a(p, q, 1 - qtoggle).store(0);               // line 2
    std::uint8_t mtoggle = t_[p]->load();        // line 3
    rd_[p]->store({mtoggle, qword});             // line 4
    if (r_.load() == qword) {                    // line 5 (inverted)
      ann.cp.store(1);                           // line 6
      r_.store(reg_word::pack(val, p, mtoggle)); // line 7
    }
    ann.cp.store(2);                             // line 8
    for (int i = 0; i < n_; ++i) {               // lines 9-10
      a(i, p, mtoggle).store(1);
    }
    t_[p]->store(static_cast<std::uint8_t>(1 - mtoggle));  // line 11
    ann.resp.store(hist::k_ack);                 // line 12
    return hist::k_ack;                          // line 13
  }

  recovery_result write_recover(int p, value_t /*val*/) {
    ann_fields& ann = board_->of(p);
    rd_data rd = rd_[p]->load();                 // line 14
    if (ann.resp.load() != hist::k_bottom) {     // lines 15-16
      return recovery_result::linearized(hist::k_ack);
    }
    if (ann.cp.load() == 0) {                    // lines 17-18
      return recovery_result::failed();
    }
    if (ann.cp.load() == 1) {                    // line 19
      int q = reg_word::pid_of(rd.qword);
      int qtoggle = reg_word::toggle_of(rd.qword);
      if (r_.load() == rd.qword &&               // line 20
          a(p, q, 1 - qtoggle).load() == 0) {
        return recovery_result::failed();        // line 21
      }
    }
    ann.cp.store(2);                             // line 22
    for (int i = 0; i < n_; ++i) {               // lines 23-24
      a(i, p, rd.mtoggle).store(1);
    }
    t_[p]->store(static_cast<std::uint8_t>(1 - rd.mtoggle));  // line 25
    ann.resp.store(hist::k_ack);                 // line 26
    return recovery_result::linearized(hist::k_ack);          // line 27
  }

  value_t read(int p) {
    ann_fields& ann = board_->of(p);
    value_t v = reg_word::value_of(r_.load());
    ann.resp.store(v);
    return v;
  }

  recovery_result read_recover(int p) {
    ann_fields& ann = board_->of(p);
    value_t v = ann.resp.load();
    if (v != hist::k_bottom) return recovery_result::linearized(v);
    // Re-invoke Read (§3: "its recovery function re-invokes Read if
    // Ann_p.resp = ⊥ holds").
    return recovery_result::linearized(read(p));
  }

  int n_;
  announcement_board* board_;
  nvm::pcell<std::uint64_t> r_;
  std::vector<std::unique_ptr<nvm::pcell<std::uint8_t>>> a_;  // A[N][N][2]
  std::vector<std::unique_ptr<nvm::pvar<rd_data>>> rd_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint8_t>>> t_;
};

}  // namespace detect::core
