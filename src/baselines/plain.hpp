// Non-recoverable ("plain") counterparts, two roles:
//   * performance baselines for E6 (the cost of detectability),
//   * step-count baselines for E5 (instructions added by detection logic).
//
// Their recovery functions return fail unconditionally — they genuinely
// cannot tell whether an interrupted operation was linearized. Never use
// them under crash plans when checking detectability; that is the point.
#pragma once

#include <stdexcept>

#include "core/object.hpp"
#include "nvm/pcell.hpp"

namespace detect::base {

class plain_register final : public core::detectable_object {
 public:
  plain_register(value_t init, nvm::pmem_domain& dom) : r_(init, dom) {}

  value_t invoke(int, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::reg_write:
        r_.store(op.a);
        return hist::k_ack;
      case hist::opcode::reg_read:
        return r_.load();
      default:
        throw std::invalid_argument("plain_register: bad opcode");
    }
  }

  recovery_result recover(int, const hist::op_desc&) override {
    return recovery_result::failed();  // not detectable
  }

  bool wants_aux_reset() const override { return false; }

 private:
  nvm::pcell<value_t> r_;
};

class plain_cas final : public core::detectable_object {
 public:
  plain_cas(value_t init, nvm::pmem_domain& dom) : c_(init, dom) {}

  value_t invoke(int, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::cas: {
        value_t expect = op.a;
        return c_.compare_exchange(expect, op.b) ? hist::k_true : hist::k_false;
      }
      case hist::opcode::cas_read:
        return c_.load();
      default:
        throw std::invalid_argument("plain_cas: bad opcode");
    }
  }

  recovery_result recover(int, const hist::op_desc&) override {
    return recovery_result::failed();  // not detectable
  }

  bool wants_aux_reset() const override { return false; }

 private:
  nvm::pcell<value_t> c_;
};

class plain_counter final : public core::detectable_object {
 public:
  plain_counter(value_t init, nvm::pmem_domain& dom) : c_(init, dom) {}

  value_t invoke(int, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::ctr_add: {
        for (;;) {
          value_t cur = c_.load();
          if (c_.compare_exchange(cur, cur + op.a)) return cur;
        }
      }
      case hist::opcode::ctr_read:
        return c_.load();
      default:
        throw std::invalid_argument("plain_counter: bad opcode");
    }
  }

  recovery_result recover(int, const hist::op_desc&) override {
    return recovery_result::failed();  // not detectable
  }

  bool wants_aux_reset() const override { return false; }

 private:
  nvm::pcell<value_t> c_;
};

}  // namespace detect::base
