// Cross-module integration: multiple objects in one world, mixed workloads
// with crashes, shared-cache mode end-to-end, and longer torture runs checked
// in segments.
#include <gtest/gtest.h>

#include "baselines/attiya_register.hpp"
#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/max_register.hpp"
#include "core/queue.hpp"
#include "core/rmw.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario_config mixed_scenario(core::runtime::fail_policy policy =
                                   core::runtime::fail_policy::skip) {
  scenario_config cfg;
  cfg.nprocs = 3;
  cfg.policy = policy;
  cfg.scripts = {
      {0, {op_write(1, 0), op_cas(0, 1, 1), op_enq(7, 2)}},
      {1, {op_cas(0, 2, 1), op_read(0), op_deq(2)}},
      {2, {op_enq(9, 2), op_write(5, 0), op_cas_read(1)}},
  };
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_register>(3, f.board, 0,
                                                               f.w.domain()));
    objs.push_back(
        std::make_unique<core::detectable_cas>(3, f.board, 0, f.w.domain()));
    objs.push_back(std::make_unique<core::detectable_queue>(3, f.board, 32,
                                                            f.w.domain()));
    f.rt.register_object(0, *objs[0]);
    f.rt.register_object(1, *objs[1]);
    f.rt.register_object(2, *objs[2]);
  };
  cfg.make_spec = [] {
    auto m = std::make_unique<hist::multi_spec>();
    m->add_object(0, std::make_unique<hist::register_spec>(0));
    m->add_object(1, std::make_unique<hist::cas_spec>(0));
    m->add_object(2, std::make_unique<hist::queue_spec>());
    return std::unique_ptr<hist::spec>(std::move(m));
  };
  return cfg;
}

TEST(integration, mixed_objects_many_seeds) {
  auto cfg = mixed_scenario();
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(integration, mixed_objects_crash_sweep) {
  crash_sweep(mixed_scenario(), 11);
}

TEST(integration, mixed_objects_crash_fuzz_retry) {
  crash_fuzz(mixed_scenario(core::runtime::fail_policy::retry), 80, 2);
}

TEST(integration, shared_cache_mixed_end_to_end) {
  auto cfg = mixed_scenario();
  auto inner = cfg.make_objects;
  cfg.make_objects = [inner](sim_fixture& f,
                             std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    f.w.domain().set_model(nvm::cache_model::shared_cache);
    f.w.domain().set_auto_persist(true);
    inner(f, objs);
    f.w.domain().persist_all();
  };
  crash_fuzz(cfg, 60, 2);
}

TEST(integration, one_process_uses_many_objects_through_crashes) {
  scenario_config cfg;
  cfg.nprocs = 2;
  cfg.policy = core::runtime::fail_policy::retry;
  cfg.scripts = {
      {0,
       {op_add(1, 0), op_max_write(5, 1), op_add(2, 0), op_max_read(1),
        op_ctr_read(0)}},
      {1, {op_add(10, 0), op_max_write(3, 1)}},
  };
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_counter>(2, f.board, 0,
                                                              f.w.domain()));
    objs.push_back(
        std::make_unique<core::max_register>(2, f.board, f.w.domain()));
    f.rt.register_object(0, *objs[0]);
    f.rt.register_object(1, *objs[1]);
  };
  cfg.make_spec = [] {
    auto m = std::make_unique<hist::multi_spec>();
    m->add_object(0, std::make_unique<hist::counter_spec>(0));
    m->add_object(1, std::make_unique<hist::max_register_spec>(0));
    return std::unique_ptr<hist::spec>(std::move(m));
  };
  crash_sweep(cfg, 41);
  crash_fuzz(cfg, 60, 3);
}

TEST(integration, algorithm1_and_baseline_agree_across_schedules) {
  // Run the same scripts against Algorithm 1 and the Attiya-style baseline;
  // both must pass the same checker (they implement the same abstract
  // object).
  std::map<int, std::vector<hist::op_desc>> scripts = {
      {0, {op_write(1), op_write(2)}},
      {1, {op_write(5), op_read()}},
  };
  for (bool use_baseline : {false, true}) {
    scenario_config cfg;
    cfg.nprocs = 2;
    cfg.scripts = scripts;
    cfg.make_objects = [use_baseline](
                           sim_fixture& f,
                           std::vector<std::unique_ptr<core::detectable_object>>& objs) {
      if (use_baseline) {
        objs.push_back(std::make_unique<base::attiya_register>(2, f.board, 0,
                                                               f.w.domain()));
      } else {
        objs.push_back(std::make_unique<core::detectable_register>(
            2, f.board, 0, f.w.domain()));
      }
      f.rt.register_object(0, *objs.back());
    };
    cfg.make_spec = [] {
      return std::unique_ptr<hist::spec>(new hist::register_spec(0));
    };
    crash_fuzz(cfg, 60, 2, use_baseline ? 0xabc : 0xdef);
  }
}

TEST(integration, torture_long_run_segments) {
  // Longer run: 3 procs × 6 ops with 3 crashes, history checked whole
  // (within the 64-op checker limit).
  scenario_config cfg;
  cfg.nprocs = 3;
  cfg.policy = core::runtime::fail_policy::retry;
  cfg.scripts = {
      {0, {op_write(1), op_read(), op_write(2), op_read(), op_write(3), op_read()}},
      {1, {op_write(4), op_read(), op_write(5), op_read(), op_write(6), op_read()}},
      {2, {op_read(), op_write(7), op_read(), op_write(8), op_read(), op_write(9)}},
  };
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_register>(3, f.board, 0,
                                                               f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::register_spec(0));
  };
  crash_fuzz(cfg, 30, 3);
}

TEST(integration, shared_cache_without_transform_is_detectably_broken) {
  // Negative result motivating §6's syntactic transformation: run Algorithm 1
  // in the shared-cache model with auto-persist OFF and no explicit flushes.
  // A completed write whose cache line was never persisted is lost by a
  // crash, and a subsequent read observes the rollback — the checker must
  // reject the history.
  // Crash-free baseline: establish the run length (the crash-free run is
  // correct even without flushes).
  run_outcome probe = [&] {
    scenario_config cfg;
    cfg.nprocs = 1;
    cfg.scripts = {{0, {op_write(1), op_read()}}};
    cfg.make_objects = [](sim_fixture& ff,
                          std::vector<std::unique_ptr<core::detectable_object>>& objs) {
      ff.w.domain().set_model(nvm::cache_model::shared_cache);
      ff.w.domain().set_auto_persist(false);
      objs.push_back(std::make_unique<core::detectable_register>(
          1, ff.board, 0, ff.w.domain()));
      ff.rt.register_object(0, *objs.back());
      ff.w.domain().persist_all();
    };
    cfg.make_spec = [] {
      return std::unique_ptr<hist::spec>(new hist::register_spec(0));
    };
    return run_scenario(cfg, 1);
  }();
  ASSERT_TRUE(probe.check.ok) << "crash-free run is fine even without flushes";

  // Now sweep crash points; at least one placement (crash right after the
  // write completed, before the read) must yield a violation.
  bool violation_found = false;
  for (std::uint64_t k = 0; k < probe.report.steps; ++k) {
    scenario_config cfg;
    cfg.nprocs = 1;
    cfg.scripts = {{0, {op_write(1), op_read()}}};
    cfg.make_objects = [](sim_fixture& ff,
                          std::vector<std::unique_ptr<core::detectable_object>>& objs) {
      ff.w.domain().set_model(nvm::cache_model::shared_cache);
      ff.w.domain().set_auto_persist(false);
      objs.push_back(std::make_unique<core::detectable_register>(
          1, ff.board, 0, ff.w.domain()));
      ff.rt.register_object(0, *objs.back());
      ff.w.domain().persist_all();
    };
    cfg.make_spec = [] {
      return std::unique_ptr<hist::spec>(new hist::register_spec(0));
    };
    auto out = run_scenario(cfg, 1, {k});
    if (!out.check.ok) {
      violation_found = true;
      break;
    }
  }
  EXPECT_TRUE(violation_found)
      << "without persist instructions the shared-cache model must lose a "
         "completed write at some crash point";
}

TEST(integration, step_counts_scale_linearly_with_n) {
  // Wait-freedom (E5 shape): per-op step count grows at most linearly in N
  // for Algorithm 1 (the toggle loop) and is constant for Algorithm 2.
  std::vector<double> reg_steps_per_op;
  std::vector<double> cas_steps_per_op;
  for (int n : {2, 4, 8}) {
    {
      sim_fixture f(n);
      core::detectable_register reg(n, f.board, 0, f.w.domain());
      f.rt.register_object(0, reg);
      for (int p = 0; p < n; ++p) f.rt.set_script(p, {op_write(p + 1)});
      sim::round_robin_scheduler rr;
      auto rep = f.rt.run(rr);
      reg_steps_per_op.push_back(static_cast<double>(rep.steps) / n);
    }
    {
      sim_fixture f(n);
      core::detectable_cas cas(n, f.board, 0, f.w.domain());
      f.rt.register_object(0, cas);
      for (int p = 0; p < n; ++p) f.rt.set_script(p, {op_cas(p, p + 1)});
      sim::round_robin_scheduler rr;
      auto rep = f.rt.run(rr);
      cas_steps_per_op.push_back(static_cast<double>(rep.steps) / n);
    }
  }
  // Register: linear growth — steps/op at N=8 should exceed N=2's.
  EXPECT_GT(reg_steps_per_op[2], reg_steps_per_op[0]);
  // CAS: constant — steps/op at N=8 within 2x of N=2 (announce overhead).
  EXPECT_LT(cas_steps_per_op[2], cas_steps_per_op[0] * 2.0);
}

}  // namespace
