// scenario_gen — deterministic registry-driven workload synthesis.
//
// Given a seed and a primary registry kind, synthesize a multi-process,
// multi-object op script: object count and kinds (primary kind as object 0,
// extra objects drawn from `object_kind_pool`), per-process op mix with
// per-op target objects, crash points, scheduler seed, fail policy,
// flush/memory-model policy, shard count, and execution backend are all
// derived from the seed through one xorshift64* stream, so the same
// (seed, kind, config) triple always yields the identical scenario —
// `fuzz_main --seed S` reproduces any run bit-for-bit.
//
// Argument domains are deliberately tiny (values 0..7) so CAS expectations
// collide, queue/stack runs hit both the non-empty and k_empty paths, and
// the checker's search stays tractable.
//
// Kinds with usage contracts are generated within them: the recoverable
// lock's recovery is only sound when a client never invokes try_lock while
// possibly holding (rlock.hpp), so lock scripts alternate try/release per
// (process, object) and crashy lock scenarios use fail_policy::retry.
//
// `mutate()` is the coverage-steered campaign's other generation mode: a
// structural edit of an existing (corpus) scenario — flip a knob, add or
// drop an object, retarget or rewrite an op — followed by a contract-repair
// pass, so mutants stay inside the same usage contracts `generate()`
// enforces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/api.hpp"

namespace detect::fuzz {

struct gen_config {
  int min_procs = 1;
  int max_procs = 3;
  /// Per-process script length bounds.
  int min_ops = 1;
  int max_ops = 8;
  /// Crash plan: up to `max_crashes` crash points uniformly below
  /// `max_crash_step`. Ignored (no crashes generated) when `crashes` is
  /// false — non-detectable kinds are only meaningful crash-free.
  bool crashes = true;
  int max_crashes = 3;
  std::uint64_t max_crash_step = 160;
  /// Allow the generator to pick fail_policy::retry / the shared-cache
  /// memory model for a fraction of scenarios.
  bool allow_retry = true;
  bool allow_shared_cache = true;
  /// Argument domain for generated op values: 0 .. value_range-1.
  hist::value_t value_range = 8;
  /// Sharded-equivalence knob: scenarios draw `shards` from
  /// [min_shards, max_shards] out of the same xorshift stream (when
  /// min_shards == 1 a coin first keeps about half of them unsharded);
  /// fuzz::diff_sharded then replays single vs sharded for every scenario
  /// with shards > 1. max_shards <= 1 disables the knob entirely.
  int min_shards = 1;
  int max_shards = 4;
  /// Multi-object knob: scenarios declare between min_objects and
  /// max_objects objects — object 0 is the primary kind, extras draw their
  /// kinds from `object_kind_pool`. An empty pool disables the knob
  /// (single-object scenarios only), which keeps `generate(seed, kind)`
  /// deterministic against later registry additions; campaign drivers fill
  /// the pool from their configured kind list. When min_objects == 1 a coin
  /// keeps about half of the scenarios single-object.
  int min_objects = 1;
  int max_objects = 4;
  std::vector<std::string> object_kind_pool;
  /// Let scenarios with shards > 1 run directly on the sharded backend for
  /// about a quarter of the draws (the rest keep backend single, where the
  /// shard knob feeds the single-vs-sharded equivalence diff instead).
  bool allow_sharded_backend = true;
  /// Placement knob: scenarios with shards > 1 draw a placement policy from
  /// the same xorshift stream (modulo/hash/range, plus pinned with explicit
  /// per-object pins). Empty = draw freely; a placement name pins every
  /// generated scenario to that policy (fuzz_main --placement). "none"
  /// disables the knob (every scenario keeps modulo).
  std::string placement;
  /// Migration knob: crash-free sharded-backend scenarios draw a small
  /// migration plan (run, migrate, run the scripts again) for about a
  /// quarter of the draws. Crashy scenarios never carry migrations — the
  /// second script round would see different (shard-local) crash schedules
  /// on the two sides of the cross-backend diffs.
  bool allow_migrations = true;
  /// Schedule-strategy pool: each scenario draws its exploration strategy
  /// uniformly from this list ("round_robin", "uniform_random", "pct"). The
  /// default keeps the historical draw stream byte-identical — no schedule
  /// draw happens at all, and every scenario stays uniform_random. A "pct"
  /// draw also picks a preemption budget in [1, pct_depth] and materializes
  /// that many preemption points over the scenario's expected step horizon.
  std::vector<std::string> sched_pool{"uniform_random"};
  int pct_depth = 3;
  /// Persistency-model pool, same shape ("strict", "buffered"); the default
  /// draws nothing and keeps every scenario strict.
  std::vector<std::string> persist_pool{"strict"};
  /// Store-buffer visibility-model pool, same shape ("sc", "tso", "pso");
  /// the default draws nothing and keeps every scenario sc — historic seed
  /// streams stay byte-identical. A non-sc draw also draws up to three
  /// scripted full-drain points over the scenario's step horizon
  /// (drain_steps), on top of the drain steps the scheduler explores freely.
  std::vector<std::string> visibility_pool{"sc"};
};

/// One random operation for `family`, drawn from family_opcodes(). `pid` is
/// threaded through because lock operations carry the caller's pid.
hist::op_desc random_op(std::uint64_t& rng, api::op_family family, int pid,
                        const gen_config& cfg);

/// Synthesize the full scenario for primary kind `kind` from `seed`. The
/// declared objects' detectability (registry metadata) gates crash
/// injection: a scenario containing any non-detectable object (plain_*,
/// stripped_*) is generated crash-free regardless of `cfg.crashes`.
api::scripted_scenario generate(std::uint64_t seed, const std::string& kind,
                                const gen_config& cfg = {});

/// One structural mutation of `base` drawn from `rng` (knob flip, crash
/// edit, object add/drop, op retarget/rewrite/append), contract-repaired so
/// the result is as replayable as a generated scenario. Deterministic in
/// (base, rng state, cfg).
api::scripted_scenario mutate(const api::scripted_scenario& base,
                              std::uint64_t& rng, const gen_config& cfg);

/// Contract-repair pass shared by generate() and mutate(): clears the crash
/// plan when any object is non-detectable, forces fail_policy::retry on
/// crashy lock scenarios, repairs per-(process, object) try/release
/// alternation, de-degenerates Cas(x, x) ops, drops migration plans from
/// crashy scenarios (and ones that no longer fit the shard count), and
/// balances lock scripts (ending not-holding) when a migration plan makes
/// the scripts run twice.
void enforce_contracts(api::scripted_scenario& s);

/// The seed of iteration `iter` in a fuzz campaign starting at `base_seed`
/// (splitmix64 step — decorrelates consecutive iterations).
std::uint64_t iteration_seed(std::uint64_t base_seed, std::uint64_t iter);

}  // namespace detect::fuzz
