// Algorithm 2 — bounded-space detectable CAS object.
//
// O's state is one shared variable C holding ⟨value, vec⟩ where vec is an
// N-bit vector, all zeros initially. A Cas(old, new) by p that should succeed
// atomically installs `new` *and* flips vec[p]. Since p is the only process
// ever touching vec[p] and the only mutation is that CAS, on recovery p
// compares vec[p] against the flipped bit it persisted in RD_p before the
// attempt: changed ⇒ the CAS was linearized (response true); unchanged ⇒ the
// CAS either failed or was never executed, and in both cases the operation
// can be declared not linearized (fail) because it wrote nothing any other
// process could have read (Lemma 2).
//
// Space: Θ(N) bits beyond the value — which Theorem 1 shows is optimal.
// The ⟨value, vec⟩ pair packs into a 16-byte cell (lock-free with cmpxchg16b),
// bounding N at 64 in this representation; the paper's open problem (§6) asks
// whether O(log N)-bit registers can do the job at all.
//
// Usage contract (found by the differential fuzzer): operations must have
// old ≠ new. The single-attempt CAS on line 35 reports failure whenever C
// changed since line 28, and the linearization point of a failed Cas(old,
// new) is the first concurrent successful CAS in its window — which changed
// the value away from `old` only if no operation writes its own expected
// value. A degenerate Cas(x, x) success flips vec while leaving the value
// in place, making a concurrent victim's failure non-linearizable. The
// paper's operation universe, Cas(i, i+1 mod |V|), satisfies the contract.
//
// Line numbers in comments refer to the paper's pseudo-code.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/object.hpp"
#include "nvm/pcell.hpp"
#include "nvm/pvar.hpp"

namespace detect::core {

/// The contents of C: O's value plus the N-bit flip vector.
struct cas_word {
  value_t val = 0;
  std::uint64_t vec = 0;

  friend bool operator==(const cas_word&, const cas_word&) = default;
};
static_assert(sizeof(cas_word) == 16);

class detectable_cas final : public detectable_object {
 public:
  static constexpr int max_procs = 64;

  detectable_cas(int nprocs, announcement_board& board, value_t init,
                 nvm::pmem_domain& dom)
      : n_(nprocs), board_(&board), c_(cas_word{init, 0}, dom) {
    if (nprocs > max_procs) {
      throw std::invalid_argument("detectable_cas: N exceeds vector width");
    }
    rd_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      rd_.push_back(std::make_unique<nvm::pvar<std::uint8_t>>(0, dom));
    }
  }

  value_t invoke(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::cas:
        return cas(pid, op.a, op.b);
      case hist::opcode::cas_read:
        return read(pid);
      default:
        throw std::invalid_argument("detectable_cas: bad opcode");
    }
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::cas:
        return cas_recover(pid, op.a, op.b);
      case hist::opcode::cas_read:
        return read_recover(pid);
      default:
        throw std::invalid_argument("detectable_cas: bad opcode");
    }
  }

  /// Shared-memory footprint in bits beyond the value field (E1): the N-bit
  /// flip vector.
  std::size_t extra_shared_bits() const noexcept {
    return static_cast<std::size_t>(n_);
  }

 private:
  static std::uint64_t flip_bit(std::uint64_t vec, int p) {
    return vec ^ (std::uint64_t{1} << p);
  }

  value_t cas(int p, value_t old_v, value_t new_v) {
    ann_fields& ann = board_->of(p);
    cas_word c = c_.load();                       // line 28
    if (c.val != old_v) {                         // line 29: CAS failed
      ann.resp.store(hist::k_false);              // line 30
      return hist::k_false;                       // line 31
    }
    std::uint64_t newvec = flip_bit(c.vec, p);    // line 32
    rd_[p]->store(                                // line 33: persist new bit
        static_cast<std::uint8_t>((newvec >> p) & 1));
    ann.cp.store(1);                              // line 34: set checkpoint
    cas_word desired{new_v, newvec};
    bool res = c_.compare_exchange(c, desired);   // line 35
    ann.resp.store(res ? hist::k_true : hist::k_false);  // line 36
    return res ? hist::k_true : hist::k_false;    // line 37
  }

  recovery_result cas_recover(int p, value_t /*old_v*/, value_t /*new_v*/) {
    ann_fields& ann = board_->of(p);
    value_t r = ann.resp.load();                  // lines 38-39
    if (r != hist::k_bottom) return recovery_result::linearized(r);
    if (ann.cp.load() == 0) {                     // lines 40-41
      return recovery_result::failed();
    }
    cas_word c = c_.load();                       // line 42
    if (static_cast<std::uint8_t>((c.vec >> p) & 1) != rd_[p]->load()) {
      return recovery_result::failed();           // lines 43-44
    }
    ann.resp.store(hist::k_true);                 // line 45
    return recovery_result::linearized(hist::k_true);  // line 46
  }

  value_t read(int p) {
    ann_fields& ann = board_->of(p);
    value_t v = c_.load().val;
    ann.resp.store(v);
    return v;
  }

  recovery_result read_recover(int p) {
    ann_fields& ann = board_->of(p);
    value_t v = ann.resp.load();
    if (v != hist::k_bottom) return recovery_result::linearized(v);
    return recovery_result::linearized(read(p));
  }

  int n_;
  announcement_board* board_;
  nvm::pcell<cas_word> c_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint8_t>>> rd_;
};

}  // namespace detect::core
