#include "sim/strand.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>

// ---------------------------------------------------------------------------
// Sanitizer support. Under ASan every stack switch must be bracketed by the
// fiber annotations or the fake-stack machinery corrupts redzones.

#if defined(__SANITIZE_ADDRESS__)
#define DETECT_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DETECT_ASAN_FIBERS 1
#endif
#endif
#ifndef DETECT_ASAN_FIBERS
#define DETECT_ASAN_FIBERS 0
#endif

#if DETECT_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

// ---------------------------------------------------------------------------
// Context-switch backend. On x86-64 ELF targets a hand-rolled switch keeps
// the step cost at a handful of register moves; glibc's swapcontext would
// add an rt_sigprocmask syscall per switch (~1 µs a pair), most of the
// budget this engine exists to eliminate. Elsewhere, fall back to ucontext.

#if defined(__x86_64__) && defined(__ELF__)
#define DETECT_FIBER_ASM 1
#else
#define DETECT_FIBER_ASM 0
#include <ucontext.h>
#endif

#if DETECT_FIBER_ASM

// detect_ctx_switch(void** save_sp /*rdi*/, void* load_sp /*rsi*/): save the
// SysV callee-saved set plus the FP control words on the current stack,
// publish the stack pointer through *save_sp, adopt load_sp, restore, and
// return on the other stack. Fresh fibers are armed with a frame whose
// return address is detect_fiber_entry, which forwards the strand pointer
// (parked in r12) to the C++ trampoline (parked in rbx).
asm(R"(
.text
.globl detect_ctx_switch
.hidden detect_ctx_switch
.type detect_ctx_switch, @function
.align 16
detect_ctx_switch:
  .cfi_startproc
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq $8, %rsp
  stmxcsr 4(%rsp)
  fnstcw  (%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  ldmxcsr 4(%rsp)
  fldcw   (%rsp)
  addq $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  retq
  .cfi_endproc

.globl detect_fiber_entry
.hidden detect_fiber_entry
.type detect_fiber_entry, @function
.align 16
detect_fiber_entry:
  .cfi_startproc
  .cfi_undefined rip
  movq %r12, %rdi
  callq *%rbx
  ud2
  .cfi_endproc
)");

extern "C" void detect_ctx_switch(void** save_sp, void* load_sp);
extern "C" void detect_fiber_entry();

#endif  // DETECT_FIBER_ASM

namespace detect::sim {

namespace {

std::atomic<engine_kind> g_default_engine{engine_kind::fiber};

// Object code runs shallow (ops, recovery, logging); the linearizability
// checker's deep recursion runs on the driving thread, never on a fiber.
constexpr std::size_t k_fiber_stack_bytes = 256 * 1024;

// ---------------------------------------------------------------------------
// fiber_strand

class fiber_strand final : public strand {
 public:
  fiber_strand() : stack_(std::make_unique<unsigned char[]>(k_fiber_stack_bytes)) {}

  ~fiber_strand() override {
    // A task may still be parked mid-run (e.g. the world died at a step
    // limit): unwind it on its own stack before the stack goes away.
    stopping_ = true;
    while (status_ == status::at_yield) {
      crash_me_ = true;
      enter();
    }
  }

  void start(std::function<void()> task) override {
    task_ = std::move(task);
    interrupted_ = false;
    arm();
    enter();
  }

  void step() override { enter(); }

  void deliver_crash() override {
    // Loop: a task that swallows `crashed` and touches memory again is hit
    // again at its next yield (mirrors the thread engine's sticky flag).
    while (status_ != status::done) {
      crash_me_ = true;
      enter();
    }
  }

  // Runs on the fiber, from inside pcell/pvar.
  void before_access(nvm::access kind) override {
    if (stopping_) throw nvm::crashed{};
    pending_kind_ = kind;
    status_ = status::at_yield;
    yield_to_driver();
    if (crash_me_) {
      crash_me_ = false;
      // Unwind: volatile local state of the operation is lost here.
      throw nvm::crashed{};
    }
  }

 private:
  // Build a fresh initial frame on the (reused) stack. The previous task, if
  // any, has fully returned or unwound, so the stack is dead above the base.
  void arm() {
#if DETECT_FIBER_ASM
    auto top = (reinterpret_cast<std::uintptr_t>(stack_.get()) +
                k_fiber_stack_bytes) &
               ~std::uintptr_t{15};
    auto* sp = reinterpret_cast<std::uint64_t*>(top);
    *--sp = reinterpret_cast<std::uint64_t>(&detect_fiber_entry);  // ret target
    *--sp = 0;                                                     // rbp
    *--sp = reinterpret_cast<std::uint64_t>(&fiber_strand::fiber_main);  // rbx
    *--sp = reinterpret_cast<std::uint64_t>(this);                 // r12
    *--sp = 0;                                                     // r13
    *--sp = 0;                                                     // r14
    *--sp = 0;                                                     // r15
    std::uint32_t mxcsr = 0;
    std::uint16_t fcw = 0;
    asm volatile("stmxcsr %0" : "=m"(mxcsr));
    asm volatile("fnstcw %0" : "=m"(fcw));
    // The switch restores fcw from (%rsp) and mxcsr from 4(%rsp).
    *--sp = (std::uint64_t{mxcsr} << 32) | fcw;
    fiber_sp_ = sp;
#else
    getcontext(&fiber_ctx_);
    fiber_ctx_.uc_stack.ss_sp = stack_.get();
    fiber_ctx_.uc_stack.ss_size = k_fiber_stack_bytes;
    fiber_ctx_.uc_link = nullptr;
    auto bits = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&fiber_ctx_, reinterpret_cast<void (*)()>(&fiber_strand::ucontext_entry),
                2, static_cast<unsigned>(bits >> 32),
                static_cast<unsigned>(bits & 0xffffffffu));
#endif
  }

  // Driver side: run the fiber until it parks or finishes. The strand
  // installs itself as the NVM hook only while its fiber is live, so direct
  // accesses from the driving thread between steps stay hook-free.
  void enter() {
    nvm::access_hook* prev = nvm::tls_hook();
    nvm::tls_hook() = this;
#if DETECT_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&driver_fake_, stack_.get(),
                                   k_fiber_stack_bytes);
#endif
    switch_to_fiber();
#if DETECT_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(driver_fake_, nullptr, nullptr);
#endif
    nvm::tls_hook() = prev;
  }

  // Fiber side: park until the driver grants the next step. Re-reads the
  // driver's stack bounds on every resume — successive steps of one run may
  // legally be driven from different threads (e.g. a shard worker pool).
  void yield_to_driver() {
#if DETECT_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&fiber_fake_, driver_stack_bottom_,
                                   driver_stack_size_);
#endif
    switch_to_driver();
#if DETECT_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fiber_fake_, &driver_stack_bottom_,
                                    &driver_stack_size_);
#endif
  }

  static void fiber_main(fiber_strand* self) {
#if DETECT_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(nullptr, &self->driver_stack_bottom_,
                                    &self->driver_stack_size_);
#endif
    auto task = std::move(self->task_);
    self->task_ = nullptr;
    try {
      task();
    } catch (const nvm::crashed&) {
      self->interrupted_ = true;
    } catch (...) {
      self->error_ = std::current_exception();
    }
    task = nullptr;  // drop captured state while still on the fiber
    self->status_ = status::done;
#if DETECT_ASAN_FIBERS
    // nullptr fake_stack_save: this fiber is exiting for good — free its
    // fake stack instead of parking it.
    __sanitizer_start_switch_fiber(nullptr, self->driver_stack_bottom_,
                                   self->driver_stack_size_);
#endif
    self->switch_to_driver();
    // unreachable: the driver never re-enters a done fiber
  }

#if DETECT_FIBER_ASM
  void switch_to_fiber() { detect_ctx_switch(&driver_sp_, fiber_sp_); }
  void switch_to_driver() { detect_ctx_switch(&fiber_sp_, driver_sp_); }
#else
  static void ucontext_entry(unsigned hi, unsigned lo) {
    auto bits = (static_cast<std::uintptr_t>(hi) << 32) |
                static_cast<std::uintptr_t>(lo);
    fiber_main(reinterpret_cast<fiber_strand*>(bits));
  }
  void switch_to_fiber() { swapcontext(&driver_ctx_, &fiber_ctx_); }
  void switch_to_driver() { swapcontext(&fiber_ctx_, &driver_ctx_); }
#endif

  std::unique_ptr<unsigned char[]> stack_;
  std::function<void()> task_;
  bool crash_me_ = false;  // deliver crash at next resume
  bool stopping_ = false;  // world teardown: fail every further access

#if DETECT_FIBER_ASM
  void* fiber_sp_ = nullptr;
  void* driver_sp_ = nullptr;
#else
  ucontext_t fiber_ctx_{};
  ucontext_t driver_ctx_{};
#endif

#if DETECT_ASAN_FIBERS
  void* driver_fake_ = nullptr;
  void* fiber_fake_ = nullptr;
  const void* driver_stack_bottom_ = nullptr;
  std::size_t driver_stack_size_ = 0;
#endif
};

// ---------------------------------------------------------------------------
// thread_strand — the original engine: one OS worker per process, parked on
// a per-strand mutex/CV handshake. The reference implementation for the
// engine-equivalence pins.

class thread_strand final : public strand {
 public:
  thread_strand() : thread_([this] { thread_main(); }) {}

  ~thread_strand() override {
    {
      std::scoped_lock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  void start(std::function<void()> task) override {
    std::unique_lock lock(mu_);
    task_ = std::move(task);
    interrupted_ = false;
    ts_ = tstate::launching;
    cv_.notify_all();
    wait_settled(lock);
  }

  void step() override {
    std::unique_lock lock(mu_);
    ts_ = tstate::stepping;
    cv_.notify_all();
    wait_settled(lock);
  }

  void deliver_crash() override {
    std::unique_lock lock(mu_);
    for (;;) {
      crash_me_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] {
        return ts_ == tstate::done || (ts_ == tstate::at_yield && !crash_me_);
      });
      if (ts_ == tstate::done) break;
      // The task swallowed the crash and yielded again: hit it again.
    }
    status_ = status::done;
  }

  // Runs on the worker thread, from inside pcell/pvar.
  void before_access(nvm::access kind) override {
    std::unique_lock lock(mu_);
    pending_kind_ = kind;
    ts_ = tstate::at_yield;
    cv_.notify_all();
    cv_.wait(lock, [&] { return ts_ == tstate::stepping || crash_me_ || stop_; });
    if (crash_me_ || stop_) {
      crash_me_ = false;
      throw nvm::crashed{};
    }
  }

 private:
  enum class tstate : std::uint8_t { idle, launching, at_yield, stepping, done };

  void wait_settled(std::unique_lock<std::mutex>& lock) {
    cv_.wait(lock, [&] { return ts_ == tstate::at_yield || ts_ == tstate::done; });
    status_ = ts_ == tstate::done ? status::done : status::at_yield;
  }

  void thread_main() {
    nvm::tls_hook() = this;  // all NVM accesses on this thread yield to us
    std::unique_lock lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || ts_ == tstate::launching; });
      if (stop_) return;
      std::function<void()> task = std::move(task_);
      task_ = nullptr;
      bool interrupted = false;
      std::exception_ptr error;
      lock.unlock();
      try {
        task();
      } catch (const nvm::crashed&) {
        interrupted = true;
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      interrupted_ = interrupted;
      error_ = error;
      ts_ = tstate::done;
      cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  tstate ts_ = tstate::idle;  // guarded by mu_
  std::function<void()> task_;
  bool crash_me_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

const char* engine_name(engine_kind e) noexcept {
  return e == engine_kind::thread ? "thread" : "fiber";
}

engine_kind default_engine() noexcept {
  return g_default_engine.load(std::memory_order_relaxed);
}

void set_default_engine(engine_kind e) noexcept {
  g_default_engine.store(e, std::memory_order_relaxed);
}

std::unique_ptr<strand> make_strand(engine_kind engine) {
  if (engine == engine_kind::thread) return std::make_unique<thread_strand>();
  return std::make_unique<fiber_strand>();
}

}  // namespace detect::sim
