// Emulated persistent-memory domain.
//
// The paper's two memory models (§2, §6):
//   * private-cache model — primitive operations apply directly to NVM; a
//     crash loses only volatile (per-process local) state.
//   * shared-cache model  — primitives apply to a volatile shared cache;
//     explicit flush/fence instructions move values to NVM; a crash reverts
//     the cache to the last persisted image.
//
// A `pmem_domain` owns the model choice and the crash bookkeeping for every
// persistent cell registered with it. `crash_reset()` implements the
// system-wide crash: in shared-cache mode each cell's cached value reverts to
// its persisted image; in private-cache mode shared memory survives verbatim.
//
// `auto_persist` applies the syntactic transformation of Izraelevitz et al.
// the paper cites in §6: every shared access is followed (within the same
// atomic step) by a flush of the touched location plus a fence, which makes
// the shared-cache execution indistinguishable from a private-cache one while
// exposing the persistency-instruction cost (experiment E7).
#pragma once

#include <mutex>

#include "nvm/stats.hpp"

namespace detect::nvm {

enum class cache_model : std::uint8_t { private_cache, shared_cache };

/// Base class for everything that lives in emulated NVM and needs crash /
/// persist bookkeeping. Cells link themselves into their domain's intrusive
/// list on construction and out on destruction.
class persistent_base {
 public:
  persistent_base(const persistent_base&) = delete;
  persistent_base& operator=(const persistent_base&) = delete;

 protected:
  persistent_base() = default;
  ~persistent_base() = default;

 private:
  friend class pmem_domain;
  /// Revert cached value to the persisted image (shared-cache crash).
  virtual void revert_to_persisted() noexcept = 0;
  /// Checkpoint the cached value as persisted (initialization / full sync).
  virtual void persist_now() noexcept = 0;

  persistent_base* prev_ = nullptr;
  persistent_base* next_ = nullptr;
};

class pmem_domain {
 public:
  pmem_domain() = default;
  pmem_domain(const pmem_domain&) = delete;
  pmem_domain& operator=(const pmem_domain&) = delete;

  /// Process-wide default domain. Individual worlds/tests may instantiate
  /// their own to isolate crash bookkeeping.
  static pmem_domain& global();

  cache_model model() const noexcept { return model_; }
  void set_model(cache_model m) noexcept { model_ = m; }

  bool auto_persist() const noexcept { return auto_persist_; }
  void set_auto_persist(bool on) noexcept { auto_persist_ = on; }

  /// Deliver the memory effect of a system-wide crash. Must be called while
  /// no process is mid-access (the simulator quiesces every process first).
  void crash_reset() noexcept;

  /// Checkpoint every cell's current value as persisted.
  void persist_all() noexcept;

  stats& counters() noexcept { return stats_; }
  const stats& counters() const noexcept { return stats_; }

  /// Explicit ordering fence (counted; the emulation is sequentially
  /// consistent so the fence has no semantic effect here).
  void fence() noexcept { stats_.add_fence(); }

  void attach(persistent_base& cell);
  void detach(persistent_base& cell) noexcept;

 private:
  std::mutex mu_;
  persistent_base* head_ = nullptr;
  cache_model model_ = cache_model::private_cache;
  bool auto_persist_ = false;
  stats stats_;
};

}  // namespace detect::nvm
