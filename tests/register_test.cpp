// Algorithm 1 (detectable read/write register): sequential behaviour,
// crash-at-every-step sweeps, schedule fuzzing, exhaustive small-model
// exploration, and the ABA scenario the toggle bits exist to defeat.
#include <gtest/gtest.h>

#include "core/detectable_register.hpp"
#include "sim/explorer.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario register_scenario(int nprocs,
                           std::function<scripts(api::reg)> make_scripts,
                           core::runtime::fail_policy policy =
                               core::runtime::fail_policy::skip) {
  return one_object<api::reg>("reg", nprocs, std::move(make_scripts), policy);
}

TEST(reg_word, pack_unpack_roundtrip) {
  const hist::value_t values[] = {0,
                                  1,
                                  -1,
                                  123456789,
                                  -123456789,
                                  core::reg_word::value_max,
                                  core::reg_word::value_min};
  for (hist::value_t v : values) {
    for (int pid : {0, 1, 13}) {
      for (int t : {0, 1}) {
        std::uint64_t w = core::reg_word::pack(v, pid, t);
        EXPECT_EQ(core::reg_word::value_of(w), v);
        EXPECT_EQ(core::reg_word::pid_of(w), pid);
        EXPECT_EQ(core::reg_word::toggle_of(w), t);
      }
    }
  }
}

TEST(reg_word, out_of_range_value_throws) {
  EXPECT_THROW(core::reg_word::pack(core::reg_word::value_max + 1, 0, 0),
               std::out_of_range);
}

TEST(detectable_register, sequential_reads_and_writes) {
  auto cfg = register_scenario(1, [](api::reg r) {
    return scripts{
        {0, {r.write(5), r.read(), r.write(7), r.read(), r.read()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_register, two_writers_one_reader_many_seeds) {
  auto cfg = register_scenario(3, [](api::reg r) {
    return scripts{
        {0, {r.write(1), r.write(2), r.write(3)}},
        {1, {r.write(10), r.write(20)}},
        {2, {r.read(), r.read(), r.read()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n"
                              << out.check.message << out.log_text;
  }
}

TEST(detectable_register, crash_sweep_single_writer) {
  auto cfg = register_scenario(2, [](api::reg r) {
    return scripts{
        {0, {r.write(1), r.write(2)}},
        {1, {r.read(), r.read()}},
    };
  });
  crash_sweep(cfg, 42);
}

TEST(detectable_register, crash_sweep_two_writers) {
  auto cfg = register_scenario(2, [](api::reg r) {
    return scripts{
        {0, {r.write(1), r.write(2)}},
        {1, {r.write(5), r.read()}},
    };
  });
  crash_sweep(cfg, 7);
}

TEST(detectable_register, crash_sweep_with_retry_policy) {
  auto cfg = register_scenario(2,
                               [](api::reg r) {
                                 return scripts{
                                     {0, {r.write(1), r.write(2)}},
                                     {1, {r.write(5), r.read()}},
                                 };
                               },
                               core::runtime::fail_policy::retry);
  crash_sweep(cfg, 11);
}

TEST(detectable_register, double_crash_fuzz) {
  auto cfg = register_scenario(3, [](api::reg r) {
    return scripts{
        {0, {r.write(1), r.write(2)}},
        {1, {r.write(3), r.read()}},
        {2, {r.read(), r.write(4)}},
    };
  });
  crash_fuzz(cfg, 120, 2);
}

TEST(detectable_register, triple_crash_fuzz_retry) {
  auto cfg = register_scenario(2,
                               [](api::reg r) {
                                 return scripts{
                                     {0, {r.write(1), r.write(2), r.write(3)}},
                                     {1, {r.read(), r.read(), r.read()}},
                                 };
                               },
                               core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 80, 3);
}

// The ABA scenario from §3: p reads ⟨v_q, q, t⟩, q writes other values and
// then the same value again. The same triplet can reappear in R only after q
// completes a write with the *other* toggle index, which sets q's toggle bits
// — p's recovery must therefore detect the intervening writes.
TEST(detectable_register, aba_same_value_rewritten) {
  auto cfg = register_scenario(2, [](api::reg r) {
    return scripts{
        {0, {r.write(7)}},
        {1, {r.write(9), r.write(9)}},
    };
  });
  crash_sweep(cfg, 3);
  crash_sweep(cfg, 13);
  crash_fuzz(cfg, 100, 2);
}

TEST(detectable_register, same_values_from_all_writers) {
  // All processes write the same value — maximally ABA-prone.
  auto cfg = register_scenario(3, [](api::reg r) {
    return scripts{
        {0, {r.write(1), r.write(1)}},
        {1, {r.write(1), r.write(1)}},
        {2, {r.read(), r.read()}},
    };
  });
  crash_fuzz(cfg, 120, 2);
}

// The precise schedule §3's correctness proof revolves around, constructed
// deterministically: p persists R's triplet ⟨0,0,0⟩ and halts with CP = 1
// just before its write to R (line 7); q then completes THREE writes of the
// same value 0 — toggle 0, toggle 1, toggle 0 — restoring R to the exact
// triplet p persisted. A naive recovery would conclude "nothing happened"
// and return fail; Algorithm 1's line-20 toggle-bit check sees that
// A[p][q][1] (cleared by p in line 2) was re-set by q's toggle-1 write,
// infers intervening linearized writes, and declares p's write linearized
// (as overwritten). The checker validates that verdict.
TEST(detectable_register, line20_toggle_disambiguates_recreated_triplet) {
  // p = 1 (writer under test), q = 0 (value 0's "owner")
  auto h = api::harness::builder().procs(2).build();
  api::reg r = h.add_reg();
  auto& reg = r.as<core::detectable_register>();

  // p starts write(7); halt when the next access is the line-7 store to R
  // (the only shared store issued with CP == 1).
  h.submit_op(1, r.write(7), 1);
  while (!(h.board().of(1).cp.peek() == 1 &&
           h.world().pending_access(1) == nvm::access::shared_store)) {
    h.world().step(1);
  }

  // q recreates R's initial triplet via three completed writes of value 0:
  // toggles cycle 0 → 1 → 0, and the toggle-1 write sets A[1][0][1].
  for (std::uint64_t s = 1; s <= 3; ++s) {
    h.submit_op(0, r.write(0), s);
    h.drive(0);
    h.board().of(0).done_seq.store(s);
  }
  ASSERT_EQ(reg.invoke(0, r.read()), 0) << "R holds value 0 again";

  // Crash; p recovers. Line 20's first conjunct holds (same triplet), the
  // second fails (the toggle bit is set) ⇒ linearized-as-overwritten.
  h.crash_now();
  h.submit_recovery(1);
  h.drive(1);

  EXPECT_EQ(last_verdict(h.events(), 1), hist::recovery_verdict::linearized)
      << "the toggle bit must witness the intervening writes";
  auto check = h.check();
  EXPECT_TRUE(check.ok) << check.message;
}

// Control experiment for the test above: with only TWO completed writes by q
// (toggles 0 → 1), R holds ⟨0,0,1⟩ ≠ the persisted triplet, so recovery
// takes the "R changed" branch — still linearized-as-overwritten.
TEST(detectable_register, recovery_sees_changed_triplet_after_two_writes) {
  auto h = api::harness::builder().procs(2).build();
  api::reg r = h.add_reg();
  h.submit_op(1, r.write(7), 1);
  while (!(h.board().of(1).cp.peek() == 1 &&
           h.world().pending_access(1) == nvm::access::shared_store)) {
    h.world().step(1);
  }
  for (std::uint64_t s = 1; s <= 2; ++s) {
    h.submit_op(0, r.write(0), s);
    h.drive(0);
    h.board().of(0).done_seq.store(s);
  }
  h.crash_now();
  h.submit_recovery(1);
  h.drive(1);
  EXPECT_EQ(last_verdict(h.events(), 1), hist::recovery_verdict::linearized);
  auto check = h.check();
  EXPECT_TRUE(check.ok) << check.message;
}

// And the fail side: crash at the same point with NO intervening writes —
// the triplet matches and the toggle bit is still clear, so recovery must
// return fail (the write truly did not happen).
TEST(detectable_register, line20_returns_fail_when_nothing_intervened) {
  auto h = api::harness::builder().procs(2).build();
  api::reg r = h.add_reg();
  h.submit_op(1, r.write(7), 1);
  while (!(h.board().of(1).cp.peek() == 1 &&
           h.world().pending_access(1) == nvm::access::shared_store)) {
    h.world().step(1);
  }
  h.crash_now();
  h.submit_recovery(1);
  h.drive_all();
  EXPECT_EQ(last_verdict(h.events(), 1), hist::recovery_verdict::fail);
  auto check = h.check();
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(detectable_register, exhaustive_two_procs_one_crash_one_preemption) {
  // CHESS-style exploration: every crash placement combined with every
  // single-preemption schedule of two concurrent writes.
  struct scen final : sim::exploration {
    api::harness h = api::harness::builder().procs(2).build();
    scen() {
      api::reg r = h.add_reg();
      h.script(0, {r.write(1)});
      h.script(1, {r.write(2)});
      h.runtime().start();
    }
    sim::world& get_world() override { return h.world(); }
    void on_crash() override { h.runtime().on_crash(); }
    void at_end() override {
      auto r = h.check();
      if (!r.ok) throw std::runtime_error(r.message);
    }
  };
  sim::explore_config cfg;
  cfg.max_crashes = 1;
  cfg.max_preemptions = 1;
  cfg.max_runs = 100'000;
  auto res = sim::explore_schedules([] { return std::make_unique<scen>(); }, cfg);
  EXPECT_FALSE(res.failed) << res.failure;
  EXPECT_TRUE(res.complete) << "exploration should finish within budget; runs="
                            << res.runs;
  EXPECT_EQ(res.pruned, 0u);
  EXPECT_GT(res.runs, 100u) << "the bounded tree should still be substantial";
}

TEST(detectable_register, wait_free_step_bound_holds) {
  // Lemma 1's wait-freedom: a crash-free write takes at most a constant
  // number of steps plus the O(N) toggle loop.
  for (int n : {2, 4, 8}) {
    auto h = api::harness::builder().procs(n).build();
    api::reg r = h.add_reg();
    for (int p = 0; p < n; ++p) h.script(p, {r.write(p), r.read()});
    auto rep = h.run();
    EXPECT_FALSE(rep.hit_step_limit);
    // Per process: write ≤ (announce 4–5 + 2 control + body ~8 + N toggle
    // stores), read ≤ ~10. Generous linear bound:
    EXPECT_LE(rep.steps, static_cast<std::uint64_t>(n) * (30 + 2ull * n));
  }
}

TEST(detectable_register, nrl_wrapper_always_completes) {
  auto cfg = one_object<api::reg>("nrl_reg", 2, [](api::reg r) {
    return scripts{{0, {r.write(1), r.write(2)}}, {1, {r.read(), r.read()}}};
  });
  crash_sweep(cfg, 5);
  crash_fuzz(cfg, 60, 2);
}

TEST(detectable_register, shared_cache_with_transform_is_correct) {
  // Run the same battery under the shared-cache model with the automatic
  // persist transformation (§6).
  auto cfg = register_scenario(2, [](api::reg r) {
    return scripts{{0, {r.write(1), r.write(2)}}, {1, {r.write(5), r.read()}}};
  });
  cfg.shared_cache = true;
  crash_sweep(cfg, 21);
}

// Property sweep: many (seed, crash-count) combinations.
class register_property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(register_property, durable_linearizable_and_detectable) {
  auto [seed, crashes] = GetParam();
  auto cfg = register_scenario(3, [](api::reg r) {
    return scripts{
        {0, {r.write(1), r.write(2)}},
        {1, {r.write(3), r.read()}},
        {2, {r.read(), r.write(4)}},
    };
  });
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 104729);
}

INSTANTIATE_TEST_SUITE_P(sweep, register_property,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Values(0, 1, 2, 3)));

// Scale sweep: the same invariants across process counts (the toggle arrays
// and recovery logic are N-dependent, so N is a real dimension here).
class register_scale : public ::testing::TestWithParam<int> {};

TEST_P(register_scale, crash_fuzz_at_n) {
  int n = GetParam();
  auto cfg = register_scenario(n, [n](api::reg r) {
    scripts s;
    for (int p = 0; p < n; ++p) {
      s[p] = {r.write(p + 1), p % 2 == 0 ? r.read() : r.write(p + 100)};
    }
    return s;
  });
  crash_fuzz(cfg, 25, 2, static_cast<std::uint64_t>(n) * 293339);
}

INSTANTIATE_TEST_SUITE_P(scale, register_scale, ::testing::Values(2, 3, 4, 6));

}  // namespace
