#include "fuzz/scenario_gen.hpp"

#include <algorithm>

namespace detect::fuzz {

namespace {

using sim::next_rand;

/// Uniform pick in [lo, hi] (inclusive).
std::uint64_t pick(std::uint64_t& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + next_rand(rng) % (hi - lo + 1);
}

}  // namespace

std::uint64_t iteration_seed(std::uint64_t base_seed, std::uint64_t iter) {
  // splitmix64 of (base_seed + iter): consecutive iterations land far apart.
  std::uint64_t z = base_seed + iter * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

hist::op_desc random_op(std::uint64_t& rng, api::op_family family, int pid,
                        const gen_config& cfg) {
  const std::vector<hist::opcode>& alphabet = api::family_opcodes(family);
  hist::op_desc d;
  d.code = alphabet[next_rand(rng) % alphabet.size()];
  const hist::value_t v = static_cast<hist::value_t>(
      next_rand(rng) % static_cast<std::uint64_t>(cfg.value_range));
  using hist::opcode;
  switch (d.code) {
    case opcode::reg_write:
    case opcode::swap:
    case opcode::enq:
    case opcode::push:
    case opcode::max_write:
      d.a = v;
      break;
    case opcode::ctr_add:
      d.a = 1 + v % 3;  // small positive deltas
      break;
    case opcode::cas:
      // Narrow domain so successful CASes happen, but never old == new:
      // Algorithm 2's failed-CAS linearization argument needs every
      // successful CAS to change the value (see detectable_cas.hpp) — the
      // paper's own operation universe is Cas(i, i+1 mod |V|).
      d.a = v % 4;
      d.b = (d.a + 1 + static_cast<hist::value_t>(next_rand(rng) % 3)) % 4;
      break;
    case opcode::lock_try:
    case opcode::lock_release:
      d.a = pid;  // lock ops carry the caller's pid
      break;
    default:
      break;  // reads / deq / pop / tas take no arguments
  }
  return d;
}

api::scripted_scenario generate(std::uint64_t seed, const std::string& kind,
                                const gen_config& cfg) {
  const api::kind_info& info = api::object_registry::global().at(kind);
  std::uint64_t rng = seed | 1;

  api::scripted_scenario s;
  s.kind = kind;
  s.sched_seed = next_rand(rng);
  s.nprocs = static_cast<int>(pick(
      rng, static_cast<std::uint64_t>(cfg.min_procs),
      static_cast<std::uint64_t>(std::max(cfg.min_procs, cfg.max_procs))));

  const bool with_crashes = cfg.crashes && info.detectable;
  if (with_crashes && cfg.max_crashes > 0) {
    std::uint64_t n = pick(rng, 0, static_cast<std::uint64_t>(cfg.max_crashes));
    for (std::uint64_t c = 0; c < n; ++c) {
      s.crash_steps.push_back(next_rand(rng) % cfg.max_crash_step);
    }
    std::sort(s.crash_steps.begin(), s.crash_steps.end());
  }
  // retry re-attempts recovery-failed ops — only meaningful when recovery
  // verdicts are trustworthy, i.e. for detectable kinds.
  if (cfg.allow_retry && info.detectable && next_rand(rng) % 4 == 0) {
    s.policy = core::runtime::fail_policy::retry;
  }
  if (cfg.allow_shared_cache && next_rand(rng) % 4 == 0) {
    s.shared_cache = true;
  }
  // Shard-count knob for the single-vs-sharded equivalence diff; the
  // scenario itself stays on the single backend (diff_sharded replays it on
  // both).
  if (cfg.max_shards > 1) {
    const int lo = std::max(1, cfg.min_shards);
    const int hi = std::max(lo, cfg.max_shards);
    if (lo > 1) {
      s.shards = static_cast<int>(
          pick(rng, static_cast<std::uint64_t>(lo),
               static_cast<std::uint64_t>(hi)));
    } else if (next_rand(rng) % 2 == 0) {
      s.shards = static_cast<int>(
          pick(rng, 2, static_cast<std::uint64_t>(hi)));
    }
  }
  // The recoverable lock's usage contract (rlock.hpp): a client never invokes
  // try_lock while it may still hold the lock. Under skip, a crash-dropped
  // release leaves holding-state uncertain, so crashy lock scenarios must
  // retry; the per-process scripts below additionally alternate try/release.
  if (info.family == api::op_family::lock && !s.crash_steps.empty()) {
    s.policy = core::runtime::fail_policy::retry;
  }

  for (int pid = 0; pid < s.nprocs; ++pid) {
    std::uint64_t len = pick(
        rng, static_cast<std::uint64_t>(cfg.min_ops),
        static_cast<std::uint64_t>(std::max(cfg.min_ops, cfg.max_ops)));
    std::vector<hist::op_desc> ops;
    ops.reserve(len);
    bool may_hold = false;  // lock family: an unreleased try_lock is pending
    for (std::uint64_t i = 0; i < len; ++i) {
      hist::op_desc d;
      if (info.family == api::op_family::lock && may_hold) {
        d.code = hist::opcode::lock_release;
        d.a = pid;
      } else {
        d = random_op(rng, info.family, pid, cfg);
      }
      if (info.family == api::op_family::lock) {
        may_hold = d.code == hist::opcode::lock_try;
      }
      ops.push_back(d);
    }
    s.scripts[pid] = std::move(ops);
  }
  return s;
}

}  // namespace detect::fuzz
