#include "sim/explorer.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace detect::sim {

namespace {

std::string path_to_string(const std::vector<int>& path) {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) os << ',';
    os << path[i];
  }
  return os.str();
}

}  // namespace

explore_result explore_schedules(
    const std::function<std::unique_ptr<exploration>()>& factory,
    const explore_config& cfg) {
  explore_result res;
  std::vector<int> path;    // choice taken at each depth
  std::vector<int> widths;  // number of options at each depth

  while (res.runs < cfg.max_runs) {
    ++res.runs;
    auto scenario = factory();
    world& w = scenario->get_world();
    int crashes_used = 0;
    int preemptions_used = 0;
    int current = -1;  // pid stepped last; -1 = no current (start / post-crash)
    std::size_t depth = 0;
    bool pruned = false;

    for (;;) {
      std::vector<int> ready = w.runnable();
      if (ready.empty()) break;
      if (depth >= cfg.max_depth) {
        pruned = true;
        break;
      }
      // Build the deterministic option list for this point:
      //   continue current (if runnable) first, then free/preempting switches
      //   to other pids, then (budget permitting) a crash.
      bool current_runnable =
          current >= 0 &&
          std::find(ready.begin(), ready.end(), current) != ready.end();
      bool switches_are_preemptions = current_runnable;
      bool preempt_allowed =
          cfg.max_preemptions < 0 || preemptions_used < cfg.max_preemptions;

      std::vector<int> options;  // encoded: pid, or -1 for crash
      if (current_runnable) options.push_back(current);
      if (!switches_are_preemptions || preempt_allowed) {
        for (int pid : ready) {
          if (pid != current) options.push_back(pid);
        }
      }
      if (crashes_used < cfg.max_crashes) options.push_back(-1);

      int choice;
      if (depth < path.size()) {
        choice = path[depth];
        if (widths[depth] != static_cast<int>(options.size())) {
          throw std::logic_error(
              "explorer: nondeterministic replay (option count changed)");
        }
      } else {
        choice = 0;
        path.push_back(0);
        widths.push_back(static_cast<int>(options.size()));
      }

      int opt = options[static_cast<std::size_t>(choice)];
      if (opt >= 0) {
        if (switches_are_preemptions && opt != current) ++preemptions_used;
        w.step(opt);
        current = opt;
      } else {
        w.crash();
        ++crashes_used;
        current = -1;
        scenario->on_crash();
      }
      ++depth;
    }

    if (pruned) {
      ++res.pruned;
    } else {
      try {
        scenario->at_end();
      } catch (const std::exception& ex) {
        res.failed = true;
        res.failure = std::string(ex.what()) +
                      "\n(decision path: " + path_to_string(path) + ")";
        res.failing_path = path;
        return res;
      }
    }

    // Backtrack to the deepest decision with an unexplored sibling.
    while (!path.empty() && path.back() + 1 >= widths.back()) {
      path.pop_back();
      widths.pop_back();
    }
    if (path.empty()) {
      res.complete = true;
      return res;
    }
    ++path.back();
  }
  return res;
}

}  // namespace detect::sim
