#include "fuzz/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#define DETECT_CAMPAIGN_FORK 1
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define DETECT_CAMPAIGN_FORK 0
#endif

namespace detect::fuzz {

namespace fs = std::filesystem;

std::vector<std::pair<std::uint64_t, std::uint64_t>> partition_iterations(
    std::uint64_t total, int jobs) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  if (total == 0 || jobs < 1) return out;
  const std::uint64_t n =
      std::min<std::uint64_t>(total, static_cast<std::uint64_t>(jobs));
  const std::uint64_t base = total / n;
  const std::uint64_t extra = total % n;
  std::uint64_t first = 0;
  for (std::uint64_t w = 0; w < n; ++w) {
    const std::uint64_t count = base + (w < extra ? 1 : 0);
    out.emplace_back(first, count);
    first += count;
  }
  return out;
}

namespace {

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// One `tag=` coordinate of a bucket key (tag without the '='). The merged
/// per-strategy and per-visibility tables recompute distinct counts from the
/// bucket *union* — each worker only knows its own slice's buckets, so its
/// per-slice distinct counts don't sum across workers.
std::string coord_of_bucket(const std::string& key, const std::string& tag) {
  std::size_t at = key.find("|" + tag + "=");
  if (at == std::string::npos) return "?";
  at += 2 + tag.size();
  const std::size_t end = key.find('|', at);
  return key.substr(at, end == std::string::npos ? end : end - at);
}

/// What a worker hands back to the supervisor, serialized line-oriented into
/// `<artifact_dir>/worker-<N>.summary`. Bucket keys and strategy names are
/// space-free by construction, so whitespace tokenizing is safe; the
/// artifact path is a line tail. The files double as the archivable
/// per-worker record the CI lane uploads alongside the failure artifacts.
struct worker_summary {
  std::uint64_t executed = 0;
  std::uint64_t replays = 0;
  bool failed = false;
  std::uint64_t failure_iteration = 0;
  std::string failure_artifact;
  std::vector<corpus_entry> corpus;  // this slice's novel buckets
  std::vector<std::pair<std::string, std::uint64_t>> strategy_executed;
  std::vector<std::pair<std::string, std::uint64_t>> visibility_executed;
};

std::string summary_path(const std::string& artifact_dir, int worker) {
  return (fs::path(artifact_dir) /
          ("worker-" + std::to_string(worker) + ".summary"))
      .string();
}

void write_summary(const std::string& path, const worker_summary& ws) {
  std::ofstream out(path);
  if (!out) return;  // parent flags the worker lost — silence never passes
  out << "executed " << ws.executed << "\n";
  out << "replays " << ws.replays << "\n";
  out << "failed " << (ws.failed ? 1 : 0) << "\n";
  if (ws.failed) {
    out << "failure_iteration " << ws.failure_iteration << "\n";
    out << "artifact " << ws.failure_artifact << "\n";
  }
  for (const auto& [name, executed] : ws.strategy_executed) {
    out << "strategy " << name << " " << executed << "\n";
  }
  for (const auto& [name, executed] : ws.visibility_executed) {
    out << "visibility " << name << " " << executed << "\n";
  }
  for (const corpus_entry& e : ws.corpus) {
    out << "bucket " << e.iteration << " " << e.seed << " "
        << (e.mutated ? 1 : 0) << " " << e.bucket << "\n";
  }
  out << "end\n";
}

bool read_summary(const std::string& path, worker_summary* ws) {
  std::ifstream in(path);
  if (!in) return false;
  bool complete = false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "executed") {
      ls >> ws->executed;
    } else if (tag == "replays") {
      ls >> ws->replays;
    } else if (tag == "failed") {
      int v = 0;
      ls >> v;
      ws->failed = v != 0;
    } else if (tag == "failure_iteration") {
      ls >> ws->failure_iteration;
    } else if (tag == "artifact") {
      std::getline(ls >> std::ws, ws->failure_artifact);
    } else if (tag == "strategy") {
      std::string name;
      std::uint64_t executed = 0;
      ls >> name >> executed;
      ws->strategy_executed.emplace_back(name, executed);
    } else if (tag == "visibility") {
      std::string name;
      std::uint64_t executed = 0;
      ls >> name >> executed;
      ws->visibility_executed.emplace_back(name, executed);
    } else if (tag == "bucket") {
      corpus_entry e;
      int mutated = 0;
      ls >> e.iteration >> e.seed >> mutated >> e.bucket;
      e.mutated = mutated != 0;
      ws->corpus.push_back(e);
    } else if (tag == "end") {
      complete = true;  // truncated file (worker died mid-write) stays lost
    }
  }
  return complete;
}

worker_summary summary_from_stats(const fuzz_stats& stats,
                                  const std::string& artifact) {
  worker_summary ws;
  ws.executed = stats.coverage.executed;
  ws.replays = stats.replays;
  ws.corpus = stats.coverage.corpus;
  for (const strategy_stats& st : stats.coverage.by_strategy) {
    ws.strategy_executed.emplace_back(st.strategy, st.executed);
  }
  for (const strategy_stats& st : stats.coverage.by_visibility) {
    ws.visibility_executed.emplace_back(st.strategy, st.executed);
  }
  if (stats.failure) {
    ws.failed = true;
    ws.failure_iteration = stats.failure->iteration;
    ws.failure_artifact = artifact;
  }
  return ws;
}

/// Write the failing scenario's artifact — the path shape fuzz_main always
/// used, so the `--replay` instructions inside keep working. Empty on IO
/// failure.
std::string write_artifact(const std::string& dir, const fuzz_failure& f) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path =
      (fs::path(dir) / ("fuzz-failure-" + std::to_string(f.seed) + ".txt"))
          .string();
  std::ofstream out(path);
  if (!out) return {};
  out << f.to_artifact();
  return path;
}

/// The merged coverage JSON of a forked campaign: the classic single-
/// campaign keys (so scripts/job_summary.py renders it unchanged) plus
/// `jobs` and the per-worker table, with per-worker provenance on every
/// corpus entry. The global new-bucket timeline is not reconstructible from
/// per-worker slices (each worker's executed-so-far clock is its own), so it
/// stays empty here — per-worker discovery counts live in `workers`.
std::string merged_coverage_json(
    const campaign_config& cfg, const std::vector<worker_report>& workers,
    const std::vector<std::pair<corpus_entry, int>>& corpus,
    std::uint64_t executed,
    const std::vector<
        std::pair<std::string, std::pair<std::uint64_t, std::size_t>>>&
        by_strategy,
    const std::vector<
        std::pair<std::string, std::pair<std::uint64_t, std::size_t>>>&
        by_visibility) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"base_seed\": " << cfg.options.base_seed << ",\n";
  os << "  \"iterations\": " << cfg.options.iterations << ",\n";
  os << "  \"jobs\": " << cfg.jobs() << ",\n";
  os << "  \"executed\": " << executed << ",\n";
  os << "  \"distinct_buckets\": " << corpus.size() << ",\n";
  os << "  \"steered\": " << (cfg.options.steer ? "true" : "false") << ",\n";
  os << "  \"new_bucket_timeline\": [],\n";
  os << "  \"workers\": [\n";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const worker_report& w = workers[i];
    os << "    {\"worker\": " << w.worker
       << ", \"first_iteration\": " << w.first_iteration
       << ", \"iterations\": " << w.iterations
       << ", \"executed\": " << w.executed << ", \"replays\": " << w.replays
       << ", \"new_buckets\": " << w.distinct_buckets
       << ", \"failed\": " << (w.failed ? "true" : "false")
       << ", \"lost\": " << (w.lost || w.error ? "true" : "false") << "}";
    os << (i + 1 < workers.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"by_strategy\": [\n";
  for (std::size_t i = 0; i < by_strategy.size(); ++i) {
    os << "    {\"strategy\": \"" << json_escaped(by_strategy[i].first)
       << "\", \"executed\": " << by_strategy[i].second.first
       << ", \"distinct_buckets\": " << by_strategy[i].second.second
       << ", \"new_bucket_timeline\": []}";
    os << (i + 1 < by_strategy.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"by_visibility\": [\n";
  for (std::size_t i = 0; i < by_visibility.size(); ++i) {
    os << "    {\"visibility\": \"" << json_escaped(by_visibility[i].first)
       << "\", \"executed\": " << by_visibility[i].second.first
       << ", \"distinct_buckets\": " << by_visibility[i].second.second
       << ", \"new_bucket_timeline\": []}";
    os << (i + 1 < by_visibility.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"corpus\": [\n";
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const corpus_entry& e = corpus[i].first;
    os << "    {\"iteration\": " << e.iteration << ", \"seed\": " << e.seed
       << ", \"mutated\": " << (e.mutated ? "true" : "false")
       << ", \"worker\": " << corpus[i].second << ", \"bucket\": \""
       << json_escaped(e.bucket) << "\"}";
    os << (i + 1 < corpus.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Inline (jobs <= 1) path: exactly the classic run_fuzz campaign, plus the
/// artifact/coverage writing fuzz_main used to do by hand.
campaign_result run_inline(
    const campaign_config& cfg,
    const std::function<void(std::uint64_t, std::uint64_t,
                             const std::string&)>& progress) {
  campaign_result r;
  r.stats = run_fuzz(cfg.options, cfg.quiet() ? nullptr : progress);

  worker_report w;
  w.worker = cfg.options.worker_index;
  w.first_iteration = cfg.options.first_iteration;
  w.iterations = cfg.options.iterations;
  w.executed = r.stats.coverage.executed;
  w.replays = r.stats.replays;
  w.distinct_buckets = r.stats.coverage.distinct_buckets;
  if (r.stats.failure) {
    w.failed = true;
    w.failure_iteration = r.stats.failure->iteration;
    if (!cfg.artifact_dir().empty()) {
      w.failure_artifact = write_artifact(cfg.artifact_dir(), *r.stats.failure);
    }
    r.exit_code = 1;
  }
  r.workers.push_back(std::move(w));

  if (!cfg.coverage_out().empty()) {
    std::ofstream out(cfg.coverage_out());
    if (!out) {
      r.exit_code = 2;
    } else {
      out << r.stats.coverage.to_json(cfg.options.base_seed,
                                      cfg.options.iterations);
    }
  }
  return r;
}

}  // namespace

campaign_result run_campaign(
    const campaign_config& cfg,
    const std::function<void(std::uint64_t, std::uint64_t,
                             const std::string&)>& progress) {
  if (cfg.jobs() <= 1 || cfg.options.iterations <= 1) {
    return run_inline(cfg, progress);
  }
#if !DETECT_CAMPAIGN_FORK
  // No fork() on this platform: graceful fallback — same oracle, same
  // iteration stream, one process (see docs/checking.md for the caveat).
  std::fprintf(stderr,
               "campaign: --jobs %d unsupported on this platform; "
               "running inline\n",
               cfg.jobs());
  return run_inline(cfg, progress);
#else
  campaign_result r;
  r.forked = true;

  // Forked workers report through the filesystem; make sure there is one,
  // and default the shared steering corpus to living beside the artifacts so
  // one upload archives both.
  campaign_config effective = cfg;
  if (effective.artifact_dir().empty()) {
    effective.artifact_dir("fuzz-artifacts");
  }
  if (effective.options.corpus_dir.empty()) {
    effective.options.corpus_dir =
        (fs::path(effective.artifact_dir()) / "corpus").string();
  }
  std::error_code ec;
  fs::create_directories(effective.artifact_dir(), ec);

  const auto slices =
      partition_iterations(effective.options.iterations, effective.jobs());

  struct child {
    pid_t pid = -1;
    worker_report report;
  };
  std::vector<child> children;
  children.reserve(slices.size());

  for (std::size_t w = 0; w < slices.size(); ++w) {
    worker_report rep;
    rep.worker = static_cast<int>(w);
    rep.first_iteration = slices[w].first;
    rep.iterations = slices[w].second;

    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    if (pid < 0) {
      // Could not spawn: flag as lost and keep going — the workers that did
      // start still merge.
      rep.lost = true;
      children.push_back({-1, std::move(rep)});
      continue;
    }
    if (pid == 0) {
      // ---- worker process --------------------------------------------
      fuzz_options wopt = effective.options;
      wopt.first_iteration = slices[w].first;
      wopt.iterations = slices[w].second;
      wopt.worker_index = static_cast<int>(w);
      int code = 2;
      try {
        std::uint64_t last = wopt.first_iteration;
        fuzz_stats stats = run_fuzz(
            wopt,
            [&](std::uint64_t iter, std::uint64_t, const std::string&) {
              if (effective.quiet()) return;
              // Sparse prefixed progress: ~10 lines per worker, not one per
              // iteration — N workers share one terminal.
              const std::uint64_t stride = wopt.iterations / 10 + 1;
              if (iter == wopt.first_iteration || iter - last >= stride) {
                last = iter;
                std::printf("[w%d] iteration %llu/%llu\n", wopt.worker_index,
                            static_cast<unsigned long long>(
                                iter - wopt.first_iteration),
                            static_cast<unsigned long long>(wopt.iterations));
                std::fflush(stdout);
              }
            });
        std::string artifact;
        if (stats.failure) {
          artifact = write_artifact(effective.artifact_dir(), *stats.failure);
          std::printf(
              "[w%d] FAIL at iteration %llu (seed %llu): %s\n",
              wopt.worker_index,
              static_cast<unsigned long long>(stats.failure->iteration),
              static_cast<unsigned long long>(stats.failure->seed),
              artifact.empty() ? "artifact unwritable" : artifact.c_str());
          std::fflush(stdout);
        }
        write_summary(summary_path(effective.artifact_dir(), wopt.worker_index),
                      summary_from_stats(stats, artifact));
        code = stats.failure ? 1 : 0;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[w%d] error: %s\n", static_cast<int>(w),
                     e.what());
      }
      std::fflush(stdout);
      std::fflush(stderr);
      _exit(code);
      // ----------------------------------------------------------------
    }
    children.push_back({pid, std::move(rep)});
  }

  // Collect. Workers are independent; wait order does not matter.
  for (child& c : children) {
    if (c.pid < 0) continue;
    int status = 0;
    if (waitpid(c.pid, &status, 0) != c.pid || !WIFEXITED(status)) {
      c.report.lost = true;  // signal/OOM kill — died without reporting
      continue;
    }
    if (WEXITSTATUS(status) == 2) c.report.error = true;
    worker_summary ws;
    if (!read_summary(summary_path(effective.artifact_dir(), c.report.worker),
                      &ws)) {
      // Exited but never published a complete summary: lost, unless it
      // already declared an infrastructure error.
      if (!c.report.error) c.report.lost = true;
      continue;
    }
    c.report.executed = ws.executed;
    c.report.replays = ws.replays;
    c.report.distinct_buckets = ws.corpus.size();
    c.report.failed = ws.failed;
    c.report.failure_iteration = ws.failure_iteration;
    c.report.failure_artifact = ws.failure_artifact;

    r.stats.iterations += ws.executed;
    r.stats.replays += ws.replays;
    r.stats.coverage.executed += ws.executed;
  }

  // Bucket union with provenance: first discovery (by absolute iteration)
  // wins, so the merged corpus is independent of which worker finished
  // first.
  std::vector<std::pair<corpus_entry, int>> merged;
  std::map<std::string, std::size_t> by_key;
  std::map<std::string, std::uint64_t> strategy_executed;
  std::map<std::string, std::uint64_t> visibility_executed;
  for (const child& c : children) {
    if (c.report.lost || c.report.error) continue;
    worker_summary ws;
    if (!read_summary(summary_path(effective.artifact_dir(), c.report.worker),
                      &ws)) {
      continue;
    }
    for (const auto& [name, executed] : ws.strategy_executed) {
      strategy_executed[name] += executed;
    }
    for (const auto& [name, executed] : ws.visibility_executed) {
      visibility_executed[name] += executed;
    }
    for (const corpus_entry& e : ws.corpus) {
      auto it = by_key.find(e.bucket);
      if (it == by_key.end()) {
        by_key.emplace(e.bucket, merged.size());
        merged.emplace_back(e, c.report.worker);
      } else if (e.iteration < merged[it->second].first.iteration) {
        merged[it->second] = {e, c.report.worker};
      }
    }
  }
  std::sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    return a.first.iteration < b.first.iteration;
  });
  std::map<std::string, std::size_t> strategy_distinct;
  std::map<std::string, std::size_t> visibility_distinct;
  for (const auto& [e, worker] : merged) {
    ++strategy_distinct[coord_of_bucket(e.bucket, "sched")];
    ++visibility_distinct[coord_of_bucket(e.bucket, "vis")];
    r.stats.coverage.corpus.push_back(e);
  }
  r.stats.coverage.distinct_buckets = merged.size();
  r.stats.coverage.steered = effective.options.steer;
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::size_t>>>
      by_strategy;
  for (const auto& [name, executed] : strategy_executed) {
    by_strategy.emplace_back(name,
                             std::make_pair(executed, strategy_distinct[name]));
    r.stats.coverage.by_strategy.push_back(
        {name, executed, strategy_distinct[name], {}});
  }
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::size_t>>>
      by_visibility;
  for (const auto& [name, executed] : visibility_executed) {
    by_visibility.emplace_back(
        name, std::make_pair(executed, visibility_distinct[name]));
    r.stats.coverage.by_visibility.push_back(
        {name, executed, visibility_distinct[name], {}});
  }

  for (child& c : children) r.workers.push_back(std::move(c.report));

  bool any_failed = false;
  bool any_lost = false;
  for (const worker_report& w : r.workers) {
    any_failed |= w.failed;
    any_lost |= w.lost || w.error;
  }
  r.exit_code = any_lost ? 2 : (any_failed ? 1 : 0);

  if (!effective.coverage_out().empty()) {
    std::ofstream out(effective.coverage_out());
    if (!out) {
      r.exit_code = 2;
    } else {
      out << merged_coverage_json(effective, r.workers, merged,
                                  r.stats.coverage.executed, by_strategy,
                                  by_visibility);
    }
  }
  return r;
#endif
}

}  // namespace detect::fuzz
