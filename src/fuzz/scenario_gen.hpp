// scenario_gen — deterministic registry-driven workload synthesis.
//
// Given a seed and a registry kind, synthesize a multi-process op script
// from that kind's opcode family (the randomized generalization of
// api::smoke_script): process count, per-process op mix and arguments,
// crash points, scheduler seed, fail policy, and flush/memory-model policy
// are all derived from the seed through one xorshift64* stream, so the same
// (seed, kind, config) triple always yields the identical scenario —
// `fuzz_main --seed S` reproduces any run bit-for-bit.
//
// Argument domains are deliberately tiny (values 0..7) so CAS expectations
// collide, queue/stack runs hit both the non-empty and k_empty paths, and
// the checker's search stays tractable.
//
// Kinds with usage contracts are generated within them: the recoverable
// lock's recovery is only sound when a client never invokes try_lock while
// possibly holding (rlock.hpp), so lock scripts alternate try/release per
// process and crashy lock scenarios use fail_policy::retry.
#pragma once

#include <cstdint>
#include <string>

#include "api/api.hpp"

namespace detect::fuzz {

struct gen_config {
  int min_procs = 1;
  int max_procs = 3;
  /// Per-process script length bounds.
  int min_ops = 1;
  int max_ops = 8;
  /// Crash plan: up to `max_crashes` crash points uniformly below
  /// `max_crash_step`. Ignored (no crashes generated) when `crashes` is
  /// false — non-detectable kinds are only meaningful crash-free.
  bool crashes = true;
  int max_crashes = 3;
  std::uint64_t max_crash_step = 160;
  /// Allow the generator to pick fail_policy::retry / the shared-cache
  /// memory model for a fraction of scenarios.
  bool allow_retry = true;
  bool allow_shared_cache = true;
  /// Argument domain for generated op values: 0 .. value_range-1.
  hist::value_t value_range = 8;
  /// Sharded-equivalence knob: scenarios draw `shards` from
  /// [min_shards, max_shards] out of the same xorshift stream (when
  /// min_shards == 1 a coin first keeps about half of them unsharded);
  /// fuzz::diff_sharded then replays single vs sharded for every scenario
  /// with shards > 1. max_shards <= 1 disables the knob entirely.
  int min_shards = 1;
  int max_shards = 4;
};

/// One random operation for `family`, drawn from family_opcodes(). `pid` is
/// threaded through because lock operations carry the caller's pid.
hist::op_desc random_op(std::uint64_t& rng, api::op_family family, int pid,
                        const gen_config& cfg);

/// Synthesize the full scenario for `kind` from `seed`. The kind's
/// detectability (registry metadata) gates crash injection: non-detectable
/// kinds (plain_*, stripped_*) get crash-free scenarios regardless of
/// `cfg.crashes`.
api::scripted_scenario generate(std::uint64_t seed, const std::string& kind,
                                const gen_config& cfg = {});

/// The seed of iteration `iter` in a fuzz campaign starting at `base_seed`
/// (splitmix64 step — decorrelates consecutive iterations).
std::uint64_t iteration_seed(std::uint64_t base_seed, std::uint64_t iter);

}  // namespace detect::fuzz
