// detect::sched — pluggable schedule-exploration strategies for the
// simulated world.
//
// Every fuzz iteration used to explore interleavings through one uniform
// `sim::random_scheduler`. This layer turns the scheduling policy into a
// first-class, serializable knob:
//
//   * round_robin    — deterministic rotation (the unseeded default).
//   * uniform_random — each step picks uniformly among runnable processes
//     (the historical seeded behavior, refactored behind the interface).
//   * pct            — probabilistic concurrency testing (Burckhardt et al.):
//     every process gets a random priority from the seed stream and the
//     highest-priority runnable process runs; at each of d preemption points
//     (explicit global step numbers) the running process is demoted below
//     everyone else. A bug that needs d carefully placed preemptions is hit
//     with probability ~1/(n·k^d) per seed — far better than uniform random,
//     whose chance of sustaining d long adversarial gaps decays
//     exponentially.
//
// The preemption points are materialized in `sched_policy` (not re-derived
// from the seed at run time) so replays are self-contained and the shrinker
// can canonicalize a repro by dropping points one at a time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace detect::sched {

enum class strategy : std::uint8_t { round_robin, uniform_random, pct };

/// Stable wire name ("round_robin", "uniform_random", "pct").
const char* strategy_name(strategy s) noexcept;

/// Inverse of strategy_name. Empty optional for unknown names.
std::optional<strategy> strategy_from_name(const std::string& name) noexcept;

/// The serializable schedule-exploration choice of one execution: which
/// strategy, and (for pct) the explicit preemption points. The seed itself is
/// not part of the policy — it stays the scenario's `sched_seed`, shared by
/// every strategy.
struct sched_policy {
  strategy strat = strategy::uniform_random;
  /// Global step numbers at which pct demotes the running process. Ignored
  /// by the other strategies. Kept sorted by parse()/draw_pct_points().
  std::vector<std::uint64_t> pct_points;

  /// "pct 12 45" / "uniform_random" — the scripted_scenario v5 `sched` value.
  std::string to_string() const;
  /// Inverse of to_string(). Throws std::invalid_argument on unknown
  /// strategy names, malformed points, or points on a non-pct strategy.
  static sched_policy parse(const std::string& text);

  bool operator==(const sched_policy&) const = default;
};

/// Draw `depth` preemption points from the xorshift seed stream, uniformly
/// over steps [1, horizon]; returned sorted and deduplicated (so the
/// effective budget can come out below `depth` on collisions, exactly like
/// the PCT paper's with-replacement sampling).
std::vector<std::uint64_t> draw_pct_points(std::uint64_t seed, int depth,
                                           std::uint64_t horizon);

/// PCT scheduler over sim::scheduler::pick(). Priorities are assigned lazily
/// (first time a pid shows up runnable) from the seed stream; at each
/// preemption point the currently-preferred runnable process drops below
/// every priority handed out so far.
class pct_scheduler final : public sim::scheduler {
 public:
  pct_scheduler(std::uint64_t seed, std::vector<std::uint64_t> points);

  int pick(const std::vector<int>& runnable, std::uint64_t step_no) override;
  std::string describe() const override;

  /// Preemption points actually applied so far (≤ the configured budget).
  std::uint64_t preemptions_applied() const noexcept { return applied_; }

 private:
  std::int64_t priority_of(int pid);
  int top_runnable(const std::vector<int>& runnable);

  std::uint64_t state_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> points_;
  std::size_t next_point_ = 0;
  std::uint64_t applied_ = 0;
  std::map<int, std::int64_t> prio_;
  std::int64_t demote_floor_ = -1;
};

/// Instantiate the scheduler a policy describes. `seed` is the scenario's
/// sched_seed; absent, uniform_random degrades to round robin — the
/// historical contract of harness::builder (only .seed() selects the random
/// scheduler).
std::unique_ptr<sim::scheduler> make_scheduler(
    const sched_policy& policy, std::optional<std::uint64_t> seed);

}  // namespace detect::sched
