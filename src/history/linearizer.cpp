#include "history/linearizer.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace detect::hist {

std::string op_record::to_string() const {
  std::ostringstream os;
  os << "p" << pid << ":" << desc.to_string() << " [" << invoke_index << ","
     << (response_index == k_npos ? std::string("open")
                                  : std::to_string(response_index))
     << "]";
  if (has_response) os << " -> " << response;
  if (optional) os << " (optional)";
  return os.str();
}

namespace {

struct search {
  const std::vector<op_record>& ops;
  std::vector<std::vector<std::size_t>> preds;  // real-time predecessors
  std::unordered_set<std::string> visited;
  std::vector<std::pair<std::size_t, bool>> chosen;  // (index, dropped)
  std::size_t budget;
  std::size_t nodes = 0;
  std::size_t best_depth = 0;

  explicit search(const std::vector<op_record>& o, std::size_t b)
      : ops(o), budget(b) {
    preds.resize(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = 0; j < ops.size(); ++j) {
        if (j == i) continue;
        if (ops[j].response_index != k_npos &&
            ops[j].response_index < ops[i].invoke_index) {
          preds[i].push_back(j);
        }
      }
    }
  }

  bool eligible(std::uint64_t done, std::size_t i) const {
    if (done & (std::uint64_t{1} << i)) return false;
    for (std::size_t j : preds[i]) {
      if (!(done & (std::uint64_t{1} << j))) return false;
    }
    return true;
  }

  // Returns true on success; false when this subtree has no linearization.
  // Throws std::length_error when the node budget is exhausted.
  bool dfs(std::uint64_t done, const spec& state) {
    std::size_t depth = static_cast<std::size_t>(std::popcount(done));
    best_depth = std::max(best_depth, depth);
    if (depth == ops.size()) return true;
    if (budget-- == 0) throw std::length_error("budget");
    ++nodes;

    std::string key = std::to_string(done) + '|' + state.serialize();
    if (!visited.insert(std::move(key)).second) return false;

    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!eligible(done, i)) continue;
      std::uint64_t done2 = done | (std::uint64_t{1} << i);
      // Branch 1: linearize op i here.
      {
        auto next = state.clone();
        value_t resp = next->apply(ops[i].desc);
        if (!ops[i].has_response || resp == ops[i].response) {
          chosen.emplace_back(i, false);
          if (dfs(done2, *next)) return true;
          chosen.pop_back();
        }
      }
      // Branch 2: drop op i (only if the model allows it).
      if (ops[i].optional) {
        chosen.emplace_back(i, true);
        if (dfs(done2, state)) return true;
        chosen.pop_back();
      }
    }
    return false;
  }
};

}  // namespace

lin_result check_linearizable(const std::vector<op_record>& ops,
                              const spec& initial, std::size_t node_budget) {
  lin_result r;
  if (ops.size() > 64) {
    r.error = "checker supports at most 64 operations per history; got " +
              std::to_string(ops.size());
    return r;
  }
  search s(ops, node_budget);
  try {
    if (s.dfs(0, initial)) {
      r.linearizable = true;
      r.nodes = s.nodes;
      for (auto [idx, dropped] : s.chosen) {
        if (!dropped) r.witness.push_back(idx);
      }
      return r;
    }
  } catch (const std::length_error&) {
    r.exhausted_budget = true;
    r.nodes = s.nodes;
    r.error = "node budget exhausted (inconclusive)";
    return r;
  }
  r.nodes = s.nodes;
  std::ostringstream os;
  os << "not linearizable; deepest prefix ordered " << s.best_depth << " of "
     << ops.size() << " ops. Ops:\n";
  for (const auto& op : ops) os << "  " << op.to_string() << '\n';
  r.error = os.str();
  return r;
}

}  // namespace detect::hist
