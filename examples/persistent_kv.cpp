// persistent_kv — a small crash-safe key-value store built from detectable
// registers (one Algorithm-1 register per key).
//
// The scenario the paper's introduction motivates: clients on a machine with
// NVM issue updates; power fails mid-operation; on reboot each client must
// know whether its update took effect before deciding to retry — *without*
// replaying a log. Detectability gives exactly that: the recovery function
// returns the operation's response if it was linearized and `fail` if it is
// safe to consider it never executed.
//
// Build & run:  ./build/examples/persistent_kv
#include <cstdio>
#include <memory>
#include <vector>

#include "core/detectable_register.hpp"
#include "core/runtime.hpp"
#include "history/checker.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

namespace {

constexpr int k_clients = 3;
constexpr int k_keys = 4;

}  // namespace

int main() {
  using namespace detect;

  sim::world world(k_clients);
  core::announcement_board board(k_clients, world.domain());
  hist::log log;
  core::runtime rt(world, log, board);

  // The store: one detectable register per key, all in emulated NVM.
  std::vector<std::unique_ptr<core::detectable_register>> store;
  hist::multi_spec spec;
  for (int k = 0; k < k_keys; ++k) {
    store.push_back(std::make_unique<core::detectable_register>(
        k_clients, board, 0, world.domain()));
    rt.register_object(static_cast<std::uint32_t>(k), *store.back());
    spec.add_object(static_cast<std::uint32_t>(k),
                    std::make_unique<hist::register_spec>(0));
  }

  // Client workloads: put(key, value) / get(key) across the keyspace.
  auto put = [](int key, hist::value_t v) {
    return hist::op_desc{static_cast<std::uint32_t>(key),
                         hist::opcode::reg_write, v, 0, 0};
  };
  auto get = [](int key) {
    return hist::op_desc{static_cast<std::uint32_t>(key),
                         hist::opcode::reg_read, 0, 0, 0};
  };
  rt.set_script(0, {put(0, 100), put(1, 101), get(0), put(2, 102)});
  rt.set_script(1, {put(1, 201), get(1), put(3, 203), get(2)});
  rt.set_script(2, {get(3), put(0, 300), get(1), put(3, 303)});
  // A client whose put is reported `fail` retries it (NRL-style).
  rt.set_fail_policy(core::runtime::fail_policy::retry);

  // Simulated power failures: ~2% chance before every memory step.
  sim::random_scheduler sched(7);
  sim::random_crashes crashes(99, 0.02, 5);
  auto report = rt.run(sched, &crashes);

  std::printf("persistent_kv: %llu steps, %llu power failures\n",
              static_cast<unsigned long long>(report.steps),
              static_cast<unsigned long long>(report.crashes));

  // Summarize recovery decisions.
  int recovered_done = 0;
  int recovered_retry = 0;
  for (const auto& e : log.snapshot()) {
    if (e.kind != hist::event_kind::recover_result) continue;
    if (e.verdict == hist::recovery_verdict::linearized) {
      ++recovered_done;
      std::printf("  client %d: %s HAD completed (response %lld)\n", e.pid,
                  e.desc.to_string().c_str(), static_cast<long long>(e.value));
    } else {
      ++recovered_retry;
      std::printf("  client %d: %s had NOT executed -> retried\n", e.pid,
                  e.desc.to_string().c_str());
    }
  }
  std::printf("recoveries: %d already-linearized, %d safely-retried\n",
              recovered_done, recovered_retry);

  // Final store contents (direct peek, outside the simulation).
  std::printf("final store: ");
  for (int k = 0; k < k_keys; ++k) {
    hist::op_desc rd = get(k);
    rd.client_seq = 1000 + static_cast<std::uint64_t>(k);
    // Sequential read by "client 0" after the run; no concurrency left.
    board.of(0).resp.store(hist::k_bottom);
    std::printf("k%d=%lld ", k,
                static_cast<long long>(store[static_cast<std::size_t>(k)]
                                           ->invoke(0, rd)));
  }
  std::printf("\n");

  auto check = hist::check_durable_linearizability(log.snapshot(), spec);
  std::printf("history verified: %s\n", check.ok ? "YES" : "NO");
  if (!check.ok) std::printf("%s\n", check.message.c_str());
  return check.ok ? 0 : 1;
}
