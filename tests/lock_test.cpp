// Recoverable lock and detectable swap: mutual exclusion across crashes,
// holder-survives-crash (RME behaviour), and swap's capsule recovery.
#include <gtest/gtest.h>

#include "core/rlock.hpp"
#include "core/rmw.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

hist::op_desc lk_try(int pid) {
  return {0, hist::opcode::lock_try, pid, 0, 0};
}
hist::op_desc lk_rel(int pid) {
  return {0, hist::opcode::lock_release, pid, 0, 0};
}
hist::op_desc swp(hist::value_t v) { return {0, hist::opcode::swap, v, 0, 0}; }

scenario_config lock_scenario(int nprocs,
                              std::map<int, std::vector<hist::op_desc>> scripts,
                              core::runtime::fail_policy policy =
                                  core::runtime::fail_policy::skip) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.policy = policy;
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(
        std::make_unique<core::recoverable_lock>(nprocs, f.board, f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::lock_spec()); };
  return cfg;
}

scenario_config swap_scenario(int nprocs,
                              std::map<int, std::vector<hist::op_desc>> scripts,
                              core::runtime::fail_policy policy =
                                  core::runtime::fail_policy::skip) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.policy = policy;
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_swap>(nprocs, f.board, 0,
                                                           f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::register_spec(0));
  };
  return cfg;
}

// ---- recoverable_lock --------------------------------------------------------

TEST(recoverable_lock, sequential_acquire_release) {
  auto cfg = lock_scenario(
      1, {{0, {lk_try(0), lk_rel(0), lk_try(0), lk_try(0), lk_rel(0)}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(recoverable_lock, release_without_holding_returns_false) {
  auto cfg = lock_scenario(2, {
                                  {0, {lk_try(0)}},
                                  {1, {lk_rel(1)}},
                              });
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << out.check.message;
  }
}

TEST(recoverable_lock, at_most_one_holder) {
  auto cfg = lock_scenario(3, {
                                  {0, {lk_try(0)}},
                                  {1, {lk_try(1)}},
                                  {2, {lk_try(2)}},
                              });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(recoverable_lock, crash_sweep_acquire_release_cycle) {
  auto cfg = lock_scenario(2, {
                                  {0, {lk_try(0), lk_rel(0)}},
                                  {1, {lk_try(1), lk_rel(1)}},
                              });
  crash_sweep(cfg, 3);
}

TEST(recoverable_lock, double_crash_pair_sweep) {
  auto cfg = lock_scenario(2, {
                                  {0, {lk_try(0), lk_rel(0)}},
                                  {1, {lk_try(1)}},
                              });
  crash_pair_sweep(cfg, 9, /*stride=*/3);
}

TEST(recoverable_lock, crash_fuzz_retry) {
  auto cfg = lock_scenario(3,
                           {
                               {0, {lk_try(0), lk_rel(0)}},
                               {1, {lk_try(1), lk_rel(1)}},
                               {2, {lk_try(2), lk_rel(2)}},
                           },
                           core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 120, 2);
}

TEST(recoverable_lock, holder_survives_crash) {
  // RME behaviour: a crash does not release the lock; the owner's recovery
  // reports the acquire linearized.
  sim_fixture f(2);
  core::recoverable_lock lock(2, f.board, f.w.domain());
  f.rt.register_object(0, lock);
  f.rt.set_script(0, {lk_try(0)});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  EXPECT_EQ(lock.holder(), 0);
  f.w.crash();
  EXPECT_EQ(lock.holder(), 0) << "ownership is durable";
  auto rec = lock.recover(0, lk_try(0));
  EXPECT_EQ(rec.verdict, hist::recovery_verdict::linearized);
  EXPECT_EQ(rec.response, hist::k_true);
}

TEST(recoverable_lock, acquire_recovery_is_sound_when_cas_lost) {
  // p1 holds the lock; p0's trylock fails; recovery must not claim success.
  sim_fixture f(2);
  core::recoverable_lock lock(2, f.board, f.w.domain());
  f.rt.register_object(0, lock);
  f.rt.set_script(1, {lk_try(1)});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  ASSERT_EQ(lock.holder(), 1);
  // Simulate p0 announcing a trylock then crashing before/after its steps.
  f.board.of(0).resp.store(hist::k_bottom);
  f.board.of(0).cp.store(0);
  auto rec = lock.recover(0, lk_try(0));
  EXPECT_EQ(rec.verdict, hist::recovery_verdict::fail)
      << "owner is p1; p0's acquire cannot have been linearized";
}

// ---- detectable_swap -----------------------------------------------------------

TEST(detectable_swap, sequential_chain) {
  auto cfg = swap_scenario(1, {{0, {swp(5), swp(9), swp(2)}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_swap, concurrent_swaps_form_a_chain) {
  // Swap responses must chain: each op returns the previous op's value —
  // the spec check enforces the permutation structure.
  auto cfg = swap_scenario(3, {
                                  {0, {swp(1), swp(2)}},
                                  {1, {swp(10), swp(20)}},
                                  {2, {swp(100)}},
                              });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_swap, crash_sweep) {
  auto cfg = swap_scenario(2, {
                                  {0, {swp(1), swp(2)}},
                                  {1, {swp(7)}},
                              });
  crash_sweep(cfg, 5);
}

TEST(detectable_swap, double_crash_pair_sweep) {
  auto cfg = swap_scenario(2, {
                                  {0, {swp(1)}},
                                  {1, {swp(7)}},
                              });
  crash_pair_sweep(cfg, 13, /*stride=*/2);
}

TEST(detectable_swap, crash_fuzz_retry_exactly_once) {
  auto cfg = swap_scenario(2,
                           {
                               {0, {swp(1), swp(2)}},
                               {1, {swp(7), swp(8)}},
                           },
                           core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 120, 2);
}

class lock_property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(lock_property, mutual_exclusion_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = lock_scenario(2,
                           {
                               {0, {lk_try(0), lk_rel(0)}},
                               {1, {lk_try(1), lk_rel(1)}},
                           },
                           core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 86028121);
}

INSTANTIATE_TEST_SUITE_P(sweep, lock_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
