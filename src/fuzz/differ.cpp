#include "fuzz/differ.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

namespace detect::fuzz {

namespace {

/// (pid, opcode, value) triples of every normally-returned response, in log
/// order — the observable behavior a deterministic replay must reproduce.
std::vector<std::tuple<int, hist::opcode, hist::value_t>> responses(
    const std::vector<hist::event>& events) {
  std::vector<std::tuple<int, hist::opcode, hist::value_t>> out;
  for (const hist::event& e : events) {
    if (e.kind == hist::event_kind::response) {
      out.emplace_back(e.pid, e.desc.code, e.value);
    }
  }
  return out;
}

std::string describe(const api::scripted_scenario& s) {
  std::ostringstream os;
  os << "objects=";
  for (std::size_t i = 0; i < s.objects.size(); ++i) {
    if (i != 0) os << ",";
    os << s.objects[i].id << ":" << s.objects[i].kind;
  }
  os << " procs=" << s.nprocs << " ops=" << s.total_ops()
     << " crashes=" << s.crash_steps.size()
     << " policy=" << api::fail_policy_name(s.policy)
     << " backend=" << api::backend_name(s.backend) << "/" << s.shards
     << (s.shared_cache ? " shared_cache" : "")
     << " sched=" << s.sched.to_string()
     << " persist=" << nvm::persist_name(s.persist);
  return os.str();
}

/// The comparison core shared by the variant diff and the sharded-
/// equivalence diff: `a` and `b` are outcomes of the identical scenario
/// `base` replayed as `a_name` and `b_name`. Response streams are compared
/// only when `compare_responses` — the caller knows whether both replays
/// were deterministic.
diff_report compare_replays(const api::scripted_scenario& base,
                            const api::scripted_outcome& a,
                            const std::string& a_name,
                            const api::scripted_outcome& b,
                            const std::string& b_name,
                            bool compare_responses) {
  diff_report r;
  auto fail = [&](const std::string& what) {
    r.ok = false;
    std::ostringstream os;
    os << "differ: " << what << "\n  scenario: " << describe(base)
       << "\n  variant: " << b_name;
    r.message = os.str();
    return r;
  };

  if (a.report.hit_step_limit) {
    return fail(a_name + " hit the step limit (" + a.report.limit_note + ")");
  }
  if (b.report.hit_step_limit) {
    return fail(b_name + " hit the step limit (" + b.report.limit_note + ")");
  }
  if (!a.check.ok) {
    return fail(a_name + " failed the checker: " + a.check.message);
  }
  if (!b.check.ok) {
    return fail(b_name + " failed the checker: " + b.check.message);
  }
  if (!compare_responses) return r;

  auto ra = responses(a.events);
  auto rb = responses(b.events);
  if (ra.size() != rb.size()) {
    return fail("response counts diverge: " + a_name + "=" +
                std::to_string(ra.size()) + " " + b_name + "=" +
                std::to_string(rb.size()));
  }
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i] != rb[i]) {
      std::ostringstream os;
      os << "response " << i << " diverges: " << a_name << " "
         << hist::opcode_name(std::get<1>(ra[i])) << " -> "
         << std::get<2>(ra[i]) << " vs " << b_name << " "
         << hist::opcode_name(std::get<1>(rb[i])) << " -> "
         << std::get<2>(rb[i]);
      return fail(os.str());
    }
  }
  return r;
}

}  // namespace

std::vector<std::string> variants_of(const std::string& kind) {
  static const std::map<std::string, std::vector<std::string>> table = {
      {"reg", {"attiya_reg", "nrl_reg", "plain_reg", "stripped_reg"}},
      {"cas", {"bendavid_cas", "plain_cas", "stripped_cas"}},
      {"counter", {"plain_counter", "stripped_counter"}},
      {"swap", {"stripped_swap"}},
      {"tas", {"stripped_tas"}},
      {"queue", {"stripped_queue"}},
      {"stack", {"stripped_stack"}},
  };
  auto it = table.find(kind);
  if (it == table.end()) return {};
  return it->second;
}

namespace {

bool all_objects_detectable(const api::scripted_scenario& s) {
  const api::object_registry& reg = api::object_registry::global();
  for (const api::scenario_object& o : s.objects) {
    if (reg.contains(o.kind) && !reg.at(o.kind).detectable) return false;
  }
  return true;
}

/// True when substituting object `index`'s kind with `variant_kind` can be
/// compared with the crash plan intact; false when the comparison must run
/// crash-free (variant or any declared object non-detectable). Validates
/// the family match.
bool crashes_comparable(const api::scripted_scenario& s, std::size_t index,
                        const std::string& variant_kind) {
  const api::object_registry& reg = api::object_registry::global();
  const api::kind_info& primary_info = reg.at(s.objects[index].kind);
  const api::kind_info& variant_info = reg.at(variant_kind);
  if (primary_info.family != variant_info.family) {
    throw std::invalid_argument("diff_against: family mismatch between '" +
                                s.objects[index].kind + "' and '" +
                                variant_kind + "'");
  }
  return variant_info.detectable && all_objects_detectable(s);
}

api::scripted_scenario crash_free(api::scripted_scenario s) {
  s.crash_steps.clear();
  s.policy = core::runtime::fail_policy::skip;
  return s;
}

std::size_t index_of_object(const api::scripted_scenario& s,
                            std::uint32_t object_id) {
  for (std::size_t i = 0; i < s.objects.size(); ++i) {
    if (s.objects[i].id == object_id) return i;
  }
  throw std::invalid_argument("diff_against: undeclared object id " +
                              std::to_string(object_id));
}

/// Cross-implementation replays are only deterministically comparable
/// response-for-response when single-proc and crash-free.
diff_report compare_variant_outcomes(const api::scripted_scenario& base,
                                     const api::scripted_outcome& a,
                                     const std::string& variant_name,
                                     const api::scripted_outcome& b) {
  return compare_replays(base, a, "declared", b, variant_name,
                         base.nprocs == 1 && base.crash_steps.empty());
}

/// Core of the per-object variant diff, given the already-replayed outcome
/// `a` of `base` (one replay, not two — check_scenario hands in the primary
/// outcome it already has).
diff_report diff_object_against(const api::scripted_scenario& base,
                                const api::scripted_outcome& a,
                                std::size_t index,
                                const std::string& variant_kind,
                                const hist::check_options& copt = {}) {
  api::scripted_scenario variant = base;
  variant.objects[index].kind = variant_kind;
  api::scripted_outcome b = api::replay(variant, copt);
  return compare_variant_outcomes(
      base, a,
      variant_kind + "@object " + std::to_string(base.objects[index].id), b);
}

}  // namespace

diff_report diff_against(const api::scripted_scenario& s,
                         std::uint32_t object_id,
                         const std::string& variant_kind) {
  const std::size_t index = index_of_object(s, object_id);
  api::scripted_scenario base =
      crashes_comparable(s, index, variant_kind) ? s : crash_free(s);
  hist::lin_memo memo;  // objects untouched by the substitution check once
  hist::check_options copt;
  copt.memo = &memo;
  return diff_object_against(base, api::replay(base, copt), index,
                             variant_kind, copt);
}

diff_report diff_against(const api::scripted_scenario& s,
                         const std::string& variant_kind) {
  return diff_against(s, s.primary().id, variant_kind);
}

namespace {

/// When are two same-scenario replays on different shard layouts comparable
/// response for response? Single-object scenarios are (the object's world
/// is deterministic wherever it lives) — except that a migration plan with
/// several processes re-runs the scripts on a world whose announcement
/// board is fresh, so the per-process recovery scans take different step
/// counts than the continuing world's and the seeded scheduler's picks
/// realign; single-proc runs are scheduling-independent, so they stay
/// exactly comparable even across migrations.
bool responses_comparable(const api::scripted_scenario& s) {
  return s.objects.size() == 1 && (s.migrations.empty() || s.nprocs == 1);
}

/// Core of the sharded-equivalence diff, given the already-replayed
/// single-backend outcome `a` of `base`. Response streams compare only on
/// single-object scenarios (see diff_sharded's header comment).
diff_report diff_sharded_against(const api::scripted_scenario& base,
                                 const api::scripted_outcome& a, int shards,
                                 const hist::check_options& copt = {}) {
  api::scripted_scenario variant = base;
  variant.backend = api::exec_backend::sharded;
  variant.shards = std::max(1, shards);
  api::scripted_outcome b = api::replay(variant, copt);
  return compare_replays(base, a, "single", b,
                         "sharded(" + std::to_string(variant.shards) + ")",
                         responses_comparable(base));
}

}  // namespace

diff_report diff_sharded(const api::scripted_scenario& s, int shards) {
  api::scripted_scenario base = s;
  base.backend = api::exec_backend::single;
  hist::lin_memo memo;  // both layouts produce identical per-object streams
  hist::check_options copt;
  copt.memo = &memo;
  return diff_sharded_against(base, api::replay(base, copt), shards, copt);
}

namespace {

/// Core of the placement-equivalence diff. `cached`, when non-null, is the
/// already-replayed outcome of the sharded variant carrying `cached_kind`
/// (check_scenario reuses the primary replay of a sharded-backend
/// scenario). `replays` counts the fresh replays performed.
diff_report diff_placement_impl(const api::scripted_scenario& s,
                                const api::scripted_outcome* cached,
                                api::placement_kind cached_kind,
                                std::uint64_t* replays,
                                const hist::check_options& copt = {}) {
  diff_report r;
  if (s.shards < 2) return r;
  api::scripted_scenario base = s;
  base.backend = api::exec_backend::sharded;

  const bool compare_responses = responses_comparable(s);
  std::optional<api::scripted_outcome> first;
  std::string first_name;
  for (api::placement_kind kind :
       {api::placement_kind::modulo, api::placement_kind::hash,
        api::placement_kind::range}) {
    api::scripted_scenario variant = base;
    variant.placement = {};
    variant.placement.kind = kind;
    api::scripted_outcome out;
    if (cached != nullptr && cached_kind == kind) {
      out = *cached;
    } else {
      if (replays != nullptr) ++*replays;
      out = api::replay(variant, copt);
    }
    const std::string name =
        std::string("sharded/") + api::placement_name(kind);
    if (!first.has_value()) {
      first = std::move(out);
      first_name = name;
      continue;
    }
    diff_report d = compare_replays(variant, *first, first_name, out, name,
                                    compare_responses);
    if (!d.ok) return d;
  }
  return r;
}

}  // namespace

diff_report diff_placement(const api::scripted_scenario& s) {
  hist::lin_memo memo;  // placement is routing-only: object streams repeat
  hist::check_options copt;
  copt.memo = &memo;
  return diff_placement_impl(s, nullptr, api::placement_kind::modulo, nullptr,
                             copt);
}

std::string verify_scenario(const api::scripted_scenario& s) {
  return check_scenario(s, /*diff=*/false);
}

std::string check_scenario(const api::scripted_scenario& s, bool diff,
                           std::uint64_t* replays,
                           api::scripted_outcome* primary_out,
                           bool placement, int check_jobs) {
  auto count = [replays](std::uint64_t n) {
    if (replays != nullptr) *replays += n;
  };
  // One check memo for the scenario's whole variant family: every replay
  // below perturbs one dimension (shard layout, placement, one object's
  // implementation kind), so most per-object event streams repeat verbatim
  // and their linearizations are fingerprint-cache hits (see hist::lin_memo).
  // The memo's internal lock also makes it sound under check_jobs > 1.
  hist::lin_memo memo;
  hist::check_options copt;
  copt.memo = &memo;
  copt.jobs = check_jobs;
  count(1);
  api::scripted_outcome primary = api::replay(s, copt);
  if (primary_out != nullptr) *primary_out = primary;
  const std::string& primary_kind = s.primary().kind;
  if (primary.report.hit_step_limit) {
    return "replay of " + primary_kind + " hit the step limit (" +
           std::to_string(primary.report.steps) + " steps; " +
           primary.report.limit_note + ")";
  }
  if (!primary.check.ok) {
    return "checker rejected " + primary_kind + ": " + primary.check.message +
           "\n" + primary.log_text;
  }

  // Single-vs-sharded equivalence, whenever the scenario carries a shard
  // count (generated scenarios draw it; see gen_config::max_shards). Part of
  // the base oracle, not the variant pass — the shrinker must preserve it.
  // When the scenario runs single, `primary` is the single-side replay and
  // only the sharded side is fresh; when it runs sharded, the roles flip.
  if (s.shards > 1 && s.backend == api::exec_backend::single) {
    count(1);
    diff_report d = diff_sharded_against(s, primary, s.shards, copt);
    if (!d.ok) return d.message;
  } else if (s.shards > 1 && s.backend == api::exec_backend::sharded) {
    api::scripted_scenario base = s;
    base.backend = api::exec_backend::single;
    count(1);
    api::scripted_outcome a = api::replay(base, copt);
    diff_report d = compare_replays(
        base, a, "single", primary,
        "sharded(" + std::to_string(s.shards) + ")",
        responses_comparable(s));
    if (!d.ok) return d.message;
  }

  // Placement equivalence (the --placement-equiv campaigns): the identical
  // scenario under modulo vs hash vs range routing must produce the same
  // verdicts. A sharded-backend primary whose own placement is one of the
  // three serves as that variant's replay.
  if (placement && s.shards > 1) {
    const bool reuse = s.backend == api::exec_backend::sharded &&
                       s.placement.kind != api::placement_kind::pinned;
    diff_report d = diff_placement_impl(s, reuse ? &primary : nullptr,
                                        s.placement.kind, replays, copt);
    if (!d.ok) return d.message;
  }
  if (!diff) return {};

  // Per-object variant substitution. Primary outcomes are shared across
  // variants: `primary` serves every crash-comparable substitution; the
  // crash-free base (needed whenever plain_*/stripped_* kinds are in play)
  // is replayed lazily at most once and reused across objects.
  std::optional<api::scripted_scenario> cf_base;
  std::optional<api::scripted_outcome> cf_primary;
  for (std::size_t index = 0; index < s.objects.size(); ++index) {
    for (const std::string& variant_kind : variants_of(s.objects[index].kind)) {
      const bool as_is = crashes_comparable(s, index, variant_kind);
      const api::scripted_scenario* base = &s;
      const api::scripted_outcome* a = &primary;
      if (!as_is) {
        if (!cf_base.has_value()) {
          cf_base = crash_free(s);
          if (s.crash_steps.empty() &&
              s.policy == core::runtime::fail_policy::skip) {
            cf_primary = primary;  // already crash-free: reuse the replay
          } else {
            count(1);
            cf_primary = api::replay(*cf_base, copt);
          }
        }
        base = &*cf_base;
        a = &*cf_primary;
      }
      count(1);
      diff_report d = diff_object_against(*base, *a, index, variant_kind,
                                          copt);
      if (!d.ok) return d.message;
    }
  }
  return {};
}

}  // namespace detect::fuzz
