#include "history/checker.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <typeinfo>
#include <unordered_set>

#include "util/task_pool.hpp"

namespace detect::hist {

namespace {

// Two independent FNV-1a streams over the same field sequence — together the
// 128-bit sub-check fingerprint lin_memo keys on.
struct fingerprint {
  std::uint64_t lo = 14695981039346656037ULL;  // FNV-1a offset basis
  std::uint64_t hi = 0x9AE16A3B2F90404FULL;    // independent seed

  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t byte = (v >> (8 * i)) & 0xff;
      lo = (lo ^ byte) * 1099511628211ULL;
      hi = (hi ^ byte) * 0x100000001B3ULL;
      hi ^= hi >> 29;
    }
  }
  void str(const std::string& s) noexcept {
    u64(s.size());
    for (char c : s) u64(static_cast<std::uint8_t>(c));
  }
};

// Field-wise, never memcpy of the struct: event has padding bytes whose
// contents would poison the fingerprint.
lin_memo::key memo_key(const spec& sp, std::size_t node_budget,
                       std::uint64_t model_salt,
                       const std::vector<event>& events) {
  fingerprint f;
  f.str(typeid(sp).name());
  f.str(sp.serialize());
  f.u64(node_budget);
  f.u64(model_salt);
  f.u64(events.size());
  for (const event& e : events) {
    f.u64(static_cast<std::uint64_t>(e.kind));
    f.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.pid)));
    f.u64(e.desc.object);
    f.u64(static_cast<std::uint64_t>(e.desc.code));
    f.u64(static_cast<std::uint64_t>(e.desc.a));
    f.u64(static_cast<std::uint64_t>(e.desc.b));
    f.u64(e.desc.client_seq);
    f.u64(static_cast<std::uint64_t>(e.value));
    f.u64(static_cast<std::uint64_t>(e.verdict));
  }
  return {f.lo, f.hi};
}

}  // namespace

bool lin_memo::lookup(const key& k, check_result* out) {
  std::scoped_lock lock(mu_);
  auto it = entries_.find(k);
  if (it == entries_.end()) return false;
  *out = it->second;
  ++hits_;
  return true;
}

void lin_memo::store(const key& k, const check_result& r) {
  std::scoped_lock lock(mu_);
  entries_.emplace(k, r);
  ++misses_;
}

std::vector<op_record> build_records(const std::vector<event>& events,
                                     bool* synthesized_interval) {
  std::vector<op_record> out;
  // One open operation per process at a time (processes are sequential).
  std::map<int, std::size_t> open;  // pid -> index into `out`
  // (pid, client_seq) -> index of the FIRST recover_begin for that op. A
  // crash can strike inside the announcement window before the invoke event
  // is logged; a re-invoking recovery (e.g. the nrl adapter) then executes
  // the op — possibly in an early recovery attempt that is itself crashed
  // before it can report, with only a later re-attempt logging the verdict.
  // The synthesized interval must therefore start at the first attempt, not
  // the last: anchoring at the last recover_begin fabricates a real-time
  // edge against ops that completed in between and falsely fails histories
  // (found by the differential fuzzer on nrl_reg).
  std::map<std::pair<int, std::uint64_t>, std::size_t> first_begin;
  // Last client_seq whose record closed, per pid: a crash between an op's
  // response and the client's durable program-counter update makes recovery
  // re-report "linearized" for an op the log already closed; such duplicate
  // completion reports must not spawn a second record.
  std::map<int, std::uint64_t> last_closed;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const event& e = events[i];
    switch (e.kind) {
      case event_kind::invoke: {
        if (open.count(e.pid) != 0) {
          throw std::logic_error("process p" + std::to_string(e.pid) +
                                 " invoked an op while one is open");
        }
        op_record r;
        r.pid = e.pid;
        r.desc = e.desc;
        r.invoke_index = i;
        open[e.pid] = out.size();
        out.push_back(r);
        break;
      }
      case event_kind::response: {
        auto it = open.find(e.pid);
        if (it == open.end()) {
          throw std::logic_error("response without open op on p" +
                                 std::to_string(e.pid));
        }
        op_record& r = out[it->second];
        r.response_index = i;
        r.response = e.value;
        r.has_response = true;
        last_closed[e.pid] = r.desc.client_seq;
        open.erase(it);
        break;
      }
      case event_kind::crash:
        break;  // intervals simply continue
      case event_kind::recover_begin:
        first_begin.emplace(std::make_pair(e.pid, e.desc.client_seq), i);
        break;
      case event_kind::recover_result: {
        // This recovery round concluded; a later round for the same seq (a
        // retry after `fail`) starts fresh, so its interval must anchor at
        // its own first recover_begin, not this round's.
        const std::pair<int, std::uint64_t> round_key{e.pid,
                                                      e.desc.client_seq};
        auto it = open.find(e.pid);
        if (it == open.end()) {
          // No open op. A `fail` verdict imposes nothing (the operation
          // never took a step). A `linearized` verdict for an op whose
          // record already closed is a duplicate completion report (crash
          // between response and the client's done_seq update) — ignore it.
          // Otherwise the crash struck inside the announcement window before
          // the invoke event was logged and a re-invoking recovery executed
          // the op now: synthesize a record spanning [recover_begin, here].
          auto lc = last_closed.find(e.pid);
          if (lc != last_closed.end() && lc->second == e.desc.client_seq) {
            first_begin.erase(round_key);
            break;
          }
          if (e.verdict == recovery_verdict::linearized) {
            auto b = first_begin.find(round_key);
            if (b == first_begin.end()) {
              throw std::logic_error(
                  "linearized verdict with no open op and no recover_begin");
            }
            op_record r;
            r.pid = e.pid;
            r.desc = e.desc;
            r.invoke_index = b->second;
            r.response_index = i;
            r.response = e.value;
            r.has_response = true;
            last_closed[e.pid] = r.desc.client_seq;
            out.push_back(r);
            if (synthesized_interval != nullptr) *synthesized_interval = true;
          }
          first_begin.erase(round_key);
          break;
        }
        op_record& r = out[it->second];
        if (e.verdict == recovery_verdict::linearized) {
          r.response_index = i;
          r.response = e.value;
          r.has_response = true;
          last_closed[e.pid] = r.desc.client_seq;
          open.erase(it);
        } else {
          // fail ⇒ asserted not linearized ⇒ excluded from the candidate
          // history. Mark for removal below; a later re-attempt shows up as
          // a fresh invoke event.
          r.pid = -2;
          open.erase(it);
        }
        first_begin.erase(round_key);
        break;
      }
    }
  }
  // Ops never resolved (pending at end of run / unrecovered crash) may be
  // dropped by the linearization.
  for (auto& [pid, idx] : open) {
    out[idx].optional = true;
    out[idx].has_response = false;
    out[idx].response_index = k_npos;
  }
  std::vector<op_record> filtered;
  filtered.reserve(out.size());
  for (auto& r : out) {
    if (r.pid != -2) filtered.push_back(r);
  }
  return filtered;
}

check_result check_durable_linearizability(const std::vector<event>& events,
                                           const spec& initial,
                                           std::size_t node_budget) {
  check_result res;
  std::vector<op_record> records;
  try {
    records = build_records(events, &res.synthesized_interval);
  } catch (const std::exception& ex) {
    res.message = std::string("malformed log: ") + ex.what();
    return res;
  }
  lin_result lr = check_linearizable(records, initial, node_budget);
  res.ok = lr.linearizable;
  res.inconclusive = lr.exhausted_budget;
  res.nodes = lr.nodes;
  if (!lr.linearizable) {
    std::ostringstream os;
    os << lr.error << "\nEvent log:\n";
    for (const event& e : events) os << "  " << e.to_string() << '\n';
    res.message = os.str();
  }
  return res;
}

std::vector<event> object_events(const std::vector<event>& events,
                                 std::uint32_t object_id) {
  std::vector<event> out;
  for (const event& e : events) {
    if (e.kind == event_kind::crash || e.desc.object == object_id) {
      out.push_back(e);
    }
  }
  return out;
}

namespace {

/// One object's sub-check: project nothing (the stream is pre-built), consult
/// the memo, compute, record. Pure function of its inputs — the property the
/// parallel driver's determinism rests on.
check_result run_sub_check(const object_stream& os, const check_options& opt) {
  lin_memo::key key;
  check_result sub;
  if (opt.memo != nullptr) {
    key = memo_key(*os.sp, opt.node_budget, opt.model_salt, os.events);
    if (opt.memo->lookup(key, &sub)) return sub;
  }
  sub = check_durable_linearizability(os.events, *os.sp, opt.node_budget);
  if (opt.memo != nullptr) opt.memo->store(key, sub);
  return sub;
}

/// Lanes actually used for `count` independent sub-checks given opt.jobs:
/// jobs == 1 (or fewer than two sub-checks) is serial; an explicit jobs > 1
/// always gets real workers (even on a one-core host — tests rely on true
/// concurrency); jobs == 0 auto-sizes to the hardware and collapses to
/// serial when the host cannot run two lanes at once.
int lanes_for(int jobs, std::size_t count) {
  if (count < 2) return 1;
  int n = jobs;
  if (n == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 1 : static_cast<int>(hw);
  }
  n = std::min<int>(n, static_cast<int>(
                           std::min<std::size_t>(count, util::task_pool::k_max_workers)));
  return n >= 2 ? n : 1;
}

}  // namespace

check_result check_object_streams(const std::vector<object_stream>& streams,
                                  const check_options& opt) {
  check_result res;
  res.ok = true;
  res.objects = streams.size();

  // Every sub-check runs — no early exit — into a per-object slot, either
  // serially or on pool lanes pulling indices from a shared counter (no work
  // stealing, no order sensitivity: slot i holds object i's verdict however
  // lanes interleave).
  std::vector<check_result> subs(streams.size());
  const int lanes = lanes_for(opt.jobs, streams.size());
  if (lanes <= 1) {
    for (std::size_t i = 0; i < streams.size(); ++i) {
      subs[i] = run_sub_check(streams[i], opt);
    }
  } else {
    util::task_pool& pool = util::task_pool::shared();
    pool.ensure_workers(lanes);
    std::atomic<std::size_t> next{0};
    std::vector<std::function<void()>> jobs;
    jobs.reserve(static_cast<std::size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
      jobs.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= streams.size()) return;
          subs[i] = run_sub_check(streams[i], opt);
        }
      });
    }
    pool.run_batch(jobs);
  }

  // Merge in declaration order — byte-identical whatever `lanes` was. On
  // failure name the *worst offender*: the failing object whose own
  // sub-check expanded the most nodes (ties toward the smallest object id),
  // and the node count it spent against the full-history total, so a deep-
  // fuzz artifact is debuggable without replaying the whole history.
  std::size_t worst = streams.size();
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const check_result& sub = subs[i];
    res.nodes += sub.nodes;
    res.synthesized_interval |= sub.synthesized_interval;
    if (sub.ok) continue;
    res.ok = false;
    if (worst == streams.size() || sub.nodes > subs[worst].nodes ||
        (sub.nodes == subs[worst].nodes &&
         streams[i].id < streams[worst].id)) {
      worst = i;
    }
  }
  if (!res.ok) {
    const check_result& sub = subs[worst];
    res.inconclusive = sub.inconclusive;
    res.failed_object = static_cast<std::int64_t>(streams[worst].id);
    res.message = "object " + std::to_string(streams[worst].id) + " (" +
                  std::to_string(sub.nodes) + " of " +
                  std::to_string(res.nodes) + " nodes): " + sub.message;
  }
  return res;
}

check_result check_durable_linearizability_per_object(
    const std::vector<event>& events, const object_spec_list& specs,
    const check_options& opt) {
  // Every op event must belong to a spec'd object — a silent skip would
  // vacuously pass histories the caller thought were being checked.
  std::unordered_set<std::uint32_t> known;
  known.reserve(specs.size());
  for (const auto& [id, sp] : specs) known.insert(id);
  for (const event& e : events) {
    if (e.kind != event_kind::crash && known.count(e.desc.object) == 0) {
      check_result res;
      res.message = "per-object check: no spec for object id " +
                    std::to_string(e.desc.object);
      return res;
    }
  }

  std::vector<object_stream> streams;
  streams.reserve(specs.size());
  for (const auto& [id, sp] : specs) {
    streams.push_back({id, sp, object_events(events, id)});
  }
  return check_object_streams(streams, opt);
}

check_result check_durable_linearizability_per_object(
    const std::vector<event>& events, const object_spec_list& specs,
    std::size_t node_budget, lin_memo* memo) {
  check_options opt;
  opt.node_budget = node_budget;
  opt.memo = memo;
  return check_durable_linearizability_per_object(events, specs, opt);
}

}  // namespace detect::hist
