// Implementation of the detect::api façade: the built-in kind registry and
// the harness/arena wiring.
#include "api/api.hpp"

#include <algorithm>
#include <tuple>

#include "baselines/attiya_register.hpp"
#include "baselines/bendavid_cas.hpp"
#include "baselines/plain.hpp"
#include "baselines/stripped.hpp"
#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/max_register.hpp"
#include "core/nrl.hpp"
#include "core/queue.hpp"
#include "core/rlock.hpp"
#include "core/rmw.hpp"
#include "core/stack.hpp"

namespace detect::api {

namespace {

template <typename Obj, typename... Args>
created_object one(Args&&... args) {
  created_object c;
  c.owned.push_back(std::make_unique<Obj>(std::forward<Args>(args)...));
  return c;
}

std::unique_ptr<hist::spec> reg_spec(const object_params& p) {
  return std::make_unique<hist::register_spec>(p.init);
}

/// Wrap the primary of `inner` in base::stripped (auxiliary state withheld —
/// the Theorem-2 counterexample regime). The inner object rides along in the
/// ownership vector.
created_object strip(created_object inner) {
  inner.owned.push_back(std::make_unique<base::stripped>(inner.primary()));
  return inner;
}

}  // namespace

object_registry::object_registry() {
  auto make_reg = [](const object_env& e, const object_params& p) {
    return one<core::detectable_register>(e.nprocs, e.board, p.init, e.domain);
  };
  auto make_cas = [](const object_env& e, const object_params& p) {
    return one<core::detectable_cas>(e.nprocs, e.board, p.init, e.domain);
  };
  auto make_counter = [](const object_env& e, const object_params& p) {
    return one<core::detectable_counter>(e.nprocs, e.board, p.init, e.domain);
  };
  auto make_swap = [](const object_env& e, const object_params& p) {
    return one<core::detectable_swap>(e.nprocs, e.board, p.init, e.domain);
  };
  auto make_tas = [](const object_env& e, const object_params&) {
    return one<core::detectable_tas>(e.nprocs, e.board, e.domain);
  };
  auto make_queue = [](const object_env& e, const object_params& p) {
    return one<core::detectable_queue>(e.nprocs, e.board, p.capacity, e.domain);
  };
  auto make_stack = [](const object_env& e, const object_params& p) {
    return one<core::detectable_stack>(e.nprocs, e.board, p.capacity, e.domain);
  };

  // ---- core algorithms -----------------------------------------------------
  add({"reg", op_family::reg, true, make_reg, reg_spec});
  add({"cas", op_family::cas, true, make_cas, [](const object_params& p) {
         return std::make_unique<hist::cas_spec>(p.init);
       }});
  add({"counter", op_family::counter, true, make_counter,
       [](const object_params& p) {
         return std::make_unique<hist::counter_spec>(p.init);
       }});
  add({"swap", op_family::swap, true, make_swap, reg_spec});
  add({"tas", op_family::tas, true, make_tas, [](const object_params&) {
         return std::make_unique<hist::tas_spec>();
       }});
  add({"queue", op_family::queue, true, make_queue, [](const object_params&) {
         return std::make_unique<hist::queue_spec>();
       }});
  add({"stack", op_family::stack, true, make_stack, [](const object_params&) {
         return std::make_unique<hist::stack_spec>();
       }});
  add({"max_reg", op_family::max_reg, true,
       [](const object_env& e, const object_params&) {
         return one<core::max_register>(e.nprocs, e.board, e.domain);
       },
       [](const object_params&) {
         return std::make_unique<hist::max_register_spec>(0);
       }});
  add({"lock", op_family::lock, true,
       [](const object_env& e, const object_params&) {
         return one<core::recoverable_lock>(e.nprocs, e.board, e.domain);
       },
       [](const object_params&) { return std::make_unique<hist::lock_spec>(); }});
  add({"nrl_reg", op_family::reg, true,
       [make_reg](const object_env& e, const object_params& p) {
         created_object c = make_reg(e, p);
         c.owned.push_back(
             std::make_unique<core::nrl_adapter>(c.primary(), e.board));
         return c;
       },
       reg_spec});

  // ---- unbounded-identifier baselines --------------------------------------
  add({"attiya_reg", op_family::reg, true,
       [](const object_env& e, const object_params& p) {
         return one<base::attiya_register>(e.nprocs, e.board, p.init, e.domain);
       },
       reg_spec});
  add({"bendavid_cas", op_family::cas, true,
       [](const object_env& e, const object_params& p) {
         return one<base::bendavid_cas>(e.nprocs, e.board, p.init, e.domain);
       },
       [](const object_params& p) {
         return std::make_unique<hist::cas_spec>(p.init);
       }});

  // ---- non-detectable baselines --------------------------------------------
  add({"plain_reg", op_family::reg, false,
       [](const object_env& e, const object_params& p) {
         return one<base::plain_register>(p.init, e.domain);
       },
       reg_spec});
  add({"plain_cas", op_family::cas, false,
       [](const object_env& e, const object_params& p) {
         return one<base::plain_cas>(p.init, e.domain);
       },
       [](const object_params& p) {
         return std::make_unique<hist::cas_spec>(p.init);
       }});
  add({"plain_counter", op_family::counter, false,
       [](const object_env& e, const object_params& p) {
         return one<base::plain_counter>(p.init, e.domain);
       },
       [](const object_params& p) {
         return std::make_unique<hist::counter_spec>(p.init);
       }});

  // ---- stripped Theorem-2 counterexamples ----------------------------------
  const char* stripped_of[][2] = {
      {"stripped_reg", "reg"},         {"stripped_cas", "cas"},
      {"stripped_counter", "counter"}, {"stripped_swap", "swap"},
      {"stripped_tas", "tas"},         {"stripped_queue", "queue"},
      {"stripped_stack", "stack"},
  };
  for (const auto& [name, inner] : stripped_of) {
    const kind_info& base_kind = at(inner);
    add({name, base_kind.family, false,
         [make_inner = base_kind.make](const object_env& e,
                                       const object_params& p) {
           return strip(make_inner(e, p));
         },
         base_kind.make_spec});
  }
}

object_registry& object_registry::global() {
  static object_registry r;
  return r;
}

void object_registry::add(kind_info info) {
  auto [it, inserted] = kinds_.emplace(info.name, std::move(info));
  if (!inserted) {
    throw std::invalid_argument("object_registry: duplicate kind '" +
                                it->first + "'");
  }
}

bool object_registry::contains(const std::string& kind) const {
  return kinds_.count(kind) != 0;
}

const kind_info& object_registry::at(const std::string& kind) const {
  auto it = kinds_.find(kind);
  if (it == kinds_.end()) {
    throw std::invalid_argument("object_registry: unknown kind '" + kind + "'");
  }
  return it->second;
}

std::vector<std::string> object_registry::kinds() const {
  std::vector<std::string> names;
  names.reserve(kinds_.size());
  for (const auto& [name, info] : kinds_) names.push_back(name);
  return names;  // std::map iterates sorted
}

created_object object_registry::create(const std::string& kind,
                                       const object_env& env,
                                       const object_params& params) const {
  return at(kind).make(env, params);
}

std::unique_ptr<hist::spec> object_registry::make_spec(
    const std::string& kind, const object_params& params) const {
  return at(kind).make_spec(params);
}

std::vector<hist::op_desc> smoke_script(op_family family,
                                        std::uint32_t object_id, int pid) {
  auto op = [object_id](hist::opcode c, value_t a = 0,
                        value_t b = 0) -> hist::op_desc {
    return {object_id, c, a, b, 0};
  };
  using hist::opcode;
  switch (family) {
    case op_family::reg:
      return {op(opcode::reg_write, 5), op(opcode::reg_read),
              op(opcode::reg_write, 7), op(opcode::reg_read)};
    case op_family::swap:
      return {op(opcode::swap, 5), op(opcode::swap, 9), op(opcode::reg_read)};
    case op_family::cas:
      return {op(opcode::cas, 0, 1), op(opcode::cas, 0, 2),
              op(opcode::cas, 1, 2), op(opcode::cas_read)};
    case op_family::counter:
      return {op(opcode::ctr_add, 1), op(opcode::ctr_add, 2),
              op(opcode::ctr_read)};
    case op_family::tas:
      return {op(opcode::tas_set), op(opcode::tas_set), op(opcode::tas_reset),
              op(opcode::tas_set)};
    case op_family::queue:
      return {op(opcode::enq, 1), op(opcode::enq, 2), op(opcode::deq),
              op(opcode::deq), op(opcode::deq)};
    case op_family::stack:
      return {op(opcode::push, 1), op(opcode::push, 2), op(opcode::pop),
              op(opcode::pop), op(opcode::pop)};
    case op_family::max_reg:
      return {op(opcode::max_write, 5), op(opcode::max_read),
              op(opcode::max_write, 3), op(opcode::max_read)};
    case op_family::lock:
      return {op(opcode::lock_try, pid), op(opcode::lock_release, pid),
              op(opcode::lock_release, pid), op(opcode::lock_try, pid)};
  }
  throw std::logic_error("smoke_script: unhandled family");
}

// ---------------------------------------------------------------------------
// harness

harness::harness(int nprocs, sim::world_config wcfg,
                 core::runtime::fail_policy policy, bool shared_cache,
                 bool auto_persist, nvm::persist_model persist, run_config rcfg)
    : world_(std::make_unique<sim::world>(nprocs, wcfg)),
      rcfg_(std::move(rcfg)) {
  if (shared_cache) {
    world_->domain().set_model(nvm::cache_model::shared_cache);
    world_->domain().set_auto_persist(auto_persist);
  }
  world_->domain().set_persist_model(persist);
  board_ = std::make_unique<core::announcement_board>(nprocs, world_->domain());
  log_ = std::make_unique<hist::log>();
  rt_ = std::make_unique<core::runtime>(*world_, *log_, *board_);
  rt_->set_fail_policy(policy);
}

object_handle harness::add(const std::string& kind,
                           const object_params& params) {
  return add_as(next_id_, kind, params);
}

object_handle harness::add_as(std::uint32_t id, const std::string& kind,
                              const object_params& params) {
  const kind_info& info = object_registry::global().at(kind);
  object_env env{nprocs(), *board_, domain()};
  hosted_object hosted{kind, params, {}, {}};
  created_object created = [&] {
    // Record which cells construction attaches: that cell group, in attach
    // order, is the object's migratable NVM representation.
    nvm::attach_recording rec(domain(), hosted.cells);
    return info.make(env, params);
  }();
  core::detectable_object& primary = created.primary();
  hosted.owned = std::move(created.owned);
  rt_->register_object(id, primary);
  hosted_.emplace(id, std::move(hosted));
  next_id_ = std::max(next_id_, id + 1);
  specs_.emplace_back(id, info.make_spec(params));
  return object_handle(id, info.family, &primary, kind);
}

std::string harness::migration_blocker(std::uint32_t id) {
  if (hosted_.count(id) == 0) {
    return "harness: object " + std::to_string(id) +
           " is not a migratable object of this world";
  }
  // A valid announcement naming this object with an unfinished operation
  // means a crash struck mid-op and recovery has not run yet; migrating now
  // would strand that recovery (the source runtime no longer knows the id).
  for (int p = 0; p < nprocs(); ++p) {
    const core::ann_fields& ann = board_->of(p);
    const hist::op_desc desc = ann.op.peek();
    if (ann.valid.peek() != 0 && desc.object == id &&
        desc.client_seq > ann.done_seq.peek()) {
      return "harness: object " + std::to_string(id) +
             " has an announced, unrecovered operation of process " +
             std::to_string(p) + "; run recovery to completion before migrating";
    }
  }
  return {};
}

nvm::pmem_image harness::extract_object(std::uint32_t id) {
  const std::string blocker = migration_blocker(id);
  if (!blocker.empty()) throw std::invalid_argument(blocker);
  auto it = hosted_.find(id);
  nvm::pmem_image image = nvm::save_image(it->second.cells);
  rt_->unregister_object(id);
  std::erase_if(specs_, [id](const auto& s) { return s.first == id; });
  hosted_.erase(it);  // destroys the object; its cells detach from the domain
  return image;
}

object_handle harness::adopt_object(std::uint32_t id, const std::string& kind,
                                    const object_params& params,
                                    const nvm::pmem_image& image) {
  object_handle handle = add_as(id, kind, params);
  try {
    nvm::load_image(hosted_.at(id).cells, image);
  } catch (const std::invalid_argument& e) {
    // Unwind the half-adoption so the harness stays consistent.
    rt_->unregister_object(id);
    std::erase_if(specs_, [id](const auto& s) { return s.first == id; });
    hosted_.erase(id);
    throw std::invalid_argument("harness: cannot adopt object " +
                                std::to_string(id) + " as '" + kind +
                                "': " + e.what());
  }
  return handle;
}

object_handle harness::add_object(std::unique_ptr<core::detectable_object> obj,
                                  std::unique_ptr<hist::spec> spec,
                                  op_family family, std::string kind) {
  core::detectable_object& primary = *obj;
  objects_.push_back(std::move(obj));
  std::uint32_t id = rt_->register_object(next_id_++, primary);
  specs_.emplace_back(id, std::move(spec));
  return object_handle(id, family, &primary, std::move(kind));
}

sim::run_report harness::run() {
  prepare_run();

  std::unique_ptr<sim::scheduler> sched =
      sched::make_scheduler(rcfg_.sched, rcfg_.sched_seed);
  std::unique_ptr<sim::crash_plan> crashes;
  if (!rcfg_.crash_steps.empty()) {
    crashes = std::make_unique<sim::crash_at_steps>(rcfg_.crash_steps);
  } else if (rcfg_.crash_random) {
    auto [seed, rate, max] = *rcfg_.crash_random;
    crashes = std::make_unique<sim::random_crashes>(seed, rate, max);
  }
  return rt_->run(*sched, crashes.get());
}

void harness::reseed_crashes(std::uint64_t seed) {
  if (rcfg_.crash_random) std::get<0>(*rcfg_.crash_random) = seed;
}

std::unique_ptr<hist::spec> harness::spec() const {
  auto m = std::make_unique<hist::multi_spec>();
  for (const auto& [id, proto] : specs_) m->add_object(id, proto->clone());
  return m;
}

void harness::submit_op(int pid, hist::op_desc desc, std::uint64_t client_seq) {
  desc.client_seq = client_seq;
  world_->submit(pid, [rt = rt_.get(), pid, desc] {
    rt->announce_and_invoke(pid, desc);
  });
}

void harness::crash_now() {
  world_->crash();
  hist::event e;
  e.kind = hist::event_kind::crash;
  log_->append(e);
}

void harness::drive(int pid) {
  for (;;) {
    std::vector<int> ready = world_->runnable();
    if (std::find(ready.begin(), ready.end(), pid) == ready.end()) return;
    world_->step(pid);
  }
}

void harness::drive_all() {
  for (;;) {
    std::vector<int> ready = world_->runnable();
    if (ready.empty()) return;
    world_->step(ready.front());
  }
}

// ---------------------------------------------------------------------------
// arena

object_handle arena::add(const std::string& kind, const object_params& params) {
  const kind_info& info = object_registry::global().at(kind);
  object_env env{nprocs_, board_, dom_};
  created_object created = info.make(env, params);
  core::detectable_object& primary = created.primary();
  for (auto& obj : created.owned) objects_.push_back(std::move(obj));
  return object_handle(next_id_++, info.family, &primary, kind);
}

}  // namespace detect::api
