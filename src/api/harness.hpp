// detect::api::harness — the front door of the repo.
//
// One object that owns and wires the four pieces every scenario needs —
// sim::world, core::announcement_board, hist::log, core::runtime — behind a
// fluent builder:
//
//   auto h = api::harness::builder()
//                .procs(3)
//                .fail_policy(core::runtime::fail_policy::retry)
//                .seed(42)
//                .crash_at({12, 31})
//                .build();
//   auto r = h.add_reg();
//   auto q = h.add_queue();
//   h.script(0, {r.write(1), q.enq(7)});
//   h.script(1, {q.deq(), r.read()});
//   auto report = h.run();
//   auto check = h.check();   // durable linearizability + detectability
//
// Objects are created through typed adders (or by registry kind string),
// registered with the runtime under fresh ids, and paired with their
// sequential specs so `check()` can assemble the product spec automatically.
//
// For proof-schedule harnesses (the Theorem-2 style "run p until it is about
// to return" drivers) the underlying world/board/log/runtime stay reachable
// through accessors, and submit_op / drive / crash_now wrap the recurring
// manual-driving boilerplate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "core/runtime.hpp"
#include "history/checker.hpp"
#include "sched/strategy.hpp"

namespace detect::api {

class harness {
 public:
  class builder;

  // ---- object creation -----------------------------------------------------

  /// Instantiate a registry kind and register it under a fresh id.
  object_handle add(const std::string& kind, const object_params& params = {});

  /// Same, under a caller-chosen id (fresh per the runtime's duplicate
  /// check). Sharded executors route globally-unique ids into per-shard
  /// harnesses with this.
  object_handle add_as(std::uint32_t id, const std::string& kind,
                       const object_params& params = {});

  reg add_reg(value_t init = 0) { return reg(add("reg", {.init = init})); }
  cas add_cas(value_t init = 0) { return cas(add("cas", {.init = init})); }
  counter add_counter(value_t init = 0) {
    return counter(add("counter", {.init = init}));
  }
  swap_reg add_swap(value_t init = 0) {
    return swap_reg(add("swap", {.init = init}));
  }
  tas add_tas() { return tas(add("tas")); }
  queue add_queue(std::size_t capacity = 64) {
    return queue(add("queue", {.capacity = capacity}));
  }
  stack add_stack(std::size_t capacity = 64) {
    return stack(add("stack", {.capacity = capacity}));
  }
  max_reg add_max_reg() { return max_reg(add("max_reg")); }
  lock add_lock() { return lock(add("lock")); }

  /// Register an externally constructed object under a fresh id, pairing it
  /// with `spec` for checking. The harness takes ownership.
  object_handle add_object(std::unique_ptr<core::detectable_object> obj,
                           std::unique_ptr<hist::spec> spec, op_family family,
                           std::string kind = "custom");

  // ---- object migration (executor-level shard rebalancing) ------------------

  /// Is `id` a registry-created object this harness hosts? (add_object
  /// customs are not migratable: the harness does not know how to rebuild
  /// them elsewhere.)
  bool has_object(std::uint32_t id) const { return hosted_.count(id) != 0; }

  /// The extract_object() preconditions, checked without extracting: empty
  /// when `id` can migrate away right now, else the error message
  /// extract_object() would throw. Lets callers validate a whole migration
  /// plan before moving anything.
  std::string migration_blocker(std::uint32_t id);

  /// Tear `id` out of this harness: unregister it from the runtime, drop its
  /// spec, destroy the object, and return the NVM image of every cell it
  /// attached during construction — the portable representation
  /// adopt_object() rebuilds from. Throws std::invalid_argument when `id` is
  /// not a migratable object of this harness, or when some process has an
  /// announced-but-unrecovered operation on it (migrating mid-recovery would
  /// strand the announcement).
  nvm::pmem_image extract_object(std::uint32_t id);

  /// Inverse of extract_object(): instantiate `kind` under `id` as add_as()
  /// would, then overwrite its freshly-initialized cells with `image`.
  /// Throws std::invalid_argument when the image does not match the layout
  /// `kind`/`params` construct (migration requires identical declarations).
  object_handle adopt_object(std::uint32_t id, const std::string& kind,
                             const object_params& params,
                             const nvm::pmem_image& image);

  // ---- scripting & running -------------------------------------------------

  void script(int pid, std::vector<hist::op_desc> ops) {
    rt_->set_script(pid, std::move(ops));
  }

  void set_fail_policy(core::runtime::fail_policy p) { rt_->set_fail_policy(p); }

  /// Drive all scripts to completion under the builder-configured scheduler
  /// and crash plan (fresh instances per call, so runs are reproducible).
  sim::run_report run();

  /// Replace the random crash plan's seed for subsequent run() calls (no-op
  /// without a crash_random plan). run() rebuilds the plan from the same
  /// seed each call, so without this every round of a multi-round driver
  /// crashes at identical draw positions; round-based services reseed
  /// deterministically per round to vary the crash points.
  void reseed_crashes(std::uint64_t seed);

  /// Same, under caller-supplied policies.
  sim::run_report run(sim::scheduler& sched, sim::crash_plan* crashes = nullptr) {
    prepare_run();
    return rt_->run(sched, crashes);
  }

  // ---- verification --------------------------------------------------------

  /// Product spec of every object added so far (clones of the stored
  /// prototypes — call as often as needed).
  std::unique_ptr<hist::spec> spec() const;

  /// Check the recorded history for durable linearizability + detectability
  /// against the assembled spec.
  hist::check_result check() const {
    return hist::check_durable_linearizability(log_->snapshot(), *spec());
  }

  /// Same verdict via per-object decomposition: one linearization per added
  /// object instead of one product-spec search — exponentially cheaper on
  /// multi-object histories (see hist::checker). Budget, shared memo, and
  /// the per-object fan-out all ride in one hist::check_options.
  hist::check_result check_per_object(const hist::check_options& opt = {}) const {
    return hist::check_durable_linearizability_per_object(
        log_->snapshot(), object_specs(), opt);
  }

  /// Deprecated pre-check_options form (thin shim; prefer the overload
  /// above).
  hist::check_result check_per_object(std::size_t node_budget,
                                      hist::lin_memo* memo = nullptr) const {
    hist::check_options opt;
    opt.node_budget = node_budget;
    opt.memo = memo;
    return check_per_object(opt);
  }

  /// (id, spec) of every object added so far; specs stay owned by the
  /// harness.
  hist::object_spec_list object_specs() const {
    hist::object_spec_list out;
    for (const auto& [id, proto] : specs_) out.emplace_back(id, proto.get());
    return out;
  }

  std::vector<hist::event> events() const { return log_->snapshot(); }
  std::string log_text() const { return log_->to_string(); }

  // ---- manual-driving helpers (proof-schedule harnesses) --------------------

  /// Submit a single announce-and-invoke task for `pid` (outside scripts).
  void submit_op(int pid, hist::op_desc desc, std::uint64_t client_seq);

  /// Submit a recovery task for `pid` (Op.Recover per its announcement).
  void submit_recovery(int pid) {
    world_->submit(pid, [rt = rt_.get(), pid] { rt->maybe_recover(pid); });
  }

  /// Deliver a system-wide crash and record it in the history log.
  void crash_now();

  /// Step `pid` while it is runnable.
  void drive(int pid);

  /// Step any runnable process (lowest pid first) until none remain.
  void drive_all();

  /// Mark every cell's current value as persisted (shared-cache setups call
  /// this once the initial objects are in place).
  void persist_all() { domain().persist_all(); }

  // ---- wired components ----------------------------------------------------

  int nprocs() const noexcept { return world_->nprocs(); }
  sim::world& world() noexcept { return *world_; }
  core::announcement_board& board() noexcept { return *board_; }
  hist::log& log() noexcept { return *log_; }
  core::runtime& runtime() noexcept { return *rt_; }
  nvm::pmem_domain& domain() noexcept { return world_->domain(); }

 private:
  struct run_config {
    std::optional<std::uint64_t> sched_seed;  // nullopt → round robin
    sched::sched_policy sched;                // strategy the seed drives
    std::vector<std::uint64_t> crash_steps;
    std::optional<std::tuple<std::uint64_t, double, std::uint64_t>> crash_random;
  };

  harness(int nprocs, sim::world_config wcfg, core::runtime::fail_policy policy,
          bool shared_cache, bool auto_persist, nvm::persist_model persist,
          run_config rcfg);

  // Shared-cache and buffered-persistency setups start from a fully
  // persisted image (the objects' initialization stores are not part of the
  // measured execution).
  void prepare_run() {
    if (domain().model() == nvm::cache_model::shared_cache ||
        domain().buffered()) {
      persist_all();
    }
  }

  /// One registry-created object: everything needed to check it, migrate it
  /// away (kind/params rebuild the layout, `cells` is the NVM state in
  /// attach order), and destroy it.
  struct hosted_object {
    std::string kind;
    object_params params;
    std::vector<std::unique_ptr<core::detectable_object>> owned;
    std::vector<nvm::persistent_base*> cells;
  };

  std::unique_ptr<sim::world> world_;
  std::unique_ptr<core::announcement_board> board_;
  std::unique_ptr<hist::log> log_;
  std::unique_ptr<core::runtime> rt_;
  std::vector<std::unique_ptr<core::detectable_object>> objects_;
  std::map<std::uint32_t, hosted_object> hosted_;
  std::vector<std::pair<std::uint32_t, std::unique_ptr<hist::spec>>> specs_;
  std::uint32_t next_id_ = 0;
  run_config rcfg_;
};

class harness::builder {
 public:
  builder& procs(int n) {
    nprocs_ = n;
    return *this;
  }
  builder& max_steps(std::uint64_t n) {
    wcfg_.max_steps = n;
    return *this;
  }
  /// Wholesale world_config (max_steps, engine, visibility, drain points) —
  /// how the executor layer forwards its assembled config per shard.
  builder& world(sim::world_config w) {
    wcfg_ = std::move(w);
    return *this;
  }
  builder& fail_policy(core::runtime::fail_policy p) {
    policy_ = p;
    return *this;
  }
  /// Seeded random scheduler for run(); default is round robin.
  builder& seed(std::uint64_t s) {
    rcfg_.sched_seed = s;
    return *this;
  }
  /// Schedule-exploration strategy the seed drives (see detect::sched).
  /// Default: uniform_random, i.e. the historical seeded behavior.
  builder& schedule(sched::sched_policy p) {
    rcfg_.sched = std::move(p);
    return *this;
  }
  /// Persistency-visibility model (see nvm::persist_model). Default strict.
  builder& persist(nvm::persist_model m) {
    persist_ = m;
    return *this;
  }
  /// Store-buffer visibility model between live processes (see
  /// wmm::visibility_model). Default sc — the historical interleaving
  /// semantics. Orthogonal to persist(): drains order before persists.
  builder& visibility(wmm::visibility_model m) {
    wcfg_.visibility = m;
    return *this;
  }
  /// Scripted full-drain steps (tso/pso only; see world_config::drain_points).
  builder& drain_at(std::vector<std::uint64_t> steps) {
    wcfg_.drain_points = std::move(steps);
    return *this;
  }
  /// Crash exactly when the global step counter hits each listed value.
  builder& crash_at(std::vector<std::uint64_t> steps) {
    rcfg_.crash_steps = std::move(steps);
    return *this;
  }
  /// Crash with probability `rate` before each step, at most `max` times.
  builder& crash_random(std::uint64_t s, double rate, std::uint64_t max) {
    rcfg_.crash_random = {s, rate, max};
    return *this;
  }
  /// Shared-cache memory model; `auto_persist` applies the §6 syntactic
  /// flush/fence transformation to every shared access.
  builder& shared_cache(bool auto_persist = true) {
    shared_cache_ = true;
    auto_persist_ = auto_persist;
    return *this;
  }

  harness build() {
    return harness(nprocs_, wcfg_, policy_, shared_cache_, auto_persist_,
                   persist_, rcfg_);
  }

 private:
  int nprocs_ = 2;
  sim::world_config wcfg_;
  core::runtime::fail_policy policy_ = core::runtime::fail_policy::skip;
  bool shared_cache_ = false;
  bool auto_persist_ = false;
  nvm::persist_model persist_ = nvm::persist_model::strict;
  run_config rcfg_;
};

/// Free-running façade for real-thread benchmarks: the emulated NVM domain
/// and announcement board without a simulated world. Objects still come from
/// the registry; `reset_aux` performs the caller-side auxiliary reset the
/// client runtime would do (skipped for objects that declare they need none).
class arena {
 public:
  explicit arena(int nprocs) : nprocs_(nprocs), board_(nprocs, dom_) {}

  object_handle add(const std::string& kind, const object_params& params = {});

  /// Ann_p.resp := ⊥, Ann_p.CP := 0 — Definition 1's auxiliary state,
  /// provided by the caller before each invocation.
  void reset_aux(int pid) {
    board_.of(pid).resp.store(hist::k_bottom);
    board_.of(pid).cp.store(0);
  }

  int nprocs() const noexcept { return nprocs_; }
  nvm::pmem_domain& domain() noexcept { return dom_; }
  core::announcement_board& board() noexcept { return board_; }

 private:
  int nprocs_;
  nvm::pmem_domain dom_;
  core::announcement_board board_;
  std::vector<std::unique_ptr<core::detectable_object>> objects_;
  std::uint32_t next_id_ = 0;
};

}  // namespace detect::api
