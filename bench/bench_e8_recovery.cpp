// E8 — Crash-recovery behaviour under increasing crash rates.
//
// For each crash rate, run mixed workloads over Algorithms 1-3 + the queue,
// with every run verified for durable linearizability + detectability, and
// report: completed operations, crashes survived, recovery verdicts
// (linearized vs fail), and verification outcome. This is the "system" view
// of detectability: after every crash each client knows exactly whether its
// interrupted operation took effect.
#include "bench_util.hpp"
#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/queue.hpp"
#include "core/runtime.hpp"
#include "history/checker.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

namespace {

using namespace detect;

struct outcome {
  std::uint64_t completed_ops = 0;
  std::uint64_t crashes = 0;
  std::uint64_t verdict_linearized = 0;
  std::uint64_t verdict_fail = 0;
  int runs_checked = 0;
  int runs_ok = 0;
};

outcome sweep(double crash_rate, int seeds) {
  outcome out;
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::world w(3, {.max_steps = 1'000'000});
    core::announcement_board board(3, w.domain());
    hist::log lg;
    core::runtime rt(w, lg, board);
    core::detectable_register reg(3, board, 0, w.domain());
    core::detectable_cas cas(3, board, 0, w.domain());
    core::detectable_queue q(3, board, 64, w.domain());
    rt.register_object(0, reg);
    rt.register_object(1, cas);
    rt.register_object(2, q);
    rt.set_fail_policy(core::runtime::fail_policy::retry);
    rt.set_script(0, {{0, hist::opcode::reg_write, 1, 0, 0},
                      {1, hist::opcode::cas, 0, 1, 0},
                      {2, hist::opcode::enq, 7, 0, 0},
                      {0, hist::opcode::reg_read, 0, 0, 0}});
    rt.set_script(1, {{2, hist::opcode::enq, 9, 0, 0},
                      {1, hist::opcode::cas, 1, 2, 0},
                      {2, hist::opcode::deq, 0, 0, 0},
                      {0, hist::opcode::reg_write, 5, 0, 0}});
    rt.set_script(2, {{0, hist::opcode::reg_read, 0, 0, 0},
                      {2, hist::opcode::deq, 0, 0, 0},
                      {1, hist::opcode::cas_read, 0, 0, 0},
                      {2, hist::opcode::enq, 3, 0, 0}});
    sim::random_scheduler sched(static_cast<std::uint64_t>(seed) * 48271u);
    sim::random_crashes crashes(static_cast<std::uint64_t>(seed) * 16807u,
                                crash_rate, 10);
    auto rep = rt.run(sched, &crashes);
    out.crashes += rep.crashes;
    for (const auto& e : lg.snapshot()) {
      if (e.kind == hist::event_kind::response) ++out.completed_ops;
      if (e.kind == hist::event_kind::recover_result) {
        if (e.verdict == hist::recovery_verdict::linearized) {
          ++out.verdict_linearized;
        } else {
          ++out.verdict_fail;
        }
      }
    }
    hist::multi_spec spec;
    spec.add_object(0, std::make_unique<hist::register_spec>(0));
    spec.add_object(1, std::make_unique<hist::cas_spec>(0));
    spec.add_object(2, std::make_unique<hist::queue_spec>());
    auto cr = hist::check_durable_linearizability(lg.snapshot(), spec);
    ++out.runs_checked;
    if (cr.ok) ++out.runs_ok;
  }
  return out;
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::row;
  using bench::rule;

  std::printf(
      "E8 — Recovery behaviour vs crash rate (3 procs x 4 mixed ops, retry\n"
      "policy, 40 seeds per rate; every run checked for durable\n"
      "linearizability + detectability)\n\n");
  row({"crash rate", "crashes", "resp ops", "rec:linear", "rec:fail",
       "verified"});
  rule(6);
  for (double rate : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    outcome o = sweep(rate, 40);
    row({fmt(rate, 3), bench::fmt_u(o.crashes), bench::fmt_u(o.completed_ops),
         bench::fmt_u(o.verdict_linearized), bench::fmt_u(o.verdict_fail),
         std::to_string(o.runs_ok) + "/" + std::to_string(o.runs_checked)});
  }
  std::printf(
      "\nShape check: every run verifies at every crash rate; as the rate\n"
      "grows, recovery verdicts (both kinds) grow while directly-completed\n"
      "responses shrink — yet no operation is ever lost or duplicated.\n");
  return 0;
}
