// Detectable durable FIFO queue (Friedman-style op identifiers).
#include <gtest/gtest.h>

#include "core/queue.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario_config queue_scenario(int nprocs,
                               std::map<int, std::vector<hist::op_desc>> scripts,
                               core::runtime::fail_policy policy =
                                   core::runtime::fail_policy::skip) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.policy = policy;
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_queue>(nprocs, f.board, 64,
                                                            f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::queue_spec()); };
  return cfg;
}

TEST(detectable_queue, sequential_fifo) {
  auto cfg = queue_scenario(
      1, {{0, {op_enq(1), op_enq(2), op_deq(), op_deq(), op_deq()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_queue, empty_dequeue_returns_empty) {
  auto cfg = queue_scenario(1, {{0, {op_deq(), op_enq(9), op_deq(), op_deq()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_queue, concurrent_producers_consumers) {
  auto cfg = queue_scenario(4, {
                                   {0, {op_enq(1), op_enq(2)}},
                                   {1, {op_enq(10), op_enq(20)}},
                                   {2, {op_deq(), op_deq()}},
                                   {3, {op_deq(), op_deq()}},
                               });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_queue, crash_sweep_enq) {
  auto cfg = queue_scenario(2, {
                                   {0, {op_enq(1), op_enq(2)}},
                                   {1, {op_deq()}},
                               });
  crash_sweep(cfg, 3);
}

TEST(detectable_queue, crash_sweep_deq) {
  auto cfg = queue_scenario(2, {
                                   {0, {op_enq(1), op_deq()}},
                                   {1, {op_deq()}},
                               });
  crash_sweep(cfg, 7);
}

TEST(detectable_queue, crash_sweep_retry) {
  auto cfg = queue_scenario(2,
                            {
                                {0, {op_enq(1), op_deq()}},
                                {1, {op_enq(2), op_deq()}},
                            },
                            core::runtime::fail_policy::retry);
  crash_sweep(cfg, 13);
}

TEST(detectable_queue, crash_fuzz_mixed) {
  auto cfg = queue_scenario(3, {
                                   {0, {op_enq(1), op_enq(2)}},
                                   {1, {op_deq(), op_enq(3)}},
                                   {2, {op_deq(), op_deq()}},
                               });
  crash_fuzz(cfg, 120, 2);
}

TEST(detectable_queue, exactly_once_dequeue_under_retry_fuzz) {
  // Every enqueued value must be dequeued at most once even across crashes
  // and retries — enforced by the FIFO spec check.
  auto cfg = queue_scenario(2,
                            {
                                {0, {op_enq(1), op_enq(2), op_deq()}},
                                {1, {op_deq(), op_deq()}},
                            },
                            core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 100, 2);
}

TEST(detectable_queue, ids_minted_grows_with_operations) {
  sim_fixture f(2);
  core::detectable_queue q(2, f.board, 64, f.w.domain());
  f.rt.register_object(0, q);
  f.rt.set_script(0, {op_enq(1), op_enq(2), op_enq(3)});
  f.rt.set_script(1, {op_deq(), op_deq()});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  EXPECT_GE(q.ids_minted(), 3u)
      << "identifier space must grow with the number of operations";
}

TEST(detectable_queue, pool_capacity_respected) {
  sim_fixture f(1);
  core::detectable_queue q(1, f.board, 2, f.w.domain());
  f.rt.register_object(0, q);
  f.rt.set_script(0, {op_enq(1), op_enq(2), op_enq(3)});  // 3rd exceeds pool
  sim::round_robin_scheduler rr;
  EXPECT_THROW(f.rt.run(rr), std::runtime_error);
}

class queue_property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(queue_property, fifo_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = queue_scenario(2, {
                                   {0, {op_enq(1), op_deq()}},
                                   {1, {op_enq(2), op_deq()}},
                               });
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 67867967);
}

INSTANTIATE_TEST_SUITE_P(sweep, queue_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
