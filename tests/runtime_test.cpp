// Client-runtime behaviour (announcement protocol, fail policies, resumption)
// and simulator API contracts.
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

// ---- client runtime over the façade -----------------------------------------

TEST(runtime, skip_policy_gives_up_and_continues) {
  // Crash p0's first write before its checkpoint; with skip policy the op is
  // declared failed and the client moves on to the second op.
  auto cfg = one_object<api::reg>("reg", 1, [](api::reg r) {
    return scripts{{0, {r.write(1), r.write(2)}}};
  });
  cfg.nprocs = 1;
  bool saw_fail_and_continue = false;
  run_outcome base = run_scenario(cfg, 1);
  for (std::uint64_t k = 0; k < base.report.steps; ++k) {
    run_outcome out = run_scenario(cfg, 1, {k});
    ASSERT_TRUE(out.check.ok) << out.check.message;
    bool fail_seen = out.log_text.find("FAIL") != std::string::npos;
    bool second_op = out.log_text.find("reg_write(2)") != std::string::npos;
    if (fail_seen && second_op) saw_fail_and_continue = true;
  }
  EXPECT_TRUE(saw_fail_and_continue)
      << "some crash placement must produce a fail verdict followed by the "
         "next scripted op";
}

TEST(runtime, retry_policy_reinvokes_until_done) {
  auto cfg = one_object<api::reg>(
      "reg", 1,
      [](api::reg r) { return scripts{{0, {r.write(7)}}}; },
      core::runtime::fail_policy::retry);
  run_outcome base = run_scenario(cfg, 1);
  for (std::uint64_t k = 0; k < base.report.steps; ++k) {
    run_outcome out = run_scenario(cfg, 1, {k});
    ASSERT_TRUE(out.check.ok) << out.check.message;
    // With retry, the write is linearized exactly once in every outcome:
    // the log's last register state must be 7. Verify via a fresh replay of
    // the checker witness: simply assert some response/verdict closed the op.
    bool closed = out.log_text.find("-> 0") != std::string::npos ||
                  out.log_text.find("verdict") != std::string::npos;
    EXPECT_TRUE(closed) << out.log_text;
  }
}

TEST(runtime, no_aux_object_keeps_announcement_raw) {
  // For wants_aux_reset()==false objects the runtime must not touch
  // Ann_p.resp / Ann_p.CP — the stale values from the previous op survive.
  auto h = api::harness::builder().procs(1).build();
  api::reg r(h.add("stripped_reg"));
  h.script(0, {r.write(1), r.write(2)});
  h.run();
  // After the final write, resp holds ack from the op itself (the object
  // persists it); the point is the runtime never wrote k_bottom in between —
  // observable as cp remaining at 2 from the op, never reset to 0.
  EXPECT_EQ(h.board().of(0).cp.peek(), 2);
  EXPECT_EQ(h.board().of(0).resp.peek(), hist::k_ack);
}

TEST(runtime, aux_object_gets_reset_each_invocation) {
  auto h = api::harness::builder().procs(1).build();
  api::reg r = h.add_reg();
  h.script(0, {r.read()});  // read never touches cp
  h.run();
  EXPECT_EQ(h.board().of(0).cp.peek(), 0) << "caller reset CP before the read";
}

TEST(runtime, multi_object_scripts_route_correctly) {
  auto h = api::harness::builder().procs(1).build();
  api::reg r0 = h.add_reg(0);
  api::reg r1 = h.add_reg(100);
  h.script(0, {r0.write(5), r1.read(), r0.read()});
  h.run();
  hist::value_t read1 = hist::k_bottom;
  hist::value_t read0 = hist::k_bottom;
  for (const auto& e : h.events()) {
    if (e.kind == hist::event_kind::response &&
        e.desc.code == hist::opcode::reg_read) {
      if (e.desc.object == r1.id()) read1 = e.value;
      if (e.desc.object == r0.id()) read0 = e.value;
    }
  }
  EXPECT_EQ(read1, 100);
  EXPECT_EQ(read0, 5);
}

TEST(runtime, unregistered_object_is_an_error) {
  auto h = api::harness::builder().procs(1).build();
  h.script(0, {{/*object=*/9, hist::opcode::reg_write, 1, 0, 0}});
  EXPECT_THROW(h.run(), std::out_of_range);
}

TEST(runtime, duplicate_object_id_is_rejected) {
  auto h = api::harness::builder().procs(1).build();
  api::reg r = h.add_reg();
  // Registering anything under an id already taken must throw, not silently
  // re-route the existing object's scripts.
  EXPECT_THROW(h.runtime().register_object(r.id(), r.object()),
               std::invalid_argument);
  // And the id chaining contract: register_object returns the id it stored.
  EXPECT_EQ(h.runtime().register_object(1234, r.object()), 1234u);
}

TEST(runtime, crash_event_logged_between_unwind_and_recovery) {
  auto cfg = one_object<api::reg>("reg", 1, [](api::reg r) {
    return scripts{{0, {r.write(1)}}};
  });
  run_outcome out = run_scenario(cfg, 1, {3});
  EXPECT_NE(out.log_text.find("== CRASH =="), std::string::npos);
  // Any recovery events must come after the crash marker.
  auto crash_pos = out.log_text.find("== CRASH ==");
  auto recover_pos = out.log_text.find("recover");
  if (recover_pos != std::string::npos) {
    EXPECT_GT(recover_pos, crash_pos);
  }
}

TEST(runtime, double_crash_pair_sweep_register) {
  auto cfg = one_object<api::reg>(
      "reg", 2,
      [](api::reg r) {
        return scripts{{0, {r.write(1)}}, {1, {r.read()}}};
      },
      core::runtime::fail_policy::retry);
  crash_pair_sweep(cfg, 17, /*stride=*/2);
}

}  // namespace
