// Tests for the deterministic simulator: step-token serialization, crash
// delivery/unwinding, scheduler policies, and the exhaustive explorer.
#include <gtest/gtest.h>

#include <atomic>

#include "nvm/pcell.hpp"
#include "sim/explorer.hpp"
#include "sim/world.hpp"

namespace {

using namespace detect;

TEST(world, single_process_task_runs_to_completion) {
  sim::world w(1);
  nvm::pcell<int> c(0, w.domain());
  w.submit(0, [&] {
    c.store(1);
    c.store(2);
  });
  sim::round_robin_scheduler rr;
  auto rep = w.run(rr);
  EXPECT_EQ(c.peek(), 2);
  EXPECT_EQ(rep.steps, 2u);
}

TEST(world, steps_serialize_memory_accesses) {
  sim::world w(2);
  nvm::pcell<int> c(0, w.domain());
  // Two incrementers; each load/CAS is one step. With the step token, the
  // interleaving is controlled and the final value is deterministic per
  // schedule.
  auto incr = [&] {
    for (int i = 0; i < 10; ++i) {
      for (;;) {
        int cur = c.load();
        if (c.compare_exchange(cur, cur + 1)) break;
      }
    }
  };
  w.submit(0, incr);
  w.submit(1, incr);
  sim::round_robin_scheduler rr;
  w.run(rr);
  EXPECT_EQ(c.peek(), 20);
}

TEST(world, deterministic_replay_same_seed) {
  auto run_once = [](std::uint64_t seed) {
    sim::world w(3);
    nvm::pcell<int> c(0, w.domain());
    for (int p = 0; p < 3; ++p) {
      w.submit(p, [&c, p] {
        for (int i = 0; i < 5; ++i) {
          int cur = c.load();
          c.store(cur * 3 + p);
        }
      });
    }
    sim::random_scheduler sched(seed);
    w.run(sched);
    return c.peek();
  };
  int a = run_once(12345);
  int b = run_once(12345);
  int d = run_once(54321);
  EXPECT_EQ(a, b) << "same seed must replay identically";
  (void)d;  // different seed may or may not differ; only determinism matters
}

TEST(world, manual_stepping_controls_interleaving) {
  sim::world w(2);
  nvm::pcell<int> c(0, w.domain());
  w.submit(0, [&] { c.store(1); });
  w.submit(1, [&] { c.store(2); });
  // Step p1 first, then p0: final value must be p0's.
  w.step(1);
  w.step(0);
  EXPECT_FALSE(w.busy());
  EXPECT_EQ(c.peek(), 1);
}

TEST(world, crash_unwinds_inflight_tasks) {
  sim::world w(1);
  nvm::pcell<int> c(0, w.domain());
  std::atomic<bool> reached_end{false};
  w.submit(0, [&] {
    c.store(1);
    c.store(2);
    reached_end = true;
  });
  w.step(0);  // performs store(1); parked before store(2)
  w.crash();
  EXPECT_FALSE(reached_end.load());
  EXPECT_TRUE(w.last_task_interrupted(0));
  EXPECT_EQ(c.peek(), 1) << "private-cache NVM keeps the first store";
  EXPECT_FALSE(w.busy());
}

TEST(world, crash_reverts_unflushed_shared_cache_state) {
  sim::world w(1);
  w.domain().set_model(nvm::cache_model::shared_cache);
  nvm::pcell<int> c(0, w.domain());
  w.domain().persist_all();
  w.submit(0, [&] {
    c.store(1);
    c.store(2);
  });
  w.step(0);
  w.crash();
  EXPECT_EQ(c.peek(), 0) << "nothing was flushed; cache reverts";
}

TEST(world, task_exception_propagates_to_driver) {
  sim::world w(1);
  nvm::pcell<int> c(0, w.domain());
  w.submit(0, [&] {
    c.load();
    throw std::runtime_error("boom");
  });
  sim::round_robin_scheduler rr;
  EXPECT_THROW(w.run(rr), std::runtime_error);
}

TEST(world, pending_access_reports_kind) {
  sim::world w(1);
  nvm::pcell<int> c(0, w.domain());
  w.submit(0, [&] {
    c.load();
    c.store(1);
  });
  EXPECT_EQ(w.pending_access(0), nvm::access::shared_load);
  w.step(0);
  EXPECT_EQ(w.pending_access(0), nvm::access::shared_store);
  w.step(0);
  EXPECT_FALSE(w.busy());
}

TEST(world, step_limit_guard) {
  sim::world_config cfg;
  cfg.max_steps = 50;
  sim::world w(1, cfg);
  nvm::pcell<int> c(0, w.domain());
  w.submit(0, [&] {
    for (;;) c.load();  // livelock on purpose
  });
  sim::round_robin_scheduler rr;
  auto rep = w.run(rr);
  EXPECT_TRUE(rep.hit_step_limit);
}

TEST(world, submit_to_busy_process_throws) {
  sim::world w(1);
  nvm::pcell<int> c(0, w.domain());
  w.submit(0, [&] { c.load(); });
  EXPECT_THROW(w.submit(0, [] {}), std::logic_error);
  w.step(0);  // drain
}

TEST(world, step_non_runnable_throws) {
  sim::world w(2);
  EXPECT_THROW(w.step(0), std::logic_error);
}

TEST(world, pending_access_requires_yielded_process) {
  sim::world w(1);
  EXPECT_THROW(w.pending_access(0), std::logic_error);
}

TEST(world, nprocs_validation) {
  EXPECT_THROW(sim::world(0), std::invalid_argument);
}

TEST(world, crash_with_no_tasks_is_a_memory_event_only) {
  sim::world w(2);
  w.domain().set_model(nvm::cache_model::shared_cache);
  nvm::pcell<int> c(0, w.domain());
  c.store(5);  // unflushed
  w.crash();
  EXPECT_EQ(c.peek(), 0);
  EXPECT_EQ(w.domain().counters().snapshot().crashes, 1u);
}

TEST(world, epoch_advances_on_every_crash) {
  sim::world w(1);
  EXPECT_EQ(w.epoch(), 1u);
  w.crash();
  w.crash();
  EXPECT_EQ(w.epoch(), 3u) << "the system advances the epoch per crash";
}

TEST(world, epoch_survives_shared_cache_crash) {
  sim::world w(1);
  w.domain().set_model(nvm::cache_model::shared_cache);
  w.crash();
  EXPECT_EQ(w.epoch(), 2u) << "the epoch write is explicitly flushed";
  w.crash();
  EXPECT_EQ(w.epoch(), 3u);
}

TEST(world, epoch_readable_by_simulated_processes) {
  sim::world w(1);
  w.crash();
  std::uint64_t seen = 0;
  w.submit(0, [&] { seen = w.epoch_cell().load(); });
  sim::round_robin_scheduler rr;
  w.run(rr);
  EXPECT_EQ(seen, 2u);
}

TEST(scheduler, round_robin_cycles) {
  sim::round_robin_scheduler rr;
  std::vector<int> ready{3, 5, 9};
  EXPECT_EQ(rr.pick(ready, 0), 3);
  EXPECT_EQ(rr.pick(ready, 1), 5);
  EXPECT_EQ(rr.pick(ready, 2), 9);
  EXPECT_EQ(rr.pick(ready, 3), 3);
}

TEST(scheduler, scripted_follows_script_then_falls_back) {
  sim::scripted_scheduler s({1, 1, 0});
  std::vector<int> ready{0, 1};
  EXPECT_EQ(s.pick(ready, 0), 1);
  EXPECT_EQ(s.pick(ready, 1), 1);
  EXPECT_EQ(s.pick(ready, 2), 0);
  EXPECT_EQ(s.pick(ready, 3), 0) << "exhausted script falls back to lowest";
}

TEST(crash_plan, at_steps_fires_once_each) {
  sim::crash_at_steps plan({2, 2, 5});
  EXPECT_FALSE(plan.should_crash(1));
  EXPECT_TRUE(plan.should_crash(2));
  EXPECT_TRUE(plan.should_crash(2)) << "duplicate entry fires again";
  EXPECT_FALSE(plan.should_crash(2));
  EXPECT_TRUE(plan.should_crash(5));
  EXPECT_FALSE(plan.should_crash(5));
}

// ---- explorer ---------------------------------------------------------------

namespace exh {

struct counter_scenario final : sim::exploration {
  sim::world w{2};
  nvm::pcell<int> c{0, w.domain()};
  std::function<void(int)> on_done_check;

  counter_scenario() {
    auto task = [this] {
      int cur = c.load();
      c.store(cur + 1);
    };
    w.submit(0, task);
    w.submit(1, task);
  }
  sim::world& get_world() override { return w; }
  void on_crash() override {}
  void at_end() override {
    int v = c.peek();
    // Two non-atomic increments: 1 and 2 are both reachable, nothing else.
    if (v != 1 && v != 2) throw std::runtime_error("impossible final value");
  }
};

}  // namespace exh

TEST(explorer, enumerates_all_interleavings_of_racy_increment) {
  sim::explore_config cfg;
  auto res = sim::explore_schedules(
      [] { return std::make_unique<exh::counter_scenario>(); }, cfg);
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.failed) << res.failure;
  // Interleavings of 2 sequences of 2 steps each: C(4,2) = 6 schedules.
  EXPECT_EQ(res.runs, 6u);
}

TEST(explorer, detects_a_violation_and_reports_path) {
  struct bad_scenario final : sim::exploration {
    sim::world w{2};
    nvm::pcell<int> c{0, w.domain()};
    bad_scenario() {
      auto task = [this] {
        int cur = c.load();
        c.store(cur + 1);
      };
      w.submit(0, task);
      w.submit(1, task);
    }
    sim::world& get_world() override { return w; }
    void on_crash() override {}
    void at_end() override {
      if (c.peek() == 1) throw std::runtime_error("lost update reached");
    }
  };
  sim::explore_config cfg;
  auto res = sim::explore_schedules(
      [] { return std::make_unique<bad_scenario>(); }, cfg);
  EXPECT_TRUE(res.failed);
  EXPECT_FALSE(res.failing_path.empty());
}

TEST(explorer, crash_options_expand_the_tree) {
  // Crash-tolerant variant: an unwound increment may simply be lost, so any
  // final value in {0, 1, 2} is legal.
  struct crashable final : sim::exploration {
    sim::world w{2};
    nvm::pcell<int> c{0, w.domain()};
    crashable() {
      auto task = [this] {
        int cur = c.load();
        c.store(cur + 1);
      };
      w.submit(0, task);
      w.submit(1, task);
    }
    sim::world& get_world() override { return w; }
    void on_crash() override {}
    void at_end() override {
      int v = c.peek();
      if (v < 0 || v > 2) throw std::runtime_error("impossible final value");
    }
  };
  sim::explore_config with_crash;
  with_crash.max_crashes = 1;
  auto res_crash = sim::explore_schedules(
      [] { return std::make_unique<crashable>(); }, with_crash);
  sim::explore_config no_crash;
  auto res_plain = sim::explore_schedules(
      [] { return std::make_unique<crashable>(); }, no_crash);
  EXPECT_TRUE(res_crash.complete);
  EXPECT_FALSE(res_crash.failed) << res_crash.failure;
  EXPECT_GT(res_crash.runs, res_plain.runs);
}

TEST(explorer, preemption_bound_shrinks_the_tree) {
  auto make = [] { return std::make_unique<exh::counter_scenario>(); };
  sim::explore_config unbounded;
  auto full = sim::explore_schedules(make, unbounded);
  sim::explore_config bounded;
  bounded.max_preemptions = 0;
  auto zero = sim::explore_schedules(make, bounded);
  EXPECT_TRUE(full.complete);
  EXPECT_TRUE(zero.complete);
  EXPECT_EQ(full.runs, 6u) << "all interleavings of 2x2 steps";
  EXPECT_EQ(zero.runs, 2u) << "0 preemptions = the two sequential orders";
  EXPECT_FALSE(zero.failed) << zero.failure;
}

}  // namespace
