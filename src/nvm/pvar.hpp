// pvar<T> — a per-process private non-volatile variable (§2: "each process p
// may own non-volatile private variables that reside in the NVM but are
// accessed only by p"), e.g. RD_p, T_p and the Ann_p fields.
//
// Only the owning process ever touches a pvar, so no atomicity is needed;
// accesses are still hook-instrumented because a crash may strike between any
// two of them (the crash-at-every-step sweeps rely on this), and in
// shared-cache mode private NVM has cached vs persisted images exactly like
// shared cells.
#pragma once

#include <cstring>
#include <type_traits>

#include "nvm/hook.hpp"
#include "nvm/pmem.hpp"

namespace detect::nvm {

template <typename T>
class pvar final : public persistent_base {
  static_assert(std::is_trivially_copyable_v<T>,
                "persistent variables hold raw memory images");

 public:
  explicit pvar(T init = T{}, pmem_domain& dom = pmem_domain::global())
      : cur_(init), persisted_(init), dom_(&dom) {
    dom_->attach(*this);
  }
  ~pvar() { dom_->detach(*this); }

  T load() const {
    hook_access(access::private_load);
    dom_->counters().add_private_load();
    return cur_;
  }

  void store(const T& v) {
    hook_access(access::private_store);
    dom_->counters().add_private_store();
    cur_ = v;
    if (dom_->buffered()) {  // durable only at flush/epoch boundaries
      dom_->note_dirty(*this);
      return;
    }
    if (dom_->model() == cache_model::private_cache) {
      persisted_ = v;
    } else if (dom_->auto_persist()) {
      persisted_ = cur_;
      dom_->counters().add_flush();
      dom_->fence();
    }
  }

  void flush() {
    hook_access(access::flush);
    persisted_ = cur_;
    dom_->counters().add_flush();
  }

  /// Debug/metrics read bypassing hooks. Never use from operation code.
  const T& peek() const noexcept { return cur_; }
  const T& peek_persisted() const noexcept { return persisted_; }

 private:
  void revert_to_persisted() noexcept override { cur_ = persisted_; }
  void persist_now() noexcept override { persisted_ = cur_; }
  std::size_t image_size() const noexcept override { return sizeof(T); }
  void save_raw(std::uint8_t* cur, std::uint8_t* persisted) const override {
    std::memcpy(cur, &cur_, sizeof(T));
    std::memcpy(persisted, &persisted_, sizeof(T));
  }
  void load_raw(const std::uint8_t* cur,
                const std::uint8_t* persisted) override {
    std::memcpy(&cur_, cur, sizeof(T));
    std::memcpy(&persisted_, persisted, sizeof(T));
    // A migrated image may arrive with cur != persisted; keep the buffered
    // journal's every-divergence-is-journaled invariant.
    if (dom_->buffered()) dom_->note_dirty(*this);
  }

  T cur_;
  T persisted_;
  pmem_domain* dom_;
};

}  // namespace detect::nvm
