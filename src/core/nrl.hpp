// NRL adapter (§6): a detectable implementation is turned into a
// nesting-safe recoverable linearizable one by having the recovery function
// re-invoke the operation instead of returning fail, repeating until it
// completes. The re-attempt is a fresh invocation, so the adapter re-arms the
// auxiliary state (resp := ⊥, CP := 0) exactly as a caller would — the reset
// happens inside the recovery function, i.e. outside the operation itself,
// which Definition 1 permits.
#pragma once

#include "core/object.hpp"

namespace detect::core {

class nrl_adapter final : public detectable_object {
 public:
  nrl_adapter(detectable_object& inner, announcement_board& board)
      : inner_(&inner), board_(&board) {}

  value_t invoke(int pid, const hist::op_desc& op) override {
    return inner_->invoke(pid, op);
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    recovery_result r = inner_->recover(pid, op);
    if (r.verdict == hist::recovery_verdict::linearized) return r;
    // Not linearized: NRL re-attempts to completion. A crash inside the
    // re-attempt re-enters this recovery with a fresh capsule.
    ann_fields& ann = board_->of(pid);
    if (inner_->wants_aux_reset()) {
      ann.resp.store(hist::k_bottom);
      ann.cp.store(0);
    }
    return recovery_result::linearized(inner_->invoke(pid, op));
  }

  bool wants_aux_reset() const override { return inner_->wants_aux_reset(); }

 private:
  detectable_object* inner_;
  announcement_board* board_;
};

}  // namespace detect::core
