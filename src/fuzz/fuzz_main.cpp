// fuzz_main — CLI driver for long differential-fuzzing campaigns.
//
//   fuzz_main                          # default campaign over all kinds
//   fuzz_main --iters 5000 --seed 42   # bounded, reproducible campaign
//   fuzz_main --kind cas --kind queue  # restrict the kind pool
//   fuzz_main --objects-max K          # up to K objects per scenario
//   fuzz_main --sharded-equiv          # every iteration diffs single vs
//                                      # sharded (the CI equivalence stage)
//   fuzz_main --placement-equiv        # every iteration diffs modulo vs
//                                      # hash vs range placement (the CI
//                                      # placement stage)
//   fuzz_main --placement NAME         # pin the generator's placement knob
//                                      # (modulo|hash|range|pinned|none)
//   fuzz_main --shards-max K           # bound the generator's shard knob
//   fuzz_main --sched NAME[:depth]     # schedule-strategy pool: round_robin,
//                                      # uniform_random, pct, or mixed (all
//                                      # three); :depth bounds pct preemption
//                                      # budgets (default 3)
//   fuzz_main --persist MODE           # persistency pool: strict, buffered,
//                                      # or mixed
//   fuzz_main --visibility MODE        # store-buffer visibility pool: sc,
//                                      # tso, pso, or mixed (all three)
//   fuzz_main --jobs N                 # fork N worker processes over a
//                                      # partition of the iteration range
//                                      # (the 300k nightly at 30k wall-clock)
//   fuzz_main --check-jobs N           # per-object checker threads inside
//                                      # every oracle replay (0 = auto)
//   fuzz_main --corpus-dir DIR         # shared on-disk corpus: dump novel
//                                      # scenarios, ingest siblings'
//   fuzz_main --coverage               # coverage-steered generation
//   fuzz_main --coverage-out FILE      # write coverage.json (buckets,
//                                      # timeline, corpus seed list; merged
//                                      # across workers under --jobs) — the
//                                      # nightly deep-fuzz lane's artifact
//   fuzz_main --out artifacts/         # failure artifacts + per-worker
//                                      # summaries (default fuzz-artifacts
//                                      # under --jobs)
//   fuzz_main --replay failure.txt     # re-run a dumped scenario and print
//                                      # its coverage bucket signature
//   fuzz_main --list-kinds             # print the registry kind pool
//   fuzz_main --list-models            # print every schedule strategy,
//                                      # persistency model, and visibility
//                                      # model with one-line descriptions
//
// Exit status: 0 clean, 1 failure found (artifact written when --out is
// set), 2 usage/IO error or lost worker. The same binary backs the CI fuzz
// stages (`scripts/check.sh --fuzz N` / `--fuzz-sharded N` /
// `--fuzz-deep N [--jobs J]`).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/fuzz.hpp"

namespace {

using namespace detect;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--iters N] [--seed S] [--kind K]... [--procs-max P]\n"
      "          [--ops-max M] [--objects-max K] [--shards-min K]\n"
      "          [--shards-max K] [--sharded-equiv] [--placement-equiv]\n"
      "          [--placement NAME] [--sched NAME[:depth]] [--persist MODE]\n"
      "          [--visibility MODE] [--jobs N] [--check-jobs N]\n"
      "          [--corpus-dir DIR] [--coverage] [--coverage-out FILE]\n"
      "          [--no-diff] [--no-shrink] [--no-crashes]\n"
      "          [--out DIR] [--replay FILE] [--list-kinds] [--list-models]\n"
      "          [--quiet]\n",
      argv0);
  return 2;
}

int replay_file(const std::string& path, int check_jobs) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fuzz_main: cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  api::scripted_scenario s = api::parse_scenario(buf.str());
  std::printf("replaying %zu object(s) [", s.objects.size());
  for (std::size_t i = 0; i < s.objects.size(); ++i) {
    std::printf("%s%u:%s", i != 0 ? " " : "", s.objects[i].id,
                s.objects[i].kind.c_str());
  }
  std::printf("] (%d procs, %zu ops, %zu crash steps, placement %s, "
              "%zu migrations)\n",
              s.nprocs, s.total_ops(), s.crash_steps.size(),
              s.placement.to_string().c_str(), s.migrations.size());
  std::printf("schedule: %s (seed %llu), persistency: %s, visibility: %s"
              " (%zu scripted drains)\n",
              s.sched.to_string().c_str(),
              static_cast<unsigned long long>(s.sched_seed),
              nvm::persist_name(s.persist), wmm::visibility_name(s.visibility),
              s.drain_steps.size());
  api::scripted_outcome outcome;
  std::string failure =
      fuzz::check_scenario(s, /*diff=*/true, /*replays=*/nullptr, &outcome,
                           /*placement=*/s.shards > 1, check_jobs);
  // The bucket signature matches the failure artifact to its coverage.json
  // bucket by hand (outcome bits reflect the replay just performed).
  std::printf("bucket: %s\n", fuzz::bucket_of(s, outcome).key().c_str());
  if (failure.empty()) {
    std::printf("PASS: scenario is clean\n");
    return 0;
  }
  std::printf("FAIL:\n%s\n", failure.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::campaign_config cfg;
  fuzz::fuzz_options& opt = cfg.options;
  opt.iterations = 200;
  std::string replay_path;
  bool sharded_equiv = false;
  bool placement_equiv = false;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::exit(usage(argv[0]));
    }
    return argv[++i];
  };
  // Strict numeric parsing: a typo'd "--iters abc" must not silently become
  // a 0-iteration campaign that prints PASS, and an overflowing value must
  // not clamp to ULLONG_MAX and run forever.
  auto need_u64 = [&](int& i) -> std::uint64_t {
    const char* text = need_value(i);
    char* end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "fuzz_main: '%s' is not a valid number\n", text);
      std::exit(2);
    }
    return v;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--iters") == 0) {
      cfg.iterations(need_u64(i));
      if (opt.iterations == 0) {
        std::fprintf(stderr, "fuzz_main: --iters must be positive\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--seed") == 0) {
      cfg.seed(need_u64(i));
    } else if (std::strcmp(arg, "--kind") == 0) {
      opt.kinds.emplace_back(need_value(i));
    } else if (std::strcmp(arg, "--jobs") == 0) {
      cfg.jobs(static_cast<int>(need_u64(i)));
      if (cfg.jobs() < 1) {
        std::fprintf(stderr, "fuzz_main: --jobs must be positive\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--check-jobs") == 0) {
      cfg.check_jobs(static_cast<int>(need_u64(i)));
    } else if (std::strcmp(arg, "--corpus-dir") == 0) {
      cfg.corpus_dir(need_value(i));
    } else if (std::strcmp(arg, "--procs-max") == 0) {
      opt.gen.max_procs = static_cast<int>(need_u64(i));
    } else if (std::strcmp(arg, "--ops-max") == 0) {
      opt.gen.max_ops = static_cast<int>(need_u64(i));
    } else if (std::strcmp(arg, "--objects-max") == 0) {
      opt.gen.max_objects = static_cast<int>(need_u64(i));
    } else if (std::strcmp(arg, "--shards-max") == 0) {
      opt.gen.max_shards = static_cast<int>(need_u64(i));
    } else if (std::strcmp(arg, "--shards-min") == 0) {
      // >= 2 arms the single-vs-sharded equivalence diff on every iteration
      // while keeping the variant pass (unlike --sharded-equiv, which trades
      // the variant pass for a pure equivalence campaign).
      opt.gen.min_shards = static_cast<int>(need_u64(i));
      if (opt.gen.max_shards < opt.gen.min_shards) {
        opt.gen.max_shards = opt.gen.min_shards;
      }
    } else if (std::strcmp(arg, "--sharded-equiv") == 0) {
      sharded_equiv = true;
    } else if (std::strcmp(arg, "--placement-equiv") == 0) {
      placement_equiv = true;
    } else if (std::strcmp(arg, "--placement") == 0) {
      const char* name = need_value(i);
      if (std::strcmp(name, "none") != 0) {
        try {
          api::placement_from_name(name);  // validate before the campaign
        } catch (const std::exception& e) {
          std::fprintf(stderr, "fuzz_main: %s\n", e.what());
          return 2;
        }
      }
      opt.gen.placement = name;
    } else if (std::strcmp(arg, "--sched") == 0) {
      // NAME[:depth] — "mixed" pools all three strategies; a single name
      // pins every scenario to it. The optional :depth bounds pct budgets.
      std::string spec = need_value(i);
      if (std::size_t colon = spec.find(':'); colon != std::string::npos) {
        const std::string depth = spec.substr(colon + 1);
        char* end = nullptr;
        errno = 0;
        const unsigned long long d = std::strtoull(depth.c_str(), &end, 10);
        if (end == depth.c_str() || *end != '\0' || errno == ERANGE ||
            d == 0) {
          std::fprintf(stderr, "fuzz_main: bad pct depth '%s'\n",
                       depth.c_str());
          return 2;
        }
        opt.gen.pct_depth = static_cast<int>(d);
        spec.resize(colon);
      }
      if (spec == "mixed") {
        opt.gen.sched_pool = {"round_robin", "uniform_random", "pct"};
      } else if (sched::strategy_from_name(spec)) {
        opt.gen.sched_pool = {spec};
      } else {
        std::fprintf(stderr, "fuzz_main: unknown schedule strategy '%s'\n",
                     spec.c_str());
        return 2;
      }
    } else if (std::strcmp(arg, "--persist") == 0) {
      const std::string spec = need_value(i);
      nvm::persist_model m;
      if (spec == "mixed") {
        opt.gen.persist_pool = {"strict", "buffered"};
      } else if (nvm::persist_from_name(spec, m)) {
        opt.gen.persist_pool = {spec};
      } else {
        std::fprintf(stderr, "fuzz_main: unknown persist model '%s'\n",
                     spec.c_str());
        return 2;
      }
    } else if (std::strcmp(arg, "--visibility") == 0) {
      const std::string spec = need_value(i);
      wmm::visibility_model m;
      if (spec == "mixed") {
        opt.gen.visibility_pool = {"sc", "tso", "pso"};
      } else if (wmm::visibility_from_name(spec, m)) {
        opt.gen.visibility_pool = {spec};
      } else {
        std::fprintf(stderr, "fuzz_main: unknown visibility model '%s'\n",
                     spec.c_str());
        return 2;
      }
    } else if (std::strcmp(arg, "--coverage") == 0) {
      cfg.steer(true);
    } else if (std::strcmp(arg, "--coverage-out") == 0) {
      // Coverage is tracked on every campaign; this only chooses to write
      // it out. Steering stays governed by --coverage, so a plain campaign
      // can still report its buckets without changing how it generates.
      cfg.coverage_out(need_value(i));
    } else if (std::strcmp(arg, "--no-diff") == 0) {
      opt.diff = false;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      opt.shrink = false;
    } else if (std::strcmp(arg, "--no-crashes") == 0) {
      opt.gen.crashes = false;
    } else if (std::strcmp(arg, "--out") == 0) {
      cfg.artifact_dir(need_value(i));
    } else if (std::strcmp(arg, "--replay") == 0) {
      replay_path = need_value(i);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      cfg.quiet(true);
    } else if (std::strcmp(arg, "--list-kinds") == 0) {
      for (const std::string& k : api::object_registry::global().kinds()) {
        std::printf("%s\n", k.c_str());
      }
      return 0;
    } else if (std::strcmp(arg, "--list-models") == 0) {
      std::printf("schedule strategies (--sched):\n");
      std::printf("  round_robin     deterministic rotation over ready"
                  " processes — the canonical baseline schedule\n");
      std::printf("  uniform_random  every step picks a ready process"
                  " uniformly from the seeded stream\n");
      std::printf("  pct             priority-based exploration with a"
                  " budget of seeded preemption points\n");
      std::printf("persistency models (--persist):\n");
      std::printf("  strict          every drained store is persistent"
                  " immediately — crashes lose nothing\n");
      std::printf("  buffered        drained stores persist lazily via the"
                  " journal — a crash can discard them\n");
      std::printf("visibility models (--visibility):\n");
      std::printf("  sc              every store is globally visible the"
                  " moment it executes (no store buffers)\n");
      std::printf("  tso             per-process FIFO store buffers; the"
                  " scheduler picks when the head drains\n");
      std::printf("  pso             per-process per-cell store buffers;"
                  " stores to different cells drain in any order\n");
      std::printf("registry kinds: run --list-kinds\n");
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  // Applied after flag parsing so ordering cannot neuter it: an equivalence
  // campaign whose generator never draws shards >= 2 would vacuously PASS.
  if (sharded_equiv) {
    opt.gen.min_shards = 2;
    if (opt.gen.max_shards < 2) opt.gen.max_shards = 4;
    opt.diff = false;
  }
  if (placement_equiv) {
    opt.gen.min_shards = 2;
    if (opt.gen.max_shards < 2) opt.gen.max_shards = 4;
    opt.placement_equiv = true;
    opt.diff = false;
  }

  try {
    if (!replay_path.empty()) {
      return replay_file(replay_path, opt.check_jobs);
    }

    for (const std::string& k : opt.kinds) {
      if (!api::object_registry::global().contains(k)) {
        std::fprintf(stderr, "fuzz_main: unknown kind '%s'\n", k.c_str());
        return 2;
      }
    }

    std::uint64_t last_reported = 0;
    fuzz::campaign_result r = fuzz::run_campaign(
        cfg, [&](std::uint64_t iter, std::uint64_t seed,
                 const std::string& kind) {
          // One progress line every ~5% of the campaign (inline path only;
          // forked workers print their own prefixed lines).
          std::uint64_t stride = opt.iterations / 20 + 1;
          if (iter == 0 || iter - last_reported >= stride) {
            last_reported = iter;
            std::printf("iter %llu/%llu  kind=%s  seed=%llu\n",
                        static_cast<unsigned long long>(iter),
                        static_cast<unsigned long long>(opt.iterations),
                        kind.c_str(), static_cast<unsigned long long>(seed));
            std::fflush(stdout);
          }
        });

    if (!cfg.coverage_out().empty() && r.exit_code != 2) {
      std::printf("coverage written to %s\n", cfg.coverage_out().c_str());
    }

    if (r.forked) {
      // Per-worker roll call, then the merged verdict.
      for (const fuzz::worker_report& w : r.workers) {
        std::printf(
            "worker %d: iterations [%llu, %llu): %s"
            " (%llu executed, %llu replays, %zu new buckets)\n",
            w.worker, static_cast<unsigned long long>(w.first_iteration),
            static_cast<unsigned long long>(w.first_iteration + w.iterations),
            w.lost ? "LOST" : (w.error ? "ERROR" : (w.failed ? "FAIL" : "ok")),
            static_cast<unsigned long long>(w.executed),
            static_cast<unsigned long long>(w.replays),
            w.distinct_buckets);
        if (w.failed) {
          std::printf("  failure at iteration %llu, artifact: %s\n",
                      static_cast<unsigned long long>(w.failure_iteration),
                      w.failure_artifact.empty() ? "(unwritable)"
                                                 : w.failure_artifact.c_str());
        }
      }
      if (r.exit_code == 0) {
        std::printf(
            "PASS: %llu iterations across %zu workers, %llu replays, "
            "%zu coverage buckets%s, base seed %llu\n",
            static_cast<unsigned long long>(r.stats.coverage.executed),
            r.workers.size(), static_cast<unsigned long long>(r.stats.replays),
            r.stats.coverage.distinct_buckets,
            r.stats.coverage.steered ? " (steered)" : "",
            static_cast<unsigned long long>(opt.base_seed));
      } else if (r.exit_code == 1) {
        std::printf("FAIL: see worker artifacts above "
                    "(fuzz_main --replay <artifact>)\n");
      } else {
        std::fprintf(stderr, "fuzz_main: campaign infrastructure error "
                             "(lost worker or unwritable output)\n");
      }
      return r.exit_code;
    }

    if (r.exit_code == 2) {
      std::fprintf(stderr, "fuzz_main: cannot write campaign outputs\n");
      return 2;
    }
    if (!r.stats.failure) {
      std::printf(
          "PASS: %llu iterations, %llu replays, %zu coverage buckets%s, "
          "base seed %llu\n",
          static_cast<unsigned long long>(r.stats.iterations),
          static_cast<unsigned long long>(r.stats.replays),
          r.stats.coverage.distinct_buckets,
          r.stats.coverage.steered ? " (steered)" : "",
          static_cast<unsigned long long>(opt.base_seed));
      return 0;
    }

    const fuzz::fuzz_failure& f = *r.stats.failure;
    std::printf("FAIL at iteration %llu (kind %s, seed %llu):\n%s\n",
                static_cast<unsigned long long>(f.iteration), f.kind.c_str(),
                static_cast<unsigned long long>(f.seed), f.message.c_str());
    std::printf("\nshrunk scenario (%zu ops, %zu crash steps):\n%s",
                f.shrunk.total_ops(), f.shrunk.crash_steps.size(),
                api::dump(f.shrunk).c_str());
    const fuzz::worker_report& w = r.workers.front();
    if (!w.failure_artifact.empty()) {
      std::printf("\nartifact written to %s\n", w.failure_artifact.c_str());
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_main: %s\n", e.what());
    return 2;
  }
}
