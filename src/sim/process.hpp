// A simulated crash-prone process: one worker thread driven by the world's
// step token.
//
// The worker installs itself as the thread-local NVM access hook. Every
// emulated memory access then blocks in `before_access` until the scheduler
// grants the process its next step; a pending system-wide crash is delivered
// there as a `nvm::crashed` exception, which unwinds the task frame — i.e.
// destroys all volatile local state, exactly the paper's crash semantics.
#pragma once

#include <condition_variable>
#include <functional>
#include <string>
#include <thread>

#include "nvm/hook.hpp"

namespace detect::sim {

class world;

class process final : public nvm::access_hook {
 public:
  process(world& w, int pid, std::string name);
  ~process() override;

  process(const process&) = delete;
  process& operator=(const process&) = delete;

  int pid() const noexcept { return pid_; }
  const std::string& name() const noexcept { return name_; }

  // nvm::access_hook — called on the worker thread from inside pcell/pvar.
  void before_access(nvm::access kind) override;

 private:
  friend class world;

  enum class pstate : std::uint8_t {
    idle,       // no task
    launching,  // task submitted; runs freely until its first access
    at_yield,   // blocked in before_access, waiting for a grant
    stepping,   // granted; executing one step (scheduler waits for it)
    done_task,  // task returned or unwound; result not yet collected
    stopped,    // shutting down
  };

  void thread_main();

  world* world_;
  int pid_;
  std::string name_;

  // All fields below are guarded by the world's mutex.
  pstate state_ = pstate::idle;
  std::function<void()> task_;
  bool crash_me_ = false;            // deliver crash at next yield
  bool task_interrupted_ = false;    // last task unwound by crash
  std::exception_ptr task_error_;    // non-crash exception from the task
  nvm::access pending_kind_ = nvm::access::control;  // kind blocked on
  bool stop_ = false;

  std::thread thread_;
};

}  // namespace detect::sim
