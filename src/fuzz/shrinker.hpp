// shrinker — greedy minimization of failing scenarios.
//
// Given a scenario and a predicate that reports "still fails", repeatedly
// try structure-removing edits and keep every edit that preserves the
// failure, until a whole round makes no progress (or the round budget is
// exhausted). The edit order goes coarse to fine so big cuts land first:
//
//   0. canonicalize the schedule (smart minimization): try strategy →
//      round_robin and persist → strict wholesale, then drop pct preemption
//      points one at a time — a failure that survives on the canonical
//      schedule is schedule-independent and every later pass explores the
//      simpler artifact; one that does not keeps only the preemptions it
//      actually needs,
//   1. drop whole per-process scripts (and renumber pids densely),
//   2. chop op-suffix halves, then individual ops, then migration steps
//      (individually and the whole plan — that also drops the second script
//      round),
//   3. drop crash steps,
//   4. simplify knobs (placement → modulo, retry → skip, shared_cache →
//      private, sharded backend → single, shards → 1),
//   5. zero op argument values.
//
// Every candidate is produced deterministically from the current scenario,
// so a shrink of the same failure always yields the same minimal scenario —
// the seed + dump pair that lands in the CI failure artifact.
#pragma once

#include <functional>

#include "api/api.hpp"

namespace detect::fuzz {

/// "Does this scenario still exhibit the failure?" Must be deterministic.
using fail_predicate = std::function<bool(const api::scripted_scenario&)>;

/// Greedily minimize `s` under `fails` (which must hold for `s` itself —
/// otherwise `s` is returned unchanged). `max_rounds` bounds the number of
/// full fixpoint iterations.
api::scripted_scenario shrink(api::scripted_scenario s,
                              const fail_predicate& fails, int max_rounds = 8);

}  // namespace detect::fuzz
