#include "nvm/pmem.hpp"

namespace detect::nvm {

pmem_domain& pmem_domain::global() {
  static pmem_domain dom;
  return dom;
}

void pmem_domain::crash_reset() noexcept {
  std::scoped_lock lock(mu_);
  stats_.add_crash();
  if (model_ == cache_model::private_cache) return;  // NVM survives verbatim
  for (persistent_base* c = head_; c != nullptr; c = c->next_) {
    c->revert_to_persisted();
  }
}

void pmem_domain::persist_all() noexcept {
  std::scoped_lock lock(mu_);
  for (persistent_base* c = head_; c != nullptr; c = c->next_) {
    c->persist_now();
  }
}

void pmem_domain::attach(persistent_base& cell) {
  std::scoped_lock lock(mu_);
  cell.prev_ = nullptr;
  cell.next_ = head_;
  if (head_ != nullptr) head_->prev_ = &cell;
  head_ = &cell;
}

void pmem_domain::detach(persistent_base& cell) noexcept {
  std::scoped_lock lock(mu_);
  if (cell.prev_ != nullptr) {
    cell.prev_->next_ = cell.next_;
  } else if (head_ == &cell) {
    head_ = cell.next_;
  }
  if (cell.next_ != nullptr) cell.next_->prev_ = cell.prev_;
  cell.prev_ = nullptr;
  cell.next_ = nullptr;
}

}  // namespace detect::nvm
