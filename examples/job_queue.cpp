// job_queue — exactly-once job dispatch over the detectable durable queue.
//
// Producers enqueue jobs; consumers dequeue and "execute" them. Crashes
// strike mid-operation. The detectability contract keeps the ledger exact:
//   * an interrupted enqueue reports `linearized` iff the job is in (or has
//     passed through) the queue — the producer never double-submits;
//   * an interrupted dequeue reports its claimed job iff the claim stamp
//     ⟨pid, op-id⟩ landed in the node — the job is never executed twice nor
//     lost.
// The FIFO-spec check at the end proves the exactly-once accounting.
//
// Build & run:  ./build/job_queue
#include <cstdio>
#include <map>

#include "api/api.hpp"
#include "core/queue.hpp"

int main() {
  using namespace detect;
  constexpr int k_procs = 4;  // 2 producers + 2 consumers

  auto h = api::harness::builder()
               .procs(k_procs)
               .fail_policy(core::runtime::fail_policy::retry)
               .seed(42)
               .crash_random(1234, 0.015, 6)
               .build();
  api::queue q = h.add_queue(64);

  h.script(0, {q.enq(101), q.enq(102), q.enq(103)});
  h.script(1, {q.enq(201), q.enq(202), q.enq(203)});
  h.script(2, {q.deq(), q.deq(), q.deq()});
  h.script(3, {q.deq(), q.deq(), q.deq()});

  auto report = h.run();

  // Tally the dispatch ledger from the verified history.
  std::map<hist::value_t, int> executed;  // job id -> times delivered
  int empties = 0;
  for (const auto& e : h.events()) {
    bool final_resp = e.kind == hist::event_kind::response ||
                      (e.kind == hist::event_kind::recover_result &&
                       e.verdict == hist::recovery_verdict::linearized);
    if (final_resp && e.desc.code == hist::opcode::deq) {
      if (e.value == hist::k_empty) {
        ++empties;
      } else {
        ++executed[e.value];
      }
    }
  }

  std::printf("job_queue: %llu steps, %llu crashes\n",
              static_cast<unsigned long long>(report.steps),
              static_cast<unsigned long long>(report.crashes));
  std::printf("delivered jobs:");
  bool exactly_once = true;
  for (auto& [id, times] : executed) {
    std::printf(" %lld(x%d)", static_cast<long long>(id), times);
    if (times != 1) exactly_once = false;
  }
  std::printf("\nempty polls: %d\n", empties);
  std::printf("exactly-once delivery: %s\n", exactly_once ? "YES" : "NO");
  std::printf("identifier space used: %llu stamps\n",
              static_cast<unsigned long long>(
                  q.as<core::detectable_queue>().ids_minted()));

  auto check = h.check();
  std::printf("history verified: %s\n", check.ok ? "YES" : "NO");
  if (!check.ok) std::printf("%s\n", check.message.c_str());
  return (check.ok && exactly_once) ? 0 : 1;
}
