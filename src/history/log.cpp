#include "history/log.hpp"

#include <sstream>

namespace detect::hist {

std::string log::to_string() const {
  std::ostringstream os;
  for (const event& e : snapshot()) os << e.to_string() << '\n';
  return os.str();
}

}  // namespace detect::hist
