// Event vocabulary for recorded executions.
//
// Every simulated run produces a totally ordered event log (the simulator
// serializes all steps, so the log order is the real-time order of the
// model). The checker consumes this log to decide durable linearizability
// and detectability.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace detect::hist {

using value_t = std::int64_t;

/// Response value conventions.
inline constexpr value_t k_ack = 0;                // writes / enq
inline constexpr value_t k_true = 1;               // successful CAS / TAS
inline constexpr value_t k_false = 0;              // failed CAS / TAS
inline constexpr value_t k_empty = std::numeric_limits<value_t>::min() + 7;
/// "⊥" — response not yet persisted.
inline constexpr value_t k_bottom = std::numeric_limits<value_t>::min();

/// Abstract operation codes across all object types in the suite.
enum class opcode : std::uint8_t {
  nop,
  reg_read,
  reg_write,
  swap,          // a = new value; response = old value (fetch-and-store)
  cas,           // a = expected, b = new
  cas_read,
  ctr_read,
  ctr_add,       // fetch-and-add; a = delta; response = old value
  tas_set,       // test-and-set; response = previous bit
  tas_reset,
  enq,           // a = value
  deq,           // response = value or k_empty
  push,          // a = value
  pop,           // response = value or k_empty
  max_write,     // a = value
  max_read,
  lock_try,      // a = caller pid; response = true/false
  lock_release,  // a = caller pid; response = true, or false if not holder
};

const char* opcode_name(opcode c) noexcept;

/// Abstract operation descriptor: which object, which operation, with which
/// arguments. `client_seq` is the calling client's private program counter
/// (used by the runtime to resume after a crash; it is private durable client
/// state, not an argument of the abstract operation).
struct op_desc {
  std::uint32_t object = 0;
  opcode code = opcode::nop;
  value_t a = 0;
  value_t b = 0;
  std::uint64_t client_seq = 0;

  std::string to_string() const;
};

/// Outcome of a recovery function, per the detectability contract (§2):
/// `fail` means the operation was not linearized; `linearized` carries its
/// response.
enum class recovery_verdict : std::uint8_t { none, linearized, fail };

enum class event_kind : std::uint8_t {
  invoke,          // operation invoked
  response,        // operation returned normally; `value` = response
  crash,           // system-wide crash (pid unused)
  recover_begin,   // process entered Op.Recover
  recover_result,  // recovery completed; `verdict` (+`value` if linearized)
};

struct event {
  event_kind kind = event_kind::invoke;
  int pid = -1;
  op_desc desc;
  value_t value = k_bottom;
  recovery_verdict verdict = recovery_verdict::none;

  std::string to_string() const;
};

}  // namespace detect::hist
