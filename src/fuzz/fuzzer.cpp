#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace detect::fuzz {

namespace {

/// The effective generator config of a campaign: when the caller left the
/// object-kind pool empty, extra objects draw from the campaign's own kind
/// list — multi-object scenarios mix exactly the kinds under test, and the
/// pool stays pinned against kinds other tests register later.
gen_config resolved_gen(const fuzz_options& opt,
                        const std::vector<std::string>& kinds) {
  gen_config gen = opt.gen;
  if (gen.object_kind_pool.empty() && gen.max_objects > 1) {
    gen.object_kind_pool = kinds;
  }
  return gen;
}

std::vector<std::string> resolved_kinds(const fuzz_options& opt) {
  if (!opt.kinds.empty()) return opt.kinds;
  return api::object_registry::global().kinds();
}

}  // namespace

std::string fuzz_one(std::uint64_t seed, const std::string& kind,
                     const fuzz_options& opt, std::uint64_t* replays) {
  api::scripted_scenario s =
      generate(seed, kind, resolved_gen(opt, resolved_kinds(opt)));
  return check_scenario(s, opt.diff, replays, nullptr, opt.placement_equiv,
                        opt.check_jobs);
}

namespace {

/// Prefix every line with "# " so a parse of the artifact skips the block.
std::string commented(const std::string& text) {
  std::ostringstream os;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) os << "# " << line << "\n";
  return os.str();
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string coverage_stats::to_json(std::uint64_t base_seed,
                                    std::uint64_t iterations) const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"base_seed\": " << base_seed << ",\n";
  os << "  \"iterations\": " << iterations << ",\n";
  os << "  \"executed\": " << executed << ",\n";
  os << "  \"distinct_buckets\": " << distinct_buckets << ",\n";
  os << "  \"steered\": " << (steered ? "true" : "false") << ",\n";
  os << "  \"new_bucket_timeline\": [";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    if (i != 0) os << ", ";
    os << "[" << timeline[i].first << ", " << timeline[i].second << "]";
  }
  os << "],\n";
  os << "  \"by_strategy\": [\n";
  for (std::size_t i = 0; i < by_strategy.size(); ++i) {
    const strategy_stats& st = by_strategy[i];
    os << "    {\"strategy\": \"" << json_escaped(st.strategy)
       << "\", \"executed\": " << st.executed
       << ", \"distinct_buckets\": " << st.distinct_buckets
       << ", \"new_bucket_timeline\": [";
    for (std::size_t j = 0; j < st.timeline.size(); ++j) {
      if (j != 0) os << ", ";
      os << "[" << st.timeline[j].first << ", " << st.timeline[j].second
         << "]";
    }
    os << "]}";
    os << (i + 1 < by_strategy.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"by_visibility\": [\n";
  for (std::size_t i = 0; i < by_visibility.size(); ++i) {
    const strategy_stats& st = by_visibility[i];
    os << "    {\"visibility\": \"" << json_escaped(st.strategy)
       << "\", \"executed\": " << st.executed
       << ", \"distinct_buckets\": " << st.distinct_buckets
       << ", \"new_bucket_timeline\": [";
    for (std::size_t j = 0; j < st.timeline.size(); ++j) {
      if (j != 0) os << ", ";
      os << "[" << st.timeline[j].first << ", " << st.timeline[j].second
         << "]";
    }
    os << "]}";
    os << (i + 1 < by_visibility.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"corpus\": [\n";
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const corpus_entry& e = corpus[i];
    os << "    {\"iteration\": " << e.iteration << ", \"seed\": " << e.seed
       << ", \"mutated\": " << (e.mutated ? "true" : "false")
       << ", \"bucket\": \"" << json_escaped(e.bucket) << "\"}";
    os << (i + 1 < corpus.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::string fuzz_failure::to_artifact() const {
  std::ostringstream os;
  os << "# detect fuzz failure\n"
     << "# campaign base seed " << base_seed << ", failed at iteration "
     << iteration << " (iteration seed " << seed << ", kind " << kind
     << ")\n"
     << "# reproduce this scenario:  fuzz_main --replay <this file>\n"
     << "# reproduce the campaign:   fuzz_main --seed " << base_seed
     << " --iters " << iteration + 1 << " (plus the campaign's --kind "
     << "flags, if any)\n"
     << commented(message)
     << "\n# ---- shrunk scenario (fuzz_main --replay <this file>) ----\n"
     << api::dump(shrunk)
     << "\n# ---- original scenario ----\n"
     << commented(api::dump(scenario));
  return os.str();
}

fuzz_stats run_fuzz(
    const fuzz_options& opt,
    const std::function<void(std::uint64_t, std::uint64_t,
                             const std::string&)>& progress) {
  const std::vector<std::string> kinds = resolved_kinds(opt);
  const gen_config gen = resolved_gen(opt, kinds);

  coverage_map cov;
  std::vector<api::scripted_scenario> corpus;
  // Per-strategy coverage slices: each strategy's own bucket set and
  // new-bucket timeline, keyed by strategy name (std::map → name-sorted).
  struct strategy_accum {
    std::uint64_t executed = 0;
    std::set<std::string> buckets;
    std::vector<std::pair<std::uint64_t, std::size_t>> timeline;
  };
  std::map<std::string, strategy_accum> by_strategy;
  // Same slicing by visibility model (sc/tso/pso) — the per-model table.
  std::map<std::string, strategy_accum> by_visibility;

  // Shared on-disk corpus (multi-worker campaigns / resumed nightlies):
  // dumps we have already seen — our own or ingested — by filename.
  namespace fs = std::filesystem;
  std::set<std::string> corpus_seen;
  const bool disk_corpus = !opt.corpus_dir.empty();
  if (disk_corpus) {
    std::error_code ec;
    fs::create_directories(opt.corpus_dir, ec);  // best-effort; scan below
  }
  auto ingest_corpus = [&] {
    if (!disk_corpus) return;
    std::error_code ec;
    // Directory-sorted scan keeps ingest order deterministic per snapshot.
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(opt.corpus_dir, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      std::string name = entry.path().filename().string();
      if (name.size() < 4 || name.substr(name.size() - 4) != ".scn") continue;
      if (corpus_seen.count(name) != 0) continue;
      names.push_back(std::move(name));
    }
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      corpus_seen.insert(name);
      std::ifstream in(fs::path(opt.corpus_dir) / name);
      if (!in) continue;
      std::ostringstream buf;
      buf << in.rdbuf();
      try {
        corpus.push_back(api::parse_scenario(buf.str()));
      } catch (const std::exception&) {
        // Foreign or truncated dump (writers rename atomically, so this is
        // a hand-dropped file): skip, never poison the campaign.
      }
    }
  };
  auto dump_to_corpus = [&](const api::scripted_scenario& s,
                            std::uint64_t iter) {
    if (!disk_corpus) return;
    const std::string name = "w" + std::to_string(opt.worker_index) + "-i" +
                             std::to_string(iter) + ".scn";
    corpus_seen.insert(name);  // our own dump: never re-ingest
    const fs::path dir(opt.corpus_dir);
    const fs::path tmp = dir / ("." + name + ".tmp");
    std::ofstream out(tmp);
    if (!out) return;
    out << api::dump(s);
    out.close();
    std::error_code ec;
    fs::rename(tmp, dir / name, ec);  // atomic publish: readers see whole files
  };
  ingest_corpus();

  fuzz_stats stats;
  stats.coverage.steered = opt.steer;
  const std::uint64_t end_iteration = opt.first_iteration + opt.iterations;
  for (std::uint64_t iter = opt.first_iteration; iter < end_iteration;
       ++iter) {
    const std::uint64_t seed = iteration_seed(opt.base_seed, iter);
    const std::string& kind = kinds[iter % kinds.size()];
    if (progress) progress(iter, seed, kind);
    ++stats.iterations;
    // Cross-pollinate from sibling workers' discoveries at a coarse stride —
    // a directory scan per iteration would swamp the oracle.
    if (disk_corpus && iter != opt.first_iteration && iter % 64 == 0) {
      ingest_corpus();
    }

    // Steering stream: decorrelated from generate()'s own stream so mutating
    // and generating from the same iteration seed stay independent.
    std::uint64_t rng = (seed ^ 0xA5A5A5A5A5A5A5A5ULL) | 1;
    api::scripted_scenario s;
    bool mutated = false;
    if (opt.steer && !corpus.empty() && iter % 8 != 0) {
      // Mutate corpus seeds, preferring the candidate whose (pre-run
      // predictable) scenario-key has the fewest buckets recorded under it:
      // an unseen key wins outright, and among seen keys the one with the
      // most unexplored outcome dimensions (crash phase, recovery, checker
      // paths) is the best remaining bet.
      std::size_t best = 0;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const api::scripted_scenario& base =
            corpus[sim::next_rand(rng) % corpus.size()];
        api::scripted_scenario cand = mutate(base, rng, gen);
        const std::size_t under =
            cov.buckets_under(scenario_signature(cand).scenario_key());
        if (attempt == 0 || under < best) {
          best = under;
          s = std::move(cand);
        }
        mutated = true;
        if (best == 0) break;
      }
    } else {
      s = generate(seed, kind, gen);
    }

    api::scripted_outcome primary;
    std::string failure = check_scenario(s, opt.diff, &stats.replays, &primary,
                                         opt.placement_equiv, opt.check_jobs);
    if (failure.empty()) {
      const bucket_signature b = bucket_of(s, primary);
      if (cov.record(b)) {
        corpus.push_back(s);
        stats.coverage.corpus.push_back({iter, seed, mutated, b.key()});
        dump_to_corpus(s, iter);
      }
      strategy_accum& acc = by_strategy[b.sched];
      ++acc.executed;
      if (acc.buckets.insert(b.key()).second) {
        acc.timeline.emplace_back(cov.executed(), acc.buckets.size());
      }
      strategy_accum& vacc = by_visibility[b.vis];
      ++vacc.executed;
      if (vacc.buckets.insert(b.key()).second) {
        vacc.timeline.emplace_back(cov.executed(), vacc.buckets.size());
      }
      continue;
    }

    fuzz_failure f;
    f.iteration = iter;
    f.base_seed = opt.base_seed;
    f.seed = seed;
    f.kind = s.primary().kind;
    f.message = failure;
    f.scenario = s;
    f.shrunk = s;
    if (opt.shrink) {
      f.shrunk = shrink(s, [&](const api::scripted_scenario& c) {
        return !check_scenario(c, opt.diff, &stats.replays, nullptr,
                               opt.placement_equiv, opt.check_jobs)
                    .empty();
      });
      // Re-derive the message from the minimized scenario — it is the one
      // a human debugs first.
      std::string shrunk_msg = check_scenario(f.shrunk, opt.diff,
                                              &stats.replays, nullptr,
                                              opt.placement_equiv,
                                              opt.check_jobs);
      if (!shrunk_msg.empty()) f.message = shrunk_msg;
    }
    stats.failure = std::move(f);
    break;
  }
  stats.coverage.executed = cov.executed();
  stats.coverage.distinct_buckets = cov.distinct();
  stats.coverage.timeline = cov.timeline();
  for (const auto& [name, acc] : by_strategy) {
    stats.coverage.by_strategy.push_back(
        {name, acc.executed, acc.buckets.size(), acc.timeline});
  }
  for (const auto& [name, acc] : by_visibility) {
    stats.coverage.by_visibility.push_back(
        {name, acc.executed, acc.buckets.size(), acc.timeline});
  }
  return stats;
}

}  // namespace detect::fuzz
