// crash_torture — a verification storm: many seeds, random schedules, random
// crash placements, mixed objects, every run checked for durable
// linearizability + detectability.
//
// This is the example to copy when qualifying a new detectable object: plug
// the object and its sequential spec into the scenario and let the storm
// hunt for schedule/crash interleavings that break it. (Try it on
// base::stripped to watch the checker catch Theorem-2 violations.)
//
// Build & run:  ./build/examples/crash_torture [seeds]
#include <cstdio>
#include <cstdlib>

#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/max_register.hpp"
#include "core/rmw.hpp"
#include "core/runtime.hpp"
#include "history/checker.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) {
  using namespace detect;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 200;
  constexpr int k_procs = 3;

  int ok = 0;
  int failed = 0;
  std::uint64_t crashes_total = 0;
  std::uint64_t verdicts = 0;

  for (int seed = 1; seed <= seeds; ++seed) {
    sim::world world(k_procs);
    core::announcement_board board(k_procs, world.domain());
    hist::log log;
    core::runtime rt(world, log, board);

    core::detectable_register reg(k_procs, board, 0, world.domain());
    core::detectable_cas cas(k_procs, board, 0, world.domain());
    core::detectable_counter ctr(k_procs, board, 0, world.domain());
    core::max_register mreg(k_procs, board, world.domain());
    rt.register_object(0, reg);
    rt.register_object(1, cas);
    rt.register_object(2, ctr);
    rt.register_object(3, mreg);
    rt.set_fail_policy(seed % 2 == 0 ? core::runtime::fail_policy::retry
                                     : core::runtime::fail_policy::skip);

    rt.set_script(0, {{0, hist::opcode::reg_write, seed, 0, 0},
                      {2, hist::opcode::ctr_add, 1, 0, 0},
                      {1, hist::opcode::cas, 0, 1, 0},
                      {3, hist::opcode::max_write, seed % 17, 0, 0}});
    rt.set_script(1, {{1, hist::opcode::cas, 0, 2, 0},
                      {0, hist::opcode::reg_read, 0, 0, 0},
                      {3, hist::opcode::max_read, 0, 0, 0},
                      {2, hist::opcode::ctr_add, 2, 0, 0}});
    rt.set_script(2, {{2, hist::opcode::ctr_read, 0, 0, 0},
                      {3, hist::opcode::max_write, seed % 11, 0, 0},
                      {0, hist::opcode::reg_write, seed + 1, 0, 0},
                      {1, hist::opcode::cas_read, 0, 0, 0}});

    sim::random_scheduler sched(static_cast<std::uint64_t>(seed) * 6364136223846793005ull);
    sim::random_crashes plan(static_cast<std::uint64_t>(seed) * 1442695040888963407ull,
                             0.02, 4);
    auto report = rt.run(sched, &plan);
    crashes_total += report.crashes;
    for (const auto& e : log.snapshot()) {
      if (e.kind == hist::event_kind::recover_result) ++verdicts;
    }

    hist::multi_spec spec;
    spec.add_object(0, std::make_unique<hist::register_spec>(0));
    spec.add_object(1, std::make_unique<hist::cas_spec>(0));
    spec.add_object(2, std::make_unique<hist::counter_spec>(0));
    spec.add_object(3, std::make_unique<hist::max_register_spec>(0));
    auto check = hist::check_durable_linearizability(log.snapshot(), spec);
    if (check.ok) {
      ++ok;
    } else {
      ++failed;
      std::printf("seed %d FAILED:\n%s\n", seed, check.message.c_str());
    }
  }

  std::printf(
      "crash_torture: %d runs, %d verified, %d failed, %llu crashes, %llu "
      "recovery verdicts\n",
      seeds, ok, failed, static_cast<unsigned long long>(crashes_total),
      static_cast<unsigned long long>(verdicts));
  return failed == 0 ? 0 : 1;
}
