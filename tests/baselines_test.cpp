// Baselines: unbounded-id register/CAS correctness (they must be just as
// detectable as Algorithms 1-2 — the paper's point is their *space*, not
// their correctness), unbounded-id growth, and plain-object behaviour.
#include <gtest/gtest.h>

#include "baselines/attiya_register.hpp"
#include "baselines/bendavid_cas.hpp"
#include "baselines/plain.hpp"
#include "baselines/stripped.hpp"
#include "core/detectable_register.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario_config attiya_scenario(int nprocs,
                                std::map<int, std::vector<hist::op_desc>> scripts,
                                core::runtime::fail_policy policy =
                                    core::runtime::fail_policy::skip) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.policy = policy;
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<base::attiya_register>(nprocs, f.board, 0,
                                                           f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::register_spec(0));
  };
  return cfg;
}

scenario_config bendavid_scenario(int nprocs,
                                  std::map<int, std::vector<hist::op_desc>> scripts,
                                  core::runtime::fail_policy policy =
                                      core::runtime::fail_policy::skip) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.policy = policy;
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(
        std::make_unique<base::bendavid_cas>(nprocs, f.board, 0, f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::cas_spec(0)); };
  return cfg;
}

TEST(tag_helpers, roundtrip) {
  std::uint64_t t = base::make_tag(3, 12345);
  EXPECT_EQ(base::tag_pid(t), 3);
  EXPECT_EQ(base::tag_seq(t), 12345u);
  EXPECT_NE(t, 0u) << "tags must not collide with the initial tag 0";
}

TEST(attiya_register, sequential) {
  auto cfg = attiya_scenario(
      1, {{0, {op_write(5), op_read(), op_write(7), op_read()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(attiya_register, concurrent_seeds) {
  auto cfg = attiya_scenario(3, {
                                    {0, {op_write(1), op_write(2)}},
                                    {1, {op_write(3), op_read()}},
                                    {2, {op_read(), op_read()}},
                                });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(attiya_register, crash_sweep) {
  auto cfg = attiya_scenario(2, {
                                    {0, {op_write(1), op_write(2)}},
                                    {1, {op_write(5), op_read()}},
                                });
  crash_sweep(cfg, 3);
}

TEST(attiya_register, crash_fuzz_retry) {
  auto cfg = attiya_scenario(2,
                             {
                                 {0, {op_write(1), op_write(2)}},
                                 {1, {op_write(5), op_read()}},
                             },
                             core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 120, 2);
}

TEST(attiya_register, ids_grow_without_bound) {
  sim_fixture f(2);
  base::attiya_register reg(2, f.board, 0, f.w.domain());
  f.rt.register_object(0, reg);
  f.rt.set_script(0, {op_write(1), op_write(2), op_write(3)});
  f.rt.set_script(1, {op_write(4), op_write(5)});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  EXPECT_EQ(reg.ids_minted(), 5u) << "one fresh id per write";
}

TEST(bendavid_cas, sequential) {
  auto cfg = bendavid_scenario(
      1, {{0, {op_cas(0, 1), op_cas(0, 2), op_cas(1, 2), op_cas_read()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(bendavid_cas, contended_seeds) {
  auto cfg = bendavid_scenario(2, {
                                      {0, {op_cas(0, 1), op_cas(1, 0)}},
                                      {1, {op_cas(0, 2), op_cas_read()}},
                                  });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(bendavid_cas, crash_sweep) {
  auto cfg = bendavid_scenario(2, {
                                      {0, {op_cas(0, 1), op_cas(1, 0)}},
                                      {1, {op_cas(0, 2), op_cas_read()}},
                                  });
  crash_sweep(cfg, 5);
}

TEST(bendavid_cas, aba_cycle_fuzz) {
  auto cfg = bendavid_scenario(2, {
                                      {0, {op_cas(0, 1), op_cas(0, 1)}},
                                      {1, {op_cas(1, 0), op_cas(1, 0)}},
                                  });
  crash_fuzz(cfg, 120, 2);
}

TEST(bendavid_cas, ids_grow_without_bound) {
  sim_fixture f(2);
  base::bendavid_cas cas(2, f.board, 0, f.w.domain());
  f.rt.register_object(0, cas);
  f.rt.set_script(0, {op_cas(0, 1), op_cas(1, 2)});
  f.rt.set_script(1, {op_cas(0, 5)});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  EXPECT_EQ(cas.ids_minted(), 3u) << "one fresh id per CAS operation";
}

TEST(plain_objects, correct_without_crashes) {
  scenario_config cfg;
  cfg.nprocs = 2;
  cfg.scripts = {{0, {op_write(1), op_read()}}, {1, {op_write(2), op_read()}}};
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<base::plain_register>(0, f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::register_spec(0));
  };
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << out.check.message;
  }
}

TEST(plain_objects, cas_and_counter_sequential) {
  sim_fixture f(1);
  base::plain_cas cas(0, f.w.domain());
  base::plain_counter ctr(0, f.w.domain());
  f.rt.register_object(0, cas);
  f.rt.register_object(1, ctr);
  f.rt.set_script(0, {op_cas(0, 1), op_cas_read(0), op_add(5, 1), op_ctr_read(1)});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  hist::multi_spec spec;
  spec.add_object(0, std::make_unique<hist::cas_spec>(0));
  spec.add_object(1, std::make_unique<hist::counter_spec>(0));
  auto r = hist::check_durable_linearizability(f.lg.snapshot(), spec);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(plain_objects, recovery_is_undetectable) {
  sim_fixture f(1);
  base::plain_register reg(0, f.w.domain());
  auto rr = reg.recover(0, op_write(1));
  EXPECT_EQ(rr.verdict, hist::recovery_verdict::fail)
      << "plain objects cannot detect";
}

TEST(stripped_wrapper, forwards_but_disables_aux) {
  sim_fixture f(2);
  core::detectable_register reg(2, f.board, 0, f.w.domain());
  base::stripped s(reg);
  EXPECT_FALSE(s.wants_aux_reset());
  f.rt.register_object(0, s);
  f.rt.set_script(0, {op_write(3), op_read()});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  auto r = hist::check_durable_linearizability(f.lg.snapshot(),
                                               hist::register_spec(0));
  EXPECT_TRUE(r.ok) << "without crashes the stripped object behaves normally:\n"
                    << r.message;
}

}  // namespace
