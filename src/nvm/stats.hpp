// Instruction accounting for the emulated NVM: how many loads, stores, CAS,
// flushes and fences a run issued. Used by the persistency-cost experiment
// (E7) and by the step-bound experiment (E5).
#pragma once

#include <atomic>
#include <cstdint>

namespace detect::nvm {

/// Plain (copyable) snapshot of the counters.
struct stats_snapshot {
  std::uint64_t shared_loads = 0;
  std::uint64_t shared_stores = 0;
  std::uint64_t shared_cas = 0;
  std::uint64_t shared_exchanges = 0;
  std::uint64_t private_loads = 0;
  std::uint64_t private_stores = 0;
  std::uint64_t flushes = 0;
  std::uint64_t fences = 0;
  std::uint64_t crashes = 0;

  std::uint64_t shared_total() const noexcept {
    return shared_loads + shared_stores + shared_cas + shared_exchanges;
  }
  std::uint64_t persist_total() const noexcept { return flushes + fences; }

  friend stats_snapshot operator-(stats_snapshot a, const stats_snapshot& b) {
    a.shared_loads -= b.shared_loads;
    a.shared_stores -= b.shared_stores;
    a.shared_cas -= b.shared_cas;
    a.shared_exchanges -= b.shared_exchanges;
    a.private_loads -= b.private_loads;
    a.private_stores -= b.private_stores;
    a.flushes -= b.flushes;
    a.fences -= b.fences;
    a.crashes -= b.crashes;
    return a;
  }
};

/// Concurrent counters (relaxed atomics: counts only, no synchronization
/// role).
class stats {
 public:
  void add_shared_load() noexcept { bump(shared_loads_); }
  void add_shared_store() noexcept { bump(shared_stores_); }
  void add_shared_cas() noexcept { bump(shared_cas_); }
  void add_shared_exchange() noexcept { bump(shared_exchanges_); }
  void add_private_load() noexcept { bump(private_loads_); }
  void add_private_store() noexcept { bump(private_stores_); }
  void add_flush() noexcept { bump(flushes_); }
  void add_fence() noexcept { bump(fences_); }
  void add_crash() noexcept { bump(crashes_); }

  stats_snapshot snapshot() const noexcept {
    stats_snapshot s;
    s.shared_loads = shared_loads_.load(std::memory_order_relaxed);
    s.shared_stores = shared_stores_.load(std::memory_order_relaxed);
    s.shared_cas = shared_cas_.load(std::memory_order_relaxed);
    s.shared_exchanges = shared_exchanges_.load(std::memory_order_relaxed);
    s.private_loads = private_loads_.load(std::memory_order_relaxed);
    s.private_stores = private_stores_.load(std::memory_order_relaxed);
    s.flushes = flushes_.load(std::memory_order_relaxed);
    s.fences = fences_.load(std::memory_order_relaxed);
    s.crashes = crashes_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    shared_loads_ = 0;
    shared_stores_ = 0;
    shared_cas_ = 0;
    shared_exchanges_ = 0;
    private_loads_ = 0;
    private_stores_ = 0;
    flushes_ = 0;
    fences_ = 0;
    crashes_ = 0;
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> shared_loads_{0};
  std::atomic<std::uint64_t> shared_stores_{0};
  std::atomic<std::uint64_t> shared_cas_{0};
  std::atomic<std::uint64_t> shared_exchanges_{0};
  std::atomic<std::uint64_t> private_loads_{0};
  std::atomic<std::uint64_t> private_stores_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> fences_{0};
  std::atomic<std::uint64_t> crashes_{0};
};

}  // namespace detect::nvm
