// fuzzer — the campaign engine tying generator, differ, and shrinker
// together.
//
// One iteration: derive the iteration seed, pick a kind (round-robin over
// the configured kind list), synthesize a scenario, replay it under the
// durable-linearizability + detectability oracle, then differentially
// replay it against every registered variant of the kind. The first failing
// iteration stops the campaign; its scenario is greedily shrunk under the
// same oracle and reported as seed + original dump + shrunk dump — the
// artifact CI uploads and `fuzz_main --replay` reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/differ.hpp"
#include "fuzz/scenario_gen.hpp"
#include "fuzz/shrinker.hpp"

namespace detect::fuzz {

struct fuzz_options {
  std::uint64_t base_seed = 1;
  std::uint64_t iterations = 100;
  /// Kinds to fuzz; empty → every registry kind (non-detectable kinds get
  /// crash-free scenarios, see scenario_gen).
  std::vector<std::string> kinds;
  gen_config gen;
  /// Differentially replay against each kind's variants.
  bool diff = true;
  /// Shrink the first failing scenario before reporting it.
  bool shrink = true;
};

struct fuzz_failure {
  std::uint64_t iteration = 0;
  std::uint64_t base_seed = 0;  // the campaign's --seed
  std::uint64_t seed = 0;       // iteration_seed(base_seed, iteration)
  std::string kind;
  std::string message;
  api::scripted_scenario scenario;
  api::scripted_scenario shrunk;  // == scenario when shrinking is off

  /// The replayable artifact: metadata + both dumps, one parseable block.
  std::string to_artifact() const;
};

struct fuzz_stats {
  std::uint64_t iterations = 0;  // iterations actually executed
  std::uint64_t replays = 0;     // scenario replays incl. diff + shrink
  std::optional<fuzz_failure> failure;
};

/// Run a fuzz campaign. Stops at the first failure (after shrinking it) or
/// after `opt.iterations` iterations. `progress`, if set, is called before
/// each iteration with (iteration, seed, kind).
fuzz_stats run_fuzz(
    const fuzz_options& opt,
    const std::function<void(std::uint64_t, std::uint64_t,
                             const std::string&)>& progress = nullptr);

/// One fuzz iteration against one kind; returns the failure message (empty
/// on success) and bumps `*replays` per scenario replay performed.
std::string fuzz_one(std::uint64_t seed, const std::string& kind,
                     const fuzz_options& opt, std::uint64_t* replays);

}  // namespace detect::fuzz
