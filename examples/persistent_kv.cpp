// persistent_kv — a small crash-safe key-value store built from detectable
// registers (one Algorithm-1 register per key).
//
// The scenario the paper's introduction motivates: clients on a machine with
// NVM issue updates; power fails mid-operation; on reboot each client must
// know whether its update took effect before deciding to retry — *without*
// replaying a log. Detectability gives exactly that: the recovery function
// returns the operation's response if it was linearized and `fail` if it is
// safe to consider it never executed.
//
// Build & run:  ./build/persistent_kv
#include <cstdio>
#include <vector>

#include "api/api.hpp"

namespace {

constexpr int k_clients = 3;
constexpr int k_keys = 4;

}  // namespace

int main() {
  using namespace detect;

  // A client whose put is reported `fail` retries it (NRL-style); simulated
  // power failures strike with ~2% probability before every memory step.
  auto h = api::harness::builder()
               .procs(k_clients)
               .fail_policy(core::runtime::fail_policy::retry)
               .seed(7)
               .crash_random(99, 0.02, 5)
               .build();

  // The store: one detectable register per key, all in emulated NVM.
  std::vector<api::reg> store;
  for (int k = 0; k < k_keys; ++k) store.push_back(h.add_reg());
  auto put = [&](int key, hist::value_t v) { return store[key].write(v); };
  auto get = [&](int key) { return store[key].read(); };

  h.script(0, {put(0, 100), put(1, 101), get(0), put(2, 102)});
  h.script(1, {put(1, 201), get(1), put(3, 203), get(2)});
  h.script(2, {get(3), put(0, 300), get(1), put(3, 303)});

  auto report = h.run();

  std::printf("persistent_kv: %llu steps, %llu power failures\n",
              static_cast<unsigned long long>(report.steps),
              static_cast<unsigned long long>(report.crashes));

  // Summarize recovery decisions.
  int recovered_done = 0;
  int recovered_retry = 0;
  for (const auto& e : h.events()) {
    if (e.kind != hist::event_kind::recover_result) continue;
    if (e.verdict == hist::recovery_verdict::linearized) {
      ++recovered_done;
      std::printf("  client %d: %s HAD completed (response %lld)\n", e.pid,
                  e.desc.to_string().c_str(), static_cast<long long>(e.value));
    } else {
      ++recovered_retry;
      std::printf("  client %d: %s had NOT executed -> retried\n", e.pid,
                  e.desc.to_string().c_str());
    }
  }
  std::printf("recoveries: %d already-linearized, %d safely-retried\n",
              recovered_done, recovered_retry);

  // Final store contents (direct peek, outside the simulation).
  std::printf("final store: ");
  for (int k = 0; k < k_keys; ++k) {
    hist::op_desc rd = get(k);
    rd.client_seq = 1000 + static_cast<std::uint64_t>(k);
    // Sequential read by "client 0" after the run; no concurrency left.
    h.board().of(0).resp.store(hist::k_bottom);
    std::printf("k%d=%lld ", k,
                static_cast<long long>(store[k].object().invoke(0, rd)));
  }
  std::printf("\n");

  auto check = h.check();
  std::printf("history verified: %s\n", check.ok ? "YES" : "NO");
  if (!check.ok) std::printf("%s\n", check.message.c_str());
  return check.ok ? 0 : 1;
}
