// detect::api::executor — pluggable execution backends behind one interface.
//
// An executor runs scripted workloads over registry objects and hands back a
// checkable history; which machinery executes them is a builder policy:
//
//   auto ex = api::executor::builder()
//                 .backend(api::exec_backend::sharded)
//                 .shards(4)
//                 .procs(8)
//                 .seed(42)
//                 .build();
//   auto c0 = ex->add_counter();
//   auto c1 = ex->add_counter();
//   ex->script(0, {c0.add(1), c1.add(1)});
//   auto report = ex->run();
//   auto check = ex->check();   // per-object durable linearizability
//
// Backends:
//   single   one sim::world driven by one harness — exactly today's harness
//            semantics, behavior-preserving.
//   sharded  K independent sim::world/core::runtime shards; objects route by
//            the builder's placement policy (modulo/hash/range/pinned — see
//            api/placement.hpp; default is the historical id % K), scripts
//            split per shard preserving each process's per-shard program
//            order, shards run on parallel driver threads (each world is
//            deterministic in isolation, so replays stay bit-reproducible),
//            and the per-shard event logs merge into one hist::log by the
//            stable order (run, shard-local index, shard). Between runs,
//            migrate(id, shard) transplants an object to another world
//            through its persistent NVM image and rebalance(policy) migrates
//            everything to a new policy's assignment — the per-object
//            histories stay checkable across moves.
//   threads  free-running real threads over the emulated NVM domain (the
//            arena path): no simulator, no crashes, nondeterministic
//            schedules — post-hoc per-object linearizability checking makes
//            it a lincheck-style stress driver on real cores.
//
// `check()` always uses per-object decomposition (one linearization per
// object, never a product spec): the paper's objects are per-object
// detectable and linearizability is compositional, so the verdict is the
// same while the search space collapses from a product to a sum. On the
// sharded backend the decomposition is also what makes checking *possible*:
// a process's ops on different shards overlap in the merged log, which only
// per-object projection (each object lives in exactly one shard) untangles.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "api/harness.hpp"
#include "api/placement.hpp"

namespace detect::api {

enum class exec_backend : std::uint8_t { single, sharded, threads };

const char* backend_name(exec_backend b) noexcept;
/// Inverse of backend_name(). Throws std::invalid_argument on unknown names.
exec_backend backend_from_name(const std::string& name);

/// Everything a backend needs to build itself — the builder's output and the
/// one value scripted replays serialize.
struct exec_policy {
  exec_backend backend = exec_backend::single;
  int shards = 1;  // sharded backend: number of sim::world shards
  /// Sharded backend: which shard hosts each object (see api/placement.hpp).
  placement_policy placement;
  /// Sharded backend: driver-pool size for parallel shard runs. 0 = auto
  /// (min(shards, hardware cores), inline below 2 workers). An explicit
  /// value wins over auto AND over the DETECT_POOL_THREADS env override;
  /// 1 means "run shards sequentially inline" (one worker would only add
  /// handoff latency over the submitter's own loop).
  int pool_threads = 0;
  int nprocs = 2;
  core::runtime::fail_policy fail = core::runtime::fail_policy::skip;
  bool shared_cache = false;
  bool auto_persist = true;
  /// Persistency-visibility model (strict / buffered; see nvm::persist_model).
  nvm::persist_model persist = nvm::persist_model::strict;
  sim::world_config wcfg;
  std::optional<std::uint64_t> sched_seed;  // nullopt → round robin
  /// Schedule-exploration strategy `sched_seed` drives (see detect::sched).
  sched::sched_policy sched;
  std::vector<std::uint64_t> crash_steps;
  std::optional<std::tuple<std::uint64_t, double, std::uint64_t>> crash_random;
};

class executor {
 public:
  class builder;

  virtual ~executor() = default;

  virtual exec_backend backend() const noexcept = 0;
  virtual int nprocs() const noexcept = 0;
  /// Shard count (1 off the sharded backend).
  virtual int shards() const noexcept = 0;
  /// Which shard hosts `object_id` (0 off the sharded backend). For hosted
  /// objects this is the *current* home — migrations move it; for ids not
  /// added yet it is the placement policy's prediction for the next
  /// declaration.
  virtual int shard_of(std::uint32_t object_id) const noexcept = 0;
  /// The active placement policy (modulo off the sharded backend).
  virtual const placement_policy& placement() const noexcept = 0;
  /// Driver-pool workers actually running shard batches (0 = inline on the
  /// submitting thread; always 0 off the sharded backend). See
  /// builder::pool_threads().
  virtual int pool_workers() const noexcept = 0;
  /// The current object→shard assignment as a pinned placement policy
  /// (sharded backend; trivially empty elsewhere). After migrations this is
  /// the ground truth the builder's policy no longer describes — feed it to
  /// rebalance() on a fresh executor to reproduce the layout.
  virtual placement_policy current_assignment() const = 0;

  // ---- object creation -----------------------------------------------------

  /// Instantiate a registry kind under a fresh globally-unique id, routed to
  /// its shard on the sharded backend.
  virtual object_handle add(const std::string& kind,
                            const object_params& params = {}) = 0;

  /// Same, under a caller-chosen id (fresh per the backend's duplicate
  /// check). Scenario replays use this to honor the object ids a
  /// scripted_scenario declares — on the sharded backend the id decides the
  /// hosting shard (`id % shards()`), so a scenario's routing is part of its
  /// identity, not an accident of creation order.
  virtual object_handle add_as(std::uint32_t id, const std::string& kind,
                               const object_params& params = {}) = 0;

  reg add_reg(value_t init = 0) { return reg(add("reg", {.init = init})); }
  cas add_cas(value_t init = 0) { return cas(add("cas", {.init = init})); }
  counter add_counter(value_t init = 0) {
    return counter(add("counter", {.init = init}));
  }
  swap_reg add_swap(value_t init = 0) {
    return swap_reg(add("swap", {.init = init}));
  }
  tas add_tas() { return tas(add("tas")); }
  queue add_queue(std::size_t capacity = 64) {
    return queue(add("queue", {.capacity = capacity}));
  }
  stack add_stack(std::size_t capacity = 64) {
    return stack(add("stack", {.capacity = capacity}));
  }
  max_reg add_max_reg() { return max_reg(add("max_reg")); }
  lock add_lock() { return lock(add("lock")); }

  // ---- scripting & running -------------------------------------------------

  /// Install `pid`'s script (ops may target objects on any shard; the
  /// sharded backend splits them preserving per-shard program order).
  /// Calling script() again after run() *appends* to the process's program:
  /// the next run() executes only the newly scheduled ops — the multi-round
  /// workload shape migration scenarios use (run, migrate, run again).
  virtual void script(int pid, std::vector<hist::op_desc> ops) = 0;

  /// Drive every script to completion under the configured policy. Fresh
  /// scheduler/crash-plan instances per call keep runs reproducible.
  virtual sim::run_report run() = 0;

  /// Reseed the random crash plan for subsequent run() calls (no-op without
  /// one — including always on the threads backend, which rejects crash
  /// plans at build time). The sharded backend decorrelates its shards by
  /// mixing the shard index into the seed. Multi-round drivers (serve) call
  /// this per round so crash points vary while staying deterministic.
  virtual void reseed_crashes(std::uint64_t seed) = 0;

  // ---- live migration (sharded backend only) --------------------------------

  /// Transplant `object_id` to `shard`, between runs: the object's
  /// base-object state and detectability metadata move to the target world's
  /// runtime through the persistent (NVM) representation, and its history
  /// carries over so check() stays sound across the move. A no-op when the
  /// object already lives on `shard`. Throws std::invalid_argument off the
  /// sharded backend, for unknown ids, out-of-range shards, or an object
  /// with an announced-but-unrecovered operation.
  virtual void migrate(std::uint32_t object_id, int shard) = 0;

  /// Adopt `policy` (validated against shards()) and migrate every hosted
  /// object to its assignment, preserving each object's original declaration
  /// index. Returns the number of objects that actually moved. Future add()
  /// calls route by the new policy.
  virtual int rebalance(const placement_policy& policy) = 0;

  // ---- history & verification ---------------------------------------------

  /// The recorded history. Sharded: per-shard logs merged by the stable
  /// global order (run, then shard-local index, then shard id) — each
  /// shard's log is a subsequence, runs stay chronological, so per-object
  /// real-time order is intact.
  virtual std::vector<hist::event> events() const = 0;

  /// Durable linearizability + detectability via per-object decomposition.
  /// All knobs ride in one hist::check_options: the node budget, an optional
  /// shared sub-check memo (the differ threads one across a scenario's
  /// variant replays so identical object streams linearize once), and the
  /// per-object fan-out (`jobs`) — verdicts, messages, and node counts are
  /// byte-identical for every jobs value (see docs/checking.md).
  virtual hist::check_result check(
      const hist::check_options& opt = {}) const = 0;

  /// Deprecated pre-check_options form (thin shim; prefer check(options)).
  hist::check_result check(std::size_t node_budget,
                           hist::lin_memo* memo = nullptr) const {
    hist::check_options opt;
    opt.node_budget = node_budget;
    opt.memo = memo;
    return check(opt);
  }

  std::string log_text() const;
};

class executor::builder {
 public:
  builder& backend(exec_backend b) {
    pol_.backend = b;
    return *this;
  }
  /// Shard count for the sharded backend. build() rejects shards > 1 on the
  /// other backends — they run exactly one world.
  builder& shards(int k) {
    pol_.shards = k;
    return *this;
  }
  /// Shard-placement policy for the sharded backend (default: modulo, the
  /// historical id % K routing). Pinned maps are validated against the shard
  /// count at build() time.
  builder& placement(placement_policy p) {
    pol_.placement = std::move(p);
    return *this;
  }
  /// Driver-pool size for the sharded backend: how many OS threads drive
  /// shard batches in parallel. 0 (default) = auto-size to
  /// min(shards, hardware cores); 1 = inline sequential; the
  /// DETECT_POOL_THREADS environment variable overrides the auto choice
  /// only, so one-core CI and multi-core hosts bench the same binary.
  /// build() rejects negative values and any explicit value off the sharded
  /// backend.
  builder& pool_threads(int n) {
    pol_.pool_threads = n;
    return *this;
  }
  builder& procs(int n) {
    pol_.nprocs = n;
    return *this;
  }
  builder& max_steps(std::uint64_t n) {
    pol_.wcfg.max_steps = n;
    return *this;
  }
  builder& fail_policy(core::runtime::fail_policy p) {
    pol_.fail = p;
    return *this;
  }
  /// Strand engine for the simulated worlds (fiber or thread; see
  /// sim/strand.hpp). Default: the process-global sim::default_engine().
  builder& engine(sim::engine_kind e) {
    pol_.wcfg.engine = e;
    return *this;
  }
  /// Seeded random scheduler for run(); default is round robin.
  builder& seed(std::uint64_t s) {
    pol_.sched_seed = s;
    return *this;
  }
  /// Schedule-exploration strategy the seed drives: round_robin,
  /// uniform_random (default), or pct with explicit preemption points.
  builder& schedule(sched::sched_policy p) {
    pol_.sched = std::move(p);
    return *this;
  }
  /// Persistency-visibility model. Default strict; buffered makes stores
  /// crash-persistent only at flush/epoch boundaries.
  builder& persist(nvm::persist_model m) {
    pol_.persist = m;
    return *this;
  }
  /// Store-buffer visibility model between live processes (sc / tso / pso;
  /// see wmm::visibility_model). Default sc. Orthogonal to persist():
  /// buffered stores drain before they persist or journal. build() rejects
  /// tso/pso on the threads backend (store buffers need the simulated
  /// world's step token).
  builder& visibility(wmm::visibility_model m) {
    pol_.wcfg.visibility = m;
    return *this;
  }
  /// Scripted full-drain steps under tso/pso, keyed on the (shard-local)
  /// step counter like crash_at (see sim::world_config::drain_points).
  builder& drain_at(std::vector<std::uint64_t> steps) {
    pol_.wcfg.drain_points = std::move(steps);
    return *this;
  }
  /// Crash when the (shard-local) step counter hits each listed value.
  builder& crash_at(std::vector<std::uint64_t> steps) {
    pol_.crash_steps = std::move(steps);
    return *this;
  }
  /// Crash with probability `rate` before each step, at most `max` times.
  builder& crash_random(std::uint64_t s, double rate, std::uint64_t max) {
    pol_.crash_random = {s, rate, max};
    return *this;
  }
  /// Shared-cache memory model; `auto_persist` applies the §6 syntactic
  /// flush/fence transformation to every shared access.
  builder& shared_cache(bool auto_persist = true) {
    pol_.shared_cache = true;
    pol_.auto_persist = auto_persist;
    return *this;
  }

  std::unique_ptr<executor> build() const;

 private:
  exec_policy pol_;
};

/// Instantiate the backend `p` selects. Throws std::invalid_argument on
/// nonsensical policies: shards < 1, shards > 1 on a non-sharded backend,
/// pinned placement maps naming out-of-range shards, or crash/shared-cache
/// plans on the threads backend (which cannot deliver simulated crashes);
/// likewise non-default schedule strategies, buffered persistency, or a
/// tso/pso visibility model on the threads backend (all need the simulated
/// world).
std::unique_ptr<executor> make_executor(const exec_policy& p);

}  // namespace detect::api
