// Unit tests for the emulated persistent memory layer: cell semantics, the
// two cache models, crash reversion, persist accounting, and the node pool.
#include <gtest/gtest.h>

#include "nvm/pcell.hpp"
#include "nvm/pmem.hpp"
#include "nvm/pool.hpp"
#include "nvm/pvar.hpp"

namespace {

using namespace detect;

TEST(pcell, load_store_roundtrip) {
  nvm::pmem_domain dom;
  nvm::pcell<int> c(7, dom);
  EXPECT_EQ(c.load(), 7);
  c.store(42);
  EXPECT_EQ(c.load(), 42);
}

TEST(pcell, compare_exchange_success_and_failure) {
  nvm::pmem_domain dom;
  nvm::pcell<int> c(1, dom);
  int expect = 1;
  EXPECT_TRUE(c.compare_exchange(expect, 2));
  EXPECT_EQ(c.load(), 2);
  expect = 1;  // stale
  EXPECT_FALSE(c.compare_exchange(expect, 3));
  EXPECT_EQ(expect, 2) << "failed CAS must refresh expected";
  EXPECT_EQ(c.load(), 2);
}

TEST(pcell, exchange_returns_old) {
  nvm::pmem_domain dom;
  nvm::pcell<int> c(5, dom);
  EXPECT_EQ(c.exchange(9), 5);
  EXPECT_EQ(c.load(), 9);
}

TEST(pcell, private_cache_survives_crash) {
  nvm::pmem_domain dom;
  dom.set_model(nvm::cache_model::private_cache);
  nvm::pcell<int> c(0, dom);
  c.store(123);
  dom.crash_reset();
  EXPECT_EQ(c.load(), 123) << "private-cache stores persist immediately";
}

TEST(pcell, shared_cache_unflushed_store_lost_on_crash) {
  nvm::pmem_domain dom;
  dom.set_model(nvm::cache_model::shared_cache);
  nvm::pcell<int> c(1, dom);
  c.store(2);  // cached, not persisted
  dom.crash_reset();
  EXPECT_EQ(c.load(), 1) << "unflushed store must revert";
}

TEST(pcell, shared_cache_flushed_store_survives_crash) {
  nvm::pmem_domain dom;
  dom.set_model(nvm::cache_model::shared_cache);
  nvm::pcell<int> c(1, dom);
  c.store(2);
  c.flush();
  dom.crash_reset();
  EXPECT_EQ(c.load(), 2);
}

TEST(pcell, shared_cache_auto_persist_behaves_like_private) {
  nvm::pmem_domain dom;
  dom.set_model(nvm::cache_model::shared_cache);
  dom.set_auto_persist(true);
  nvm::pcell<int> c(0, dom);
  c.store(7);
  dom.crash_reset();
  EXPECT_EQ(c.load(), 7) << "the Izraelevitz transform persists every store";
}

TEST(pcell, auto_persist_counts_flushes_and_fences) {
  nvm::pmem_domain dom;
  dom.set_model(nvm::cache_model::shared_cache);
  dom.set_auto_persist(true);
  nvm::pcell<int> c(0, dom);
  dom.counters().reset();
  c.store(1);
  c.load();
  auto s = dom.counters().snapshot();
  EXPECT_EQ(s.shared_stores, 1u);
  EXPECT_EQ(s.shared_loads, 1u);
  EXPECT_EQ(s.flushes, 2u) << "store flush + read-side flush";
  EXPECT_EQ(s.fences, 2u);
}

TEST(pcell, private_cache_counts_no_persist_instructions) {
  nvm::pmem_domain dom;
  nvm::pcell<int> c(0, dom);
  dom.counters().reset();
  c.store(1);
  c.load();
  auto s = dom.counters().snapshot();
  EXPECT_EQ(s.flushes, 0u);
  EXPECT_EQ(s.fences, 0u);
}

TEST(pcell, crash_counts) {
  nvm::pmem_domain dom;
  dom.crash_reset();
  dom.crash_reset();
  EXPECT_EQ(dom.counters().snapshot().crashes, 2u);
}

struct wide {
  std::int64_t a;
  std::uint64_t b;
  friend bool operator==(const wide&, const wide&) = default;
};

TEST(pcell, sixteen_byte_cells_work) {
  nvm::pmem_domain dom;
  nvm::pcell<wide> c(wide{1, 2}, dom);
  wide expect{1, 2};
  EXPECT_TRUE(c.compare_exchange(expect, wide{3, 4}));
  EXPECT_EQ(c.load(), (wide{3, 4}));
}

TEST(pvar, store_load_and_crash_semantics) {
  nvm::pmem_domain dom;
  dom.set_model(nvm::cache_model::shared_cache);
  nvm::pvar<int> v(10, dom);
  v.store(20);
  dom.crash_reset();
  EXPECT_EQ(v.load(), 10) << "unflushed private store lost in shared-cache";
  v.store(30);
  v.flush();
  dom.crash_reset();
  EXPECT_EQ(v.load(), 30);
}

TEST(pvar, struct_payload) {
  struct rd {
    std::uint8_t a;
    std::uint64_t b;
  };
  nvm::pmem_domain dom;
  nvm::pvar<rd> v(rd{0, 0}, dom);
  v.store(rd{3, 99});
  EXPECT_EQ(v.load().a, 3);
  EXPECT_EQ(v.load().b, 99u);
}

TEST(pmem_domain, persist_all_checkpoints_everything) {
  nvm::pmem_domain dom;
  dom.set_model(nvm::cache_model::shared_cache);
  nvm::pcell<int> a(0, dom);
  nvm::pcell<int> b(0, dom);
  a.store(1);
  b.store(2);
  dom.persist_all();
  dom.crash_reset();
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
}

TEST(pmem_domain, detach_on_destruction) {
  nvm::pmem_domain dom;
  {
    nvm::pcell<int> tmp(5, dom);
    tmp.store(6);
  }
  dom.crash_reset();  // must not touch the destroyed cell
  nvm::pcell<int> again(8, dom);
  EXPECT_EQ(again.load(), 8);
}

TEST(pmem_pool, allocate_and_access) {
  nvm::pmem_domain dom;
  struct node {
    explicit node(nvm::pmem_domain& d) : v(0, d) {}
    nvm::pcell<int> v;
  };
  nvm::pmem_pool<node> pool(4, dom);
  std::uint32_t a = pool.allocate();
  std::uint32_t b = pool.allocate();
  EXPECT_NE(a, b);
  pool.at(a).v.store(11);
  pool.at(b).v.store(22);
  EXPECT_EQ(pool.at(a).v.load(), 11);
  EXPECT_EQ(pool.at(b).v.load(), 22);
  EXPECT_EQ(pool.allocated(), 2u);
}

TEST(pmem_pool, exhaustion_throws) {
  nvm::pmem_domain dom;
  struct node {
    explicit node(nvm::pmem_domain& d) : v(0, d) {}
    nvm::pcell<int> v;
  };
  nvm::pmem_pool<node> pool(1, dom);
  pool.allocate();
  EXPECT_THROW(pool.allocate(), std::runtime_error);
}

TEST(pmem_pool, frontier_survives_private_cache_crash) {
  nvm::pmem_domain dom;
  struct node {
    explicit node(nvm::pmem_domain& d) : v(0, d) {}
    nvm::pcell<int> v;
  };
  nvm::pmem_pool<node> pool(8, dom);
  pool.allocate();
  pool.allocate();
  dom.crash_reset();
  EXPECT_EQ(pool.allocated(), 2u) << "allocation frontier is persistent";
}

TEST(stats, snapshot_subtraction) {
  nvm::stats s;
  s.add_shared_load();
  auto before = s.snapshot();
  s.add_shared_load();
  s.add_flush();
  auto delta = s.snapshot() - before;
  EXPECT_EQ(delta.shared_loads, 1u);
  EXPECT_EQ(delta.flushes, 1u);
}

}  // namespace
