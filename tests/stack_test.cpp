// Detectable durable stack (Algorithm 2's flip vector on the head pointer).
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario stack_scenario(int nprocs,
                        std::function<scripts(api::stack)> make_scripts,
                        core::runtime::fail_policy policy =
                            core::runtime::fail_policy::skip) {
  return one_object<api::stack>("stack", nprocs, std::move(make_scripts),
                                policy);
}

TEST(detectable_stack, sequential_lifo) {
  auto cfg = stack_scenario(1, [](api::stack s) {
    return scripts{{0, {s.push(1), s.push(2), s.pop(), s.pop(), s.pop()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_stack, empty_pop) {
  auto cfg = stack_scenario(1, [](api::stack s) {
    return scripts{{0, {s.pop(), s.push(5), s.pop(), s.pop()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_stack, rejects_too_many_processes) {
  api::arena a(33);
  EXPECT_THROW(core::detectable_stack(33, a.board(), 8, a.domain()),
               std::invalid_argument);
}

TEST(detectable_stack, concurrent_push_pop_many_seeds) {
  auto cfg = stack_scenario(3, [](api::stack s) {
    return scripts{
        {0, {s.push(1), s.push(2)}},
        {1, {s.pop(), s.push(3)}},
        {2, {s.pop(), s.pop()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_stack, mid_stack_pop_is_impossible) {
  // Regression guard for the LIFO race: a pop that read an old head must not
  // linearize against a deeper node once pushes landed above it. The packed
  // head-CAS makes the stale attempt fail; the spec check would flag any
  // violation across seeds.
  auto cfg = stack_scenario(3, [](api::stack s) {
    return scripts{
        {0, {s.push(1), s.push(2), s.push(3)}},
        {1, {s.pop(), s.pop()}},
        {2, {s.push(9), s.pop()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_stack, crash_sweep_push) {
  auto cfg = stack_scenario(2, [](api::stack s) {
    return scripts{
        {0, {s.push(1), s.push(2)}},
        {1, {s.pop()}},
    };
  });
  crash_sweep(cfg, 3);
}

TEST(detectable_stack, crash_sweep_pop) {
  auto cfg = stack_scenario(2, [](api::stack s) {
    return scripts{
        {0, {s.push(1), s.pop()}},
        {1, {s.pop()}},
    };
  });
  crash_sweep(cfg, 7);
}

TEST(detectable_stack, crash_pair_sweep) {
  auto cfg = stack_scenario(2,
                            [](api::stack s) {
                              return scripts{
                                  {0, {s.push(1), s.pop()}},
                                  {1, {s.push(2)}},
                              };
                            },
                            core::runtime::fail_policy::retry);
  crash_pair_sweep(cfg, 11, /*stride=*/3);
}

TEST(detectable_stack, crash_fuzz_retry_exactly_once) {
  auto cfg = stack_scenario(3,
                            [](api::stack s) {
                              return scripts{
                                  {0, {s.push(1), s.push(2)}},
                                  {1, {s.pop(), s.push(3)}},
                                  {2, {s.pop(), s.pop()}},
                              };
                            },
                            core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 150, 2);
}

TEST(detectable_stack, pop_recovery_returns_persisted_value) {
  // Crash a pop at every step; whenever recovery says linearized, the value
  // must match what the spec expects — covered by the checker; additionally
  // no run may lose or duplicate the single pushed value.
  auto cfg = stack_scenario(2,
                            [](api::stack s) {
                              return scripts{
                                  {0, {s.push(42), s.pop()}},
                                  {1, {s.pop()}},
                              };
                            },
                            core::runtime::fail_policy::retry);
  crash_sweep(cfg, 19);
}

class stack_property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(stack_property, lifo_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = stack_scenario(2, [](api::stack s) {
    return scripts{
        {0, {s.push(1), s.pop()}},
        {1, {s.push(2), s.pop()}},
    };
  });
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 87178291);
}

INSTANTIATE_TEST_SUITE_P(sweep, stack_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
