// detect::fuzz — registry-driven workload generation and differential
// crash-fuzzing over the detect::api façade.
//
//   scenario_gen.hpp  seed → scripted_scenario synthesis per opcode family
//   differ.hpp        differential replay against baseline/stripped variants
//   shrinker.hpp      greedy minimization of failing scenarios
//   fuzzer.hpp        the campaign engine (generate → check → diff → shrink)
//
// The standing adversary for every registry kind: tests/fuzz_test.cpp runs
// it over the whole registry, fuzz_main drives long budgeted campaigns, and
// CI replays a bounded campaign on every push.
#pragma once

#include "fuzz/differ.hpp"        // IWYU pragma: export
#include "fuzz/fuzzer.hpp"        // IWYU pragma: export
#include "fuzz/scenario_gen.hpp"  // IWYU pragma: export
#include "fuzz/shrinker.hpp"      // IWYU pragma: export
