// Append-only execution log, arena-backed.
//
// Under the simulator, appends happen at scheduler-granted steps, so the
// append order equals the model's real-time order. In free-running mode a
// mutex provides a consistent (if arbitrary) serialization — free-running is
// used for performance measurement, not for checking.
//
// Storage is a chunked bump arena: fixed-size blocks of POD `event`s,
// allocated once and reused across runs (`clear()` rewinds the cursor but
// keeps every block). The hot append path is a cursor bump — no
// reallocation, no copying of earlier events, and a steady-state run
// allocates nothing at all. `blocks_allocated()` exposes the block count so
// tests can pin the allocation behavior.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "history/event.hpp"

namespace detect::hist {

class log {
 public:
  /// Events per arena block. One block holds most scenario runs whole; long
  /// crash-torture runs chain more without ever moving earlier events.
  static constexpr std::size_t k_block_events = 1024;

  void append(event e) {
    std::scoped_lock lock(mu_);
    if (used_ == k_block_events * blocks_used_) grow_locked();
    blocks_[used_ / k_block_events][used_ % k_block_events] = e;
    ++used_;
  }

  std::vector<event> snapshot() const {
    std::scoped_lock lock(mu_);
    std::vector<event> out;
    out.reserve(used_);
    for (std::size_t i = 0; i < used_; ++i) {
      out.push_back(blocks_[i / k_block_events][i % k_block_events]);
    }
    return out;
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return used_;
  }

  /// Rewind to empty. Blocks are retained: the next run appends into the
  /// same storage without touching the allocator.
  void clear() {
    std::scoped_lock lock(mu_);
    used_ = 0;
    blocks_used_ = blocks_.empty() ? 0 : 1;
  }

  /// Arena blocks ever allocated by this log (monotone; clear() keeps them).
  std::size_t blocks_allocated() const {
    std::scoped_lock lock(mu_);
    return blocks_.size();
  }

  std::string to_string() const;

 private:
  void grow_locked() {
    if (blocks_used_ < blocks_.size()) {
      ++blocks_used_;  // reuse a block retained by clear()
      return;
    }
    blocks_.push_back(std::make_unique<event[]>(k_block_events));
    ++blocks_used_;
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<event[]>> blocks_;
  std::size_t blocks_used_ = 0;  // blocks the current contents span
  std::size_t used_ = 0;         // total events appended since clear()
};

}  // namespace detect::hist
