// E9 — Data toward the paper's open problem (§6): how many memory-distinct
// configurations does Algorithm 1 (detectable read/write) actually reach?
//
// The paper proves the Ω(N)-bit lower bound only for CAS (Theorem 1) and
// explicitly leaves the read/write bound open: "No (non-trivial) space lower
// bound for a detectable read/write object is known and finding the tight
// bound is another open question." Algorithm 1 *budgets* 2N² + O(log N)
// shared bits; this experiment measures how many distinct shared states
// (R, A) it reaches — log2 of that count is the number of bits any
// implementation realizing the same reachable set would need, i.e. an
// empirical floor for this particular algorithm (not a lower bound for the
// problem).
#include <cmath>

#include "bench_util.hpp"
#include "theory/rw_model.hpp"

int main() {
  using namespace detect;
  using bench::fmt;
  using bench::fmt_u;
  using bench::row;
  using bench::rule;

  std::printf(
      "E9 — Reachable shared configurations of Algorithm 1 (open problem\n"
      "data; value domain size 2)\n\n");

  std::printf("(a) Exhaustive BFS over the full model (tiny N)\n");
  row({"N", "full configs", "shared cfgs", "log2(shared)", "complete"});
  rule(5);
  for (int n = 1; n <= (bench::smoke() ? 1 : 2); ++n) {
    auto c = theory::rw_bfs_configurations(n, 2, 6'000'000);
    row({std::to_string(n), fmt_u(c.total_configs), fmt_u(c.shared_configs),
         fmt(std::log2(static_cast<double>(c.shared_configs)), 2),
         c.complete ? "yes" : "capped"});
  }

  std::printf("\n(b) Quiescent-graph reachability\n");
  row({"N", "shared cfgs", "log2(shared)", "budget bits"});
  rule(4);
  for (int n = 1; n <= (bench::smoke() ? 2 : 3); ++n) {
    auto c = theory::rw_quiescent_reachability(n, 2);
    std::uint64_t budget = static_cast<std::uint64_t>(n) * n * 2 + 2;
    row({std::to_string(n), fmt_u(c.shared_configs),
         fmt(std::log2(static_cast<double>(c.shared_configs)), 2),
         fmt_u(budget)});
  }

  std::printf(
      "\nShape check: Algorithm 1 reaches far fewer states than its 2N^2-bit\n"
      "budget admits — log2(reachable) grows roughly linearly in N, not\n"
      "quadratically. Consistent with the paper's conjecture space: a\n"
      "detectable register may be possible with o(N^2) bits; no construction\n"
      "or matching lower bound is known (open problem, paper §6).\n");
  return 0;
}
