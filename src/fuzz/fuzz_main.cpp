// fuzz_main — CLI driver for long differential-fuzzing campaigns.
//
//   fuzz_main                          # default campaign over all kinds
//   fuzz_main --iters 5000 --seed 42   # bounded, reproducible campaign
//   fuzz_main --kind cas --kind queue  # restrict the kind pool
//   fuzz_main --objects-max K          # up to K objects per scenario
//   fuzz_main --sharded-equiv          # every iteration diffs single vs
//                                      # sharded (the CI equivalence stage)
//   fuzz_main --placement-equiv        # every iteration diffs modulo vs
//                                      # hash vs range placement (the CI
//                                      # placement stage)
//   fuzz_main --placement NAME         # pin the generator's placement knob
//                                      # (modulo|hash|range|pinned|none)
//   fuzz_main --shards-max K           # bound the generator's shard knob
//   fuzz_main --sched NAME[:depth]     # schedule-strategy pool: round_robin,
//                                      # uniform_random, pct, or mixed (all
//                                      # three); :depth bounds pct preemption
//                                      # budgets (default 3)
//   fuzz_main --persist MODE           # persistency pool: strict, buffered,
//                                      # or mixed
//   fuzz_main --coverage               # coverage-steered generation
//   fuzz_main --coverage-out FILE      # write coverage.json (buckets,
//                                      # timeline, corpus seed list) — the
//                                      # nightly deep-fuzz lane's artifact
//   fuzz_main --out artifacts/         # write failure artifact on failure
//   fuzz_main --replay failure.txt     # re-run a dumped scenario and print
//                                      # its coverage bucket signature
//   fuzz_main --list-kinds             # print the registry kind pool
//
// Exit status: 0 clean, 1 failure found (artifact written when --out is
// set), 2 usage/IO error. The same binary backs the CI fuzz stages
// (`scripts/check.sh --fuzz N` / `--fuzz-sharded N` / `--fuzz-deep N`).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/fuzz.hpp"

namespace {

using namespace detect;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--iters N] [--seed S] [--kind K]... [--procs-max P]\n"
      "          [--ops-max M] [--objects-max K] [--shards-min K]\n"
      "          [--shards-max K] [--sharded-equiv] [--placement-equiv]\n"
      "          [--placement NAME] [--sched NAME[:depth]] [--persist MODE]\n"
      "          [--coverage] [--coverage-out FILE]\n"
      "          [--no-diff] [--no-shrink] [--no-crashes]\n"
      "          [--out DIR] [--replay FILE] [--list-kinds] [--quiet]\n",
      argv0);
  return 2;
}

int replay_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fuzz_main: cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  api::scripted_scenario s = api::parse_scenario(buf.str());
  std::printf("replaying %zu object(s) [", s.objects.size());
  for (std::size_t i = 0; i < s.objects.size(); ++i) {
    std::printf("%s%u:%s", i != 0 ? " " : "", s.objects[i].id,
                s.objects[i].kind.c_str());
  }
  std::printf("] (%d procs, %zu ops, %zu crash steps, placement %s, "
              "%zu migrations)\n",
              s.nprocs, s.total_ops(), s.crash_steps.size(),
              s.placement.to_string().c_str(), s.migrations.size());
  std::printf("schedule: %s (seed %llu), persistency: %s\n",
              s.sched.to_string().c_str(),
              static_cast<unsigned long long>(s.sched_seed),
              nvm::persist_name(s.persist));
  api::scripted_outcome outcome;
  std::string failure =
      fuzz::check_scenario(s, /*diff=*/true, /*replays=*/nullptr, &outcome,
                           /*placement=*/s.shards > 1);
  // The bucket signature matches the failure artifact to its coverage.json
  // bucket by hand (outcome bits reflect the replay just performed).
  std::printf("bucket: %s\n", fuzz::bucket_of(s, outcome).key().c_str());
  if (failure.empty()) {
    std::printf("PASS: scenario is clean\n");
    return 0;
  }
  std::printf("FAIL:\n%s\n", failure.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::fuzz_options opt;
  opt.iterations = 200;
  std::string out_dir;
  std::string replay_path;
  std::string coverage_out;
  bool quiet = false;
  bool sharded_equiv = false;
  bool placement_equiv = false;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::exit(usage(argv[0]));
    }
    return argv[++i];
  };
  // Strict numeric parsing: a typo'd "--iters abc" must not silently become
  // a 0-iteration campaign that prints PASS, and an overflowing value must
  // not clamp to ULLONG_MAX and run forever.
  auto need_u64 = [&](int& i) -> std::uint64_t {
    const char* text = need_value(i);
    char* end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "fuzz_main: '%s' is not a valid number\n", text);
      std::exit(2);
    }
    return v;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--iters") == 0) {
      opt.iterations = need_u64(i);
      if (opt.iterations == 0) {
        std::fprintf(stderr, "fuzz_main: --iters must be positive\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--seed") == 0) {
      opt.base_seed = need_u64(i);
    } else if (std::strcmp(arg, "--kind") == 0) {
      opt.kinds.emplace_back(need_value(i));
    } else if (std::strcmp(arg, "--procs-max") == 0) {
      opt.gen.max_procs = static_cast<int>(need_u64(i));
    } else if (std::strcmp(arg, "--ops-max") == 0) {
      opt.gen.max_ops = static_cast<int>(need_u64(i));
    } else if (std::strcmp(arg, "--objects-max") == 0) {
      opt.gen.max_objects = static_cast<int>(need_u64(i));
    } else if (std::strcmp(arg, "--shards-max") == 0) {
      opt.gen.max_shards = static_cast<int>(need_u64(i));
    } else if (std::strcmp(arg, "--shards-min") == 0) {
      // >= 2 arms the single-vs-sharded equivalence diff on every iteration
      // while keeping the variant pass (unlike --sharded-equiv, which trades
      // the variant pass for a pure equivalence campaign).
      opt.gen.min_shards = static_cast<int>(need_u64(i));
      if (opt.gen.max_shards < opt.gen.min_shards) {
        opt.gen.max_shards = opt.gen.min_shards;
      }
    } else if (std::strcmp(arg, "--sharded-equiv") == 0) {
      sharded_equiv = true;
    } else if (std::strcmp(arg, "--placement-equiv") == 0) {
      placement_equiv = true;
    } else if (std::strcmp(arg, "--placement") == 0) {
      const char* name = need_value(i);
      if (std::strcmp(name, "none") != 0) {
        try {
          api::placement_from_name(name);  // validate before the campaign
        } catch (const std::exception& e) {
          std::fprintf(stderr, "fuzz_main: %s\n", e.what());
          return 2;
        }
      }
      opt.gen.placement = name;
    } else if (std::strcmp(arg, "--sched") == 0) {
      // NAME[:depth] — "mixed" pools all three strategies; a single name
      // pins every scenario to it. The optional :depth bounds pct budgets.
      std::string spec = need_value(i);
      if (std::size_t colon = spec.find(':'); colon != std::string::npos) {
        const std::string depth = spec.substr(colon + 1);
        char* end = nullptr;
        errno = 0;
        const unsigned long long d = std::strtoull(depth.c_str(), &end, 10);
        if (end == depth.c_str() || *end != '\0' || errno == ERANGE ||
            d == 0) {
          std::fprintf(stderr, "fuzz_main: bad pct depth '%s'\n",
                       depth.c_str());
          return 2;
        }
        opt.gen.pct_depth = static_cast<int>(d);
        spec.resize(colon);
      }
      if (spec == "mixed") {
        opt.gen.sched_pool = {"round_robin", "uniform_random", "pct"};
      } else if (sched::strategy_from_name(spec)) {
        opt.gen.sched_pool = {spec};
      } else {
        std::fprintf(stderr, "fuzz_main: unknown schedule strategy '%s'\n",
                     spec.c_str());
        return 2;
      }
    } else if (std::strcmp(arg, "--persist") == 0) {
      const std::string spec = need_value(i);
      nvm::persist_model m;
      if (spec == "mixed") {
        opt.gen.persist_pool = {"strict", "buffered"};
      } else if (nvm::persist_from_name(spec, m)) {
        opt.gen.persist_pool = {spec};
      } else {
        std::fprintf(stderr, "fuzz_main: unknown persist model '%s'\n",
                     spec.c_str());
        return 2;
      }
    } else if (std::strcmp(arg, "--coverage") == 0) {
      opt.steer = true;
    } else if (std::strcmp(arg, "--coverage-out") == 0) {
      // Coverage is tracked on every campaign; this only chooses to write
      // it out. Steering stays governed by --coverage, so a plain campaign
      // can still report its buckets without changing how it generates.
      coverage_out = need_value(i);
    } else if (std::strcmp(arg, "--no-diff") == 0) {
      opt.diff = false;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      opt.shrink = false;
    } else if (std::strcmp(arg, "--no-crashes") == 0) {
      opt.gen.crashes = false;
    } else if (std::strcmp(arg, "--out") == 0) {
      out_dir = need_value(i);
    } else if (std::strcmp(arg, "--replay") == 0) {
      replay_path = need_value(i);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--list-kinds") == 0) {
      for (const std::string& k : api::object_registry::global().kinds()) {
        std::printf("%s\n", k.c_str());
      }
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  // Applied after flag parsing so ordering cannot neuter it: an equivalence
  // campaign whose generator never draws shards >= 2 would vacuously PASS.
  if (sharded_equiv) {
    opt.gen.min_shards = 2;
    if (opt.gen.max_shards < 2) opt.gen.max_shards = 4;
    opt.diff = false;
  }
  if (placement_equiv) {
    opt.gen.min_shards = 2;
    if (opt.gen.max_shards < 2) opt.gen.max_shards = 4;
    opt.placement_equiv = true;
    opt.diff = false;
  }

  try {
    if (!replay_path.empty()) return replay_file(replay_path);

    for (const std::string& k : opt.kinds) {
      if (!api::object_registry::global().contains(k)) {
        std::fprintf(stderr, "fuzz_main: unknown kind '%s'\n", k.c_str());
        return 2;
      }
    }

    std::uint64_t last_reported = 0;
    fuzz::fuzz_stats stats = fuzz::run_fuzz(
        opt, [&](std::uint64_t iter, std::uint64_t seed,
                 const std::string& kind) {
          if (quiet) return;
          // One progress line every ~5% of the campaign.
          std::uint64_t stride = opt.iterations / 20 + 1;
          if (iter == 0 || iter - last_reported >= stride) {
            last_reported = iter;
            std::printf("iter %llu/%llu  kind=%s  seed=%llu\n",
                        static_cast<unsigned long long>(iter),
                        static_cast<unsigned long long>(opt.iterations),
                        kind.c_str(), static_cast<unsigned long long>(seed));
            std::fflush(stdout);
          }
        });

    if (!coverage_out.empty()) {
      std::ofstream out(coverage_out);
      if (!out) {
        std::fprintf(stderr, "fuzz_main: cannot write '%s'\n",
                     coverage_out.c_str());
        return 2;
      }
      out << stats.coverage.to_json(opt.base_seed, opt.iterations);
      std::printf("coverage written to %s\n", coverage_out.c_str());
    }

    if (!stats.failure) {
      std::printf(
          "PASS: %llu iterations, %llu replays, %zu coverage buckets%s, "
          "base seed %llu\n",
          static_cast<unsigned long long>(stats.iterations),
          static_cast<unsigned long long>(stats.replays),
          stats.coverage.distinct_buckets,
          stats.coverage.steered ? " (steered)" : "",
          static_cast<unsigned long long>(opt.base_seed));
      return 0;
    }

    const fuzz::fuzz_failure& f = *stats.failure;
    std::printf("FAIL at iteration %llu (kind %s, seed %llu):\n%s\n",
                static_cast<unsigned long long>(f.iteration), f.kind.c_str(),
                static_cast<unsigned long long>(f.seed), f.message.c_str());
    std::printf("\nshrunk scenario (%zu ops, %zu crash steps):\n%s",
                f.shrunk.total_ops(), f.shrunk.crash_steps.size(),
                api::dump(f.shrunk).c_str());
    if (!out_dir.empty()) {
      std::string path = out_dir + "/fuzz-failure-" + std::to_string(f.seed) +
                         ".txt";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "fuzz_main: cannot write '%s'\n", path.c_str());
        return 2;
      }
      out << f.to_artifact();
      std::printf("\nartifact written to %s\n", path.c_str());
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_main: %s\n", e.what());
    return 2;
  }
}
