// The simulated world: N crash-prone processes over an isolated persistent
// memory domain, driven step by step (§2's asynchronous system with
// system-wide crash-failures).
//
// The world exposes two levels of control:
//   * low level — submit a task to a process, step a chosen process by one
//     shared-memory access, deliver a crash, inspect who is runnable. The
//     Theorem-2 harness uses this to realize proof schedules verbatim
//     ("run p until it is about to return", "crash immediately after the
//     invocation").
//   * run loop — drive all submitted tasks to completion under a pluggable
//     scheduling policy and crash plan, invoking a recovery callback after
//     every crash (the client runtime uses it to resume per Ann_p).
//
// Processes execute on pluggable strand engines (see sim/strand.hpp): the
// default `fiber` engine context-switches in-thread (~50 ns/step), the
// `thread` engine keeps the original one-OS-thread-per-process handshake as
// the reference the determinism pins compare against. The world itself is
// single-threaded either way: every public call returns with all strands
// settled, and the run loop maintains the sorted runnable set incrementally
// instead of re-scanning every process per step.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nvm/pcell.hpp"
#include "nvm/pmem.hpp"
#include "sim/strand.hpp"
#include "wmm/visibility.hpp"

namespace detect::sim {

/// Scheduling policy: choose the next process to step among the runnable.
class scheduler {
 public:
  virtual ~scheduler() = default;
  /// `runnable` is non-empty and sorted by pid.
  virtual int pick(const std::vector<int>& runnable, std::uint64_t step_no) = 0;
  /// One-line self-description (strategy, seed, preemption budget) quoted by
  /// the step-limit diagnostic so a non-terminating schedule is reproducible
  /// from the failure message alone.
  virtual std::string describe() const { return "unnamed scheduler"; }
};

/// Crash policy: consulted before every step.
class crash_plan {
 public:
  virtual ~crash_plan() = default;
  virtual bool should_crash(std::uint64_t step_no) = 0;
};

struct world_config {
  /// Safety valve against non-terminating schedules (e.g. an unfair scheduler
  /// starving Algorithm 3's double collect).
  std::uint64_t max_steps = 1'000'000;
  /// Strand engine; unset means `default_engine()` at world construction.
  /// Deliberately not part of the scenario format — engines are
  /// behavior-identical, and A/B tests flip the process-global default.
  std::optional<engine_kind> engine;
  /// Visibility order between live processes (see wmm/visibility.hpp).
  /// Under tso/pso each process gets a FIFO store buffer whose drain slots
  /// appear in the run loop's candidate set as pseudo-pids
  /// `nprocs*(1+slot)+pid`, schedulable like any real step. sc — the
  /// default — buffers nothing and leaves every historical replay
  /// byte-identical.
  wmm::visibility_model visibility = wmm::visibility_model::sc;
  /// Scenario-scripted full drains (tso/pso only): when the global step
  /// counter hits a listed value, every process's buffer drains completely
  /// as one step. Fires once per value; the shrinker's minimization drops
  /// them one at a time.
  std::vector<std::uint64_t> drain_points;
};

struct run_report {
  std::uint64_t steps = 0;
  std::uint64_t crashes = 0;
  bool hit_step_limit = false;
  /// Set with hit_step_limit: names the limit and the active scheduler
  /// (strategy, seed, preemption budget) so the schedule is reproducible.
  std::string limit_note;
  /// Buffered-persistency mode only: some crash actually discarded stores
  /// that strict mode would have persisted (a crash state the strict model
  /// can never produce).
  bool lost_persistence = false;
  /// Persistent-cell footprint of the world's NVM domain when the run
  /// finished: cells attached and their persisted-image bytes — the space
  /// quantity the paper's bounds count. Sharded executors sum the fields
  /// across shards.
  std::uint64_t nvm_cells = 0;
  std::uint64_t nvm_bytes = 0;
  /// Relaxed visibility only (always 0 under sc): store-buffer drains the
  /// run performed (scheduled pseudo-pid picks, explicit drain points, and
  /// end-of-run quiescence) and the deepest any process's buffer got.
  /// Sharded executors take max of the depth, sum of the drains.
  std::uint64_t drain_steps = 0;
  std::uint64_t max_pending_stores = 0;
};

class world {
 public:
  explicit world(int nprocs, world_config cfg = {});
  ~world();

  world(const world&) = delete;
  world& operator=(const world&) = delete;

  nvm::pmem_domain& domain() noexcept { return domain_; }
  int nprocs() const noexcept { return static_cast<int>(procs_.size()); }
  engine_kind engine() const noexcept { return engine_; }

  /// Hand `task` to process `pid`. The task body runs under the strand's
  /// access hook up to its first yield; it must not outlive the world.
  void submit(int pid, std::function<void()> task);

  /// Pids currently blocked at a yield (eligible for `step`), sorted.
  std::vector<int> runnable();

  /// True if any process still has an unfinished task.
  bool busy();

  /// Grant one step to `pid`; returns once it blocks at its next yield or
  /// finishes its task. Rethrows any non-crash exception the task raised.
  void step(int pid);

  /// Kind of access `pid` is currently blocked on (valid when runnable).
  nvm::access pending_access(int pid);

  /// Did the last completed task of `pid` unwind due to a crash?
  bool last_task_interrupted(int pid);

  /// Deliver a system-wide crash: every in-flight task unwinds, then the
  /// memory domain applies its crash semantics. Callable only from the
  /// driving thread, between steps.
  void crash();

  /// The epoch service of Golab & Hendler's RME model (paper §1): a
  /// non-volatile counter the *system* advances on every crash — the
  /// canonical "auxiliary state provided by the system" of Definition 1.
  /// Readable by recoverable operations via the returned cell.
  nvm::pcell<std::uint64_t>& epoch_cell() noexcept { return epoch_; }
  std::uint64_t epoch() const noexcept { return epoch_.peek(); }

  /// Drive everything to completion. `on_crash_done` (may be null) runs after
  /// each crash has fully unwound — typically to log the crash and resubmit
  /// recovery tasks.
  run_report run(scheduler& sched, crash_plan* crashes = nullptr,
                 const std::function<void()>& on_crash_done = nullptr);

  std::uint64_t steps_taken() const noexcept { return step_no_; }

  /// Active visibility model (world_config.visibility).
  wmm::visibility_model visibility() const noexcept { return cfg_.visibility; }

  /// One-line description of how this world is being scheduled: the active
  /// scheduler (while/after a run), the visibility model, and the current
  /// total pending-store-buffer depth — what differ step-limit diffs quote
  /// to attribute divergence to the memory model.
  std::string describe_schedule() const;

 private:
  // Absorb finished tasks (done → idle), rethrowing any task exception.
  void settle();
  // Grant one step to a pid known to be in ready_; updates ready_.
  void step_ready(int pid);
  // Relaxed visibility only: total stores currently buffered, and one
  // entry's drain as a counted step.
  std::size_t pending_stores() const noexcept;
  void drain_one(int pid, std::size_t slot);
  // Drain `pid`'s whole buffer as counted steps (fences via direct step()).
  void drain_fully(int pid);
  // True when `a` must not execute past a non-empty store buffer.
  static bool needs_drained_buffer(nvm::access a) noexcept;

  world_config cfg_;
  engine_kind engine_;
  nvm::pmem_domain domain_;
  nvm::pcell<std::uint64_t> epoch_{1, domain_};

  std::vector<std::unique_ptr<strand>> procs_;
  /// Pids currently at a yield, kept sorted; maintained incrementally on
  /// submit/step/crash so the run loop never re-scans all processes.
  std::vector<int> ready_;
  std::uint64_t step_no_ = 0;
  bool lost_persistence_ = false;
  /// Per-process store buffers; sized nprocs iff visibility != sc (empty
  /// vector == the zero-overhead sc fast path throughout).
  std::vector<wmm::store_buffer> bufs_;
  /// Scratch candidate vector for the run loop (real pids + drain
  /// pseudo-pids), reused across steps.
  std::vector<int> cand_;
  /// cfg_.drain_points with fired entries tombstoned — like crash_at_steps,
  /// each point fires once over the world's whole lifetime (recovery rounds
  /// share one global step counter).
  std::vector<std::uint64_t> drains_left_;
  std::uint64_t drain_steps_ = 0;
  std::uint64_t max_pending_ = 0;
  /// describe() string of the in-progress (or most recent) run()'s
  /// scheduler, captured at run() start so describe_schedule() never holds a
  /// pointer to a scheduler that may have been destroyed after run() returned.
  std::string active_sched_desc_;
};

// ---------------------------------------------------------------------------
// Stock scheduling policies.

class round_robin_scheduler final : public scheduler {
 public:
  int pick(const std::vector<int>& runnable, std::uint64_t step_no) override;
  std::string describe() const override { return "round_robin"; }

 private:
  std::size_t next_ = 0;
};

class random_scheduler final : public scheduler {
 public:
  explicit random_scheduler(std::uint64_t seed)
      : state_(seed | 1), seed_(seed) {}
  int pick(const std::vector<int>& runnable, std::uint64_t step_no) override;
  std::string describe() const override {
    return "uniform_random(seed=" + std::to_string(seed_) + ")";
  }

 private:
  std::uint64_t state_;
  std::uint64_t seed_;
};

/// Follows a fixed pid script; falls back to lowest-pid when the scripted pid
/// is not runnable or the script is exhausted.
class scripted_scheduler final : public scheduler {
 public:
  explicit scripted_scheduler(std::vector<int> script)
      : script_(std::move(script)) {}
  int pick(const std::vector<int>& runnable, std::uint64_t step_no) override;

 private:
  std::vector<int> script_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Stock crash plans.

class no_crashes final : public crash_plan {
 public:
  bool should_crash(std::uint64_t) override { return false; }
};

/// Crash exactly when the global step counter hits each listed value.
class crash_at_steps final : public crash_plan {
 public:
  explicit crash_at_steps(std::vector<std::uint64_t> at) : at_(std::move(at)) {}
  bool should_crash(std::uint64_t step_no) override;

 private:
  std::vector<std::uint64_t> at_;
};

/// Crash with probability `rate` before each step, at most `max_crashes`.
class random_crashes final : public crash_plan {
 public:
  random_crashes(std::uint64_t seed, double rate, std::uint64_t max_crashes)
      : state_(seed | 1), rate_(rate), left_(max_crashes) {}
  bool should_crash(std::uint64_t step_no) override;

 private:
  std::uint64_t state_;
  double rate_;
  std::uint64_t left_;
};

/// xorshift64* — deterministic, seedable, good enough for schedule fuzzing.
inline std::uint64_t next_rand(std::uint64_t& s) noexcept {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545F4914F6CDD1DULL;
}

}  // namespace detect::sim
