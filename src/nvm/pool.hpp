// pmem_pool<Node> — a fixed-capacity persistent object pool used by the
// durable queue for node allocation.
//
// Allocation is a persistent bump pointer: the allocation frontier itself
// lives in a pcell, so a crash can at worst leak slots that were claimed but
// never published (a fresh bump after recovery simply skips them). This
// mirrors what log-free durable data structures do in practice — leaked
// nodes are reclaimed by an offline scan, which bounded test runs never need.
// Nodes are addressed by 32-bit indices rather than raw pointers so they pack
// into CAS-able words; index `null_ref` plays the role of nullptr.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "nvm/pcell.hpp"

namespace detect::nvm {

inline constexpr std::uint32_t null_ref = 0xffffffffu;

template <typename Node>
class pmem_pool {
 public:
  explicit pmem_pool(std::size_t capacity,
                     pmem_domain& dom = pmem_domain::global())
      : dom_(&dom), frontier_(0, dom) {
    slots_.reserve(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_.push_back(std::make_unique<Node>(dom));
    }
  }

  /// Claim a fresh node; returns its index. The bump itself is one shared
  /// step (the frontier is a shared cell: any process may allocate).
  std::uint32_t allocate() {
    std::uint32_t idx = frontier_.load();
    for (;;) {
      if (idx >= slots_.size()) throw std::runtime_error("pmem_pool exhausted");
      if (frontier_.compare_exchange(idx, idx + 1)) return idx;
    }
  }

  Node& at(std::uint32_t idx) { return *slots_.at(idx); }
  const Node& at(std::uint32_t idx) const { return *slots_.at(idx); }

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::uint32_t allocated() const noexcept { return frontier_.peek(); }

 private:
  pmem_domain* dom_;
  pcell<std::uint32_t> frontier_;
  std::vector<std::unique_ptr<Node>> slots_;
};

}  // namespace detect::nvm
