// Detectable durable FIFO queue in the style of Friedman et al. [9] (the
// durable linked queue the paper repeatedly uses as its motivating
// doubly-perturbing object).
//
// Structure: Michael–Scott queue over a persistent node pool (32-bit node
// indices so links are CAS-able words). Detectability uses the op-identifier
// technique of [9]: every dequeue claims its node by CAS-ing a unique stamp
// ⟨pid, client_seq⟩ into the node's deq_stamp field — the stamp doubles as
// the recovery witness. Enqueue recovery checks whether its persisted node
// was ever linked (reachable from head, or already claimed by a dequeuer).
// Identifiers grow without bound with the number of operations — exactly the
// auxiliary-state-via-arguments regime Theorem 2 mandates and experiment E1
// quantifies against the bounded Algorithms 1-2.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/object.hpp"
#include "nvm/pcell.hpp"
#include "nvm/pool.hpp"
#include "nvm/pvar.hpp"

namespace detect::core {

struct queue_node {
  explicit queue_node(nvm::pmem_domain& dom)
      : value(0, dom), next(nvm::null_ref, dom), deq_stamp(0, dom) {}

  nvm::pcell<value_t> value;
  nvm::pcell<std::uint32_t> next;
  /// 0 = unclaimed; otherwise ⟨pid+1, client_seq⟩ of the claiming dequeue.
  nvm::pcell<std::uint64_t> deq_stamp;
};

class detectable_queue final : public detectable_object {
 public:
  detectable_queue(int nprocs, announcement_board& board, std::size_t capacity,
                   nvm::pmem_domain& dom)
      : board_(&board),
        pool_(capacity + 1, dom),
        head_(0, dom),
        tail_(0, dom) {
    // Slot 0 is the initial sentinel (allocated eagerly).
    std::uint32_t sentinel = pool_.allocate();
    if (sentinel != 0) throw std::logic_error("sentinel must be slot 0");
    for (int p = 0; p < nprocs; ++p) {
      enq_node_.push_back(std::make_unique<nvm::pvar<std::uint32_t>>(
          nvm::null_ref, dom));
      deq_node_.push_back(std::make_unique<nvm::pvar<std::uint32_t>>(
          nvm::null_ref, dom));
    }
  }

  value_t invoke(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::enq:
        return enqueue(pid, op);
      case hist::opcode::deq:
        return dequeue(pid, op);
      default:
        throw std::invalid_argument("detectable_queue: bad opcode");
    }
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::enq:
        return enq_recover(pid, op);
      case hist::opcode::deq:
        return deq_recover(pid, op);
      default:
        throw std::invalid_argument("detectable_queue: bad opcode");
    }
  }

  /// Distinct operation identifiers minted so far (E1's unbounded-space
  /// metric: the stamp domain must accommodate all of them).
  std::uint64_t ids_minted() const noexcept { return pool_.allocated(); }

 private:
  static std::uint64_t stamp_of(int pid, const hist::op_desc& op) {
    return (static_cast<std::uint64_t>(pid + 1) << 48) | op.client_seq;
  }

  value_t enqueue(int p, const hist::op_desc& op) {
    ann_fields& ann = board_->of(p);
    std::uint32_t n = pool_.allocate();
    queue_node& node = pool_.at(n);
    node.value.store(op.a);
    node.next.store(nvm::null_ref);
    node.deq_stamp.store(0);
    enq_node_[p]->store(n);  // persist intent before the checkpoint
    ann.cp.store(1);
    link(n);
    ann.resp.store(hist::k_ack);
    return hist::k_ack;
  }

  void link(std::uint32_t n) {
    for (;;) {
      std::uint32_t t = tail_.load();
      std::uint32_t next = pool_.at(t).next.load();
      if (next == nvm::null_ref) {
        if (pool_.at(t).next.compare_exchange(next, n)) {
          std::uint32_t expect = t;
          tail_.compare_exchange(expect, n);  // best-effort swing
          return;
        }
      } else {
        std::uint32_t expect = t;
        tail_.compare_exchange(expect, next);  // help lagging tail
      }
    }
  }

  recovery_result enq_recover(int p, const hist::op_desc&) {
    ann_fields& ann = board_->of(p);
    if (ann.resp.load() != hist::k_bottom) {
      return recovery_result::linearized(hist::k_ack);
    }
    if (ann.cp.load() == 0) return recovery_result::failed();
    std::uint32_t mine = enq_node_[p]->load();
    // Linked iff reachable from head or already dequeued. Nodes are never
    // recycled, and a dequeued node keeps its next pointer, so a walk from
    // any past head position covers everything linked after it.
    if (pool_.at(mine).deq_stamp.load() != 0) {
      return finish_enq(ann);
    }
    for (std::uint32_t cur = head_.load(); cur != nvm::null_ref;
         cur = pool_.at(cur).next.load()) {
      if (cur == mine) return finish_enq(ann);
    }
    if (pool_.at(mine).deq_stamp.load() != 0) {
      // Claimed while we walked.
      return finish_enq(ann);
    }
    return recovery_result::failed();
  }

  recovery_result finish_enq(ann_fields& ann) {
    ann.resp.store(hist::k_ack);
    return recovery_result::linearized(hist::k_ack);
  }

  value_t dequeue(int p, const hist::op_desc& op) {
    ann_fields& ann = board_->of(p);
    std::uint64_t stamp = stamp_of(p, op);
    for (;;) {
      std::uint32_t h = head_.load();
      std::uint32_t first = pool_.at(h).next.load();
      if (first == nvm::null_ref) {
        // Empty: linearize at the read of next.
        ann.resp.store(hist::k_empty);
        return hist::k_empty;
      }
      std::uint64_t claimed = pool_.at(first).deq_stamp.load();
      if (claimed == 0) {
        deq_node_[p]->store(first);  // persist candidate before checkpoint
        ann.cp.store(1);
        std::uint64_t expect = 0;
        if (pool_.at(first).deq_stamp.compare_exchange(expect, stamp)) {
          value_t v = pool_.at(first).value.load();
          std::uint32_t eh = h;
          head_.compare_exchange(eh, first);  // best-effort advance
          ann.resp.store(v);
          return v;
        }
      } else {
        // Claimed by someone else: help advance head past it.
        std::uint32_t eh = h;
        head_.compare_exchange(eh, first);
      }
    }
  }

  recovery_result deq_recover(int p, const hist::op_desc& op) {
    ann_fields& ann = board_->of(p);
    value_t r = ann.resp.load();
    if (r != hist::k_bottom) return recovery_result::linearized(r);
    if (ann.cp.load() == 0) return recovery_result::failed();
    std::uint32_t cand = deq_node_[p]->load();
    if (cand != nvm::null_ref &&
        pool_.at(cand).deq_stamp.load() == stamp_of(p, op)) {
      value_t v = pool_.at(cand).value.load();
      ann.resp.store(v);
      return recovery_result::linearized(v);
    }
    // The last claim attempt did not take effect; nothing observable was
    // written by this operation.
    return recovery_result::failed();
  }

  announcement_board* board_;
  nvm::pmem_pool<queue_node> pool_;
  nvm::pcell<std::uint32_t> head_;
  nvm::pcell<std::uint32_t> tail_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint32_t>>> enq_node_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint32_t>>> deq_node_;
};

}  // namespace detect::core
