// Translation unit anchoring the baselines library target and guaranteeing
// every public header compiles standalone.
#include "baselines/attiya_register.hpp"
#include "baselines/bendavid_cas.hpp"
#include "baselines/plain.hpp"
#include "baselines/stripped.hpp"
