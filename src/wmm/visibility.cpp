#include "wmm/visibility.hpp"

#include <algorithm>
#include <stdexcept>

namespace detect::wmm {

void store_buffer::push(nvm::persistent_base& cell, apply_fn apply,
                        const void* bytes, std::size_t n) {
  entry e;
  e.cell = &cell;
  e.apply = apply;
  e.size = static_cast<std::uint8_t>(n);
  std::memcpy(e.raw, bytes, n);
  q_.push_back(e);
  high_water_ = std::max(high_water_, q_.size());
}

bool store_buffer::forward(const nvm::persistent_base& cell, void* out,
                           std::size_t n) const noexcept {
  for (auto it = q_.rbegin(); it != q_.rend(); ++it) {
    if (it->cell == &cell) {
      std::memcpy(out, it->raw, n);
      return true;
    }
  }
  return false;
}

std::size_t store_buffer::slots(visibility_model m) const noexcept {
  if (q_.empty()) return 0;
  if (m != visibility_model::pso) return 1;
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < q_.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (q_[j].cell == q_[i].cell) {
        seen = true;
        break;
      }
    }
    if (!seen) ++distinct;
  }
  return distinct;
}

void store_buffer::drain_slot(visibility_model m, std::size_t slot) {
  std::size_t pick = 0;
  if (m == visibility_model::pso) {
    // The slot-th distinct cell in first-occurrence order; drain its oldest
    // store (same-cell stores stay FIFO — that is pso's remaining order).
    std::size_t distinct = 0;
    std::size_t i = 0;
    for (;; ++i) {
      if (i >= q_.size()) throw std::out_of_range("store_buffer: bad slot");
      bool seen = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (q_[j].cell == q_[i].cell) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      if (distinct == slot) break;
      ++distinct;
    }
    pick = i;
  } else {
    if (slot != 0 || q_.empty()) {
      throw std::out_of_range("store_buffer: bad slot");
    }
  }
  entry e = q_[pick];
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(pick));
  e.apply(*e.cell, e.raw);
}

void store_buffer::drain_all() {
  while (!q_.empty()) {
    entry e = q_.front();
    q_.erase(q_.begin());
    e.apply(*e.cell, e.raw);
  }
}

}  // namespace detect::wmm
