#include "util/task_pool.hpp"

#include <algorithm>

namespace detect::util {

task_pool::task_pool(int workers) {
  workers = std::clamp(workers, 0, k_max_workers);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

task_pool::~task_pool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int task_pool::workers() const noexcept {
  std::scoped_lock lock(mu_);
  return static_cast<int>(threads_.size());
}

void task_pool::ensure_workers(int n) {
  n = std::min(n, k_max_workers);
  std::scoped_lock lock(mu_);
  while (static_cast<int>(threads_.size()) < n) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void task_pool::run_batch(std::vector<std::function<void()>>& jobs) {
  bool inline_mode;
  {
    std::scoped_lock lock(mu_);
    inline_mode = threads_.empty();
  }
  if (inline_mode) {
    // Inline fallback, outside the lock: a batch racing ensure_workers() may
    // still run on the submitter — same semantics, and jobs never execute
    // under the pool mutex.
    for (auto& job : jobs) job();
    return;
  }
  batch b;
  b.remaining = jobs.size();
  {
    std::scoped_lock lock(mu_);
    for (auto& job : jobs) queue_.push_back({std::move(job), &b});
  }
  cv_.notify_all();
  std::unique_lock lock(b.mu);
  b.done_cv.wait(lock, [&b] { return b.remaining == 0; });
}

void task_pool::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    queued_job job = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    job.fn();
    {
      std::scoped_lock done_lock(job.owner->mu);
      if (--job.owner->remaining == 0) job.owner->done_cv.notify_all();
    }
    lock.lock();
  }
}

task_pool& task_pool::shared() {
  static task_pool pool(0);
  return pool;
}

}  // namespace detect::util
