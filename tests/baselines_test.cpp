// Baselines: unbounded-id register/CAS correctness (they must be just as
// detectable as Algorithms 1-2 — the paper's point is their *space*, not
// their correctness), unbounded-id growth, and plain-object behaviour.
#include <gtest/gtest.h>

#include "baselines/attiya_register.hpp"
#include "baselines/bendavid_cas.hpp"
#include "baselines/plain.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario attiya_scenario(int nprocs,
                         std::function<scripts(api::reg)> make_scripts,
                         core::runtime::fail_policy policy =
                             core::runtime::fail_policy::skip) {
  return one_object<api::reg>("attiya_reg", nprocs, std::move(make_scripts),
                              policy);
}

scenario bendavid_scenario(int nprocs,
                           std::function<scripts(api::cas)> make_scripts,
                           core::runtime::fail_policy policy =
                               core::runtime::fail_policy::skip) {
  return one_object<api::cas>("bendavid_cas", nprocs, std::move(make_scripts),
                              policy);
}

TEST(tag_helpers, roundtrip) {
  std::uint64_t t = base::make_tag(3, 12345);
  EXPECT_EQ(base::tag_pid(t), 3);
  EXPECT_EQ(base::tag_seq(t), 12345u);
  EXPECT_NE(t, 0u) << "tags must not collide with the initial tag 0";
}

TEST(attiya_register, sequential) {
  auto cfg = attiya_scenario(1, [](api::reg r) {
    return scripts{{0, {r.write(5), r.read(), r.write(7), r.read()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(attiya_register, concurrent_seeds) {
  auto cfg = attiya_scenario(3, [](api::reg r) {
    return scripts{
        {0, {r.write(1), r.write(2)}},
        {1, {r.write(3), r.read()}},
        {2, {r.read(), r.read()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(attiya_register, crash_sweep) {
  auto cfg = attiya_scenario(2, [](api::reg r) {
    return scripts{
        {0, {r.write(1), r.write(2)}},
        {1, {r.write(5), r.read()}},
    };
  });
  crash_sweep(cfg, 3);
}

TEST(attiya_register, crash_fuzz_retry) {
  auto cfg = attiya_scenario(2,
                             [](api::reg r) {
                               return scripts{
                                   {0, {r.write(1), r.write(2)}},
                                   {1, {r.write(5), r.read()}},
                               };
                             },
                             core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 120, 2);
}

TEST(attiya_register, ids_grow_without_bound) {
  auto h = api::harness::builder().procs(2).build();
  api::reg r(h.add("attiya_reg"));
  h.script(0, {r.write(1), r.write(2), r.write(3)});
  h.script(1, {r.write(4), r.write(5)});
  h.run();
  EXPECT_EQ(r.as<base::attiya_register>().ids_minted(), 5u)
      << "one fresh id per write";
}

TEST(bendavid_cas, sequential) {
  auto cfg = bendavid_scenario(1, [](api::cas c) {
    return scripts{{0,
                    {c.compare_and_set(0, 1), c.compare_and_set(0, 2),
                     c.compare_and_set(1, 2), c.read()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(bendavid_cas, contended_seeds) {
  auto cfg = bendavid_scenario(2, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.compare_and_set(1, 0)}},
        {1, {c.compare_and_set(0, 2), c.read()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(bendavid_cas, crash_sweep) {
  auto cfg = bendavid_scenario(2, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.compare_and_set(1, 0)}},
        {1, {c.compare_and_set(0, 2), c.read()}},
    };
  });
  crash_sweep(cfg, 5);
}

TEST(bendavid_cas, aba_cycle_fuzz) {
  auto cfg = bendavid_scenario(2, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.compare_and_set(0, 1)}},
        {1, {c.compare_and_set(1, 0), c.compare_and_set(1, 0)}},
    };
  });
  crash_fuzz(cfg, 120, 2);
}

TEST(bendavid_cas, ids_grow_without_bound) {
  auto h = api::harness::builder().procs(2).build();
  api::cas c(h.add("bendavid_cas"));
  h.script(0, {c.compare_and_set(0, 1), c.compare_and_set(1, 2)});
  h.script(1, {c.compare_and_set(0, 5)});
  h.run();
  EXPECT_EQ(c.as<base::bendavid_cas>().ids_minted(), 3u)
      << "one fresh id per CAS operation";
}

TEST(plain_objects, correct_without_crashes) {
  auto cfg = one_object<api::reg>("plain_reg", 2, [](api::reg r) {
    return scripts{{0, {r.write(1), r.read()}}, {1, {r.write(2), r.read()}}};
  });
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << out.check.message;
  }
}

TEST(plain_objects, cas_and_counter_sequential) {
  auto h = api::harness::builder().procs(1).build();
  api::cas c(h.add("plain_cas"));
  api::counter ctr(h.add("plain_counter"));
  h.script(0, {c.compare_and_set(0, 1), c.read(), ctr.add(5), ctr.read()});
  h.run();
  auto r = h.check();
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(plain_objects, recovery_is_undetectable) {
  auto h = api::harness::builder().procs(1).build();
  api::reg r(h.add("plain_reg"));
  auto rr = r.object().recover(0, r.write(1));
  EXPECT_EQ(rr.verdict, hist::recovery_verdict::fail)
      << "plain objects cannot detect";
}

TEST(stripped_wrapper, forwards_but_disables_aux) {
  auto h = api::harness::builder().procs(2).build();
  api::reg r(h.add("stripped_reg"));
  EXPECT_FALSE(r.object().wants_aux_reset());
  h.script(0, {r.write(3), r.read()});
  h.run();
  auto res = h.check();
  EXPECT_TRUE(res.ok) << "without crashes the stripped object behaves normally:\n"
                      << res.message;
}

}  // namespace
