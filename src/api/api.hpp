// detect::api — the unified façade over the detectable-objects suite.
//
//   handles.hpp   typed object handles building op_desc values
//   registry.hpp  kind-string → factory registry (object_registry)
//   harness.hpp   the harness builder wiring world/board/log/runtime,
//                 plus the free-running arena for real-thread benches
//   executor.hpp  pluggable execution backends (single / sharded / threads)
//                 behind one builder policy
//   replay.hpp    replayable scripted scenarios: replay/dump/parse and the
//                 per-family opcode alphabets generators draw from
//
// Everything a scenario, test, bench, or example needs is reachable from
// this one include.
#pragma once

#include "api/executor.hpp"   // IWYU pragma: export
#include "api/handles.hpp"    // IWYU pragma: export
#include "api/harness.hpp"    // IWYU pragma: export
#include "api/registry.hpp"   // IWYU pragma: export
#include "api/replay.hpp"     // IWYU pragma: export
