// E6 — The runtime cost of detectability (google-benchmark).
//
// The paper notes (§6) that detectability "comes with a price tag in terms
// of space complexity and the need to provide auxiliary state"; this
// experiment quantifies the *time* overhead on real threads: plain objects
// vs Algorithms 1-2 vs the unbounded-id baselines, free-running (no
// simulator hook, emulated NVM in private-cache mode).
#include <benchmark/benchmark.h>

#include <atomic>

#include "baselines/attiya_register.hpp"
#include "baselines/bendavid_cas.hpp"
#include "baselines/plain.hpp"
#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/max_register.hpp"
#include "core/rmw.hpp"

namespace {

using namespace detect;

constexpr int k_max_threads = 16;

// Shared per-benchmark state: rebuilt by thread 0 at the start of each run.
struct bench_world {
  nvm::pmem_domain dom;
  core::announcement_board board{k_max_threads, dom};
};

bench_world* g_world = nullptr;

template <typename Obj>
struct holder {
  static Obj* obj;
};
template <typename Obj>
Obj* holder<Obj>::obj = nullptr;

template <typename Obj, typename Make>
void setup(benchmark::State& state, Make make) {
  if (state.thread_index() == 0) {
    g_world = new bench_world;
    holder<Obj>::obj = make(*g_world).release();
  }
}

template <typename Obj>
void teardown(benchmark::State& state) {
  if (state.thread_index() == 0) {
    delete holder<Obj>::obj;
    holder<Obj>::obj = nullptr;
    delete g_world;
    g_world = nullptr;
  }
}

// --- register workloads -----------------------------------------------------

void bm_plain_register(benchmark::State& state) {
  setup<base::plain_register>(state, [](bench_world& w) {
    return std::make_unique<base::plain_register>(0, w.dom);
  });
  int pid = state.thread_index();
  hist::op_desc wr{0, hist::opcode::reg_write, pid, 0, 0};
  hist::op_desc rd{0, hist::opcode::reg_read, 0, 0, 0};
  for (auto _ : state) {
    holder<base::plain_register>::obj->invoke(pid, wr);
    benchmark::DoNotOptimize(holder<base::plain_register>::obj->invoke(pid, rd));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  teardown<base::plain_register>(state);
}

void bm_detectable_register(benchmark::State& state) {
  setup<core::detectable_register>(state, [](bench_world& w) {
    return std::make_unique<core::detectable_register>(k_max_threads, w.board,
                                                       0, w.dom);
  });
  int pid = state.thread_index();
  hist::op_desc wr{0, hist::opcode::reg_write, pid, 0, 0};
  hist::op_desc rd{0, hist::opcode::reg_read, 0, 0, 0};
  auto& ann = g_world->board.of(pid);
  for (auto _ : state) {
    // Caller-side auxiliary resets are part of the protocol being measured.
    ann.resp.store(hist::k_bottom);
    ann.cp.store(0);
    holder<core::detectable_register>::obj->invoke(pid, wr);
    ann.resp.store(hist::k_bottom);
    ann.cp.store(0);
    benchmark::DoNotOptimize(
        holder<core::detectable_register>::obj->invoke(pid, rd));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  teardown<core::detectable_register>(state);
}

void bm_attiya_register(benchmark::State& state) {
  setup<base::attiya_register>(state, [](bench_world& w) {
    return std::make_unique<base::attiya_register>(k_max_threads, w.board, 0,
                                                   w.dom);
  });
  int pid = state.thread_index();
  hist::op_desc wr{0, hist::opcode::reg_write, pid, 0, 0};
  hist::op_desc rd{0, hist::opcode::reg_read, 0, 0, 0};
  auto& ann = g_world->board.of(pid);
  for (auto _ : state) {
    ann.resp.store(hist::k_bottom);
    ann.cp.store(0);
    holder<base::attiya_register>::obj->invoke(pid, wr);
    ann.resp.store(hist::k_bottom);
    ann.cp.store(0);
    benchmark::DoNotOptimize(holder<base::attiya_register>::obj->invoke(pid, rd));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  teardown<base::attiya_register>(state);
}

// --- CAS workloads ------------------------------------------------------------

void bm_plain_cas(benchmark::State& state) {
  setup<base::plain_cas>(state, [](bench_world& w) {
    return std::make_unique<base::plain_cas>(0, w.dom);
  });
  int pid = state.thread_index();
  for (auto _ : state) {
    hist::op_desc rd{0, hist::opcode::cas_read, 0, 0, 0};
    hist::value_t cur = holder<base::plain_cas>::obj->invoke(pid, rd);
    hist::op_desc op{0, hist::opcode::cas, cur, cur + 1, 0};
    benchmark::DoNotOptimize(holder<base::plain_cas>::obj->invoke(pid, op));
  }
  state.SetItemsProcessed(state.iterations());
  teardown<base::plain_cas>(state);
}

void bm_detectable_cas(benchmark::State& state) {
  setup<core::detectable_cas>(state, [](bench_world& w) {
    return std::make_unique<core::detectable_cas>(k_max_threads, w.board, 0,
                                                  w.dom);
  });
  int pid = state.thread_index();
  auto& ann = g_world->board.of(pid);
  for (auto _ : state) {
    hist::op_desc rd{0, hist::opcode::cas_read, 0, 0, 0};
    ann.resp.store(hist::k_bottom);
    ann.cp.store(0);
    hist::value_t cur = holder<core::detectable_cas>::obj->invoke(pid, rd);
    hist::op_desc op{0, hist::opcode::cas, cur, cur + 1, 0};
    ann.resp.store(hist::k_bottom);
    ann.cp.store(0);
    benchmark::DoNotOptimize(holder<core::detectable_cas>::obj->invoke(pid, op));
  }
  state.SetItemsProcessed(state.iterations());
  teardown<core::detectable_cas>(state);
}

void bm_bendavid_cas(benchmark::State& state) {
  setup<base::bendavid_cas>(state, [](bench_world& w) {
    return std::make_unique<base::bendavid_cas>(k_max_threads, w.board, 0,
                                                w.dom);
  });
  int pid = state.thread_index();
  auto& ann = g_world->board.of(pid);
  for (auto _ : state) {
    hist::op_desc rd{0, hist::opcode::cas_read, 0, 0, 0};
    ann.resp.store(hist::k_bottom);
    ann.cp.store(0);
    hist::value_t cur = holder<base::bendavid_cas>::obj->invoke(pid, rd);
    hist::op_desc op{0, hist::opcode::cas, cur, cur + 1, 0};
    ann.resp.store(hist::k_bottom);
    ann.cp.store(0);
    benchmark::DoNotOptimize(holder<base::bendavid_cas>::obj->invoke(pid, op));
  }
  state.SetItemsProcessed(state.iterations());
  teardown<base::bendavid_cas>(state);
}

// --- counter / max register ---------------------------------------------------

void bm_detectable_counter(benchmark::State& state) {
  setup<core::detectable_counter>(state, [](bench_world& w) {
    return std::make_unique<core::detectable_counter>(k_max_threads, w.board, 0,
                                                      w.dom);
  });
  int pid = state.thread_index();
  auto& ann = g_world->board.of(pid);
  hist::op_desc op{0, hist::opcode::ctr_add, 1, 0, 0};
  for (auto _ : state) {
    ann.resp.store(hist::k_bottom);
    ann.cp.store(0);
    benchmark::DoNotOptimize(holder<core::detectable_counter>::obj->invoke(pid, op));
  }
  state.SetItemsProcessed(state.iterations());
  teardown<core::detectable_counter>(state);
}

void bm_max_register(benchmark::State& state) {
  setup<core::max_register>(state, [](bench_world& w) {
    return std::make_unique<core::max_register>(k_max_threads, w.board, w.dom);
  });
  int pid = state.thread_index();
  std::int64_t v = 0;
  for (auto _ : state) {
    hist::op_desc op{0, hist::opcode::max_write, ++v, 0, 0};
    benchmark::DoNotOptimize(holder<core::max_register>::obj->invoke(pid, op));
  }
  state.SetItemsProcessed(state.iterations());
  teardown<core::max_register>(state);
}

}  // namespace

BENCHMARK(bm_plain_register)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_detectable_register)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_attiya_register)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_plain_cas)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_detectable_cas)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_bendavid_cas)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_detectable_counter)->Threads(1)->Threads(2)->UseRealTime();
BENCHMARK(bm_max_register)->Threads(1)->Threads(2)->UseRealTime();

BENCHMARK_MAIN();
