// The fuzz engine itself: generator determinism, registry-wide qualification
// under generated workloads, dump/parse round-tripping, shrinker validity
// (shrunk scenarios still fail), and differential detection of a deliberately
// lying implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fuzz/fuzz.hpp"

namespace {

using namespace detect;

// Registry kinds as of static init — later tests register extra (broken)
// kinds, and campaign tests must not pick those up.
const std::vector<std::string> g_builtin_kinds =
    api::object_registry::global().kinds();

// ---- generator --------------------------------------------------------------

TEST(scenario_gen, same_seed_same_scenario) {
  for (const char* kind : {"reg", "cas", "queue", "lock"}) {
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
      api::scripted_scenario a = fuzz::generate(seed, kind);
      api::scripted_scenario b = fuzz::generate(seed, kind);
      EXPECT_EQ(api::dump(a), api::dump(b)) << kind << " seed " << seed;
    }
  }
}

TEST(scenario_gen, different_seeds_differ) {
  EXPECT_NE(api::dump(fuzz::generate(1, "reg")),
            api::dump(fuzz::generate(2, "reg")));
  EXPECT_NE(api::dump(fuzz::generate(1, "queue")),
            api::dump(fuzz::generate(3, "queue")));
}

TEST(scenario_gen, iteration_seeds_are_stable_and_spread) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::uint64_t s = fuzz::iteration_seed(7, i);
    EXPECT_EQ(s, fuzz::iteration_seed(7, i));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 64u) << "iteration seeds must not collide";
}

TEST(scenario_gen, respects_config_bounds) {
  fuzz::gen_config cfg;
  cfg.min_procs = 2;
  cfg.max_procs = 4;
  cfg.min_ops = 3;
  cfg.max_ops = 5;
  cfg.max_crashes = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "reg", cfg);
    EXPECT_GE(s.nprocs, 2);
    EXPECT_LE(s.nprocs, 4);
    EXPECT_EQ(static_cast<int>(s.scripts.size()), s.nprocs);
    for (const auto& [pid, ops] : s.scripts) {
      EXPECT_GE(ops.size(), 3u);
      EXPECT_LE(ops.size(), 5u);
    }
    EXPECT_LE(s.crash_steps.size(), 2u);
    EXPECT_TRUE(std::is_sorted(s.crash_steps.begin(), s.crash_steps.end()));
  }
}

TEST(scenario_gen, ops_come_from_the_kinds_family) {
  for (const std::string& kind : g_builtin_kinds) {
    const api::kind_info& info = api::object_registry::global().at(kind);
    const std::vector<hist::opcode>& alphabet =
        api::family_opcodes(info.family);
    api::scripted_scenario s = fuzz::generate(99, kind);
    for (const auto& [pid, ops] : s.scripts) {
      for (const hist::op_desc& d : ops) {
        EXPECT_NE(std::find(alphabet.begin(), alphabet.end(), d.code),
                  alphabet.end())
            << kind << ": opcode " << hist::opcode_name(d.code)
            << " outside its family";
      }
    }
  }
}

TEST(scenario_gen, non_detectable_kinds_get_no_crashes) {
  for (const char* kind : {"plain_reg", "stripped_cas", "stripped_queue"}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      api::scripted_scenario s = fuzz::generate(seed, kind);
      EXPECT_TRUE(s.crash_steps.empty()) << kind;
      EXPECT_EQ(s.policy, core::runtime::fail_policy::skip) << kind;
    }
  }
}

TEST(scenario_gen, shard_knob_is_bounded_and_deterministic) {
  fuzz::gen_config cfg;
  cfg.min_shards = 2;
  cfg.max_shards = 5;
  bool saw_above_min = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "reg", cfg);
    EXPECT_GE(s.shards, 2);
    EXPECT_LE(s.shards, 5);
    EXPECT_EQ(s.backend, api::exec_backend::single);
    EXPECT_EQ(s.shards, fuzz::generate(seed, "reg", cfg).shards);
    saw_above_min = saw_above_min || s.shards > 2;
  }
  EXPECT_TRUE(saw_above_min) << "the knob never left its minimum";

  // max_shards <= 1 disables the knob entirely.
  fuzz::gen_config off;
  off.max_shards = 1;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(fuzz::generate(seed, "reg", off).shards, 1);
  }
}

// ---- registry-wide qualification under generated workloads ------------------

class generated_qualification : public ::testing::TestWithParam<std::string> {};

TEST_P(generated_qualification, generated_scenarios_pass_the_oracle) {
  const std::string kind = GetParam();
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    api::scripted_scenario s = fuzz::generate(seed, kind);
    std::string failure = fuzz::verify_scenario(s);
    EXPECT_TRUE(failure.empty())
        << kind << " seed " << seed << ":\n"
        << failure << "\n"
        << api::dump(s);
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(all_kinds, generated_qualification,
                         ::testing::ValuesIn(g_builtin_kinds),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---- differ -----------------------------------------------------------------

// The ISSUE-3 acceptance bar: for >= 1000 generated seeds, single and
// sharded replays of the same scenario produce identical checker verdicts
// and response streams, verified via fuzz::diff_sharded. Kinds rotate over
// every opcode family with a detectable core implementation.
TEST(differ, sharded_equivalence_holds_for_1000_seeds) {
  const std::vector<std::string> kinds = {"reg",   "cas",   "counter",
                                          "swap",  "tas",   "queue",
                                          "stack", "max_reg", "lock"};
  fuzz::gen_config cfg;
  cfg.max_procs = 2;
  cfg.max_ops = 5;
  cfg.max_crashes = 2;
  cfg.min_shards = 2;  // every scenario carries a sharded diff
  cfg.max_shards = 4;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t seed =
        fuzz::iteration_seed(0x54a2d, static_cast<std::uint64_t>(i));
    const std::string& kind = kinds[static_cast<std::size_t>(i) % kinds.size()];
    api::scripted_scenario s = fuzz::generate(seed, kind, cfg);
    fuzz::diff_report d = fuzz::diff_sharded(s, s.shards);
    ASSERT_TRUE(d.ok) << "seed " << seed << ":\n"
                      << d.message << "\n"
                      << api::dump(s);
  }
}

// Fuzzer-found regression (campaign seed 55, iteration 55): a crash inside
// the announcement window leaves the invoke unlogged, and the nrl adapter's
// re-invoking recovery executes the op in an EARLY recovery attempt that is
// itself crashed before reporting — only a later attempt logs the verdict.
// build_records must anchor the synthesized interval at the first
// recover_begin of that op, not the last, or it fabricates a real-time edge
// and falsely rejects the history.
TEST(differ, recovered_op_interval_anchors_at_first_recovery_attempt) {
  api::scripted_scenario s = api::parse_scenario(
      "kind nrl_reg\n"
      "params 0 64\n"
      "procs 3\n"
      "policy skip\n"
      "sched_seed 14913590177380136610\n"
      "crash_steps 13 87 129\n"
      "script 0 reg_write:0:0 reg_read:0:0\n"
      "script 1 reg_write:4:0\n"
      "script 2 reg_read:0:0 reg_write:0:0 reg_read:0:0\n");
  std::string failure = fuzz::check_scenario(s);
  EXPECT_TRUE(failure.empty()) << failure;
}

// The shrinker legally empties per-process scripts; an empty script still
// submits a client task on the single backend, so the sharded replay must
// schedule one too (on shard 0) or the worlds' task sets — and with them
// seeded schedules and shard-local crash alignment — diverge.
TEST(differ, sharded_equivalence_survives_empty_scripts) {
  api::scripted_scenario s;
  s.kind = "reg";
  s.nprocs = 3;
  s.sched_seed = 1234;
  s.crash_steps = {7, 19};
  s.policy = core::runtime::fail_policy::retry;
  s.shards = 3;
  s.scripts[0] = {{0, hist::opcode::reg_write, 5, 0, 0},
                  {0, hist::opcode::reg_read, 0, 0, 0}};
  s.scripts[1] = {};  // emptied by a shrink step
  s.scripts[2] = {{0, hist::opcode::reg_read, 0, 0, 0}};
  fuzz::diff_report d = fuzz::diff_sharded(s, s.shards);
  EXPECT_TRUE(d.ok) << d.message;
}

TEST(differ, core_kinds_agree_with_their_variants) {
  for (const char* kind : {"reg", "cas", "counter", "queue"}) {
    api::scripted_scenario s = fuzz::generate(5, kind);
    for (const std::string& variant : fuzz::variants_of(kind)) {
      fuzz::diff_report d = fuzz::diff_against(s, variant);
      EXPECT_TRUE(d.ok) << kind << " vs " << variant << ":\n" << d.message;
    }
  }
}

TEST(differ, family_mismatch_throws) {
  api::scripted_scenario s = fuzz::generate(5, "reg");
  EXPECT_THROW(fuzz::diff_against(s, "queue"), std::invalid_argument);
}

TEST(differ, kinds_without_variants_have_none) {
  EXPECT_TRUE(fuzz::variants_of("max_reg").empty());
  EXPECT_TRUE(fuzz::variants_of("plain_reg").empty());
}

// A counter whose read responses are off by one — the differential target:
// crash-free single-process replays against the real counter must diverge.
struct lying_counter : core::detectable_object {
  api::created_object inner;

  explicit lying_counter(api::created_object in) : inner(std::move(in)) {}

  hist::value_t invoke(int pid, const hist::op_desc& op) override {
    hist::value_t v = inner.primary().invoke(pid, op);
    return op.code == hist::opcode::ctr_read ? v + 1 : v;
  }
  core::recovery_result recover(int pid, const hist::op_desc& op) override {
    return inner.primary().recover(pid, op);
  }
  bool wants_aux_reset() const override {
    return inner.primary().wants_aux_reset();
  }
};

void register_lying_counter_once() {
  auto& reg = api::object_registry::global();
  if (reg.contains("test_lying_counter")) return;
  api::kind_info info;
  info.name = "test_lying_counter";
  info.family = api::op_family::counter;
  info.detectable = false;
  info.make = [](const api::object_env& e, const api::object_params& p) {
    api::created_object c;
    c.owned.push_back(std::make_unique<lying_counter>(
        api::object_registry::global().create("counter", e, p)));
    return c;
  };
  info.make_spec = [](const api::object_params& p) {
    return api::object_registry::global().make_spec("counter", p);
  };
  reg.add(std::move(info));
}

api::scripted_scenario counter_scenario(
    std::vector<std::vector<hist::opcode>> per_proc_ops) {
  api::scripted_scenario s;
  s.kind = "counter";
  s.nprocs = static_cast<int>(per_proc_ops.size());
  int pid = 0;
  for (const auto& codes : per_proc_ops) {
    std::vector<hist::op_desc> ops;
    for (hist::opcode c : codes) {
      hist::op_desc d;
      d.code = c;
      if (c == hist::opcode::ctr_add) d.a = 1;
      ops.push_back(d);
    }
    s.scripts[pid++] = std::move(ops);
  }
  return s;
}

TEST(differ, catches_a_lying_implementation) {
  register_lying_counter_once();
  using hist::opcode;
  api::scripted_scenario s =
      counter_scenario({{opcode::ctr_add, opcode::ctr_read}});
  fuzz::diff_report d = fuzz::diff_against(s, "test_lying_counter");
  EXPECT_FALSE(d.ok);
  EXPECT_NE(d.message.find("test_lying_counter"), std::string::npos)
      << d.message;
}

// ---- shrinker ---------------------------------------------------------------

TEST(shrinker, synthetic_predicate_shrinks_to_one_op) {
  fuzz::gen_config cfg;
  cfg.min_procs = 3;
  cfg.max_procs = 3;
  cfg.min_ops = 6;
  cfg.max_ops = 8;
  api::scripted_scenario s = fuzz::generate(77, "queue", cfg);
  // Plant the needle the predicate looks for.
  s.scripts[1][2] = {0, hist::opcode::enq, 55, 0, 0};
  s.policy = core::runtime::fail_policy::retry;
  s.shared_cache = true;

  auto fails = [](const api::scripted_scenario& c) {
    for (const auto& [pid, ops] : c.scripts) {
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::enq && d.a == 55) return true;
      }
    }
    return false;
  };
  api::scripted_scenario shrunk = fuzz::shrink(s, fails);
  EXPECT_TRUE(fails(shrunk)) << "shrunk scenario must still fail";
  EXPECT_EQ(shrunk.total_ops(), 1u) << api::dump(shrunk);
  EXPECT_EQ(shrunk.nprocs, 1);
  EXPECT_TRUE(shrunk.crash_steps.empty());
  EXPECT_EQ(shrunk.policy, core::runtime::fail_policy::skip);
  EXPECT_FALSE(shrunk.shared_cache);
}

// Shrinker edits must never cross the usage contracts the generator
// enforces — otherwise the minimized artifact can "fail" for the contract
// violation instead of the original defect.
TEST(shrinker, preserves_usage_contracts) {
  // Lock: find a generated crashy scenario (generate forces retry there).
  fuzz::gen_config cfg;
  cfg.min_procs = 2;
  cfg.max_procs = 2;
  cfg.min_ops = 6;
  cfg.max_ops = 6;
  api::scripted_scenario lock_s;
  for (std::uint64_t seed = 1;; ++seed) {
    lock_s = fuzz::generate(seed, "lock", cfg);
    if (!lock_s.crash_steps.empty()) break;
    ASSERT_LT(seed, 100u) << "no crashy lock scenario in 100 seeds";
  }
  ASSERT_EQ(lock_s.policy, core::runtime::fail_policy::retry);

  // Predicate: "still crashy and still contends" — aggressive shrinking
  // would love to drop the crash plan, flip retry to skip, or delete a
  // release; the contract guard must block the unsound edits.
  auto lock_fails = [](const api::scripted_scenario& c) {
    if (c.crash_steps.empty()) return false;
    int tries = 0;
    for (const auto& [pid, ops] : c.scripts) {
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::lock_try) ++tries;
      }
    }
    return tries >= 2;
  };
  ASSERT_TRUE(lock_fails(lock_s));
  api::scripted_scenario lock_shrunk = fuzz::shrink(lock_s, lock_fails);
  EXPECT_TRUE(lock_fails(lock_shrunk));
  EXPECT_EQ(lock_shrunk.policy, core::runtime::fail_policy::retry)
      << "crashy lock scenarios must keep fail_policy::retry";
  for (const auto& [pid, ops] : lock_shrunk.scripts) {
    bool may_hold = false;
    for (const hist::op_desc& d : ops) {
      if (d.code == hist::opcode::lock_try) {
        EXPECT_FALSE(may_hold) << "try_lock while possibly holding\n"
                               << api::dump(lock_shrunk);
        may_hold = true;
      } else if (d.code == hist::opcode::lock_release) {
        may_hold = false;
      }
    }
  }

  // CAS: the zero-arguments pass must keep old != new.
  api::scripted_scenario cas_s = fuzz::generate(5, "cas");
  auto cas_fails = [](const api::scripted_scenario& c) {
    for (const auto& [pid, ops] : c.scripts) {
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::cas) return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(cas_fails(cas_s));
  api::scripted_scenario cas_shrunk = fuzz::shrink(cas_s, cas_fails);
  EXPECT_TRUE(cas_fails(cas_shrunk));
  for (const auto& [pid, ops] : cas_shrunk.scripts) {
    for (const hist::op_desc& d : ops) {
      if (d.code == hist::opcode::cas) {
        EXPECT_NE(d.a, d.b) << "degenerate Cas(x, x) after shrinking";
      }
    }
  }
}

TEST(shrinker, passing_scenario_is_returned_unchanged) {
  api::scripted_scenario s = fuzz::generate(3, "reg");
  api::scripted_scenario out =
      fuzz::shrink(s, [](const api::scripted_scenario&) { return false; });
  EXPECT_EQ(api::dump(out), api::dump(s));
}

// Shrinker validity against the real differ: minimizing a genuine
// differential failure keeps it failing, down to the single lying read.
TEST(shrinker, real_diff_failure_shrinks_to_the_lying_read) {
  register_lying_counter_once();
  using hist::opcode;
  api::scripted_scenario s = counter_scenario(
      {{opcode::ctr_add, opcode::ctr_read, opcode::ctr_add, opcode::ctr_read,
        opcode::ctr_add}});
  auto fails = [](const api::scripted_scenario& c) {
    return !fuzz::diff_against(c, "test_lying_counter").ok;
  };
  ASSERT_TRUE(fails(s));
  api::scripted_scenario shrunk = fuzz::shrink(s, fails);
  EXPECT_TRUE(fails(shrunk)) << "shrunk scenario must still fail";
  ASSERT_EQ(shrunk.total_ops(), 1u) << api::dump(shrunk);
  EXPECT_EQ(shrunk.scripts.begin()->second[0].code, opcode::ctr_read)
      << "the minimal failing scenario is the lone lying read";
}

// ---- dump / parse round-tripping --------------------------------------------

TEST(replay_dump, round_trips_exactly) {
  for (const char* kind : {"reg", "cas", "queue", "lock"}) {
    for (std::uint64_t seed : {101ull, 202ull}) {
      api::scripted_scenario s = fuzz::generate(seed, kind);
      std::string text = api::dump(s);
      api::scripted_scenario parsed = api::parse_scenario(text);
      EXPECT_EQ(api::dump(parsed), text) << kind << " seed " << seed;
    }
  }
}

TEST(replay_dump, parsed_scenario_replays_identically) {
  api::scripted_scenario s = fuzz::generate(7, "cas");
  api::scripted_scenario parsed = api::parse_scenario(api::dump(s));
  api::scripted_outcome a = api::replay(s);
  api::scripted_outcome b = api::replay(parsed);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_EQ(a.report.steps, b.report.steps);
  EXPECT_EQ(a.report.crashes, b.report.crashes);
  EXPECT_EQ(a.check.ok, b.check.ok);
}

TEST(replay_dump, malformed_input_throws) {
  EXPECT_THROW(api::parse_scenario(""), std::invalid_argument);
  EXPECT_THROW(api::parse_scenario("bogus line\n"), std::invalid_argument);
  EXPECT_THROW(api::parse_scenario("kind reg\nscript 0 frobnicate:1:2\n"),
               std::invalid_argument);
  EXPECT_THROW(api::parse_scenario("kind reg\npolicy maybe\n"),
               std::invalid_argument);
}

TEST(replay_dump, parse_errors_carry_line_number_and_token) {
  auto message_of = [](const std::string& text) -> std::string {
    try {
      api::parse_scenario(text);
    } catch (const std::invalid_argument& ex) {
      return ex.what();
    }
    return {};
  };

  // A bad op token on line 3 (after a comment line).
  std::string msg =
      message_of("kind reg\n# comment\nscript 0 reg_write:1:0 zap\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'zap'"), std::string::npos) << msg;

  // An unknown opcode surfaces its name and line even though the throw
  // originates in opcode_from_name.
  msg = message_of("kind reg\nscript 0 frobnicate:1:2\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("frobnicate"), std::string::npos) << msg;

  // Unknown keys and bad values name their line too.
  msg = message_of("kind reg\nprocs 2\nwibble 7\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'wibble'"), std::string::npos) << msg;

  msg = message_of("kind reg\nbackend warp\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("warp"), std::string::npos) << msg;
}

TEST(replay_dump, legacy_dumps_without_backend_fields_parse_as_single) {
  // A pre-executor (v1) dump: no backend / shards lines.
  api::scripted_scenario s = api::parse_scenario(
      "# detect scripted_scenario v1\n"
      "kind reg\n"
      "params 0 64\n"
      "procs 2\n"
      "policy skip\n"
      "shared_cache 0\n"
      "sched_seed 7\n"
      "crash_steps 5\n"
      "script 0 reg_write:3:0 reg_read:0:0\n"
      "script 1 reg_read:0:0\n");
  EXPECT_EQ(s.backend, api::exec_backend::single);
  EXPECT_EQ(s.shards, 1);
  EXPECT_TRUE(api::replay(s).check.ok);
}

TEST(replay_dump, backend_and_shards_round_trip) {
  api::scripted_scenario s = fuzz::generate(21, "queue");
  s.backend = api::exec_backend::sharded;
  s.shards = 3;
  std::string text = api::dump(s);
  EXPECT_NE(text.find("backend sharded"), std::string::npos);
  EXPECT_NE(text.find("shards 3"), std::string::npos);
  api::scripted_scenario parsed = api::parse_scenario(text);
  EXPECT_EQ(parsed.backend, api::exec_backend::sharded);
  EXPECT_EQ(parsed.shards, 3);
  EXPECT_EQ(api::dump(parsed), text);
}

TEST(replay_dump, failure_artifact_parses_back_to_the_shrunk_scenario) {
  fuzz::fuzz_failure f;
  f.iteration = 3;
  f.seed = 1234;
  f.kind = "reg";
  f.message = "synthetic\nmultiline message";
  f.scenario = fuzz::generate(1234, "reg");
  f.shrunk = fuzz::generate(1234, "reg", {.min_procs = 1, .max_procs = 1});
  api::scripted_scenario parsed = api::parse_scenario(f.to_artifact());
  EXPECT_EQ(api::dump(parsed), api::dump(f.shrunk));
}

// ---- campaign engine --------------------------------------------------------

TEST(run_fuzz, clean_campaign_over_builtin_kinds_is_deterministic) {
  fuzz::fuzz_options opt;
  opt.base_seed = 9;
  opt.iterations = static_cast<std::uint64_t>(g_builtin_kinds.size());
  opt.kinds = g_builtin_kinds;  // pin: later tests add broken kinds
  opt.gen.max_procs = 2;
  opt.gen.max_ops = 5;

  fuzz::fuzz_stats a = fuzz::run_fuzz(opt);
  EXPECT_FALSE(a.failure.has_value())
      << a.failure->message << "\n"
      << api::dump(a.failure->scenario);
  EXPECT_EQ(a.iterations, opt.iterations);

  fuzz::fuzz_stats b = fuzz::run_fuzz(opt);
  EXPECT_EQ(a.replays, b.replays) << "campaigns must be reproducible";
  EXPECT_FALSE(b.failure.has_value());
}

TEST(run_fuzz, reports_and_shrinks_a_failing_kind) {
  register_lying_counter_once();
  fuzz::fuzz_options opt;
  opt.base_seed = 5;
  opt.iterations = 50;
  opt.kinds = {"test_lying_counter"};

  fuzz::fuzz_stats stats = fuzz::run_fuzz(opt);
  ASSERT_TRUE(stats.failure.has_value())
      << "the lying counter must be caught by the oracle";
  const fuzz::fuzz_failure& f = *stats.failure;
  EXPECT_EQ(f.kind, "test_lying_counter");
  EXPECT_EQ(f.seed, fuzz::iteration_seed(opt.base_seed, f.iteration));
  EXPECT_FALSE(f.message.empty());
  EXPECT_LE(f.shrunk.total_ops(), f.scenario.total_ops());
  // The shrunk scenario still fails the same oracle.
  EXPECT_FALSE(fuzz::check_scenario(f.shrunk).empty());
  // And the artifact parses back to it.
  EXPECT_EQ(api::dump(api::parse_scenario(f.to_artifact())),
            api::dump(f.shrunk));
}

}  // namespace
