// detect::serve::rebalancer — the hot-shard control loop's planning brain.
//
// The server feeds it one observation per batch round: how many ops each
// object executed. The rebalancer keeps a sliding window of those
// observations and, every `check_every` rounds, folds the window into a
// per-shard load vector under the current object→shard assignment. When the
// imbalance (api::load_ratio — max/ideal) stays at or above `hot_ratio` for
// `sustain` consecutive evaluations, it plans a greedy repair: move the
// hottest objects off the hottest shard onto the coldest one, each move
// accepted only if it strictly shrinks the gap between them.
//
// The class is pure bookkeeping — it never touches the executor. The server
// applies the returned plan with executor::migrate() between batch rounds
// (the only point where shards are quiescent) and logs every move into
// serve::stats. Keeping planning separate from actuation makes the trigger
// logic unit-testable with synthetic load shapes, no worlds required.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "api/placement.hpp"

namespace detect::serve {

struct rebalance_policy {
  bool enabled = false;
  /// Rounds of load history folded into each evaluation.
  int window = 8;
  /// Evaluate (and possibly plan) every N rounds.
  int check_every = 8;
  /// Trigger threshold on api::load_ratio (1.0 = perfect spread, K = all
  /// load on one shard of K).
  double hot_ratio = 1.5;
  /// Consecutive hot evaluations required before a plan fires — one noisy
  /// window never moves anything.
  int sustain = 2;
  /// Cap on moves per fired plan.
  int max_moves = 4;
};

struct planned_move {
  std::uint32_t object = 0;
  int from = 0;
  int to = 0;
};

class rebalancer {
 public:
  rebalancer(rebalance_policy pol, int shards)
      : pol_(pol), shards_(shards) {}

  const rebalance_policy& policy() const noexcept { return pol_; }

  /// Record one finished batch round's per-object executed-op counts.
  void record_round(const std::map<std::uint32_t, std::uint64_t>& object_ops);

  /// The window's per-shard load under `homes` (object → current shard).
  /// Objects missing from `homes` are ignored.
  std::vector<std::uint64_t> window_load(
      const std::map<std::uint32_t, int>& homes) const;

  /// api::load_ratio of window_load(homes).
  double window_ratio(const std::map<std::uint32_t, int>& homes) const;

  /// Evaluate after record_round(). Returns a (possibly empty) move plan;
  /// non-empty only when enabled, the evaluation cadence is due, and the
  /// imbalance has been sustained. Objects in `frozen` (e.g. with queued
  /// but unscripted ops, which must not change home) are never planned.
  std::vector<planned_move> maybe_plan(
      const std::map<std::uint32_t, int>& homes,
      const std::vector<std::uint32_t>& frozen = {});

  /// The ratio computed by the last evaluation (0.0 before any).
  double last_ratio() const noexcept { return last_ratio_; }

 private:
  rebalance_policy pol_;
  int shards_;
  std::deque<std::map<std::uint32_t, std::uint64_t>> window_;
  std::uint64_t rounds_seen_ = 0;
  int hot_streak_ = 0;
  double last_ratio_ = 0.0;
};

}  // namespace detect::serve
