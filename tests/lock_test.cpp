// Recoverable lock and detectable swap: mutual exclusion across crashes,
// holder-survives-crash (RME behaviour), and swap's capsule recovery.
#include <gtest/gtest.h>

#include "core/rlock.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario lock_scenario(int nprocs,
                       std::function<scripts(api::lock)> make_scripts,
                       core::runtime::fail_policy policy =
                           core::runtime::fail_policy::skip) {
  return one_object<api::lock>("lock", nprocs, std::move(make_scripts), policy);
}

scenario swap_scenario(int nprocs,
                       std::function<scripts(api::swap_reg)> make_scripts,
                       core::runtime::fail_policy policy =
                           core::runtime::fail_policy::skip) {
  return one_object<api::swap_reg>("swap", nprocs, std::move(make_scripts),
                                   policy);
}

// ---- recoverable_lock --------------------------------------------------------

TEST(recoverable_lock, sequential_acquire_release) {
  auto cfg = lock_scenario(1, [](api::lock l) {
    return scripts{{0,
                    {l.try_lock(0), l.release(0), l.try_lock(0), l.try_lock(0),
                     l.release(0)}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(recoverable_lock, release_without_holding_returns_false) {
  auto cfg = lock_scenario(2, [](api::lock l) {
    return scripts{
        {0, {l.try_lock(0)}},
        {1, {l.release(1)}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << out.check.message;
  }
}

TEST(recoverable_lock, at_most_one_holder) {
  auto cfg = lock_scenario(3, [](api::lock l) {
    return scripts{
        {0, {l.try_lock(0)}},
        {1, {l.try_lock(1)}},
        {2, {l.try_lock(2)}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(recoverable_lock, crash_sweep_acquire_release_cycle) {
  auto cfg = lock_scenario(2, [](api::lock l) {
    return scripts{
        {0, {l.try_lock(0), l.release(0)}},
        {1, {l.try_lock(1), l.release(1)}},
    };
  });
  crash_sweep(cfg, 3);
}

TEST(recoverable_lock, double_crash_pair_sweep) {
  auto cfg = lock_scenario(2, [](api::lock l) {
    return scripts{
        {0, {l.try_lock(0), l.release(0)}},
        {1, {l.try_lock(1)}},
    };
  });
  crash_pair_sweep(cfg, 9, /*stride=*/3);
}

TEST(recoverable_lock, crash_fuzz_retry) {
  auto cfg = lock_scenario(3,
                           [](api::lock l) {
                             return scripts{
                                 {0, {l.try_lock(0), l.release(0)}},
                                 {1, {l.try_lock(1), l.release(1)}},
                                 {2, {l.try_lock(2), l.release(2)}},
                             };
                           },
                           core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 120, 2);
}

TEST(recoverable_lock, holder_survives_crash) {
  // RME behaviour: a crash does not release the lock; the owner's recovery
  // reports the acquire linearized.
  auto h = api::harness::builder().procs(2).build();
  api::lock l = h.add_lock();
  auto& lock = l.as<core::recoverable_lock>();
  h.script(0, {l.try_lock(0)});
  h.run();
  EXPECT_EQ(lock.holder(), 0);
  h.world().crash();
  EXPECT_EQ(lock.holder(), 0) << "ownership is durable";
  auto rec = lock.recover(0, l.try_lock(0));
  EXPECT_EQ(rec.verdict, hist::recovery_verdict::linearized);
  EXPECT_EQ(rec.response, hist::k_true);
}

TEST(recoverable_lock, acquire_recovery_is_sound_when_cas_lost) {
  // p1 holds the lock; p0's trylock fails; recovery must not claim success.
  auto h = api::harness::builder().procs(2).build();
  api::lock l = h.add_lock();
  auto& lock = l.as<core::recoverable_lock>();
  h.script(1, {l.try_lock(1)});
  h.run();
  ASSERT_EQ(lock.holder(), 1);
  // Simulate p0 announcing a trylock then crashing before/after its steps.
  h.board().of(0).resp.store(hist::k_bottom);
  h.board().of(0).cp.store(0);
  auto rec = lock.recover(0, l.try_lock(0));
  EXPECT_EQ(rec.verdict, hist::recovery_verdict::fail)
      << "owner is p1; p0's acquire cannot have been linearized";
}

// ---- detectable_swap -----------------------------------------------------------

TEST(detectable_swap, sequential_chain) {
  auto cfg = swap_scenario(1, [](api::swap_reg s) {
    return scripts{{0, {s.swap(5), s.swap(9), s.swap(2)}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_swap, concurrent_swaps_form_a_chain) {
  // Swap responses must chain: each op returns the previous op's value —
  // the spec check enforces the permutation structure.
  auto cfg = swap_scenario(3, [](api::swap_reg s) {
    return scripts{
        {0, {s.swap(1), s.swap(2)}},
        {1, {s.swap(10), s.swap(20)}},
        {2, {s.swap(100)}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_swap, crash_sweep) {
  auto cfg = swap_scenario(2, [](api::swap_reg s) {
    return scripts{
        {0, {s.swap(1), s.swap(2)}},
        {1, {s.swap(7)}},
    };
  });
  crash_sweep(cfg, 5);
}

TEST(detectable_swap, double_crash_pair_sweep) {
  auto cfg = swap_scenario(2, [](api::swap_reg s) {
    return scripts{
        {0, {s.swap(1)}},
        {1, {s.swap(7)}},
    };
  });
  crash_pair_sweep(cfg, 13, /*stride=*/2);
}

TEST(detectable_swap, crash_fuzz_retry_exactly_once) {
  auto cfg = swap_scenario(2,
                           [](api::swap_reg s) {
                             return scripts{
                                 {0, {s.swap(1), s.swap(2)}},
                                 {1, {s.swap(7), s.swap(8)}},
                             };
                           },
                           core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 120, 2);
}

class lock_property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(lock_property, mutual_exclusion_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = lock_scenario(2,
                           [](api::lock l) {
                             return scripts{
                                 {0, {l.try_lock(0), l.release(0)}},
                                 {1, {l.try_lock(1), l.release(1)}},
                             };
                           },
                           core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 86028121);
}

INSTANTIATE_TEST_SUITE_P(sweep, lock_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
