// E5 — Wait-freedom step bounds (Lemmas 1-2).
//
// Paper claim: Algorithms 1-2 are wait-free — every operation and recovery
// function completes in a bounded number of its own steps, independent of
// the other processes' behaviour. Algorithm 1's write performs an O(N)
// toggle loop; Algorithm 2's CAS is O(1). The max register's read (Algorithm
// 3) is only lock-free: its double collect can be perturbed.
//
// Measured: worst-case simulator steps per operation across adversarial
// random schedules, as N grows.
#include <algorithm>

#include "bench_util.hpp"
#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/max_register.hpp"
#include "core/runtime.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

namespace {

using namespace detect;

/// Count the maximum steps any single operation needed: run the workload,
/// then divide total steps by ops as the mean and track per-run max via
/// repeated single-op runs under random adversaries.
struct step_stats {
  double mean = 0;
  std::uint64_t worst = 0;
};

template <typename MakeObject, typename MakeScript>
step_stats measure(int nprocs, MakeObject make_object, MakeScript make_script,
                   int seeds) {
  step_stats st;
  std::uint64_t total_steps = 0;
  std::uint64_t total_ops = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::world w(nprocs, {.max_steps = 2'000'000});
    core::announcement_board board(nprocs, w.domain());
    hist::log lg;
    core::runtime rt(w, lg, board);
    auto obj = make_object(nprocs, board, w.domain());
    rt.register_object(0, *obj);
    std::uint64_t ops = 0;
    for (int p = 0; p < nprocs; ++p) {
      auto script = make_script(p);
      ops += script.size();
      rt.set_script(p, script);
    }
    sim::random_scheduler sched(static_cast<std::uint64_t>(seed) * 2654435761u);
    auto rep = rt.run(sched);
    total_steps += rep.steps;
    total_ops += ops;
    // Upper-bound the worst single op: run each op solo and count.
    st.worst = std::max(st.worst, rep.steps / std::max<std::uint64_t>(ops, 1));
  }
  st.mean = static_cast<double>(total_steps) / static_cast<double>(total_ops);
  return st;
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::row;
  using bench::rule;

  std::printf(
      "E5 — Steps per operation vs N (mean over random schedules; includes\n"
      "the runtime's announcement/logging steps, identical for all objects)\n\n");
  row({"N", "alg1 write", "alg2 cas", "alg3 wmax", "alg3 read"});
  rule(5);
  for (int n : {2, 4, 8, 16}) {
    auto reg = measure(
        n,
        [](int np, core::announcement_board& b, nvm::pmem_domain& d) {
          return std::make_unique<core::detectable_register>(np, b, 0, d);
        },
        [](int p) {
          return std::vector<hist::op_desc>{
              {0, hist::opcode::reg_write, p, 0, 0},
              {0, hist::opcode::reg_write, p + 1, 0, 0}};
        },
        5);
    auto cas = measure(
        n,
        [](int np, core::announcement_board& b, nvm::pmem_domain& d) {
          return std::make_unique<core::detectable_cas>(np, b, 0, d);
        },
        [](int p) {
          return std::vector<hist::op_desc>{
              {0, hist::opcode::cas, p, p + 1, 0},
              {0, hist::opcode::cas, p + 1, p + 2, 0}};
        },
        5);
    auto maxw = measure(
        n,
        [](int np, core::announcement_board& b, nvm::pmem_domain& d) {
          return std::make_unique<core::max_register>(np, b, d);
        },
        [](int p) {
          return std::vector<hist::op_desc>{
              {0, hist::opcode::max_write, p + 1, 0, 0},
              {0, hist::opcode::max_write, p + 2, 0, 0}};
        },
        5);
    // Solo read: isolates the N-entry double collect (2N loads minimum).
    auto maxr = measure(
        n,
        [](int np, core::announcement_board& b, nvm::pmem_domain& d) {
          return std::make_unique<core::max_register>(np, b, d);
        },
        [](int p) {
          if (p == 0) {
            return std::vector<hist::op_desc>{{0, hist::opcode::max_read, 0, 0, 0}};
          }
          return std::vector<hist::op_desc>{};
        },
        5);
    row({std::to_string(n), fmt(reg.mean, 1), fmt(cas.mean, 1),
         fmt(maxw.mean, 1), fmt(maxr.mean, 1)});
  }
  std::printf(
      "\nShape check: alg1 write grows linearly in N (the toggle for-loop of\n"
      "lines 9-10); alg2 CAS stays flat (wait-free O(1)); alg3's writes are\n"
      "O(1) but its read grows at least linearly (N-entry collects) and is\n"
      "only lock-free — contention inflates it further.\n");
  return 0;
}
