// Scripted-scenario replay and serialization.
#include "api/replay.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace detect::api {

const scenario_object& scripted_scenario::primary() const {
  if (objects.empty()) {
    throw std::logic_error("scripted_scenario: no objects declared");
  }
  return objects.front();
}

const scenario_object* scripted_scenario::find_object(std::uint32_t id) const {
  for (const scenario_object& o : objects) {
    if (o.id == id) return &o;
  }
  return nullptr;
}

std::uint32_t scripted_scenario::add_object(std::string kind,
                                            object_params params) {
  std::uint32_t id = 0;
  while (find_object(id) != nullptr) ++id;
  objects.push_back({id, std::move(kind), params});
  return id;
}

namespace {

std::unique_ptr<executor> build_executor(const scripted_scenario& s) {
  if (s.objects.empty()) {
    throw std::invalid_argument("replay: scenario declares no objects");
  }
  for (const auto& [id, shard] : s.migrations) {
    if (s.find_object(id) == nullptr) {
      throw std::invalid_argument("replay: migration targets undeclared "
                                  "object " + std::to_string(id));
    }
    if (shard < 0 || shard >= std::max(1, s.shards)) {
      throw std::invalid_argument(
          "replay: migration of object " + std::to_string(id) +
          " names shard " + std::to_string(shard) + ", but the scenario has " +
          std::to_string(std::max(1, s.shards)) + " shard(s)");
    }
  }
  executor::builder b;
  b.backend(s.backend)
      .procs(s.nprocs)
      .fail_policy(s.policy)
      .seed(s.sched_seed)
      .schedule(s.sched)
      .persist(s.persist)
      .visibility(s.visibility);
  if (!s.drain_steps.empty()) b.drain_at(s.drain_steps);
  // `shards` doubles as the equivalence-diff knob on the one-world backends
  // (see the field comment), where build() would reject it as a world count.
  if (s.backend == exec_backend::sharded) {
    b.shards(s.shards).placement(s.placement);
  }
  if (!s.crash_steps.empty()) b.crash_at(s.crash_steps);
  if (s.shared_cache) b.shared_cache();
  std::unique_ptr<executor> ex = b.build();
  // Declared ids are honored verbatim: on the sharded backend id and
  // declaration order feed the placement policy, so routing is part of the
  // scenario's identity.
  for (const scenario_object& o : s.objects) ex->add_as(o.id, o.kind, o.params);
  for (const auto& [pid, ops] : s.scripts) {
    if (pid < 0 || pid >= s.nprocs) {
      throw std::invalid_argument("replay: script pid " + std::to_string(pid) +
                                  " out of range for " +
                                  std::to_string(s.nprocs) + " procs");
    }
    for (const hist::op_desc& d : ops) {
      if (s.find_object(d.object) == nullptr) {
        throw std::invalid_argument(
            "replay: op " + std::string(hist::opcode_name(d.code)) +
            " targets undeclared object " + std::to_string(d.object));
      }
    }
    ex->script(pid, ops);
  }
  return ex;
}

scripted_outcome replay_impl(const scripted_scenario& s, bool check,
                             const hist::check_options& opt = {}) {
  std::unique_ptr<executor> ex = build_executor(s);
  scripted_outcome out;
  out.report = ex->run();
  if (!s.migrations.empty() && !out.report.hit_step_limit) {
    // Round two: apply the migration plan (a semantic no-op on one-world
    // backends, skipped there so cross-backend diffs compare the same op
    // sequence), then run the same scripts again over the transplanted
    // state.
    if (ex->backend() == exec_backend::sharded) {
      for (const auto& [id, shard] : s.migrations) ex->migrate(id, shard);
    }
    for (const auto& [pid, ops] : s.scripts) ex->script(pid, ops);
    sim::run_report second = ex->run();
    // Per-world step counters are cumulative across runs, so the second
    // report's step count already covers round one.
    out.report.steps = second.steps;
    out.report.drain_steps = second.drain_steps;
    out.report.max_pending_stores = second.max_pending_stores;
    out.report.crashes += second.crashes;
    out.report.hit_step_limit |= second.hit_step_limit;
    if (out.report.limit_note.empty()) out.report.limit_note = second.limit_note;
    out.report.lost_persistence |= second.lost_persistence;
  }
  if (check) {
    // Memo entries must never cross memory-model pairs: the differ shares
    // one memo over a scenario's variant family, and a verdict computed
    // under (sc, strict) is not a verdict about the same stream replayed
    // under (tso, buffered) — see check_options::model_salt.
    hist::check_options salted = opt;
    salted.model_salt =
        (static_cast<std::uint64_t>(s.visibility) << 8) |
        static_cast<std::uint64_t>(s.persist);
    out.check = ex->check(salted);
  }
  out.events = ex->events();
  out.log_text = ex->log_text();
  return out;
}

}  // namespace

scripted_outcome replay(const scripted_scenario& s) {
  return replay_impl(s, /*check=*/true);
}

scripted_outcome replay(const scripted_scenario& s,
                        const hist::check_options& opt) {
  return replay_impl(s, /*check=*/true, opt);
}

scripted_outcome replay(const scripted_scenario& s, hist::lin_memo* memo) {
  hist::check_options opt;
  opt.memo = memo;
  return replay_impl(s, /*check=*/true, opt);
}

scripted_outcome replay_unchecked(const scripted_scenario& s) {
  return replay_impl(s, /*check=*/false);
}

// ---------------------------------------------------------------------------
// opcode families

const std::vector<hist::opcode>& family_opcodes(op_family family) {
  using hist::opcode;
  static const std::vector<opcode> reg_ops = {opcode::reg_write,
                                              opcode::reg_read};
  static const std::vector<opcode> swap_ops = {opcode::swap, opcode::reg_read};
  static const std::vector<opcode> cas_ops = {opcode::cas, opcode::cas_read};
  static const std::vector<opcode> ctr_ops = {opcode::ctr_add,
                                              opcode::ctr_read};
  static const std::vector<opcode> tas_ops = {opcode::tas_set,
                                              opcode::tas_reset};
  static const std::vector<opcode> queue_ops = {opcode::enq, opcode::deq};
  static const std::vector<opcode> stack_ops = {opcode::push, opcode::pop};
  static const std::vector<opcode> max_ops = {opcode::max_write,
                                              opcode::max_read};
  static const std::vector<opcode> lock_ops = {opcode::lock_try,
                                               opcode::lock_release};
  switch (family) {
    case op_family::reg: return reg_ops;
    case op_family::swap: return swap_ops;
    case op_family::cas: return cas_ops;
    case op_family::counter: return ctr_ops;
    case op_family::tas: return tas_ops;
    case op_family::queue: return queue_ops;
    case op_family::stack: return stack_ops;
    case op_family::max_reg: return max_ops;
    case op_family::lock: return lock_ops;
  }
  throw std::logic_error("family_opcodes: unhandled family");
}

const char* family_name(op_family family) noexcept {
  switch (family) {
    case op_family::reg: return "reg";
    case op_family::swap: return "swap";
    case op_family::cas: return "cas";
    case op_family::counter: return "counter";
    case op_family::tas: return "tas";
    case op_family::queue: return "queue";
    case op_family::stack: return "stack";
    case op_family::max_reg: return "max_reg";
    case op_family::lock: return "lock";
  }
  return "?";
}

hist::opcode opcode_from_name(const std::string& name) {
  // Built from the registered kinds' family alphabets (plus nop): a new
  // opcode is parseable as soon as some registry kind speaks it, with no
  // enum-bound to forget — a family nothing registers cannot appear in a
  // dump in the first place.
  static const std::map<std::string, hist::opcode> table = [] {
    std::map<std::string, hist::opcode> t;
    t.emplace(hist::opcode_name(hist::opcode::nop), hist::opcode::nop);
    const object_registry& reg = object_registry::global();
    for (const std::string& kind : reg.kinds()) {
      for (hist::opcode c : family_opcodes(reg.at(kind).family)) {
        t.emplace(hist::opcode_name(c), c);
      }
    }
    return t;
  }();
  auto it = table.find(name);
  if (it == table.end()) {
    throw std::invalid_argument("opcode_from_name: unknown opcode '" + name +
                                "'");
  }
  return it->second;
}

const char* fail_policy_name(core::runtime::fail_policy p) noexcept {
  return p == core::runtime::fail_policy::retry ? "retry" : "skip";
}

core::runtime::fail_policy fail_policy_from_name(const std::string& name) {
  if (name == "retry") return core::runtime::fail_policy::retry;
  if (name == "skip") return core::runtime::fail_policy::skip;
  throw std::invalid_argument("fail_policy_from_name: unknown policy '" +
                              name + "'");
}

// ---------------------------------------------------------------------------
// dump / parse

std::string dump(const scripted_scenario& s) {
  std::ostringstream os;
  os << "# detect scripted_scenario v6\n";
  for (const scenario_object& o : s.objects) {
    os << "object " << o.id << " " << o.kind << " " << o.params.init << " "
       << o.params.capacity << "\n";
  }
  os << "procs " << s.nprocs << "\n";
  os << "policy " << fail_policy_name(s.policy) << "\n";
  os << "shared_cache " << (s.shared_cache ? 1 : 0) << "\n";
  os << "sched_seed " << s.sched_seed << "\n";
  os << "sched " << s.sched.to_string() << "\n";
  os << "persist " << nvm::persist_name(s.persist) << "\n";
  os << "visibility " << wmm::visibility_name(s.visibility) << "\n";
  os << "drain_steps";
  for (std::uint64_t k : s.drain_steps) os << " " << k;
  os << "\n";
  os << "backend " << backend_name(s.backend) << "\n";
  os << "shards " << s.shards << "\n";
  os << "placement " << s.placement.to_string() << "\n";
  os << "crash_steps";
  for (std::uint64_t k : s.crash_steps) os << " " << k;
  os << "\n";
  for (const auto& [id, shard] : s.migrations) {
    os << "migrate " << id << " " << shard << "\n";
  }
  const std::uint32_t default_target =
      s.objects.empty() ? 0 : s.objects.front().id;
  for (const auto& [pid, ops] : s.scripts) {
    os << "script " << pid;
    for (const hist::op_desc& d : ops) {
      os << " " << hist::opcode_name(d.code) << ":" << d.a << ":" << d.b;
      // Ops on the first declared object stay in the compact v1/v2 token
      // form; only cross-object targets carry the @id suffix.
      if (d.object != default_target) os << "@" << d.object;
    }
    os << "\n";
  }
  return os.str();
}

namespace {

/// Parse failure at a known input line: the message carries the 1-based line
/// number and the offending token, so a bad dump pinpoints itself.
[[noreturn]] void malformed_at(int lineno, const std::string& what) {
  throw std::invalid_argument("parse_scenario: line " +
                              std::to_string(lineno) + ": " + what);
}

struct parse_state {
  bool legacy = false;    // saw v1/v2 `kind` / `params` keys
  bool declared = false;  // saw v3 `object` lines
};

/// The implicit id-0 object v1/v2 `kind`/`params` keys operate on.
scenario_object& legacy_object(scripted_scenario& s, parse_state& st,
                               int lineno) {
  if (st.declared) {
    malformed_at(lineno,
                 "legacy kind/params key mixed with v3 object declarations");
  }
  st.legacy = true;
  if (s.objects.empty()) s.objects.push_back({0, "", {}});
  return s.objects.front();
}

void parse_line(const std::string& line, int lineno, scripted_scenario& s,
                parse_state& st) {
  std::istringstream ls(line);
  std::string key;
  ls >> key;
  if (key == "object") {
    if (st.legacy) {
      malformed_at(lineno,
                   "v3 object declaration mixed with legacy kind/params keys");
    }
    st.declared = true;
    scenario_object o;
    if (!(ls >> o.id >> o.kind >> o.params.init >> o.params.capacity)) {
      malformed_at(lineno, "bad object line: " + line);
    }
    if (s.find_object(o.id) != nullptr) {
      malformed_at(lineno, "duplicate object id " + std::to_string(o.id));
    }
    s.objects.push_back(std::move(o));
  } else if (key == "kind") {
    if (!(ls >> legacy_object(s, st, lineno).kind)) {
      malformed_at(lineno, "missing kind value");
    }
  } else if (key == "params") {
    object_params& p = legacy_object(s, st, lineno).params;
    if (!(ls >> p.init >> p.capacity)) {
      malformed_at(lineno, "bad params line: " + line);
    }
  } else if (key == "procs") {
    if (!(ls >> s.nprocs) || s.nprocs <= 0) {
      malformed_at(lineno, "bad procs line: " + line);
    }
  } else if (key == "policy") {
    std::string p;
    if (!(ls >> p)) malformed_at(lineno, "missing policy value");
    s.policy = fail_policy_from_name(p);
  } else if (key == "shared_cache") {
    int v = 0;
    if (!(ls >> v)) malformed_at(lineno, "bad shared_cache line: " + line);
    s.shared_cache = v != 0;
  } else if (key == "sched_seed") {
    if (!(ls >> s.sched_seed)) {
      malformed_at(lineno, "bad sched_seed line: " + line);
    }
  } else if (key == "sched") {
    // Absent in v4 and earlier dumps: those always ran the seeded random
    // scheduler, which is why the field's default is uniform_random.
    std::string rest;
    std::getline(ls, rest);
    s.sched = sched::sched_policy::parse(rest);
  } else if (key == "persist") {
    std::string p;
    if (!(ls >> p)) malformed_at(lineno, "missing persist value");
    if (!nvm::persist_from_name(p, s.persist)) {
      malformed_at(lineno, "unknown persist model '" + p + "'");
    }
  } else if (key == "visibility") {
    // Absent in v5 and earlier dumps: those always ran sequentially
    // consistent, which is why the field's default is sc.
    std::string v;
    if (!(ls >> v)) malformed_at(lineno, "missing visibility value");
    if (!wmm::visibility_from_name(v, s.visibility)) {
      malformed_at(lineno, "unknown visibility model '" + v + "'");
    }
  } else if (key == "drain_steps") {
    std::uint64_t k;
    while (ls >> k) s.drain_steps.push_back(k);
  } else if (key == "backend") {
    std::string b;
    if (!(ls >> b)) malformed_at(lineno, "missing backend value");
    s.backend = backend_from_name(b);
  } else if (key == "shards") {
    if (!(ls >> s.shards) || s.shards < 1) {
      malformed_at(lineno, "bad shards line: " + line);
    }
  } else if (key == "placement") {
    std::string rest;
    std::getline(ls, rest);
    s.placement = placement_policy::parse(rest);
  } else if (key == "migrate") {
    std::uint32_t id = 0;
    int shard = -1;
    if (!(ls >> id >> shard) || shard < 0) {
      malformed_at(lineno, "bad migrate line: " + line);
    }
    if (s.find_object(id) == nullptr) {
      malformed_at(lineno, "migrate targets undeclared object " +
                               std::to_string(id));
    }
    s.migrations.emplace_back(id, shard);
  } else if (key == "crash_steps") {
    std::uint64_t k;
    while (ls >> k) s.crash_steps.push_back(k);
  } else if (key == "script") {
    int pid = -1;
    if (!(ls >> pid)) malformed_at(lineno, "bad script line: " + line);
    std::vector<hist::op_desc> ops;
    std::string tok;
    while (ls >> tok) {
      // name:a:b[@object] — no @ suffix targets the first declared object,
      // which is why objects must be declared before the scripts that use
      // them (every canonical dump orders them that way).
      std::string body = tok;
      hist::op_desc d;
      std::size_t at = tok.find('@');
      if (at != std::string::npos) {
        body = tok.substr(0, at);
        const std::string id_text = tok.substr(at + 1);
        // Digits only, within uint32 range: "@-1" and "@4294967296" must
        // error here, not wrap into a different (possibly declared) id.
        unsigned long long id = 0;
        try {
          std::size_t used = 0;
          id = std::stoull(id_text, &used);
          if (id_text.empty() || used != id_text.size() ||
              id_text[0] == '-' || id > 0xFFFFFFFFull) {
            throw std::invalid_argument(id_text);
          }
        } catch (const std::exception&) {
          malformed_at(lineno, "bad op target in '" + tok + "'");
        }
        d.object = static_cast<std::uint32_t>(id);
      } else {
        if (s.objects.empty()) {
          malformed_at(lineno, "op '" + tok +
                                   "' before any object declaration");
        }
        d.object = s.objects.front().id;
      }
      if (s.find_object(d.object) == nullptr) {
        malformed_at(lineno, "op '" + tok + "' targets undeclared object " +
                                 std::to_string(d.object));
      }
      std::size_t c1 = body.find(':');
      std::size_t c2 = body.rfind(':');
      if (c1 == std::string::npos || c2 == c1) {
        malformed_at(lineno, "bad op token '" + tok + "'");
      }
      d.code = opcode_from_name(body.substr(0, c1));
      try {
        d.a = std::stoll(body.substr(c1 + 1, c2 - c1 - 1));
        d.b = std::stoll(body.substr(c2 + 1));
      } catch (const std::exception&) {
        malformed_at(lineno, "bad op arguments in '" + tok + "'");
      }
      ops.push_back(d);
    }
    s.scripts[pid] = std::move(ops);
  } else {
    malformed_at(lineno, "unknown key '" + key + "'");
  }
}

}  // namespace

scripted_scenario parse_scenario(const std::string& text) {
  scripted_scenario s;
  parse_state st;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    try {
      parse_line(line, lineno, s, st);
    } catch (const std::invalid_argument& ex) {
      std::string what = ex.what();
      // Helper throws (opcode_from_name, backend_from_name, ...) know the
      // offending token but not the line — wrap them once, here.
      if (what.rfind("parse_scenario:", 0) == 0) throw;
      throw std::invalid_argument("parse_scenario: line " +
                                  std::to_string(lineno) + ": " + what);
    }
  }
  if (s.objects.empty()) {
    throw std::invalid_argument("parse_scenario: missing kind");
  }
  for (const scenario_object& o : s.objects) {
    if (o.kind.empty()) {
      throw std::invalid_argument("parse_scenario: missing kind");
    }
  }
  return s;
}

}  // namespace detect::api
