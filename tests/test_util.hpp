// Shared helpers for the test suites: a simulated-world fixture, op_desc
// shorthands, and the two workhorse verification drivers —
//   * run_scenario: one scripted run under a seeded scheduler and crash plan,
//     checked for durable linearizability + detectability;
//   * crash_sweep: re-run the same scenario with a crash injected at every
//     possible step index (the deterministic "crash everywhere" battery the
//     paper's correctness lemmas are exercised with).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/announce.hpp"
#include "core/object.hpp"
#include "core/runtime.hpp"
#include "history/checker.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

namespace detect::test {

struct sim_fixture {
  explicit sim_fixture(int nprocs, sim::world_config cfg = {})
      : w(nprocs, cfg), board(nprocs, w.domain()), rt(w, lg, board) {}

  sim::world w;
  core::announcement_board board;
  hist::log lg;
  core::runtime rt;
};

// ---- op_desc shorthands ----------------------------------------------------

inline hist::op_desc op_write(hist::value_t v, std::uint32_t obj = 0) {
  return {obj, hist::opcode::reg_write, v, 0, 0};
}
inline hist::op_desc op_read(std::uint32_t obj = 0) {
  return {obj, hist::opcode::reg_read, 0, 0, 0};
}
inline hist::op_desc op_cas(hist::value_t a, hist::value_t b,
                            std::uint32_t obj = 0) {
  return {obj, hist::opcode::cas, a, b, 0};
}
inline hist::op_desc op_cas_read(std::uint32_t obj = 0) {
  return {obj, hist::opcode::cas_read, 0, 0, 0};
}
inline hist::op_desc op_add(hist::value_t d, std::uint32_t obj = 0) {
  return {obj, hist::opcode::ctr_add, d, 0, 0};
}
inline hist::op_desc op_ctr_read(std::uint32_t obj = 0) {
  return {obj, hist::opcode::ctr_read, 0, 0, 0};
}
inline hist::op_desc op_tas_set(std::uint32_t obj = 0) {
  return {obj, hist::opcode::tas_set, 0, 0, 0};
}
inline hist::op_desc op_tas_reset(std::uint32_t obj = 0) {
  return {obj, hist::opcode::tas_reset, 0, 0, 0};
}
inline hist::op_desc op_enq(hist::value_t v, std::uint32_t obj = 0) {
  return {obj, hist::opcode::enq, v, 0, 0};
}
inline hist::op_desc op_deq(std::uint32_t obj = 0) {
  return {obj, hist::opcode::deq, 0, 0, 0};
}
inline hist::op_desc op_max_write(hist::value_t v, std::uint32_t obj = 0) {
  return {obj, hist::opcode::max_write, v, 0, 0};
}
inline hist::op_desc op_max_read(std::uint32_t obj = 0) {
  return {obj, hist::opcode::max_read, 0, 0, 0};
}

// ---- scripted-scenario driver ----------------------------------------------

struct scenario_config {
  int nprocs = 2;
  /// Build object(s) inside the fixture and register them with the runtime.
  std::function<void(sim_fixture&, std::vector<std::unique_ptr<core::detectable_object>>&)>
      make_objects;
  std::map<int, std::vector<hist::op_desc>> scripts;
  std::function<std::unique_ptr<hist::spec>()> make_spec;
  core::runtime::fail_policy policy = core::runtime::fail_policy::skip;
};

struct run_outcome {
  sim::run_report report;
  hist::check_result check;
  std::string log_text;
};

inline run_outcome run_scenario(const scenario_config& cfg,
                                std::uint64_t sched_seed,
                                std::vector<std::uint64_t> crash_steps = {}) {
  sim_fixture f(cfg.nprocs);
  std::vector<std::unique_ptr<core::detectable_object>> objects;
  cfg.make_objects(f, objects);
  for (const auto& [pid, script] : cfg.scripts) f.rt.set_script(pid, script);
  f.rt.set_fail_policy(cfg.policy);
  sim::random_scheduler sched(sched_seed);
  sim::crash_at_steps plan(std::move(crash_steps));
  run_outcome out;
  out.report = f.rt.run(sched, &plan);
  out.check = hist::check_durable_linearizability(f.lg.snapshot(),
                                                  *cfg.make_spec());
  out.log_text = f.lg.to_string();
  return out;
}

/// Crash at every step index of the scenario (one crash per run), asserting
/// correctness each time. Returns the number of runs performed.
inline int crash_sweep(const scenario_config& cfg, std::uint64_t sched_seed) {
  run_outcome base = run_scenario(cfg, sched_seed);
  EXPECT_FALSE(base.report.hit_step_limit);
  EXPECT_TRUE(base.check.ok) << base.check.message;
  int runs = 1;
  for (std::uint64_t k = 0; k < base.report.steps; ++k) {
    run_outcome out = run_scenario(cfg, sched_seed, {k});
    EXPECT_FALSE(out.report.hit_step_limit);
    EXPECT_TRUE(out.check.ok)
        << "crash at step " << k << ":\n"
        << out.check.message;
    ++runs;
    if (::testing::Test::HasFailure()) break;
  }
  return runs;
}

/// Two crashes at every pair of step indices (strided to bound the quadratic
/// blowup): exercises crash-during-recovery and recovery-then-crash-again.
inline void crash_pair_sweep(const scenario_config& cfg, std::uint64_t seed,
                             std::uint64_t stride = 3) {
  run_outcome base = run_scenario(cfg, seed);
  ASSERT_TRUE(base.check.ok) << base.check.message;
  for (std::uint64_t k1 = 0; k1 < base.report.steps; k1 += stride) {
    for (std::uint64_t k2 = k1; k2 < base.report.steps + 10; k2 += stride) {
      run_outcome out = run_scenario(cfg, seed, {k1, k2});
      EXPECT_FALSE(out.report.hit_step_limit);
      EXPECT_TRUE(out.check.ok) << "crashes at steps " << k1 << "," << k2
                                << ":\n"
                                << out.check.message;
      if (::testing::Test::HasFailure()) return;
    }
  }
}

/// Random schedules with random crash placements; `seeds` independent runs.
inline void crash_fuzz(const scenario_config& cfg, int seeds, int max_crashes,
                       std::uint64_t base_seed = 0x5eed) {
  for (int s = 0; s < seeds; ++s) {
    std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s) * 7919;
    // Derive pseudo-random crash steps from the seed.
    std::uint64_t rng = seed | 1;
    std::vector<std::uint64_t> crashes;
    for (int c = 0; c < max_crashes; ++c) {
      crashes.push_back(sim::next_rand(rng) % 120);
    }
    run_outcome out = run_scenario(cfg, seed, crashes);
    EXPECT_FALSE(out.report.hit_step_limit);
    EXPECT_TRUE(out.check.ok) << "seed " << seed << ":\n" << out.check.message;
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace detect::test
