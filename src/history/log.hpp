// Append-only execution log.
//
// Under the simulator, appends happen at scheduler-granted steps, so the
// append order equals the model's real-time order. In free-running mode a
// mutex provides a consistent (if arbitrary) serialization — free-running is
// used for performance measurement, not for checking.
#pragma once

#include <mutex>
#include <vector>

#include "history/event.hpp"

namespace detect::hist {

class log {
 public:
  void append(event e) {
    std::scoped_lock lock(mu_);
    events_.push_back(e);
  }

  std::vector<event> snapshot() const {
    std::scoped_lock lock(mu_);
    return events_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return events_.size();
  }

  void clear() {
    std::scoped_lock lock(mu_);
    events_.clear();
  }

  std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::vector<event> events_;
};

}  // namespace detect::hist
