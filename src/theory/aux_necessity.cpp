#include "theory/aux_necessity.hpp"

#include <stdexcept>

#include "baselines/stripped.hpp"
#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/max_register.hpp"
#include "core/queue.hpp"
#include "core/rmw.hpp"
#include "core/runtime.hpp"
#include "history/checker.hpp"
#include "history/log.hpp"

namespace detect::theory {

namespace {

/// Drive only `pid` until its task completes.
void drive_solo(sim::world& w, int pid) {
  for (;;) {
    std::vector<int> ready = w.runnable();
    bool mine = false;
    for (int r : ready) mine |= (r == pid);
    if (!mine) return;
    w.step(pid);
  }
}

bool invoke_logged(const hist::log& lg, int pid, std::uint64_t seq) {
  for (const hist::event& e : lg.snapshot()) {
    if (e.kind == hist::event_kind::invoke && e.pid == pid &&
        e.desc.client_seq == seq) {
      return true;
    }
  }
  return false;
}

/// One full Figure-2 run. `e_branch` selects the E-branch (complete Opp,
/// re-invoke, crash after invocation) over the D-branch (crash with Opp
/// halted just before returning).
aux_outcome run_branch(const aux_scenario& s, bool e_branch) {
  sim::world w(2);
  core::announcement_board board(2, w.domain());
  auto obj = s.make_object(2, board, w.domain());
  hist::log lg;
  core::runtime rt(w, lg, board);
  rt.register_object(0, *obj);

  auto submit_op = [&](int pid, hist::op_desc desc, std::uint64_t seq) {
    desc.object = 0;
    desc.client_seq = seq;
    w.submit(pid, [&rt, pid, desc] { rt.announce_and_invoke(pid, desc); });
  };
  auto run_op = [&](int pid, const hist::op_desc& desc, std::uint64_t seq) {
    submit_op(pid, desc, seq);
    drive_solo(w, pid);
    board.of(pid).done_seq.store(seq);
  };

  // --- H1: p's setup history, run to completion ----------------------------
  std::uint64_t pseq = 0;
  for (const hist::op_desc& h : s.h1) run_op(0, h, ++pseq);

  // --- Common prefix: p executes Opp and halts just before returning -----
  const std::uint64_t opp_seq = ++pseq;
  submit_op(0, s.opp, opp_seq);
  // Step p until it is parked at the response-logging checkpoint: all memory
  // effects of Opp done, response not yet delivered.
  while (!(invoke_logged(lg, 0, opp_seq) &&
           w.pending_access(0) == nvm::access::control)) {
    w.step(0);
  }

  // --- γ: q performs Op′ and the p-free extension ------------------------
  std::uint64_t qseq = 0;
  run_op(1, s.op1, ++qseq);
  for (const hist::op_desc& ext : s.extension) run_op(1, ext, ++qseq);

  if (e_branch) {
    // p returns from Opp...
    drive_solo(w, 0);
    board.of(0).done_seq.store(opp_seq);
    // ...invokes a second Opp; crash immediately after the invocation.
    submit_op(0, s.opp, opp_seq + 1);
    while (!invoke_logged(lg, 0, opp_seq + 1)) w.step(0);
  }
  w.crash();
  {
    hist::event e;
    e.kind = hist::event_kind::crash;
    lg.append(e);
  }

  // --- p recovers ---------------------------------------------------------
  w.submit(0, [&rt] { rt.maybe_recover(0); });
  drive_solo(w, 0);

  aux_outcome out;
  for (const hist::event& e : lg.snapshot()) {
    if (e.kind == hist::event_kind::recover_result && e.pid == 0) {
      out.verdict = e.verdict;
      out.recovered_value = e.value;
    }
  }

  // --- q probes with Opq ---------------------------------------------------
  run_op(1, s.opq, ++qseq);
  for (const hist::event& e : lg.snapshot()) {
    if (e.kind == hist::event_kind::response && e.pid == 1) {
      out.probe_response = e.value;
    }
  }

  auto spec = s.make_spec();
  hist::check_result cr = hist::check_durable_linearizability(lg.snapshot(), *spec);
  out.violation = !cr.ok;
  out.detail = cr.message;
  return out;
}

}  // namespace

aux_outcome run_e_branch(const aux_scenario& s) { return run_branch(s, true); }
aux_outcome run_d_branch(const aux_scenario& s) { return run_branch(s, false); }

aux_scenario register_scenario(bool stripped) {
  aux_scenario s;
  s.name = stripped ? "register (no auxiliary state)" : "register (Algorithm 1)";
  s.make_object = [stripped](int n, core::announcement_board& b,
                             nvm::pmem_domain& dom)
      -> std::unique_ptr<core::detectable_object> {
    auto reg = std::make_unique<core::detectable_register>(n, b, 0, dom);
    if (!stripped) return reg;
    struct holder final : core::detectable_object {
      std::unique_ptr<core::detectable_register> inner;
      base::stripped wrap;
      explicit holder(std::unique_ptr<core::detectable_register> r)
          : inner(std::move(r)), wrap(*inner) {}
      hist::value_t invoke(int pid, const hist::op_desc& op) override {
        return wrap.invoke(pid, op);
      }
      core::recovery_result recover(int pid, const hist::op_desc& op) override {
        return wrap.recover(pid, op);
      }
      bool wants_aux_reset() const override { return false; }
    };
    return std::make_unique<holder>(std::move(reg));
  };
  s.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::register_spec(0));
  };
  // Lemma 3 witness: Opp = write_p(1), Op′ = read_q, extension = write_q(0),
  // Opq = read_q.
  s.opp = {0, hist::opcode::reg_write, 1, 0, 0};
  s.op1 = {0, hist::opcode::reg_read, 0, 0, 0};
  s.extension = {{0, hist::opcode::reg_write, 0, 0, 0}};
  s.opq = {0, hist::opcode::reg_read, 0, 0, 0};
  return s;
}

aux_scenario cas_scenario(bool stripped) {
  aux_scenario s;
  s.name = stripped ? "CAS (no auxiliary state)" : "CAS (Algorithm 2)";
  s.make_object = [stripped](int n, core::announcement_board& b,
                             nvm::pmem_domain& dom)
      -> std::unique_ptr<core::detectable_object> {
    auto cas = std::make_unique<core::detectable_cas>(n, b, 0, dom);
    if (!stripped) return cas;
    struct holder final : core::detectable_object {
      std::unique_ptr<core::detectable_cas> inner;
      base::stripped wrap;
      explicit holder(std::unique_ptr<core::detectable_cas> c)
          : inner(std::move(c)), wrap(*inner) {}
      hist::value_t invoke(int pid, const hist::op_desc& op) override {
        return wrap.invoke(pid, op);
      }
      core::recovery_result recover(int pid, const hist::op_desc& op) override {
        return wrap.recover(pid, op);
      }
      bool wants_aux_reset() const override { return false; }
    };
    return std::make_unique<holder>(std::move(cas));
  };
  s.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::cas_spec(0)); };
  // Lemma 6 witness: Opp = CAS_p(0,1), Op′ = CAS_q(0,1), extension =
  // CAS_q(1,0), Opq = CAS_q(0,1).
  s.opp = {0, hist::opcode::cas, 0, 1, 0};
  s.op1 = {0, hist::opcode::cas, 0, 1, 0};
  s.extension = {{0, hist::opcode::cas, 1, 0, 0}};
  s.opq = {0, hist::opcode::cas, 0, 1, 0};
  return s;
}

aux_scenario queue_scenario(bool stripped) {
  aux_scenario s;
  s.name = stripped ? "queue (no auxiliary state)" : "queue (op identifiers)";
  s.make_object = [stripped](int n, core::announcement_board& b,
                             nvm::pmem_domain& dom)
      -> std::unique_ptr<core::detectable_object> {
    auto q = std::make_unique<core::detectable_queue>(n, b, 32, dom);
    if (!stripped) return q;
    struct holder final : core::detectable_object {
      std::unique_ptr<core::detectable_queue> inner;
      base::stripped wrap;
      explicit holder(std::unique_ptr<core::detectable_queue> qq)
          : inner(std::move(qq)), wrap(*inner) {}
      hist::value_t invoke(int pid, const hist::op_desc& op) override {
        return wrap.invoke(pid, op);
      }
      core::recovery_result recover(int pid, const hist::op_desc& op) override {
        return wrap.recover(pid, op);
      }
      bool wants_aux_reset() const override { return false; }
    };
    return std::make_unique<holder>(std::move(q));
  };
  s.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::queue_spec()); };
  // Lemma 8 witness: H1 = Enq_p(10) ◦ Enq_p(11); Opp = Deq_p; Op′ = Deq_q;
  // extension = Enq_q(10) ◦ Enq_q(11); Opq = Deq_q.
  s.h1 = {{0, hist::opcode::enq, 10, 0, 0}, {0, hist::opcode::enq, 11, 0, 0}};
  s.opp = {0, hist::opcode::deq, 0, 0, 0};
  s.op1 = {0, hist::opcode::deq, 0, 0, 0};
  s.extension = {{0, hist::opcode::enq, 10, 0, 0},
                 {0, hist::opcode::enq, 11, 0, 0}};
  s.opq = {0, hist::opcode::deq, 0, 0, 0};
  return s;
}

aux_scenario counter_scenario(bool stripped) {
  aux_scenario s;
  s.name = stripped ? "counter (no auxiliary state)" : "counter (RMW capsule)";
  s.make_object = [stripped](int n, core::announcement_board& b,
                             nvm::pmem_domain& dom)
      -> std::unique_ptr<core::detectable_object> {
    auto c = std::make_unique<core::detectable_counter>(n, b, 0, dom);
    if (!stripped) return c;
    struct holder final : core::detectable_object {
      std::unique_ptr<core::detectable_counter> inner;
      base::stripped wrap;
      explicit holder(std::unique_ptr<core::detectable_counter> cc)
          : inner(std::move(cc)), wrap(*inner) {}
      hist::value_t invoke(int pid, const hist::op_desc& op) override {
        return wrap.invoke(pid, op);
      }
      core::recovery_result recover(int pid, const hist::op_desc& op) override {
        return wrap.recover(pid, op);
      }
      bool wants_aux_reset() const override { return false; }
    };
    return std::make_unique<holder>(std::move(c));
  };
  s.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::counter_spec(0));
  };
  // Lemma 5 witness: Opp = Increment_p, Op′ = read_q, empty p-free
  // extension, Opq = read_q.
  s.opp = {0, hist::opcode::ctr_add, 1, 0, 0};
  s.op1 = {0, hist::opcode::ctr_read, 0, 0, 0};
  s.extension = {};
  s.opq = {0, hist::opcode::ctr_read, 0, 0, 0};
  return s;
}

aux_scenario max_register_scenario() {
  aux_scenario s;
  s.name = "max register (Algorithm 3, no auxiliary state)";
  s.make_object = [](int n, core::announcement_board& b, nvm::pmem_domain& dom)
      -> std::unique_ptr<core::detectable_object> {
    return std::make_unique<core::max_register>(n, b, dom);
  };
  s.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::max_register_spec(0));
  };
  // The analogous schedule: Opp = writeMax_p(5), Op′ = read_q, extension =
  // writeMax_q(3), Opq = read_q. (No witness exists — Lemma 4 — so no
  // violation should arise.)
  s.opp = {0, hist::opcode::max_write, 5, 0, 0};
  s.op1 = {0, hist::opcode::max_read, 0, 0, 0};
  s.extension = {{0, hist::opcode::max_write, 3, 0, 0}};
  s.opq = {0, hist::opcode::max_read, 0, 0, 0};
  return s;
}

}  // namespace detect::theory
