// Serving quickstart: put durable objects behind the sessioned front-end.
//
// The tour opens sessions against a serve::server, pushes an async op stream
// through batch rounds with crash injection turned on, lets the hot-shard
// rebalancer spread a deliberately skewed object cluster, and finishes with
// the durable-linearizability check over everything that was served. Exits
// non-zero if any invariant breaks — ctest runs this file.
//
// Workload-shaping note: the history checker certifies at most 64 operations
// per object, so a servable workload keeps per-object histories under that
// cap and scales by object *population* — which is also what makes hot-shard
// skew meaningful (a hot shard is a cluster of busy objects, and the
// rebalancer relieves it by moving objects, not ops).
//
// Build & run:  cmake --build build --target serve_tour && ./build/serve_tour
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "serve/serve.hpp"

using namespace detect;

static void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "serve_tour: FAILED: %s\n", what);
    std::exit(1);
  }
}

int main() {
  // A 4-shard service in deterministic mode: no background thread — the
  // caller turns the crank with pump()/drain(), and the whole soak replays
  // bit-identically from the seeds.
  auto srv = serve::server::builder()
                 .shards(4)
                 .procs(8)
                 .seed(7)                     // seeded random scheduler
                 .crash_random(11, 0.01, 2)  // up to 2 crashes per round
                 .batch_max_ops(64)
                 .rebalance({.enabled = true,
                             .window = 4,
                             .check_every = 4,
                             .hot_ratio = 1.5,
                             .sustain = 2,
                             .max_moves = 2})
                 .build();

  // 32 counters. Ids are sequential, so modulo placement parks ids
  // {0, 4, 8, ...} on shard 0 — the "hot" cluster this workload hammers.
  std::vector<api::counter> objs;
  for (int i = 0; i < 32; ++i) objs.push_back(srv->add_counter());
  std::vector<api::counter> hot;  // everything homed on shard 0
  for (int i = 0; i < 32; i += 4) hot.push_back(objs[static_cast<std::size_t>(i)]);

  // Sessions multiplex onto the executor's processes (pid = id % procs).
  std::vector<serve::session> clients;
  for (int i = 0; i < 4; ++i) clients.push_back(srv->open_session());

  // Async submission: each admitted op completes later, from a batch round,
  // with its response value and submit-to-complete latency (in rounds here).
  std::uint64_t completions = 0;
  auto on_done = [&completions](const serve::completion&) { ++completions; };

  std::uint64_t sent = 0;
  for (int round = 0; round < 12; ++round) {
    for (std::size_t c = 0; c < clients.size(); ++c) {
      // Two hot-cluster ops and one cold op per client per round: shard 0
      // carries ~2/3 of the load until the rebalancer steps in.
      const api::counter& h0 = hot[(c * 2) % hot.size()];
      const api::counter& h1 = hot[(c * 2 + 1) % hot.size()];
      const api::counter& cold =
          objs[4 * ((static_cast<std::size_t>(round) + c) % 8) + 1 + c % 3];
      if (serve::admitted(clients[c].submit(h0.add(1), on_done))) ++sent;
      if (serve::admitted(clients[c].submit(h1.add(1), on_done))) ++sent;
      if (serve::admitted(clients[c].submit(cold.add(1), on_done))) ++sent;
    }
    srv->pump();  // one batch round: script, run, complete, maybe rebalance
  }
  srv->drain();  // finish whatever is still queued

  serve::stats st = srv->snapshot();
  std::printf("serve_tour: %llu admitted, %llu completed over %llu rounds\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.rounds));
  std::printf("serve_tour: %llu crashes survived, p99 latency %llu %s, "
              "%llu nvm cells (%llu bytes)\n",
              static_cast<unsigned long long>(st.crashes),
              static_cast<unsigned long long>(st.p99), st.latency_unit.c_str(),
              static_cast<unsigned long long>(st.nvm_cells),
              static_cast<unsigned long long>(st.nvm_bytes));
  for (const serve::move_record& m : st.moves) {
    std::printf(
        "serve_tour: round %llu: moved object %u shard %d -> %d (ratio "
        "%.2f)\n",
        static_cast<unsigned long long>(m.round), m.object, m.from, m.to,
        m.ratio_before);
  }

  require(st.completed == sent, "every admitted op completed");
  require(st.completed == completions, "every completion callback fired");
  require(st.inflight == 0, "nothing left inflight after drain");
  require(!st.moves.empty(), "the skewed workload triggered a rebalance");

  // The merged, migration-spanning history must still be durably
  // linearizable per object — serving is an execution mode, not a new
  // correctness regime.
  hist::check_result cr = srv->check();
  if (!cr.ok) std::fprintf(stderr, "serve_tour: check: %s\n", cr.message.c_str());
  require(cr.ok, "per-object durable linearizability");
  std::printf("serve_tour: check OK over %zu objects\n", cr.objects);
  return 0;
}
