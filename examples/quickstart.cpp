// Quickstart: a detectable register and a detectable CAS object surviving a
// system-wide crash.
//
// Demonstrates the three core pieces of the API:
//   * sim::world        — N crash-prone processes over emulated NVM,
//   * core::runtime     — the caller-side announcement protocol of §2
//                         (Ann_p.op / resp / CP) plus history recording,
//   * detectable objects — Algorithm 1 (read/write) and Algorithm 2 (CAS):
//                         after a crash, each process learns whether its
//                         interrupted operation was linearized (and its
//                         response) or may safely consider it not executed.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/runtime.hpp"
#include "history/checker.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

int main() {
  using namespace detect;
  constexpr int k_procs = 2;

  sim::world world(k_procs);
  core::announcement_board board(k_procs, world.domain());
  hist::log log;
  core::runtime rt(world, log, board);

  // Object 0: Algorithm 1 register. Object 1: Algorithm 2 CAS.
  core::detectable_register reg(k_procs, board, /*init=*/0, world.domain());
  core::detectable_cas cas(k_procs, board, /*init=*/0, world.domain());
  rt.register_object(0, reg);
  rt.register_object(1, cas);

  // Client scripts: process 0 writes then CASes; process 1 reads and CASes.
  rt.set_script(0, {{0, hist::opcode::reg_write, 42, 0, 0},
                    {1, hist::opcode::cas, 0, 7, 0},
                    {0, hist::opcode::reg_read, 0, 0, 0}});
  rt.set_script(1, {{1, hist::opcode::cas, 0, 9, 0},
                    {0, hist::opcode::reg_read, 0, 0, 0}});
  rt.set_fail_policy(core::runtime::fail_policy::retry);

  // Drive with a seeded random scheduler and crash twice mid-run. After each
  // crash the runtime consults each process's announcement and runs the
  // matching Op.Recover with the original arguments.
  sim::random_scheduler sched(2024);
  sim::crash_at_steps crashes({12, 31});
  auto report = rt.run(sched, &crashes);

  std::printf("run: %llu steps, %llu crashes\n\n",
              static_cast<unsigned long long>(report.steps),
              static_cast<unsigned long long>(report.crashes));
  std::printf("event log:\n%s\n", log.to_string().c_str());

  // Verify the whole history: durable linearizability + detectability.
  hist::multi_spec spec;
  spec.add_object(0, std::make_unique<hist::register_spec>(0));
  spec.add_object(1, std::make_unique<hist::cas_spec>(0));
  auto check = hist::check_durable_linearizability(log.snapshot(), spec);
  std::printf("history verified: %s\n", check.ok ? "YES" : "NO");
  if (!check.ok) std::printf("%s\n", check.message.c_str());
  return check.ok ? 0 : 1;
}
