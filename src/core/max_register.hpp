// Algorithm 3 — detectable max register using NO auxiliary state.
//
// The max register separates §5's impossibility: it is perturbable but not
// doubly-perturbing (Lemma 4), and indeed its recovery functions simply
// re-invoke the operation — no checkpoint resets, no ⊥-initialized response
// field, no operation-argument identifiers. `wants_aux_reset()` is false and
// the implementation never reads Ann_p.resp or Ann_p.CP.
//
// Representation: MR[N], process p owns entry MR[p]. Write-Max(v) raises
// MR[p] if below v (idempotent, hence trivially re-invocable). Read performs
// a double collect until two consecutive copies of MR agree — a valid
// snapshot whose maximum was the register's value at some point inside the
// read's interval. Wait-free writes; lock-free reads.
#pragma once

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/object.hpp"
#include "nvm/pcell.hpp"

namespace detect::core {

class max_register final : public detectable_object {
 public:
  max_register(int nprocs, announcement_board& board, nvm::pmem_domain& dom)
      : n_(nprocs), board_(&board) {
    mr_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      mr_.push_back(std::make_unique<nvm::pcell<value_t>>(0, dom));
    }
  }

  value_t invoke(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::max_write:
        return write_max(pid, op.a);
      case hist::opcode::max_read:
        return read(pid);
      default:
        throw std::invalid_argument("max_register: bad opcode");
    }
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    // §5: "The recovery function of each of these operations simply
    // re-invokes the operation."
    return recovery_result::linearized(invoke(pid, op));
  }

  bool wants_aux_reset() const override { return false; }

 private:
  value_t write_max(int p, value_t val) {
    if (mr_[p]->load() < val) {   // line 47
      mr_[p]->store(val);         // line 48
    }
    return hist::k_ack;           // line 49
  }

  value_t read(int p) {
    std::vector<value_t> a(static_cast<std::size_t>(n_), 0);  // line 50
    collect(a);
    std::vector<value_t> b(static_cast<std::size_t>(n_), 0);
    for (;;) {                    // lines 51-52: until a clean double collect
      collect(b);
      if (a == b) break;
      a.swap(b);
    }
    value_t res = *std::max_element(a.begin(), a.end());  // line 53
    board_->of(p).resp.store(res);                        // line 54
    return res;                                           // line 55
  }

  void collect(std::vector<value_t>& out) {
    for (int i = 0; i < n_; ++i) out[static_cast<std::size_t>(i)] = mr_[i]->load();
  }

  int n_;
  announcement_board* board_;
  std::vector<std::unique_ptr<nvm::pcell<value_t>>> mr_;
};

}  // namespace detect::core
