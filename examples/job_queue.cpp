// job_queue — exactly-once job dispatch over the detectable durable queue.
//
// Producers enqueue jobs; consumers dequeue and "execute" them. Crashes
// strike mid-operation. The detectability contract keeps the ledger exact:
//   * an interrupted enqueue reports `linearized` iff the job is in (or has
//     passed through) the queue — the producer never double-submits;
//   * an interrupted dequeue reports its claimed job iff the claim stamp
//     ⟨pid, op-id⟩ landed in the node — the job is never executed twice nor
//     lost.
// The FIFO-spec check at the end proves the exactly-once accounting.
//
// Build & run:  ./build/examples/job_queue
#include <cstdio>
#include <map>

#include "core/queue.hpp"
#include "core/runtime.hpp"
#include "history/checker.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

int main() {
  using namespace detect;
  constexpr int k_procs = 4;  // 2 producers + 2 consumers

  sim::world world(k_procs);
  core::announcement_board board(k_procs, world.domain());
  hist::log log;
  core::runtime rt(world, log, board);

  core::detectable_queue queue(k_procs, board, /*capacity=*/64, world.domain());
  rt.register_object(0, queue);
  rt.set_fail_policy(core::runtime::fail_policy::retry);

  auto job = [](hist::value_t id) {
    return hist::op_desc{0, hist::opcode::enq, id, 0, 0};
  };
  auto take = [] { return hist::op_desc{0, hist::opcode::deq, 0, 0, 0}; };

  rt.set_script(0, {job(101), job(102), job(103)});
  rt.set_script(1, {job(201), job(202), job(203)});
  rt.set_script(2, {take(), take(), take()});
  rt.set_script(3, {take(), take(), take()});

  sim::random_scheduler sched(42);
  sim::random_crashes crashes(1234, 0.015, 6);
  auto report = rt.run(sched, &crashes);

  // Tally the dispatch ledger from the verified history.
  std::map<hist::value_t, int> executed;  // job id -> times delivered
  int empties = 0;
  for (const auto& e : log.snapshot()) {
    bool final_resp = e.kind == hist::event_kind::response ||
                      (e.kind == hist::event_kind::recover_result &&
                       e.verdict == hist::recovery_verdict::linearized);
    if (final_resp && e.desc.code == hist::opcode::deq) {
      if (e.value == hist::k_empty) {
        ++empties;
      } else {
        ++executed[e.value];
      }
    }
  }

  std::printf("job_queue: %llu steps, %llu crashes\n",
              static_cast<unsigned long long>(report.steps),
              static_cast<unsigned long long>(report.crashes));
  std::printf("delivered jobs:");
  bool exactly_once = true;
  for (auto& [id, times] : executed) {
    std::printf(" %lld(x%d)", static_cast<long long>(id), times);
    if (times != 1) exactly_once = false;
  }
  std::printf("\nempty polls: %d\n", empties);
  std::printf("exactly-once delivery: %s\n", exactly_once ? "YES" : "NO");
  std::printf("identifier space used: %llu stamps\n",
              static_cast<unsigned long long>(queue.ids_minted()));

  auto check =
      hist::check_durable_linearizability(log.snapshot(), hist::queue_spec());
  std::printf("history verified: %s\n", check.ok ? "YES" : "NO");
  if (!check.ok) std::printf("%s\n", check.message.c_str());
  return (check.ok && exactly_once) ? 0 : 1;
}
