// E1 — Space complexity table (the paper's §3/§4 claims).
//
// Paper claim: Algorithm 1 (read/write) and Algorithm 2 (CAS) are the first
// *bounded-space* detectable implementations; Algorithm 2 uses Θ(N) bits
// beyond the value, and prior detectable algorithms [3,4,9] rely on unique
// identifiers whose domain — hence the bits a register must reserve — grows
// without bound in the number of operations M.
//
// This binary measures, for each algorithm:
//   * shared bits beyond the value field (flat for Algorithms 1-2),
//   * identifiers minted after M operations and the ⌈log2⌉ bits needed to
//     store one (growing with M for the baselines).
#include <cmath>

#include "baselines/attiya_register.hpp"
#include "baselines/bendavid_cas.hpp"
#include "bench_util.hpp"
#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/queue.hpp"
#include "core/runtime.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

namespace {

using namespace detect;

std::uint64_t bits_for_ids(std::uint64_t ids) {
  if (ids <= 1) return 1;
  return static_cast<std::uint64_t>(std::ceil(std::log2(static_cast<double>(ids + 1))));
}

/// Run M writes per process on the given register-like object inside a
/// 2-process world; return ids minted (0 for bounded algorithms).
template <typename MakeObj>
std::uint64_t run_ops(int nprocs, int m, MakeObj make, bool cas_ops) {
  sim::world w(nprocs, {.max_steps = 50'000'000});
  core::announcement_board board(nprocs, w.domain());
  hist::log lg;
  core::runtime rt(w, lg, board);
  auto obj = make(nprocs, board, w.domain());
  rt.register_object(0, *obj.first);
  for (int p = 0; p < nprocs; ++p) {
    std::vector<hist::op_desc> script;
    for (int i = 0; i < m; ++i) {
      if (cas_ops) {
        script.push_back({0, hist::opcode::cas, i % 3, (i + 1) % 3, 0});
      } else {
        script.push_back({0, hist::opcode::reg_write, i % 7, 0, 0});
      }
    }
    rt.set_script(p, script);
  }
  sim::round_robin_scheduler sched;
  rt.run(sched);
  return obj.second();
}

}  // namespace

int main() {
  using detect::bench::fmt_u;
  using detect::bench::row;
  using detect::bench::rule;

  std::printf(
      "E1 — Space complexity of detectable objects (paper §3, §4)\n"
      "Bounded algorithms keep a flat footprint; id-based baselines must be\n"
      "able to store ids that grow with the operation count M.\n\n");

  std::printf("(a) Shared bits beyond the value field, as a function of N\n");
  row({"N", "alg1 R/W", "alg2 CAS", "bound(Thm1)"});
  rule(4);
  for (int n : {2, 4, 8, 16, 32, 64}) {
    // Algorithm 1: toggle arrays A[N][N][2] + writer-id/toggle in R.
    std::uint64_t alg1 = static_cast<std::uint64_t>(n) * n * 2 + 16;
    // Algorithm 2: the N-bit flip vector.
    std::uint64_t alg2 = static_cast<std::uint64_t>(n);
    // Theorem 1: ≥ N − 1 bits are necessary.
    row({std::to_string(n), fmt_u(alg1), fmt_u(alg2), fmt_u(n > 0 ? n - 1 : 0)});
  }

  std::printf(
      "\n(b) Identifier growth after M ops/process (N = 2 processes)\n");
  row({"M", "alg1 ids", "alg2 ids", "attiya ids", "bendavid", "id bits"});
  rule(6);
  for (int m : {10, 100, 1000, 10000}) {
    std::uint64_t attiya = run_ops(
        2, m,
        [](int n, detect::core::announcement_board& b, detect::nvm::pmem_domain& d) {
          auto obj = std::make_unique<detect::base::attiya_register>(n, b, 0, d);
          auto* raw = obj.get();
          return std::pair<std::unique_ptr<detect::core::detectable_object>,
                           std::function<std::uint64_t()>>(
              std::move(obj), [raw] { return raw->ids_minted(); });
        },
        /*cas_ops=*/false);
    std::uint64_t bendavid = run_ops(
        2, m,
        [](int n, detect::core::announcement_board& b, detect::nvm::pmem_domain& d) {
          auto obj = std::make_unique<detect::base::bendavid_cas>(n, b, 0, d);
          auto* raw = obj.get();
          return std::pair<std::unique_ptr<detect::core::detectable_object>,
                           std::function<std::uint64_t()>>(
              std::move(obj), [raw] { return raw->ids_minted(); });
        },
        /*cas_ops=*/true);
    std::uint64_t alg1 = run_ops(
        2, m,
        [](int n, detect::core::announcement_board& b, detect::nvm::pmem_domain& d) {
          auto obj = std::make_unique<detect::core::detectable_register>(n, b, 0, d);
          return std::pair<std::unique_ptr<detect::core::detectable_object>,
                           std::function<std::uint64_t()>>(
              std::move(obj), [] { return std::uint64_t{0}; });
        },
        /*cas_ops=*/false);
    std::uint64_t alg2 = run_ops(
        2, m,
        [](int n, detect::core::announcement_board& b, detect::nvm::pmem_domain& d) {
          auto obj = std::make_unique<detect::core::detectable_cas>(n, b, 0, d);
          return std::pair<std::unique_ptr<detect::core::detectable_object>,
                           std::function<std::uint64_t()>>(
              std::move(obj), [] { return std::uint64_t{0}; });
        },
        /*cas_ops=*/true);
    row({std::to_string(m), fmt_u(alg1), fmt_u(alg2), fmt_u(attiya),
         fmt_u(bendavid), fmt_u(bits_for_ids(attiya))});
  }

  std::printf(
      "\nShape check: columns 2-3 stay flat (bounded space, the paper's\n"
      "headline result); columns 4-6 grow with M (the unbounded-space regime\n"
      "of [3],[4],[9] that Theorem 2 shows cannot be avoided entirely —\n"
      "auxiliary state must come from somewhere, but it need not grow).\n");
  return 0;
}
