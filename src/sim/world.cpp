#include "sim/world.hpp"

#include <algorithm>
#include <stdexcept>

namespace detect::sim {

namespace {

void insert_sorted(std::vector<int>& v, int pid) {
  v.insert(std::lower_bound(v.begin(), v.end(), pid), pid);
}

void erase_sorted(std::vector<int>& v, int pid) {
  auto it = std::lower_bound(v.begin(), v.end(), pid);
  if (it != v.end() && *it == pid) v.erase(it);
}

}  // namespace

world::world(int nprocs, world_config cfg)
    : cfg_(std::move(cfg)), engine_(cfg_.engine.value_or(default_engine())) {
  if (nprocs <= 0) throw std::invalid_argument("world: nprocs must be >= 1");
  procs_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) procs_.push_back(make_strand(engine_));
  ready_.reserve(static_cast<std::size_t>(nprocs));
  if (cfg_.visibility != wmm::visibility_model::sc) {
    bufs_.resize(static_cast<std::size_t>(nprocs));
    drains_left_ = cfg_.drain_points;
  }
}

world::~world() = default;

void world::settle() {
  // Done strands are never in ready_; absorbing them only flips them idle
  // and surfaces any task exception (first one wins, as before).
  for (auto& s : procs_) {
    if (s->st() != strand::status::done) continue;
    if (std::exception_ptr e = s->reset_done()) std::rethrow_exception(e);
  }
}

void world::submit(int pid, std::function<void()> task) {
  settle();
  strand& s = *procs_.at(static_cast<std::size_t>(pid));
  if (s.st() != strand::status::idle) {
    throw std::logic_error("submit: process p" + std::to_string(pid) +
                           " already has a task");
  }
  s.start(std::move(task));
  if (s.st() == strand::status::at_yield) insert_sorted(ready_, pid);
  // A task that finished (or threw) before its first access stays `done`
  // until the next settle point — the same place the thread engine's
  // quiesce used to surface it.
}

std::vector<int> world::runnable() {
  settle();
  return ready_;
}

bool world::busy() {
  settle();
  return !ready_.empty();
}

void world::step_ready(int pid) {
  ++step_no_;
  strand& s = *procs_[static_cast<std::size_t>(pid)];
  // Point the domain at the stepping process's store buffer for exactly the
  // duration of its access (relaxed visibility only; the strand handshake
  // serializes, so the thread engine sees the pointer too).
  if (!bufs_.empty()) {
    domain_.set_active_store_buffer(&bufs_[static_cast<std::size_t>(pid)]);
  }
  s.step();
  if (!bufs_.empty()) domain_.set_active_store_buffer(nullptr);
  if (s.st() == strand::status::done) {
    erase_sorted(ready_, pid);
    if (std::exception_ptr e = s.reset_done()) std::rethrow_exception(e);
  }
}

bool world::needs_drained_buffer(nvm::access a) noexcept {
  // Real-TSO fence semantics: atomic RMWs, persistency instructions, and
  // the runtime's control checkpoints (invoke/response logging) do not
  // execute past a non-empty store buffer. Private NVM stores (Ann_p and
  // friends) act as release fences too — recoverability bookkeeping must
  // never lead the data stores it describes. Only plain shared loads,
  // shared stores, and private loads may overtake the buffer.
  switch (a) {
    case nvm::access::shared_cas:
    case nvm::access::shared_exchange:
    case nvm::access::private_store:
    case nvm::access::flush:
    case nvm::access::fence:
    case nvm::access::control:
      return true;
    default:
      return false;
  }
}

std::size_t world::pending_stores() const noexcept {
  std::size_t total = 0;
  for (const wmm::store_buffer& b : bufs_) total += b.size();
  return total;
}

void world::drain_one(int pid, std::size_t slot) {
  ++step_no_;
  ++drain_steps_;
  bufs_[static_cast<std::size_t>(pid)].drain_slot(cfg_.visibility, slot);
}

void world::drain_fully(int pid) {
  if (bufs_.empty()) return;
  while (!bufs_[static_cast<std::size_t>(pid)].empty()) drain_one(pid, 0);
}

void world::step(int pid) {
  settle();
  if (pid < 0 || pid >= nprocs() ||
      procs_[static_cast<std::size_t>(pid)]->st() != strand::status::at_yield) {
    throw std::logic_error("step: process p" + std::to_string(pid) +
                           " is not runnable");
  }
  // Low-level single-step API: honor the fence rule inline (the run loop
  // instead withholds the fenced pid and lets the scheduler order drains).
  if (!bufs_.empty() &&
      needs_drained_buffer(procs_[static_cast<std::size_t>(pid)]->pending())) {
    drain_fully(pid);
  }
  step_ready(pid);
}

nvm::access world::pending_access(int pid) {
  settle();
  strand& s = *procs_.at(static_cast<std::size_t>(pid));
  if (s.st() != strand::status::at_yield) {
    throw std::logic_error("pending_access: process is not at a yield");
  }
  return s.pending();
}

bool world::last_task_interrupted(int pid) {
  return procs_.at(static_cast<std::size_t>(pid))->interrupted();
}

void world::crash() {
  settle();
  // Unwind every parked task. Delivery is sequential in pid order — the
  // order is unobservable (each unwind only destroys that task's volatile
  // frames), and determinism beats the old concurrent wakeup.
  for (int pid : ready_) procs_[static_cast<std::size_t>(pid)]->deliver_crash();
  ready_.clear();
  settle();
  // Store buffers are volatile: undrained stores never happened. Discard
  // them before the persistency crash rule runs (drain → persist order
  // means none of them can have touched the crash image).
  for (wmm::store_buffer& b : bufs_) b.discard();
  // All volatile frames are gone; now apply the memory model's crash rule,
  // then advance the system epoch durably (the hook is null on the driving
  // thread, so these are direct accesses).
  std::uint64_t e = epoch_.peek();
  domain_.crash_reset();
  if (domain_.last_crash_lost()) lost_persistence_ = true;
  epoch_.store(e + 1);
  epoch_.flush();
}

run_report world::run(scheduler& sched, crash_plan* crashes,
                      const std::function<void()>& on_crash_done) {
  run_report rep;
  active_sched_desc_ = sched.describe();
  const int n = nprocs();
  for (;;) {
    settle();
    if (ready_.empty()) break;
    if (step_no_ >= cfg_.max_steps) {
      rep.hit_step_limit = true;
      rep.limit_note = "step limit " + std::to_string(cfg_.max_steps) +
                       " hit under scheduler " + sched.describe();
      if (cfg_.visibility != wmm::visibility_model::sc) {
        rep.limit_note += ", visibility " +
                          std::string(wmm::visibility_name(cfg_.visibility)) +
                          ", " + std::to_string(pending_stores()) +
                          " pending stores";
      }
      break;
    }
    // Scenario-scripted drain point: every buffer retires completely as one
    // step. Checked before the crash plan so a same-step crash sees the
    // drained (persistable) state.
    if (!bufs_.empty()) {
      bool fired = false;
      for (std::uint64_t& a : drains_left_) {
        if (a == step_no_) {
          a = static_cast<std::uint64_t>(-1);  // fire once
          fired = true;
          break;
        }
      }
      if (fired) {
        ++step_no_;
        ++drain_steps_;
        for (wmm::store_buffer& b : bufs_) b.drain_all();
        continue;
      }
    }
    if (crashes != nullptr && crashes->should_crash(step_no_)) {
      crash();
      ++rep.crashes;
      if (on_crash_done) on_crash_done();
      continue;
    }
    if (bufs_.empty()) {  // sc: the historical loop, byte-identical
      int pid = sched.pick(ready_, step_no_);
      step_ready(pid);
      continue;
    }
    // Relaxed visibility: the scheduler picks among real steps and drain
    // pseudo-pids `n*(1+slot)+pid`, one per drainable slot (tso: the FIFO
    // head; pso: each distinct buffered cell). A pid whose pending access
    // fences (needs_drained_buffer) is withheld until its buffer drains —
    // its drain slots keep the candidate set non-empty, so progress holds.
    cand_.clear();
    for (int pid : ready_) {
      if (bufs_[static_cast<std::size_t>(pid)].empty() ||
          !needs_drained_buffer(
              procs_[static_cast<std::size_t>(pid)]->pending())) {
        cand_.push_back(pid);
      }
    }
    for (std::size_t slot = 0;; ++slot) {
      bool any = false;
      for (int p = 0; p < n; ++p) {
        if (bufs_[static_cast<std::size_t>(p)].slots(cfg_.visibility) > slot) {
          cand_.push_back(n * static_cast<int>(1 + slot) + p);
          any = true;
        }
      }
      if (!any) break;
    }
    int pick = sched.pick(cand_, step_no_);
    if (pick < n) {
      step_ready(pick);
    } else {
      drain_one(pick % n, static_cast<std::size_t>(pick / n) - 1);
    }
  }
  // Quiescence: with no runnable process left, remaining buffered stores
  // can no longer be observed out of order — retire them (counted drain
  // steps) so the post-run NVM state matches what sc would have reached.
  for (int p = 0; p < n && !bufs_.empty(); ++p) drain_fully(p);
  for (const wmm::store_buffer& b : bufs_) {
    max_pending_ = std::max(max_pending_,
                            static_cast<std::uint64_t>(b.high_water()));
  }
  rep.steps = step_no_;
  rep.lost_persistence = lost_persistence_;
  rep.nvm_cells = domain_.cells_attached();
  rep.nvm_bytes = domain_.bytes_attached();
  rep.drain_steps = drain_steps_;
  rep.max_pending_stores = max_pending_;
  return rep;
}

std::string world::describe_schedule() const {
  std::string s =
      !active_sched_desc_.empty() ? active_sched_desc_ : "(no scheduler)";
  s += " | visibility ";
  s += wmm::visibility_name(cfg_.visibility);
  if (cfg_.visibility != wmm::visibility_model::sc) {
    s += " | " + std::to_string(pending_stores()) + " pending stores";
  }
  return s;
}

// ---------------------------------------------------------------------------
// policies

int round_robin_scheduler::pick(const std::vector<int>& runnable,
                                std::uint64_t) {
  int pid = runnable[next_ % runnable.size()];
  ++next_;
  return pid;
}

int random_scheduler::pick(const std::vector<int>& runnable, std::uint64_t) {
  return runnable[next_rand(state_) % runnable.size()];
}

int scripted_scheduler::pick(const std::vector<int>& runnable, std::uint64_t) {
  if (pos_ < script_.size()) {
    int want = script_[pos_++];
    if (std::binary_search(runnable.begin(), runnable.end(), want)) {
      return want;
    }
  }
  return runnable.front();
}

bool crash_at_steps::should_crash(std::uint64_t step_no) {
  for (std::uint64_t& a : at_) {
    if (a == step_no) {
      a = static_cast<std::uint64_t>(-1);  // fire once
      return true;
    }
  }
  return false;
}

bool random_crashes::should_crash(std::uint64_t) {
  if (left_ == 0) return false;
  double u = static_cast<double>(next_rand(state_) >> 11) / 9007199254740992.0;
  if (u < rate_) {
    --left_;
    return true;
  }
  return false;
}

}  // namespace detect::sim
