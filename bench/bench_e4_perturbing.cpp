// E4 — Appendix A: the doubly-perturbing classification, mechanically.
//
// Paper claims (Lemmas 3-8 + §5 remarks):
//   * read/write, counter, CAS, fetch-and-add and FIFO queue are
//     doubly-perturbing (concrete witnesses);
//   * the max register is NOT doubly-perturbing (no witness exists);
//   * the bounded counter is doubly-perturbing but not perturbable — an
//     operation can change an observer's response at most cap times.
#include "bench_util.hpp"
#include "theory/perturbing.hpp"

namespace {

using namespace detect;
using theory::abstract_op;

void check_row(const char* name, const hist::spec& init,
               const theory::dp_witness& w) {
  auto c = theory::check_witness(init, w);
  bench::row({name, c.cond1 ? "yes" : "NO", c.cond2 ? "yes" : "NO",
              c.ok ? "doubly-perturbing" : "FAILED"},
             22);
}

}  // namespace

int main() {
  using bench::row;
  using bench::rule;

  std::printf("E4 — Doubly-perturbing certificates (Definition 3)\n\n");
  std::printf("(a) Witness verification for Lemmas 3, 5, 6, 7, 8\n");
  row({"object", "cond 1", "cond 2", "verdict"}, 22);
  rule(4, 22);
  check_row("read/write (L3)", hist::register_spec(0),
            theory::register_witness());
  check_row("counter (L5)", hist::counter_spec(0), theory::counter_witness());
  check_row("bounded ctr {0..2}", hist::counter_spec(0, 2),
            theory::counter_witness());
  check_row("CAS (L6)", hist::cas_spec(0), theory::cas_witness());
  check_row("fetch-and-add (L7)", hist::counter_spec(0), theory::faa_witness());
  check_row("FIFO queue (L8)", hist::queue_spec(), theory::queue_witness());

  std::printf("\n(b) Lemma 4: exhaustive witness search for the max register\n");
  {
    std::vector<abstract_op> universe;
    for (int pid : {0, 1}) {
      for (hist::value_t v : {1, 2, 3}) {
        universe.push_back({pid, hist::opcode::max_write, v, 0});
      }
      universe.push_back({pid, hist::opcode::max_read, 0, 0});
    }
    auto res = theory::search_witness(hist::max_register_spec(0), universe,
                                      /*max_h1=*/2, /*max_ext=*/2);
    std::printf(
        "  candidates explored: %llu, witness found: %s (expected: none)\n",
        static_cast<unsigned long long>(res.explored),
        res.found ? res.witness.to_string().c_str() : "none");
  }

  std::printf(
      "\n(c) Perturbation budget: how many re-invocations of the same op keep\n"
      "    changing an observer's response (10 rounds)\n");
  row({"object", "op", "perturbs", "interpretation"}, 22);
  rule(4, 22);
  {
    abstract_op inc{0, hist::opcode::ctr_add, 1, 0};
    abstract_op rd{1, hist::opcode::ctr_read, 0, 0};
    int unbounded = theory::count_successive_perturbs(hist::counter_spec(0), {},
                                                      inc, rd, 10);
    int bounded = theory::count_successive_perturbs(hist::counter_spec(0, 2),
                                                    {}, inc, rd, 10);
    abstract_op wm{0, hist::opcode::max_write, 5, 0};
    abstract_op mr{1, hist::opcode::max_read, 0, 0};
    int maxreg = theory::count_successive_perturbs(hist::max_register_spec(0),
                                                   {}, wm, mr, 10);
    row({"counter", "inc", std::to_string(unbounded), "perturbable"}, 22);
    row({"bounded ctr {0..2}", "inc", std::to_string(bounded),
         "NOT perturbable"},
        22);
    row({"max register", "writeMax(5)", std::to_string(maxreg),
         "NOT doubly-pert."},
        22);
  }

  std::printf(
      "\nShape check: all five Lemma witnesses verify; no witness exists for\n"
      "the max register in the bounded universe; the bounded counter stops\n"
      "perturbing after its cap (doubly-perturbing =/= perturbable, the\n"
      "classes are incomparable as §5 notes).\n");
  return 0;
}
