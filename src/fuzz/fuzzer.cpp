#include "fuzz/fuzzer.hpp"

#include <sstream>

namespace detect::fuzz {

std::string fuzz_one(std::uint64_t seed, const std::string& kind,
                     const fuzz_options& opt, std::uint64_t* replays) {
  api::scripted_scenario s = generate(seed, kind, opt.gen);
  return check_scenario(s, opt.diff, replays);
}

namespace {

/// Prefix every line with "# " so a parse of the artifact skips the block.
std::string commented(const std::string& text) {
  std::ostringstream os;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) os << "# " << line << "\n";
  return os.str();
}

}  // namespace

std::string fuzz_failure::to_artifact() const {
  std::ostringstream os;
  os << "# detect fuzz failure\n"
     << "# campaign base seed " << base_seed << ", failed at iteration "
     << iteration << " (iteration seed " << seed << ", kind " << kind
     << ")\n"
     << "# reproduce this scenario:  fuzz_main --replay <this file>\n"
     << "# reproduce the campaign:   fuzz_main --seed " << base_seed
     << " --iters " << iteration + 1 << " (plus the campaign's --kind "
     << "flags, if any)\n"
     << commented(message)
     << "\n# ---- shrunk scenario (fuzz_main --replay <this file>) ----\n"
     << api::dump(shrunk)
     << "\n# ---- original scenario ----\n"
     << commented(api::dump(scenario));
  return os.str();
}

fuzz_stats run_fuzz(
    const fuzz_options& opt,
    const std::function<void(std::uint64_t, std::uint64_t,
                             const std::string&)>& progress) {
  std::vector<std::string> kinds = opt.kinds;
  if (kinds.empty()) kinds = api::object_registry::global().kinds();

  fuzz_stats stats;
  for (std::uint64_t iter = 0; iter < opt.iterations; ++iter) {
    const std::uint64_t seed = iteration_seed(opt.base_seed, iter);
    const std::string& kind = kinds[iter % kinds.size()];
    if (progress) progress(iter, seed, kind);
    ++stats.iterations;

    api::scripted_scenario s = generate(seed, kind, opt.gen);
    std::string failure = check_scenario(s, opt.diff, &stats.replays);
    if (failure.empty()) continue;

    fuzz_failure f;
    f.iteration = iter;
    f.base_seed = opt.base_seed;
    f.seed = seed;
    f.kind = kind;
    f.message = failure;
    f.scenario = s;
    f.shrunk = s;
    if (opt.shrink) {
      f.shrunk = shrink(s, [&](const api::scripted_scenario& c) {
        return !check_scenario(c, opt.diff, &stats.replays).empty();
      });
      // Re-derive the message from the minimized scenario — it is the one
      // a human debugs first.
      std::string shrunk_msg =
          check_scenario(f.shrunk, opt.diff, &stats.replays);
      if (!shrunk_msg.empty()) f.message = shrunk_msg;
    }
    stats.failure = std::move(f);
    break;
  }
  return stats;
}

}  // namespace detect::fuzz
