// fuzzer — the campaign engine tying generator, coverage map, differ, and
// shrinker together.
//
// One iteration: derive the iteration seed, pick a primary kind
// (round-robin over the configured kind list), obtain a scenario — freshly
// generated, or, when steering is on, a mutation of a bucket-novel corpus
// seed aimed at an unseen scenario-key — replay it under the
// durable-linearizability + detectability oracle (including the
// single-vs-sharded equivalence diff), then differentially replay it with
// each declared object substituted by every registered variant of its kind.
// Every passing execution's bucket signature feeds the coverage map; seeds
// that discover a new bucket join the in-memory corpus that steering
// mutates preferentially. The first failing iteration stops the campaign;
// its scenario is greedily shrunk under the same oracle and reported as
// seed + original dump + shrunk dump — the artifact CI uploads and
// `fuzz_main --replay` reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/coverage.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/scenario_gen.hpp"
#include "fuzz/shrinker.hpp"

namespace detect::fuzz {

struct fuzz_options {
  std::uint64_t base_seed = 1;
  std::uint64_t iterations = 100;
  /// First iteration index of this run's slice. A campaign's iteration
  /// stream is a pure function of (base_seed, iteration), so a worker
  /// running [first_iteration, first_iteration + iterations) executes
  /// exactly that slice of the serial campaign — the partition
  /// run_campaign() hands each forked worker. Kind rotation and iteration
  /// seeds both key on the absolute index, keeping a partitioned campaign's
  /// scenario set identical to the serial one.
  std::uint64_t first_iteration = 0;
  /// Kinds to fuzz; empty → every registry kind (non-detectable kinds get
  /// crash-free scenarios, see scenario_gen). Also the default
  /// object_kind_pool extra objects draw from when the gen config leaves it
  /// empty.
  std::vector<std::string> kinds;
  gen_config gen;
  /// Differentially replay against each declared object's kind variants.
  bool diff = true;
  /// Placement-equivalence campaign: every scenario with a shard knob also
  /// replays under modulo vs hash vs range placement, requiring identical
  /// verdicts (and response streams when single-object). The CI
  /// `--fuzz-placement` stage arms this with min_shards = 2.
  bool placement_equiv = false;
  /// Shrink the first failing scenario before reporting it.
  bool shrink = true;
  /// Coverage-steered generation: mutate bucket-novel corpus seeds toward
  /// unseen scenario-keys (7 of every 8 iterations once the corpus is
  /// non-empty; the rest stay freshly generated). Coverage is *tracked*
  /// either way — this knob only changes where scenarios come from, which
  /// is what the steered-vs-random acceptance test compares.
  bool steer = false;
  /// Per-object checker fan-out threaded into every oracle replay (see
  /// hist::check_options::jobs). Verdict-identical to serial; 1 = serial.
  int check_jobs = 1;
  /// Shared on-disk corpus directory. When non-empty, every scenario that
  /// discovers a new coverage bucket is dumped there (atomic write-then-
  /// rename), and the campaign periodically ingests dumps written by
  /// *other* workers into its steering corpus — how the forked workers of a
  /// `--jobs N` campaign cross-pollinate, and how consecutive nightly runs
  /// resume from each other's discoveries. With steering off the directory
  /// only accumulates dumps. Note: cross-worker ingest order depends on
  /// real-time file visibility, so a steered multi-worker campaign is not
  /// bit-reproducible — failures still are, via the dumped artifact.
  std::string corpus_dir;
  /// This worker's index within a multi-process campaign (names its corpus
  /// dumps; 0 for inline runs).
  int worker_index = 0;
};

/// One corpus entry: the iteration that discovered a new bucket. The
/// campaign is deterministic in (base_seed, options), so (base_seed,
/// iteration) reproduces the scenario; `mutated` records whether it came
/// from the mutation engine or straight from generate().
struct corpus_entry {
  std::uint64_t iteration = 0;
  std::uint64_t seed = 0;
  bool mutated = false;
  std::string bucket;
};

/// Per-schedule-strategy slice of the coverage accounting: how many
/// scenarios each strategy drove and how many distinct buckets they reached
/// — the numbers the PCT-vs-uniform comparison (and job_summary's
/// per-strategy table) are built on.
struct strategy_stats {
  std::string strategy;
  std::uint64_t executed = 0;
  std::size_t distinct_buckets = 0;
  /// (campaign-executed-so-far, this-strategy's-distinct-so-far), one sample
  /// per bucket novel *within the strategy's slice*.
  std::vector<std::pair<std::uint64_t, std::size_t>> timeline;
};

/// Campaign-level coverage accounting — what `coverage.json` serializes.
struct coverage_stats {
  std::uint64_t executed = 0;       // scenarios that ran the full oracle
  std::size_t distinct_buckets = 0;
  bool steered = false;
  /// (executed-so-far, distinct-so-far), one sample per novel bucket.
  std::vector<std::pair<std::uint64_t, std::size_t>> timeline;
  std::vector<corpus_entry> corpus;
  /// One entry per strategy that drove at least one scenario (name-sorted).
  std::vector<strategy_stats> by_strategy;
  /// Same accounting sliced by store-buffer visibility model (sc/tso/pso,
  /// name-sorted; reuses strategy_stats with `strategy` holding the model
  /// name) — the numbers job_summary's per-visibility-model table reads.
  std::vector<strategy_stats> by_visibility;

  /// Machine-readable summary (the `fuzz_main --coverage-out` payload).
  std::string to_json(std::uint64_t base_seed, std::uint64_t iterations) const;
};

struct fuzz_failure {
  std::uint64_t iteration = 0;
  std::uint64_t base_seed = 0;  // the campaign's --seed
  std::uint64_t seed = 0;       // iteration_seed(base_seed, iteration)
  std::string kind;             // the failing scenario's primary kind
  std::string message;
  api::scripted_scenario scenario;
  api::scripted_scenario shrunk;  // == scenario when shrinking is off

  /// The replayable artifact: metadata + both dumps, one parseable block.
  std::string to_artifact() const;
};

struct fuzz_stats {
  std::uint64_t iterations = 0;  // iterations actually executed
  std::uint64_t replays = 0;     // scenario replays incl. diff + shrink
  coverage_stats coverage;
  std::optional<fuzz_failure> failure;
};

/// Run a fuzz campaign. Stops at the first failure (after shrinking it) or
/// after `opt.iterations` iterations. `progress`, if set, is called before
/// each iteration with (iteration, seed, kind).
fuzz_stats run_fuzz(
    const fuzz_options& opt,
    const std::function<void(std::uint64_t, std::uint64_t,
                             const std::string&)>& progress = nullptr);

/// One fuzz iteration against one kind; returns the failure message (empty
/// on success) and bumps `*replays` per scenario replay performed.
std::string fuzz_one(std::uint64_t seed, const std::string& kind,
                     const fuzz_options& opt, std::uint64_t* replays);

}  // namespace detect::fuzz
