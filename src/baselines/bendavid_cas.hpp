// Unbounded-space recoverable CAS in the style of Ben-David, Blelloch,
// Friedman & Wei [4] — the baseline Algorithm 2 improves on.
//
// Every successful CAS installs ⟨value, tag⟩ with a unique tag ⟨pid, seq⟩.
// Before a process replaces a value tagged ⟨q, s⟩ it first raises done[q] to
// s ("notify q that its CAS s succeeded"), so q's recovery can distinguish
// "my CAS took effect and was later replaced" from "my CAS never happened".
// The notification is truthful because the replacer raises done[q] only after
// observing ⟨q, s⟩ installed in C. Identifiers grow without bound — the
// space behaviour experiment E1 measures via `ids_minted()`.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "baselines/attiya_register.hpp"  // tagged_word, tag helpers
#include "core/object.hpp"
#include "nvm/pcell.hpp"
#include "nvm/pvar.hpp"

namespace detect::base {

class bendavid_cas final : public core::detectable_object {
 public:
  bendavid_cas(int nprocs, announcement_board& board, value_t init,
               nvm::pmem_domain& dom)
      : board_(&board), c_(tagged_word{init, 0}, dom) {
    for (int p = 0; p < nprocs; ++p) {
      done_.push_back(std::make_unique<nvm::pcell<std::uint64_t>>(0, dom));
      seq_.push_back(std::make_unique<nvm::pvar<std::uint64_t>>(0, dom));
      rd_.push_back(std::make_unique<nvm::pvar<std::uint64_t>>(0, dom));
    }
  }

  value_t invoke(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::cas:
        return cas(pid, op.a, op.b);
      case hist::opcode::cas_read:
        return read(pid);
      default:
        throw std::invalid_argument("bendavid_cas: bad opcode");
    }
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::cas:
        return cas_recover(pid);
      case hist::opcode::cas_read:
        return read_recover(pid);
      default:
        throw std::invalid_argument("bendavid_cas: bad opcode");
    }
  }

  std::uint64_t ids_minted() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : seq_) total += s->peek();
    return total;
  }

 private:
  void notify_replaced(std::uint64_t victim_tag) {
    if (victim_tag == 0) return;
    nvm::pcell<std::uint64_t>& cell =
        *done_[static_cast<std::size_t>(tag_pid(victim_tag))];
    std::uint64_t s = tag_seq(victim_tag);
    std::uint64_t cur = cell.load();
    while (cur < s) {
      if (cell.compare_exchange(cur, s)) break;
    }
  }

  value_t cas(int p, value_t old_v, value_t new_v) {
    ann_fields& ann = board_->of(p);
    std::uint64_t s = seq_[p]->load() + 1;
    seq_[p]->store(s);
    rd_[p]->store(s);
    ann.cp.store(1);
    for (;;) {
      tagged_word cur = c_.load();
      if (cur.val != old_v) {
        ann.resp.store(hist::k_false);
        return hist::k_false;
      }
      notify_replaced(cur.tag);  // truthful: cur.tag observed in C
      if (c_.compare_exchange(cur, tagged_word{new_v, make_tag(p, s)})) {
        ann.resp.store(hist::k_true);
        return hist::k_true;
      }
    }
  }

  recovery_result cas_recover(int p) {
    ann_fields& ann = board_->of(p);
    value_t r = ann.resp.load();
    if (r != hist::k_bottom) return recovery_result::linearized(r);
    if (ann.cp.load() == 0) return recovery_result::failed();
    std::uint64_t s = rd_[p]->load();
    tagged_word cur = c_.load();
    if (cur.tag == make_tag(p, s) || done_[p]->load() >= s) {
      ann.resp.store(hist::k_true);
      return recovery_result::linearized(hist::k_true);
    }
    // The CAS either failed or never executed; either way it wrote nothing
    // observable (same reasoning as Algorithm 2's recovery).
    return recovery_result::failed();
  }

  value_t read(int p) {
    ann_fields& ann = board_->of(p);
    value_t v = c_.load().val;
    ann.resp.store(v);
    return v;
  }

  recovery_result read_recover(int p) {
    ann_fields& ann = board_->of(p);
    value_t v = ann.resp.load();
    if (v != hist::k_bottom) return recovery_result::linearized(v);
    return recovery_result::linearized(read(p));
  }

  announcement_board* board_;
  nvm::pcell<tagged_word> c_;
  std::vector<std::unique_ptr<nvm::pcell<std::uint64_t>>> done_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint64_t>>> seq_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint64_t>>> rd_;
};

}  // namespace detect::base
