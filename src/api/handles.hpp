// Typed object handles — the descriptor-building half of the detect::api
// façade.
//
// A handle names one object registered with a harness (or arena): it carries
// the object id the runtime routes on, the kind string it was created from,
// and a pointer to the implementation. Its methods construct correctly-typed
// `hist::op_desc` values bound to that id — `r.write(5)`, `c.cas(0, 1)`,
// `q.enq(7)` — so client scripts never spell opcodes or object ids by hand.
//
// Handles are typed by *opcode family*, not by implementation: an `api::reg`
// may front Algorithm 1, the Attiya-style baseline, a plain register, or a
// stripped/NRL wrapper — they all speak reg_read/reg_write. Implementation-
// specific members (ids_minted, holder, ...) are reached with `as<T>()`.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/object.hpp"

namespace detect::api {

using hist::value_t;

/// The opcode family a registry kind speaks; decides which typed handle fits
/// and which smoke script exercises it.
enum class op_family : std::uint8_t {
  reg,
  swap,
  cas,
  counter,
  tas,
  queue,
  stack,
  max_reg,
  lock,
};

class object_handle {
 public:
  object_handle() = default;
  object_handle(std::uint32_t id, op_family family,
                core::detectable_object* obj, std::string kind)
      : id_(id), family_(family), obj_(obj), kind_(std::move(kind)) {}

  std::uint32_t id() const noexcept { return id_; }
  op_family family() const noexcept { return family_; }
  const std::string& kind() const noexcept { return kind_; }

  core::detectable_object& object() const {
    if (obj_ == nullptr) throw std::logic_error("api: empty object handle");
    return *obj_;
  }

  /// Implementation-typed access (e.g. `q.as<core::detectable_queue>()`).
  /// Throws std::bad_cast if the handle fronts something else.
  template <typename T>
  T& as() const {
    return dynamic_cast<T&>(object());
  }

 protected:
  hist::op_desc make(hist::opcode code, value_t a = 0, value_t b = 0) const {
    return {id_, code, a, b, 0};
  }

 private:
  std::uint32_t id_ = 0;
  op_family family_ = op_family::reg;
  core::detectable_object* obj_ = nullptr;
  std::string kind_;
};

/// Read/write register (Algorithm 1 family).
struct reg : object_handle {
  reg() = default;
  explicit reg(object_handle h) : object_handle(std::move(h)) {}

  hist::op_desc write(value_t v) const { return make(hist::opcode::reg_write, v); }
  hist::op_desc read() const { return make(hist::opcode::reg_read); }
};

/// Fetch-and-store register: swap(v) returns the old value.
struct swap_reg : object_handle {
  swap_reg() = default;
  explicit swap_reg(object_handle h) : object_handle(std::move(h)) {}

  hist::op_desc swap(value_t v) const { return make(hist::opcode::swap, v); }
  hist::op_desc read() const { return make(hist::opcode::reg_read); }
};

/// CAS object (Algorithm 2 family).
struct cas : object_handle {
  cas() = default;
  explicit cas(object_handle h) : object_handle(std::move(h)) {}

  hist::op_desc compare_and_set(value_t expected, value_t desired) const {
    return make(hist::opcode::cas, expected, desired);
  }
  hist::op_desc read() const { return make(hist::opcode::cas_read); }
};

/// Counter / fetch-and-add: add(d) returns the old value.
struct counter : object_handle {
  counter() = default;
  explicit counter(object_handle h) : object_handle(std::move(h)) {}

  hist::op_desc add(value_t delta) const { return make(hist::opcode::ctr_add, delta); }
  hist::op_desc read() const { return make(hist::opcode::ctr_read); }
};

/// Resettable test-and-set: set() returns the previous bit.
struct tas : object_handle {
  tas() = default;
  explicit tas(object_handle h) : object_handle(std::move(h)) {}

  hist::op_desc set() const { return make(hist::opcode::tas_set); }
  hist::op_desc reset() const { return make(hist::opcode::tas_reset); }
};

/// FIFO queue: deq() responds k_empty on an empty queue.
struct queue : object_handle {
  queue() = default;
  explicit queue(object_handle h) : object_handle(std::move(h)) {}

  hist::op_desc enq(value_t v) const { return make(hist::opcode::enq, v); }
  hist::op_desc deq() const { return make(hist::opcode::deq); }
};

/// LIFO stack: pop() responds k_empty on an empty stack.
struct stack : object_handle {
  stack() = default;
  explicit stack(object_handle h) : object_handle(std::move(h)) {}

  hist::op_desc push(value_t v) const { return make(hist::opcode::push, v); }
  hist::op_desc pop() const { return make(hist::opcode::pop); }
};

/// Max register (Algorithm 3 family) — no auxiliary state.
struct max_reg : object_handle {
  max_reg() = default;
  explicit max_reg(object_handle h) : object_handle(std::move(h)) {}

  hist::op_desc write_max(value_t v) const { return make(hist::opcode::max_write, v); }
  hist::op_desc read() const { return make(hist::opcode::max_read); }
};

/// Recoverable try-lock. Operations carry the caller's pid as an argument
/// (the spec is process-agnostic otherwise).
struct lock : object_handle {
  lock() = default;
  explicit lock(object_handle h) : object_handle(std::move(h)) {}

  hist::op_desc try_lock(int pid) const { return make(hist::opcode::lock_try, pid); }
  hist::op_desc release(int pid) const { return make(hist::opcode::lock_release, pid); }
};

}  // namespace detect::api
