// Linearizability checker (Wing & Gong style exhaustive search with state
// memoization).
//
// Input: a set of operation records with real-time intervals taken from the
// event log, plus a sequential spec. The checker searches for a total order
// that (a) respects real-time precedence (an op that responded before another
// was invoked must be ordered first), (b) replays through the spec with every
// constrained response matching, and (c) includes every non-optional op.
// Optional ops (pending at a crash or at the end of the run, never recovered)
// may be dropped — exactly the freedom durable linearizability grants.
//
// Complexity is exponential in the worst case; memoization on
// (set-of-done-ops, spec-state) makes realistic test histories fast. A node
// budget turns pathological inputs into an explicit "inconclusive" rather
// than a hang.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "history/specs.hpp"

namespace detect::hist {

inline constexpr std::size_t k_npos = static_cast<std::size_t>(-1);

struct op_record {
  int pid = -1;
  op_desc desc;
  std::size_t invoke_index = 0;
  std::size_t response_index = k_npos;  // k_npos ⇒ open-ended interval
  value_t response = k_bottom;
  bool has_response = false;  // response is constrained and must match
  bool optional = false;      // may be excluded from the linearization

  std::string to_string() const;
};

struct lin_result {
  bool linearizable = false;
  bool exhausted_budget = false;
  /// Search nodes expanded before the verdict — the cost figure per-object
  /// decomposition is measured against (see hist::checker).
  std::size_t nodes = 0;
  /// Indices into the input vector in linearization order (dropped optional
  /// ops are absent). Valid when linearizable.
  std::vector<std::size_t> witness;
  std::string error;  // diagnostic when not linearizable
};

/// Check linearizability of at most 64 operations against `initial`.
lin_result check_linearizable(const std::vector<op_record>& ops,
                              const spec& initial,
                              std::size_t node_budget = 4'000'000);

}  // namespace detect::hist
