// E1 — Space complexity table (the paper's §3/§4 claims).
//
// Paper claim: Algorithm 1 (read/write) and Algorithm 2 (CAS) are the first
// *bounded-space* detectable implementations; Algorithm 2 uses Θ(N) bits
// beyond the value, and prior detectable algorithms [3,4,9] rely on unique
// identifiers whose domain — hence the bits a register must reserve — grows
// without bound in the number of operations M.
//
// This binary measures, for each algorithm:
//   * shared bits beyond the value field (flat for Algorithms 1-2),
//   * identifiers minted after M operations and the ⌈log2⌉ bits needed to
//     store one (growing with M for the baselines).
#include <cmath>

#include "api/api.hpp"
#include "baselines/attiya_register.hpp"
#include "baselines/bendavid_cas.hpp"
#include "bench_util.hpp"

namespace {

using namespace detect;

std::uint64_t bits_for_ids(std::uint64_t ids) {
  if (ids <= 1) return 1;
  return static_cast<std::uint64_t>(std::ceil(std::log2(static_cast<double>(ids + 1))));
}

/// Run M register writes (or CAS ops) per process on the named registry kind
/// inside a 2-process world; return the identifiers it minted (0 for the
/// bounded algorithms).
std::uint64_t run_ops(const std::string& kind, int nprocs, int m, bool cas_ops) {
  auto b = api::harness::builder();
  b.procs(nprocs).max_steps(50'000'000);
  api::harness h = b.build();
  api::object_handle obj = h.add(kind);
  for (int p = 0; p < nprocs; ++p) {
    std::vector<hist::op_desc> script;
    for (int i = 0; i < m; ++i) {
      if (cas_ops) {
        script.push_back(api::cas(obj).compare_and_set(i % 3, (i + 1) % 3));
      } else {
        script.push_back(api::reg(obj).write(i % 7));
      }
    }
    h.script(p, std::move(script));
  }
  h.run();
  if (auto* a = dynamic_cast<base::attiya_register*>(&obj.object())) {
    return a->ids_minted();
  }
  if (auto* bd = dynamic_cast<base::bendavid_cas*>(&obj.object())) {
    return bd->ids_minted();
  }
  return 0;  // bounded algorithms mint none
}

}  // namespace

int main() {
  using detect::bench::fmt_u;
  using detect::bench::row;
  using detect::bench::rule;

  std::printf(
      "E1 — Space complexity of detectable objects (paper §3, §4)\n"
      "Bounded algorithms keep a flat footprint; id-based baselines must be\n"
      "able to store ids that grow with the operation count M.\n\n");

  std::printf("(a) Shared bits beyond the value field, as a function of N\n");
  row({"N", "alg1 R/W", "alg2 CAS", "bound(Thm1)"});
  rule(4);
  for (int n : {2, 4, 8, 16, 32, 64}) {
    // Algorithm 1: toggle arrays A[N][N][2] + writer-id/toggle in R.
    std::uint64_t alg1 = static_cast<std::uint64_t>(n) * n * 2 + 16;
    // Algorithm 2: the N-bit flip vector.
    std::uint64_t alg2 = static_cast<std::uint64_t>(n);
    // Theorem 1: ≥ N − 1 bits are necessary.
    row({std::to_string(n), fmt_u(alg1), fmt_u(alg2), fmt_u(n > 0 ? n - 1 : 0)});
  }

  std::printf(
      "\n(b) Identifier growth after M ops/process (N = 2 processes)\n");
  row({"M", "alg1 ids", "alg2 ids", "attiya ids", "bendavid", "id bits"});
  rule(6);
  for (int m : detect::bench::sweep<int>({10, 100, 1000, 10000}, 2)) {
    std::uint64_t attiya = run_ops("attiya_reg", 2, m, /*cas_ops=*/false);
    std::uint64_t bendavid = run_ops("bendavid_cas", 2, m, /*cas_ops=*/true);
    std::uint64_t alg1 = run_ops("reg", 2, m, /*cas_ops=*/false);
    std::uint64_t alg2 = run_ops("cas", 2, m, /*cas_ops=*/true);
    row({std::to_string(m), fmt_u(alg1), fmt_u(alg2), fmt_u(attiya),
         fmt_u(bendavid), fmt_u(bits_for_ids(attiya))});
  }

  std::printf(
      "\nShape check: columns 2-3 stay flat (bounded space, the paper's\n"
      "headline result); columns 4-6 grow with M (the unbounded-space regime\n"
      "of [3],[4],[9] that Theorem 2 shows cannot be avoided entirely —\n"
      "auxiliary state must come from somewhere, but it need not grow).\n");
  return 0;
}
