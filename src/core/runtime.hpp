// Client runtime: drives per-process operation scripts over detectable
// objects inside a simulated world, implementing the caller-side protocol of
// §2 and recording the execution history for the checker.
//
// Before each invocation the runtime announces the operation (Ann_p.op),
// resets the auxiliary state (Ann_p.resp := ⊥, Ann_p.CP := 0 — unless the
// object declares it needs none, like Algorithm 3 or the stripped Theorem-2
// counterexamples), and marks the announcement valid. After a crash it
// consults the announcement to decide whether a recovery function must run,
// exactly as the model prescribes ("which function should be invoked in
// order to recover is determined according to the value of Ann_p.op").
// `done_seq` is the client's durable program counter: it resumes the script
// from the first unfinished operation.
#pragma once

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/object.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

namespace detect::core {

class runtime {
 public:
  /// What a client does when recovery reports fail ("the caller can decide
  /// whether or not to reattempt", §1).
  enum class fail_policy : std::uint8_t { skip, retry };

  runtime(sim::world& w, hist::log& lg, announcement_board& board)
      : world_(&w), log_(&lg), board_(&board) {}

  /// Register `obj` under `id` and return the id (so registries can chain
  /// on it). Duplicate ids are rejected: silently overwriting the map entry
  /// would re-route every scripted op of the old object.
  std::uint32_t register_object(std::uint32_t id, detectable_object& obj) {
    auto [it, inserted] = objects_.emplace(id, &obj);
    if (!inserted) {
      throw std::invalid_argument("runtime: duplicate object id " +
                                  std::to_string(id));
    }
    return id;
  }

  /// Remove `id`'s registration (live object migration hands the object to
  /// another runtime). Throws std::invalid_argument when `id` is unknown.
  void unregister_object(std::uint32_t id) {
    if (objects_.erase(id) == 0) {
      throw std::invalid_argument("runtime: cannot unregister unknown object " +
                                  std::to_string(id));
    }
  }

  void set_script(int pid, std::vector<hist::op_desc> ops) {
    scripts_[pid] = std::move(ops);
  }

  void set_fail_policy(fail_policy p) { policy_ = p; }

  /// Submit the client task of every scripted process.
  void start() {
    for (const auto& [pid, ops] : scripts_) {
      world_->submit(pid, [this, pid = pid] { client_main(pid); });
    }
  }

  /// Crash epilogue: log the crash and resubmit every client; each resumes
  /// from its durable announcement + program counter.
  void on_crash() {
    hist::event e;
    e.kind = hist::event_kind::crash;
    log_->append(e);
    start();
  }

  /// Convenience: start and drive the world to completion.
  sim::run_report run(sim::scheduler& sched, sim::crash_plan* crashes = nullptr) {
    start();
    return world_->run(sched, crashes, [this] { on_crash(); });
  }

  /// The announcement/invocation protocol for a single operation; public so
  /// harnesses (Theorem 2) can drive single ops manually.
  void announce_and_invoke(int pid, hist::op_desc desc) {
    detectable_object& obj = *objects_.at(desc.object);
    ann_fields& ann = board_->of(pid);
    ann.valid.store(0);
    ann.op.store(desc);
    if (obj.wants_aux_reset()) {
      ann.resp.store(hist::k_bottom);
      ann.cp.store(0);
    }
    ann.valid.store(1);
    log_event(hist::event_kind::invoke, pid, desc);
    value_t v = obj.invoke(pid, desc);
    log_event(hist::event_kind::response, pid, desc, v);
  }

  /// Recovery for process pid if its announcement demands one. Public for
  /// manual harnesses; `client_main` calls it on resume.
  void maybe_recover(int pid) {
    ann_fields& ann = board_->of(pid);
    if (ann.valid.load() == 0) return;
    hist::op_desc desc = ann.op.load();
    if (desc.client_seq <= ann.done_seq.load()) return;
    detectable_object& obj = *objects_.at(desc.object);
    log_event(hist::event_kind::recover_begin, pid, desc);
    recovery_result rr = obj.recover(pid, desc);
    {
      hist::event e;
      e.kind = hist::event_kind::recover_result;
      e.pid = pid;
      e.desc = desc;
      e.verdict = rr.verdict;
      e.value = rr.response;
      log_checkpoint();
      log_->append(e);
    }
    if (rr.verdict == hist::recovery_verdict::linearized) {
      ann.done_seq.store(desc.client_seq);
    } else if (policy_ == fail_policy::retry) {
      announce_and_invoke(pid, desc);  // fresh attempt of the same op
      ann.done_seq.store(desc.client_seq);
    } else {
      ann.done_seq.store(desc.client_seq);  // give up on this op
    }
  }

 private:
  void client_main(int pid) {
    maybe_recover(pid);
    ann_fields& ann = board_->of(pid);
    const std::vector<hist::op_desc>& script = scripts_.at(pid);
    for (std::uint64_t seq = ann.done_seq.load() + 1; seq <= script.size();
         ++seq) {
      hist::op_desc desc = script[seq - 1];
      desc.client_seq = seq;
      announce_and_invoke(pid, desc);
      ann.done_seq.store(seq);
    }
  }

  // Events are appended at a scheduler-granted control step so the log order
  // is the model's real-time order. Each event is also an epoch boundary of
  // the buffered persistency model: the write-behind buffer drains within
  // the same atomic step, so an operation's effects are durable by the time
  // its response is observable — a crash can only roll back whole
  // not-yet-visible suffixes, never a completed operation.
  void log_checkpoint() {
    nvm::hook_access(nvm::access::control);
    world_->domain().epoch_boundary();
  }

  void log_event(hist::event_kind kind, int pid, const hist::op_desc& desc,
                 value_t value = hist::k_bottom) {
    log_checkpoint();
    hist::event e;
    e.kind = kind;
    e.pid = pid;
    e.desc = desc;
    e.value = value;
    log_->append(e);
  }

  sim::world* world_;
  hist::log* log_;
  announcement_board* board_;
  std::map<std::uint32_t, detectable_object*> objects_;
  std::map<int, std::vector<hist::op_desc>> scripts_;
  fail_policy policy_ = fail_policy::skip;
};

}  // namespace detect::core
