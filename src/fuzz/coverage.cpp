#include "fuzz/coverage.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace detect::fuzz {

namespace {

/// The opcode-mix coordinate: one entry per family touched by the scripts,
/// marked "*" when the scripts exercise the family's full opcode alphabet
/// (mutators AND readers) and "~" for a partial mix. Deliberately coarse —
/// a per-opcode bitmask would make nearly every scenario its own bucket,
/// and a signature that never repeats steers nothing.
std::string op_mix_of(const api::scripted_scenario& s) {
  const api::object_registry& reg = api::object_registry::global();
  std::map<std::string, std::pair<unsigned, unsigned>> mask_by_family;
  for (const auto& [pid, ops] : s.scripts) {
    for (const hist::op_desc& d : ops) {
      const api::scenario_object* o = s.find_object(d.object);
      if (o == nullptr || !reg.contains(o->kind)) continue;
      const api::op_family family = reg.at(o->kind).family;
      const std::vector<hist::opcode>& alphabet = api::family_opcodes(family);
      auto it = std::find(alphabet.begin(), alphabet.end(), d.code);
      if (it == alphabet.end()) continue;
      auto& [seen, full] = mask_by_family[api::family_name(family)];
      seen |= 1u << (it - alphabet.begin());
      full = (1u << alphabet.size()) - 1;
    }
  }
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, masks] : mask_by_family) {
    if (!first) os << "+";
    first = false;
    os << name << (masks.first == masks.second ? "*" : "~");
  }
  return os.str();
}

std::string kinds_of(const api::scripted_scenario& s) {
  std::vector<std::string> kinds;
  kinds.reserve(s.objects.size());
  for (const api::scenario_object& o : s.objects) kinds.push_back(o.kind);
  std::sort(kinds.begin(), kinds.end());
  kinds.erase(std::unique(kinds.begin(), kinds.end()), kinds.end());
  std::ostringstream os;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (i != 0) os << "+";
    os << kinds[i];
  }
  return os.str();
}

}  // namespace

std::string bucket_signature::scenario_key() const {
  std::ostringstream os;
  os << "kinds=" << kinds << "|mix=" << op_mix << "|backend=" << backend
     << "|shards=" << shards << "|place=" << placement
     << "|mig=" << (migrated ? 1 : 0) << "|sched=" << sched
     << "|preempt=" << preempt_bucket << "|persist=" << persist
     << "|vis=" << vis;
  return os.str();
}

std::string bucket_signature::key() const {
  std::ostringstream os;
  os << scenario_key() << "|crash=" << crash_phase
     << "|rec=" << (recovery_seen ? 1 : 0)
     << "|decomp=" << (decomposed ? 1 : 0)
     << "|synth=" << (synthesized_interval ? 1 : 0)
     << "|lost=" << (lost_persistence ? 1 : 0)
     << "|pend=" << pending_bucket;
  return os.str();
}

bucket_signature scenario_signature(const api::scripted_scenario& s) {
  bucket_signature b;
  b.kinds = kinds_of(s);
  b.op_mix = op_mix_of(s);
  b.backend = api::backend_name(s.backend);
  b.shards = s.shards;
  // Kind only — a pinned policy's map would make nearly every pinned
  // scenario its own bucket, and a signature that never repeats steers
  // nothing.
  b.placement = api::placement_name(s.placement.kind);
  b.migrated = !s.migrations.empty();
  b.sched = sched::strategy_name(s.sched.strat);
  b.preempt_bucket = s.sched.strat == sched::strategy::pct
                         ? static_cast<int>(std::min<std::size_t>(
                               s.sched.pct_points.size(), 3))
                         : 0;
  b.persist = nvm::persist_name(s.persist);
  b.vis = wmm::visibility_name(s.visibility);
  return b;
}

bucket_signature bucket_of(const api::scripted_scenario& s,
                           const api::scripted_outcome& out) {
  bucket_signature b = scenario_signature(s);
  b.crash_phase =
      static_cast<int>(std::min<std::uint64_t>(out.report.crashes, 3));
  for (const hist::event& e : out.events) {
    if (e.kind == hist::event_kind::recover_begin ||
        e.kind == hist::event_kind::recover_result) {
      b.recovery_seen = true;
      break;
    }
  }
  b.decomposed = out.check.objects > 1;
  b.synthesized_interval = out.check.synthesized_interval;
  b.lost_persistence = out.report.lost_persistence;
  b.pending_bucket = static_cast<int>(
      std::min<std::uint64_t>(out.report.max_pending_stores, 3));
  return b;
}

bool coverage_map::record(const bucket_signature& b) {
  ++executed_;
  const bool novel = buckets_.insert(b.key()).second;
  // Touching a scenario key records it even when its bucket is a repeat, so
  // steering stops re-rolling keys whose outcome space is exhausted too.
  std::size_t& under = buckets_under_[b.scenario_key()];
  if (novel) {
    ++under;
    timeline_.emplace_back(executed_, buckets_.size());
  }
  return novel;
}

}  // namespace detect::fuzz
