// E3 — Theorem 2 / Figure 2: auxiliary state is necessary for detectable
// implementations of doubly-perturbing objects.
//
// Paper claim: any weak-obstruction-free detectable implementation of a
// doubly-perturbing object must receive auxiliary state, via NVM writes
// between invocations or via operation arguments. The proof builds an
// execution (Figure 2) in which, without auxiliary state, the recovery of a
// fresh never-executed invocation is indistinguishable from the recovery of
// an almost-complete one — forcing a wrong verdict and a durable-
// linearizability violation.
//
// This binary executes that schedule against live implementations:
//   * Algorithms 1-2 with their auxiliary resets — no violation,
//   * the same algorithms with the resets stripped   — violation (E-branch),
//   * Algorithm 3 (max register), which needs no auxiliary state because it
//     is not doubly-perturbing (Lemma 4)              — no violation.
#include "bench_util.hpp"
#include "theory/aux_necessity.hpp"

namespace {

const char* verdict_name(detect::hist::recovery_verdict v) {
  switch (v) {
    case detect::hist::recovery_verdict::linearized:
      return "linearized";
    case detect::hist::recovery_verdict::fail:
      return "fail";
    default:
      return "none";
  }
}

void report(const detect::theory::aux_scenario& s) {
  auto d = detect::theory::run_d_branch(s);
  auto e = detect::theory::run_e_branch(s);
  detect::bench::row({s.name, verdict_name(d.verdict),
                      d.violation ? "VIOLATION" : "ok", verdict_name(e.verdict),
                      e.violation ? "VIOLATION" : "ok"},
                     28);
}

}  // namespace

int main() {
  using namespace detect;
  std::printf(
      "E3 — Theorem 2: the Figure-2 adversarial schedule, live.\n"
      "D-branch: crash just before the first Opp returns.\n"
      "E-branch: Opp completes; a second Opp is invoked; crash immediately\n"
      "after the invocation; recovery runs; another process then probes.\n\n");
  bench::row({"object", "D verdict", "D check", "E verdict", "E check"}, 28);
  bench::rule(5, 28);
  report(theory::register_scenario(/*stripped=*/false));
  report(theory::register_scenario(/*stripped=*/true));
  report(theory::cas_scenario(/*stripped=*/false));
  report(theory::cas_scenario(/*stripped=*/true));
  report(theory::queue_scenario(/*stripped=*/false));
  report(theory::queue_scenario(/*stripped=*/true));
  report(theory::counter_scenario(/*stripped=*/false));
  report(theory::counter_scenario(/*stripped=*/true));
  report(theory::max_register_scenario());
  std::printf(
      "\nShape check: only the stripped (no-auxiliary-state) doubly-\n"
      "perturbing objects violate, and only on the E-branch — the recovery\n"
      "answers 'linearized' for an operation that never executed, exactly\n"
      "the contradiction Theorem 2 derives. The max register, which is not\n"
      "doubly-perturbing, is correct with no auxiliary state at all.\n");
  return 0;
}
