// Algorithm 2 (detectable CAS): sequential behaviour, flip-vector recovery
// semantics, crash sweeps, schedule fuzzing, and exhaustive exploration.
#include <gtest/gtest.h>

#include "core/detectable_cas.hpp"
#include "core/nrl.hpp"
#include "sim/explorer.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario cas_scenario(int nprocs, std::function<scripts(api::cas)> make_scripts,
                      core::runtime::fail_policy policy =
                          core::runtime::fail_policy::skip) {
  return one_object<api::cas>("cas", nprocs, std::move(make_scripts), policy);
}

TEST(detectable_cas, rejects_too_many_processes) {
  api::arena a(65);
  EXPECT_THROW(core::detectable_cas(65, a.board(), 0, a.domain()),
               std::invalid_argument);
}

TEST(detectable_cas, sequential_semantics) {
  auto cfg = cas_scenario(1, [](api::cas c) {
    return scripts{{0,
                    {c.compare_and_set(0, 1), c.compare_and_set(0, 2),
                     c.compare_and_set(1, 2), c.read()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_cas, contended_cas_exactly_one_winner) {
  // Both processes CAS(0→their value); exactly one must win.
  auto cfg = cas_scenario(2, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.read()}},
        {1, {c.compare_and_set(0, 2), c.read()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_cas, crash_sweep_single_proc) {
  auto cfg = cas_scenario(1, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.compare_and_set(1, 2), c.read()}}};
  });
  crash_sweep(cfg, 1);
}

TEST(detectable_cas, crash_sweep_contended) {
  auto cfg = cas_scenario(2, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.compare_and_set(1, 0)}},
        {1, {c.compare_and_set(0, 2), c.read()}},
    };
  });
  crash_sweep(cfg, 9);
}

TEST(detectable_cas, crash_sweep_retry_policy) {
  auto cfg = cas_scenario(
      2,
      [](api::cas c) {
        return scripts{
            {0, {c.compare_and_set(0, 1), c.compare_and_set(1, 2)}},
            {1, {c.compare_and_set(0, 3), c.read()}},
        };
      },
      core::runtime::fail_policy::retry);
  crash_sweep(cfg, 17);
}

TEST(detectable_cas, multi_crash_fuzz) {
  auto cfg = cas_scenario(3, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.compare_and_set(1, 2)}},
        {1, {c.compare_and_set(0, 2), c.compare_and_set(2, 3)}},
        {2, {c.read(), c.compare_and_set(1, 4)}},
    };
  });
  crash_fuzz(cfg, 150, 2);
}

TEST(detectable_cas, abab_value_cycle_fuzz) {
  // Values cycle 0→1→0→1: without the flip vector this is the classic ABA
  // trap for recovery.
  auto cfg = cas_scenario(2, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.compare_and_set(0, 1)}},
        {1, {c.compare_and_set(1, 0), c.compare_and_set(1, 0)}},
    };
  });
  crash_fuzz(cfg, 150, 2);
}

// Deterministic construction of Algorithm 2's two post-checkpoint recovery
// paths (lines 42-46): crash right BEFORE the CAS of line 35 ⇒ vec[p] still
// matches the pre-flip state ⇒ fail; crash right AFTER the successful CAS ⇒
// vec[p] equals the persisted flipped bit ⇒ linearized(true).
TEST(detectable_cas, line43_flip_bit_decides_both_ways) {
  for (bool crash_after_cas : {false, true}) {
    auto h = api::harness::builder().procs(2).build();
    api::cas c = h.add_cas();
    h.submit_op(0, c.compare_and_set(0, 7), 1);
    // Step until the next access is the CAS itself (the only shared_cas in
    // the operation, issued with CP == 1).
    while (!(h.board().of(0).cp.peek() == 1 &&
             h.world().pending_access(0) == nvm::access::shared_cas)) {
      h.world().step(0);
    }
    if (crash_after_cas) h.world().step(0);  // execute line 35
    h.crash_now();
    h.submit_recovery(0);
    h.drive_all();
    hist::value_t value = hist::k_bottom;
    hist::recovery_verdict verdict = last_verdict(h.events(), 0, &value);
    if (crash_after_cas) {
      EXPECT_EQ(verdict, hist::recovery_verdict::linearized);
      EXPECT_EQ(value, hist::k_true);
    } else {
      EXPECT_EQ(verdict, hist::recovery_verdict::fail);
    }
    auto check = h.check();
    EXPECT_TRUE(check.ok) << check.message;
  }
}

// The failed-CAS case: another process wins the race between p's read and
// p's CAS; p's line-35 CAS executes but fails, leaving vec[p] unflipped —
// recovery must report fail ("it did not change the value of any variable
// that operations by other processes may read", Lemma 2).
TEST(detectable_cas, lost_race_recovers_as_fail) {
  auto h = api::harness::builder().procs(2).build();
  api::cas c = h.add_cas();
  h.submit_op(0, c.compare_and_set(0, 7), 1);
  while (!(h.board().of(0).cp.peek() == 1 &&
           h.world().pending_access(0) == nvm::access::shared_cas)) {
    h.world().step(0);
  }
  // p1 sneaks in a full successful CAS(0→9).
  h.submit_op(1, c.compare_and_set(0, 9), 1);
  h.drive(1);
  h.board().of(1).done_seq.store(1);
  h.world().step(0);  // p0's CAS executes and fails
  h.crash_now();
  h.submit_recovery(0);
  h.drive_all();
  EXPECT_EQ(last_verdict(h.events(), 0), hist::recovery_verdict::fail);
  auto check = h.check();
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(detectable_cas, exhaustive_two_procs_one_crash_one_preemption) {
  struct scen final : sim::exploration {
    api::harness h = api::harness::builder().procs(2).build();
    scen() {
      api::cas c = h.add_cas();
      h.script(0, {c.compare_and_set(0, 1)});
      h.script(1, {c.compare_and_set(0, 2)});
      h.runtime().start();
    }
    sim::world& get_world() override { return h.world(); }
    void on_crash() override { h.runtime().on_crash(); }
    void at_end() override {
      auto r = h.check();
      if (!r.ok) throw std::runtime_error(r.message);
    }
  };
  sim::explore_config cfg;
  cfg.max_crashes = 1;
  cfg.max_preemptions = 1;
  cfg.max_runs = 100'000;
  auto res = sim::explore_schedules([] { return std::make_unique<scen>(); }, cfg);
  EXPECT_FALSE(res.failed) << res.failure;
  EXPECT_TRUE(res.complete) << "runs=" << res.runs;
  EXPECT_GT(res.runs, 100u);
}

TEST(detectable_cas, vec_bit_flips_only_on_success) {
  // Drive the object through scripts (no crashes) and count wins.
  auto h = api::harness::builder().procs(2).build();
  api::cas c = h.add_cas();
  h.script(0, {c.compare_and_set(0, 1), c.compare_and_set(0, 9),
               c.compare_and_set(1, 2)});
  h.run();
  // p0: success (flip), fail (no flip), success (flip) → bit back to 0.
  int successes = 0;
  for (const auto& e : h.events()) {
    if (e.kind == hist::event_kind::response &&
        e.desc.code == hist::opcode::cas && e.value == hist::k_true) {
      ++successes;
    }
  }
  EXPECT_EQ(successes, 2);
}

TEST(detectable_cas, read_recovery_returns_persisted_response) {
  auto cfg = cas_scenario(2, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 5)}},
        {1, {c.read(), c.read()}},
    };
  });
  crash_sweep(cfg, 23);
}

TEST(detectable_cas, nrl_wrapper_battery) {
  // The NRL adapter composes with any detectable object; wrap the CAS here
  // via add_object (the registry ships a prewired nrl_reg kind).
  scenario cfg;
  cfg.nprocs = 2;
  cfg.setup = [](api::harness& h) {
    api::cas inner = h.add_cas();
    auto nrl = std::make_unique<core::nrl_adapter>(inner.object(), h.board());
    api::cas c(h.add_object(std::move(nrl), std::make_unique<hist::cas_spec>(0),
                            api::op_family::cas, "nrl_cas"));
    h.script(0, {c.compare_and_set(0, 1), c.compare_and_set(1, 2)});
    h.script(1, {c.compare_and_set(0, 7), c.read()});
  };
  crash_sweep(cfg, 31);
  crash_fuzz(cfg, 60, 2);
}

TEST(detectable_cas, shared_cache_with_transform) {
  auto cfg = cas_scenario(2, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.compare_and_set(1, 0)}},
        {1, {c.compare_and_set(0, 2), c.read()}},
    };
  });
  cfg.shared_cache = true;
  crash_sweep(cfg, 37);
}

TEST(detectable_cas, extra_bits_are_theta_n) {
  api::arena a(64);
  for (int n : {1, 8, 33, 64}) {
    core::detectable_cas cas(n, a.board(), 0, a.domain());
    EXPECT_EQ(cas.extra_shared_bits(), static_cast<std::size_t>(n));
  }
}

class cas_property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(cas_property, durable_linearizable_and_detectable) {
  auto [seed, crashes] = GetParam();
  auto cfg = cas_scenario(3, [](api::cas c) {
    return scripts{
        {0, {c.compare_and_set(0, 1), c.compare_and_set(1, 2)}},
        {1, {c.compare_and_set(0, 2), c.compare_and_set(2, 0)}},
        {2, {c.read(), c.compare_and_set(1, 3)}},
    };
  });
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 15485863);
}

INSTANTIATE_TEST_SUITE_P(sweep, cas_property,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Values(0, 1, 2, 3)));

// Scale sweep: the flip vector grows with N; exercise several widths.
class cas_scale : public ::testing::TestWithParam<int> {};

TEST_P(cas_scale, crash_fuzz_at_n) {
  int n = GetParam();
  auto cfg = cas_scenario(n, [n](api::cas c) {
    scripts s;
    for (int p = 0; p < n; ++p) {
      s[p] = {c.compare_and_set(p, p + 1), c.compare_and_set(0, p + 10)};
    }
    return s;
  });
  crash_fuzz(cfg, 25, 2, static_cast<std::uint64_t>(n) * 472882);
}

INSTANTIATE_TEST_SUITE_P(scale, cas_scale, ::testing::Values(2, 3, 4, 6));

}  // namespace
