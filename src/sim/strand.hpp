// Simulated-process execution engines.
//
// A `strand` is one crash-prone simulated process: it runs a task under the
// world's step token, parking at every emulated NVM access until the
// scheduler grants the next step, and unwinds via `nvm::crashed` when a
// system-wide crash is delivered. Two interchangeable engines implement the
// contract:
//
//   * `fiber`  — the fast path: the task runs on a stackful fiber that
//     context-switches to the driving thread at every yield (~tens of ns per
//     step, no OS involvement). Default.
//   * `thread` — the original engine: one OS worker thread per process,
//     parked on a mutex/condition-variable handshake (~10 µs per step, two
//     OS context switches). Kept as the reference implementation the
//     determinism pins compare the fiber engine against.
//
// Both engines present the same settled-state machine to the world:
// `start()` runs the task to its first yield (or completion), `step()`
// advances it one access, `deliver_crash()` unwinds it; on return from any
// of these the strand is `at_yield` or `done`, never in flight. Schedules,
// event logs, and checker verdicts are engine-invariant by construction —
// `tests/engine_test.cpp` pins that across a 500-seed scenario corpus.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <utility>

#include "nvm/hook.hpp"

namespace detect::sim {

enum class engine_kind : std::uint8_t { fiber, thread };

const char* engine_name(engine_kind e) noexcept;

/// Process-global default used by worlds whose config doesn't pin an engine.
/// Initially `fiber`. Scenario replays build their executors internally, so
/// flipping this is how A/B tests re-run an identical scenario on the other
/// engine (the engine is deliberately not part of the scenario format).
engine_kind default_engine() noexcept;
void set_default_engine(engine_kind e) noexcept;

/// One simulated process. Not thread-safe: the world serializes all calls.
class strand : public nvm::access_hook {
 public:
  enum class status : std::uint8_t {
    idle,      // no task
    at_yield,  // parked at an access, eligible for step()
    done,      // task returned or unwound; outcome not yet absorbed
  };

  ~strand() override = default;
  strand(const strand&) = delete;
  strand& operator=(const strand&) = delete;

  /// Run `task` until its first yield or completion. Valid only when idle.
  virtual void start(std::function<void()> task) = 0;

  /// Perform the pending access and run to the next yield or completion.
  /// Valid only when at_yield.
  virtual void step() = 0;

  /// Deliver a crash at the current yield: the task unwinds via
  /// `nvm::crashed` (volatile local state is lost). Valid only when
  /// at_yield; returns once the strand is done.
  virtual void deliver_crash() = 0;

  status st() const noexcept { return status_; }
  nvm::access pending() const noexcept { return pending_kind_; }
  bool interrupted() const noexcept { return interrupted_; }

  /// Absorb a finished task: done → idle. Returns (and clears) any
  /// non-crash exception the task raised, for the world to rethrow.
  std::exception_ptr reset_done() noexcept {
    status_ = status::idle;
    return std::exchange(error_, nullptr);
  }

 protected:
  strand() = default;

  status status_ = status::idle;
  nvm::access pending_kind_ = nvm::access::control;
  bool interrupted_ = false;   // last task unwound by crash
  std::exception_ptr error_;   // non-crash exception from the task
};

std::unique_ptr<strand> make_strand(engine_kind engine);

}  // namespace detect::sim
