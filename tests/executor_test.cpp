// detect::api::executor — backend policies, shard routing, log merging,
// per-object checker decomposition, and the real-thread backend.
#include <algorithm>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "api/api.hpp"

namespace detect {
namespace {

using api::exec_backend;

// ---- builder / policy -------------------------------------------------------

TEST(executor_builder, backend_names_round_trip) {
  for (exec_backend b : {exec_backend::single, exec_backend::sharded,
                         exec_backend::threads}) {
    EXPECT_EQ(api::backend_from_name(api::backend_name(b)), b);
  }
  EXPECT_THROW(api::backend_from_name("warp"), std::invalid_argument);
}

TEST(executor_builder, rejects_nonsense_policies) {
  api::exec_policy p;
  p.shards = 0;
  EXPECT_THROW(api::make_executor(p), std::invalid_argument);

  api::exec_policy threads_with_crashes;
  threads_with_crashes.backend = exec_backend::threads;
  threads_with_crashes.crash_steps = {10};
  EXPECT_THROW(api::make_executor(threads_with_crashes),
               std::invalid_argument);

  api::exec_policy threads_shared;
  threads_shared.backend = exec_backend::threads;
  threads_shared.shared_cache = true;
  EXPECT_THROW(api::make_executor(threads_shared), std::invalid_argument);
}

TEST(executor_builder, script_pid_out_of_range_throws) {
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(2)
                .procs(2)
                .build();
  api::reg r = ex->add_reg();
  EXPECT_THROW(ex->script(2, {r.read()}), std::invalid_argument);
  EXPECT_THROW(ex->script(-1, {r.read()}), std::invalid_argument);
}

// ---- single backend ---------------------------------------------------------

// The same scripted workload through the classic harness and through the
// single-backend executor must produce the identical history.
TEST(executor_single, behavior_matches_the_harness) {
  auto scripted = [](auto& target) {
    api::reg r = target.add_reg();
    api::queue q = target.add_queue();
    target.script(0, {r.write(5), q.enq(1), q.enq(2), r.read()});
    target.script(1, {q.deq(), r.write(7), q.deq()});
  };

  api::harness h = api::harness::builder().procs(2).seed(99).build();
  scripted(h);
  h.run();

  auto ex = api::executor::builder()
                .backend(exec_backend::single)
                .procs(2)
                .seed(99)
                .build();
  scripted(*ex);
  ex->run();

  EXPECT_EQ(ex->log_text(), h.log_text());
  EXPECT_TRUE(ex->check().ok);
  EXPECT_TRUE(h.check().ok);
  EXPECT_EQ(ex->shards(), 1);
  EXPECT_EQ(ex->shard_of(1), 0);
}

// ---- sharded backend --------------------------------------------------------

TEST(executor_sharded, routes_objects_by_id_mod_shards) {
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(3)
                .procs(2)
                .build();
  std::vector<api::object_handle> objs;
  for (int i = 0; i < 7; ++i) objs.push_back(ex->add("reg"));
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(objs[static_cast<std::size_t>(i)].id(),
              static_cast<std::uint32_t>(i));
    EXPECT_EQ(ex->shard_of(objs[static_cast<std::size_t>(i)].id()), i % 3);
  }
  EXPECT_EQ(ex->shards(), 3);
}

// add_as honors caller-chosen ids on every backend: the id decides the
// hosting shard, later auto-adds continue past it, and duplicates throw —
// the contract scenario replay relies on to reproduce declared routings.
TEST(executor_backends_add_as, honors_ids_and_rejects_duplicates) {
  for (exec_backend be :
       {exec_backend::single, exec_backend::sharded, exec_backend::threads}) {
    auto ex = api::executor::builder()
                  .backend(be)
                  .shards(be == exec_backend::sharded ? 3 : 1)
                  .procs(2)
                  .build();
    api::object_handle five = ex->add_as(5, "reg");
    EXPECT_EQ(five.id(), 5u) << backend_name(be);
    if (be == exec_backend::sharded) {
      EXPECT_EQ(ex->shard_of(five.id()), 5 % 3);
    }
    // The next auto-assigned id continues past the explicit one.
    api::object_handle next = ex->add("reg");
    EXPECT_EQ(next.id(), 6u) << backend_name(be);
    EXPECT_THROW(ex->add_as(5, "reg"), std::exception) << backend_name(be);
  }
}

TEST(executor_sharded, runs_and_checks_a_cross_shard_workload) {
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(3)
                .procs(3)
                .seed(7)
                .build();
  api::counter c0 = ex->add_counter();   // shard 0
  api::counter c1 = ex->add_counter();   // shard 1
  api::queue q = ex->add_queue();        // shard 2
  for (int p = 0; p < 3; ++p) {
    ex->script(p, {c0.add(1), q.enq(p), c1.add(1), q.deq(), c0.add(1)});
  }
  sim::run_report report = ex->run();
  EXPECT_FALSE(report.hit_step_limit);

  hist::check_result check = ex->check();
  EXPECT_TRUE(check.ok) << check.message;

  // Every scripted op responded, and the merge preserved all events.
  std::vector<hist::event> events = ex->events();
  int responses = 0;
  for (const hist::event& e : events) {
    if (e.kind == hist::event_kind::response) ++responses;
  }
  EXPECT_EQ(responses, 15);

  // Per-shard subsequences of the merged log equal the shard-local orders:
  // both counters saw 3 adds each (responses 0,1,2 in some order).
  std::multiset<hist::value_t> c0_resps;
  std::multiset<hist::value_t> c1_resps;
  for (const hist::event& e : events) {
    if (e.kind != hist::event_kind::response) continue;
    if (e.desc.object == c0.id()) c0_resps.insert(e.value);
    if (e.desc.object == c1.id()) c1_resps.insert(e.value);
  }
  EXPECT_EQ(c0_resps, (std::multiset<hist::value_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(c1_resps, (std::multiset<hist::value_t>{0, 1, 2}));
}

TEST(executor_sharded, crashy_sharded_run_still_checks) {
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(2)
                .procs(2)
                .seed(3)
                .fail_policy(core::runtime::fail_policy::retry)
                .crash_at({9, 23})
                .build();
  api::reg r0 = ex->add_reg();
  api::reg r1 = ex->add_reg();
  ex->script(0, {r0.write(1), r1.write(2), r0.read()});
  ex->script(1, {r1.read(), r0.write(3), r1.write(4)});
  sim::run_report report = ex->run();
  EXPECT_FALSE(report.hit_step_limit);
  EXPECT_GE(report.crashes, 1u);  // both shards crash at their local steps
  hist::check_result check = ex->check();
  EXPECT_TRUE(check.ok) << check.message;
}

// A single-object workload lands entirely in one shard, so the sharded
// execution must be step-for-step identical to the single backend.
TEST(executor_sharded, single_object_run_is_identical_to_single_backend) {
  auto scripted = [](api::executor& ex) {
    api::cas c = ex.add_cas();
    ex.script(0, {c.compare_and_set(0, 1), c.read()});
    ex.script(1, {c.compare_and_set(0, 2), c.read()});
    ex.run();
  };
  auto single = api::executor::builder()
                    .backend(exec_backend::single)
                    .procs(2)
                    .seed(11)
                    .crash_at({6})
                    .fail_policy(core::runtime::fail_policy::retry)
                    .build();
  auto sharded = api::executor::builder()
                     .backend(exec_backend::sharded)
                     .shards(4)
                     .procs(2)
                     .seed(11)
                     .crash_at({6})
                     .fail_policy(core::runtime::fail_policy::retry)
                     .build();
  scripted(*single);
  scripted(*sharded);
  EXPECT_EQ(single->log_text(), sharded->log_text());
}

// ---- threads backend --------------------------------------------------------

TEST(executor_threads, real_thread_run_passes_the_per_object_check) {
  auto ex = api::executor::builder()
                .backend(exec_backend::threads)
                .procs(4)
                .build();
  api::counter c = ex->add_counter();
  api::reg r = ex->add_reg();
  for (int p = 0; p < 4; ++p) {
    ex->script(p, {c.add(1), r.write(p), c.add(1), r.read()});
  }
  sim::run_report report = ex->run();
  EXPECT_EQ(report.steps, 16u);  // threads backend reports ops, not steps

  hist::check_result check = ex->check();
  EXPECT_TRUE(check.ok) << check.message;

  // 8 concurrent fetch-and-adds: all distinct old values 0..7.
  std::set<hist::value_t> adds;
  for (const hist::event& e : ex->events()) {
    if (e.kind == hist::event_kind::response &&
        e.desc.code == hist::opcode::ctr_add) {
      adds.insert(e.value);
    }
  }
  EXPECT_EQ(adds, (std::set<hist::value_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// Scripts written once run unmodified on every backend — the one-line policy
// change the redesign is for.
TEST(executor_backends, same_script_code_runs_on_all_backends) {
  for (exec_backend be : {exec_backend::single, exec_backend::sharded,
                          exec_backend::threads}) {
    auto ex = api::executor::builder()
                  .backend(be)
                  .shards(be == exec_backend::sharded ? 2 : 1)
                  .procs(2)
                  .build();
    api::stack st = ex->add_stack();
    api::max_reg m = ex->add_max_reg();
    ex->script(0, {st.push(1), m.write_max(5), st.pop()});
    ex->script(1, {st.push(2), m.write_max(3), m.read()});
    ex->run();
    hist::check_result check = ex->check();
    EXPECT_TRUE(check.ok) << api::backend_name(be) << ": " << check.message;
  }
}

// ---- per-object checker decomposition ---------------------------------------

// The ISSUE-3 acceptance scenario: a 3-object, 64-op workload whose
// product-spec search is hopeless (inconclusive under a budget the
// decomposition finishes well inside, or >= 10x the nodes) while the
// per-object path completes. Heavy overlap comes from 8 procs under a
// random scheduler; writes' unconstrained effects are what blow up the
// product branching.
TEST(per_object_decomposition, beats_the_product_spec_on_3x64_ops) {
  auto build = [] {
    api::harness h = api::harness::builder().procs(8).seed(0xdecaf).build();
    api::reg a = h.add_reg();
    api::reg b = h.add_reg();
    api::reg c = h.add_reg();
    for (int p = 0; p < 8; ++p) {
      // 8 ops per proc = 64 total, interleaving all three objects.
      h.script(p, {a.write(p), b.write(p), c.write(p), a.read(), b.read(),
                   c.read(), a.write(p + 8), c.read()});
    }
    h.run();
    return h;
  };

  api::harness h = build();
  constexpr std::size_t budget = 2'000'000;
  hist::check_result product =
      hist::check_durable_linearizability(h.events(), *h.spec(), budget);
  hist::check_result decomposed = h.check_per_object(budget);

  ASSERT_TRUE(decomposed.ok) << decomposed.message;
  ASSERT_GT(decomposed.nodes, 0u);
  EXPECT_TRUE(product.inconclusive || product.nodes >= 10 * decomposed.nodes)
      << "product nodes: " << product.nodes
      << ", per-object nodes: " << decomposed.nodes;

  // The same scenario through the sharded executor (one object per shard)
  // completes via the same decomposition.
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(3)
                .procs(8)
                .seed(0xdecaf)
                .build();
  api::reg a = ex->add_reg();
  api::reg b = ex->add_reg();
  api::reg c = ex->add_reg();
  for (int p = 0; p < 8; ++p) {
    ex->script(p, {a.write(p), b.write(p), c.write(p), a.read(), b.read(),
                   c.read(), a.write(p + 8), c.read()});
  }
  ex->run();
  hist::check_result sharded_check = ex->check(budget);
  EXPECT_TRUE(sharded_check.ok) << sharded_check.message;
  EXPECT_EQ(ex->events().size(), 2u * 64u);  // every op invoked + responded
}

TEST(per_object_decomposition, flags_objects_without_specs) {
  api::harness h = api::harness::builder().procs(1).build();
  api::reg r = h.add_reg();
  h.script(0, {r.write(1)});
  h.run();
  hist::check_result res = hist::check_durable_linearizability_per_object(
      h.events(), /*specs=*/{});
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.message.find("no spec for object id"), std::string::npos);
}

TEST(per_object_decomposition, catches_per_object_violations) {
  // Hand-build a history where object 1's responses cannot linearize while
  // object 0 is fine — the decomposition must blame object 1.
  std::vector<hist::event> events;
  auto push = [&events](hist::event_kind kind, int pid, std::uint32_t obj,
                        hist::opcode code, hist::value_t a,
                        hist::value_t value) {
    hist::event e;
    e.kind = kind;
    e.pid = pid;
    e.desc.object = obj;
    e.desc.code = code;
    e.desc.a = a;
    e.value = value;
    events.push_back(e);
  };
  using hist::event_kind;
  using hist::opcode;
  push(event_kind::invoke, 0, 0, opcode::reg_write, 4, 0);
  push(event_kind::response, 0, 0, opcode::reg_write, 4, hist::k_ack);
  push(event_kind::invoke, 0, 1, opcode::reg_read, 0, 0);
  push(event_kind::response, 0, 1, opcode::reg_read, 0, 42);  // never written

  hist::register_spec spec0(0);
  hist::register_spec spec1(0);
  hist::check_result res = hist::check_durable_linearizability_per_object(
      events, {{0, &spec0}, {1, &spec1}});
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.message.find("object 1"), std::string::npos) << res.message;
  // The worst offender is named with its node count (satellite: deep-fuzz
  // artifacts debuggable without replaying).
  EXPECT_NE(res.message.find("nodes"), std::string::npos) << res.message;
}

// ---- placement policies -----------------------------------------------------

TEST(placement, names_round_trip) {
  for (api::placement_kind k :
       {api::placement_kind::modulo, api::placement_kind::hash,
        api::placement_kind::range, api::placement_kind::pinned}) {
    EXPECT_EQ(api::placement_from_name(api::placement_name(k)), k);
  }
  EXPECT_THROW(api::placement_from_name("round_robin"), std::invalid_argument);
}

TEST(placement, to_string_parse_round_trip) {
  api::placement_policy hash;
  hash.kind = api::placement_kind::hash;
  EXPECT_EQ(api::placement_policy::parse(hash.to_string()), hash);

  api::placement_policy pinned = api::pinned_placement({{0, 1}, {7, 0}});
  EXPECT_EQ(pinned.to_string(), "pinned 0:1 7:0");
  EXPECT_EQ(api::placement_policy::parse(pinned.to_string()), pinned);

  EXPECT_THROW(api::placement_policy::parse("pinned 0:1 0:2"),
               std::invalid_argument);  // duplicate pin
  EXPECT_THROW(api::placement_policy::parse("pinned frob"),
               std::invalid_argument);
  EXPECT_THROW(api::placement_policy::parse("modulo 0:1"),
               std::invalid_argument);  // pins on a pin-less kind
}

TEST(placement, policies_are_deterministic_and_in_range) {
  for (api::placement_kind k :
       {api::placement_kind::modulo, api::placement_kind::hash,
        api::placement_kind::range, api::placement_kind::pinned}) {
    api::placement_policy p;
    p.kind = k;
    if (k == api::placement_kind::pinned) p.pins = {{3, 2}, {5, 0}};
    for (int shards : {1, 2, 3, 8}) {
      if (k == api::placement_kind::pinned && shards < 3) continue;
      for (std::uint32_t id = 0; id < 64; ++id) {
        const int a = p.shard_of(id, id, shards);
        const int b = p.shard_of(id, id, shards);
        EXPECT_EQ(a, b) << api::placement_name(k);
        EXPECT_GE(a, 0);
        EXPECT_LT(a, shards);
      }
    }
  }
}

TEST(placement, modulo_matches_ids_and_pinned_honors_pins) {
  api::placement_policy modulo;
  for (std::uint32_t id = 0; id < 16; ++id) {
    EXPECT_EQ(modulo.shard_of(id, 0, 3), static_cast<int>(id % 3));
  }
  api::placement_policy pinned = api::pinned_placement({{4, 2}});
  EXPECT_EQ(pinned.shard_of(4, 0, 3), 2);
  // Unpinned ids fall back to modulo.
  EXPECT_EQ(pinned.shard_of(5, 1, 3), 2);
  EXPECT_EQ(pinned.shard_of(9, 2, 3), 0);
}

TEST(placement, range_places_contiguous_declaration_blocks) {
  api::placement_policy range;
  range.kind = api::placement_kind::range;
  // Fixed-width declaration blocks, wrapping over the shards.
  const std::size_t block = api::k_range_block_size;
  for (std::size_t decl = 0; decl < 64; ++decl) {
    EXPECT_EQ(range.shard_of(1000, decl, 8),
              static_cast<int>((decl / block) % 8));
  }
}

// The ISSUE acceptance bar: hash and range spread 64 objects over 8 shards
// within 2x of ideal balance (ideal = 8 objects per shard).
TEST(placement, hash_and_range_spread_within_2x_of_ideal) {
  for (api::placement_kind k :
       {api::placement_kind::hash, api::placement_kind::range}) {
    api::placement_policy p;
    p.kind = k;
    std::vector<int> load(8, 0);
    for (std::uint32_t id = 0; id < 64; ++id) {
      ++load[static_cast<std::size_t>(p.shard_of(id, id, 8))];
    }
    const int ideal = 64 / 8;
    for (int shard_load : load) {
      EXPECT_LE(shard_load, 2 * ideal) << api::placement_name(k);
    }
  }
}

TEST(placement_builder, validates_policies_at_build_time) {
  // shards on a non-sharded backend fail loudly ...
  try {
    api::executor::builder().backend(exec_backend::single).shards(4).build();
    FAIL() << "single + shards(4) must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sharded"), std::string::npos);
  }
  // ... and so do pinned maps naming out-of-range shards.
  try {
    api::executor::builder()
        .backend(exec_backend::sharded)
        .shards(2)
        .placement(api::pinned_placement({{0, 5}}))
        .build();
    FAIL() << "pin to shard 5 of 2 must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 5"), std::string::npos) << what;
    EXPECT_NE(what.find("2 shard"), std::string::npos) << what;
  }
  // A well-formed pinned map builds.
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(2)
                .placement(api::pinned_placement({{0, 1}}))
                .build();
  EXPECT_EQ(ex->placement().kind, api::placement_kind::pinned);
  EXPECT_EQ(ex->shard_of(0), 1);
}

TEST(placement_builder, executor_routes_by_the_selected_policy) {
  for (api::placement_kind k :
       {api::placement_kind::modulo, api::placement_kind::hash,
        api::placement_kind::range}) {
    api::placement_policy p;
    p.kind = k;
    auto ex = api::executor::builder()
                  .backend(exec_backend::sharded)
                  .shards(3)
                  .placement(p)
                  .procs(2)
                  .build();
    for (std::uint32_t id = 0; id < 9; ++id) {
      api::object_handle h = ex->add("counter");
      EXPECT_EQ(ex->shard_of(h.id()),
                p.shard_of(h.id(), static_cast<std::size_t>(id), 3))
          << api::placement_name(k);
    }
  }
}

TEST(placement_builder, hash_routed_workload_runs_and_checks) {
  api::placement_policy p;
  p.kind = api::placement_kind::hash;
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(3)
                .placement(p)
                .procs(3)
                .seed(11)
                .build();
  api::counter c0 = ex->add_counter();
  api::counter c1 = ex->add_counter();
  api::queue q = ex->add_queue();
  for (int pid = 0; pid < 3; ++pid) {
    ex->script(pid, {c0.add(1), q.enq(pid), c1.add(1), q.deq()});
  }
  ex->run();
  hist::check_result check = ex->check();
  EXPECT_TRUE(check.ok) << check.message;
}

// ---- live migration ---------------------------------------------------------

TEST(migration, transplants_state_between_runs) {
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(2)
                .procs(1)
                .build();
  api::counter c = ex->add_counter();  // id 0 -> shard 0 under modulo
  ASSERT_EQ(ex->shard_of(c.id()), 0);
  ex->script(0, {c.add(5), c.read()});
  ex->run();

  ex->migrate(c.id(), 1);
  EXPECT_EQ(ex->shard_of(c.id()), 1);

  ex->script(0, {c.add(2), c.read()});
  ex->run();

  // The final read sees 7: the counter's value crossed the shard move.
  std::vector<hist::value_t> reads;
  for (const hist::event& e : ex->events()) {
    if (e.kind == hist::event_kind::response &&
        e.desc.code == hist::opcode::ctr_read) {
      reads.push_back(e.value);
    }
  }
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0], 5);
  EXPECT_EQ(reads[1], 7);
  hist::check_result check = ex->check();
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(migration, is_a_noop_to_the_current_home_and_validates_arguments) {
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(2)
                .procs(1)
                .build();
  api::counter c = ex->add_counter();
  ex->migrate(c.id(), 0);  // already home — fine
  EXPECT_EQ(ex->shard_of(c.id()), 0);
  EXPECT_THROW(ex->migrate(99, 1), std::invalid_argument);
  EXPECT_THROW(ex->migrate(c.id(), 2), std::invalid_argument);
  EXPECT_THROW(ex->migrate(c.id(), -1), std::invalid_argument);
}

TEST(migration, non_sharded_backends_reject_migration) {
  for (exec_backend be : {exec_backend::single, exec_backend::threads}) {
    auto ex = api::executor::builder().backend(be).procs(1).build();
    api::counter c = ex->add_counter();
    EXPECT_THROW(ex->migrate(c.id(), 0), std::invalid_argument)
        << backend_name(be);
    EXPECT_THROW(ex->rebalance(api::placement_policy{}), std::invalid_argument)
        << backend_name(be);
  }
}

TEST(migration, rebalance_moves_everything_to_the_new_policy) {
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(4)
                .procs(2)
                .build();
  std::vector<api::counter> objs;
  for (int i = 0; i < 8; ++i) objs.push_back(ex->add_counter());
  ex->script(0, {objs[0].add(1), objs[5].add(1)});
  ex->script(1, {objs[2].add(1), objs[7].add(1)});
  ex->run();

  api::placement_policy hash;
  hash.kind = api::placement_kind::hash;
  const int moved = ex->rebalance(hash);
  EXPECT_GT(moved, 0);
  EXPECT_EQ(ex->placement().kind, api::placement_kind::hash);
  for (std::uint32_t id = 0; id < 8; ++id) {
    EXPECT_EQ(ex->shard_of(id),
              hash.shard_of(id, static_cast<std::size_t>(id), 4));
  }
  // New objects route by the adopted policy too.
  api::counter fresh = ex->add_counter();
  EXPECT_EQ(ex->shard_of(fresh.id()), hash.shard_of(fresh.id(), 8, 4));

  ex->script(0, {objs[0].add(1), objs[5].read()});
  ex->run();
  hist::check_result check = ex->check();
  EXPECT_TRUE(check.ok) << check.message;
}

// Sweep the crash position across both rounds: post-migration recovery on
// the destination world re-reports completions under that world's own
// client_seq numbering, which overlaps the source world's — the per-object
// stream assembly must keep (pid, seq) unique across the move or the
// checker's duplicate-completion suppression swallows real ops.
TEST(migration, crash_position_sweep_stays_checkable_across_the_move) {
  for (const char* kind : {"reg", "nrl_reg"}) {
    for (std::uint64_t c = 1; c <= 60; ++c) {
      auto ex = api::executor::builder()
                    .backend(exec_backend::sharded)
                    .shards(2)
                    .procs(2)
                    .seed(3)
                    .fail_policy(core::runtime::fail_policy::retry)
                    .crash_at({c})
                    .build();
      api::reg r(ex->add(kind));
      ex->script(0, {r.write(1), r.read()});
      ex->script(1, {r.write(2), r.read()});
      ex->run();
      ex->migrate(r.id(), 1);
      ex->script(0, {r.write(3), r.read()});
      ex->script(1, {r.read()});
      ex->run();
      hist::check_result check = ex->check();
      EXPECT_TRUE(check.ok)
          << kind << " crash at " << c << ": " << check.message;
    }
  }
}

TEST(migration, history_stays_checkable_under_crashy_rounds) {
  // Crashes in both rounds, migration in between: the carried per-object
  // history plus the destination world's crash events must still check.
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(2)
                .procs(2)
                .seed(5)
                .fail_policy(core::runtime::fail_policy::retry)
                .crash_at({7, 19})
                .build();
  api::reg r = ex->add_reg();
  ex->script(0, {r.write(1), r.read(), r.write(2)});
  ex->script(1, {r.read(), r.write(3)});
  ex->run();
  ex->migrate(r.id(), 1);
  ex->script(0, {r.write(4), r.read()});
  ex->script(1, {r.read()});
  ex->run();
  hist::check_result check = ex->check();
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_GE(check.objects, 1u);
}

// The ISSUE acceptance bar: the state transplant round-trips for every
// registry kind — run a smoke workload, migrate, run it again, and the
// merged history still checks (crash-free, so non-detectable kinds qualify
// too).
TEST(migration, state_transplant_round_trips_for_every_registry_kind) {
  for (const std::string& kind : api::object_registry::global().kinds()) {
    auto ex = api::executor::builder()
                  .backend(exec_backend::sharded)
                  .shards(2)
                  .procs(1)
                  .build();
    api::object_handle h = ex->add_as(0, kind);
    std::vector<hist::op_desc> script = api::smoke_script(h.family(), 0, 0);
    if (h.family() == api::op_family::lock) {
      // The smoke script ends holding; balance it so round two's first
      // try_lock honors the lock's usage contract.
      script.push_back({0, hist::opcode::lock_release, 0, 0, 0});
    }
    ex->script(0, script);
    ex->run();
    ex->migrate(0, 1);
    EXPECT_EQ(ex->shard_of(0), 1) << kind;
    ex->script(0, script);
    ex->run();
    hist::check_result check = ex->check();
    EXPECT_TRUE(check.ok) << kind << ": " << check.message;
  }
}

// ---- driver pool sizing -----------------------------------------------------

TEST(pool_threads, explicit_size_wins_and_one_collapses_to_inline) {
  auto four = api::executor::builder()
                  .backend(exec_backend::sharded)
                  .shards(4)
                  .pool_threads(4)
                  .build();
  EXPECT_EQ(four->pool_workers(), 4);

  // One worker would only add handoff latency over the submitting thread's
  // own loop, so it collapses to inline mode.
  auto one = api::executor::builder()
                 .backend(exec_backend::sharded)
                 .shards(4)
                 .pool_threads(1)
                 .build();
  EXPECT_EQ(one->pool_workers(), 0);

  // More workers than shards is wasted threads; capped.
  auto surplus = api::executor::builder()
                     .backend(exec_backend::sharded)
                     .shards(2)
                     .pool_threads(8)
                     .build();
  EXPECT_EQ(surplus->pool_workers(), 2);
}

TEST(pool_threads, env_override_applies_only_to_auto) {
  ::setenv("DETECT_POOL_THREADS", "1", 1);
  auto autod = api::executor::builder()
                   .backend(exec_backend::sharded)
                   .shards(4)
                   .build();
  EXPECT_EQ(autod->pool_workers(), 0);  // env says 1 → inline

  // An explicit builder value beats the environment.
  auto expl = api::executor::builder()
                  .backend(exec_backend::sharded)
                  .shards(4)
                  .pool_threads(2)
                  .build();
  EXPECT_EQ(expl->pool_workers(), 2);
  ::unsetenv("DETECT_POOL_THREADS");
}

TEST(pool_threads, validates_at_build_time) {
  api::exec_policy negative;
  negative.backend = exec_backend::sharded;
  negative.shards = 2;
  negative.pool_threads = -1;
  EXPECT_THROW(api::make_executor(negative), std::invalid_argument);

  api::exec_policy off_backend;
  off_backend.pool_threads = 2;  // single backend has no driver pool
  EXPECT_THROW(api::make_executor(off_backend), std::invalid_argument);
}

TEST(pool_threads, pool_size_does_not_change_results) {
  auto run_with = [](int pool) {
    auto ex = api::executor::builder()
                  .backend(exec_backend::sharded)
                  .shards(2)
                  .procs(2)
                  .seed(9)
                  .pool_threads(pool)
                  .build();
    api::counter c0 = ex->add_counter();
    api::counter c1 = ex->add_counter();
    ex->script(0, {c0.add(1), c1.add(10), c0.add(2)});
    ex->script(1, {c1.add(20), c0.add(3)});
    ex->run();
    std::string text;
    for (const hist::event& e : ex->events()) text += e.to_string() + "\n";
    return text;
  };
  // Worlds are deterministic in isolation, so inline vs parallel drivers
  // must merge to the identical log.
  EXPECT_EQ(run_with(1), run_with(2));
}

// ---- persistent-cell footprint ----------------------------------------------

TEST(run_report, carries_the_nvm_footprint) {
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(2)
                .procs(2)
                .build();
  api::counter c0 = ex->add_counter();
  api::counter c1 = ex->add_counter();
  ex->script(0, {c0.add(1)});
  ex->script(1, {c1.add(1)});
  sim::run_report rep = ex->run();
  EXPECT_GT(rep.nvm_cells, 0u);
  EXPECT_GT(rep.nvm_bytes, 0u);
  // A cell's persisted image is at least one byte; bytes dominate cells.
  EXPECT_GE(rep.nvm_bytes, rep.nvm_cells);
}

TEST(run_report, threads_backend_reports_the_arena_footprint) {
  auto ex = api::executor::builder()
                .backend(exec_backend::threads)
                .procs(2)
                .build();
  api::counter c = ex->add_counter();
  ex->script(0, {c.add(1)});
  ex->script(1, {c.add(1)});
  sim::run_report rep = ex->run();
  EXPECT_GT(rep.nvm_cells, 0u);
  EXPECT_GT(rep.nvm_bytes, 0u);
}

// ---- current assignment -----------------------------------------------------

TEST(current_assignment, tracks_migrations) {
  auto ex = api::executor::builder()
                .backend(exec_backend::sharded)
                .shards(3)
                .procs(1)
                .build();
  api::counter c0 = ex->add_counter();  // id 0 → shard 0
  api::counter c1 = ex->add_counter();  // id 1 → shard 1
  ex->script(0, {c0.add(1), c1.add(1)});
  ex->run();
  ex->migrate(c0.id(), 2);

  api::placement_policy assign = ex->current_assignment();
  ASSERT_EQ(assign.kind, api::placement_kind::pinned);
  EXPECT_EQ(assign.pins.at(c0.id()), 2);
  EXPECT_EQ(assign.pins.at(c1.id()), 1);

  // Ground truth is reusable: a fresh executor under the returned pins
  // routes the same ids to the same shards.
  auto fresh = api::executor::builder()
                   .backend(exec_backend::sharded)
                   .shards(3)
                   .placement(assign)
                   .build();
  EXPECT_EQ(fresh->shard_of(c0.id()), 2);
  EXPECT_EQ(fresh->shard_of(c1.id()), 1);
}

// ---- load_ratio -------------------------------------------------------------

TEST(load_ratio, measures_imbalance_against_the_ideal_spread) {
  EXPECT_DOUBLE_EQ(api::load_ratio({}), 0.0);
  EXPECT_DOUBLE_EQ(api::load_ratio({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(api::load_ratio({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(api::load_ratio({8, 0}), 2.0);       // all on one of two
  EXPECT_DOUBLE_EQ(api::load_ratio({12, 0, 0, 0}), 4.0);
  EXPECT_DOUBLE_EQ(api::load_ratio({6, 2}), 1.5);
}

// ---- crash-plan reseeding ---------------------------------------------------

TEST(reseed_crashes, varies_the_crash_points_between_rounds) {
  auto build = [] {
    return api::executor::builder()
        .backend(exec_backend::sharded)
        .shards(1)
        .procs(2)
        .fail_policy(core::runtime::fail_policy::retry)
        .crash_random(3, 0.05, 2)
        .build();
  };
  // Unreseeded rounds rebuild the same plan: identical crash draw positions.
  auto fixed = build();
  auto reseeded = build();
  api::counter cf = fixed->add_counter();
  api::counter cr = reseeded->add_counter();
  std::uint64_t fixed_crashes = 0;
  std::uint64_t reseeded_crashes = 0;
  for (int round = 0; round < 6; ++round) {
    fixed->script(0, {cf.add(1), cf.add(1)});
    fixed->script(1, {cf.add(1)});
    fixed_crashes += fixed->run().crashes;

    reseeded->reseed_crashes(1000 + static_cast<std::uint64_t>(round));
    reseeded->script(0, {cr.add(1), cr.add(1)});
    reseeded->script(1, {cr.add(1)});
    reseeded_crashes += reseeded->run().crashes;
  }
  // Both histories must still check out; the reseeded one stays correct
  // under varied crash points (the actual counts are seed-dependent).
  EXPECT_TRUE(fixed->check().ok);
  EXPECT_TRUE(reseeded->check().ok);
  (void)fixed_crashes;
  (void)reseeded_crashes;
}

}  // namespace
}  // namespace detect
