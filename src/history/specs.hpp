// Sequential specifications of every object type in the suite.
//
// A spec is a deterministic state machine: `apply` consumes an abstract
// operation and returns its response. Specs serve three consumers:
//   * the linearizability checker (candidate orders are validated against
//     the spec),
//   * the doubly-perturbing certificate machinery of §5 / appendix A
//     (histories are replayed on specs to compare responses),
//   * tests, as ground truth for sequential executions.
//
// `serialize` must be injective on states: the checker memoizes on it, and a
// collision would unsoundly prune the search.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "history/event.hpp"

namespace detect::hist {

class spec {
 public:
  virtual ~spec() = default;
  virtual std::unique_ptr<spec> clone() const = 0;
  /// Apply `op`, mutate state, return the response.
  virtual value_t apply(const op_desc& op) = 0;
  /// Injective encoding of the current state.
  virtual std::string serialize() const = 0;
};

/// Read/write register (§3), plus swap (fetch-and-store). Responses:
/// read → value, write → ack, swap → old value.
class register_spec final : public spec {
 public:
  explicit register_spec(value_t init = 0) : value_(init) {}
  std::unique_ptr<spec> clone() const override {
    return std::make_unique<register_spec>(*this);
  }
  value_t apply(const op_desc& op) override;
  std::string serialize() const override { return std::to_string(value_); }

 private:
  value_t value_;
};

/// Try-lock / release pair. Operations carry the caller's pid in `a` (specs
/// are process-agnostic otherwise). lock_try → true iff acquired;
/// lock_release → true iff the caller held the lock.
class lock_spec final : public spec {
 public:
  std::unique_ptr<spec> clone() const override {
    return std::make_unique<lock_spec>(*this);
  }
  value_t apply(const op_desc& op) override;
  std::string serialize() const override { return std::to_string(owner_); }

 private:
  value_t owner_ = -1;  // -1 = free
};

/// CAS object (§4). Responses: cas → true/false, read → value.
class cas_spec final : public spec {
 public:
  explicit cas_spec(value_t init = 0) : value_(init) {}
  std::unique_ptr<spec> clone() const override {
    return std::make_unique<cas_spec>(*this);
  }
  value_t apply(const op_desc& op) override;
  std::string serialize() const override { return std::to_string(value_); }

 private:
  value_t value_;
};

/// Counter / fetch-and-add (appendix Lemmas 5, 7). `ctr_add` returns the old
/// value. An optional cap models the bounded counter of Lemma 5's corollary.
class counter_spec final : public spec {
 public:
  explicit counter_spec(value_t init = 0, value_t cap = -1)
      : value_(init), cap_(cap) {}
  std::unique_ptr<spec> clone() const override {
    return std::make_unique<counter_spec>(*this);
  }
  value_t apply(const op_desc& op) override;
  std::string serialize() const override { return std::to_string(value_); }

 private:
  value_t value_;
  value_t cap_;  // -1 = unbounded
};

/// Resettable test-and-set. `tas_set` returns the previous bit.
class tas_spec final : public spec {
 public:
  std::unique_ptr<spec> clone() const override {
    return std::make_unique<tas_spec>(*this);
  }
  value_t apply(const op_desc& op) override;
  std::string serialize() const override { return std::to_string(bit_); }

 private:
  value_t bit_ = 0;
};

/// FIFO queue (appendix Lemma 8). deq on empty returns k_empty.
class queue_spec final : public spec {
 public:
  std::unique_ptr<spec> clone() const override {
    return std::make_unique<queue_spec>(*this);
  }
  value_t apply(const op_desc& op) override;
  std::string serialize() const override;

 private:
  std::deque<value_t> items_;
};

/// LIFO stack (doubly-perturbing like the queue of Lemma 8). pop on empty
/// returns k_empty.
class stack_spec final : public spec {
 public:
  std::unique_ptr<spec> clone() const override {
    return std::make_unique<stack_spec>(*this);
  }
  value_t apply(const op_desc& op) override;
  std::string serialize() const override;

 private:
  std::vector<value_t> items_;
};

/// Max register (§5, Algorithm 3). read returns the largest value written.
class max_register_spec final : public spec {
 public:
  explicit max_register_spec(value_t init = 0) : max_(init) {}
  std::unique_ptr<spec> clone() const override {
    return std::make_unique<max_register_spec>(*this);
  }
  value_t apply(const op_desc& op) override;
  std::string serialize() const override { return std::to_string(max_); }

 private:
  value_t max_;
};

/// Product spec: routes operations to per-object sub-specs by `desc.object`.
/// Linearizability is compositional, but mixed-object histories are checked
/// directly against the product when convenient.
class multi_spec final : public spec {
 public:
  multi_spec() = default;
  multi_spec(const multi_spec& other);
  multi_spec& operator=(const multi_spec&) = delete;

  void add_object(std::uint32_t id, std::unique_ptr<spec> s);
  std::unique_ptr<spec> clone() const override {
    return std::make_unique<multi_spec>(*this);
  }
  value_t apply(const op_desc& op) override;
  std::string serialize() const override;

 private:
  std::vector<std::pair<std::uint32_t, std::unique_ptr<spec>>> subs_;
};

/// Construct the natural spec for an opcode family; helper for tests.
std::unique_ptr<spec> make_spec_for(opcode family, value_t init = 0);

}  // namespace detect::hist
