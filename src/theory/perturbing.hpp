// Doubly-perturbing objects (§5, Definition 3) — mechanical certificates.
//
// An operation Op (by p) is *perturbing w.r.t. Op′* (by another process)
// after a sequential history H if Op′ returns different responses in
// H ◦ Op ◦ Op′ and in H ◦ Op′. O is *doubly-perturbing* when some Opp is
// perturbing after some H1, and H1 ◦ Opp ◦ Op′ has a p-free extension H2
// after which (a second instance of) Opp is perturbing again.
//
// `check_witness` verifies a concrete witness package against a sequential
// spec, mechanizing the appendix's Lemmas 3 and 5-8. `search_witness` does a
// bounded exhaustive search for any witness — used to support Lemma 4's
// negative claim for the max register within a finite operation universe.
// `count_successive_perturbs` quantifies the "bounded counter is doubly-
// perturbing but not perturbable" remark: how many times re-invoking the same
// operation keeps changing an observer's response.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "history/specs.hpp"

namespace detect::theory {

/// An abstract operation instance in a sequential history: who runs it and
/// what it is. Object routing is irrelevant here (single-object histories).
struct abstract_op {
  int pid = 0;
  hist::opcode code = hist::opcode::nop;
  hist::value_t a = 0;
  hist::value_t b = 0;

  hist::op_desc to_desc() const {
    hist::op_desc d;
    d.code = code;
    d.a = a;
    d.b = b;
    return d;
  }
  std::string to_string() const;
};

/// Response of `probe` executed right after history `h` on a fresh clone of
/// `init`.
hist::value_t response_after(const hist::spec& init,
                             const std::vector<abstract_op>& h,
                             const abstract_op& probe);

/// Definition: op (by op.pid) is perturbing w.r.t. probe (by probe.pid ≠
/// op.pid) after h.
bool is_perturbing_after(const hist::spec& init,
                         const std::vector<abstract_op>& h,
                         const abstract_op& op, const abstract_op& probe);

struct dp_witness {
  std::vector<abstract_op> h1;
  abstract_op opp;                   // the witnessing operation by p
  abstract_op op1;                   // Op′ perturbed after H1
  std::vector<abstract_op> extension;  // p-free extension forming H2
  abstract_op op2;                   // operation perturbed after H2

  std::string to_string() const;
};

struct dp_check {
  bool cond1 = false;          // Opp perturbing w.r.t. Op′ after H1
  bool cond2 = false;          // Opp perturbing w.r.t. Op2 after H2
  bool extension_p_free = false;
  bool ok = false;
  std::string detail;
};

dp_check check_witness(const hist::spec& init, const dp_witness& w);

struct dp_search_result {
  bool found = false;
  dp_witness witness;
  std::uint64_t explored = 0;
};

/// Bounded exhaustive search over histories drawn from `universe`
/// (h1 length ≤ max_h1, extension length ≤ max_ext). Every op/probe choice
/// also comes from `universe`.
dp_search_result search_witness(const hist::spec& init,
                                const std::vector<abstract_op>& universe,
                                int max_h1, int max_ext);

/// Apply `h`, then repeatedly run `op` (fresh instances) and measure how many
/// applications change `probe`'s would-be response, up to `limit` rounds.
/// Unbounded counter: == limit; bounded counter with cap c: c − current;
/// max register writing v: at most 1.
int count_successive_perturbs(const hist::spec& init,
                              const std::vector<abstract_op>& h,
                              const abstract_op& op, const abstract_op& probe,
                              int limit);

/// Ready-made witnesses for the appendix lemmas.
dp_witness register_witness();   // Lemma 3
dp_witness counter_witness();    // Lemma 5
dp_witness cas_witness();        // Lemma 6
dp_witness faa_witness();        // Lemma 7
dp_witness queue_witness();      // Lemma 8

}  // namespace detect::theory
