// The fuzz engine itself: generator determinism (single- and multi-object),
// registry-wide qualification under generated workloads, dump/parse
// round-tripping across format versions, shrinker validity (shrunk scenarios
// still fail; object-level passes shrink multi-object failures), coverage
// bucketing + steered campaigns, and differential detection of a
// deliberately lying implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fuzz/fuzz.hpp"

namespace {

using namespace detect;

// Registry kinds as of static init — later tests register extra (broken)
// kinds, and campaign tests must not pick those up.
const std::vector<std::string> g_builtin_kinds =
    api::object_registry::global().kinds();

api::scripted_scenario single_object(const std::string& kind) {
  api::scripted_scenario s;
  s.objects.push_back({0, kind, {}});
  return s;
}

// ---- generator --------------------------------------------------------------

TEST(scenario_gen, same_seed_same_scenario) {
  for (const char* kind : {"reg", "cas", "queue", "lock"}) {
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
      api::scripted_scenario a = fuzz::generate(seed, kind);
      api::scripted_scenario b = fuzz::generate(seed, kind);
      EXPECT_EQ(api::dump(a), api::dump(b)) << kind << " seed " << seed;
    }
  }
}

TEST(scenario_gen, different_seeds_differ) {
  EXPECT_NE(api::dump(fuzz::generate(1, "reg")),
            api::dump(fuzz::generate(2, "reg")));
  EXPECT_NE(api::dump(fuzz::generate(1, "queue")),
            api::dump(fuzz::generate(3, "queue")));
}

TEST(scenario_gen, iteration_seeds_are_stable_and_spread) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::uint64_t s = fuzz::iteration_seed(7, i);
    EXPECT_EQ(s, fuzz::iteration_seed(7, i));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 64u) << "iteration seeds must not collide";
}

TEST(scenario_gen, respects_config_bounds) {
  fuzz::gen_config cfg;
  cfg.min_procs = 2;
  cfg.max_procs = 4;
  cfg.min_ops = 3;
  cfg.max_ops = 5;
  cfg.max_crashes = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "reg", cfg);
    EXPECT_GE(s.nprocs, 2);
    EXPECT_LE(s.nprocs, 4);
    EXPECT_EQ(static_cast<int>(s.scripts.size()), s.nprocs);
    for (const auto& [pid, ops] : s.scripts) {
      EXPECT_GE(ops.size(), 3u);
      EXPECT_LE(ops.size(), 5u);
    }
    EXPECT_LE(s.crash_steps.size(), 2u);
    EXPECT_TRUE(std::is_sorted(s.crash_steps.begin(), s.crash_steps.end()));
  }
}

TEST(scenario_gen, ops_come_from_the_target_objects_family) {
  fuzz::gen_config cfg;
  cfg.object_kind_pool = g_builtin_kinds;  // multi-object on
  for (const std::string& kind : g_builtin_kinds) {
    api::scripted_scenario s = fuzz::generate(99, kind, cfg);
    EXPECT_EQ(s.objects.front().kind, kind);
    for (const auto& [pid, ops] : s.scripts) {
      for (const hist::op_desc& d : ops) {
        const api::scenario_object* target = s.find_object(d.object);
        ASSERT_NE(target, nullptr)
            << kind << ": op targets undeclared object " << d.object;
        const api::kind_info& info =
            api::object_registry::global().at(target->kind);
        const std::vector<hist::opcode>& alphabet =
            api::family_opcodes(info.family);
        EXPECT_NE(std::find(alphabet.begin(), alphabet.end(), d.code),
                  alphabet.end())
            << kind << ": opcode " << hist::opcode_name(d.code)
            << " outside the family of its target " << target->kind;
      }
    }
  }
}

TEST(scenario_gen, non_detectable_kinds_get_no_crashes) {
  for (const char* kind : {"plain_reg", "stripped_cas", "stripped_queue"}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      api::scripted_scenario s = fuzz::generate(seed, kind);
      EXPECT_TRUE(s.crash_steps.empty()) << kind;
      EXPECT_EQ(s.policy, core::runtime::fail_policy::skip) << kind;
    }
  }
}

TEST(scenario_gen, shard_knob_is_bounded_and_deterministic) {
  fuzz::gen_config cfg;
  cfg.min_shards = 2;
  cfg.max_shards = 5;
  cfg.allow_sharded_backend = false;  // pin the backend for this test
  bool saw_above_min = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "reg", cfg);
    EXPECT_GE(s.shards, 2);
    EXPECT_LE(s.shards, 5);
    EXPECT_EQ(s.backend, api::exec_backend::single);
    EXPECT_EQ(s.shards, fuzz::generate(seed, "reg", cfg).shards);
    saw_above_min = saw_above_min || s.shards > 2;
  }
  EXPECT_TRUE(saw_above_min) << "the knob never left its minimum";

  // max_shards <= 1 disables the knob entirely.
  fuzz::gen_config off;
  off.max_shards = 1;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(fuzz::generate(seed, "reg", off).shards, 1);
  }
}

TEST(scenario_gen, sharded_backend_draw_requires_shards) {
  fuzz::gen_config cfg;
  cfg.min_shards = 2;
  cfg.max_shards = 4;
  bool saw_sharded = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "counter", cfg);
    if (s.backend == api::exec_backend::sharded) {
      saw_sharded = true;
      EXPECT_GE(s.shards, 2);
    }
  }
  EXPECT_TRUE(saw_sharded) << "no seed drew the sharded backend";
}

// The multi-object half of the tentpole: K-object scenarios declare distinct
// contiguous ids, draw extra kinds from the pool, and stay deterministic.
TEST(scenario_gen, multi_object_scenarios_are_bounded_and_deterministic) {
  fuzz::gen_config cfg;
  cfg.min_objects = 2;
  cfg.max_objects = 4;
  cfg.object_kind_pool = {"reg", "cas", "queue", "counter"};
  bool saw_multi_kind = false;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "reg", cfg);
    ASSERT_GE(s.objects.size(), 2u);
    ASSERT_LE(s.objects.size(), 4u);
    std::set<std::uint32_t> ids;
    for (const api::scenario_object& o : s.objects) {
      EXPECT_TRUE(ids.insert(o.id).second) << "duplicate id " << o.id;
    }
    EXPECT_EQ(s.objects.front().kind, "reg");
    saw_multi_kind =
        saw_multi_kind || s.objects.back().kind != s.objects.front().kind;
    EXPECT_EQ(api::dump(s), api::dump(fuzz::generate(seed, "reg", cfg)));
  }
  EXPECT_TRUE(saw_multi_kind) << "extras never drew a different kind";
}

TEST(scenario_gen, one_non_detectable_object_disarms_the_crash_plan) {
  fuzz::gen_config cfg;
  cfg.min_objects = 3;
  cfg.max_objects = 3;
  cfg.object_kind_pool = {"plain_reg"};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "reg", cfg);
    EXPECT_TRUE(s.crash_steps.empty()) << api::dump(s);
    EXPECT_EQ(s.policy, core::runtime::fail_policy::skip);
  }
}

TEST(scenario_gen, lock_contract_holds_per_process_and_object) {
  fuzz::gen_config cfg;
  cfg.min_objects = 2;
  cfg.max_objects = 3;
  cfg.min_ops = 6;
  cfg.max_ops = 10;
  cfg.object_kind_pool = {"lock", "reg"};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "lock", cfg);
    if (!s.crash_steps.empty()) {
      EXPECT_EQ(s.policy, core::runtime::fail_policy::retry) << api::dump(s);
    }
    for (const auto& [pid, ops] : s.scripts) {
      std::map<std::uint32_t, bool> may_hold;
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::lock_try) {
          EXPECT_FALSE(may_hold[d.object])
              << "try_lock while possibly holding\n"
              << api::dump(s);
          may_hold[d.object] = true;
        } else if (d.code == hist::opcode::lock_release) {
          may_hold[d.object] = false;
        }
      }
    }
  }
}

// ---- mutation engine --------------------------------------------------------

TEST(scenario_gen, mutate_is_deterministic_and_contract_preserving) {
  fuzz::gen_config cfg;
  cfg.object_kind_pool = {"reg", "cas", "lock", "queue"};
  cfg.max_objects = 4;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    api::scripted_scenario base = fuzz::generate(seed, "cas", cfg);
    std::uint64_t rng_a = seed * 977 + 1;
    std::uint64_t rng_b = rng_a;
    api::scripted_scenario a = fuzz::mutate(base, rng_a, cfg);
    api::scripted_scenario b = fuzz::mutate(base, rng_b, cfg);
    ASSERT_EQ(api::dump(a), api::dump(b)) << "mutation must be deterministic";
    // Mutants stay replayable: every op targets a declared object and the
    // generator's usage contracts still hold.
    ASSERT_FALSE(a.objects.empty());
    for (const auto& [pid, ops] : a.scripts) {
      std::map<std::uint32_t, bool> may_hold;
      for (const hist::op_desc& d : ops) {
        ASSERT_NE(a.find_object(d.object), nullptr) << api::dump(a);
        if (d.code == hist::opcode::cas) {
          EXPECT_NE(d.a, d.b);
        }
        if (d.code == hist::opcode::lock_try) {
          EXPECT_FALSE(may_hold[d.object]) << api::dump(a);
          may_hold[d.object] = true;
        } else if (d.code == hist::opcode::lock_release) {
          may_hold[d.object] = false;
        }
      }
    }
    std::string failure = fuzz::verify_scenario(a);
    EXPECT_TRUE(failure.empty()) << failure << "\n" << api::dump(a);
    if (::testing::Test::HasFailure()) return;
  }
}

// ---- registry-wide qualification under generated workloads ------------------

class generated_qualification : public ::testing::TestWithParam<std::string> {};

TEST_P(generated_qualification, generated_scenarios_pass_the_oracle) {
  const std::string kind = GetParam();
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    api::scripted_scenario s = fuzz::generate(seed, kind);
    std::string failure = fuzz::verify_scenario(s);
    EXPECT_TRUE(failure.empty())
        << kind << " seed " << seed << ":\n"
        << failure << "\n"
        << api::dump(s);
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(all_kinds, generated_qualification,
                         ::testing::ValuesIn(g_builtin_kinds),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// Multi-object flavor of the qualification: mixed-kind scenarios (which
// exercise cross-shard routing and the merged-log path whenever the shard
// knob or backend draw fires) pass the full oracle.
TEST(generated_qualification_multi, mixed_kind_scenarios_pass_the_oracle) {
  fuzz::gen_config cfg;
  cfg.min_objects = 2;
  cfg.max_objects = 4;
  cfg.object_kind_pool = g_builtin_kinds;
  cfg.max_procs = 2;
  cfg.max_ops = 5;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const std::string& kind = g_builtin_kinds[seed % g_builtin_kinds.size()];
    api::scripted_scenario s = fuzz::generate(seed, kind, cfg);
    std::string failure = fuzz::verify_scenario(s);
    ASSERT_TRUE(failure.empty())
        << kind << " seed " << seed << ":\n"
        << failure << "\n"
        << api::dump(s);
  }
}

// ---- differ -----------------------------------------------------------------

// The ISSUE-3 acceptance bar: for >= 1000 generated seeds, single and
// sharded replays of the same scenario produce identical checker verdicts
// (and, single-object, identical response streams), verified via
// fuzz::diff_sharded. Kinds rotate over every opcode family with a
// detectable core implementation.
TEST(differ, sharded_equivalence_holds_for_1000_seeds) {
  const std::vector<std::string> kinds = {"reg",   "cas",   "counter",
                                          "swap",  "tas",   "queue",
                                          "stack", "max_reg", "lock"};
  fuzz::gen_config cfg;
  cfg.max_procs = 2;
  cfg.max_ops = 5;
  cfg.max_crashes = 2;
  cfg.min_shards = 2;  // every scenario carries a sharded diff
  cfg.max_shards = 4;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t seed =
        fuzz::iteration_seed(0x54a2d, static_cast<std::uint64_t>(i));
    const std::string& kind = kinds[static_cast<std::size_t>(i) % kinds.size()];
    api::scripted_scenario s = fuzz::generate(seed, kind, cfg);
    fuzz::diff_report d = fuzz::diff_sharded(s, s.shards);
    ASSERT_TRUE(d.ok) << "seed " << seed << ":\n"
                      << d.message << "\n"
                      << api::dump(s);
  }
}

// Genuinely cross-shard histories: multi-object scenarios whose objects
// route to different shards must still pass the equivalence oracle (verdict
// equality — the merged-log and per-object decomposition paths).
TEST(differ, sharded_equivalence_holds_on_multi_object_scenarios) {
  fuzz::gen_config cfg;
  cfg.min_objects = 2;
  cfg.max_objects = 4;
  cfg.object_kind_pool = {"reg", "cas", "counter", "queue", "stack"};
  cfg.max_procs = 2;
  cfg.max_ops = 5;
  cfg.min_shards = 2;
  cfg.max_shards = 4;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t seed =
        fuzz::iteration_seed(0xbeefcafe, static_cast<std::uint64_t>(i));
    api::scripted_scenario s = fuzz::generate(
        seed, cfg.object_kind_pool[static_cast<std::size_t>(i) % 5], cfg);
    fuzz::diff_report d = fuzz::diff_sharded(s, s.shards);
    ASSERT_TRUE(d.ok) << "seed " << seed << ":\n"
                      << d.message << "\n"
                      << api::dump(s);
  }
}

// Fuzzer-found regression (campaign seed 55, iteration 55): a crash inside
// the announcement window leaves the invoke unlogged, and the nrl adapter's
// re-invoking recovery executes the op in an EARLY recovery attempt that is
// itself crashed before reporting — only a later attempt logs the verdict.
// build_records must anchor the synthesized interval at the first
// recover_begin of that op, not the last, or it fabricates a real-time edge
// and falsely rejects the history.
TEST(differ, recovered_op_interval_anchors_at_first_recovery_attempt) {
  api::scripted_scenario s = api::parse_scenario(
      "kind nrl_reg\n"
      "params 0 64\n"
      "procs 3\n"
      "policy skip\n"
      "sched_seed 14913590177380136610\n"
      "crash_steps 13 87 129\n"
      "script 0 reg_write:0:0 reg_read:0:0\n"
      "script 1 reg_write:4:0\n"
      "script 2 reg_read:0:0 reg_write:0:0 reg_read:0:0\n");
  std::string failure = fuzz::check_scenario(s);
  EXPECT_TRUE(failure.empty()) << failure;
}

// The shrinker legally empties per-process scripts; an empty script still
// submits a client task on the single backend, so the sharded replay must
// schedule one too (on shard 0) or the worlds' task sets — and with them
// seeded schedules and shard-local crash alignment — diverge.
TEST(differ, sharded_equivalence_survives_empty_scripts) {
  api::scripted_scenario s = single_object("reg");
  s.nprocs = 3;
  s.sched_seed = 1234;
  s.crash_steps = {7, 19};
  s.policy = core::runtime::fail_policy::retry;
  s.shards = 3;
  s.scripts[0] = {{0, hist::opcode::reg_write, 5, 0, 0},
                  {0, hist::opcode::reg_read, 0, 0, 0}};
  s.scripts[1] = {};  // emptied by a shrink step
  s.scripts[2] = {{0, hist::opcode::reg_read, 0, 0, 0}};
  fuzz::diff_report d = fuzz::diff_sharded(s, s.shards);
  EXPECT_TRUE(d.ok) << d.message;
}

TEST(differ, core_kinds_agree_with_their_variants) {
  for (const char* kind : {"reg", "cas", "counter", "queue"}) {
    api::scripted_scenario s = fuzz::generate(5, kind);
    for (const std::string& variant : fuzz::variants_of(kind)) {
      fuzz::diff_report d = fuzz::diff_against(s, variant);
      EXPECT_TRUE(d.ok) << kind << " vs " << variant << ":\n" << d.message;
    }
  }
}

// Per-object substitution: in a two-object scenario, each object can be
// swapped for a variant of its own kind independently.
TEST(differ, substitutes_variants_per_object) {
  api::scripted_scenario s;
  s.objects.push_back({0, "reg", {}});
  s.objects.push_back({1, "cas", {}});
  s.nprocs = 1;
  s.scripts[0] = {{0, hist::opcode::reg_write, 3, 0, 0},
                  {1, hist::opcode::cas, 0, 1, 0},
                  {0, hist::opcode::reg_read, 0, 0, 0},
                  {1, hist::opcode::cas_read, 0, 0, 0}};
  EXPECT_TRUE(fuzz::diff_against(s, 0u, "attiya_reg").ok);
  EXPECT_TRUE(fuzz::diff_against(s, 1u, "bendavid_cas").ok);
  EXPECT_THROW(fuzz::diff_against(s, 0u, "bendavid_cas"),
               std::invalid_argument);
  EXPECT_THROW(fuzz::diff_against(s, 7u, "attiya_reg"), std::invalid_argument);
}

TEST(differ, family_mismatch_throws) {
  api::scripted_scenario s = fuzz::generate(5, "reg");
  EXPECT_THROW(fuzz::diff_against(s, "queue"), std::invalid_argument);
}

TEST(differ, kinds_without_variants_have_none) {
  EXPECT_TRUE(fuzz::variants_of("max_reg").empty());
  EXPECT_TRUE(fuzz::variants_of("plain_reg").empty());
}

// A counter whose read responses are off by one — the differential target:
// crash-free single-process replays against the real counter must diverge.
struct lying_counter : core::detectable_object {
  api::created_object inner;

  explicit lying_counter(api::created_object in) : inner(std::move(in)) {}

  hist::value_t invoke(int pid, const hist::op_desc& op) override {
    hist::value_t v = inner.primary().invoke(pid, op);
    return op.code == hist::opcode::ctr_read ? v + 1 : v;
  }
  core::recovery_result recover(int pid, const hist::op_desc& op) override {
    return inner.primary().recover(pid, op);
  }
  bool wants_aux_reset() const override {
    return inner.primary().wants_aux_reset();
  }
};

void register_lying_counter_once() {
  auto& reg = api::object_registry::global();
  if (reg.contains("test_lying_counter")) return;
  api::kind_info info;
  info.name = "test_lying_counter";
  info.family = api::op_family::counter;
  info.detectable = false;
  info.make = [](const api::object_env& e, const api::object_params& p) {
    api::created_object c;
    c.owned.push_back(std::make_unique<lying_counter>(
        api::object_registry::global().create("counter", e, p)));
    return c;
  };
  info.make_spec = [](const api::object_params& p) {
    return api::object_registry::global().make_spec("counter", p);
  };
  reg.add(std::move(info));
}

api::scripted_scenario counter_scenario(
    std::vector<std::vector<hist::opcode>> per_proc_ops) {
  api::scripted_scenario s = single_object("counter");
  s.nprocs = static_cast<int>(per_proc_ops.size());
  int pid = 0;
  for (const auto& codes : per_proc_ops) {
    std::vector<hist::op_desc> ops;
    for (hist::opcode c : codes) {
      hist::op_desc d;
      d.code = c;
      if (c == hist::opcode::ctr_add) d.a = 1;
      ops.push_back(d);
    }
    s.scripts[pid++] = std::move(ops);
  }
  return s;
}

TEST(differ, catches_a_lying_implementation) {
  register_lying_counter_once();
  using hist::opcode;
  api::scripted_scenario s =
      counter_scenario({{opcode::ctr_add, opcode::ctr_read}});
  fuzz::diff_report d = fuzz::diff_against(s, "test_lying_counter");
  EXPECT_FALSE(d.ok);
  EXPECT_NE(d.message.find("test_lying_counter"), std::string::npos)
      << d.message;
}

// The lying object is caught even when it is NOT the primary: per-object
// variant substitution reaches every declared object.
TEST(differ, catches_a_lying_secondary_object) {
  register_lying_counter_once();
  api::scripted_scenario s;
  s.objects.push_back({0, "reg", {}});
  s.objects.push_back({1, "counter", {}});
  s.nprocs = 1;
  s.scripts[0] = {{0, hist::opcode::reg_write, 2, 0, 0},
                  {1, hist::opcode::ctr_add, 1, 0, 0},
                  {1, hist::opcode::ctr_read, 0, 0, 0}};
  fuzz::diff_report d = fuzz::diff_against(s, 1u, "test_lying_counter");
  EXPECT_FALSE(d.ok);
  EXPECT_NE(d.message.find("test_lying_counter"), std::string::npos)
      << d.message;
}

// ---- coverage ---------------------------------------------------------------

TEST(coverage, bucket_signature_reflects_scenario_and_outcome) {
  api::scripted_scenario s;
  s.objects.push_back({0, "reg", {}});
  s.objects.push_back({1, "cas", {}});
  s.nprocs = 2;
  s.shards = 2;
  s.scripts[0] = {{0, hist::opcode::reg_write, 1, 0, 0},
                  {1, hist::opcode::cas, 0, 1, 0}};
  s.scripts[1] = {{0, hist::opcode::reg_read, 0, 0, 0}};
  api::scripted_outcome out = api::replay(s);
  fuzz::bucket_signature b = fuzz::bucket_of(s, out);
  EXPECT_EQ(b.kinds, "cas+reg");
  EXPECT_EQ(b.backend, "single");
  EXPECT_EQ(b.shards, 2);
  EXPECT_EQ(b.crash_phase, 0);
  EXPECT_TRUE(b.decomposed) << "two objects -> decomposition taken";
  EXPECT_NE(b.key().find("kinds=cas+reg"), std::string::npos);
  EXPECT_NE(b.key().find("decomp=1"), std::string::npos);
  // The scenario key is a strict prefix of the full key.
  EXPECT_EQ(b.key().rfind(b.scenario_key(), 0), 0u);

  // Crash-phase and recovery bits come from the outcome.
  api::scripted_scenario crashy = single_object("reg");
  crashy.nprocs = 2;
  crashy.crash_steps = {5};
  crashy.scripts[0] = {{0, hist::opcode::reg_write, 1, 0, 0},
                       {0, hist::opcode::reg_write, 2, 0, 0}};
  crashy.scripts[1] = {{0, hist::opcode::reg_read, 0, 0, 0}};
  api::scripted_outcome crashed = api::replay(crashy);
  fuzz::bucket_signature cb = fuzz::bucket_of(crashy, crashed);
  EXPECT_EQ(cb.crash_phase, 1);
  EXPECT_FALSE(cb.decomposed);
}

TEST(coverage, map_counts_distinct_buckets_and_timeline) {
  fuzz::coverage_map cov;
  fuzz::bucket_signature a;
  a.kinds = "reg";
  fuzz::bucket_signature b;
  b.kinds = "cas";
  EXPECT_TRUE(cov.record(a));
  EXPECT_FALSE(cov.record(a)) << "same bucket is not novel twice";
  EXPECT_TRUE(cov.record(b));
  EXPECT_EQ(cov.distinct(), 2u);
  EXPECT_EQ(cov.executed(), 3u);
  ASSERT_EQ(cov.timeline().size(), 2u);
  EXPECT_EQ(cov.timeline()[0], (std::pair<std::uint64_t, std::size_t>{1, 1}));
  EXPECT_EQ(cov.timeline()[1], (std::pair<std::uint64_t, std::size_t>{3, 2}));
  EXPECT_TRUE(cov.seen_scenario(a.scenario_key()));
}

// The pinned 1000-seed multi-object battery: (a) K-object generation is
// deterministic, (b) campaign coverage is monotonically non-decreasing,
// (c) the generated stream reaches every registered kind and both the
// single and sharded backends.
TEST(coverage, pinned_multi_object_campaign_reaches_kinds_and_backends) {
  fuzz::gen_config cfg;
  cfg.max_objects = 4;
  cfg.object_kind_pool = g_builtin_kinds;
  cfg.max_procs = 2;
  cfg.max_ops = 5;

  std::set<std::string> kinds_reached;
  std::set<std::string> backends_reached;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t seed = fuzz::iteration_seed(0x5eed, i);
    const std::string& kind = g_builtin_kinds[i % g_builtin_kinds.size()];
    api::scripted_scenario s = fuzz::generate(seed, kind, cfg);
    // (a) determinism
    ASSERT_EQ(api::dump(s), api::dump(fuzz::generate(seed, kind, cfg)));
    for (const api::scenario_object& o : s.objects) {
      kinds_reached.insert(o.kind);
    }
    backends_reached.insert(api::backend_name(s.backend));
  }
  // (c) every registered kind appears in some scenario, on both backends.
  for (const std::string& kind : g_builtin_kinds) {
    EXPECT_TRUE(kinds_reached.count(kind) != 0) << "kind never generated: "
                                                << kind;
  }
  EXPECT_TRUE(backends_reached.count("single") != 0);
  EXPECT_TRUE(backends_reached.count("sharded") != 0);
}

TEST(coverage, campaign_coverage_is_monotone_and_deterministic) {
  fuzz::fuzz_options opt;
  opt.base_seed = 31;
  opt.iterations = 300;
  opt.kinds = g_builtin_kinds;
  opt.diff = false;
  opt.gen.max_procs = 2;
  opt.gen.max_ops = 4;

  fuzz::fuzz_stats stats = fuzz::run_fuzz(opt);
  ASSERT_FALSE(stats.failure.has_value());
  EXPECT_EQ(stats.coverage.executed, opt.iterations);
  EXPECT_GT(stats.coverage.distinct_buckets, 10u);
  // (b) the (executed, distinct) timeline is strictly increasing in both
  // coordinates — coverage never decreases over a campaign.
  const auto& tl = stats.coverage.timeline;
  ASSERT_FALSE(tl.empty());
  for (std::size_t i = 1; i < tl.size(); ++i) {
    EXPECT_GT(tl[i].first, tl[i - 1].first);
    EXPECT_EQ(tl[i].second, tl[i - 1].second + 1);
  }
  EXPECT_EQ(tl.back().second, stats.coverage.distinct_buckets);
  EXPECT_EQ(stats.coverage.corpus.size(), stats.coverage.distinct_buckets);

  fuzz::fuzz_stats again = fuzz::run_fuzz(opt);
  EXPECT_EQ(again.coverage.distinct_buckets, stats.coverage.distinct_buckets);
  EXPECT_EQ(again.replays, stats.replays);
}

// The ISSUE-4 acceptance bar: on the same fixed-seed 5000-iteration
// campaign, coverage-steered generation reaches >= 1.5x the distinct
// buckets of pure-random generation.
TEST(coverage, steering_beats_random_by_1_5x_on_5k_iterations) {
  auto campaign = [](bool steer) {
    fuzz::fuzz_options opt;
    opt.base_seed = 0xC0FFEE;
    opt.iterations = 5000;
    // A fixed six-kind pool: wide enough that directed mutation has
    // composite-rare buckets to chase, narrow enough that blind sampling
    // demonstrably saturates within the budget.
    opt.kinds = {"reg", "cas", "counter", "queue", "stack", "lock"};
    opt.diff = false;    // the A/B compares generation, not the variant pass
    opt.shrink = false;
    opt.steer = steer;
    opt.gen.max_procs = 2;
    opt.gen.max_ops = 4;
    opt.gen.max_crashes = 2;
    opt.gen.max_objects = 4;
    fuzz::fuzz_stats stats = fuzz::run_fuzz(opt);
    EXPECT_FALSE(stats.failure.has_value())
        << stats.failure->message << "\n"
        << api::dump(stats.failure->scenario);
    return stats.coverage.distinct_buckets;
  };
  const std::size_t random_buckets = campaign(false);
  const std::size_t steered_buckets = campaign(true);
  EXPECT_GE(steered_buckets * 2, random_buckets * 3)
      << "steered=" << steered_buckets << " random=" << random_buckets;
  EXPECT_GT(random_buckets, 0u);
}

TEST(coverage, stats_serialize_to_json) {
  fuzz::coverage_stats st;
  st.executed = 10;
  st.distinct_buckets = 2;
  st.steered = true;
  st.timeline = {{1, 1}, {4, 2}};
  st.corpus = {{0, 123, false, "kinds=reg|mix=reg:3"},
               {3, 456, true, "kinds=cas|mix=cas:1"}};
  std::string json = st.to_json(7, 10);
  EXPECT_NE(json.find("\"base_seed\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"distinct_buckets\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"steered\": true"), std::string::npos);
  EXPECT_NE(json.find("[[1, 1], [4, 2]]"), std::string::npos);
  EXPECT_NE(json.find("\"bucket\": \"kinds=cas|mix=cas:1\""),
            std::string::npos);
}

// ---- shrinker ---------------------------------------------------------------

TEST(shrinker, synthetic_predicate_shrinks_to_one_op) {
  fuzz::gen_config cfg;
  cfg.min_procs = 3;
  cfg.max_procs = 3;
  cfg.min_ops = 6;
  cfg.max_ops = 8;
  api::scripted_scenario s = fuzz::generate(77, "queue", cfg);
  // Plant the needle the predicate looks for.
  s.scripts[1][2] = {0, hist::opcode::enq, 55, 0, 0};
  s.policy = core::runtime::fail_policy::retry;
  s.shared_cache = true;

  auto fails = [](const api::scripted_scenario& c) {
    for (const auto& [pid, ops] : c.scripts) {
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::enq && d.a == 55) return true;
      }
    }
    return false;
  };
  api::scripted_scenario shrunk = fuzz::shrink(s, fails);
  EXPECT_TRUE(fails(shrunk)) << "shrunk scenario must still fail";
  EXPECT_EQ(shrunk.total_ops(), 1u) << api::dump(shrunk);
  EXPECT_EQ(shrunk.nprocs, 1);
  EXPECT_TRUE(shrunk.crash_steps.empty());
  EXPECT_EQ(shrunk.policy, core::runtime::fail_policy::skip);
  EXPECT_FALSE(shrunk.shared_cache);
}

// The object-level passes: a needle on one object of a 4-object scenario
// shrinks to a single-object scenario (drop + merge + retarget).
TEST(shrinker, drops_and_merges_objects) {
  api::scripted_scenario s;
  s.objects.push_back({0, "reg", {}});
  s.objects.push_back({1, "queue", {}});
  s.objects.push_back({2, "reg", {}});
  s.objects.push_back({3, "counter", {}});
  s.nprocs = 2;
  s.backend = api::exec_backend::sharded;
  s.shards = 2;
  s.scripts[0] = {{0, hist::opcode::reg_write, 1, 0, 0},
                  {1, hist::opcode::enq, 2, 0, 0},
                  {2, hist::opcode::reg_write, 55, 0, 0},
                  {3, hist::opcode::ctr_add, 1, 0, 0}};
  s.scripts[1] = {{1, hist::opcode::deq, 0, 0, 0},
                  {2, hist::opcode::reg_read, 0, 0, 0}};

  // The needle: some reg_write of 55 (wherever it lives after retargeting).
  auto fails = [](const api::scripted_scenario& c) {
    for (const auto& [pid, ops] : c.scripts) {
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::reg_write && d.a == 55) return true;
      }
    }
    return false;
  };
  api::scripted_scenario shrunk = fuzz::shrink(s, fails);
  EXPECT_TRUE(fails(shrunk));
  EXPECT_EQ(shrunk.objects.size(), 1u) << api::dump(shrunk);
  EXPECT_EQ(shrunk.objects.front().kind, "reg");
  EXPECT_EQ(shrunk.total_ops(), 1u) << api::dump(shrunk);
  EXPECT_EQ(shrunk.backend, api::exec_backend::single)
      << "a non-sharding failure must simplify off the sharded backend";
  EXPECT_EQ(shrunk.shards, 1);
  // Every surviving op targets a surviving object.
  for (const auto& [pid, ops] : shrunk.scripts) {
    for (const hist::op_desc& d : ops) {
      EXPECT_NE(shrunk.find_object(d.object), nullptr);
    }
  }
}

// A genuinely cross-object failure must keep both objects: merging loses
// the two-distinct-ids property the predicate demands, so the shrinker may
// not apply it.
TEST(shrinker, keeps_objects_a_cross_object_failure_needs) {
  api::scripted_scenario s;
  s.objects.push_back({0, "reg", {}});
  s.objects.push_back({1, "reg", {}});
  s.objects.push_back({2, "queue", {}});
  s.nprocs = 1;
  s.scripts[0] = {{0, hist::opcode::reg_write, 1, 0, 0},
                  {1, hist::opcode::reg_write, 2, 0, 0},
                  {2, hist::opcode::enq, 3, 0, 0}};
  auto fails = [](const api::scripted_scenario& c) {
    std::set<std::uint32_t> reg_targets;
    for (const auto& [pid, ops] : c.scripts) {
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::reg_write) reg_targets.insert(d.object);
      }
    }
    return reg_targets.size() >= 2;
  };
  ASSERT_TRUE(fails(s));
  api::scripted_scenario shrunk = fuzz::shrink(s, fails);
  EXPECT_TRUE(fails(shrunk));
  EXPECT_EQ(shrunk.objects.size(), 2u) << api::dump(shrunk);
  EXPECT_EQ(shrunk.total_ops(), 2u) << api::dump(shrunk);
}

// Shrinker edits must never cross the usage contracts the generator
// enforces — otherwise the minimized artifact can "fail" for the contract
// violation instead of the original defect.
TEST(shrinker, preserves_usage_contracts) {
  // Lock: find a generated crashy scenario (generate forces retry there).
  fuzz::gen_config cfg;
  cfg.min_procs = 2;
  cfg.max_procs = 2;
  cfg.min_ops = 6;
  cfg.max_ops = 6;
  api::scripted_scenario lock_s;
  for (std::uint64_t seed = 1;; ++seed) {
    lock_s = fuzz::generate(seed, "lock", cfg);
    if (!lock_s.crash_steps.empty()) break;
    ASSERT_LT(seed, 100u) << "no crashy lock scenario in 100 seeds";
  }
  ASSERT_EQ(lock_s.policy, core::runtime::fail_policy::retry);

  // Predicate: "still crashy and still contends" — aggressive shrinking
  // would love to drop the crash plan, flip retry to skip, or delete a
  // release; the contract guard must block the unsound edits.
  auto lock_fails = [](const api::scripted_scenario& c) {
    if (c.crash_steps.empty()) return false;
    int tries = 0;
    for (const auto& [pid, ops] : c.scripts) {
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::lock_try) ++tries;
      }
    }
    return tries >= 2;
  };
  ASSERT_TRUE(lock_fails(lock_s));
  api::scripted_scenario lock_shrunk = fuzz::shrink(lock_s, lock_fails);
  EXPECT_TRUE(lock_fails(lock_shrunk));
  EXPECT_EQ(lock_shrunk.policy, core::runtime::fail_policy::retry)
      << "crashy lock scenarios must keep fail_policy::retry";
  for (const auto& [pid, ops] : lock_shrunk.scripts) {
    bool may_hold = false;
    for (const hist::op_desc& d : ops) {
      if (d.code == hist::opcode::lock_try) {
        EXPECT_FALSE(may_hold) << "try_lock while possibly holding\n"
                               << api::dump(lock_shrunk);
        may_hold = true;
      } else if (d.code == hist::opcode::lock_release) {
        may_hold = false;
      }
    }
  }

  // CAS: the zero-arguments pass must keep old != new.
  api::scripted_scenario cas_s = fuzz::generate(5, "cas");
  auto cas_fails = [](const api::scripted_scenario& c) {
    for (const auto& [pid, ops] : c.scripts) {
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::cas) return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(cas_fails(cas_s));
  api::scripted_scenario cas_shrunk = fuzz::shrink(cas_s, cas_fails);
  EXPECT_TRUE(cas_fails(cas_shrunk));
  for (const auto& [pid, ops] : cas_shrunk.scripts) {
    for (const hist::op_desc& d : ops) {
      if (d.code == hist::opcode::cas) {
        EXPECT_NE(d.a, d.b) << "degenerate Cas(x, x) after shrinking";
      }
    }
  }
}

TEST(shrinker, passing_scenario_is_returned_unchanged) {
  api::scripted_scenario s = fuzz::generate(3, "reg");
  api::scripted_scenario out =
      fuzz::shrink(s, [](const api::scripted_scenario&) { return false; });
  EXPECT_EQ(api::dump(out), api::dump(s));
}

// Shrinker validity against the real differ: minimizing a genuine
// differential failure keeps it failing, down to the single lying read.
TEST(shrinker, real_diff_failure_shrinks_to_the_lying_read) {
  register_lying_counter_once();
  using hist::opcode;
  api::scripted_scenario s = counter_scenario(
      {{opcode::ctr_add, opcode::ctr_read, opcode::ctr_add, opcode::ctr_read,
        opcode::ctr_add}});
  auto fails = [](const api::scripted_scenario& c) {
    return !fuzz::diff_against(c, "test_lying_counter").ok;
  };
  ASSERT_TRUE(fails(s));
  api::scripted_scenario shrunk = fuzz::shrink(s, fails);
  EXPECT_TRUE(fails(shrunk)) << "shrunk scenario must still fail";
  ASSERT_EQ(shrunk.total_ops(), 1u) << api::dump(shrunk);
  EXPECT_EQ(shrunk.scripts.begin()->second[0].code, opcode::ctr_read)
      << "the minimal failing scenario is the lone lying read";
}

// ---- dump / parse round-tripping --------------------------------------------

TEST(replay_dump, round_trips_exactly) {
  for (const char* kind : {"reg", "cas", "queue", "lock"}) {
    for (std::uint64_t seed : {101ull, 202ull}) {
      api::scripted_scenario s = fuzz::generate(seed, kind);
      std::string text = api::dump(s);
      api::scripted_scenario parsed = api::parse_scenario(text);
      EXPECT_EQ(api::dump(parsed), text) << kind << " seed " << seed;
    }
  }
}

TEST(replay_dump, multi_object_scenarios_round_trip_with_targets) {
  fuzz::gen_config cfg;
  cfg.min_objects = 2;
  cfg.max_objects = 4;
  cfg.object_kind_pool = {"reg", "cas", "queue", "lock"};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "cas", cfg);
    std::string text = api::dump(s);
    EXPECT_NE(text.find("object 0 cas"), std::string::npos) << text;
    EXPECT_NE(text.find("object 1 "), std::string::npos) << text;
    api::scripted_scenario parsed = api::parse_scenario(text);
    EXPECT_EQ(api::dump(parsed), text) << "seed " << seed;
    ASSERT_EQ(parsed.objects.size(), s.objects.size());
    for (std::size_t i = 0; i < s.objects.size(); ++i) {
      EXPECT_EQ(parsed.objects[i].id, s.objects[i].id);
      EXPECT_EQ(parsed.objects[i].kind, s.objects[i].kind);
    }
  }
}

TEST(replay_dump, parsed_scenario_replays_identically) {
  api::scripted_scenario s = fuzz::generate(7, "cas");
  api::scripted_scenario parsed = api::parse_scenario(api::dump(s));
  api::scripted_outcome a = api::replay(s);
  api::scripted_outcome b = api::replay(parsed);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_EQ(a.report.steps, b.report.steps);
  EXPECT_EQ(a.report.crashes, b.report.crashes);
  EXPECT_EQ(a.check.ok, b.check.ok);
}

TEST(replay_dump, malformed_input_throws) {
  EXPECT_THROW(api::parse_scenario(""), std::invalid_argument);
  EXPECT_THROW(api::parse_scenario("bogus line\n"), std::invalid_argument);
  EXPECT_THROW(api::parse_scenario("kind reg\nscript 0 frobnicate:1:2\n"),
               std::invalid_argument);
  EXPECT_THROW(api::parse_scenario("kind reg\npolicy maybe\n"),
               std::invalid_argument);
}

TEST(replay_dump, parse_errors_carry_line_number_and_token) {
  auto message_of = [](const std::string& text) -> std::string {
    try {
      api::parse_scenario(text);
    } catch (const std::invalid_argument& ex) {
      return ex.what();
    }
    return {};
  };

  // A bad op token on line 3 (after a comment line).
  std::string msg =
      message_of("kind reg\n# comment\nscript 0 reg_write:1:0 zap\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'zap'"), std::string::npos) << msg;

  // An unknown opcode surfaces its name and line even though the throw
  // originates in opcode_from_name.
  msg = message_of("kind reg\nscript 0 frobnicate:1:2\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("frobnicate"), std::string::npos) << msg;

  // Unknown keys and bad values name their line too.
  msg = message_of("kind reg\nprocs 2\nwibble 7\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'wibble'"), std::string::npos) << msg;

  msg = message_of("kind reg\nbackend warp\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("warp"), std::string::npos) << msg;
}

// The ISSUE-4 parser hardening: duplicate object ids and ops targeting an
// undeclared object are rejected with the line/token-carrying error.
TEST(replay_dump, rejects_duplicate_object_ids) {
  auto message_of = [](const std::string& text) -> std::string {
    try {
      api::parse_scenario(text);
    } catch (const std::invalid_argument& ex) {
      return ex.what();
    }
    return {};
  };
  std::string msg = message_of(
      "object 0 reg 0 64\n"
      "object 1 cas 0 64\n"
      "object 1 queue 0 64\n"
      "procs 1\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate object id 1"), std::string::npos) << msg;
}

TEST(replay_dump, rejects_ops_targeting_undeclared_objects) {
  auto message_of = [](const std::string& text) -> std::string {
    try {
      api::parse_scenario(text);
    } catch (const std::invalid_argument& ex) {
      return ex.what();
    }
    return {};
  };
  std::string msg = message_of(
      "object 0 reg 0 64\n"
      "procs 1\n"
      "script 0 reg_write:1:0 reg_read:0:0@3\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'reg_read:0:0@3'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("undeclared object 3"), std::string::npos) << msg;

  // Out-of-range / signed targets must error, not wrap into a declared id.
  msg = message_of(
      "object 0 reg 0 64\nprocs 1\nscript 0 reg_read:0:0@4294967296\n");
  EXPECT_NE(msg.find("bad op target"), std::string::npos) << msg;
  msg = message_of("object 0 reg 0 64\nprocs 1\nscript 0 reg_read:0:0@-1\n");
  EXPECT_NE(msg.find("bad op target"), std::string::npos) << msg;

  // Mixing the legacy kind key with v3 object declarations is ambiguous.
  msg = message_of("object 0 reg 0 64\nkind cas\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  msg = message_of("kind cas\nobject 0 reg 0 64\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

// replay() itself guards programmatically-built scenarios the parser never
// saw.
TEST(replay_dump, replay_rejects_undeclared_targets) {
  api::scripted_scenario s = single_object("reg");
  s.nprocs = 1;
  s.scripts[0] = {{9, hist::opcode::reg_read, 0, 0, 0}};
  EXPECT_THROW(api::replay(s), std::invalid_argument);
  api::scripted_scenario empty;
  EXPECT_THROW(api::replay(empty), std::invalid_argument);
}

TEST(replay_dump, legacy_dumps_without_backend_fields_parse_as_single) {
  // A pre-executor (v1) dump: no backend / shards lines.
  api::scripted_scenario s = api::parse_scenario(
      "# detect scripted_scenario v1\n"
      "kind reg\n"
      "params 0 64\n"
      "procs 2\n"
      "policy skip\n"
      "shared_cache 0\n"
      "sched_seed 7\n"
      "crash_steps 5\n"
      "script 0 reg_write:3:0 reg_read:0:0\n"
      "script 1 reg_read:0:0\n");
  EXPECT_EQ(s.backend, api::exec_backend::single);
  EXPECT_EQ(s.shards, 1);
  ASSERT_EQ(s.objects.size(), 1u);
  EXPECT_EQ(s.objects.front().id, 0u);
  EXPECT_EQ(s.objects.front().kind, "reg");
  EXPECT_TRUE(api::replay(s).check.ok);
}

// The ISSUE-4 acceptance bar: a v2 single-object dump (the PR-3 format,
// kind/params + backend/shards lines) parses as the single-object special
// case and replays byte-identically to its v3 round-trip.
TEST(replay_dump, v2_dumps_parse_and_replay_byte_identically) {
  const std::string v2_text =
      "# detect scripted_scenario v2\n"
      "kind cas\n"
      "params 0 64\n"
      "procs 2\n"
      "policy retry\n"
      "shared_cache 0\n"
      "sched_seed 99\n"
      "backend single\n"
      "shards 2\n"
      "crash_steps 11 23\n"
      "script 0 cas:0:1 cas_read:0:0\n"
      "script 1 cas:1:2 cas_read:0:0\n";
  api::scripted_scenario s = api::parse_scenario(v2_text);
  ASSERT_EQ(s.objects.size(), 1u);
  EXPECT_EQ(s.objects.front().id, 0u);
  EXPECT_EQ(s.objects.front().kind, "cas");
  EXPECT_EQ(s.shards, 2);
  for (const auto& [pid, ops] : s.scripts) {
    for (const hist::op_desc& d : ops) EXPECT_EQ(d.object, 0u);
  }
  api::scripted_outcome a = api::replay(s);
  // The v3 round-trip preserves the execution byte for byte.
  api::scripted_scenario rt = api::parse_scenario(api::dump(s));
  api::scripted_outcome b = api::replay(rt);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_EQ(a.report.steps, b.report.steps);
  EXPECT_EQ(a.report.crashes, b.report.crashes);
  EXPECT_TRUE(a.check.ok);
  // And the full oracle (incl. the shards=2 equivalence diff) is clean.
  EXPECT_TRUE(fuzz::check_scenario(s).empty());
}

// The ISSUE-5 acceptance bar, mirroring the v2 test: a pinned v3
// multi-object dump (the PR-4 format — object lines, no placement/migrate
// lines) parses as placement modulo with no migrations and replays
// byte-identically to its v4 round-trip.
TEST(replay_dump, v3_dumps_parse_and_replay_byte_identically) {
  const std::string v3_text =
      "# detect scripted_scenario v3\n"
      "object 0 cas 0 64\n"
      "object 1 reg 0 64\n"
      "procs 2\n"
      "policy skip\n"
      "shared_cache 0\n"
      "sched_seed 77\n"
      "backend sharded\n"
      "shards 2\n"
      "crash_steps\n"
      "script 0 cas:0:1 reg_write:3:0@1\n"
      "script 1 cas_read:0:0 reg_read:0:0@1\n";
  api::scripted_scenario s = api::parse_scenario(v3_text);
  EXPECT_EQ(s.placement, api::placement_policy{});
  EXPECT_TRUE(s.migrations.empty());
  ASSERT_EQ(s.objects.size(), 2u);
  api::scripted_outcome a = api::replay(s);
  // The v4 round-trip carries an explicit `placement modulo` line and
  // preserves the execution byte for byte.
  const std::string v4_text = api::dump(s);
  EXPECT_NE(v4_text.find("placement modulo"), std::string::npos) << v4_text;
  api::scripted_scenario rt = api::parse_scenario(v4_text);
  api::scripted_outcome b = api::replay(rt);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_EQ(a.report.steps, b.report.steps);
  EXPECT_TRUE(a.check.ok);
  // And the full oracle (incl. the shards=2 equivalence diff) is clean.
  EXPECT_TRUE(fuzz::check_scenario(s).empty());
}

TEST(replay_dump, placement_and_migrations_round_trip) {
  api::scripted_scenario s = fuzz::generate(33, "counter");
  s.backend = api::exec_backend::sharded;
  s.shards = 3;
  s.placement = api::pinned_placement({{0, 2}});
  s.crash_steps.clear();
  s.migrations = {{0, 1}, {0, 2}};
  std::string text = api::dump(s);
  EXPECT_NE(text.find("placement pinned 0:2"), std::string::npos) << text;
  EXPECT_NE(text.find("migrate 0 1"), std::string::npos) << text;
  EXPECT_NE(text.find("migrate 0 2"), std::string::npos) << text;
  api::scripted_scenario parsed = api::parse_scenario(text);
  EXPECT_EQ(parsed.placement, s.placement);
  EXPECT_EQ(parsed.migrations, s.migrations);
  EXPECT_EQ(api::dump(parsed), text);
  // The parsed scenario replays identically to the original.
  api::scripted_outcome a = api::replay(s);
  api::scripted_outcome b = api::replay(parsed);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_TRUE(a.check.ok) << a.check.message;
}

TEST(replay_dump, placement_and_migration_parse_errors) {
  const std::string head =
      "object 0 reg 0 64\nprocs 1\nscript 0 reg_read:0:0\n";
  EXPECT_THROW(api::parse_scenario(head + "placement warp\n"),
               std::invalid_argument);
  EXPECT_THROW(api::parse_scenario(head + "placement pinned 0\n"),
               std::invalid_argument);
  EXPECT_THROW(api::parse_scenario(head + "placement pinned 0:-1\n"),
               std::invalid_argument);  // negative shard, rejected at parse
  // Placement errors carry the 1-based line like every other key's.
  try {
    api::parse_scenario(head + "placement warp\n");
    FAIL() << "placement warp must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(api::parse_scenario(head + "migrate 9 0\n"),
               std::invalid_argument);  // undeclared object
  EXPECT_THROW(api::parse_scenario(head + "migrate 0\n"),
               std::invalid_argument);  // missing shard
}

TEST(replay_dump, replay_validates_migration_plans) {
  api::scripted_scenario s = single_object("reg");
  s.nprocs = 1;
  s.backend = api::exec_backend::sharded;
  s.shards = 2;
  s.scripts[0] = {{0, hist::opcode::reg_read, 0, 0, 0}};
  s.migrations = {{0, 5}};  // out of range for 2 shards
  EXPECT_THROW(api::replay(s), std::invalid_argument);
  s.migrations = {{9, 1}};  // undeclared object
  EXPECT_THROW(api::replay(s), std::invalid_argument);
  s.migrations = {{0, 1}};
  EXPECT_TRUE(api::replay(s).check.ok);
}

TEST(replay_dump, backend_and_shards_round_trip) {
  api::scripted_scenario s = fuzz::generate(21, "queue");
  s.backend = api::exec_backend::sharded;
  s.shards = 3;
  std::string text = api::dump(s);
  EXPECT_NE(text.find("backend sharded"), std::string::npos);
  EXPECT_NE(text.find("shards 3"), std::string::npos);
  api::scripted_scenario parsed = api::parse_scenario(text);
  EXPECT_EQ(parsed.backend, api::exec_backend::sharded);
  EXPECT_EQ(parsed.shards, 3);
  EXPECT_EQ(api::dump(parsed), text);
}

TEST(replay_dump, failure_artifact_parses_back_to_the_shrunk_scenario) {
  fuzz::fuzz_failure f;
  f.iteration = 3;
  f.seed = 1234;
  f.kind = "reg";
  f.message = "synthetic\nmultiline message";
  f.scenario = fuzz::generate(1234, "reg");
  f.shrunk = fuzz::generate(1234, "reg", {.min_procs = 1, .max_procs = 1});
  api::scripted_scenario parsed = api::parse_scenario(f.to_artifact());
  EXPECT_EQ(api::dump(parsed), api::dump(f.shrunk));
}

// ---- placement knob + placement equivalence ---------------------------------

TEST(scenario_gen, placement_knob_is_bounded_and_deterministic) {
  fuzz::gen_config cfg;
  cfg.min_shards = 2;  // every scenario carries the knob
  cfg.max_shards = 4;
  bool saw_nonmodulo = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    api::scripted_scenario a = fuzz::generate(seed, "reg", cfg);
    api::scripted_scenario b = fuzz::generate(seed, "reg", cfg);
    EXPECT_EQ(api::dump(a), api::dump(b));
    saw_nonmodulo |= a.placement.kind != api::placement_kind::modulo;
    if (a.placement.kind == api::placement_kind::pinned) {
      // Pins cover exactly the declared objects, each onto a real shard.
      EXPECT_EQ(a.placement.pins.size(), a.objects.size());
      for (const auto& [id, shard] : a.placement.pins) {
        EXPECT_NE(a.find_object(id), nullptr);
        EXPECT_GE(shard, 0);
        EXPECT_LT(shard, a.shards);
      }
    }
  }
  EXPECT_TRUE(saw_nonmodulo) << "the knob never left modulo in 60 draws";

  // Unsharded scenarios carry no placement (nothing to place).
  fuzz::gen_config unsharded;
  unsharded.max_shards = 1;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(fuzz::generate(seed, "reg", unsharded).placement,
              api::placement_policy{});
  }
}

TEST(scenario_gen, forced_placement_pins_every_scenario) {
  fuzz::gen_config cfg;
  cfg.min_shards = 2;
  cfg.placement = "range";
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(fuzz::generate(seed, "queue", cfg).placement.kind,
              api::placement_kind::range);
  }
  cfg.placement = "none";
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(fuzz::generate(seed, "queue", cfg).placement,
              api::placement_policy{});
  }
}

TEST(scenario_gen, migrations_only_on_crash_free_sharded_scenarios) {
  fuzz::gen_config cfg;
  cfg.min_shards = 2;
  cfg.max_shards = 4;
  bool saw_migration = false;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "lock", cfg);
    if (s.migrations.empty()) continue;
    saw_migration = true;
    EXPECT_EQ(s.backend, api::exec_backend::sharded) << seed;
    EXPECT_TRUE(s.crash_steps.empty()) << seed;
    for (const auto& [id, shard] : s.migrations) {
      EXPECT_NE(s.find_object(id), nullptr);
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, s.shards);
    }
    // Migration scenarios run their scripts twice, so every lock script
    // must end not-holding.
    for (const auto& [pid, ops] : s.scripts) {
      std::map<std::uint32_t, bool> held;
      for (const hist::op_desc& d : ops) {
        if (d.code == hist::opcode::lock_try) held[d.object] = true;
        if (d.code == hist::opcode::lock_release) held[d.object] = false;
      }
      for (const auto& [id, h] : held) EXPECT_FALSE(h) << seed;
    }
  }
  EXPECT_TRUE(saw_migration) << "the knob never drew a migration in 200 seeds";
}

// The ISSUE-5 acceptance bar: for >= 1000 generated seeds, replays under
// modulo vs hash vs range placement produce identical checker verdicts (and
// identical response streams for single-object scenarios) — placement is
// semantics-invariant.
TEST(differ, placement_equivalence_holds_for_1000_seeds) {
  const std::vector<std::string> kinds = {"reg",   "cas",   "counter",
                                          "swap",  "tas",   "queue",
                                          "stack", "max_reg", "lock"};
  fuzz::gen_config cfg;
  cfg.max_procs = 2;
  cfg.max_ops = 5;
  cfg.max_crashes = 2;
  cfg.min_shards = 2;  // every scenario carries the placement diff
  cfg.max_shards = 4;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t seed =
        fuzz::iteration_seed(0x91aceULL, static_cast<std::uint64_t>(i));
    const std::string& kind = kinds[static_cast<std::size_t>(i) % kinds.size()];
    api::scripted_scenario s = fuzz::generate(seed, kind, cfg);
    fuzz::diff_report d = fuzz::diff_placement(s);
    ASSERT_TRUE(d.ok) << "seed " << seed << ":\n"
                      << d.message << "\n"
                      << api::dump(s);
  }
}

TEST(differ, placement_diff_is_trivially_ok_without_a_shard_knob) {
  api::scripted_scenario s = fuzz::generate(9, "reg");
  s.shards = 1;
  EXPECT_TRUE(fuzz::diff_placement(s).ok);
}

TEST(run_fuzz, placement_equiv_campaign_is_clean) {
  fuzz::fuzz_options opt;
  opt.base_seed = 17;
  opt.iterations = 150;
  opt.kinds = g_builtin_kinds;
  opt.diff = false;
  opt.placement_equiv = true;
  opt.gen.min_shards = 2;
  opt.gen.max_procs = 2;
  opt.gen.max_ops = 5;
  fuzz::fuzz_stats stats = fuzz::run_fuzz(opt);
  EXPECT_FALSE(stats.failure.has_value())
      << stats.failure->message << "\n"
      << api::dump(stats.failure->scenario);
  // The placement stage genuinely replayed extra variants.
  EXPECT_GT(stats.replays, 2 * stats.iterations);
}

TEST(shrinker, simplifies_placement_and_drops_migrations) {
  register_lying_counter_once();
  api::scripted_scenario s = single_object("test_lying_counter");
  s.nprocs = 1;
  s.backend = api::exec_backend::sharded;
  s.shards = 2;
  s.placement.kind = api::placement_kind::hash;
  s.migrations = {{0, 1}};
  s.scripts[0] = {{0, hist::opcode::ctr_add, 1, 0, 0},
                  {0, hist::opcode::ctr_read, 0, 0, 0}};
  auto fails = [](const api::scripted_scenario& c) {
    return !fuzz::check_scenario(c).empty();
  };
  ASSERT_TRUE(fails(s));
  api::scripted_scenario shrunk = fuzz::shrink(s, fails);
  EXPECT_TRUE(fails(shrunk));
  // The failure is the lying read, not the routing: placement simplifies to
  // modulo and the migration plan drops away.
  EXPECT_EQ(shrunk.placement, api::placement_policy{});
  EXPECT_TRUE(shrunk.migrations.empty());
}

TEST(coverage, signature_carries_placement_and_migration_bits) {
  api::scripted_scenario s = fuzz::generate(3, "reg");
  s.backend = api::exec_backend::sharded;
  s.shards = 2;
  s.placement = {};
  s.migrations.clear();
  const std::string base_key = fuzz::scenario_signature(s).scenario_key();
  EXPECT_NE(base_key.find("place=modulo"), std::string::npos) << base_key;
  EXPECT_NE(base_key.find("mig=0"), std::string::npos) << base_key;

  api::scripted_scenario hashed = s;
  hashed.placement.kind = api::placement_kind::hash;
  EXPECT_NE(fuzz::scenario_signature(hashed).scenario_key(), base_key);

  api::scripted_scenario migrated = s;
  migrated.migrations = {{0, 1}};
  EXPECT_NE(fuzz::scenario_signature(migrated).scenario_key(), base_key);
}

// ---- campaign engine --------------------------------------------------------

TEST(run_fuzz, clean_campaign_over_builtin_kinds_is_deterministic) {
  fuzz::fuzz_options opt;
  opt.base_seed = 9;
  opt.iterations = static_cast<std::uint64_t>(g_builtin_kinds.size());
  opt.kinds = g_builtin_kinds;  // pin: later tests add broken kinds
  opt.gen.max_procs = 2;
  opt.gen.max_ops = 5;

  fuzz::fuzz_stats a = fuzz::run_fuzz(opt);
  EXPECT_FALSE(a.failure.has_value())
      << a.failure->message << "\n"
      << api::dump(a.failure->scenario);
  EXPECT_EQ(a.iterations, opt.iterations);

  fuzz::fuzz_stats b = fuzz::run_fuzz(opt);
  EXPECT_EQ(a.replays, b.replays) << "campaigns must be reproducible";
  EXPECT_FALSE(b.failure.has_value());
}

TEST(run_fuzz, reports_and_shrinks_a_failing_kind) {
  register_lying_counter_once();
  fuzz::fuzz_options opt;
  opt.base_seed = 5;
  opt.iterations = 50;
  opt.kinds = {"test_lying_counter"};

  fuzz::fuzz_stats stats = fuzz::run_fuzz(opt);
  ASSERT_TRUE(stats.failure.has_value())
      << "the lying counter must be caught by the oracle";
  const fuzz::fuzz_failure& f = *stats.failure;
  EXPECT_EQ(f.kind, "test_lying_counter");
  EXPECT_EQ(f.seed, fuzz::iteration_seed(opt.base_seed, f.iteration));
  EXPECT_FALSE(f.message.empty());
  EXPECT_LE(f.shrunk.total_ops(), f.scenario.total_ops());
  // The shrunk scenario still fails the same oracle.
  EXPECT_FALSE(fuzz::check_scenario(f.shrunk).empty());
  // And the artifact parses back to it.
  EXPECT_EQ(api::dump(api::parse_scenario(f.to_artifact())),
            api::dump(f.shrunk));
}

// Steered campaigns also catch planted bugs: the lying counter cannot hide
// behind the mutation engine.
TEST(run_fuzz, steered_campaign_still_catches_the_lying_counter) {
  register_lying_counter_once();
  fuzz::fuzz_options opt;
  opt.base_seed = 5;
  opt.iterations = 80;
  opt.kinds = {"counter", "test_lying_counter"};
  opt.steer = true;

  fuzz::fuzz_stats stats = fuzz::run_fuzz(opt);
  ASSERT_TRUE(stats.failure.has_value());
  EXPECT_FALSE(fuzz::check_scenario(stats.failure->shrunk).empty());
}

}  // namespace
