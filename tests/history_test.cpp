// Tests for sequential specs, the linearizability checker, and the
// durable-linearizability/detectability record builder.
#include <gtest/gtest.h>

#include "history/checker.hpp"
#include "history/linearizer.hpp"
#include "history/specs.hpp"

namespace {

using namespace detect;
using hist::k_ack;
using hist::k_bottom;
using hist::k_empty;
using hist::k_false;
using hist::k_npos;
using hist::k_true;
using hist::op_desc;
using hist::opcode;

op_desc mk(opcode c, hist::value_t a = 0, hist::value_t b = 0) {
  return {0, c, a, b, 0};
}

// ---- specs -------------------------------------------------------------------

TEST(specs, register_semantics) {
  hist::register_spec s(5);
  EXPECT_EQ(s.apply(mk(opcode::reg_read)), 5);
  EXPECT_EQ(s.apply(mk(opcode::reg_write, 9)), k_ack);
  EXPECT_EQ(s.apply(mk(opcode::reg_read)), 9);
}

TEST(specs, cas_semantics) {
  hist::cas_spec s(0);
  EXPECT_EQ(s.apply(mk(opcode::cas, 1, 2)), k_false);
  EXPECT_EQ(s.apply(mk(opcode::cas, 0, 2)), k_true);
  EXPECT_EQ(s.apply(mk(opcode::cas_read)), 2);
}

TEST(specs, counter_semantics_and_cap) {
  hist::counter_spec s(0, 2);
  EXPECT_EQ(s.apply(mk(opcode::ctr_add, 1)), 0);
  EXPECT_EQ(s.apply(mk(opcode::ctr_add, 1)), 1);
  EXPECT_EQ(s.apply(mk(opcode::ctr_add, 1)), 2);
  EXPECT_EQ(s.apply(mk(opcode::ctr_read)), 2) << "bounded counter saturates";
}

TEST(specs, tas_semantics) {
  hist::tas_spec s;
  EXPECT_EQ(s.apply(mk(opcode::tas_set)), 0);
  EXPECT_EQ(s.apply(mk(opcode::tas_set)), 1);
  EXPECT_EQ(s.apply(mk(opcode::tas_reset)), k_ack);
  EXPECT_EQ(s.apply(mk(opcode::tas_set)), 0);
}

TEST(specs, queue_fifo_and_empty) {
  hist::queue_spec s;
  EXPECT_EQ(s.apply(mk(opcode::deq)), k_empty);
  s.apply(mk(opcode::enq, 1));
  s.apply(mk(opcode::enq, 2));
  EXPECT_EQ(s.apply(mk(opcode::deq)), 1);
  EXPECT_EQ(s.apply(mk(opcode::deq)), 2);
  EXPECT_EQ(s.apply(mk(opcode::deq)), k_empty);
}

TEST(specs, max_register_semantics) {
  hist::max_register_spec s(0);
  s.apply(mk(opcode::max_write, 5));
  s.apply(mk(opcode::max_write, 3));
  EXPECT_EQ(s.apply(mk(opcode::max_read)), 5);
}

TEST(specs, multi_routes_by_object) {
  hist::multi_spec m;
  m.add_object(0, std::make_unique<hist::register_spec>(0));
  m.add_object(1, std::make_unique<hist::counter_spec>(0));
  op_desc w = mk(opcode::reg_write, 7);
  w.object = 0;
  op_desc a = mk(opcode::ctr_add, 2);
  a.object = 1;
  m.apply(w);
  m.apply(a);
  op_desc r0 = mk(opcode::reg_read);
  r0.object = 0;
  op_desc r1 = mk(opcode::ctr_read);
  r1.object = 1;
  EXPECT_EQ(m.apply(r0), 7);
  EXPECT_EQ(m.apply(r1), 2);
}

TEST(specs, clone_is_deep) {
  hist::queue_spec s;
  s.apply(mk(opcode::enq, 1));
  auto c = s.clone();
  s.apply(mk(opcode::enq, 2));
  EXPECT_EQ(c->apply(mk(opcode::deq)), 1);
  EXPECT_EQ(c->apply(mk(opcode::deq)), k_empty)
      << "clone must not see post-clone mutations";
}

// ---- linearizer ----------------------------------------------------------------

hist::op_record rec(int pid, op_desc d, std::size_t inv, std::size_t resp,
                    hist::value_t r) {
  hist::op_record o;
  o.pid = pid;
  o.desc = d;
  o.invoke_index = inv;
  o.response_index = resp;
  o.response = r;
  o.has_response = true;
  return o;
}

TEST(linearizer, sequential_history_accepts) {
  std::vector<hist::op_record> ops{
      rec(0, mk(opcode::reg_write, 1), 0, 1, k_ack),
      rec(1, mk(opcode::reg_read), 2, 3, 1),
  };
  auto r = hist::check_linearizable(ops, hist::register_spec(0));
  EXPECT_TRUE(r.linearizable) << r.error;
}

TEST(linearizer, stale_read_rejected) {
  std::vector<hist::op_record> ops{
      rec(0, mk(opcode::reg_write, 1), 0, 1, k_ack),
      rec(1, mk(opcode::reg_read), 2, 3, 0),  // must see 1
  };
  auto r = hist::check_linearizable(ops, hist::register_spec(0));
  EXPECT_FALSE(r.linearizable);
}

TEST(linearizer, concurrent_ops_may_order_either_way) {
  // write(1) concurrent with read: read may see 0 or 1.
  for (hist::value_t seen : {0, 1}) {
    std::vector<hist::op_record> ops{
        rec(0, mk(opcode::reg_write, 1), 0, 3, k_ack),
        rec(1, mk(opcode::reg_read), 1, 2, seen),
    };
    auto r = hist::check_linearizable(ops, hist::register_spec(0));
    EXPECT_TRUE(r.linearizable) << "seen=" << seen << "\n" << r.error;
  }
}

TEST(linearizer, optional_op_may_be_dropped) {
  hist::op_record pending = rec(0, mk(opcode::reg_write, 1), 0, k_npos, 0);
  pending.has_response = false;
  pending.optional = true;
  pending.response_index = k_npos;
  std::vector<hist::op_record> ops{
      pending,
      rec(1, mk(opcode::reg_read), 1, 2, 0),  // never saw the write
  };
  auto r = hist::check_linearizable(ops, hist::register_spec(0));
  EXPECT_TRUE(r.linearizable) << r.error;
}

TEST(linearizer, mandatory_op_cannot_be_dropped) {
  std::vector<hist::op_record> ops{
      rec(0, mk(opcode::reg_write, 1), 0, 1, k_ack),
      rec(1, mk(opcode::reg_read), 2, 3, 0),  // stale — write is mandatory
  };
  auto r = hist::check_linearizable(ops, hist::register_spec(0));
  EXPECT_FALSE(r.linearizable);
}

TEST(linearizer, cas_double_success_rejected) {
  std::vector<hist::op_record> ops{
      rec(0, mk(opcode::cas, 0, 1), 0, 1, k_true),
      rec(1, mk(opcode::cas, 0, 1), 2, 3, k_true),  // impossible
  };
  auto r = hist::check_linearizable(ops, hist::cas_spec(0));
  EXPECT_FALSE(r.linearizable);
}

TEST(linearizer, queue_fifo_violation_rejected) {
  std::vector<hist::op_record> ops{
      rec(0, mk(opcode::enq, 1), 0, 1, k_ack),
      rec(0, mk(opcode::enq, 2), 2, 3, k_ack),
      rec(1, mk(opcode::deq), 4, 5, 2),  // out of order
  };
  auto r = hist::check_linearizable(ops, hist::queue_spec());
  EXPECT_FALSE(r.linearizable);
}

TEST(linearizer, witness_has_all_nonoptional_ops) {
  std::vector<hist::op_record> ops{
      rec(0, mk(opcode::reg_write, 1), 0, 1, k_ack),
      rec(1, mk(opcode::reg_read), 2, 3, 1),
  };
  auto r = hist::check_linearizable(ops, hist::register_spec(0));
  ASSERT_TRUE(r.linearizable);
  EXPECT_EQ(r.witness.size(), 2u);
}

TEST(linearizer, rejects_oversized_histories) {
  std::vector<hist::op_record> ops(65, rec(0, mk(opcode::reg_read), 0, 1, 0));
  auto r = hist::check_linearizable(ops, hist::register_spec(0));
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.error.find("64"), std::string::npos);
}

// ---- checker / record builder ---------------------------------------------------

hist::event ev(hist::event_kind k, int pid, op_desc d,
               hist::value_t v = k_bottom,
               hist::recovery_verdict verdict = hist::recovery_verdict::none) {
  hist::event e;
  e.kind = k;
  e.pid = pid;
  e.desc = d;
  e.value = v;
  e.verdict = verdict;
  return e;
}

TEST(checker, normal_completion_builds_mandatory_record) {
  std::vector<hist::event> events{
      ev(hist::event_kind::invoke, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::response, 0, mk(opcode::reg_write, 1), k_ack),
  };
  auto recs = hist::build_records(events);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].has_response);
  EXPECT_FALSE(recs[0].optional);
}

TEST(checker, fail_verdict_excludes_op) {
  std::vector<hist::event> events{
      ev(hist::event_kind::invoke, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::crash, -1, {}),
      ev(hist::event_kind::recover_begin, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::recover_result, 0, mk(opcode::reg_write, 1),
         k_bottom, hist::recovery_verdict::fail),
  };
  auto recs = hist::build_records(events);
  EXPECT_TRUE(recs.empty());
}

TEST(checker, linearized_verdict_closes_op_with_response) {
  std::vector<hist::event> events{
      ev(hist::event_kind::invoke, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::crash, -1, {}),
      ev(hist::event_kind::recover_begin, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::recover_result, 0, mk(opcode::reg_write, 1), k_ack,
         hist::recovery_verdict::linearized),
  };
  auto recs = hist::build_records(events);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].has_response);
  EXPECT_EQ(recs[0].response, k_ack);
}

TEST(checker, unresolved_pending_op_is_optional) {
  std::vector<hist::event> events{
      ev(hist::event_kind::invoke, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::crash, -1, {}),
  };
  auto recs = hist::build_records(events);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].optional);
}

TEST(checker, orphan_linearized_verdict_synthesizes_record) {
  // Crash hit inside the announcement window; a re-invoking recovery then
  // executed and linearized the op.
  std::vector<hist::event> events{
      ev(hist::event_kind::crash, -1, {}),
      ev(hist::event_kind::recover_begin, 0, mk(opcode::max_write, 5)),
      ev(hist::event_kind::recover_result, 0, mk(opcode::max_write, 5), k_ack,
         hist::recovery_verdict::linearized),
  };
  auto recs = hist::build_records(events);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].invoke_index, 1u);
  EXPECT_EQ(recs[0].response_index, 2u);
}

TEST(checker, orphan_fail_verdict_ignored) {
  std::vector<hist::event> events{
      ev(hist::event_kind::crash, -1, {}),
      ev(hist::event_kind::recover_begin, 0, mk(opcode::reg_write, 5)),
      ev(hist::event_kind::recover_result, 0, mk(opcode::reg_write, 5),
         k_bottom, hist::recovery_verdict::fail),
  };
  auto recs = hist::build_records(events);
  EXPECT_TRUE(recs.empty());
}

TEST(checker, duplicate_completion_report_is_ignored) {
  // Regression: a crash between an op's response and the client's durable
  // program-counter update makes recovery re-report "linearized" for an op
  // the log already closed. That report must not spawn a second record.
  op_desc w = mk(opcode::reg_write, 1);
  w.client_seq = 1;
  std::vector<hist::event> events{
      ev(hist::event_kind::invoke, 0, w),
      ev(hist::event_kind::response, 0, w, k_ack),
      ev(hist::event_kind::crash, -1, {}),
      ev(hist::event_kind::recover_begin, 0, w),
      ev(hist::event_kind::recover_result, 0, w, k_ack,
         hist::recovery_verdict::linearized),
  };
  auto recs = hist::build_records(events);
  ASSERT_EQ(recs.size(), 1u) << "no phantom second record";
  // And the full check passes with a subsequent read seeing the write once.
  op_desc r = mk(opcode::reg_read);
  r.client_seq = 1;
  events.push_back(ev(hist::event_kind::invoke, 1, r));
  events.push_back(ev(hist::event_kind::response, 1, r, 1));
  auto res = hist::check_durable_linearizability(events, hist::register_spec(0));
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(checker, lock_spec_checks_mutual_exclusion) {
  // Two concurrent successful trylocks must be rejected by the lock spec.
  op_desc t0 = mk(opcode::lock_try, 0);
  op_desc t1 = mk(opcode::lock_try, 1);
  std::vector<hist::event> events{
      ev(hist::event_kind::invoke, 0, t0),
      ev(hist::event_kind::response, 0, t0, k_true),
      ev(hist::event_kind::invoke, 1, t1),
      ev(hist::event_kind::response, 1, t1, k_true),  // impossible
  };
  auto res = hist::check_durable_linearizability(events, hist::lock_spec());
  EXPECT_FALSE(res.ok);
}

TEST(checker, detects_false_linearized_claim) {
  // Recovery claims a write was linearized, but a later read contradicts it.
  std::vector<hist::event> events{
      ev(hist::event_kind::invoke, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::crash, -1, {}),
      ev(hist::event_kind::recover_begin, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::recover_result, 0, mk(opcode::reg_write, 1), k_ack,
         hist::recovery_verdict::linearized),
      ev(hist::event_kind::invoke, 1, mk(opcode::reg_read)),
      ev(hist::event_kind::response, 1, mk(opcode::reg_read), 0),
  };
  auto r = hist::check_durable_linearizability(events, hist::register_spec(0));
  EXPECT_FALSE(r.ok);
}

TEST(checker, detects_false_fail_claim_when_effect_observed) {
  // Recovery says fail, but another process already read the written value.
  std::vector<hist::event> events{
      ev(hist::event_kind::invoke, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::invoke, 1, mk(opcode::reg_read)),
      ev(hist::event_kind::response, 1, mk(opcode::reg_read), 1),
      ev(hist::event_kind::crash, -1, {}),
      ev(hist::event_kind::recover_begin, 0, mk(opcode::reg_write, 1)),
      ev(hist::event_kind::recover_result, 0, mk(opcode::reg_write, 1),
         k_bottom, hist::recovery_verdict::fail),
  };
  auto r = hist::check_durable_linearizability(events, hist::register_spec(0));
  EXPECT_FALSE(r.ok);
}

}  // namespace
