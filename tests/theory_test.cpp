// Theory harness tests: Theorem 1 configuration counting, Definition 3
// certificates (Lemmas 3-8), and the Theorem 2 Figure-2 schedule outcomes.
#include <gtest/gtest.h>

#include "theory/aux_necessity.hpp"
#include "theory/cas_model.hpp"
#include "theory/perturbing.hpp"
#include "theory/rw_model.hpp"

namespace {

using namespace detect;
using theory::abstract_op;

// ---- Theorem 1 / E2 ---------------------------------------------------------

TEST(cas_model, bound_helper) {
  EXPECT_EQ(theory::theorem1_bound(1), 1u);
  EXPECT_EQ(theory::theorem1_bound(4), 15u);
  EXPECT_EQ(theory::theorem1_bound(10), 1023u);
}

TEST(cas_model, bfs_meets_lower_bound_small_n) {
  for (int n = 1; n <= 2; ++n) {
    auto c = theory::bfs_configurations(n, n + 1);
    EXPECT_TRUE(c.complete) << "N=" << n;
    EXPECT_GE(c.shared_configs, theory::theorem1_bound(n)) << "N=" << n;
    EXPECT_GE(c.total_configs, c.shared_configs);
  }
}

TEST(cas_model, bfs_shared_count_matches_quiescent_analysis) {
  // The full model and the quiescent-graph abstraction must agree on the set
  // of reachable shared states for small N (same operation universe).
  for (int n = 1; n <= 2; ++n) {
    auto full = theory::bfs_configurations(n, n + 1);
    auto quiescent = theory::quiescent_reachability(n, n + 1);
    ASSERT_TRUE(full.complete);
    EXPECT_EQ(full.shared_configs, quiescent.shared_configs) << "N=" << n;
  }
}

TEST(cas_model, quiescent_reachability_is_value_times_vectors) {
  for (int n : {1, 2, 4, 8, 12}) {
    auto c = theory::quiescent_reachability(n, n + 1);
    EXPECT_EQ(c.shared_configs,
              static_cast<std::uint64_t>(n + 1) * (std::uint64_t{1} << n))
        << "N=" << n;
    EXPECT_GE(c.shared_configs, theory::theorem1_bound(n));
  }
}

TEST(cas_model, gray_code_walk_witnesses_the_bound) {
  for (int n : {1, 2, 4, 6, 10, 16}) {
    std::uint64_t visited = theory::gray_code_walk(n, n + 1);
    EXPECT_GE(visited, theory::theorem1_bound(n)) << "N=" << n;
  }
}

// ---- Algorithm 1 model / E9 ---------------------------------------------------

TEST(rw_model, full_bfs_covers_quiescent_states_for_n1) {
  // The full model also visits mid-operation shared states (e.g. a cleared
  // toggle bit before the closing for-loop), so its shared count dominates
  // the quiescent-boundary count.
  auto full = theory::rw_bfs_configurations(1, 2, 2'000'000);
  auto quiescent = theory::rw_quiescent_reachability(1, 2);
  ASSERT_TRUE(full.complete);
  EXPECT_GE(full.shared_configs, quiescent.shared_configs);
}

TEST(rw_model, reachable_counts_grow_with_n) {
  auto q1 = theory::rw_quiescent_reachability(1, 2);
  auto q2 = theory::rw_quiescent_reachability(2, 2);
  auto q3 = theory::rw_quiescent_reachability(3, 2);
  EXPECT_LT(q1.shared_configs, q2.shared_configs);
  EXPECT_LT(q2.shared_configs, q3.shared_configs);
}

TEST(rw_model, reachable_far_below_budget) {
  // Algorithm 1 budgets 2N² bits of toggle state; its reachable shared-state
  // count stays far below 2^(2N²) — the data point behind the paper's open
  // problem on read/write space bounds.
  auto q3 = theory::rw_quiescent_reachability(3, 2);
  EXPECT_LT(q3.shared_configs, std::uint64_t{1} << 18)
      << "N=3 budget is 2*9=18 toggle bits";
}

TEST(rw_model, full_bfs_n2_within_cap) {
  auto c = theory::rw_bfs_configurations(2, 2, 6'000'000);
  EXPECT_GE(c.shared_configs, 4u);
  EXPECT_GE(c.total_configs, c.shared_configs);
}

// ---- Definition 3 / E4 ------------------------------------------------------

TEST(perturbing, register_witness_lemma3) {
  auto w = theory::register_witness();
  auto c = theory::check_witness(hist::register_spec(0), w);
  EXPECT_TRUE(c.ok) << c.detail;
}

TEST(perturbing, counter_witness_lemma5) {
  auto w = theory::counter_witness();
  auto c = theory::check_witness(hist::counter_spec(0), w);
  EXPECT_TRUE(c.ok) << c.detail;
}

TEST(perturbing, bounded_counter_is_doubly_perturbing) {
  auto w = theory::counter_witness();
  auto c = theory::check_witness(hist::counter_spec(0, 2), w);
  EXPECT_TRUE(c.ok) << c.detail;
}

TEST(perturbing, cas_witness_lemma6) {
  auto w = theory::cas_witness();
  auto c = theory::check_witness(hist::cas_spec(0), w);
  EXPECT_TRUE(c.ok) << c.detail;
}

TEST(perturbing, faa_witness_lemma7) {
  auto w = theory::faa_witness();
  auto c = theory::check_witness(hist::counter_spec(0), w);
  EXPECT_TRUE(c.ok) << c.detail;
}

TEST(perturbing, queue_witness_lemma8) {
  auto w = theory::queue_witness();
  auto c = theory::check_witness(hist::queue_spec(), w);
  EXPECT_TRUE(c.ok) << c.detail;
}

TEST(perturbing, max_register_has_no_witness_lemma4) {
  std::vector<abstract_op> universe;
  for (int pid : {0, 1}) {
    for (hist::value_t v : {1, 2, 3}) {
      universe.push_back({pid, hist::opcode::max_write, v, 0});
    }
    universe.push_back({pid, hist::opcode::max_read, 0, 0});
  }
  auto res = theory::search_witness(hist::max_register_spec(0), universe,
                                    /*max_h1=*/2, /*max_ext=*/2);
  EXPECT_FALSE(res.found) << "unexpected witness: " << res.witness.to_string();
  EXPECT_GT(res.explored, 1000u);
}

TEST(perturbing, register_witness_found_by_search) {
  std::vector<abstract_op> universe;
  for (int pid : {0, 1}) {
    universe.push_back({pid, hist::opcode::reg_write, 0, 0});
    universe.push_back({pid, hist::opcode::reg_write, 1, 0});
    universe.push_back({pid, hist::opcode::reg_read, 0, 0});
  }
  auto res = theory::search_witness(hist::register_spec(0), universe, 1, 2);
  EXPECT_TRUE(res.found);
  auto check = theory::check_witness(hist::register_spec(0), res.witness);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST(perturbing, successive_perturb_counts) {
  abstract_op inc{0, hist::opcode::ctr_add, 1, 0};
  abstract_op read{1, hist::opcode::ctr_read, 0, 0};
  // Unbounded counter: every increment perturbs the next read.
  EXPECT_EQ(theory::count_successive_perturbs(hist::counter_spec(0), {}, inc,
                                              read, 10),
            10);
  // Bounded counter {0,1,2}: at most 2 perturbations, then saturation.
  EXPECT_EQ(theory::count_successive_perturbs(hist::counter_spec(0, 2), {}, inc,
                                              read, 10),
            2);
  // Max register: the same write perturbs at most once.
  abstract_op wmax{0, hist::opcode::max_write, 5, 0};
  abstract_op mread{1, hist::opcode::max_read, 0, 0};
  EXPECT_EQ(theory::count_successive_perturbs(hist::max_register_spec(0), {},
                                              wmax, mread, 10),
            1);
}

TEST(perturbing, same_process_probe_is_not_perturbing) {
  abstract_op w{0, hist::opcode::reg_write, 1, 0};
  abstract_op r_same{0, hist::opcode::reg_read, 0, 0};
  EXPECT_FALSE(theory::is_perturbing_after(hist::register_spec(0), {}, w, r_same))
      << "Definition 3 requires Op' by a different process";
}

// ---- Theorem 2 / E3 ---------------------------------------------------------

TEST(aux_necessity, stripped_register_violates_on_e_branch) {
  auto out = theory::run_e_branch(theory::register_scenario(/*stripped=*/true));
  EXPECT_TRUE(out.violation)
      << "without auxiliary state the Figure-2 schedule must break "
         "detectability";
  EXPECT_EQ(out.verdict, hist::recovery_verdict::linearized)
      << "the recovery wrongly claims the fresh invocation linearized";
}

TEST(aux_necessity, proper_register_survives_e_branch) {
  auto out = theory::run_e_branch(theory::register_scenario(/*stripped=*/false));
  EXPECT_FALSE(out.violation) << out.detail;
  EXPECT_EQ(out.verdict, hist::recovery_verdict::fail)
      << "with CP/resp reset, recovery correctly reports not-linearized";
}

TEST(aux_necessity, stripped_cas_violates_on_e_branch) {
  auto out = theory::run_e_branch(theory::cas_scenario(/*stripped=*/true));
  EXPECT_TRUE(out.violation);
  EXPECT_EQ(out.verdict, hist::recovery_verdict::linearized);
}

TEST(aux_necessity, proper_cas_survives_e_branch) {
  auto out = theory::run_e_branch(theory::cas_scenario(/*stripped=*/false));
  EXPECT_FALSE(out.violation) << out.detail;
  EXPECT_EQ(out.verdict, hist::recovery_verdict::fail);
}

TEST(aux_necessity, stripped_queue_violates_on_e_branch) {
  auto out = theory::run_e_branch(theory::queue_scenario(/*stripped=*/true));
  EXPECT_TRUE(out.violation)
      << "FIFO queue is doubly-perturbing (Lemma 8); stripping the auxiliary "
         "resets must break it";
  EXPECT_EQ(out.verdict, hist::recovery_verdict::linearized);
}

TEST(aux_necessity, proper_queue_survives_e_branch) {
  auto out = theory::run_e_branch(theory::queue_scenario(/*stripped=*/false));
  EXPECT_FALSE(out.violation) << out.detail;
  EXPECT_EQ(out.verdict, hist::recovery_verdict::fail);
}

TEST(aux_necessity, stripped_counter_violates_on_e_branch) {
  auto out = theory::run_e_branch(theory::counter_scenario(/*stripped=*/true));
  EXPECT_TRUE(out.violation) << "counter is doubly-perturbing (Lemma 5)";
  EXPECT_EQ(out.verdict, hist::recovery_verdict::linearized);
}

TEST(aux_necessity, proper_counter_survives_e_branch) {
  auto out = theory::run_e_branch(theory::counter_scenario(/*stripped=*/false));
  EXPECT_FALSE(out.violation) << out.detail;
  EXPECT_EQ(out.verdict, hist::recovery_verdict::fail);
}

TEST(aux_necessity, max_register_survives_e_branch_without_aux) {
  auto out = theory::run_e_branch(theory::max_register_scenario());
  EXPECT_FALSE(out.violation)
      << "Lemma 4: the max register is not doubly-perturbing, so no witness "
         "schedule can break it\n"
      << out.detail;
}

TEST(aux_necessity, d_branch_is_benign_for_all) {
  // Crash just before the first Opp returns: the stale response is the right
  // answer there — that is exactly why the two branches are indistinguishable
  // and auxiliary state is needed to tell them apart.
  for (bool stripped : {false, true}) {
    auto reg = theory::run_d_branch(theory::register_scenario(stripped));
    EXPECT_FALSE(reg.violation) << "register stripped=" << stripped << "\n"
                                << reg.detail;
    EXPECT_EQ(reg.verdict, hist::recovery_verdict::linearized);
  }
  auto mr = theory::run_d_branch(theory::max_register_scenario());
  EXPECT_FALSE(mr.violation) << mr.detail;
}

}  // namespace
