#include "fuzz/scenario_gen.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace detect::fuzz {

namespace {

using sim::next_rand;

/// Uniform pick in [lo, hi] (inclusive).
std::uint64_t pick(std::uint64_t& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + next_rand(rng) % (hi - lo + 1);
}

/// The registered family of a declared object, or nullopt for custom kinds
/// the registry does not know (mutations leave those ops alone).
std::optional<api::op_family> family_of(const api::scenario_object& o) {
  const api::object_registry& reg = api::object_registry::global();
  if (!reg.contains(o.kind)) return std::nullopt;
  return reg.at(o.kind).family;
}

/// The `idx`-th script entry (scripts are an ordered map, so this is
/// deterministic).
std::pair<const int, std::vector<hist::op_desc>>* script_at(
    api::scripted_scenario& s, std::uint64_t idx) {
  if (s.scripts.empty()) return nullptr;
  auto it = s.scripts.begin();
  std::advance(it, static_cast<long>(idx % s.scripts.size()));
  return &*it;
}

/// Has a draw pool been opted into (anything beyond its single default
/// entry)? Default pools draw nothing, which keeps the historical xorshift
/// stream — and every pinned campaign count — byte-identical.
bool pool_enabled(const std::vector<std::string>& pool, const char* dflt) {
  return !pool.empty() && (pool.size() > 1 || pool[0] != dflt);
}

/// Step horizon pct preemption points are drawn over: roughly the scenario's
/// expected run length (announce + op body per scripted op).
std::uint64_t pct_horizon(const api::scripted_scenario& s) {
  return 24 + 12 * static_cast<std::uint64_t>(s.total_ops());
}

/// Draw a pct budget in [1, pct_depth] and that many preemption points from
/// the shared stream.
sched::sched_policy draw_pct_policy(std::uint64_t& rng,
                                    const api::scripted_scenario& s,
                                    const gen_config& cfg) {
  sched::sched_policy p;
  p.strat = sched::strategy::pct;
  const std::uint64_t depth =
      pick(rng, 1, static_cast<std::uint64_t>(std::max(1, cfg.pct_depth)));
  const std::uint64_t horizon = pct_horizon(s);
  for (std::uint64_t i = 0; i < depth; ++i) {
    p.pct_points.push_back(1 + next_rand(rng) % horizon);
  }
  std::sort(p.pct_points.begin(), p.pct_points.end());
  p.pct_points.erase(
      std::unique(p.pct_points.begin(), p.pct_points.end()),
      p.pct_points.end());
  return p;
}

/// Draw one strategy from the pool (after the scripts, so pct horizons see
/// the final op count).
sched::sched_policy draw_sched_policy(std::uint64_t& rng,
                                      const api::scripted_scenario& s,
                                      const gen_config& cfg) {
  const std::string& name =
      cfg.sched_pool[next_rand(rng) % cfg.sched_pool.size()];
  std::optional<sched::strategy> strat = sched::strategy_from_name(name);
  if (!strat) {
    throw std::invalid_argument("scenario_gen: unknown schedule strategy '" +
                                name + "' in sched_pool");
  }
  if (*strat == sched::strategy::pct) return draw_pct_policy(rng, s, cfg);
  sched::sched_policy p;
  p.strat = *strat;
  return p;
}

nvm::persist_model draw_persist_model(std::uint64_t& rng,
                                      const gen_config& cfg) {
  const std::string& name =
      cfg.persist_pool[next_rand(rng) % cfg.persist_pool.size()];
  nvm::persist_model m = nvm::persist_model::strict;
  if (!nvm::persist_from_name(name, m)) {
    throw std::invalid_argument("scenario_gen: unknown persist model '" +
                                name + "' in persist_pool");
  }
  return m;
}

wmm::visibility_model draw_visibility_model(std::uint64_t& rng,
                                            const gen_config& cfg) {
  const std::string& name =
      cfg.visibility_pool[next_rand(rng) % cfg.visibility_pool.size()];
  wmm::visibility_model m = wmm::visibility_model::sc;
  if (!wmm::visibility_from_name(name, m)) {
    throw std::invalid_argument("scenario_gen: unknown visibility model '" +
                                name + "' in visibility_pool");
  }
  return m;
}

/// Draw a small scripted full-drain plan (0–3 points) over the scenario's
/// step horizon. Only called for tso/pso scenarios; under sc the plan stays
/// empty (enforce_contracts clears strays).
void draw_drain_points(std::uint64_t& rng, api::scripted_scenario& s) {
  const std::uint64_t n = pick(rng, 0, 3);
  for (std::uint64_t i = 0; i < n; ++i) {
    s.drain_steps.push_back(1 + next_rand(rng) % pct_horizon(s));
  }
  std::sort(s.drain_steps.begin(), s.drain_steps.end());
  s.drain_steps.erase(std::unique(s.drain_steps.begin(), s.drain_steps.end()),
                      s.drain_steps.end());
}

}  // namespace

std::uint64_t iteration_seed(std::uint64_t base_seed, std::uint64_t iter) {
  // splitmix64 of (base_seed + iter): consecutive iterations land far apart.
  std::uint64_t z = base_seed + iter * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

hist::op_desc random_op(std::uint64_t& rng, api::op_family family, int pid,
                        const gen_config& cfg) {
  const std::vector<hist::opcode>& alphabet = api::family_opcodes(family);
  hist::op_desc d;
  d.code = alphabet[next_rand(rng) % alphabet.size()];
  const hist::value_t v = static_cast<hist::value_t>(
      next_rand(rng) % static_cast<std::uint64_t>(cfg.value_range));
  using hist::opcode;
  switch (d.code) {
    case opcode::reg_write:
    case opcode::swap:
    case opcode::enq:
    case opcode::push:
    case opcode::max_write:
      d.a = v;
      break;
    case opcode::ctr_add:
      d.a = 1 + v % 3;  // small positive deltas
      break;
    case opcode::cas:
      // Narrow domain so successful CASes happen, but never old == new:
      // Algorithm 2's failed-CAS linearization argument needs every
      // successful CAS to change the value (see detectable_cas.hpp) — the
      // paper's own operation universe is Cas(i, i+1 mod |V|).
      d.a = v % 4;
      d.b = (d.a + 1 + static_cast<hist::value_t>(next_rand(rng) % 3)) % 4;
      break;
    case opcode::lock_try:
    case opcode::lock_release:
      d.a = pid;  // lock ops carry the caller's pid
      break;
    default:
      break;  // reads / deq / pop / tas take no arguments
  }
  return d;
}

void enforce_contracts(api::scripted_scenario& s) {
  const api::object_registry& reg = api::object_registry::global();
  // Drain points only mean something when there are store buffers to drain;
  // under sc a mutation that flipped visibility back must not leave a stale
  // plan behind (the v6 dump would suggest semantics the run does not have).
  if (s.visibility == wmm::visibility_model::sc) s.drain_steps.clear();
  bool all_detectable = true;
  bool any_lock = false;
  std::map<std::uint32_t, api::op_family> families;
  for (const api::scenario_object& o : s.objects) {
    if (!reg.contains(o.kind)) continue;  // custom kind: nothing to enforce
    const api::kind_info& info = reg.at(o.kind);
    families[o.id] = info.family;
    all_detectable = all_detectable && info.detectable;
    any_lock = any_lock || info.family == api::op_family::lock;
  }
  // Crash batteries are only meaningful when every object honors the
  // detectability contract; one plain_*/stripped_* object makes the whole
  // history uncheckable under crashes.
  if (!all_detectable) {
    s.crash_steps.clear();
    if (s.policy == core::runtime::fail_policy::retry) {
      s.policy = core::runtime::fail_policy::skip;
    }
  }
  // Migration plans and crash plans do not mix in *generated* scenarios:
  // the two script rounds would meet different shard-local crash schedules
  // on the two sides of the cross-backend equivalence diffs. Crashes win —
  // they are the harder adversary. Plans must also still fit the scenario's
  // shard count and declared objects (mutations shrink both).
  if (!s.crash_steps.empty()) {
    s.migrations.clear();
  } else {
    std::erase_if(s.migrations, [&s](const std::pair<std::uint32_t, int>& m) {
      return m.second >= std::max(1, s.shards) ||
             s.find_object(m.first) == nullptr;
    });
  }
  // Placement only means something with a shard knob; mutations that shrink
  // the shard count (or drop objects) must not leave pins pointing at
  // worlds or declarations that no longer exist — replay would reject the
  // policy at build time.
  if (s.shards <= 1) {
    s.placement = {};
    s.migrations.clear();
  } else if (s.placement.kind == api::placement_kind::pinned) {
    std::erase_if(s.placement.pins,
                  [&s](const std::pair<const std::uint32_t, int>& pin) {
                    return pin.second < 0 || pin.second >= s.shards ||
                           s.find_object(pin.first) == nullptr;
                  });
  } else {
    s.placement.pins.clear();
  }
  // The recoverable lock's usage contract (rlock.hpp): under skip, a
  // crash-dropped release leaves holding-state uncertain, so crashy lock
  // scenarios must retry ...
  if (any_lock && !s.crash_steps.empty()) {
    s.policy = core::runtime::fail_policy::retry;
  }
  for (auto& [pid, ops] : s.scripts) {
    std::map<std::uint32_t, bool> may_hold;  // per lock object
    for (hist::op_desc& d : ops) {
      if (d.code == hist::opcode::cas && d.a == d.b) d.b = d.a + 1;
      auto it = families.find(d.object);
      if (it == families.end() || it->second != api::op_family::lock) continue;
      d.a = pid;  // lock ops carry the caller's pid
      // ... and no process may re-invoke try_lock on an object it may still
      // hold; repair by turning the offending try into a release.
      if (d.code == hist::opcode::lock_try) {
        if (may_hold[d.object]) {
          d.code = hist::opcode::lock_release;
        } else {
          may_hold[d.object] = true;
          continue;
        }
      }
      if (d.code == hist::opcode::lock_release) may_hold[d.object] = false;
    }
    // A migration plan replays the scripts a second time, so every lock
    // script must end not-holding or round two's first try_lock would
    // re-invoke while possibly held; balance with a trailing release.
    if (!s.migrations.empty()) {
      for (const auto& [id, held] : may_hold) {
        if (held) {
          ops.push_back({id, hist::opcode::lock_release,
                         static_cast<hist::value_t>(pid), 0, 0});
        }
      }
    }
  }
}

api::scripted_scenario generate(std::uint64_t seed, const std::string& kind,
                                const gen_config& cfg) {
  const api::object_registry& reg = api::object_registry::global();
  std::uint64_t rng = seed | 1;

  api::scripted_scenario s;
  s.sched_seed = next_rand(rng);
  s.nprocs = static_cast<int>(pick(
      rng, static_cast<std::uint64_t>(cfg.min_procs),
      static_cast<std::uint64_t>(std::max(cfg.min_procs, cfg.max_procs))));

  // Objects: the primary kind is object 0; extras draw their kinds from the
  // pool under contiguous ids (on the sharded backend id % shards is the
  // routing, so contiguous ids spread objects across shards).
  s.objects.push_back({0, kind, {}});
  if (!cfg.object_kind_pool.empty() && cfg.max_objects > 1) {
    const int lo = std::max(1, cfg.min_objects);
    const int hi = std::max(lo, cfg.max_objects);
    int n = 1;
    if (lo > 1) {
      n = static_cast<int>(pick(rng, static_cast<std::uint64_t>(lo),
                                static_cast<std::uint64_t>(hi)));
    } else if (next_rand(rng) % 2 == 0) {
      n = static_cast<int>(pick(rng, 2, static_cast<std::uint64_t>(hi)));
    }
    for (std::uint32_t i = 1; i < static_cast<std::uint32_t>(n); ++i) {
      const std::string& extra =
          cfg.object_kind_pool[next_rand(rng) % cfg.object_kind_pool.size()];
      s.objects.push_back({i, extra, {}});
    }
  }
  bool all_detectable = true;
  for (const api::scenario_object& o : s.objects) {
    all_detectable = all_detectable && reg.at(o.kind).detectable;
  }

  const bool with_crashes = cfg.crashes && all_detectable;
  if (with_crashes && cfg.max_crashes > 0) {
    std::uint64_t n = pick(rng, 0, static_cast<std::uint64_t>(cfg.max_crashes));
    for (std::uint64_t c = 0; c < n; ++c) {
      s.crash_steps.push_back(next_rand(rng) % cfg.max_crash_step);
    }
    std::sort(s.crash_steps.begin(), s.crash_steps.end());
  }
  // retry re-attempts recovery-failed ops — only meaningful when recovery
  // verdicts are trustworthy, i.e. for detectable kinds.
  if (cfg.allow_retry && all_detectable && next_rand(rng) % 4 == 0) {
    s.policy = core::runtime::fail_policy::retry;
  }
  if (cfg.allow_shared_cache && next_rand(rng) % 4 == 0) {
    s.shared_cache = true;
  }
  // Shard-count knob: with backend == single it arms the single-vs-sharded
  // equivalence diff (diff_sharded replays the scenario on both backends);
  // a quarter of the sharded draws additionally run on the sharded backend
  // directly, exercising the cross-shard routing and merged-log paths as the
  // scenario's own execution.
  if (cfg.max_shards > 1) {
    const int lo = std::max(1, cfg.min_shards);
    const int hi = std::max(lo, cfg.max_shards);
    if (lo > 1) {
      s.shards = static_cast<int>(
          pick(rng, static_cast<std::uint64_t>(lo),
               static_cast<std::uint64_t>(hi)));
    } else if (next_rand(rng) % 2 == 0) {
      s.shards = static_cast<int>(
          pick(rng, 2, static_cast<std::uint64_t>(hi)));
    }
    if (cfg.allow_sharded_backend && s.shards > 1 && next_rand(rng) % 4 == 0) {
      s.backend = api::exec_backend::sharded;
    }
  }
  // Placement knob: sharded routing is a policy, not an accident of object
  // ids — scenarios carry one of the four built-ins so the placement-
  // equivalence diff and the sharded backend's routing paths both get
  // exercised. Drawn (or pinned via cfg.placement) only when the scenario
  // has a shard knob at all; the draws stay in the shared xorshift stream.
  if (s.shards > 1 && cfg.placement != "none") {
    api::placement_kind kind = api::placement_kind::modulo;
    if (cfg.placement.empty()) {
      switch (next_rand(rng) % 4) {
        case 0: kind = api::placement_kind::modulo; break;
        case 1: kind = api::placement_kind::hash; break;
        case 2: kind = api::placement_kind::range; break;
        default: kind = api::placement_kind::pinned; break;
      }
    } else {
      kind = api::placement_from_name(cfg.placement);
    }
    s.placement.kind = kind;
    if (kind == api::placement_kind::pinned) {
      for (const api::scenario_object& o : s.objects) {
        s.placement.pins[o.id] = static_cast<int>(
            next_rand(rng) % static_cast<std::uint64_t>(s.shards));
      }
    }
  }
  // Migration knob: crash-free sharded-backend scenarios run their scripts
  // twice with a live object migration in between (enforce_contracts drops
  // plans that conflict with later mutations).
  if (cfg.allow_migrations && s.backend == api::exec_backend::sharded &&
      s.shards > 1 && s.crash_steps.empty() && next_rand(rng) % 4 == 0) {
    const std::uint64_t moves = pick(rng, 1, 2);
    for (std::uint64_t m = 0; m < moves; ++m) {
      const api::scenario_object& target =
          s.objects[next_rand(rng) % s.objects.size()];
      s.migrations.emplace_back(
          target.id,
          static_cast<int>(next_rand(rng) %
                           static_cast<std::uint64_t>(s.shards)));
    }
  }

  for (int pid = 0; pid < s.nprocs; ++pid) {
    std::uint64_t len = pick(
        rng, static_cast<std::uint64_t>(cfg.min_ops),
        static_cast<std::uint64_t>(std::max(cfg.min_ops, cfg.max_ops)));
    std::vector<hist::op_desc> ops;
    ops.reserve(len);
    // Lock family: an unreleased try_lock is pending, per lock object.
    std::map<std::uint32_t, bool> may_hold;
    for (std::uint64_t i = 0; i < len; ++i) {
      const api::scenario_object& target =
          s.objects[next_rand(rng) % s.objects.size()];
      const api::op_family family = reg.at(target.kind).family;
      hist::op_desc d;
      if (family == api::op_family::lock && may_hold[target.id]) {
        d.code = hist::opcode::lock_release;
        d.a = pid;
      } else {
        d = random_op(rng, family, pid, cfg);
      }
      if (family == api::op_family::lock) {
        may_hold[target.id] = d.code == hist::opcode::lock_try;
      }
      d.object = target.id;
      ops.push_back(d);
    }
    s.scripts[pid] = std::move(ops);
  }
  // Schedule/persistency draws come LAST (pct horizons want the final op
  // count) and only when the pools are opted in — default pools draw
  // nothing, so historical (seed, kind) scenarios stay byte-identical.
  if (pool_enabled(cfg.sched_pool, "uniform_random")) {
    s.sched = draw_sched_policy(rng, s, cfg);
  }
  if (pool_enabled(cfg.persist_pool, "strict")) {
    s.persist = draw_persist_model(rng, cfg);
  }
  if (pool_enabled(cfg.visibility_pool, "sc")) {
    s.visibility = draw_visibility_model(rng, cfg);
    if (s.visibility != wmm::visibility_model::sc) draw_drain_points(rng, s);
  }
  enforce_contracts(s);
  return s;
}

api::scripted_scenario mutate(const api::scripted_scenario& base,
                              std::uint64_t& rng, const gen_config& cfg) {
  api::scripted_scenario s = base;
  // Extra mutation cases exist only when their pools are opted in, so the
  // default-config case distribution (and every pinned campaign count built
  // on it) is untouched.
  const bool sched_on = pool_enabled(cfg.sched_pool, "uniform_random");
  const bool persist_on = pool_enabled(cfg.persist_pool, "strict");
  const bool vis_on = pool_enabled(cfg.visibility_pool, "sc");
  const std::uint64_t cases =
      13 + (sched_on ? 2 : 0) + (persist_on ? 1 : 0) + (vis_on ? 2 : 0);
  // Draw mutations until one applies (bounded — a scenario with nothing to
  // edit in some dimension just falls through to a knob flip eventually).
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool applied = true;
    const std::uint64_t c = next_rand(rng) % cases;
    if (c >= 13) {
      // Extra cases in fixed order: sched redraw, pct perturb, persist
      // flip, visibility redraw, drain-point edit — each present only when
      // its pool is opted in, so indices shift but never reorder.
      const std::uint64_t extra = c - 13;
      const std::uint64_t persist_at = sched_on ? 2 : 0;
      const std::uint64_t vis_at = persist_at + (persist_on ? 1 : 0);
      if (sched_on && extra == 0) {
        // Re-draw the whole schedule policy from the pool.
        s.sched = draw_sched_policy(rng, s, cfg);
      } else if (sched_on && extra == 1) {
        // Perturb a pct budget: add a point or drop one.
        if (s.sched.strat != sched::strategy::pct) {
          applied = false;
        } else if (s.sched.pct_points.empty() || next_rand(rng) % 2 == 0) {
          s.sched.pct_points.push_back(1 + next_rand(rng) % pct_horizon(s));
          std::sort(s.sched.pct_points.begin(), s.sched.pct_points.end());
          s.sched.pct_points.erase(std::unique(s.sched.pct_points.begin(),
                                               s.sched.pct_points.end()),
                                   s.sched.pct_points.end());
        } else {
          s.sched.pct_points.erase(
              s.sched.pct_points.begin() +
              static_cast<long>(next_rand(rng) % s.sched.pct_points.size()));
        }
      } else if (persist_on && extra == persist_at) {
        // persist flip
        s.persist = s.persist == nvm::persist_model::strict
                        ? nvm::persist_model::buffered
                        : nvm::persist_model::strict;
      } else if (vis_on && extra == vis_at) {
        // Re-draw visibility (with a fresh drain plan for a non-sc draw;
        // enforce_contracts clears the plan when the draw lands on sc).
        s.visibility = draw_visibility_model(rng, cfg);
        s.drain_steps.clear();
        if (s.visibility != wmm::visibility_model::sc) {
          draw_drain_points(rng, s);
        }
      } else {
        // Perturb the drain plan: add a point or drop one. Only meaningful
        // with live store buffers.
        if (s.visibility == wmm::visibility_model::sc) {
          applied = false;
        } else if (s.drain_steps.empty() || next_rand(rng) % 2 == 0) {
          s.drain_steps.push_back(1 + next_rand(rng) % pct_horizon(s));
          std::sort(s.drain_steps.begin(), s.drain_steps.end());
          s.drain_steps.erase(
              std::unique(s.drain_steps.begin(), s.drain_steps.end()),
              s.drain_steps.end());
        } else {
          s.drain_steps.erase(
              s.drain_steps.begin() +
              static_cast<long>(next_rand(rng) % s.drain_steps.size()));
        }
      }
      if (applied) break;
      continue;
    }
    switch (c) {
      case 0:
        s.sched_seed = next_rand(rng);
        break;
      case 1: {
        // Honor the configured floor: a --shards-min 2 campaign promises the
        // equivalence diff on every iteration, mutants included.
        const int lo = std::max(1, cfg.min_shards);
        const int hi = std::max(lo, cfg.max_shards);
        s.shards = static_cast<int>(
            pick(rng, static_cast<std::uint64_t>(lo),
                 static_cast<std::uint64_t>(hi)));
        if (s.backend == api::exec_backend::sharded && s.shards < 2) {
          s.backend = api::exec_backend::single;
        }
        break;
      }
      case 2:  // backend flip
        if (s.backend == api::exec_backend::single &&
            cfg.allow_sharded_backend) {
          s.backend = api::exec_backend::sharded;
          if (s.shards < 2) {
            s.shards = static_cast<int>(pick(rng, 2, 4));
          }
        } else if (s.backend == api::exec_backend::sharded) {
          s.backend = api::exec_backend::single;
        } else {
          applied = false;
        }
        break;
      case 3:
        if (s.policy == core::runtime::fail_policy::skip && cfg.allow_retry) {
          s.policy = core::runtime::fail_policy::retry;
        } else {
          s.policy = core::runtime::fail_policy::skip;
        }
        break;
      case 4:
        if (cfg.allow_shared_cache || s.shared_cache) {
          s.shared_cache = !s.shared_cache;
        } else {
          applied = false;
        }
        break;
      case 5:  // add a crash point
        if (cfg.crashes &&
            s.crash_steps.size() <
                static_cast<std::size_t>(std::max(0, cfg.max_crashes))) {
          s.crash_steps.push_back(next_rand(rng) % cfg.max_crash_step);
          std::sort(s.crash_steps.begin(), s.crash_steps.end());
        } else {
          applied = false;
        }
        break;
      case 6:  // drop a crash point
        if (!s.crash_steps.empty()) {
          s.crash_steps.erase(s.crash_steps.begin() +
                              static_cast<long>(next_rand(rng) %
                                                s.crash_steps.size()));
        } else {
          applied = false;
        }
        break;
      case 7: {  // add an object (plus a few ops driving it)
        if (cfg.object_kind_pool.empty() ||
            s.objects.size() >=
                static_cast<std::size_t>(std::max(1, cfg.max_objects))) {
          applied = false;
          break;
        }
        const std::string& kind =
            cfg.object_kind_pool[next_rand(rng) % cfg.object_kind_pool.size()];
        std::uint32_t id = s.add_object(kind);
        if (auto* entry = script_at(s, next_rand(rng))) {
          const api::op_family family =
              api::object_registry::global().at(kind).family;
          std::uint64_t n = pick(rng, 1, 2);
          for (std::uint64_t i = 0; i < n; ++i) {
            hist::op_desc d = random_op(rng, family, entry->first, cfg);
            d.object = id;
            entry->second.push_back(d);
          }
        }
        break;
      }
      case 8: {  // drop a non-primary object and its ops
        if (s.objects.size() < 2 ||
            s.objects.size() <=
                static_cast<std::size_t>(std::max(1, cfg.min_objects))) {
          applied = false;
          break;
        }
        std::size_t idx = 1 + next_rand(rng) % (s.objects.size() - 1);
        std::uint32_t id = s.objects[idx].id;
        s.objects.erase(s.objects.begin() + static_cast<long>(idx));
        for (auto& [pid, ops] : s.scripts) {
          std::erase_if(ops,
                        [id](const hist::op_desc& d) { return d.object == id; });
        }
        break;
      }
      case 9: {  // retarget one op to another same-family object
        auto* entry = script_at(s, next_rand(rng));
        if (entry == nullptr || entry->second.empty() || s.objects.size() < 2) {
          applied = false;
          break;
        }
        hist::op_desc& d =
            entry->second[next_rand(rng) % entry->second.size()];
        const api::scenario_object* from = s.find_object(d.object);
        if (from == nullptr) {
          applied = false;
          break;
        }
        std::optional<api::op_family> fam = family_of(*from);
        std::vector<std::uint32_t> candidates;
        for (const api::scenario_object& o : s.objects) {
          if (o.id != d.object && fam.has_value() && family_of(o) == fam) {
            candidates.push_back(o.id);
          }
        }
        if (candidates.empty()) {
          applied = false;
          break;
        }
        d.object = candidates[next_rand(rng) % candidates.size()];
        break;
      }
      case 10: {  // placement flip
        if (s.shards <= 1 || cfg.placement == "none" ||
            (!cfg.placement.empty() &&
             s.placement.kind == api::placement_from_name(cfg.placement))) {
          applied = false;
          break;
        }
        api::placement_policy next;
        switch (next_rand(rng) % 4) {
          case 0: next.kind = api::placement_kind::modulo; break;
          case 1: next.kind = api::placement_kind::hash; break;
          case 2: next.kind = api::placement_kind::range; break;
          default: {
            next.kind = api::placement_kind::pinned;
            for (const api::scenario_object& o : s.objects) {
              next.pins[o.id] = static_cast<int>(
                  next_rand(rng) % static_cast<std::uint64_t>(s.shards));
            }
            break;
          }
        }
        if (next == s.placement) {
          applied = false;
          break;
        }
        s.placement = std::move(next);
        break;
      }
      case 11: {  // migration plan: add a move or drop one
        const bool can_add = cfg.allow_migrations &&
                             s.backend == api::exec_backend::sharded &&
                             s.shards > 1 && s.crash_steps.empty() &&
                             s.migrations.size() < 3 && !s.objects.empty();
        if (can_add && (s.migrations.empty() || next_rand(rng) % 2 == 0)) {
          const api::scenario_object& target =
              s.objects[next_rand(rng) % s.objects.size()];
          s.migrations.emplace_back(
              target.id,
              static_cast<int>(next_rand(rng) %
                               static_cast<std::uint64_t>(s.shards)));
        } else if (!s.migrations.empty()) {
          s.migrations.erase(
              s.migrations.begin() +
              static_cast<long>(next_rand(rng) % s.migrations.size()));
        } else {
          applied = false;
        }
        break;
      }
      default: {  // rewrite or append an op on a random target
        auto* entry = script_at(s, next_rand(rng));
        if (entry == nullptr || s.objects.empty()) {
          applied = false;
          break;
        }
        const api::scenario_object& target =
            s.objects[next_rand(rng) % s.objects.size()];
        std::optional<api::op_family> fam = family_of(target);
        if (!fam.has_value()) {
          applied = false;
          break;
        }
        hist::op_desc d = random_op(rng, *fam, entry->first, cfg);
        d.object = target.id;
        if (entry->second.empty() || next_rand(rng) % 2 == 0) {
          entry->second.push_back(d);
        } else {
          entry->second[next_rand(rng) % entry->second.size()] = d;
        }
        break;
      }
    }
    if (applied) break;
  }
  enforce_contracts(s);
  return s;
}

}  // namespace detect::fuzz
