// Translation unit anchoring the core library target and guaranteeing every
// public header compiles standalone.
#include "core/announce.hpp"
#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/max_register.hpp"
#include "core/nrl.hpp"
#include "core/object.hpp"
#include "core/queue.hpp"
#include "core/rlock.hpp"
#include "core/rmw.hpp"
#include "core/runtime.hpp"
#include "core/stack.hpp"

namespace detect::core {

// Lock-freedom sanity for Algorithm 2's 16-byte cell is checked at runtime by
// benches (std::atomic<cas_word> may fall back to libatomic's locks without
// -mcx16; the simulator serializes accesses, so correctness is unaffected).
bool cas_word_is_lock_free() {
  std::atomic<cas_word> probe{};
  return probe.is_lock_free();
}

}  // namespace detect::core
