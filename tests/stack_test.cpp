// Detectable durable stack (Algorithm 2's flip vector on the head pointer).
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

hist::op_desc op_push(hist::value_t v) { return {0, hist::opcode::push, v, 0, 0}; }
hist::op_desc op_pop() { return {0, hist::opcode::pop, 0, 0, 0}; }

scenario_config stack_scenario(int nprocs,
                               std::map<int, std::vector<hist::op_desc>> scripts,
                               core::runtime::fail_policy policy =
                                   core::runtime::fail_policy::skip) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.policy = policy;
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_stack>(nprocs, f.board, 64,
                                                            f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::stack_spec()); };
  return cfg;
}

TEST(detectable_stack, sequential_lifo) {
  auto cfg = stack_scenario(
      1, {{0, {op_push(1), op_push(2), op_pop(), op_pop(), op_pop()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_stack, empty_pop) {
  auto cfg = stack_scenario(1, {{0, {op_pop(), op_push(5), op_pop(), op_pop()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_stack, rejects_too_many_processes) {
  sim_fixture f(1);
  EXPECT_THROW(core::detectable_stack(33, f.board, 8, f.w.domain()),
               std::invalid_argument);
}

TEST(detectable_stack, concurrent_push_pop_many_seeds) {
  auto cfg = stack_scenario(3, {
                                   {0, {op_push(1), op_push(2)}},
                                   {1, {op_pop(), op_push(3)}},
                                   {2, {op_pop(), op_pop()}},
                               });
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_stack, mid_stack_pop_is_impossible) {
  // Regression guard for the LIFO race: a pop that read an old head must not
  // linearize against a deeper node once pushes landed above it. The packed
  // head-CAS makes the stale attempt fail; the spec check would flag any
  // violation across seeds.
  auto cfg = stack_scenario(3, {
                                   {0, {op_push(1), op_push(2), op_push(3)}},
                                   {1, {op_pop(), op_pop()}},
                                   {2, {op_push(9), op_pop()}},
                               });
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_stack, crash_sweep_push) {
  auto cfg = stack_scenario(2, {
                                   {0, {op_push(1), op_push(2)}},
                                   {1, {op_pop()}},
                               });
  crash_sweep(cfg, 3);
}

TEST(detectable_stack, crash_sweep_pop) {
  auto cfg = stack_scenario(2, {
                                   {0, {op_push(1), op_pop()}},
                                   {1, {op_pop()}},
                               });
  crash_sweep(cfg, 7);
}

TEST(detectable_stack, crash_pair_sweep) {
  auto cfg = stack_scenario(2,
                            {
                                {0, {op_push(1), op_pop()}},
                                {1, {op_push(2)}},
                            },
                            core::runtime::fail_policy::retry);
  crash_pair_sweep(cfg, 11, /*stride=*/3);
}

TEST(detectable_stack, crash_fuzz_retry_exactly_once) {
  auto cfg = stack_scenario(3,
                            {
                                {0, {op_push(1), op_push(2)}},
                                {1, {op_pop(), op_push(3)}},
                                {2, {op_pop(), op_pop()}},
                            },
                            core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 150, 2);
}

TEST(detectable_stack, pop_recovery_returns_persisted_value) {
  // Crash a pop at every step; whenever recovery says linearized, the value
  // must match what the spec expects — covered by the checker; additionally
  // no run may lose or duplicate the single pushed value.
  auto cfg = stack_scenario(2,
                            {
                                {0, {op_push(42), op_pop()}},
                                {1, {op_pop()}},
                            },
                            core::runtime::fail_policy::retry);
  crash_sweep(cfg, 19);
}

class stack_property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(stack_property, lifo_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = stack_scenario(2, {
                                   {0, {op_push(1), op_pop()}},
                                   {1, {op_push(2), op_pop()}},
                               });
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 87178291);
}

INSTANTIATE_TEST_SUITE_P(sweep, stack_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
