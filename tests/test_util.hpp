// Shared helpers for the test suites, built on the detect::api façade.
//
// A `scenario` is a replayable recipe: process count, fail policy, and a
// setup function that creates objects through typed handles and installs the
// client scripts. The drivers below instantiate a fresh harness per run:
//   * run_scenario: one scripted run under a seeded scheduler and crash plan,
//     checked for durable linearizability + detectability;
//   * crash_sweep: re-run the same scenario with a crash injected at every
//     possible step index (the deterministic "crash everywhere" battery the
//     paper's correctness lemmas are exercised with);
//   * crash_pair_sweep / crash_fuzz: two-crash and randomized batteries.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/api.hpp"

namespace detect::test {

/// pid → script, the façade's scripting currency.
using scripts = std::map<int, std::vector<hist::op_desc>>;

struct scenario {
  int nprocs = 2;
  core::runtime::fail_policy policy = core::runtime::fail_policy::skip;
  /// Shared-cache memory model (with the §6 auto-persist transform unless
  /// disabled); default is the paper's private-cache model.
  bool shared_cache = false;
  bool auto_persist = true;
  /// Create objects via typed handles and install scripts.
  std::function<void(api::harness&)> setup;
};

struct run_outcome {
  sim::run_report report;
  hist::check_result check;
  std::string log_text;
};

inline api::harness make_harness(const scenario& cfg, std::uint64_t sched_seed,
                                 std::vector<std::uint64_t> crash_steps = {}) {
  api::harness::builder b;
  b.procs(cfg.nprocs).fail_policy(cfg.policy).seed(sched_seed).crash_at(
      std::move(crash_steps));
  if (cfg.shared_cache) b.shared_cache(cfg.auto_persist);
  api::harness h = b.build();
  cfg.setup(h);
  return h;
}

inline run_outcome run_scenario(const scenario& cfg, std::uint64_t sched_seed,
                                std::vector<std::uint64_t> crash_steps = {}) {
  api::harness h = make_harness(cfg, sched_seed, std::move(crash_steps));
  run_outcome out;
  out.report = h.run();
  out.check = h.check();
  out.log_text = h.log_text();
  return out;
}

/// Single-object scenario: instantiate `kind` from the registry and script
/// it through the typed handle `H` (e.g. one_object<api::reg>("reg", ...)).
template <typename H>
scenario one_object(const std::string& kind, int nprocs,
                    std::function<scripts(H)> make_scripts,
                    core::runtime::fail_policy policy =
                        core::runtime::fail_policy::skip,
                    api::object_params params = {}) {
  scenario cfg;
  cfg.nprocs = nprocs;
  cfg.policy = policy;
  cfg.setup = [kind, make_scripts, params](api::harness& h) {
    H handle(h.add(kind, params));
    for (auto& [pid, ops] : make_scripts(handle)) h.script(pid, std::move(ops));
  };
  return cfg;
}

/// Crash at every step index of the scenario (one crash per run), asserting
/// correctness each time. Returns the number of runs performed.
inline int crash_sweep(const scenario& cfg, std::uint64_t sched_seed) {
  run_outcome base = run_scenario(cfg, sched_seed);
  EXPECT_FALSE(base.report.hit_step_limit);
  EXPECT_TRUE(base.check.ok) << base.check.message;
  int runs = 1;
  for (std::uint64_t k = 0; k < base.report.steps; ++k) {
    run_outcome out = run_scenario(cfg, sched_seed, {k});
    EXPECT_FALSE(out.report.hit_step_limit);
    EXPECT_TRUE(out.check.ok)
        << "crash at step " << k << ":\n"
        << out.check.message;
    ++runs;
    if (::testing::Test::HasFailure()) break;
  }
  return runs;
}

/// Two crashes at every pair of step indices (strided to bound the quadratic
/// blowup): exercises crash-during-recovery and recovery-then-crash-again.
inline void crash_pair_sweep(const scenario& cfg, std::uint64_t seed,
                             std::uint64_t stride = 3) {
  run_outcome base = run_scenario(cfg, seed);
  ASSERT_TRUE(base.check.ok) << base.check.message;
  for (std::uint64_t k1 = 0; k1 < base.report.steps; k1 += stride) {
    for (std::uint64_t k2 = k1; k2 < base.report.steps + 10; k2 += stride) {
      run_outcome out = run_scenario(cfg, seed, {k1, k2});
      EXPECT_FALSE(out.report.hit_step_limit);
      EXPECT_TRUE(out.check.ok) << "crashes at steps " << k1 << "," << k2
                                << ":\n"
                                << out.check.message;
      if (::testing::Test::HasFailure()) return;
    }
  }
}

/// Random schedules with random crash placements; `seeds` independent runs.
inline void crash_fuzz(const scenario& cfg, int seeds, int max_crashes,
                       std::uint64_t base_seed = 0x5eed) {
  for (int s = 0; s < seeds; ++s) {
    std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s) * 7919;
    // Derive pseudo-random crash steps from the seed.
    std::uint64_t rng = seed | 1;
    std::vector<std::uint64_t> crashes;
    for (int c = 0; c < max_crashes; ++c) {
      crashes.push_back(sim::next_rand(rng) % 120);
    }
    run_outcome out = run_scenario(cfg, seed, crashes);
    EXPECT_FALSE(out.report.hit_step_limit);
    EXPECT_TRUE(out.check.ok) << "seed " << seed << ":\n" << out.check.message;
    if (::testing::Test::HasFailure()) return;
  }
}

/// Scan the recorded history for the last recovery verdict of `pid`.
inline hist::recovery_verdict last_verdict(const std::vector<hist::event>& events,
                                           int pid,
                                           hist::value_t* value = nullptr) {
  hist::recovery_verdict verdict = hist::recovery_verdict::none;
  for (const auto& e : events) {
    if (e.kind == hist::event_kind::recover_result && e.pid == pid) {
      verdict = e.verdict;
      if (value != nullptr) *value = e.value;
    }
  }
  return verdict;
}

}  // namespace detect::test
