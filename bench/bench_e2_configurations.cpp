// E2 — Theorem 1 / Figure 1: reachable memory-distinct configurations of
// Algorithm 2 versus the 2^N − 1 lower bound.
//
// Paper claim: every obstruction-free detectable CAS implementation over a
// domain of ≥ N values has ≥ 2^N − 1 reachable configurations that are
// pairwise distinct in shared memory (hence ≥ N − 1 shared bits), so
// Algorithm 2's Θ(N) extra bits are asymptotically optimal.
//
// Measured here on Algorithm 2 itself:
//   * full-model BFS (ops + crashes + recoveries) for small N — exact counts,
//   * quiescent-graph BFS for larger N (validated against the full model),
//   * a constructive Gray-code schedule witnessing 2^N distinct shared
//     states on the implementation.
#include "bench_util.hpp"
#include "theory/cas_model.hpp"

int main() {
  using namespace detect;
  using bench::fmt_u;
  using bench::row;
  using bench::rule;

  std::printf(
      "E2 — Theorem 1: reachable shared-memory configurations of Algorithm 2\n"
      "(value domain size N+1, operation universe Cas(i, i+1 mod |V|))\n\n");

  std::printf("(a) Exhaustive BFS over the full model (small N)\n");
  row({"N", "full configs", "shared cfgs", "bound 2^N-1", "complete"});
  rule(5);
  for (int n = 1; n <= (bench::smoke() ? 2 : 3); ++n) {
    auto c = theory::bfs_configurations(n, n + 1, 3'000'000);
    row({std::to_string(n), fmt_u(c.total_configs), fmt_u(c.shared_configs),
         fmt_u(theory::theorem1_bound(n)), c.complete ? "yes" : "capped"});
  }

  std::printf("\n(b) Quiescent-graph reachability (scales to larger N)\n");
  row({"N", "shared cfgs", "bound 2^N-1", "ratio"});
  rule(4);
  for (int n : bench::sweep<int>({1, 2, 4, 6, 8, 10, 12, 16, 20}, 4)) {
    auto c = theory::quiescent_reachability(n, n + 1);
    double ratio = static_cast<double>(c.shared_configs) /
                   static_cast<double>(theory::theorem1_bound(n));
    row({std::to_string(n), fmt_u(c.shared_configs),
         fmt_u(theory::theorem1_bound(n)), bench::fmt(ratio, 2)});
  }

  std::printf(
      "\n(c) Constructive witness: Gray-code schedule of solo successful CAS\n"
      "    operations driving the implementation through distinct states\n");
  row({"N", "visited", "bound 2^N-1", "meets bound"});
  rule(4);
  for (int n : bench::sweep<int>({1, 2, 4, 6, 8, 12, 16, 20}, 4)) {
    std::uint64_t visited = theory::gray_code_walk(n, n + 1);
    row({std::to_string(n), fmt_u(visited), fmt_u(theory::theorem1_bound(n)),
         visited >= theory::theorem1_bound(n) ? "yes" : "NO"});
  }

  std::printf(
      "\nShape check: every row meets the 2^N - 1 bound; the quiescent count\n"
      "is exactly |V| * 2^N = (N+1) * 2^N, confirming Algorithm 2 pays the\n"
      "lower bound and no more (its vector is exactly N bits).\n");
  return 0;
}
