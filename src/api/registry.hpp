// object_registry — the opcode-dispatch registry of the detect::api façade.
//
// Maps kind strings ("reg", "cas", "stripped_queue", "attiya_reg", ...) to
// factories producing detectable objects plus the matching sequential spec
// and opcode family. Scenarios, fuzzers, and future sharded or multi-backend
// runtimes instantiate any object in the suite by name; the parameterized
// registry test in tests/api_test.cpp qualifies every kind end-to-end.
//
// Built-in kinds (registered at construction):
//   core       reg cas counter swap tas queue stack max_reg lock nrl_reg
//   baselines  attiya_reg bendavid_cas plain_reg plain_cas plain_counter
//   stripped   stripped_{reg,cas,counter,swap,tas,queue,stack}
//              (Theorem-2 counterexamples: auxiliary state withheld)
// Additional kinds may be added at runtime with `add` — factories only see
// the generic object_env, so externally defined objects plug in the same way.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/handles.hpp"
#include "core/announce.hpp"
#include "history/specs.hpp"
#include "nvm/pmem.hpp"

namespace detect::api {

/// Construction-time knobs shared by every kind; kinds ignore what they do
/// not need (e.g. `capacity` only matters to the pooled queue/stack).
struct object_params {
  hist::value_t init = 0;
  std::size_t capacity = 64;
};

/// What a factory gets to build from — deliberately world-free so the same
/// registry serves the simulated harness and the free-running arena.
struct object_env {
  int nprocs;
  core::announcement_board& board;
  nvm::pmem_domain& domain;
};

/// A factory's product. Wrapper kinds (stripped_*, nrl_reg) put the inner
/// object first and the wrapper last; `primary()` is what gets registered
/// with the runtime, the rest just needs to stay alive as long as it does.
struct created_object {
  std::vector<std::unique_ptr<core::detectable_object>> owned;

  core::detectable_object& primary() const { return *owned.back(); }
};

struct kind_info {
  std::string name;
  op_family family = op_family::reg;
  /// True for kinds that honor the detectability contract under crashes.
  /// False for the plain_* baselines (recovery always fails) and the
  /// stripped_* counterexamples (Theorem 2: verdicts can be wrong) — crash
  /// batteries must skip these; crash-free checking is still valid.
  bool detectable = true;
  std::function<created_object(const object_env&, const object_params&)> make;
  std::function<std::unique_ptr<hist::spec>(const object_params&)> make_spec;
};

class object_registry {
 public:
  /// The process-wide registry preloaded with every built-in kind.
  static object_registry& global();

  /// Register a new kind. Throws std::invalid_argument on a duplicate name.
  void add(kind_info info);

  bool contains(const std::string& kind) const;
  const kind_info& at(const std::string& kind) const;
  /// All kind names, sorted.
  std::vector<std::string> kinds() const;

  created_object create(const std::string& kind, const object_env& env,
                        const object_params& params = {}) const;
  std::unique_ptr<hist::spec> make_spec(const std::string& kind,
                                        const object_params& params = {}) const;

  object_registry();  // starts with the built-in kinds

 private:
  std::map<std::string, kind_info> kinds_;
};

/// A short single-process script exercising an opcode family — the smoke
/// workload the registry qualification test runs against every kind.
std::vector<hist::op_desc> smoke_script(op_family family, std::uint32_t object_id,
                                        int pid);

}  // namespace detect::api
