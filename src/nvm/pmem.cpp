#include "nvm/pmem.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace detect::nvm {

bool persistent_base::image_clean() const {
  const std::size_t n = image_size();
  if (n <= 64) {
    std::uint8_t cur[64];
    std::uint8_t persisted[64];
    save_raw(cur, persisted);
    return std::memcmp(cur, persisted, n) == 0;
  }
  std::vector<std::uint8_t> cur(n);
  std::vector<std::uint8_t> persisted(n);
  save_raw(cur.data(), persisted.data());
  return cur == persisted;
}

cell_image persistent_base::save_image() const {
  cell_image img;
  img.cur.resize(image_size());
  img.persisted.resize(image_size());
  save_raw(img.cur.data(), img.persisted.data());
  return img;
}

void persistent_base::load_image(const cell_image& img) {
  if (img.cur.size() != image_size() || img.persisted.size() != image_size()) {
    throw std::invalid_argument(
        "pmem: cell image of " + std::to_string(img.cur.size()) +
        " bytes does not fit a cell of " + std::to_string(image_size()) +
        " bytes");
  }
  load_raw(img.cur.data(), img.persisted.data());
}

pmem_image save_image(const std::vector<persistent_base*>& cells) {
  pmem_image image;
  image.reserve(cells.size());
  for (const persistent_base* c : cells) image.push_back(c->save_image());
  return image;
}

void load_image(const std::vector<persistent_base*>& cells,
                const pmem_image& image) {
  if (cells.size() != image.size()) {
    throw std::invalid_argument(
        "pmem: image carries " + std::to_string(image.size()) +
        " cells but the target object attached " +
        std::to_string(cells.size()) +
        " — layouts must come from the same kind and params");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i]->load_image(image[i]);
  }
}

pmem_domain& pmem_domain::global() {
  static pmem_domain dom;
  return dom;
}

void pmem_domain::crash_reset() noexcept {
  std::scoped_lock lock(mu_);
  stats_.add_crash();
  last_crash_lost_ = false;
  if (persist_ == persist_model::buffered) {
    // Journal invariant: under buffered persistency every cell whose cached
    // value diverges from its persisted image registered via note_dirty()
    // (stores and migration loads are the only divergence sources, and both
    // register). Settling the journal alone makes the crash O(dirty cells),
    // not O(all cells in the domain).
    for (persistent_base* c : journal_) {
      if (!last_crash_lost_ && !c->image_clean()) last_crash_lost_ = true;
      c->revert_to_persisted();
      c->journaled_ = false;
    }
    journal_.clear();
    return;
  }
  if (model_ == cache_model::private_cache) {
    return;  // strict private-cache: NVM survives verbatim
  }
  for (persistent_base* c = head_; c != nullptr; c = c->next_) {
    c->revert_to_persisted();
  }
}

void pmem_domain::drain_journal() noexcept {
  std::scoped_lock lock(mu_);
  for (persistent_base* c : journal_) {
    c->persist_now();
    c->journaled_ = false;
  }
  journal_.clear();
}

void pmem_domain::persist_all() noexcept {
  std::scoped_lock lock(mu_);
  for (persistent_base* c = head_; c != nullptr; c = c->next_) {
    c->persist_now();
  }
  for (persistent_base* c : journal_) c->journaled_ = false;
  journal_.clear();
}

void pmem_domain::attach(persistent_base& cell) {
  std::scoped_lock lock(mu_);
  cell.prev_ = nullptr;
  cell.next_ = head_;
  if (head_ != nullptr) head_->prev_ = &cell;
  head_ = &cell;
  // attach() runs from the concrete cell's constructor body (pcell/pvar),
  // so the image_size() dispatch is safe here — and symmetric in detach().
  cells_attached_.fetch_add(1, std::memory_order_relaxed);
  bytes_attached_.fetch_add(cell.image_size(), std::memory_order_relaxed);
  if (attach_sink_ != nullptr) attach_sink_->push_back(&cell);
}

void pmem_domain::set_attach_recorder(
    std::vector<persistent_base*>* sink) noexcept {
  std::scoped_lock lock(mu_);
  attach_sink_ = sink;
}

void pmem_domain::detach(persistent_base& cell) noexcept {
  std::scoped_lock lock(mu_);
  cells_attached_.fetch_sub(1, std::memory_order_relaxed);
  bytes_attached_.fetch_sub(cell.image_size(), std::memory_order_relaxed);
  if (cell.journaled_) {
    auto it = std::find(journal_.begin(), journal_.end(), &cell);
    if (it != journal_.end()) {
      *it = journal_.back();
      journal_.pop_back();
    }
    cell.journaled_ = false;
  }
  if (cell.prev_ != nullptr) {
    cell.prev_->next_ = cell.next_;
  } else if (head_ == &cell) {
    head_ = cell.next_;
  }
  if (cell.next_ != nullptr) cell.next_->prev_ = cell.prev_;
  cell.prev_ = nullptr;
  cell.next_ = nullptr;
}

}  // namespace detect::nvm
