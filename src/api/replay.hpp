// Replayable scripted scenarios — the serialization half of the detect::api
// façade.
//
// A `scripted_scenario` is a fully self-contained run recipe over one
// registry kind: kind string + construction params, process count, fail
// policy, memory model, scheduler seed, crash plan, and the per-process op
// scripts. `replay()` builds a fresh harness for it and runs it to
// completion, so the same value always reproduces the same execution —
// the currency the fuzzer generates, diffs, shrinks, and dumps.
//
// `dump()`/`parse_scenario()` round-trip scenarios through a line-oriented
// text form; failing fuzz runs are persisted as these dumps and replayed
// with `fuzz_main --replay`.
//
// `family_opcodes()` exposes each opcode family's invocable op set so
// generators can randomize over a kind's full op mix instead of hand-coding
// per-family scripts the way `smoke_script` does.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/harness.hpp"
#include "api/registry.hpp"
#include "history/checker.hpp"

namespace detect::api {

/// A replayable run recipe: one registry kind (registered as object id 0)
/// plus everything the executor builder and runtime need to reproduce the
/// execution bit-for-bit.
struct scripted_scenario {
  std::string kind;
  object_params params;
  int nprocs = 2;
  core::runtime::fail_policy policy = core::runtime::fail_policy::skip;
  bool shared_cache = false;
  std::uint64_t sched_seed = 0;
  std::vector<std::uint64_t> crash_steps;
  /// Which execution backend replays this scenario. Dumps predating the
  /// executor redesign carry neither field and parse as single/1.
  exec_backend backend = exec_backend::single;
  /// Shard count: the sharded backend's world count when backend == sharded,
  /// and the shard count fuzz::diff_sharded replays the scenario under for
  /// the single-vs-sharded equivalence diff otherwise (1 = no sharded diff).
  int shards = 1;
  std::map<int, std::vector<hist::op_desc>> scripts;

  /// Total scripted ops across all processes.
  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& [pid, ops] : scripts) n += ops.size();
    return n;
  }
};

struct scripted_outcome {
  sim::run_report report;
  hist::check_result check;
  std::vector<hist::event> events;
  std::string log_text;
};

/// Build an executor for `s` (instantiating `s.kind` from the registry under
/// object id 0 on `s.backend`), install the scripts, run, and check.
scripted_outcome replay(const scripted_scenario& s);

/// Same, but skip the (potentially expensive) durable-linearizability check;
/// `check` is left defaulted.
scripted_outcome replay_unchecked(const scripted_scenario& s);

/// Line-oriented text form; `parse_scenario(dump(s))` round-trips exactly.
std::string dump(const scripted_scenario& s);

/// Inverse of `dump`. Throws std::invalid_argument on malformed input.
scripted_scenario parse_scenario(const std::string& text);

/// The invocable opcodes of a family — the alphabet generators draw from.
const std::vector<hist::opcode>& family_opcodes(op_family family);

const char* family_name(op_family family) noexcept;

/// Inverse of opcode_name(). Throws std::invalid_argument on unknown names.
hist::opcode opcode_from_name(const std::string& name);

const char* fail_policy_name(core::runtime::fail_policy p) noexcept;
core::runtime::fail_policy fail_policy_from_name(const std::string& name);

}  // namespace detect::api
