// detect::serve — umbrella header for the serving front-end.
//
// One include gives clients the full surface: sessions and submit statuses
// (serve/session.hpp), the server and its builder (serve/server.hpp), the
// hot-shard rebalancer policy (serve/rebalancer.hpp), and the metrics
// snapshot (serve/stats.hpp). See docs/serving.md for the tour.
#pragma once

#include "serve/rebalancer.hpp"  // IWYU pragma: export
#include "serve/server.hpp"      // IWYU pragma: export
#include "serve/session.hpp"     // IWYU pragma: export
#include "serve/stats.hpp"       // IWYU pragma: export
