// bench_serve — load scenarios for the detect::serve front-end, writing the
// machine-readable BENCH_serve.json that CI's bench-smoke stage archives.
//
// Three scenarios, each one row in the artifact:
//
//   soak      the deterministic serving soak: N sessions × M ops with crash
//             injection and live rebalancing, half the traffic pinned to the
//             shard-0 object cluster. The bench *enforces* the serving
//             invariants — zero lost or duplicated completions, per-session
//             program order, ≥1 crash survived, ≥1 rebalance move, and a
//             clean per-object durable-linearizability certificate — and
//             exits nonzero on any violation, so the artifact can only ever
//             contain rows from a correct run.
//   overload  2× offered load against a small queue high-water mark: queue
//             depth must stay bounded, `overloaded` rejects must be issued,
//             and every *admitted* op must still complete (with its p99).
//   threaded  the dispatcher-thread mode under the same kind of traffic,
//             wall-clock latency in microseconds.
//
// Workload shaping: the checker certifies at most 64 ops per object, so
// every scenario scales by object population — the object count derives
// from the op budget at ≤40 ops per hot object.
//
//   bench_serve --soak 32 --ops 2000 --json BENCH_serve.json   # defaults
//   DETECT_SMOKE=1 bench_serve                                 # tiny run
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "serve/serve.hpp"

namespace {

using namespace detect;

struct cli_cfg {
  int sessions = 32;
  int ops = 2000;  // per session
  std::string json_path = "BENCH_serve.json";
};

std::vector<std::string> g_problems;

void expect(bool ok, const std::string& what) {
  if (ok) return;
  g_problems.push_back(what);
  std::fprintf(stderr, "bench_serve: INVARIANT VIOLATED: %s\n", what.c_str());
}

/// One artifact row: the scenario name and wall time wrapped around the
/// serve::stats snapshot (serialized by the library, so field names cannot
/// drift from serve::stats_json).
std::string row_json(const std::string& scenario, double seconds,
                     const serve::stats& st) {
  return "    {\"scenario\": \"" + scenario +
         "\", \"seconds\": " + bench::fmt(seconds, 4) +
         ", \"stats\": " + serve::stats_json(st) + "}";
}

void print_row(const char* scenario, double seconds, const serve::stats& st) {
  std::printf("%-9s %8llu admitted  %8llu completed  %6llu rejected  "
              "%4llu crashes  %2zu moves  p99=%llu %s  %.3f s\n",
              scenario, static_cast<unsigned long long>(st.admitted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.rejected_total()),
              static_cast<unsigned long long>(st.crashes), st.moves.size(),
              static_cast<unsigned long long>(st.p99),
              st.latency_unit.c_str(), seconds);
  std::fflush(stdout);
}

// ---------------------------------------------------------------------------
// soak — the acceptance scenario.

std::string run_soak(const cli_cfg& cli) {
  constexpr int k_shards = 4;
  const int total_ops = cli.sessions * cli.ops;
  // Half the traffic lands on the shard-0 cluster at ≤40 ops per object.
  const int hot_count = std::max(k_shards, (total_ops / 2 + 39) / 40);
  const int k_objects = hot_count * k_shards;
  const int per_wave = std::max(1, cli.ops / 40);  // ops per session per wave
  const std::size_t batch =
      std::max<std::size_t>(256, static_cast<std::size_t>(cli.sessions) *
                                     static_cast<std::size_t>(per_wave));

  auto srv = serve::server::builder()
                 .shards(k_shards)
                 .procs(8)
                 .seed(42)
                 .crash_random(17, 0.0005, 2)
                 .batch_max_ops(batch)
                 .queue_high_water(1u << 20)
                 .session_tokens(1e9, 1e9)
                 .rebalance({.enabled = true,
                             .window = 4,
                             .check_every = 4,
                             .hot_ratio = 1.3,
                             .sustain = 2,
                             .max_moves = 16})
                 .build();

  std::vector<api::counter> objs;
  objs.reserve(static_cast<std::size_t>(k_objects));
  for (int i = 0; i < k_objects; ++i) objs.push_back(srv->add_counter());
  std::vector<serve::session> sessions;
  for (int i = 0; i < cli.sessions; ++i) sessions.push_back(srv->open_session());

  std::set<std::uint64_t> seen;
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> last_ticket;
  std::uint64_t dups = 0, order_violations = 0, callbacks = 0;
  auto on_done = [&](const serve::completion& c) {
    ++callbacks;
    if (!seen.insert(c.ticket).second) ++dups;
    std::uint64_t& last = last_ticket[{c.session, c.object}];
    if (c.ticket <= last) ++order_violations;
    last = c.ticket;
  };

  // Even submits hit the hot cluster, odd submits spread over the rest.
  auto target_of = [&](int s, int i) -> const api::counter& {
    const int stride = s * (cli.ops / 2) + i / 2;
    if (i % 2 == 0) {
      return objs[static_cast<std::size_t>(stride % hot_count) * k_shards];
    }
    const int j = stride % (k_objects - hot_count);
    const int id = (j / (k_shards - 1)) * k_shards + 1 + (j % (k_shards - 1));
    return objs[static_cast<std::size_t>(id)];
  };

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t admitted = 0;
  for (int base = 0; base < cli.ops; base += per_wave) {
    const int end = std::min(cli.ops, base + per_wave);
    for (int s = 0; s < cli.sessions; ++s) {
      for (int i = base; i < end; ++i) {
        if (serve::admitted(sessions[static_cast<std::size_t>(s)].submit(
                target_of(s, i).add(1), on_done))) {
          ++admitted;
        }
      }
    }
    srv->pump();
  }
  srv->drain();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  serve::stats st = srv->snapshot();
  expect(admitted == static_cast<std::uint64_t>(total_ops),
         "soak: every submit admitted");
  expect(st.completed == admitted, "soak: zero lost completions");
  expect(callbacks == admitted, "soak: every completion callback fired");
  expect(dups == 0, "soak: zero duplicated completions");
  expect(order_violations == 0, "soak: per-session program order");
  expect(st.inflight == 0, "soak: drained to zero inflight");
  expect(st.crashes >= 1, "soak: at least one injected crash survived");
  expect(!st.moves.empty(), "soak: the skew triggered a rebalance move");
  hist::check_result cr = srv->check();
  expect(cr.ok,
         "soak: durable linearizability certificate (" + cr.message + ")");
  expect(cr.objects == static_cast<std::size_t>(k_objects),
         "soak: certificate covers every object");

  print_row("soak", seconds, st);
  return row_json("soak", seconds, st);
}

// ---------------------------------------------------------------------------
// overload — 2x offered load against a small high-water mark.

std::string run_overload(const cli_cfg&) {
  constexpr int k_shards = 2;
  constexpr std::size_t k_batch = 128;
  constexpr std::size_t k_high_water = 128;
  const int waves = bench::smoke() ? 8 : 20;
  // Offered per wave = 2x what one round can drain across all shards.
  const int offered_per_wave = static_cast<int>(2 * k_shards * k_batch);
  constexpr int k_objects = 256;

  auto srv = serve::server::builder()
                 .shards(k_shards)
                 .procs(4)
                 .seed(7)
                 .batch_max_ops(k_batch)
                 .queue_high_water(k_high_water)
                 .session_tokens(1e9, 1e9)
                 .build();
  std::vector<api::counter> objs;
  for (int i = 0; i < k_objects; ++i) objs.push_back(srv->add_counter());
  std::vector<serve::session> sessions;
  for (int i = 0; i < 8; ++i) sessions.push_back(srv->open_session());

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t offered = 0, admitted = 0, overloaded = 0;
  for (int wave = 0; wave < waves; ++wave) {
    for (int i = 0; i < offered_per_wave; ++i) {
      const std::uint64_t n = offered++;
      const serve::submit_status s =
          sessions[n % sessions.size()].submit(objs[n % k_objects].add(1));
      if (s == serve::submit_status::admitted) ++admitted;
      if (s == serve::submit_status::overloaded) ++overloaded;
    }
    srv->pump();
  }
  srv->drain();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  serve::stats st = srv->snapshot();
  expect(overloaded > 0, "overload: 2x load produced `overloaded` rejects");
  expect(st.rejected_queue == overloaded,
         "overload: rejects attributed to the queue high-water brake");
  for (const serve::shard_stats& sh : st.shards) {
    expect(sh.max_queue_depth <= k_high_water,
           "overload: queue depth stayed under the high-water mark");
  }
  expect(st.completed == admitted, "overload: every admitted op completed");
  expect(st.inflight == 0, "overload: drained to zero inflight");
  expect(st.p99 >= 1, "overload: a p99 latency was recorded");
  expect(srv->check().ok, "overload: certificate over the admitted history");

  print_row("overload", seconds, st);
  return row_json("overload", seconds, st);
}

// ---------------------------------------------------------------------------
// threaded — the dispatcher-thread mode, wall-clock latency.

std::string run_threaded(const cli_cfg&) {
  const int per_session = bench::smoke() ? 100 : 500;
  constexpr int k_sessions = 4;
  constexpr int k_objects = 128;

  auto srv = serve::server::builder()
                 .shards(2)
                 .procs(4)
                 .threaded(true)
                 .batch_max_ops(64)
                 .batch_window(std::chrono::microseconds(200))
                 .build();
  std::vector<api::counter> objs;
  for (int i = 0; i < k_objects; ++i) objs.push_back(srv->add_counter());
  std::vector<serve::session> sessions;
  for (int i = 0; i < k_sessions; ++i) sessions.push_back(srv->open_session());

  std::mutex mu;
  std::uint64_t callbacks = 0;
  auto on_done = [&](const serve::completion&) {
    std::lock_guard<std::mutex> lk(mu);
    ++callbacks;
  };

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t admitted = 0;
  for (int i = 0; i < per_session; ++i) {
    for (int s = 0; s < k_sessions; ++s) {
      const int id = (s * per_session + i) % k_objects;
      if (serve::admitted(sessions[static_cast<std::size_t>(s)].submit(
              objs[static_cast<std::size_t>(id)].add(1), on_done))) {
        ++admitted;
      }
    }
  }
  srv->drain();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  srv->shutdown();

  serve::stats st = srv->snapshot();
  expect(st.completed == admitted, "threaded: every admitted op completed");
  {
    std::lock_guard<std::mutex> lk(mu);
    expect(callbacks == admitted, "threaded: every callback fired");
  }
  expect(st.inflight == 0, "threaded: drained to zero inflight");
  expect(st.latency_unit == "us", "threaded: wall-clock latency unit");
  expect(srv->check().ok, "threaded: certificate over the served history");

  print_row("threaded", seconds, st);
  return row_json("threaded", seconds, st);
}

}  // namespace

int main(int argc, char** argv) {
  cli_cfg cli;
  if (bench::smoke()) {
    cli.sessions = 8;
    cli.ops = 250;
  }
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_serve: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--soak") == 0) {
      cli.sessions = std::atoi(need_value("--soak"));
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      cli.ops = std::atoi(need_value("--ops"));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      cli.json_path = need_value("--json");
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--soak SESSIONS] [--ops PER_SESSION] "
                   "[--json PATH]\n");
      return 2;
    }
  }
  if (cli.sessions < 1 || cli.ops < 2) {
    std::fprintf(stderr, "bench_serve: --soak >= 1 and --ops >= 2 required\n");
    return 2;
  }

  std::printf("== serve load scenarios (%d sessions x %d ops soak%s) ==\n",
              cli.sessions, cli.ops, bench::smoke() ? ", smoke" : "");
  std::vector<std::string> rows;
  rows.push_back(run_soak(cli));
  rows.push_back(run_overload(cli));
  rows.push_back(run_threaded(cli));

  std::ofstream out(cli.json_path);
  if (!out) {
    std::fprintf(stderr, "bench_serve: cannot write '%s'\n",
                 cli.json_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"serve_load\",\n"
      << "  \"config\": {\"sessions\": " << cli.sessions
      << ", \"ops_per_session\": " << cli.ops << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << rows[i] << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", cli.json_path.c_str());

  if (!g_problems.empty()) {
    std::fprintf(stderr, "bench_serve: %zu invariant violation(s)\n",
                 g_problems.size());
    return 1;
  }
  return 0;
}
