// Detectable RMW family (counter / fetch-and-add / test-and-set) built from
// Algorithm 2's flip-vector capsule.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario counter_scenario(int nprocs,
                          std::function<scripts(api::counter)> make_scripts,
                          core::runtime::fail_policy policy =
                              core::runtime::fail_policy::skip) {
  return one_object<api::counter>("counter", nprocs, std::move(make_scripts),
                                  policy);
}

scenario tas_scenario(int nprocs, std::function<scripts(api::tas)> make_scripts) {
  return one_object<api::tas>("tas", nprocs, std::move(make_scripts));
}

TEST(detectable_counter, sequential_fetch_and_add) {
  auto cfg = counter_scenario(1, [](api::counter c) {
    return scripts{
        {0, {c.add(1), c.add(2), c.read(), c.add(-1), c.read()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_counter, concurrent_increments_sum_correctly) {
  auto cfg = counter_scenario(3, [](api::counter c) {
    return scripts{
        {0, {c.add(1), c.add(1)}},
        {1, {c.add(1), c.add(1)}},
        {2, {c.add(1), c.read()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_counter, crash_sweep) {
  auto cfg = counter_scenario(2, [](api::counter c) {
    return scripts{
        {0, {c.add(1), c.add(1)}},
        {1, {c.add(1), c.read()}},
    };
  });
  crash_sweep(cfg, 3);
}

TEST(detectable_counter, crash_sweep_retry) {
  auto cfg = counter_scenario(2,
                              [](api::counter c) {
                                return scripts{
                                    {0, {c.add(1), c.add(1)}},
                                    {1, {c.add(1), c.read()}},
                                };
                              },
                              core::runtime::fail_policy::retry);
  crash_sweep(cfg, 19);
}

TEST(detectable_counter, crash_fuzz) {
  auto cfg = counter_scenario(3, [](api::counter c) {
    return scripts{
        {0, {c.add(1), c.add(2)}},
        {1, {c.add(3), c.read()}},
        {2, {c.read(), c.add(4)}},
    };
  });
  crash_fuzz(cfg, 150, 2);
}

TEST(detectable_counter, faa_returns_old_value_exactly_once) {
  // With retry policy and crashes, each add must be applied exactly once —
  // the linearizability check against the counter spec enforces it via the
  // returned old values.
  auto cfg = counter_scenario(2,
                              [](api::counter c) {
                                return scripts{
                                    {0, {c.add(1), c.add(1), c.add(1)}},
                                    {1, {c.add(1), c.add(1), c.add(1)}},
                                };
                              },
                              core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 100, 2);
}

TEST(detectable_tas, sequential_set_reset) {
  auto cfg = tas_scenario(1, [](api::tas t) {
    return scripts{{0, {t.set(), t.set(), t.reset(), t.set()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_tas, one_winner_among_contenders) {
  auto cfg = tas_scenario(3, [](api::tas t) {
    return scripts{
        {0, {t.set()}},
        {1, {t.set()}},
        {2, {t.set()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_tas, crash_sweep_set_reset_cycle) {
  auto cfg = tas_scenario(2, [](api::tas t) {
    return scripts{
        {0, {t.set(), t.reset()}},
        {1, {t.set()}},
    };
  });
  crash_sweep(cfg, 29);
}

TEST(detectable_tas, crash_fuzz) {
  auto cfg = tas_scenario(3, [](api::tas t) {
    return scripts{
        {0, {t.set(), t.reset()}},
        {1, {t.set(), t.set()}},
        {2, {t.reset(), t.set()}},
    };
  });
  crash_fuzz(cfg, 150, 2);
}

class counter_property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(counter_property, exactly_once_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = counter_scenario(2,
                              [](api::counter c) {
                                return scripts{
                                    {0, {c.add(1), c.add(1)}},
                                    {1, {c.add(1), c.read()}},
                                };
                              },
                              core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 49979687);
}

INSTANTIATE_TEST_SUITE_P(sweep, counter_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
