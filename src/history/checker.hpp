// Durable-linearizability + detectability verdict checker.
//
// Translates a raw event log into operation records and hands them to the
// linearizability checker, encoding the two correctness conditions the paper
// targets (§2, §6):
//
//  * Durable linearizability — ops that completed before a crash are
//    mandatory; ops pending at a crash (or at the end of the run) that were
//    never resolved by recovery are optional; the surviving history must
//    linearize.
//  * Detectability — a recovery verdict of `fail` asserts "not linearized":
//    the op is excluded, so if its effect was in fact observed by anyone the
//    remaining history cannot linearize and the checker reports a violation.
//    A verdict of `linearized(v)` asserts "linearized exactly once with
//    response v": the op becomes mandatory with response v.
#pragma once

#include <string>
#include <vector>

#include "history/linearizer.hpp"
#include "history/log.hpp"

namespace detect::hist {

struct check_result {
  bool ok = false;
  bool inconclusive = false;  // node budget exhausted
  std::string message;
};

/// Convert an event log into checkable op records. Records whose recovery
/// verdict is `fail` are excluded (see header comment). Throws on malformed
/// logs (e.g. response without invoke).
std::vector<op_record> build_records(const std::vector<event>& events);

/// Full pipeline: build records, check against the spec.
check_result check_durable_linearizability(const std::vector<event>& events,
                                           const spec& initial,
                                           std::size_t node_budget = 4'000'000);

}  // namespace detect::hist
