#include "serve/rebalancer.hpp"

#include <algorithm>

namespace detect::serve {

void rebalancer::record_round(
    const std::map<std::uint32_t, std::uint64_t>& object_ops) {
  window_.push_back(object_ops);
  while (window_.size() > static_cast<std::size_t>(std::max(1, pol_.window))) {
    window_.pop_front();
  }
  ++rounds_seen_;
}

std::vector<std::uint64_t> rebalancer::window_load(
    const std::map<std::uint32_t, int>& homes) const {
  std::vector<std::uint64_t> load(static_cast<std::size_t>(shards_), 0);
  for (const auto& round : window_) {
    for (const auto& [object, ops] : round) {
      auto it = homes.find(object);
      if (it == homes.end()) continue;
      if (it->second < 0 || it->second >= shards_) continue;
      load[static_cast<std::size_t>(it->second)] += ops;
    }
  }
  return load;
}

double rebalancer::window_ratio(
    const std::map<std::uint32_t, int>& homes) const {
  return api::load_ratio(window_load(homes));
}

std::vector<planned_move> rebalancer::maybe_plan(
    const std::map<std::uint32_t, int>& homes,
    const std::vector<std::uint32_t>& frozen) {
  if (shards_ < 2) return {};
  if (pol_.check_every < 1 || rounds_seen_ % pol_.check_every != 0) return {};

  // Measure even when disabled: stats.load_ratio_window stays meaningful in
  // off mode, so rebalance-on vs rebalance-off runs are comparable.
  std::vector<std::uint64_t> load = window_load(homes);
  last_ratio_ = api::load_ratio(load);
  if (!pol_.enabled) return {};
  if (last_ratio_ < pol_.hot_ratio) {
    hot_streak_ = 0;
    return {};
  }
  if (++hot_streak_ < pol_.sustain) return {};
  hot_streak_ = 0;  // the plan fires; require a fresh streak for the next one

  // Per-object window totals, for ranking movable weight.
  std::map<std::uint32_t, std::uint64_t> weight;
  for (const auto& round : window_) {
    for (const auto& [object, ops] : round) weight[object] += ops;
  }

  // Greedy: repeatedly move the heaviest movable object off the current
  // hottest shard to the current coldest one, while that strictly narrows
  // the hot−cold gap (w < gap ⇒ both max shrinks-or-holds and the pair's
  // spread shrinks — no oscillation).
  std::vector<planned_move> plan;
  std::map<std::uint32_t, int> sim_homes = homes;
  while (static_cast<int>(plan.size()) < std::max(0, pol_.max_moves)) {
    const auto hot_it = std::max_element(load.begin(), load.end());
    const auto cold_it = std::min_element(load.begin(), load.end());
    const int hot = static_cast<int>(hot_it - load.begin());
    const int cold = static_cast<int>(cold_it - load.begin());
    if (hot == cold) break;
    const std::uint64_t gap = *hot_it - *cold_it;

    std::uint32_t best_obj = 0;
    std::uint64_t best_w = 0;
    bool found = false;
    for (const auto& [object, w] : weight) {
      auto home = sim_homes.find(object);
      if (home == sim_homes.end() || home->second != hot) continue;
      if (w == 0 || w >= gap) continue;  // must strictly narrow the gap
      if (std::find(frozen.begin(), frozen.end(), object) != frozen.end()) {
        continue;
      }
      if (!found || w > best_w) {
        best_obj = object;
        best_w = w;
        found = true;
      }
    }
    if (!found) break;

    plan.push_back({best_obj, hot, cold});
    sim_homes[best_obj] = cold;
    load[static_cast<std::size_t>(hot)] -= best_w;
    load[static_cast<std::size_t>(cold)] += best_w;
  }
  return plan;
}

}  // namespace detect::serve
