// detect::api::placement — pluggable shard-placement policies.
//
// A placement policy decides which shard of a K-world sharded executor hosts
// each object. It is a pure, deterministic function of (object id,
// declaration index, K): scenario dumps carry declared ids and declaration
// order, so a replayed scenario reproduces its routing exactly, and the
// fuzzer can replay one scenario under several policies and require the
// identical verdict — placement is semantics-invariant by construction.
//
// Built-ins:
//   modulo  id % K — the historical default; routing is an accident of the
//           object id, but dense ids spread perfectly.
//   hash    splitmix64(id) % K — decorrelates routing from id arithmetic, so
//           structured id patterns (all-even ids, id blocks) still spread.
//   range   contiguous blocks by declaration order: declarations fill shard
//           0, then shard 1, ... in fixed-width blocks of
//           k_range_block_size, wrapping — co-declared objects co-locate.
//   pinned  explicit id → shard map; unpinned ids fall back to modulo. The
//           map is validated against K at executor build time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace detect::api {

enum class placement_kind : std::uint8_t { modulo, hash, range, pinned };

/// Declarations per contiguous range block (see placement_kind::range).
inline constexpr std::size_t k_range_block_size = 4;

const char* placement_name(placement_kind k) noexcept;
/// Inverse of placement_name(). Throws std::invalid_argument on unknown
/// names.
placement_kind placement_from_name(const std::string& name);

struct placement_policy {
  placement_kind kind = placement_kind::modulo;
  /// pinned only: explicit id → shard assignments (unpinned ids fall back to
  /// modulo). Ignored by the other kinds.
  std::map<std::uint32_t, int> pins;

  /// The hosting shard of `id`, the `decl_index`-th declared object, among
  /// `shards` worlds. Pure and deterministic; `shards` must be >= 1.
  int shard_of(std::uint32_t id, std::size_t decl_index, int shards) const;

  /// Reject policies that cannot route onto `shards` worlds (pinned entries
  /// naming shards outside [0, shards)). Thrown messages name the offending
  /// pin — this is the executor builder's build()-time validation.
  void validate(int shards) const;

  /// One-line form: "modulo", "hash", "range", or "pinned 3:1 7:0" (pins in
  /// id order) — the scenario dump token and the human-readable policy name.
  std::string to_string() const;

  /// Inverse of to_string(). Throws std::invalid_argument on malformed
  /// input (unknown kind, bad pin tokens, duplicate pinned ids).
  static placement_policy parse(const std::string& text);

  bool operator==(const placement_policy&) const = default;
};

/// Convenience: the pinned policy holding exactly `pins`.
placement_policy pinned_placement(std::map<std::uint32_t, int> pins);

/// Imbalance of a per-shard load vector: max load ÷ ideal (= mean) load.
/// 1.0 is a perfect spread, K is everything-on-one-shard of K. Returns 0.0
/// for an empty or all-zero vector (no load to be imbalanced). This is the
/// trigger quantity of serve's hot-shard rebalancer and the "max/ideal"
/// column of the bench job summary.
double load_ratio(const std::vector<std::uint64_t>& per_shard_load) noexcept;

}  // namespace detect::api
