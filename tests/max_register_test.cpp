// Algorithm 3 (max register): correctness without auxiliary state, recovery
// by re-invocation, double-collect snapshot validity under contention.
#include <gtest/gtest.h>

#include "core/max_register.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario_config max_scenario(int nprocs,
                             std::map<int, std::vector<hist::op_desc>> scripts) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(
        std::make_unique<core::max_register>(nprocs, f.board, f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::max_register_spec(0));
  };
  return cfg;
}

TEST(max_register, declares_no_aux_state) {
  sim_fixture f(2);
  core::max_register mr(2, f.board, f.w.domain());
  EXPECT_FALSE(mr.wants_aux_reset());
}

TEST(max_register, sequential_monotonicity) {
  auto cfg = max_scenario(1, {{0,
                               {op_max_write(5), op_max_read(), op_max_write(3),
                                op_max_read(), op_max_write(9), op_max_read()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(max_register, concurrent_writers_many_seeds) {
  auto cfg = max_scenario(3, {
                                 {0, {op_max_write(1), op_max_write(4)}},
                                 {1, {op_max_write(2), op_max_read()}},
                                 {2, {op_max_read(), op_max_write(3)}},
                             });
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(max_register, crash_sweep) {
  auto cfg = max_scenario(2, {
                                 {0, {op_max_write(5), op_max_read()}},
                                 {1, {op_max_write(3), op_max_read()}},
                             });
  crash_sweep(cfg, 3);
}

TEST(max_register, crash_fuzz_heavy) {
  auto cfg = max_scenario(3, {
                                 {0, {op_max_write(1), op_max_write(6)}},
                                 {1, {op_max_write(2), op_max_read()}},
                                 {2, {op_max_read(), op_max_write(4)}},
                             });
  crash_fuzz(cfg, 150, 3);
}

TEST(max_register, recovery_reinvokes_write_idempotently) {
  // Crash a write at every step; re-invocation must never shrink the value
  // and the verdict is always `linearized` (never fail).
  auto cfg = max_scenario(2, {
                                 {0, {op_max_write(7), op_max_read()}},
                                 {1, {op_max_read()}},
                             });
  run_outcome base = run_scenario(cfg, 5);
  ASSERT_TRUE(base.check.ok);
  for (std::uint64_t k = 0; k < base.report.steps; ++k) {
    auto out = run_scenario(cfg, 5, {k});
    ASSERT_TRUE(out.check.ok) << "crash at " << k << "\n" << out.check.message;
    for (const auto& e : hist::log{}.snapshot()) (void)e;
    // No fail verdicts should ever be recorded for this object.
    EXPECT_EQ(out.log_text.find("FAIL"), std::string::npos)
        << "crash at " << k << "\n"
        << out.log_text;
  }
}

TEST(max_register, read_terminates_under_fair_schedules) {
  // The double collect is lock-free, not wait-free; fair random schedules
  // must still let it finish.
  auto cfg = max_scenario(4, {
                                 {0, {op_max_write(1), op_max_write(2)}},
                                 {1, {op_max_write(3), op_max_write(4)}},
                                 {2, {op_max_write(5), op_max_write(6)}},
                                 {3, {op_max_read(), op_max_read()}},
                             });
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_FALSE(out.report.hit_step_limit) << "reader starved at seed " << seed;
    ASSERT_TRUE(out.check.ok) << out.check.message;
  }
}

class max_register_property
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(max_register_property, correct_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = max_scenario(2, {
                                 {0, {op_max_write(2), op_max_read()}},
                                 {1, {op_max_write(5), op_max_read()}},
                             });
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 32452843);
}

INSTANTIATE_TEST_SUITE_P(sweep, max_register_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
