// Quickstart: a detectable register and a detectable CAS object surviving a
// system-wide crash — the detect::api façade in one page.
//
// One executor wires everything behind the scenes (simulated world, the
// announcement board of §2, history log, client runtime). Typed handles
// construct operations; `check()` verifies the whole recorded history for
// durable linearizability + detectability, one linearization per object.
// Swapping `.backend(...)` / `.shards(K)` into the builder reruns the same
// scripts on a K-world sharded runtime or on real threads — see
// examples/backends_tour.cpp.
//
// Build & run:  ./build/quickstart
#include <cstdio>

#include "api/api.hpp"

int main() {
  using namespace detect;

  // Two crash-prone processes; a seeded scheduler; crashes at steps 12, 31;
  // clients re-attempt operations whose recovery reports fail.
  auto ex = api::executor::builder()
                .procs(2)
                .fail_policy(core::runtime::fail_policy::retry)
                .seed(2024)
                .crash_at({12, 31})
                .build();

  // Algorithm 1 register and Algorithm 2 CAS, registered under fresh ids.
  api::reg r = ex->add_reg();
  api::cas c = ex->add_cas();

  // Client scripts: process 0 writes then CASes; process 1 CASes and reads.
  ex->script(0, {r.write(42), c.compare_and_set(0, 7), r.read()});
  ex->script(1, {c.compare_and_set(0, 9), r.read()});

  // Drive to completion. After each crash the runtime consults each
  // process's announcement and runs the matching Op.Recover (§2).
  auto report = ex->run();

  std::printf("run: %llu steps, %llu crashes\n\n",
              static_cast<unsigned long long>(report.steps),
              static_cast<unsigned long long>(report.crashes));
  std::printf("event log:\n%s\n", ex->log_text().c_str());

  // Verify the whole history: durable linearizability + detectability.
  auto check = ex->check();
  std::printf("history verified: %s\n", check.ok ? "YES" : "NO");
  if (!check.ok) std::printf("%s\n", check.message.c_str());
  return check.ok ? 0 : 1;
}
