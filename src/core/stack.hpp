// Detectable durable LIFO stack — Algorithm 2's flip-vector capsule applied
// to a Treiber stack's head pointer.
//
// The stack head is a single CAS cell packing ⟨top node index, N-bit flip
// vector⟩. Every push and pop performs exactly one successful CAS on this
// cell, atomically swinging the top pointer *and* flipping the caller's
// vector bit — so top-validation (no popping from the middle) and the
// detectability witness are the same atomic step, exactly the trick of §4.
// Before attempting the CAS, the operation persists its intent (the node
// being pushed, or the candidate being popped together with its value) in
// private NVM; recovery compares vec[p] against the persisted flipped bit:
// changed ⇒ the attempt was linearized (return ack / the persisted value),
// unchanged ⇒ nothing observable was written ⇒ fail.
//
// ABA on the head cannot occur: nodes are never recycled and a popped node
// is never re-linked, while the flip vector rules out spurious matches from
// unrelated interleavings. N ≤ 32 (index and vector share a 64-bit word
// packed beside each other in the 16-byte cell).
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/object.hpp"
#include "nvm/pcell.hpp"
#include "nvm/pool.hpp"
#include "nvm/pvar.hpp"

namespace detect::core {

struct stack_node {
  explicit stack_node(nvm::pmem_domain& dom)
      : value(0, dom), next(nvm::null_ref, dom) {}

  nvm::pcell<value_t> value;
  nvm::pcell<std::uint32_t> next;
};

/// ⟨top index, flip vector⟩ — one lock-free 16-byte CAS cell.
struct stack_head {
  std::uint64_t top = nvm::null_ref;  // widened for layout/padding freedom
  std::uint64_t vec = 0;

  friend bool operator==(const stack_head&, const stack_head&) = default;
};
static_assert(sizeof(stack_head) == 16);

class detectable_stack final : public detectable_object {
 public:
  static constexpr int max_procs = 32;

  detectable_stack(int nprocs, announcement_board& board, std::size_t capacity,
                   nvm::pmem_domain& dom)
      : board_(&board),
        pool_(capacity, dom),
        head_(stack_head{nvm::null_ref, 0}, dom) {
    if (nprocs > max_procs) {
      throw std::invalid_argument("detectable_stack: N exceeds vector width");
    }
    for (int p = 0; p < nprocs; ++p) {
      rd_bit_.push_back(std::make_unique<nvm::pvar<std::uint8_t>>(0, dom));
      rd_val_.push_back(std::make_unique<nvm::pvar<value_t>>(0, dom));
    }
  }

  value_t invoke(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::push:
        return push(pid, op);
      case hist::opcode::pop:
        return pop(pid);
      default:
        throw std::invalid_argument("detectable_stack: bad opcode");
    }
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::push:
        return op_recover(pid, /*is_push=*/true);
      case hist::opcode::pop:
        return op_recover(pid, /*is_push=*/false);
      default:
        throw std::invalid_argument("detectable_stack: bad opcode");
    }
  }

  std::uint64_t ids_minted() const noexcept { return pool_.allocated(); }

 private:
  value_t push(int p, const hist::op_desc& op) {
    ann_fields& ann = board_->of(p);
    std::uint32_t n = pool_.allocate();
    stack_node& node = pool_.at(n);
    node.value.store(op.a);
    for (;;) {
      stack_head h = head_.load();
      node.next.store(static_cast<std::uint32_t>(h.top));
      std::uint64_t newvec = h.vec ^ (std::uint64_t{1} << p);
      rd_bit_[p]->store(static_cast<std::uint8_t>((newvec >> p) & 1));
      ann.cp.store(1);
      if (head_.compare_exchange(h, stack_head{n, newvec})) break;
    }
    ann.resp.store(hist::k_ack);
    return hist::k_ack;
  }

  value_t pop(int p) {
    ann_fields& ann = board_->of(p);
    for (;;) {
      stack_head h = head_.load();
      if (h.top == nvm::null_ref) {
        // Empty: linearize at the read of head.
        ann.resp.store(hist::k_empty);
        return hist::k_empty;
      }
      stack_node& node = pool_.at(static_cast<std::uint32_t>(h.top));
      value_t v = node.value.load();
      std::uint32_t next = node.next.load();
      std::uint64_t newvec = h.vec ^ (std::uint64_t{1} << p);
      rd_val_[p]->store(v);  // persist the would-be response
      rd_bit_[p]->store(static_cast<std::uint8_t>((newvec >> p) & 1));
      ann.cp.store(1);
      if (head_.compare_exchange(h, stack_head{next, newvec})) {
        ann.resp.store(v);
        return v;
      }
    }
  }

  recovery_result op_recover(int p, bool is_push) {
    ann_fields& ann = board_->of(p);
    value_t r = ann.resp.load();
    if (r != hist::k_bottom) return recovery_result::linearized(r);
    if (ann.cp.load() == 0) return recovery_result::failed();
    stack_head h = head_.load();
    if (static_cast<std::uint8_t>((h.vec >> p) & 1) != rd_bit_[p]->load()) {
      // No attempt's CAS took effect; nothing observable was written.
      return recovery_result::failed();
    }
    value_t resp = is_push ? hist::k_ack : rd_val_[p]->load();
    ann.resp.store(resp);
    return recovery_result::linearized(resp);
  }

  announcement_board* board_;
  nvm::pmem_pool<stack_node> pool_;
  nvm::pcell<stack_head> head_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint8_t>>> rd_bit_;
  std::vector<std::unique_ptr<nvm::pvar<value_t>>> rd_val_;
};

}  // namespace detect::core
