// coverage — the fuzz campaign's feedback signal.
//
// Every executed scenario is abstracted into a `bucket_signature`: the
// coarse coordinates of what the execution exercised — the set of object
// kinds, the per-family opcode mix, backend and shard count, the placement
// policy kind and whether a migration plan ran, how deep the crash plan
// actually struck, and the checker-path bits (per-object decomposition
// genuinely taken, recovery-window interval synthesis triggered). Two scenarios with the same
// signature stress the same region of the state space; a campaign that only
// counts iterations cannot tell them apart, a campaign that counts buckets
// can.
//
// `coverage_map` is the campaign-side accumulator: it records signatures,
// answers novelty queries, and keeps the (executed, distinct) timeline that
// `coverage.json` reports as the new-bucket rate. The signature splits into
// a scenario-derived prefix (`scenario_key`, predictable before running) and
// outcome bits — steering mutates corpus seeds until the predictable prefix
// is one the campaign has not seen, which is what pushes generation toward
// unexplored (kinds, backend, shards, crash, op-mix) combinations instead of
// re-rolling the common ones.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/api.hpp"

namespace detect::fuzz {

struct bucket_signature {
  // Scenario-derived (predictable before the run). Deliberately exactly the
  // ISSUE's coordinates — knobs like retry/shared-cache are NOT part of the
  // signature: every extra independent dimension multiplies the bucket
  // space, and a space no campaign can saturate steers nothing.
  std::string kinds;    // sorted unique declared kind names, '+'-joined
  std::string op_mix;   // "<family>*|~" per family touched (full/partial mix)
  std::string backend;  // execution backend of the scenario itself
  int shards = 1;
  std::string placement = "modulo";  // placement policy kind (pins elided)
  bool migrated = false;             // scenario carries a migration plan
  // Schedule-novelty coordinates (scenario-derived, so steerable): which
  // exploration strategy drove the run, how many preemption points it was
  // budgeted (bucketed like crash_phase), and the persistency model.
  std::string sched = "uniform_random";  // schedule strategy name
  int preempt_bucket = 0;  // min(pct preemption budget, 3) — 0 for non-pct
  std::string persist = "strict";  // persistency-visibility model name
  // Store-buffer visibility coordinate (scenario-derived). Together with
  // `persist` this spans the vis×persist cross — each of the six model
  // pairs is its own scenario-key region, so steering pushes campaigns
  // toward unexplored pairs instead of re-rolling (sc, strict).
  std::string vis = "sc";  // visibility model name
  // Outcome-derived (observed from the replay).
  int crash_phase = 0;  // min(crashes actually delivered, 3) — 0 = none
  // min(max store-buffer depth the run ever reached, 3) — 0 under sc (and
  // for tso/pso runs whose buffers never held a store). How hard the run
  // actually leaned on delayed visibility, not just which model was armed.
  int pending_bucket = 0;
  bool recovery_seen = false;       // some recovery round ran
  bool decomposed = false;          // per-object decomposition over > 1 object
  bool synthesized_interval = false;  // announcement-window interval synthesis
  bool lost_persistence = false;  // a crash discarded buffered stores — a
                                  // crash state strict mode can never reach

  /// The scenario-derived prefix — what steering can aim at before running.
  std::string scenario_key() const;
  /// The full bucket id (scenario prefix + outcome bits).
  std::string key() const;
};

/// The scenario-derived half of the signature (outcome bits defaulted).
bucket_signature scenario_signature(const api::scripted_scenario& s);

/// The full signature of one executed scenario.
bucket_signature bucket_of(const api::scripted_scenario& s,
                           const api::scripted_outcome& out);

class coverage_map {
 public:
  /// Record one executed scenario's signature. Returns true when its full
  /// bucket is novel.
  bool record(const bucket_signature& b);

  /// Has any recorded scenario carried this scenario_key()?
  bool seen_scenario(const std::string& scenario_key) const {
    return buckets_under_.count(scenario_key) != 0;
  }

  /// Distinct full buckets recorded under this scenario_key() — steering's
  /// preference order: 0 means the key itself is unexplored, small counts
  /// mean its outcome dimensions (crash phase, recovery, checker paths)
  /// still have room.
  std::size_t buckets_under(const std::string& scenario_key) const {
    auto it = buckets_under_.find(scenario_key);
    return it == buckets_under_.end() ? 0 : it->second;
  }

  std::uint64_t executed() const { return executed_; }
  std::size_t distinct() const { return buckets_.size(); }

  /// (executed-so-far, distinct-so-far), one sample per novel bucket — the
  /// new-bucket rate over time.
  const std::vector<std::pair<std::uint64_t, std::size_t>>& timeline() const {
    return timeline_;
  }

 private:
  std::set<std::string> buckets_;
  std::map<std::string, std::size_t> buckets_under_;  // per scenario_key
  std::uint64_t executed_ = 0;
  std::vector<std::pair<std::uint64_t, std::size_t>> timeline_;
};

}  // namespace detect::fuzz
