// E6 — The runtime cost of detectability (google-benchmark).
//
// The paper notes (§6) that detectability "comes with a price tag in terms
// of space complexity and the need to provide auxiliary state"; this
// experiment quantifies the *time* overhead on real threads: plain objects
// vs Algorithms 1-2 vs the unbounded-id baselines, free-running over the
// detect::api::arena (no simulator hook, emulated NVM in private-cache
// mode). Objects are instantiated from the registry by kind string.
//
// Builds against google-benchmark when installed; otherwise CMake defines
// DETECT_USE_MINI_BENCH and the vendored fixed-iteration timer loop in
// mini_bench.hpp provides the same API subset.
#ifdef DETECT_USE_MINI_BENCH
#include "mini_bench.hpp"
#else
#include <benchmark/benchmark.h>
#endif

#include <atomic>
#include <thread>

#include "api/api.hpp"

namespace {

using namespace detect;

constexpr int k_max_threads = 16;

// Shared per-benchmark state, rebuilt by thread 0 at the start of each run.
// Sibling threads synchronize on g_obj_ptr (release-publish / acquire-spin):
// code before google-benchmark's measurement loop runs unsynchronized, so
// they must not touch g_arena/the object until thread 0 has published it.
// Descriptors need no shared state at all — each benchmark uses one object
// and a default-constructed handle already carries its id (0).
api::arena* g_arena = nullptr;
std::atomic<core::detectable_object*> g_obj_ptr{nullptr};
std::atomic<int> g_done{0};

core::detectable_object& setup(benchmark::State& state, const char* kind) {
  if (state.thread_index() == 0) {
    g_done.store(0, std::memory_order_relaxed);
    g_arena = new api::arena(k_max_threads);
    api::object_handle obj = g_arena->add(kind);
    g_obj_ptr.store(&obj.object(), std::memory_order_release);
  } else {
    while (g_obj_ptr.load(std::memory_order_acquire) == nullptr) {
      std::this_thread::yield();
    }
  }
  return *g_obj_ptr.load(std::memory_order_acquire);
}

void teardown(benchmark::State& state) {
  g_done.fetch_add(1, std::memory_order_acq_rel);
  if (state.thread_index() == 0) {
    // Free the arena only once every sibling is done with the object.
    while (g_done.load(std::memory_order_acquire) != state.threads()) {
      std::this_thread::yield();
    }
    g_obj_ptr.store(nullptr, std::memory_order_release);
    delete g_arena;
    g_arena = nullptr;
  }
}

// The caller-side auxiliary resets (Ann_p.resp := ⊥, Ann_p.CP := 0) are part
// of the protocol being measured for detectable objects; plain objects need
// none — exactly the cost gap E6 quantifies.

void bm_register_family(benchmark::State& state, const char* kind,
                        bool aux_resets) {
  core::detectable_object& obj = setup(state, kind);
  int pid = state.thread_index();
  api::reg r;  // descriptor builder for object id 0
  hist::op_desc wr = r.write(pid);
  hist::op_desc rd = r.read();
  for (auto _ : state) {
    if (aux_resets) g_arena->reset_aux(pid);
    obj.invoke(pid, wr);
    if (aux_resets) g_arena->reset_aux(pid);
    benchmark::DoNotOptimize(obj.invoke(pid, rd));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  teardown(state);
}

void bm_cas_family(benchmark::State& state, const char* kind, bool aux_resets) {
  core::detectable_object& obj = setup(state, kind);
  int pid = state.thread_index();
  api::cas c;  // descriptor builder for object id 0
  for (auto _ : state) {
    if (aux_resets) g_arena->reset_aux(pid);
    hist::value_t cur = obj.invoke(pid, c.read());
    if (aux_resets) g_arena->reset_aux(pid);
    benchmark::DoNotOptimize(obj.invoke(pid, c.compare_and_set(cur, cur + 1)));
  }
  state.SetItemsProcessed(state.iterations());
  teardown(state);
}

void bm_plain_register(benchmark::State& state) {
  bm_register_family(state, "plain_reg", /*aux_resets=*/false);
}
void bm_detectable_register(benchmark::State& state) {
  bm_register_family(state, "reg", /*aux_resets=*/true);
}
void bm_attiya_register(benchmark::State& state) {
  bm_register_family(state, "attiya_reg", /*aux_resets=*/true);
}

void bm_plain_cas(benchmark::State& state) {
  bm_cas_family(state, "plain_cas", /*aux_resets=*/false);
}
void bm_detectable_cas(benchmark::State& state) {
  bm_cas_family(state, "cas", /*aux_resets=*/true);
}
void bm_bendavid_cas(benchmark::State& state) {
  bm_cas_family(state, "bendavid_cas", /*aux_resets=*/true);
}

void bm_detectable_counter(benchmark::State& state) {
  core::detectable_object& obj = setup(state, "counter");
  int pid = state.thread_index();
  api::counter c;  // descriptor builder for object id 0
  hist::op_desc op = c.add(1);
  for (auto _ : state) {
    g_arena->reset_aux(pid);
    benchmark::DoNotOptimize(obj.invoke(pid, op));
  }
  state.SetItemsProcessed(state.iterations());
  teardown(state);
}

void bm_max_register(benchmark::State& state) {
  core::detectable_object& obj = setup(state, "max_reg");
  int pid = state.thread_index();
  api::max_reg m;  // descriptor builder for object id 0
  std::int64_t v = 0;
  for (auto _ : state) {
    // Algorithm 3 needs no auxiliary resets at all — §5's separation.
    benchmark::DoNotOptimize(obj.invoke(pid, m.write_max(++v)));
  }
  state.SetItemsProcessed(state.iterations());
  teardown(state);
}

}  // namespace

BENCHMARK(bm_plain_register)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_detectable_register)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_attiya_register)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_plain_cas)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_detectable_cas)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_bendavid_cas)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_detectable_counter)->Threads(1)->Threads(2)->UseRealTime();
BENCHMARK(bm_max_register)->Threads(1)->Threads(2)->UseRealTime();

BENCHMARK_MAIN();
