// Access-hook plumbing connecting the NVM layer to an (optional) simulator.
//
// Every access to emulated persistent memory funnels through a thread-local
// hook. When no hook is installed (free-running benchmark mode) the cost is a
// single thread-local load. When the deterministic simulator is driving, the
// hook is its step-token yield point: the calling process blocks until the
// scheduler grants it the next step, and a pending system-wide crash surfaces
// here as a `crashed` exception that unwinds the operation frame — which is
// precisely the loss of volatile local state in the paper's crash model.
#pragma once

#include <cstdint>

namespace detect::nvm {

/// Kind of instrumented memory event. `shared_*` touch cells observable by
/// all processes, `private_*` touch per-process NVM (Ann_p, RD_p, ...),
/// `flush`/`fence` are explicit persistency instructions, and `control` is a
/// non-memory scheduling checkpoint (operation invocation / response logging).
enum class access : std::uint8_t {
  shared_load,
  shared_store,
  shared_cas,
  shared_exchange,
  private_load,
  private_store,
  flush,
  fence,
  control,
};

/// Thrown out of an access when a system-wide crash is delivered to this
/// process. Operation code must be exception-neutral (it is: the algorithms
/// hold no resources); the runtime driver catches it at the operation
/// boundary.
struct crashed {};

/// Installed per thread by the simulator. `before_access` is called
/// immediately before the physical access is performed; it may block (waiting
/// for the scheduler) and may throw `crashed`.
class access_hook {
 public:
  virtual ~access_hook() = default;
  virtual void before_access(access kind) = 0;
};

/// The thread-local hook slot. Null means free-running mode.
inline access_hook*& tls_hook() noexcept {
  thread_local access_hook* hook = nullptr;
  return hook;
}

/// Invoke the hook if one is installed. Marked always-inline-ish by being
/// trivial; the null check is the entire overhead in benchmark mode.
inline void hook_access(access kind) {
  if (access_hook* h = tls_hook()) h->before_access(kind);
}

}  // namespace detect::nvm
