// The detect::sched subsystem: strategy naming + policy serialization, PCT
// scheduler determinism and demotion semantics, the step-limit diagnostic,
// scripted_scenario v5 (schedule + persistency lines, v4 compat), the
// buffered-persistency model's novel crash states, the PCT-vs-uniform
// coverage comparison, and the planted preemption bug only PCT finds.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"

namespace {

using namespace detect;

// Registry kinds as of static init — campaign tests must not pick up the
// broken kinds later tests register.
const std::vector<std::string> g_builtin_kinds =
    api::object_registry::global().kinds();

// ---- strategy names + policy serialization ----------------------------------

TEST(strategy, names_round_trip) {
  for (sched::strategy s : {sched::strategy::round_robin,
                            sched::strategy::uniform_random,
                            sched::strategy::pct}) {
    auto back = sched::strategy_from_name(sched::strategy_name(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(sched::strategy_from_name("fifo").has_value());
  EXPECT_FALSE(sched::strategy_from_name("").has_value());
}

TEST(strategy, policy_to_string_parse_round_trips) {
  sched::sched_policy p;
  EXPECT_EQ(sched::sched_policy::parse(p.to_string()), p);
  p.strat = sched::strategy::round_robin;
  EXPECT_EQ(sched::sched_policy::parse(p.to_string()), p);
  p.strat = sched::strategy::pct;
  p.pct_points = {3, 17, 90};
  EXPECT_EQ(sched::sched_policy::parse(p.to_string()), p);
  EXPECT_EQ(p.to_string(), "pct 3 17 90");
}

TEST(strategy, policy_parse_rejects_malformed_input) {
  EXPECT_THROW(sched::sched_policy::parse("fifo"), std::invalid_argument);
  EXPECT_THROW(sched::sched_policy::parse(""), std::invalid_argument);
  // Preemption points only make sense for pct.
  EXPECT_THROW(sched::sched_policy::parse("uniform_random 3"),
               std::invalid_argument);
  EXPECT_THROW(sched::sched_policy::parse("pct 3 x"), std::invalid_argument);
}

// ---- pct scheduler ----------------------------------------------------------

TEST(pct_scheduler, same_seed_and_points_pick_identically) {
  const std::vector<int> runnable{0, 1, 2};
  sched::pct_scheduler a(42, {5, 9});
  sched::pct_scheduler b(42, {5, 9});
  for (std::uint64_t step = 0; step < 40; ++step) {
    EXPECT_EQ(a.pick(runnable, step), b.pick(runnable, step)) << step;
  }
  EXPECT_EQ(a.preemptions_applied(), 2u);
}

TEST(pct_scheduler, runs_the_top_priority_process_until_a_point_demotes_it) {
  const std::vector<int> runnable{0, 1};
  sched::pct_scheduler s(7, {10});
  const int before = s.pick(runnable, 0);
  for (std::uint64_t step = 1; step < 10; ++step) {
    EXPECT_EQ(s.pick(runnable, step), before) << "strict priority until the "
                                                 "preemption point";
  }
  // The preemption point demotes the running process below all others.
  const int after = s.pick(runnable, 10);
  EXPECT_NE(after, before);
  EXPECT_EQ(s.preemptions_applied(), 1u);
  // Demotions are sticky: the demoted process stays below while others run.
  EXPECT_EQ(s.pick(runnable, 11), after);
  // ... but it still runs when it is the only runnable process.
  EXPECT_EQ(s.pick({before}, 12), before);
}

TEST(pct_scheduler, draw_pct_points_is_deterministic_and_bounded) {
  const std::vector<std::uint64_t> a = sched::draw_pct_points(9, 4, 100);
  EXPECT_EQ(a, sched::draw_pct_points(9, 4, 100));
  EXPECT_LE(a.size(), 4u);
  EXPECT_GE(a.size(), 1u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  for (std::uint64_t p : a) {
    EXPECT_GE(p, 1u);
    EXPECT_LE(p, 100u);
  }
  EXPECT_NE(a, sched::draw_pct_points(10, 4, 100));
}

TEST(make_scheduler, maps_policies_onto_the_legacy_dispatch) {
  // uniform_random without a seed is the historical no-seed round robin.
  sched::sched_policy uniform;
  EXPECT_EQ(sched::make_scheduler(uniform, std::nullopt)->describe(),
            "round_robin");
  EXPECT_EQ(sched::make_scheduler(uniform, 5)->describe(),
            "uniform_random(seed=5)");
  sched::sched_policy pct;
  pct.strat = sched::strategy::pct;
  pct.pct_points = {4, 9};
  EXPECT_EQ(sched::make_scheduler(pct, 5)->describe(),
            "pct(seed=5, budget=2, applied=0)");
}

// ---- step-limit diagnostic --------------------------------------------------

TEST(step_limit, note_names_the_active_strategy_and_budget) {
  sched::sched_policy pct;
  pct.strat = sched::strategy::pct;
  pct.pct_points = {2};
  auto h = api::harness::builder()
               .procs(2)
               .seed(11)
               .schedule(pct)
               .max_steps(4)
               .build();
  api::counter c = h.add_counter();
  h.script(0, {c.add(1), c.read()});
  h.script(1, {c.add(1)});
  sim::run_report r = h.run();
  ASSERT_TRUE(r.hit_step_limit);
  EXPECT_NE(r.limit_note.find("step limit 4"), std::string::npos)
      << r.limit_note;
  EXPECT_NE(r.limit_note.find("pct(seed=11, budget=1"), std::string::npos)
      << r.limit_note;
}

// ---- scripted_scenario v5 ---------------------------------------------------

TEST(replay_v5, schedule_and_persistency_round_trip) {
  api::scripted_scenario s = fuzz::generate(21, "counter");
  s.crash_steps.clear();
  s.sched.strat = sched::strategy::pct;
  s.sched.pct_points = {7, 31};
  s.persist = nvm::persist_model::buffered;
  const std::string text = api::dump(s);
  EXPECT_NE(text.find("# detect scripted_scenario v6"), std::string::npos);
  EXPECT_NE(text.find("sched pct 7 31"), std::string::npos) << text;
  EXPECT_NE(text.find("persist buffered"), std::string::npos) << text;
  api::scripted_scenario rt = api::parse_scenario(text);
  EXPECT_EQ(rt.sched, s.sched);
  EXPECT_EQ(rt.persist, s.persist);
  EXPECT_EQ(api::dump(rt), text);
  api::scripted_outcome a = api::replay(s);
  api::scripted_outcome b = api::replay(rt);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_TRUE(a.check.ok) << a.check.message;
}

// The ISSUE-6 acceptance bar, mirroring the v2/v3 pins in fuzz_test: a
// pinned v4 dump (the PR-5 format — placement/migrate era, no sched/persist
// lines) parses as the uniform_random strategy under strict persistency —
// exactly the scheduler and memory model those replays always used — and
// replays byte-identically to its v5 round-trip.
TEST(replay_v5, v4_dumps_parse_and_replay_byte_identically) {
  const std::string v4_text =
      "# detect scripted_scenario v4\n"
      "object 0 cas 0 64\n"
      "object 1 reg 0 64\n"
      "procs 2\n"
      "policy skip\n"
      "shared_cache 0\n"
      "sched_seed 77\n"
      "backend sharded\n"
      "shards 2\n"
      "placement hash\n"
      "crash_steps\n"
      "script 0 cas:0:1 reg_write:3:0@1\n"
      "script 1 cas_read:0:0 reg_read:0:0@1\n";
  api::scripted_scenario s = api::parse_scenario(v4_text);
  EXPECT_EQ(s.sched, sched::sched_policy{});
  EXPECT_EQ(s.sched.strat, sched::strategy::uniform_random);
  EXPECT_EQ(s.persist, nvm::persist_model::strict);
  api::scripted_outcome a = api::replay(s);
  // The v5 round-trip carries explicit `sched` / `persist` lines and
  // preserves the execution byte for byte.
  const std::string v5_text = api::dump(s);
  EXPECT_NE(v5_text.find("sched uniform_random"), std::string::npos)
      << v5_text;
  EXPECT_NE(v5_text.find("persist strict"), std::string::npos) << v5_text;
  api::scripted_scenario rt = api::parse_scenario(v5_text);
  api::scripted_outcome b = api::replay(rt);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_EQ(a.report.steps, b.report.steps);
  EXPECT_TRUE(a.check.ok);
  // And the full oracle (incl. the shards=2 equivalence diff) is clean.
  EXPECT_TRUE(fuzz::check_scenario(s).empty());
}

TEST(replay_v5, parse_rejects_malformed_schedule_lines) {
  const std::string head =
      "object 0 reg 0 64\n"
      "procs 1\n"
      "script 0 reg_read:0:0\n";
  EXPECT_THROW(api::parse_scenario("sched fifo\n" + head),
               std::invalid_argument);
  EXPECT_THROW(api::parse_scenario("persist flaky\n" + head),
               std::invalid_argument);
}

// ---- generator pools --------------------------------------------------------

TEST(scenario_gen, default_pools_draw_the_historical_schedule) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "reg");
    EXPECT_EQ(s.sched, sched::sched_policy{});
    EXPECT_EQ(s.persist, nvm::persist_model::strict);
  }
}

TEST(scenario_gen, mixed_pools_reach_every_strategy_and_model) {
  fuzz::gen_config cfg;
  cfg.sched_pool = {"round_robin", "uniform_random", "pct"};
  cfg.persist_pool = {"strict", "buffered"};
  std::set<sched::strategy> strategies;
  std::set<nvm::persist_model> models;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "counter", cfg);
    EXPECT_EQ(api::dump(s), api::dump(fuzz::generate(seed, "counter", cfg)));
    strategies.insert(s.sched.strat);
    models.insert(s.persist);
    if (s.sched.strat == sched::strategy::pct) {
      EXPECT_GE(s.sched.pct_points.size(), 1u);
      EXPECT_LE(s.sched.pct_points.size(),
                static_cast<std::size_t>(cfg.pct_depth));
    } else {
      EXPECT_TRUE(s.sched.pct_points.empty());
    }
  }
  EXPECT_EQ(strategies.size(), 3u);
  EXPECT_EQ(models.size(), 2u);
}

// ---- buffered persistency ---------------------------------------------------

// The buffered model's soundness hinge: every history event is an epoch
// boundary, so a crash reverts to a consistent cut and correct objects still
// pass the full durable-linearizability + detectability oracle.
TEST(buffered_persistency, correct_objects_stay_clean_under_crashes) {
  int crashy = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "counter");
    s.persist = nvm::persist_model::buffered;
    crashy += s.crash_steps.empty() ? 0 : 1;
    EXPECT_TRUE(fuzz::check_scenario(s).empty()) << "seed " << seed;
  }
  EXPECT_GE(crashy, 3) << "the seeds must actually exercise crashes";
}

// The acceptance bar: buffered mode produces >= 1 crash-state coverage
// bucket strict mode can never reach. `lost=1` requires a crash to discard
// stores that strict mode would already have persisted — under strict
// visibility every store is durable the moment it lands, so the bit is
// structurally unreachable there.
TEST(buffered_persistency, reaches_a_crash_state_bucket_strict_never_does) {
  std::set<std::string> strict_buckets;
  std::set<std::string> buffered_buckets;
  bool saw_lost = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "counter");
    if (s.crash_steps.empty()) continue;
    api::scripted_outcome strict = api::replay(s);
    EXPECT_FALSE(strict.report.lost_persistence)
        << "strict mode can never lose persistence (seed " << seed << ")";
    strict_buckets.insert(fuzz::bucket_of(s, strict).key());

    api::scripted_scenario b = s;
    b.persist = nvm::persist_model::buffered;
    api::scripted_outcome buffered = api::replay(b);
    EXPECT_TRUE(buffered.check.ok) << buffered.check.message;
    const fuzz::bucket_signature sig = fuzz::bucket_of(b, buffered);
    buffered_buckets.insert(sig.key());
    saw_lost = saw_lost || sig.lost_persistence;
  }
  EXPECT_TRUE(saw_lost)
      << "some buffered crash must discard a write-behind store";
  for (const std::string& key : strict_buckets) {
    EXPECT_EQ(key.find("lost=1"), std::string::npos) << key;
  }
  std::vector<std::string> only_buffered;
  for (const std::string& key : buffered_buckets) {
    if (key.find("lost=1") != std::string::npos) only_buffered.push_back(key);
  }
  EXPECT_GE(only_buffered.size(), 1u);
}

// ---- PCT vs uniform: coverage A/B ------------------------------------------

// The ISSUE-6 coverage pin (pattern of PR 4's steering A/B): on the same
// seed budget, a pct-pool campaign reaches >= 1.3x the distinct
// schedule-novelty buckets of a uniform-random campaign. The non-schedule
// generator dimensions (kind, objects, shards, crashes) are pinned so the
// bucket space *is* the schedule-novelty space — what separates the two
// campaigns is exactly the preemption-count coordinate uniform schedules
// structurally lack (preempt=0 always, vs pct's budget buckets 1..3).
TEST(coverage_ab, pct_reaches_1_3x_the_schedule_novelty_buckets_of_uniform) {
  auto campaign = [](const std::string& pool) {
    fuzz::fuzz_options opt;
    opt.base_seed = 7;
    opt.iterations = 100;
    opt.kinds = {"counter"};
    opt.diff = false;  // bucket counting only — keep the A/B cheap
    opt.gen.crashes = false;
    opt.gen.max_objects = 1;
    opt.gen.max_shards = 1;
    opt.gen.sched_pool = {pool};
    opt.gen.pct_depth = 3;
    fuzz::fuzz_stats stats = fuzz::run_fuzz(opt);
    EXPECT_FALSE(stats.failure.has_value());
    EXPECT_EQ(stats.coverage.by_strategy.size(), 1u);
    return stats.coverage.distinct_buckets;
  };
  const std::size_t uniform = campaign("uniform_random");
  const std::size_t pct = campaign("pct");
  // pct >= 1.3 * uniform, in integers.
  EXPECT_GE(pct * 10, uniform * 13)
      << "pct " << pct << " vs uniform " << uniform;
}

// ---- the planted preemption bug ---------------------------------------------

// A counter whose read only lies after a specific preemption pattern: it
// samples the inner counter twice and reports an impossible value (v1 +
// 1000) exactly when three add deltas landed between the samples. With two
// 2-add writers, reaching delta == 3 takes (a) the reader preempted right
// after its first sample and (b) the writers' run cut off mid-add before
// the fourth delta — two placed preemptions inside the reader's
// announcement window. Uniform random schedules essentially never hold a
// reader off for three full adds and then resume it at exactly that cut;
// PCT's demotion points do it by construction.
struct preempt_counter : core::detectable_object {
  api::created_object inner;

  explicit preempt_counter(api::created_object in) : inner(std::move(in)) {}

  hist::value_t invoke(int pid, const hist::op_desc& op) override {
    if (op.code != hist::opcode::ctr_read) {
      return inner.primary().invoke(pid, op);
    }
    const hist::value_t v0 = inner.primary().invoke(pid, op);
    const hist::value_t v1 = inner.primary().invoke(pid, op);
    return v1 == v0 + 3 ? v1 + 1000 : v1;
  }
  core::recovery_result recover(int pid, const hist::op_desc& op) override {
    return inner.primary().recover(pid, op);
  }
  bool wants_aux_reset() const override {
    return inner.primary().wants_aux_reset();
  }
};

void register_preempt_counter_once() {
  auto& reg = api::object_registry::global();
  if (reg.contains("test_preempt_counter")) return;
  api::kind_info info;
  info.name = "test_preempt_counter";
  info.family = api::op_family::counter;
  info.detectable = false;
  info.make = [](const api::object_env& e, const api::object_params& p) {
    api::created_object c;
    c.owned.push_back(std::make_unique<preempt_counter>(
        api::object_registry::global().create("counter", e, p)));
    return c;
  };
  info.make_spec = [](const api::object_params& p) {
    return api::object_registry::global().make_spec("counter", p);
  };
  reg.add(std::move(info));
}

// One reader (whose read double-samples), two 2-add writers.
api::scripted_scenario preempt_bug_scenario() {
  api::scripted_scenario s;
  s.objects.push_back({0, "test_preempt_counter", {}});
  s.nprocs = 3;
  s.scripts[0] = {{0, hist::opcode::ctr_read, 0, 0, 0}};
  s.scripts[1] = {{0, hist::opcode::ctr_add, 1, 0, 0},
                  {0, hist::opcode::ctr_add, 1, 0, 0}};
  s.scripts[2] = {{0, hist::opcode::ctr_add, 1, 0, 0},
                  {0, hist::opcode::ctr_add, 1, 0, 0}};
  return s;
}

// Pinned budgets, calibrated by scanning seeds 1..500: uniform_random never
// fires the bug (0/500); pct first fires at seed 118 and 10 times overall.
constexpr std::uint64_t k_preempt_seed_budget = 200;
constexpr int k_preempt_depth = 6;
constexpr std::uint64_t k_preempt_horizon = 90;

api::scripted_scenario preempt_bug_with_pct(std::uint64_t seed) {
  api::scripted_scenario s = preempt_bug_scenario();
  s.sched_seed = seed;
  s.sched.strat = sched::strategy::pct;
  s.sched.pct_points =
      sched::draw_pct_points(seed, k_preempt_depth, k_preempt_horizon);
  return s;
}

bool preempt_bug_fires(const api::scripted_scenario& s) {
  return !api::replay(s).check.ok;
}

// The ISSUE-6 acceptance bar: within the same pinned seed budget, pct finds
// the planted preemption bug and uniform_random misses it. The uniform
// scheduler would have to hold the reader off for three full adds and then
// resume it before the fourth completes — a run of ~18 exact picks; pct
// places the two cuts deliberately.
TEST(planted_preempt_bug, pct_finds_it_where_uniform_misses) {
  register_preempt_counter_once();
  const api::scripted_scenario base = preempt_bug_scenario();
  std::uint64_t first_pct = 0;
  for (std::uint64_t seed = 1; seed <= k_preempt_seed_budget; ++seed) {
    api::scripted_scenario u = base;
    u.sched_seed = seed;
    EXPECT_FALSE(preempt_bug_fires(u))
        << "uniform_random found the planted bug at seed " << seed;
    if (first_pct == 0 && preempt_bug_fires(preempt_bug_with_pct(seed))) {
      first_pct = seed;
    }
  }
  EXPECT_EQ(first_pct, 118u)
      << "pct must find the planted bug within the pinned budget";
}

// ... and the shrinker's schedule-minimization pass (strategy canonicalize,
// then drop preemption points one at a time, interleaved with the
// structural passes) reduces the drawn 6-point schedule to <= 2 preemption
// points while the repro keeps failing.
TEST(planted_preempt_bug, shrinker_minimizes_the_schedule) {
  register_preempt_counter_once();
  api::scripted_scenario p = preempt_bug_with_pct(118);
  ASSERT_TRUE(preempt_bug_fires(p));
  ASSERT_GE(p.sched.pct_points.size(), 3u) << "drawn schedule starts larger";
  api::scripted_scenario shrunk = fuzz::shrink(p, preempt_bug_fires);
  EXPECT_TRUE(preempt_bug_fires(shrunk));
  // The bug is schedule-dependent, so canonicalization must keep pct ...
  EXPECT_EQ(shrunk.sched.strat, sched::strategy::pct);
  // ... with at most the two preemption points the bug actually needs.
  EXPECT_LE(shrunk.sched.pct_points.size(), 2u);
  EXPECT_GE(shrunk.sched.pct_points.size(), 1u);
}

}  // namespace
