// E7 — Persistency-instruction cost in the shared-cache model (§6).
//
// Paper claim: the algorithms are stated in the private-cache model; the
// syntactic transformation of Izraelevitz et al. ports them to the realistic
// shared-cache model by adding explicit flush/fence instructions, preserving
// correctness and space complexity. The added cost is persistency
// instructions — counted here per operation for every algorithm.
#include "baselines/attiya_register.hpp"
#include "baselines/bendavid_cas.hpp"
#include "bench_util.hpp"
#include "core/detectable_cas.hpp"
#include "core/detectable_register.hpp"
#include "core/max_register.hpp"
#include "core/queue.hpp"
#include "core/runtime.hpp"
#include "history/log.hpp"
#include "sim/world.hpp"

namespace {

using namespace detect;

struct cost {
  double flushes_per_op = 0;
  double fences_per_op = 0;
  double shared_per_op = 0;
};

template <typename MakeObject>
cost measure(int nprocs, MakeObject make_object,
             const std::vector<hist::op_desc>& per_proc_script,
             bool shared_cache) {
  sim::world w(nprocs, {.max_steps = 10'000'000});
  if (shared_cache) {
    w.domain().set_model(nvm::cache_model::shared_cache);
    w.domain().set_auto_persist(true);
  }
  core::announcement_board board(nprocs, w.domain());
  hist::log lg;
  core::runtime rt(w, lg, board);
  auto obj = make_object(nprocs, board, w.domain());
  rt.register_object(0, *obj);
  w.domain().persist_all();
  w.domain().counters().reset();
  for (int p = 0; p < nprocs; ++p) rt.set_script(p, per_proc_script);
  sim::round_robin_scheduler sched;
  rt.run(sched);
  auto s = w.domain().counters().snapshot();
  double ops = static_cast<double>(nprocs * per_proc_script.size());
  return {static_cast<double>(s.flushes) / ops,
          static_cast<double>(s.fences) / ops,
          static_cast<double>(s.shared_total()) / ops};
}

std::vector<hist::op_desc> writes(int m) {
  std::vector<hist::op_desc> v;
  for (int i = 0; i < m; ++i) v.push_back({0, hist::opcode::reg_write, i, 0, 0});
  return v;
}
std::vector<hist::op_desc> cases(int m) {
  std::vector<hist::op_desc> v;
  for (int i = 0; i < m; ++i)
    v.push_back({0, hist::opcode::cas, i % 3, (i + 1) % 3, 0});
  return v;
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::row;
  using bench::rule;

  std::printf(
      "E7 — Persistency instructions per operation after the shared-cache\n"
      "transformation (N = 4 processes, 50 ops/process; private-cache issues\n"
      "none by construction)\n\n");
  row({"algorithm", "flush/op", "fence/op", "sharedacc/op"}, 18);
  rule(4, 18);

  auto report = [&](const char* name, cost c) {
    row({name, fmt(c.flushes_per_op, 1), fmt(c.fences_per_op, 1),
         fmt(c.shared_per_op, 1)},
        18);
  };

  report("alg1 write",
         measure(
             4,
             [](int n, core::announcement_board& b, nvm::pmem_domain& d) {
               return std::make_unique<core::detectable_register>(n, b, 0, d);
             },
             writes(50), true));
  report("attiya write",
         measure(
             4,
             [](int n, core::announcement_board& b, nvm::pmem_domain& d) {
               return std::make_unique<base::attiya_register>(n, b, 0, d);
             },
             writes(50), true));
  report("alg2 cas",
         measure(
             4,
             [](int n, core::announcement_board& b, nvm::pmem_domain& d) {
               return std::make_unique<core::detectable_cas>(n, b, 0, d);
             },
             cases(50), true));
  report("bendavid cas",
         measure(
             4,
             [](int n, core::announcement_board& b, nvm::pmem_domain& d) {
               return std::make_unique<base::bendavid_cas>(n, b, 0, d);
             },
             cases(50), true));
  report("alg3 wmax",
         measure(
             4,
             [](int n, core::announcement_board& b, nvm::pmem_domain& d) {
               return std::make_unique<core::max_register>(n, b, d);
             },
             [] {
               std::vector<hist::op_desc> v;
               for (int i = 0; i < 50; ++i)
                 v.push_back({0, hist::opcode::max_write, i, 0, 0});
               return v;
             }(),
             true));

  std::printf("\nFor contrast, the same workloads in the private-cache model:\n");
  row({"algorithm", "flush/op", "fence/op", "sharedacc/op"}, 18);
  rule(4, 18);
  report("alg1 write (pc)",
         measure(
             4,
             [](int n, core::announcement_board& b, nvm::pmem_domain& d) {
               return std::make_unique<core::detectable_register>(n, b, 0, d);
             },
             writes(50), false));
  report("alg2 cas (pc)",
         measure(
             4,
             [](int n, core::announcement_board& b, nvm::pmem_domain& d) {
               return std::make_unique<core::detectable_cas>(n, b, 0, d);
             },
             cases(50), false));

  std::printf(
      "\nShape check: in the shared-cache model every access carries one\n"
      "flush+fence (the transform), so flush/op tracks accesses/op; alg1's\n"
      "O(N) toggle loop dominates its writes, alg2 stays constant; the\n"
      "private-cache rows issue zero persistency instructions.\n");
  return 0;
}
