#!/usr/bin/env bash
# Local verification mirroring the CI pipeline (.github/workflows/ci.yml calls
# this script for every stage, so local runs and CI cannot drift).
#
#   scripts/check.sh                 # tier-1 (RelWithDebInfo) + sanitize pass
#   scripts/check.sh --fast          # tier-1 only
#   scripts/check.sh --quick         # one CI build-test cell: build + ctest
#                                    # (ctest compiles AND runs every example)
#   scripts/check.sh --fuzz N        # the CI fuzz stage: N bounded iterations
#   scripts/check.sh --fuzz-sharded N  # the CI sharded-equivalence stage:
#                                    # N single-vs-sharded diff iterations
#   scripts/check.sh --fuzz-placement N  # the CI placement-equivalence
#                                    # stage: N modulo-vs-hash-vs-range
#                                    # diff iterations (placement must be
#                                    # semantics-invariant)
#   scripts/check.sh --fuzz-sched N  # the CI schedule-exploration stage:
#                                    # N strategy-mixed (round_robin/
#                                    # uniform_random/pct) + persistency-mixed
#                                    # (strict/buffered) iterations; writes
#                                    # coverage.json with the per-strategy
#                                    # bucket tables
#   scripts/check.sh --fuzz-wmm N   # the CI memory-model stage: N
#                                    # visibility-mixed (sc/tso/pso)
#                                    # iterations — store-buffer drains
#                                    # scheduled alongside process steps,
#                                    # composed with mixed persistency;
#                                    # writes coverage.json with the
#                                    # per-visibility-model bucket table
#   scripts/check.sh --fuzz-deep N [--jobs J]
#                                    # the nightly deep-fuzz lane: N
#                                    # coverage-steered multi-object
#                                    # strategy-mixed iterations with the
#                                    # equivalence diff on every one; writes
#                                    # coverage.json. --jobs J forks J worker
#                                    # processes over the iteration range
#                                    # (per-worker summaries + shared corpus
#                                    # land in the artifact dir, coverage.json
#                                    # is the merged union)
#   scripts/check.sh --bench-smoke   # the CI bench-smoke stage: every
#                                    # E-binary with tiny parameters, plus
#                                    # bench_serve at smoke size
#   scripts/check.sh --serve-soak N  # the CI serve-soak stage: bench_serve
#                                    # with N sessions x 2000 ops — the
#                                    # invariant-enforcing serving soak
#                                    # (crashes + rebalancing + certificate)
#                                    # plus the overload and threaded
#                                    # scenarios; writes BENCH_serve.json
#
# Knobs (all respected by CI):
#   DETECT_BUILD_TYPE   CMake build type for --quick/--fuzz/--bench-smoke
#                       (default RelWithDebInfo; CI matrixes Debug/Sanitize)
#   DETECT_BUILD_DIR    build directory (default build-$DETECT_BUILD_TYPE
#                       for --quick, build otherwise)
#   DETECT_FUZZ_OUT     artifact directory for failing fuzz seeds
#                       (default fuzz-artifacts)
#   DETECT_COVERAGE_OUT coverage.json path for --fuzz-deep
#                       (default coverage.json)
#   CC/CXX              compilers, as usual with CMake
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
build_type="${DETECT_BUILD_TYPE:-RelWithDebInfo}"

configure_flags=()
if command -v ccache >/dev/null 2>&1; then
  configure_flags+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

stage_build() {           # $1 = build dir, $2 = build type
  # ${arr[@]+...} guards the empty-array expansion against set -u on
  # bash < 4.4 (macOS /bin/bash is 3.2).
  cmake -B "$1" -S . -DCMAKE_BUILD_TYPE="$2" \
    ${configure_flags[@]+"${configure_flags[@]}"} >/dev/null
  cmake --build "$1" -j "$jobs"
}

stage_ctest() {           # $1 = build dir
  ctest --test-dir "$1" --output-on-failure -j "$jobs"
}

stage_fuzz() {            # $1 = build dir, $2 = iterations, $3.. = extra flags
  local dir="$1" iters="$2"
  shift 2
  local out="${DETECT_FUZZ_OUT:-fuzz-artifacts}"
  mkdir -p "$out"
  "$dir"/fuzz_main --iters "$iters" --seed "${DETECT_FUZZ_SEED:-1}" \
    --out "$out" "$@"
}

stage_bench_smoke() {     # $1 = build dir
  # DETECT_SMOKE shrinks the E1/E2/E9 sweeps; DETECT_BENCH_ITERS bounds the
  # mini_bench fallback of E6 (ignored when real google-benchmark is linked).
  # The binary set comes from what CMake built (DETECT_BENCHES + E6), so a
  # new E-binary is picked up here without touching this script.
  local b found=0
  for b in "$1"/bench_e*; do
    [[ -x "$b" ]] || continue
    found=1
    echo "== bench-smoke: $(basename "$b") =="
    DETECT_SMOKE=1 DETECT_BENCH_ITERS="${DETECT_BENCH_ITERS:-200}" "$b"
  done
  if [[ "$found" == 0 ]]; then
    echo "bench-smoke: no bench_e* binaries in $1" >&2
    return 1
  fi
  # Throughput floor on the E6 sweep's single-backend row: the fiber-engine
  # step loop keeps the single sim backend in the hundreds of thousands of
  # ops/s even at smoke parameters, so 5x the pre-fiber seed baseline
  # (~6.7k ops/s) catches a step-loop regression while leaving ample
  # headroom for slow CI runners.
  # bench_serve is not an E-binary (no paper experiment number) but belongs
  # in the smoke sweep: it enforces the serving invariants and exits nonzero
  # on any violation, so a broken front-end fails this stage.
  if [[ -x "$1"/bench_serve ]]; then
    echo "== bench-smoke: bench_serve =="
    DETECT_SMOKE=1 "$1"/bench_serve
  fi
  if [[ -f BENCH_e6.json ]]; then
    python3 - <<'PY'
import json, sys
FLOOR = 33_500  # 5x the recorded pre-fiber-engine baseline of ~6.7k ops/s
with open("BENCH_e6.json") as f:
    data = json.load(f)
rows = [r for r in data["results"] if r["backend"] == "single"]
if not rows:
    sys.exit("bench-smoke: no single-backend row in BENCH_e6.json")
ops = rows[0]["ops_per_sec"]
if ops < FLOOR:
    sys.exit(f"bench-smoke: single-backend throughput {ops:,.0f} ops/s "
             f"is below the floor of {FLOOR:,} ops/s — step-loop regression?")
print(f"bench-smoke: single-backend throughput {ops:,.0f} ops/s "
      f"clears the {FLOOR:,} ops/s floor")
PY
  fi
}

case "${1:-}" in
  --quick)
    dir="${DETECT_BUILD_DIR:-build-$build_type}"
    echo "== quick: $build_type build + ctest ($dir) =="
    stage_build "$dir" "$build_type"
    stage_ctest "$dir"
    ;;
  --fuzz)
    iters="${2:-500}"
    dir="${DETECT_BUILD_DIR:-build-$build_type}"
    echo "== fuzz: $iters iterations ($dir) =="
    stage_build "$dir" "$build_type"
    # Unsteered, but still reports its buckets — CI's job summary reads the
    # coverage.json of short campaigns too.
    stage_fuzz "$dir" "$iters" \
      --coverage-out "${DETECT_COVERAGE_OUT:-coverage.json}"
    ;;
  --fuzz-sharded)
    iters="${2:-500}"
    dir="${DETECT_BUILD_DIR:-build-$build_type}"
    echo "== fuzz-sharded: $iters single-vs-sharded equivalence iterations ($dir) =="
    stage_build "$dir" "$build_type"
    stage_fuzz "$dir" "$iters" --sharded-equiv
    ;;
  --fuzz-placement)
    iters="${2:-500}"
    dir="${DETECT_BUILD_DIR:-build-$build_type}"
    echo "== fuzz-placement: $iters placement-equivalence iterations ($dir) =="
    stage_build "$dir" "$build_type"
    stage_fuzz "$dir" "$iters" --placement-equiv
    ;;
  --fuzz-sched)
    # Schedule-exploration stage: the generator draws every scenario's
    # strategy from the mixed pool (round_robin / uniform_random / pct) and
    # its persistency model from strict / buffered, so PCT preemption
    # schedules and buffered-persistency crash states run under the full
    # oracle side by side with the historical uniform scheduler. The
    # coverage.json carries per-strategy bucket counts — the numbers the job
    # summary's PCT-vs-uniform table reads.
    iters="${2:-500}"
    dir="${DETECT_BUILD_DIR:-build-$build_type}"
    echo "== fuzz-sched: $iters strategy-mixed iterations ($dir) =="
    stage_build "$dir" "$build_type"
    stage_fuzz "$dir" "$iters" --sched mixed --persist mixed \
      --coverage-out "${DETECT_COVERAGE_OUT:-coverage.json}"
    ;;
  --fuzz-wmm)
    # Memory-model stage: the generator draws every scenario's store-buffer
    # visibility model from the mixed pool (sc / tso / pso) — non-sc draws
    # also script up to three full-drain points — composed with mixed
    # persistency, so relaxed-visibility runs face the full oracle. The
    # coverage.json carries the per-visibility-model bucket counts the job
    # summary renders.
    iters="${2:-500}"
    dir="${DETECT_BUILD_DIR:-build-$build_type}"
    echo "== fuzz-wmm: $iters visibility-mixed iterations ($dir) =="
    stage_build "$dir" "$build_type"
    stage_fuzz "$dir" "$iters" --visibility mixed --persist mixed \
      --coverage-out "${DETECT_COVERAGE_OUT:-coverage.json}"
    ;;
  --fuzz-deep)
    # The nightly deep-fuzz lane (also runnable locally): coverage-steered
    # generation over up-to-4-object scenarios, the full variant diff,
    # shards-min 2 so every iteration carries the single-vs-sharded
    # equivalence diff, and strategy-mixed schedule/persistency generation.
    # Emits coverage.json (buckets, timeline, per-strategy tables, corpus
    # seed list) next to the usual failure artifacts.
    iters="${2:-30000}"
    # Optional campaign fan-out: `--fuzz-deep N --jobs J` forks J workers
    # (DETECT_FUZZ_JOBS works too; the flag wins). J > 1 turns the N-budget
    # lane into an N-per-worker-wall-clock campaign on a J-core runner.
    fuzz_jobs="${DETECT_FUZZ_JOBS:-1}"
    if [[ "${3:-}" == "--jobs" ]]; then
      fuzz_jobs="${4:?--jobs needs a worker count}"
    fi
    dir="${DETECT_BUILD_DIR:-build-$build_type}"
    echo "== fuzz-deep: $iters coverage-steered multi-object iterations, $fuzz_jobs worker(s) ($dir) =="
    stage_build "$dir" "$build_type"
    stage_fuzz "$dir" "$iters" \
      --coverage --coverage-out "${DETECT_COVERAGE_OUT:-coverage.json}" \
      --objects-max 4 --shards-min 2 --shards-max 4 \
      --sched mixed --persist mixed --visibility mixed --jobs "$fuzz_jobs"
    ;;
  --bench-smoke)
    dir="${DETECT_BUILD_DIR:-build-$build_type}"
    echo "== bench-smoke: every E-binary, tiny parameters ($dir) =="
    stage_build "$dir" "$build_type"
    stage_bench_smoke "$dir"
    ;;
  --serve-soak)
    sessions="${2:-32}"
    dir="${DETECT_BUILD_DIR:-build-$build_type}"
    echo "== serve-soak: $sessions sessions ($dir) =="
    stage_build "$dir" "$build_type"
    "$dir"/bench_serve --soak "$sessions" --json BENCH_serve.json
    ;;
  --fast|"")
    echo "== tier-1: RelWithDebInfo build + ctest =="
    stage_build build RelWithDebInfo
    stage_ctest build
    if [[ "${1:-}" == "--fast" ]]; then
      exit 0
    fi
    echo
    echo "== sanitize: ASan/UBSan build + ctest =="
    stage_build build-sanitize Sanitize
    stage_ctest build-sanitize
    ;;
  *)
    echo "usage: $0 [--fast | --quick | --fuzz N | --fuzz-sharded N | --fuzz-placement N | --fuzz-sched N | --fuzz-wmm N | --fuzz-deep N [--jobs J] | --bench-smoke | --serve-soak N]" >&2
    exit 2
    ;;
esac
