#include "theory/rw_model.hpp"

#include <array>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace detect::theory {

namespace {

constexpr int k_max_procs = 3;  // full model: shared space is 2N² bits

// R packs ⟨val, q, toggle⟩. A is a 2N²-bit array indexed [i][j][t].
struct rw_shared {
  std::uint8_t r_val = 0;
  std::uint8_t r_q = 0;
  std::uint8_t r_t = 0;
  std::uint32_t a = 0;  // bit (i*N + j)*2 + t

  friend bool operator==(const rw_shared&, const rw_shared&) = default;
};

int a_bit(int n, int i, int j, int t) { return (i * n + j) * 2 + t; }

// Program counters (paper line numbers; loop positions carry an index).
enum rw_pc : std::uint8_t {
  rw_idle = 0,
  rw_l1,    // read R
  rw_l2,    // A[p][q][1-qt] := 0
  rw_l3,    // read T_p
  rw_l4,    // RD_p := ...
  rw_l5,    // re-read R, branch
  rw_l6,    // cp := 1
  rw_l7,    // R := ⟨val, p, mtoggle⟩
  rw_l8,    // cp := 2
  rw_l9,    // loop A[i][p][mtoggle] := 1  (uses loop_i)
  rw_l11,   // T_p := 1 - mtoggle
  rw_l12,   // resp := ack
  // recovery
  rw_r14,   // read RD_p
  rw_r15,   // read resp
  rw_r17,   // read cp (0 → fail)
  rw_r20a,  // cp == 1: read R
  rw_r20b,  // read A[p][q][1-qt]
  rw_r22,   // cp := 2
  rw_r23,   // loop A[i][p][rd.mtoggle] := 1
  rw_r25,   // T_p := 1 - rd.mtoggle
  rw_r26,   // resp := ack
};

struct rw_proc {
  std::uint8_t pc = rw_idle;
  // volatile locals
  std::uint8_t lval = 0, lq = 0, lt = 0;  // triplet read at line 1
  std::uint8_t mtoggle = 0;
  std::uint8_t loop_i = 0;
  std::uint8_t rd_loaded = 0;  // recovery re-read RD into locals
  // private NVM
  std::uint8_t t_p = 0;
  std::uint8_t rd_mtoggle = 0, rd_val = 0, rd_q = 0, rd_t = 0;
  std::uint8_t cp = 0;
  std::uint8_t resp = 0;  // 0 = ⊥, 1 = ack
  std::uint8_t has_op = 0;
  std::uint8_t op_val = 0;

  friend bool operator==(const rw_proc&, const rw_proc&) = default;
};

struct rw_config {
  rw_shared sh;
  std::array<rw_proc, k_max_procs> procs{};

  friend bool operator==(const rw_config&, const rw_config&) = default;

  std::string key(int n) const {
    std::string s(reinterpret_cast<const char*>(&sh), sizeof sh);
    for (int i = 0; i < n; ++i) {
      s.append(reinterpret_cast<const char*>(&procs[static_cast<std::size_t>(i)]),
               sizeof(rw_proc));
    }
    return s;
  }
  std::uint64_t shared_key() const {
    return (static_cast<std::uint64_t>(r_key()) << 32) | sh.a;
  }
  std::uint32_t r_key() const {
    return static_cast<std::uint32_t>(sh.r_val) << 8 |
           static_cast<std::uint32_t>(sh.r_q) << 1 | sh.r_t;
  }
};

rw_config rw_step(const rw_config& c, int p, int n) {
  rw_config x = c;
  rw_proc& m = x.procs[static_cast<std::size_t>(p)];
  auto set_a = [&](int i, int j, int t, int bit) {
    std::uint32_t mask = 1u << a_bit(n, i, j, t);
    if (bit != 0) {
      x.sh.a |= mask;
    } else {
      x.sh.a &= ~mask;
    }
  };
  auto get_a = [&](int i, int j, int t) {
    return (c.sh.a >> a_bit(n, i, j, t)) & 1u;
  };
  switch (m.pc) {
    case rw_l1:
      m.lval = c.sh.r_val;
      m.lq = c.sh.r_q;
      m.lt = c.sh.r_t;
      m.pc = rw_l2;
      break;
    case rw_l2:
      set_a(p, m.lq, 1 - m.lt, 0);
      m.pc = rw_l3;
      break;
    case rw_l3:
      m.mtoggle = m.t_p;
      m.pc = rw_l4;
      break;
    case rw_l4:
      m.rd_mtoggle = m.mtoggle;
      m.rd_val = m.lval;
      m.rd_q = m.lq;
      m.rd_t = m.lt;
      m.pc = rw_l5;
      break;
    case rw_l5:
      m.pc = (c.sh.r_val == m.lval && c.sh.r_q == m.lq && c.sh.r_t == m.lt)
                 ? rw_l6
                 : rw_l8;
      break;
    case rw_l6:
      m.cp = 1;
      m.pc = rw_l7;
      break;
    case rw_l7:
      x.sh.r_val = m.op_val;
      x.sh.r_q = static_cast<std::uint8_t>(p);
      x.sh.r_t = m.mtoggle;
      m.pc = rw_l8;
      break;
    case rw_l8:
      m.cp = 2;
      m.loop_i = 0;
      m.pc = rw_l9;
      break;
    case rw_l9:
      set_a(m.loop_i, p, m.mtoggle, 1);
      ++m.loop_i;
      if (m.loop_i >= n) m.pc = rw_l11;
      break;
    case rw_l11:
      m.t_p = static_cast<std::uint8_t>(1 - m.mtoggle);
      m.pc = rw_l12;
      break;
    case rw_l12:
      m.resp = 1;
      m.has_op = 0;
      m.pc = rw_idle;
      break;
    case rw_r14:
      m.mtoggle = m.rd_mtoggle;  // recovery loads RD into locals
      m.lval = m.rd_val;
      m.lq = m.rd_q;
      m.lt = m.rd_t;
      m.pc = rw_r15;
      break;
    case rw_r15:
      if (m.resp != 0) {
        m.has_op = 0;
        m.pc = rw_idle;  // already linearized; verdict returned
      } else {
        m.pc = rw_r17;
      }
      break;
    case rw_r17:
      if (m.cp == 0) {
        m.has_op = 0;
        m.pc = rw_idle;  // fail; client gives up (skip policy)
      } else {
        m.pc = (m.cp == 1) ? rw_r20a : rw_r22;
      }
      break;
    case rw_r20a:
      if (c.sh.r_val == m.lval && c.sh.r_q == m.lq && c.sh.r_t == m.lt) {
        m.pc = rw_r20b;
      } else {
        m.pc = rw_r22;
      }
      break;
    case rw_r20b:
      if (get_a(p, m.lq, 1 - m.lt) == 0) {
        m.has_op = 0;
        m.pc = rw_idle;  // fail
      } else {
        m.pc = rw_r22;
      }
      break;
    case rw_r22:
      m.cp = 2;
      m.loop_i = 0;
      m.pc = rw_r23;
      break;
    case rw_r23:
      set_a(m.loop_i, p, m.rd_mtoggle, 1);
      ++m.loop_i;
      if (m.loop_i >= n) m.pc = rw_r25;
      break;
    case rw_r25:
      m.t_p = static_cast<std::uint8_t>(1 - m.rd_mtoggle);
      m.pc = rw_r26;
      break;
    case rw_r26:
      m.resp = 1;
      m.has_op = 0;
      m.pc = rw_idle;
      break;
    default:
      throw std::logic_error("rw_model: step on idle process");
  }
  return x;
}

rw_config rw_invoke(const rw_config& c, int p, int val) {
  rw_config x = c;
  rw_proc& m = x.procs[static_cast<std::size_t>(p)];
  m.has_op = 1;
  m.op_val = static_cast<std::uint8_t>(val);
  m.cp = 0;
  m.resp = 0;
  m.pc = rw_l1;
  return x;
}

rw_config rw_crash(const rw_config& c, int n) {
  rw_config x = c;
  for (int p = 0; p < n; ++p) {
    rw_proc& m = x.procs[static_cast<std::size_t>(p)];
    m.lval = m.lq = m.lt = m.mtoggle = m.loop_i = m.rd_loaded = 0;
    m.pc = (m.has_op != 0) ? rw_r14 : rw_idle;
  }
  return x;
}

}  // namespace

config_count rw_bfs_configurations(int nprocs, int domain,
                                   std::uint64_t max_states) {
  if (nprocs < 1 || nprocs > k_max_procs) {
    throw std::invalid_argument("rw_bfs_configurations: 1 <= N <= 3");
  }
  if (domain < 2 || domain > 255) {
    throw std::invalid_argument("rw_bfs_configurations: 2 <= domain <= 255");
  }
  config_count out;
  std::unordered_set<std::string> seen;
  std::unordered_set<std::uint64_t> shared_seen;
  std::deque<rw_config> frontier;

  rw_config init;  // R = ⟨0, 0, 0⟩, A all zero
  seen.insert(init.key(nprocs));
  shared_seen.insert(init.shared_key());
  frontier.push_back(init);

  auto visit = [&](const rw_config& c) {
    if (seen.insert(c.key(nprocs)).second) {
      shared_seen.insert(c.shared_key());
      frontier.push_back(c);
    }
  };

  while (!frontier.empty()) {
    if (seen.size() >= max_states) {
      out.complete = false;
      break;
    }
    rw_config c = frontier.front();
    frontier.pop_front();
    for (int p = 0; p < nprocs; ++p) {
      const rw_proc& m = c.procs[static_cast<std::size_t>(p)];
      if (m.pc == rw_idle) {
        for (int v = 0; v < domain; ++v) visit(rw_invoke(c, p, v));
      } else {
        visit(rw_step(c, p, nprocs));
      }
    }
    visit(rw_crash(c, nprocs));
  }
  out.total_configs = seen.size();
  out.shared_configs = shared_seen.size();
  return out;
}

config_count rw_quiescent_reachability(int nprocs, int domain) {
  if (nprocs < 1 || nprocs > 3) {
    throw std::invalid_argument("rw_quiescent_reachability: 1 <= N <= 3");
  }
  // Quiescent state = shared (R, A) plus the private toggles T[p] (they
  // determine the next transition); count the shared projection.
  struct qstate {
    rw_shared sh;
    std::array<std::uint8_t, k_max_procs> t{};
  };
  auto key_of = [nprocs](const qstate& s) {
    std::uint64_t k = (static_cast<std::uint64_t>(s.sh.r_val) << 40) |
                      (static_cast<std::uint64_t>(s.sh.r_q) << 34) |
                      (static_cast<std::uint64_t>(s.sh.r_t) << 33) | s.sh.a;
    for (int p = 0; p < nprocs; ++p) {
      k = k * 2 + s.t[static_cast<std::size_t>(p)];
    }
    return k;
  };
  auto shared_key_of = [](const qstate& s) {
    return (static_cast<std::uint64_t>(s.sh.r_val) << 40) |
           (static_cast<std::uint64_t>(s.sh.r_q) << 34) |
           (static_cast<std::uint64_t>(s.sh.r_t) << 33) | s.sh.a;
  };

  std::unordered_set<std::uint64_t> seen;
  std::unordered_set<std::uint64_t> shared_seen;
  std::deque<qstate> frontier;
  qstate init;
  seen.insert(key_of(init));
  shared_seen.insert(shared_key_of(init));
  frontier.push_back(init);

  while (!frontier.empty()) {
    qstate s = frontier.front();
    frontier.pop_front();
    for (int p = 0; p < nprocs; ++p) {
      for (int v = 0; v < domain; ++v) {
        // Solo write by p of value v from a quiescent configuration:
        // line 2 clears A[p][q][1-qt]; line 7 installs ⟨v, p, T_p⟩; lines
        // 9-10 set column A[*][p][T_p]; line 11 flips T_p.
        qstate x = s;
        int q = s.sh.r_q;
        int qt = s.sh.r_t;
        x.sh.a &= ~(1u << a_bit(nprocs, p, q, 1 - qt));
        std::uint8_t mt = s.t[static_cast<std::size_t>(p)];
        x.sh.r_val = static_cast<std::uint8_t>(v);
        x.sh.r_q = static_cast<std::uint8_t>(p);
        x.sh.r_t = mt;
        for (int i = 0; i < nprocs; ++i) {
          x.sh.a |= 1u << a_bit(nprocs, i, p, mt);
        }
        x.t[static_cast<std::size_t>(p)] = static_cast<std::uint8_t>(1 - mt);
        if (seen.insert(key_of(x)).second) {
          shared_seen.insert(shared_key_of(x));
          frontier.push_back(x);
        }
      }
    }
  }
  config_count out;
  out.total_configs = seen.size();
  out.shared_configs = shared_seen.size();
  return out;
}

}  // namespace detect::theory
