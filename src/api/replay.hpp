// Replayable scripted scenarios — the serialization half of the detect::api
// façade.
//
// A `scripted_scenario` is a fully self-contained run recipe over a set of
// registry objects: an ordered list of (object id, kind, params)
// declarations, process count, fail policy, memory model, scheduler seed,
// crash plan, execution backend + shard count + placement policy, an
// optional migration plan, and the per-process op scripts whose ops each
// name a target object id. `replay()` builds a fresh executor for it and
// runs it to completion, so the same value always reproduces the same
// execution — the currency the fuzzer generates, diffs, shrinks, and dumps.
// On the sharded backend the declared ids and declaration order feed the
// placement policy, so a multi-object scenario drives the cross-shard
// routing and merged-log paths directly. A scenario with migrations runs in
// two rounds: the scripts once, then (on the sharded backend) each
// `migrate` step, then the same scripts again — the post-migration round
// exercises the transplanted state.
//
// `dump()`/`parse_scenario()` round-trip scenarios through a line-oriented
// text form (format v6, which adds `visibility` and `drain_steps` lines; v5
// dumps parse with visibility sc and no drain steps, v4 and older dumps
// additionally without sched/persist/placement/migrate lines, and v1/v2
// dumps, which carry a single `kind`/`params` pair instead of `object`
// lines, still parse as the single-object special case). Failing fuzz runs
// are persisted as these dumps and replayed with `fuzz_main --replay`.
//
// `family_opcodes()` exposes each opcode family's invocable op set so
// generators can randomize over a kind's full op mix instead of hand-coding
// per-family scripts the way `smoke_script` does.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/harness.hpp"
#include "api/registry.hpp"
#include "history/checker.hpp"

namespace detect::api {

/// One declared object of a scenario: the id scripts target (and shards
/// route on), the registry kind instantiated under it, and its params.
struct scenario_object {
  std::uint32_t id = 0;
  std::string kind;
  object_params params;
};

/// A replayable run recipe: an ordered list of registry objects plus
/// everything the executor builder and runtime need to reproduce the
/// execution bit-for-bit.
struct scripted_scenario {
  /// Declared objects, in declaration order. Never empty for a valid
  /// scenario; v1/v2 dumps parse to exactly one entry with id 0.
  std::vector<scenario_object> objects;
  int nprocs = 2;
  core::runtime::fail_policy policy = core::runtime::fail_policy::skip;
  bool shared_cache = false;
  std::uint64_t sched_seed = 0;
  /// Schedule-exploration strategy `sched_seed` drives (see detect::sched).
  /// v4 and older dumps carry no `sched` key and parse as uniform_random —
  /// exactly the scheduler those replays always used.
  sched::sched_policy sched;
  /// Persistency-visibility model; dumps predating v5 parse as strict.
  nvm::persist_model persist = nvm::persist_model::strict;
  /// Store-buffer visibility model between live processes (sc / tso / pso;
  /// see wmm::visibility_model); dumps predating v6 parse as sc — exactly
  /// the interleaving semantics those replays always had. Orthogonal to
  /// `persist`: a buffered store drains (becomes globally visible) before
  /// it persists or journals.
  wmm::visibility_model visibility = wmm::visibility_model::sc;
  /// Scripted full-drain steps under tso/pso (sim::world_config's
  /// drain_points, keyed on the shard-local step counter like crash_steps).
  /// Meaningless — and kept empty by the generator/shrinker — under sc.
  std::vector<std::uint64_t> drain_steps;
  std::vector<std::uint64_t> crash_steps;
  /// Which execution backend replays this scenario. Dumps predating the
  /// executor redesign carry neither field and parse as single/1.
  exec_backend backend = exec_backend::single;
  /// Shard count: the sharded backend's world count when backend == sharded,
  /// and the shard count fuzz::diff_sharded replays the scenario under for
  /// the single-vs-sharded equivalence diff otherwise (1 = no sharded diff).
  int shards = 1;
  /// Shard-placement policy (see api/placement.hpp). Semantics-invariant by
  /// design: fuzz::diff_placement replays scenarios under several policies
  /// and requires identical verdicts. v3 and older dumps parse as modulo.
  placement_policy placement;
  /// Migration plan, applied between the two script rounds on the sharded
  /// backend (skipped, as the semantic no-op it is, on one-world backends so
  /// cross-backend diffs stay comparable). Ordered (object id, target
  /// shard).
  std::vector<std::pair<std::uint32_t, int>> migrations;
  /// Per-process op scripts; each op's `object` field names a declared id.
  std::map<int, std::vector<hist::op_desc>> scripts;

  /// The first declared object — what single-object scenarios (and the
  /// campaign's per-iteration kind rotation) revolve around. Throws
  /// std::logic_error on an object-less scenario.
  const scenario_object& primary() const;

  /// The declaration of `id`, or nullptr when undeclared.
  const scenario_object* find_object(std::uint32_t id) const;

  /// Declare a new object under the smallest unused id; returns that id.
  std::uint32_t add_object(std::string kind, object_params params = {});

  /// Total scripted ops across all processes.
  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& [pid, ops] : scripts) n += ops.size();
    return n;
  }
};

struct scripted_outcome {
  sim::run_report report;
  hist::check_result check;
  std::vector<hist::event> events;
  std::string log_text;
};

/// Build an executor for `s` (instantiating every declared object from the
/// registry under its declared id on `s.backend`), install the scripts, run,
/// and check. Throws std::invalid_argument on scenarios whose ops target
/// undeclared objects.
scripted_outcome replay(const scripted_scenario& s);

/// Same, with explicit check knobs: node budget, a shared per-object check
/// memo (the differ threads one through a scenario's whole variant family so
/// identical object histories linearize once), and the per-object fan-out
/// (`jobs` — see hist::check_options).
scripted_outcome replay(const scripted_scenario& s,
                        const hist::check_options& opt);

/// Deprecated memo-only form (thin shim; prefer replay(s, options)).
scripted_outcome replay(const scripted_scenario& s, hist::lin_memo* memo);

/// Same, but skip the (potentially expensive) durable-linearizability check;
/// `check` is left defaulted.
scripted_outcome replay_unchecked(const scripted_scenario& s);

/// Line-oriented text form (v6); `parse_scenario(dump(s))` round-trips
/// exactly.
std::string dump(const scripted_scenario& s);

/// Inverse of `dump`; also accepts v5 dumps (no visibility/drain_steps
/// lines → sc, no drains), v4 dumps (additionally no sched/persist lines →
/// uniform_random/strict), v3 dumps (no placement/migrate lines → modulo,
/// no migrations) and v1/v2 dumps (single `kind`/`params` pair → one object
/// with id 0). Throws std::invalid_argument on malformed input, duplicate
/// object ids, or ops/migrations targeting an undeclared object — the
/// message carries the 1-based line and the offending token.
scripted_scenario parse_scenario(const std::string& text);

/// The invocable opcodes of a family — the alphabet generators draw from.
const std::vector<hist::opcode>& family_opcodes(op_family family);

const char* family_name(op_family family) noexcept;

/// Inverse of opcode_name(). Throws std::invalid_argument on unknown names.
hist::opcode opcode_from_name(const std::string& name);

const char* fail_policy_name(core::runtime::fail_policy p) noexcept;
core::runtime::fail_policy fail_policy_from_name(const std::string& name);

}  // namespace detect::api
