// detect::serve — sessioned serving front-end: batch ingest, admission
// control, completion matching under crashes, hot-shard rebalancing, and the
// end-of-soak durable-linearizability certificate.
//
// Workload-shaping note that governs every test here: the checker certifies
// at most 64 operations per object, so serving workloads scale by object
// *population* — many objects with short histories, a "hot shard" being a
// cluster of busy objects, never one object with thousands of ops.
#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serve.hpp"

namespace detect {
namespace {

using serve::submit_status;

// ---- statuses ---------------------------------------------------------------

TEST(serve_session, submit_statuses_have_names) {
  EXPECT_STREQ(serve::submit_status_name(submit_status::admitted), "admitted");
  EXPECT_STREQ(serve::submit_status_name(submit_status::overloaded),
               "overloaded");
  EXPECT_STREQ(serve::submit_status_name(submit_status::shutting_down),
               "shutting_down");
  EXPECT_STREQ(serve::submit_status_name(submit_status::invalid_op),
               "invalid_op");
  EXPECT_TRUE(serve::admitted(submit_status::admitted));
  EXPECT_FALSE(serve::admitted(submit_status::overloaded));
}

// ---- rebalancer planning (pure logic, no worlds) ----------------------------

TEST(serve_rebalancer, plans_only_on_sustained_imbalance) {
  serve::rebalance_policy pol;
  pol.enabled = true;
  pol.window = 2;
  pol.check_every = 1;
  pol.hot_ratio = 1.5;
  pol.sustain = 2;
  pol.max_moves = 2;
  serve::rebalancer reb(pol, 2);
  const std::map<std::uint32_t, int> homes = {{0, 0}, {1, 0}, {2, 1}};

  // First hot evaluation: streak 1 of 2 — no plan yet.
  reb.record_round({{0, 10}, {1, 10}});
  EXPECT_TRUE(reb.maybe_plan(homes).empty());
  EXPECT_GE(reb.last_ratio(), 1.5);

  // Sustained: the plan fires and strictly narrows the hot-cold gap.
  reb.record_round({{0, 10}, {1, 10}});
  std::vector<serve::planned_move> plan = reb.maybe_plan(homes);
  ASSERT_EQ(plan.size(), 1u);  // moving both would just swap the hot shard
  EXPECT_EQ(plan[0].from, 0);
  EXPECT_EQ(plan[0].to, 1);

  // A balanced window never builds a streak.
  serve::rebalancer reb2(pol, 2);
  reb2.record_round({{0, 10}, {2, 10}});
  EXPECT_TRUE(reb2.maybe_plan(homes).empty());
  reb2.record_round({{0, 10}, {2, 10}});
  EXPECT_TRUE(reb2.maybe_plan(homes).empty());
  EXPECT_DOUBLE_EQ(reb2.last_ratio(), 1.0);
}

TEST(serve_rebalancer, respects_frozen_objects_and_the_disabled_gate) {
  serve::rebalance_policy pol;
  pol.enabled = true;
  pol.window = 1;
  pol.check_every = 1;
  pol.hot_ratio = 1.2;
  pol.sustain = 1;
  pol.max_moves = 8;
  serve::rebalancer reb(pol, 2);
  const std::map<std::uint32_t, int> homes = {{0, 0}, {1, 0}, {2, 0}, {3, 1}};

  reb.record_round({{0, 8}, {1, 6}, {2, 4}});
  // Freezing the heaviest object forces the planner onto lighter candidates.
  std::vector<serve::planned_move> plan = reb.maybe_plan(homes, {0});
  ASSERT_FALSE(plan.empty());
  for (const serve::planned_move& m : plan) EXPECT_NE(m.object, 0u);

  // Disabled policy still *measures* (so off-mode stats stay comparable)
  // but never plans.
  serve::rebalance_policy off = pol;
  off.enabled = false;
  serve::rebalancer noop(off, 2);
  noop.record_round({{0, 100}});
  EXPECT_TRUE(noop.maybe_plan(homes).empty());
  EXPECT_DOUBLE_EQ(noop.last_ratio(), 2.0);
}

// ---- program order & exact-once completions ---------------------------------

TEST(serve_server, completes_in_per_session_program_order) {
  auto srv = serve::server::builder()
                 .shards(2)
                 .procs(4)
                 .seed(5)
                 .batch_max_ops(8)
                 .build();
  std::vector<api::counter> objs;
  for (int i = 0; i < 4; ++i) objs.push_back(srv->add_counter());
  serve::session a = srv->open_session();
  serve::session b = srv->open_session();

  // Completion tickets per (session, object): one session's ops on one
  // object execute in submission order, so tickets must arrive sorted.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::vector<std::uint64_t>>
      order;
  std::map<std::uint32_t, std::multiset<hist::value_t>> responses;
  auto record = [&](const serve::completion& c) {
    order[{c.session, c.object}].push_back(c.ticket);
    responses[c.object].insert(c.value);
  };

  for (int i = 0; i < 12; ++i) {
    for (const api::counter& c : objs) {
      ASSERT_EQ(a.submit(c.add(1), record), submit_status::admitted);
      ASSERT_EQ(b.submit(c.add(1), record), submit_status::admitted);
    }
    srv->pump();
  }
  srv->drain();

  for (const auto& [key, tickets] : order) {
    EXPECT_TRUE(std::is_sorted(tickets.begin(), tickets.end()))
        << "session " << key.first << " object " << key.second;
    EXPECT_EQ(tickets.size(), 12u);
  }
  // Counter adds return the old value: each object's 24 responses must be
  // exactly {0..23} — a duplicate or gap means a doubled or lost add.
  for (const auto& [object, vals] : responses) {
    ASSERT_EQ(vals.size(), 24u) << "object " << object;
    hist::value_t expect = 0;
    for (hist::value_t v : vals) EXPECT_EQ(v, expect++);
  }
  EXPECT_TRUE(srv->check().ok);

  serve::session snapshotted = a;  // handles are copyable views
  EXPECT_EQ(snapshotted.submitted(), 48u);
  EXPECT_EQ(snapshotted.completed(), 48u);
  EXPECT_EQ(snapshotted.rejected(), 0u);
}

// ---- the deterministic soak -------------------------------------------------

// 32 sessions × 2000 ops with crash injection and live rebalancing: zero
// lost or duplicated completions, per-session order, and a clean per-object
// durable-linearizability certificate over the merged history.
//
// Shape: 64k ops over 3200 counters. The 800 objects homed on shard 0 (ids
// ≡ 0 mod 4) take 50% of all traffic — 40 ops each, inside the checker cap —
// which holds the shard-0 load ratio at ~2.0 until the rebalancer reacts.
// Per-wave offered load stays under batch_max_ops so every pump() fully
// drains its queues: nothing is ever frozen, and the move plan can fire the
// moment the hot streak is sustained.
TEST(serve_soak, crashy_migrating_soak_is_lossless_and_checkable) {
  constexpr int k_sessions = 32;
  constexpr int k_ops = 2000;  // per session
  constexpr int k_objects = 3200;
  constexpr int k_shards = 4;
  constexpr int k_waves = 40;

  auto srv = serve::server::builder()
                 .shards(k_shards)
                 .procs(8)
                 .seed(42)
                 .crash_random(17, 0.0005, 2)
                 .batch_max_ops(1024)
                 .queue_high_water(1 << 20)  // the soak admits everything…
                 .session_tokens(1e9, 1e9)   // …admission is tested apart
                 .rebalance({.enabled = true,
                             .window = 4,
                             .check_every = 4,
                             .hot_ratio = 1.3,
                             .sustain = 2,
                             .max_moves = 16})
                 .build();

  std::vector<api::counter> objs;
  objs.reserve(k_objects);
  for (int i = 0; i < k_objects; ++i) objs.push_back(srv->add_counter());
  std::vector<serve::session> sessions;
  for (int i = 0; i < k_sessions; ++i) sessions.push_back(srv->open_session());

  std::set<std::uint64_t> seen_tickets;
  std::uint64_t dup_tickets = 0;
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> last_ticket;
  std::uint64_t order_violations = 0;
  std::uint64_t callbacks = 0;
  auto on_done = [&](const serve::completion& c) {
    ++callbacks;
    if (!seen_tickets.insert(c.ticket).second) ++dup_tickets;
    std::uint64_t& last = last_ticket[{c.session, c.object}];
    if (c.ticket <= last) ++order_violations;
    last = c.ticket;
  };

  // Even submits hit the hot cluster, odd submits spread over the rest.
  // Consecutive sessions continue each other's stride, so both sequences
  // walk [0, 32000) and the modulus spreads ops exactly evenly: 40 per hot
  // object, 13–14 per cold one.
  auto target_of = [&](int s, int i) -> const api::counter& {
    const int stride = s * (k_ops / 2) + i / 2;
    if (i % 2 == 0) {
      const int idx = stride % (k_objects / k_shards);
      return objs[static_cast<std::size_t>(idx) * k_shards];
    }
    const int j = stride % (k_objects - k_objects / k_shards);
    const int id = (j / (k_shards - 1)) * k_shards + 1 + (j % (k_shards - 1));
    return objs[static_cast<std::size_t>(id)];
  };

  std::uint64_t admitted = 0;
  constexpr int k_per_wave = k_ops / k_waves;  // 50 ops per session per wave
  for (int wave = 0; wave < k_waves; ++wave) {
    for (int s = 0; s < k_sessions; ++s) {
      for (int i = wave * k_per_wave; i < (wave + 1) * k_per_wave; ++i) {
        ASSERT_EQ(sessions[static_cast<std::size_t>(s)].submit(
                      target_of(s, i).add(1), on_done),
                  submit_status::admitted);
        ++admitted;
      }
    }
    srv->pump();
  }
  srv->drain();

  serve::stats st = srv->snapshot();
  EXPECT_EQ(admitted, static_cast<std::uint64_t>(k_sessions) * k_ops);
  EXPECT_EQ(st.admitted, admitted);
  EXPECT_EQ(st.completed, admitted);  // zero lost completions
  EXPECT_EQ(callbacks, admitted);     // every callback fired…
  EXPECT_EQ(dup_tickets, 0u);         // …exactly once
  EXPECT_EQ(order_violations, 0u);    // per-session program order held
  EXPECT_EQ(st.inflight, 0u);
  EXPECT_GE(st.crashes, 1u) << "the soak is supposed to be crashy";
  EXPECT_GE(st.moves.size(), 1u) << "the skew should have triggered moves";
  EXPECT_GE(st.moves.front().ratio_before, 1.3);
  EXPECT_GT(st.nvm_cells, 0u);
  EXPECT_GE(st.nvm_bytes, st.nvm_cells);
  EXPECT_GE(st.p99, st.p50);
  EXPECT_EQ(st.latency_unit, "rounds");

  hist::check_result cr = srv->check();
  EXPECT_TRUE(cr.ok) << cr.message;
  EXPECT_EQ(cr.objects, static_cast<std::size_t>(k_objects));
}

// A seeded serving run is fully replayable: same seeds, same workload →
// identical event log, crash count, moves, and latency quantiles.
TEST(serve_soak, deterministic_mode_is_replayable) {
  auto run_once = [] {
    auto srv = serve::server::builder()
                   .shards(2)
                   .procs(4)
                   .seed(9)
                   .crash_random(23, 0.01, 2)
                   .batch_max_ops(16)
                   .rebalance({.enabled = true,
                               .window = 2,
                               .check_every = 2,
                               .hot_ratio = 1.2,
                               .sustain = 1,
                               .max_moves = 2})
                   .build();
    std::vector<api::counter> objs;
    for (int i = 0; i < 8; ++i) objs.push_back(srv->add_counter());
    serve::session s0 = srv->open_session();
    serve::session s1 = srv->open_session();
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 4; ++i) {
        s0.submit(objs[static_cast<std::size_t>(2 * (i % 4))].add(1));
        s1.submit(objs[static_cast<std::size_t>(i % 3)].add(1));
      }
      srv->pump();
    }
    srv->drain();
    std::string fp = serve::stats_json(srv->snapshot());
    for (const hist::event& e : srv->events()) fp += e.to_string();
    return fp;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---- admission control ------------------------------------------------------

TEST(serve_admission, queue_high_water_bounds_depth_and_is_retryable) {
  auto srv = serve::server::builder()
                 .shards(1)
                 .procs(2)
                 .batch_max_ops(8)
                 .queue_high_water(8)
                 .build();
  api::counter c = srv->add_counter();
  serve::session s = srv->open_session();

  int ok = 0, rejected = 0;
  for (int i = 0; i < 32; ++i) {
    submit_status st = s.submit(c.add(1));
    if (st == submit_status::admitted) ++ok;
    if (st == submit_status::overloaded) ++rejected;
  }
  EXPECT_EQ(ok, 8);  // exactly the high-water mark
  EXPECT_EQ(rejected, 24);
  serve::stats before = srv->snapshot();
  EXPECT_EQ(before.rejected_queue, 24u);
  EXPECT_LE(before.shards[0].max_queue_depth, 8u);  // depth stayed bounded

  // `overloaded` is retryable: one round frees the queue and the same
  // submit goes through.
  srv->pump();
  EXPECT_EQ(s.submit(c.add(1)), submit_status::admitted);
  srv->drain();
  EXPECT_EQ(srv->snapshot().completed, 9u);
  EXPECT_TRUE(srv->check().ok);
}

TEST(serve_admission, session_token_bucket_refills_per_round) {
  auto srv = serve::server::builder()
                 .shards(1)
                 .procs(2)
                 .batch_max_ops(64)
                 .session_tokens(4, 4)
                 .build();
  api::counter c = srv->add_counter();
  serve::session s = srv->open_session();

  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    if (serve::admitted(s.submit(c.add(1)))) ++ok;
  }
  EXPECT_EQ(ok, 4);  // bucket capacity
  EXPECT_EQ(srv->snapshot().rejected_session_tokens, 6u);
  srv->pump();  // rounds refill the bucket
  EXPECT_TRUE(serve::admitted(s.submit(c.add(1))));
  srv->drain();
}

TEST(serve_admission, global_inflight_cap_and_invalid_ops) {
  auto srv =
      serve::server::builder().shards(2).procs(2).global_inflight(4).build();
  api::counter c = srv->add_counter();
  serve::session s = srv->open_session();

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(serve::admitted(s.submit(c.add(1))));
  }
  EXPECT_EQ(s.submit(c.add(1)), submit_status::overloaded);
  EXPECT_EQ(srv->snapshot().rejected_global, 1u);

  // An op naming an object the server does not host is invalid, not
  // overloaded — retrying it would never help.
  hist::op_desc bogus;
  bogus.object = 999;
  bogus.code = hist::opcode::ctr_add;
  bogus.a = 1;
  EXPECT_EQ(s.submit(bogus), submit_status::invalid_op);
  EXPECT_EQ(srv->snapshot().rejected_invalid, 1u);
  srv->drain();
}

TEST(serve_admission, shutdown_rejects_new_work_but_drains_admitted) {
  auto srv = serve::server::builder().shards(2).procs(2).build();
  api::counter c = srv->add_counter();
  serve::session s = srv->open_session();
  std::uint64_t completions = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(serve::admitted(
        s.submit(c.add(1), [&](const serve::completion&) { ++completions; })));
  }
  srv->shutdown();
  EXPECT_EQ(s.submit(c.add(1)), submit_status::shutting_down);
  EXPECT_EQ(completions, 6u);  // admitted work drained before shutdown returned
  serve::stats st = srv->snapshot();
  EXPECT_EQ(st.completed, 6u);
  EXPECT_EQ(st.rejected_shutdown, 1u);
  EXPECT_EQ(st.inflight, 0u);
}

// ---- rebalancer A/B ---------------------------------------------------------

// The same skewed workload with the rebalancer off vs on: on-mode must move
// at least one object off the hot shard and end with a strictly better
// window load ratio than both the off-mode run and its own pre-move trigger.
TEST(serve_rebalance, ab_skew_improves_the_load_ratio) {
  auto run = [](bool rebalance_on) {
    auto srv = serve::server::builder()
                   .shards(4)
                   .procs(8)
                   .seed(13)
                   .batch_max_ops(32)
                   .rebalance({.enabled = rebalance_on,
                               .window = 4,
                               .check_every = 4,
                               .hot_ratio = 1.5,
                               .sustain = 2,
                               .max_moves = 2})
                   .build();
    std::vector<api::counter> objs;
    for (int i = 0; i < 16; ++i) objs.push_back(srv->add_counter());
    std::vector<serve::session> sessions;
    for (int i = 0; i < 4; ++i) sessions.push_back(srv->open_session());

    for (int round = 0; round < 24; ++round) {
      for (std::size_t s = 0; s < sessions.size(); ++s) {
        // Two ops on the shard-0 cluster {0,4,8,12}, one cold op.
        sessions[s].submit(objs[4 * ((s * 2) % 4)].add(1));
        sessions[s].submit(objs[4 * ((s * 2 + 1) % 4)].add(1));
        sessions[s].submit(
            objs[4 * ((static_cast<std::size_t>(round) + s) % 4) + 1 + s % 3]
                .add(1));
      }
      srv->pump();
    }
    srv->drain();
    serve::stats st = srv->snapshot();
    EXPECT_TRUE(srv->check().ok);
    return st;
  };

  serve::stats off = run(false);
  serve::stats on = run(true);

  EXPECT_TRUE(off.moves.empty());
  EXPECT_GE(off.load_ratio_window, 1.5);  // the skew persists without the loop
  ASSERT_GE(on.moves.size(), 1u);
  EXPECT_EQ(on.moves.front().from, 0);  // relief starts at the hot shard
  EXPECT_GE(on.moves.front().ratio_before, 1.5);
  EXPECT_LT(on.load_ratio_window, off.load_ratio_window);
  EXPECT_LT(on.load_ratio_window, on.moves.front().ratio_before);
}

// ---- stats & serialization --------------------------------------------------

TEST(serve_stats, snapshot_counts_footprint_and_serializes) {
  auto srv =
      serve::server::builder().shards(2).procs(2).batch_max_ops(4).build();
  api::counter c0 = srv->add_counter();
  api::counter c1 = srv->add_counter();
  serve::session s = srv->open_session();
  for (int i = 0; i < 8; ++i) {
    s.submit((i % 2 == 0 ? c0 : c1).add(1));
  }
  srv->drain();

  serve::stats st = srv->snapshot();
  EXPECT_EQ(st.completed, 8u);
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GT(st.nvm_cells, 0u);
  EXPECT_GE(st.nvm_bytes, st.nvm_cells);
  EXPECT_GE(st.mean_batch_ops, 1.0);
  EXPECT_LE(st.max_batch_ops, 4u);
  EXPECT_GE(st.p50, 1u);  // a round trip takes at least one round

  const std::string json = serve::stats_json(st);
  for (const char* key :
       {"\"admitted\"", "\"completed\"", "\"rejected\"", "\"nvm_cells\"",
        "\"p99\"", "\"queue_depth\"", "\"moves\"", "\"latency_unit\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(serve_stats, latency_histogram_quantiles) {
  serve::latency_histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  // Log-bucketed: quantiles are bucket lower bounds, within the ~12%
  // relative-error envelope of the true values.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50.0, 50.0 * 0.13);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99.0, 99.0 * 0.13);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

// ---- threaded mode ----------------------------------------------------------

TEST(serve_threaded, dispatcher_serves_completions_and_drains) {
  auto srv = serve::server::builder()
                 .shards(2)
                 .procs(4)
                 .threaded(true)
                 .batch_max_ops(16)
                 .batch_window(std::chrono::microseconds(200))
                 .build();
  std::vector<api::counter> objs;
  for (int i = 0; i < 4; ++i) objs.push_back(srv->add_counter());
  serve::session a = srv->open_session();
  serve::session b = srv->open_session();

  EXPECT_THROW(srv->pump(), std::logic_error);

  std::mutex mu;
  std::uint64_t completions = 0;
  auto on_done = [&](const serve::completion&) {
    std::lock_guard lk(mu);
    ++completions;
  };
  std::uint64_t sent = 0;
  for (int i = 0; i < 64; ++i) {
    const api::counter& c = objs[static_cast<std::size_t>(i % 4)];
    if (serve::admitted(a.submit(c.add(1), on_done))) ++sent;
    if (serve::admitted(b.submit(c.add(1), on_done))) ++sent;
  }
  srv->drain();
  {
    std::lock_guard lk(mu);
    EXPECT_EQ(completions, sent);
  }
  serve::stats st = srv->snapshot();
  EXPECT_EQ(st.completed, sent);
  EXPECT_EQ(st.inflight, 0u);
  EXPECT_EQ(st.latency_unit, "us");
  srv->shutdown();
  EXPECT_TRUE(srv->check().ok);
}

}  // namespace
}  // namespace detect
