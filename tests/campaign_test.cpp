// Pins of the multi-process campaign supervisor (fuzz/campaign.hpp).
//
// The load-bearing property: a `--jobs N` campaign partitions the *same*
// absolute iteration stream the serial campaign walks — every worker derives
// scenarios from (base_seed, absolute iteration) — so with steering off the
// merged coverage (bucket union, discovery iterations, per-strategy totals)
// is exactly the serial campaign's, independent of N. Forking, worker
// summaries, and the merged coverage JSON are exercised for real here
// (POSIX fork; the suite runs wherever CI runs the tier-1 lane).
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz.hpp"

namespace {

using namespace detect;
namespace fs = std::filesystem;

TEST(partition, covers_every_iteration_exactly_once) {
  const auto slices = fuzz::partition_iterations(10, 3);
  ASSERT_EQ(slices.size(), 3u);
  // Remainder spreads over the leading workers: 4 + 3 + 3.
  EXPECT_EQ(slices[0], std::make_pair(std::uint64_t{0}, std::uint64_t{4}));
  EXPECT_EQ(slices[1], std::make_pair(std::uint64_t{4}, std::uint64_t{3}));
  EXPECT_EQ(slices[2], std::make_pair(std::uint64_t{7}, std::uint64_t{3}));
}

TEST(partition, clamps_jobs_to_iteration_count) {
  const auto slices = fuzz::partition_iterations(3, 8);
  ASSERT_EQ(slices.size(), 3u);  // never an empty slice / idle fork
  for (std::size_t w = 0; w < slices.size(); ++w) {
    EXPECT_EQ(slices[w], std::make_pair(std::uint64_t{w}, std::uint64_t{1}));
  }
}

TEST(partition, degenerate_inputs_yield_no_slices) {
  EXPECT_TRUE(fuzz::partition_iterations(0, 4).empty());
  EXPECT_TRUE(fuzz::partition_iterations(5, 0).empty());
}

TEST(partition, contiguous_for_many_shapes) {
  for (std::uint64_t total : {1ull, 7ull, 64ull, 1000ull, 30001ull}) {
    for (int jobs : {1, 2, 3, 4, 7, 16}) {
      const auto slices = fuzz::partition_iterations(total, jobs);
      std::uint64_t next = 0;
      for (const auto& [first, count] : slices) {
        EXPECT_EQ(first, next) << total << "/" << jobs;
        EXPECT_GT(count, 0u) << total << "/" << jobs;
        next = first + count;
      }
      EXPECT_EQ(next, total) << total << "/" << jobs;
    }
  }
}

TEST(campaign_config, fluent_setters_mirror_executor_builder) {
  fuzz::campaign_config cfg;
  cfg.iterations(123)
      .seed(9)
      .kinds({"reg", "cas"})
      .steer(true)
      .check_jobs(2)
      .jobs(3)
      .corpus_dir("corpus-x")
      .artifact_dir("arts-y")
      .coverage_out("cov-z.json")
      .quiet(true);
  EXPECT_EQ(cfg.options.iterations, 123u);
  EXPECT_EQ(cfg.options.base_seed, 9u);
  EXPECT_EQ(cfg.options.kinds, (std::vector<std::string>{"reg", "cas"}));
  EXPECT_TRUE(cfg.options.steer);
  EXPECT_EQ(cfg.options.check_jobs, 2);
  EXPECT_EQ(cfg.jobs(), 3);
  EXPECT_EQ(cfg.options.corpus_dir, "corpus-x");
  EXPECT_EQ(cfg.artifact_dir(), "arts-y");
  EXPECT_EQ(cfg.coverage_out(), "cov-z.json");
  EXPECT_TRUE(cfg.quiet());
}

/// Scratch dir for a test, wiped on entry so reruns start clean.
fs::path scratch_dir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("detect_campaign_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// A forked 3-worker campaign over 90 iterations must merge to exactly the
// serial campaign's coverage: same bucket union, same discovery provenance
// (iteration + seed per bucket), same per-strategy totals, summed executed.
TEST(campaign, forked_coverage_merges_to_the_serial_campaign) {
  const fs::path dir = scratch_dir("fork");

  fuzz::campaign_config serial;
  serial.iterations(90).seed(21).quiet(true);
  fuzz::campaign_result s = fuzz::run_campaign(serial);
  ASSERT_EQ(s.exit_code, 0);
  ASSERT_FALSE(s.forked);

  fuzz::campaign_config forked;
  forked.iterations(90).seed(21).jobs(3).quiet(true);
  forked.artifact_dir((dir / "arts").string())
      .coverage_out((dir / "cov.json").string());
  fuzz::campaign_result f = fuzz::run_campaign(forked);
  ASSERT_EQ(f.exit_code, 0);
  ASSERT_TRUE(f.forked);
  ASSERT_EQ(f.workers.size(), 3u);

  // Workers ran their assigned contiguous slices, nothing was lost.
  std::uint64_t executed = 0;
  for (const fuzz::worker_report& w : f.workers) {
    EXPECT_FALSE(w.lost) << "worker " << w.worker;
    EXPECT_FALSE(w.failed) << "worker " << w.worker;
    EXPECT_EQ(w.executed, w.iterations) << "worker " << w.worker;
    executed += w.executed;
  }
  EXPECT_EQ(executed, 90u);
  EXPECT_EQ(f.stats.coverage.executed, s.stats.coverage.executed);

  // Bucket union == serial bucket set, with identical discovery provenance.
  auto key_set = [](const std::vector<fuzz::corpus_entry>& corpus) {
    std::set<std::tuple<std::string, std::uint64_t, std::uint64_t>> keys;
    for (const fuzz::corpus_entry& e : corpus) {
      keys.insert({e.bucket, e.iteration, e.seed});
    }
    return keys;
  };
  EXPECT_EQ(key_set(f.stats.coverage.corpus), key_set(s.stats.coverage.corpus));
  EXPECT_EQ(f.stats.coverage.distinct_buckets,
            s.stats.coverage.distinct_buckets);

  // Per-strategy executed/distinct recomputed from the union match serial.
  auto strategy_map = [](const fuzz::coverage_stats& cov) {
    std::set<std::tuple<std::string, std::uint64_t, std::size_t>> m;
    for (const fuzz::strategy_stats& st : cov.by_strategy) {
      m.insert({st.strategy, st.executed, st.distinct_buckets});
    }
    return m;
  };
  EXPECT_EQ(strategy_map(f.stats.coverage), strategy_map(s.stats.coverage));

  // The artifacts dir holds one complete summary per worker, and the merged
  // JSON carries the campaign-level keys job_summary renders.
  for (int w = 0; w < 3; ++w) {
    EXPECT_TRUE(fs::exists(dir / "arts" /
                           ("worker-" + std::to_string(w) + ".summary")));
  }
  std::ifstream cov(dir / "cov.json");
  ASSERT_TRUE(cov.good());
  std::ostringstream buf;
  buf << cov.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"jobs\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"workers\""), std::string::npos);
  EXPECT_NE(json.find("\"distinct_buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"worker\""), std::string::npos);
}

// The shared on-disk corpus: novel-bucket scenarios are dumped as parseable
// .scn files, a later campaign ingests them, and foreign garbage never
// poisons a run.
TEST(campaign, disk_corpus_round_trips_and_survives_garbage) {
  const fs::path dir = scratch_dir("corpus");

  fuzz::fuzz_options opt;
  opt.iterations = 40;
  opt.base_seed = 5;
  opt.corpus_dir = dir.string();
  fuzz::fuzz_stats first = fuzz::run_fuzz(opt);
  ASSERT_FALSE(first.failure) << first.failure->message;

  // One dump per novel bucket, every one parseable back to a scenario.
  std::size_t dumps = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".scn") continue;
    ++dumps;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_NO_THROW(api::parse_scenario(buf.str())) << entry.path();
  }
  EXPECT_EQ(dumps, first.coverage.corpus.size());

  // A hand-dropped garbage dump must be skipped, not fatal — and a steered
  // campaign seeded only by the directory still runs its full budget.
  std::ofstream(dir / "zzz-garbage.scn") << "not a scenario\n";
  fuzz::fuzz_options steered;
  steered.iterations = 30;
  steered.base_seed = 6;
  steered.steer = true;
  steered.corpus_dir = dir.string();
  steered.worker_index = 1;  // dumps must not collide with worker 0's
  fuzz::fuzz_stats second = fuzz::run_fuzz(steered);
  EXPECT_FALSE(second.failure) << second.failure->message;
  EXPECT_EQ(second.coverage.executed, 30u);
}

// jobs > 1 with a single iteration stays inline — nothing to partition.
TEST(campaign, single_iteration_runs_inline) {
  fuzz::campaign_config cfg;
  cfg.iterations(1).seed(3).jobs(4).quiet(true);
  fuzz::campaign_result r = fuzz::run_campaign(cfg);
  EXPECT_FALSE(r.forked);
  ASSERT_EQ(r.workers.size(), 1u);
  EXPECT_EQ(r.workers[0].executed, 1u);
}

}  // namespace
