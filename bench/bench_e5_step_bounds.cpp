// E5 — Wait-freedom step bounds (Lemmas 1-2).
//
// Paper claim: Algorithms 1-2 are wait-free — every operation and recovery
// function completes in a bounded number of its own steps, independent of
// the other processes' behaviour. Algorithm 1's write performs an O(N)
// toggle loop; Algorithm 2's CAS is O(1). The max register's read (Algorithm
// 3) is only lock-free: its double collect can be perturbed.
//
// Measured: worst-case simulator steps per operation across adversarial
// random schedules, as N grows.
#include <algorithm>
#include <functional>

#include "api/api.hpp"
#include "bench_util.hpp"

namespace {

using namespace detect;

struct step_stats {
  double mean = 0;
  std::uint64_t worst = 0;
};

/// Run the per-process scripts against the named registry kind under `seeds`
/// random schedules; report mean steps per operation.
step_stats measure(const std::string& kind, int nprocs,
                   const std::function<std::vector<hist::op_desc>(
                       const api::object_handle&, int)>& make_script,
                   int seeds) {
  step_stats st;
  std::uint64_t total_steps = 0;
  std::uint64_t total_ops = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    auto b = api::harness::builder();
    b.procs(nprocs)
        .max_steps(2'000'000)
        .seed(static_cast<std::uint64_t>(seed) * 2654435761u);
    api::harness h = b.build();
    api::object_handle obj = h.add(kind);
    std::uint64_t ops = 0;
    for (int p = 0; p < nprocs; ++p) {
      auto script = make_script(obj, p);
      ops += script.size();
      h.script(p, std::move(script));
    }
    auto rep = h.run();
    total_steps += rep.steps;
    total_ops += ops;
    st.worst = std::max(st.worst, rep.steps / std::max<std::uint64_t>(ops, 1));
  }
  st.mean = static_cast<double>(total_steps) / static_cast<double>(total_ops);
  return st;
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::row;
  using bench::rule;

  std::printf(
      "E5 — Steps per operation vs N (mean over random schedules; includes\n"
      "the runtime's announcement/logging steps, identical for all objects)\n\n");
  row({"N", "alg1 write", "alg2 cas", "alg3 wmax", "alg3 read"});
  rule(5);
  for (int n : {2, 4, 8, 16}) {
    auto reg = measure(
        "reg", n,
        [](const api::object_handle& o, int p) {
          api::reg r(o);
          return std::vector<hist::op_desc>{r.write(p), r.write(p + 1)};
        },
        5);
    auto cas = measure(
        "cas", n,
        [](const api::object_handle& o, int p) {
          api::cas c(o);
          return std::vector<hist::op_desc>{c.compare_and_set(p, p + 1),
                                            c.compare_and_set(p + 1, p + 2)};
        },
        5);
    auto maxw = measure(
        "max_reg", n,
        [](const api::object_handle& o, int p) {
          api::max_reg m(o);
          return std::vector<hist::op_desc>{m.write_max(p + 1),
                                            m.write_max(p + 2)};
        },
        5);
    // Solo read: isolates the N-entry double collect (2N loads minimum).
    auto maxr = measure(
        "max_reg", n,
        [](const api::object_handle& o, int p) {
          api::max_reg m(o);
          if (p == 0) return std::vector<hist::op_desc>{m.read()};
          return std::vector<hist::op_desc>{};
        },
        5);
    row({std::to_string(n), fmt(reg.mean, 1), fmt(cas.mean, 1),
         fmt(maxw.mean, 1), fmt(maxr.mean, 1)});
  }
  std::printf(
      "\nShape check: alg1 write grows linearly in N (the toggle for-loop of\n"
      "lines 9-10); alg2 CAS stays flat (wait-free O(1)); alg3's writes are\n"
      "O(1) but its read grows at least linearly (N-entry collects) and is\n"
      "only lock-free — contention inflates it further.\n");
  return 0;
}
