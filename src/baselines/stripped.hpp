// The Theorem-2 counterexample wrapper: run any detectable object *without*
// its auxiliary state. The wrapper forwards everything but tells the runtime
// not to reset Ann_p.resp / Ann_p.CP between invocations — i.e. no write to
// NVM accessible to the operation occurs between successive invocations, and
// the operation arguments stay exactly the abstract ones (Definition 1's two
// channels both closed).
//
// Theorem 2 predicts this breaks detectability for doubly-perturbing objects:
// the recovery of a *fresh, never-executed* invocation finds the previous
// invocation's persisted response and wrongly reports "linearized".
// Experiment E3 constructs the paper's Figure-2 schedule and shows the
// resulting durable-linearizability violation — and that Algorithm 3 (max
// register), which is not doubly-perturbing, survives the same treatment.
#pragma once

#include "core/object.hpp"

namespace detect::base {

class stripped final : public core::detectable_object {
 public:
  explicit stripped(core::detectable_object& inner) : inner_(&inner) {}

  hist::value_t invoke(int pid, const hist::op_desc& op) override {
    return inner_->invoke(pid, op);
  }
  core::recovery_result recover(int pid, const hist::op_desc& op) override {
    return inner_->recover(pid, op);
  }
  bool wants_aux_reset() const override { return false; }

 private:
  core::detectable_object* inner_;
};

}  // namespace detect::base
