// Theorem 2 live harness (experiment E3): execute the proof's adversarial
// schedule (Figure 2) against real implementations and observe whether
// detectability survives.
//
// The schedule, specialized to the read/write witness of Lemma 3 (and its
// analogues for CAS / max register):
//   1. p completes Opp (e.g. write_p(v1)).           — the proof's C′_β
//   2. q completes Op′ (read_q) and the p-free
//      extension (write_q(v0)), reaching H2.          — the proof's C′_γ
//   3. E-branch: p invokes a second Opp; the system crashes immediately
//      after the invocation, before the operation performs any step.
//   4. p recovers (Op.Recover with the same arguments).
//   5. q performs Opq (read_q); the full history is checked for durable
//      linearizability + detectability.
//
// Without auxiliary state the recovery in step 4 cannot distinguish the
// fresh, never-executed invocation from the completed first one: it finds the
// stale persisted response and answers "linearized" — and step 5's
// observation contradicts it (the checker reports a violation). With the
// caller-side resets of Ann_p.resp/CP the same schedule is handled correctly,
// and Algorithm 3 (max register, not doubly-perturbing) is immune even with
// no auxiliary state because its recovery re-invokes an idempotent operation.
//
// The D-branch (crash just before the *first* Opp returns) is also provided:
// there the stale-response answer happens to be right — the two branches are
// indistinguishable to p, which is exactly the engine of the proof.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/announce.hpp"
#include "core/object.hpp"
#include "history/specs.hpp"
#include "sim/world.hpp"

namespace detect::theory {

/// Everything needed to run the Figure-2 schedule against one object kind.
struct aux_scenario {
  std::string name;
  /// Build the object under test inside the given world/board.
  std::function<std::unique_ptr<core::detectable_object>(
      int nprocs, core::announcement_board&, nvm::pmem_domain&)>
      make_object;
  /// Sequential spec for checking the recorded history.
  std::function<std::unique_ptr<hist::spec>()> make_spec;
  std::vector<hist::op_desc> h1;         // H1: ops by p, run to completion
  hist::op_desc opp;                     // the witnessing op by p (pid 0)
  hist::op_desc op1;                     // Op′ by q (pid 1)
  std::vector<hist::op_desc> extension;  // p-free extension ops by q
  hist::op_desc opq;                     // the final probe by q
};

struct aux_outcome {
  bool violation = false;                  // checker rejected the history
  hist::recovery_verdict verdict =         // what recovery claimed in step 4
      hist::recovery_verdict::none;
  hist::value_t recovered_value = hist::k_bottom;
  hist::value_t probe_response = hist::k_bottom;  // Opq's response
  std::string detail;                      // checker message on violation
};

/// E-branch: crash immediately after the second invocation of Opp.
aux_outcome run_e_branch(const aux_scenario& s);

/// D-branch: crash just before the first Opp returns (all its memory effects
/// done, response not yet delivered to the caller).
aux_outcome run_d_branch(const aux_scenario& s);

/// Ready-made scenarios. `stripped` controls whether the caller provides the
/// auxiliary resets (false ⇒ Definition 1's channels closed).
aux_scenario register_scenario(bool stripped);
aux_scenario cas_scenario(bool stripped);
aux_scenario queue_scenario(bool stripped);
aux_scenario counter_scenario(bool stripped);
aux_scenario max_register_scenario();

}  // namespace detect::theory
