// E6 — The runtime cost of detectability (google-benchmark), plus the
// backend×shards throughput sweep of the executor redesign.
//
// The paper notes (§6) that detectability "comes with a price tag in terms
// of space complexity and the need to provide auxiliary state"; this
// experiment quantifies the *time* overhead on real threads: plain objects
// vs Algorithms 1-2 vs the unbounded-id baselines, free-running over the
// detect::api::arena (no simulator hook, emulated NVM in private-cache
// mode). Objects are instantiated from the registry by kind string.
//
// Before the per-object benchmarks, main() runs a throughput sweep over the
// api::executor backends (single, sharded with a --shards list under each
// placement policy, threads) on one scripted multi-counter workload and
// writes the machine-readable BENCH_e6.json (ops/sec plus the per-shard
// op-load distribution per backend×shards×placement) — the perf-trajectory
// data points CI's bench-smoke stage archives:
//
//   bench_e6_throughput --shards 1,2,4 --sweep-procs 8 --sweep-ops 2000
//                       --json BENCH_e6.json     # all defaults shown
//   DETECT_SMOKE=1 bench_e6_throughput           # tiny sweep parameters
//
// Builds against google-benchmark when installed; otherwise CMake defines
// DETECT_USE_MINI_BENCH and the vendored fixed-iteration timer loop in
// mini_bench.hpp provides the same API subset.
#ifdef DETECT_USE_MINI_BENCH
#include "mini_bench.hpp"
#else
#include <benchmark/benchmark.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"

namespace {

using namespace detect;

constexpr int k_max_threads = 16;

// Shared per-benchmark state, rebuilt by thread 0 at the start of each run.
// Sibling threads synchronize on g_obj_ptr (release-publish / acquire-spin):
// code before google-benchmark's measurement loop runs unsynchronized, so
// they must not touch g_arena/the object until thread 0 has published it.
// Descriptors need no shared state at all — each benchmark uses one object
// and a default-constructed handle already carries its id (0).
api::arena* g_arena = nullptr;
std::atomic<core::detectable_object*> g_obj_ptr{nullptr};
std::atomic<int> g_done{0};

core::detectable_object& setup(benchmark::State& state, const char* kind) {
  if (state.thread_index() == 0) {
    g_done.store(0, std::memory_order_relaxed);
    g_arena = new api::arena(k_max_threads);
    api::object_handle obj = g_arena->add(kind);
    g_obj_ptr.store(&obj.object(), std::memory_order_release);
  } else {
    while (g_obj_ptr.load(std::memory_order_acquire) == nullptr) {
      std::this_thread::yield();
    }
  }
  return *g_obj_ptr.load(std::memory_order_acquire);
}

void teardown(benchmark::State& state) {
  g_done.fetch_add(1, std::memory_order_acq_rel);
  if (state.thread_index() == 0) {
    // Free the arena only once every sibling is done with the object.
    while (g_done.load(std::memory_order_acquire) != state.threads()) {
      std::this_thread::yield();
    }
    g_obj_ptr.store(nullptr, std::memory_order_release);
    delete g_arena;
    g_arena = nullptr;
  }
}

// The caller-side auxiliary resets (Ann_p.resp := ⊥, Ann_p.CP := 0) are part
// of the protocol being measured for detectable objects; plain objects need
// none — exactly the cost gap E6 quantifies.

void bm_register_family(benchmark::State& state, const char* kind,
                        bool aux_resets) {
  core::detectable_object& obj = setup(state, kind);
  int pid = state.thread_index();
  api::reg r;  // descriptor builder for object id 0
  hist::op_desc wr = r.write(pid);
  hist::op_desc rd = r.read();
  for (auto _ : state) {
    if (aux_resets) g_arena->reset_aux(pid);
    obj.invoke(pid, wr);
    if (aux_resets) g_arena->reset_aux(pid);
    benchmark::DoNotOptimize(obj.invoke(pid, rd));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  teardown(state);
}

void bm_cas_family(benchmark::State& state, const char* kind, bool aux_resets) {
  core::detectable_object& obj = setup(state, kind);
  int pid = state.thread_index();
  api::cas c;  // descriptor builder for object id 0
  for (auto _ : state) {
    if (aux_resets) g_arena->reset_aux(pid);
    hist::value_t cur = obj.invoke(pid, c.read());
    if (aux_resets) g_arena->reset_aux(pid);
    benchmark::DoNotOptimize(obj.invoke(pid, c.compare_and_set(cur, cur + 1)));
  }
  state.SetItemsProcessed(state.iterations());
  teardown(state);
}

void bm_plain_register(benchmark::State& state) {
  bm_register_family(state, "plain_reg", /*aux_resets=*/false);
}
void bm_detectable_register(benchmark::State& state) {
  bm_register_family(state, "reg", /*aux_resets=*/true);
}
void bm_attiya_register(benchmark::State& state) {
  bm_register_family(state, "attiya_reg", /*aux_resets=*/true);
}

void bm_plain_cas(benchmark::State& state) {
  bm_cas_family(state, "plain_cas", /*aux_resets=*/false);
}
void bm_detectable_cas(benchmark::State& state) {
  bm_cas_family(state, "cas", /*aux_resets=*/true);
}
void bm_bendavid_cas(benchmark::State& state) {
  bm_cas_family(state, "bendavid_cas", /*aux_resets=*/true);
}

void bm_detectable_counter(benchmark::State& state) {
  core::detectable_object& obj = setup(state, "counter");
  int pid = state.thread_index();
  api::counter c;  // descriptor builder for object id 0
  hist::op_desc op = c.add(1);
  for (auto _ : state) {
    g_arena->reset_aux(pid);
    benchmark::DoNotOptimize(obj.invoke(pid, op));
  }
  state.SetItemsProcessed(state.iterations());
  teardown(state);
}

void bm_max_register(benchmark::State& state) {
  core::detectable_object& obj = setup(state, "max_reg");
  int pid = state.thread_index();
  api::max_reg m;  // descriptor builder for object id 0
  std::int64_t v = 0;
  for (auto _ : state) {
    // Algorithm 3 needs no auxiliary resets at all — §5's separation.
    benchmark::DoNotOptimize(obj.invoke(pid, m.write_max(++v)));
  }
  state.SetItemsProcessed(state.iterations());
  teardown(state);
}

// ---------------------------------------------------------------------------
// Backend×shards throughput sweep (the executor redesign's data points).

struct sweep_cfg {
  std::vector<int> shard_counts = {1, 2, 4};
  int procs = 8;
  int objects = 8;
  int ops_per_proc = 2000;
  std::string json_path = "BENCH_e6.json";
};

struct sweep_row {
  const char* backend;
  int shards;
  const char* placement;
  std::vector<std::uint64_t> shard_load;  // scripted ops per shard
  std::uint64_t ops;
  double seconds;
  double ops_per_sec;
  /// Throughput relative to the sharded K=1 row (ops/s at K ÷ ops/s at 1) —
  /// the scaling trajectory CI's job summary renders. 1.0 for the baseline
  /// row itself; K rows below 1.0 mean sharding is a net loss at that K.
  double scaling_efficiency = 0.0;
};

/// One scripted multi-counter workload, identical across backends and
/// placements: every proc runs `ops_per_proc` fetch-and-adds round-robin
/// over the objects.
sweep_row run_sweep_config(api::exec_backend be, int shards,
                           api::placement_kind placement,
                           const sweep_cfg& cfg) {
  api::placement_policy pol;
  pol.kind = placement;
  auto ex = api::executor::builder()
                .backend(be)
                .shards(be == api::exec_backend::sharded ? shards : 1)
                .placement(pol)
                .procs(cfg.procs)
                .max_steps(1'000'000'000ULL)
                .build();
  std::vector<api::counter> objs;
  objs.reserve(static_cast<std::size_t>(cfg.objects));
  for (int i = 0; i < cfg.objects; ++i) objs.push_back(ex->add_counter());

  sweep_row row;
  row.shard_load.assign(static_cast<std::size_t>(ex->shards()), 0);
  for (int p = 0; p < cfg.procs; ++p) {
    std::vector<hist::op_desc> script;
    script.reserve(static_cast<std::size_t>(cfg.ops_per_proc));
    for (int i = 0; i < cfg.ops_per_proc; ++i) {
      const api::counter& obj =
          objs[static_cast<std::size_t>((p + i) % cfg.objects)];
      row.shard_load[static_cast<std::size_t>(ex->shard_of(obj.id()))] += 1;
      script.push_back(obj.add(1));
    }
    ex->script(p, std::move(script));
  }

  auto start = std::chrono::steady_clock::now();
  ex->run();
  auto stop = std::chrono::steady_clock::now();

  row.backend = api::backend_name(be);
  row.shards = shards;
  row.placement = api::placement_name(placement);
  row.ops = static_cast<std::uint64_t>(cfg.procs) *
            static_cast<std::uint64_t>(cfg.ops_per_proc);
  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.ops_per_sec =
      row.seconds > 0 ? static_cast<double>(row.ops) / row.seconds : 0.0;
  return row;
}

void run_shards_sweep(const sweep_cfg& cfg) {
  std::printf("== executor backend x shards x placement sweep (%d procs, "
              "%d objects, %d ops/proc) ==\n",
              cfg.procs, cfg.objects, cfg.ops_per_proc);
  std::vector<sweep_row> rows;
  rows.push_back(run_sweep_config(api::exec_backend::single, 1,
                                  api::placement_kind::modulo, cfg));
  for (int k : cfg.shard_counts) {
    // Placement only changes routing when there is more than one world; a
    // one-shard sweep point carries the modulo row alone.
    if (k <= 1) {
      rows.push_back(run_sweep_config(api::exec_backend::sharded, k,
                                      api::placement_kind::modulo, cfg));
      continue;
    }
    for (api::placement_kind pk :
         {api::placement_kind::modulo, api::placement_kind::hash,
          api::placement_kind::range}) {
      rows.push_back(run_sweep_config(api::exec_backend::sharded, k, pk, cfg));
    }
  }
  rows.push_back(run_sweep_config(api::exec_backend::threads, 1,
                                  api::placement_kind::modulo, cfg));

  // Scaling baseline: the sharded K=1 row when the sweep ran one (the
  // single-backend row otherwise) — efficiency at K is measured against one
  // world behind the same sharded machinery.
  double base = 0.0;
  for (const sweep_row& r : rows) {
    if (std::strcmp(r.backend, "sharded") == 0 && r.shards == 1) {
      base = r.ops_per_sec;
      break;
    }
  }
  if (base <= 0.0) base = rows.front().ops_per_sec;
  for (sweep_row& r : rows) {
    r.scaling_efficiency = base > 0.0 ? r.ops_per_sec / base : 0.0;
  }

  for (const sweep_row& r : rows) {
    std::printf("%-8s shards=%-2d %-7s  %10llu ops  %8.3f s  %12.0f ops/s  "
                "scale=%.2fx  load=[",
                r.backend, r.shards, r.placement,
                static_cast<unsigned long long>(r.ops), r.seconds,
                r.ops_per_sec, r.scaling_efficiency);
    for (std::size_t k = 0; k < r.shard_load.size(); ++k) {
      std::printf("%s%llu", k != 0 ? " " : "",
                  static_cast<unsigned long long>(r.shard_load[k]));
    }
    std::printf("]\n");
  }
  std::fflush(stdout);

  std::ofstream out(cfg.json_path);
  if (!out) {
    std::fprintf(stderr, "bench_e6: cannot write '%s'\n",
                 cfg.json_path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"e6_backend_shards_sweep\",\n"
      << "  \"config\": {\"procs\": " << cfg.procs
      << ", \"objects\": " << cfg.objects
      << ", \"ops_per_proc\": " << cfg.ops_per_proc << "},\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const sweep_row& r = rows[i];
    out << "    {\"backend\": \"" << r.backend << "\", \"shards\": "
        << r.shards << ", \"placement\": \"" << r.placement
        << "\", \"shard_load\": [";
    for (std::size_t k = 0; k < r.shard_load.size(); ++k) {
      out << (k != 0 ? ", " : "") << r.shard_load[k];
    }
    out << "], \"ops\": " << r.ops << ", \"seconds\": " << r.seconds
        << ", \"ops_per_sec\": " << r.ops_per_sec
        << ", \"scaling_efficiency\": " << r.scaling_efficiency << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n\n", cfg.json_path.c_str());
}

/// Parse "1,2,4" into shard counts; returns false on junk.
bool parse_shard_list(const char* text, std::vector<int>* out) {
  out->clear();
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    long v = std::strtol(p, &end, 10);
    if (end == p || v < 1) return false;
    out->push_back(static_cast<int>(v));
    p = end;
    if (*p == ',') {
      ++p;
      if (*p == '\0') return false;  // trailing comma
    } else if (*p != '\0') {
      return false;
    }
  }
  return !out->empty();
}

}  // namespace

BENCHMARK(bm_plain_register)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_detectable_register)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_attiya_register)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_plain_cas)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_detectable_cas)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_bendavid_cas)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();
BENCHMARK(bm_detectable_counter)->Threads(1)->Threads(2)->UseRealTime();
BENCHMARK(bm_max_register)->Threads(1)->Threads(2)->UseRealTime();

// Custom main: run the backend×shards sweep first (consuming its flags),
// then hand the remaining argv to the benchmark library.
int main(int argc, char** argv) {
  sweep_cfg cfg;
  if (std::getenv("DETECT_SMOKE") != nullptr) {
    cfg.shard_counts = {1, 2};
    cfg.procs = 4;
    cfg.ops_per_proc = 100;
  }
  bool sweep = true;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_e6: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--shards") == 0) {
      const char* text = need_value("--shards");
      if (!parse_shard_list(text, &cfg.shard_counts)) {
        std::fprintf(stderr, "bench_e6: bad --shards list '%s'\n", text);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sweep-procs") == 0) {
      cfg.procs = std::atoi(need_value("--sweep-procs"));
    } else if (std::strcmp(argv[i], "--sweep-ops") == 0) {
      cfg.ops_per_proc = std::atoi(need_value("--sweep-ops"));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      cfg.json_path = need_value("--json");
    } else if (std::strcmp(argv[i], "--no-sweep") == 0) {
      sweep = false;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (cfg.procs < 1 || cfg.ops_per_proc < 1) {
    std::fprintf(stderr, "bench_e6: --sweep-procs/--sweep-ops must be >= 1\n");
    return 2;
  }
  if (sweep) run_shards_sweep(cfg);

  int rest_argc = static_cast<int>(rest.size());
#ifdef DETECT_USE_MINI_BENCH
  return benchmark::internal::run_all(rest_argc, rest.data());
#else
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#endif
}
