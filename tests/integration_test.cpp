// Cross-module integration: multiple objects in one world, mixed workloads
// with crashes, shared-cache mode end-to-end, and longer torture runs checked
// in segments.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario mixed_scenario(core::runtime::fail_policy policy =
                            core::runtime::fail_policy::skip) {
  scenario cfg;
  cfg.nprocs = 3;
  cfg.policy = policy;
  cfg.setup = [](api::harness& h) {
    api::reg r = h.add_reg();
    api::cas c = h.add_cas();
    api::queue q = h.add_queue(32);
    h.script(0, {r.write(1), c.compare_and_set(0, 1), q.enq(7)});
    h.script(1, {c.compare_and_set(0, 2), r.read(), q.deq()});
    h.script(2, {q.enq(9), r.write(5), c.read()});
  };
  return cfg;
}

TEST(integration, mixed_objects_many_seeds) {
  auto cfg = mixed_scenario();
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(integration, mixed_objects_crash_sweep) {
  crash_sweep(mixed_scenario(), 11);
}

TEST(integration, mixed_objects_crash_fuzz_retry) {
  crash_fuzz(mixed_scenario(core::runtime::fail_policy::retry), 80, 2);
}

TEST(integration, shared_cache_mixed_end_to_end) {
  auto cfg = mixed_scenario();
  cfg.shared_cache = true;
  crash_fuzz(cfg, 60, 2);
}

TEST(integration, one_process_uses_many_objects_through_crashes) {
  scenario cfg;
  cfg.nprocs = 2;
  cfg.policy = core::runtime::fail_policy::retry;
  cfg.setup = [](api::harness& h) {
    api::counter ctr = h.add_counter();
    api::max_reg m = h.add_max_reg();
    h.script(0, {ctr.add(1), m.write_max(5), ctr.add(2), m.read(), ctr.read()});
    h.script(1, {ctr.add(10), m.write_max(3)});
  };
  crash_sweep(cfg, 41);
  crash_fuzz(cfg, 60, 3);
}

TEST(integration, algorithm1_and_baseline_agree_across_schedules) {
  // Run the same scripts against Algorithm 1 and the Attiya-style baseline;
  // both must pass the same checker (they implement the same abstract
  // object).
  for (bool use_baseline : {false, true}) {
    auto cfg = one_object<api::reg>(use_baseline ? "attiya_reg" : "reg", 2,
                                    [](api::reg r) {
                                      return scripts{
                                          {0, {r.write(1), r.write(2)}},
                                          {1, {r.write(5), r.read()}},
                                      };
                                    });
    crash_fuzz(cfg, 60, 2, use_baseline ? 0xabc : 0xdef);
  }
}

TEST(integration, torture_long_run_segments) {
  // Longer run: 3 procs × 6 ops with 3 crashes, history checked whole
  // (within the 64-op checker limit).
  auto cfg = one_object<api::reg>(
      "reg", 3,
      std::function<scripts(api::reg)>([](api::reg r) {
        return scripts{
            {0, {r.write(1), r.read(), r.write(2), r.read(), r.write(3), r.read()}},
            {1, {r.write(4), r.read(), r.write(5), r.read(), r.write(6), r.read()}},
            {2, {r.read(), r.write(7), r.read(), r.write(8), r.read(), r.write(9)}},
        };
      }),
      core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 30, 3);
}

TEST(integration, shared_cache_without_transform_is_detectably_broken) {
  // Negative result motivating §6's syntactic transformation: run Algorithm 1
  // in the shared-cache model with auto-persist OFF and no explicit flushes.
  // A completed write whose cache line was never persisted is lost by a
  // crash, and a subsequent read observes the rollback — the checker must
  // reject the history.
  scenario cfg;
  cfg.nprocs = 1;
  cfg.shared_cache = true;
  cfg.auto_persist = false;
  cfg.setup = [](api::harness& h) {
    api::reg r = h.add_reg();
    h.script(0, {r.write(1), r.read()});
  };

  // Crash-free baseline: establish the run length (the crash-free run is
  // correct even without flushes).
  run_outcome probe = run_scenario(cfg, 1);
  ASSERT_TRUE(probe.check.ok) << "crash-free run is fine even without flushes";

  // Now sweep crash points; at least one placement (crash right after the
  // write completed, before the read) must yield a violation.
  bool violation_found = false;
  for (std::uint64_t k = 0; k < probe.report.steps; ++k) {
    auto out = run_scenario(cfg, 1, {k});
    if (!out.check.ok) {
      violation_found = true;
      break;
    }
  }
  EXPECT_TRUE(violation_found)
      << "without persist instructions the shared-cache model must lose a "
         "completed write at some crash point";
}

TEST(integration, step_counts_scale_linearly_with_n) {
  // Wait-freedom (E5 shape): per-op step count grows at most linearly in N
  // for Algorithm 1 (the toggle loop) and is constant for Algorithm 2.
  std::vector<double> reg_steps_per_op;
  std::vector<double> cas_steps_per_op;
  for (int n : {2, 4, 8}) {
    {
      auto h = api::harness::builder().procs(n).build();
      api::reg r = h.add_reg();
      for (int p = 0; p < n; ++p) h.script(p, {r.write(p + 1)});
      auto rep = h.run();
      reg_steps_per_op.push_back(static_cast<double>(rep.steps) / n);
    }
    {
      auto h = api::harness::builder().procs(n).build();
      api::cas c = h.add_cas();
      for (int p = 0; p < n; ++p) h.script(p, {c.compare_and_set(p, p + 1)});
      auto rep = h.run();
      cas_steps_per_op.push_back(static_cast<double>(rep.steps) / n);
    }
  }
  // Register: linear growth — steps/op at N=8 should exceed N=2's.
  EXPECT_GT(reg_steps_per_op[2], reg_steps_per_op[0]);
  // CAS: constant — steps/op at N=8 within 2x of N=2 (announce overhead).
  EXPECT_LT(cas_steps_per_op[2], cas_steps_per_op[0] * 2.0);
}

}  // namespace
