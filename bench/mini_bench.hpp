// mini_bench — vendored fallback for the subset of the google-benchmark API
// that bench_e6_throughput uses, so the cost-of-detectability numbers are
// always reproducible (and CI can smoke-run E6) without the library
// installed. CMake picks this header via DETECT_USE_MINI_BENCH when
// find_package(benchmark) fails; the benchmark source compiles unmodified
// against either.
//
// Scope: BENCHMARK(fn)->Threads(n)->UseRealTime(), BENCHMARK_MAIN(),
// State{thread_index, threads, iterations, SetItemsProcessed, range-for},
// DoNotOptimize. Measurement is a fixed-iteration wall-clock loop (default
// 100000 iterations/thread, override with --iters N or DETECT_BENCH_ITERS)
// — adequate for throughput tables and smoke runs, not for the adaptive
// statistics the real library does.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace benchmark {

class State {
 public:
  State(std::int64_t iters, int thread_index, int threads)
      : iters_(iters), thread_index_(thread_index), threads_(threads) {}

  struct iterator {
    // Non-trivial destructor so `for (auto _ : state)` does not warn about
    // the unused loop variable (mirrors the real library's StateIterator).
    struct value {
      value() {}
      ~value() {}
    };
    std::int64_t left;
    bool operator!=(const iterator& o) const { return left != o.left; }
    void operator++() { --left; }
    value operator*() const { return {}; }
  };
  iterator begin() { return {iters_}; }
  iterator end() { return {0}; }

  int thread_index() const { return thread_index_; }
  int threads() const { return threads_; }
  std::int64_t iterations() const { return iters_; }
  void SetItemsProcessed(std::int64_t n) { items_ = n; }
  std::int64_t items_processed() const { return items_; }

 private:
  std::int64_t iters_;
  int thread_index_;
  int threads_;
  std::int64_t items_ = 0;
};

template <typename T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

namespace internal {

using bench_fn = void (*)(State&);

struct Benchmark {
  std::string name;
  bench_fn fn;
  std::vector<int> thread_counts;

  Benchmark* Threads(int n) {
    thread_counts.push_back(n);
    return this;
  }
  Benchmark* UseRealTime() { return this; }
};

inline std::vector<std::unique_ptr<Benchmark>>& registry() {
  static std::vector<std::unique_ptr<Benchmark>> r;
  return r;
}

inline Benchmark* RegisterBenchmark(const char* name, bench_fn fn) {
  registry().push_back(
      std::make_unique<Benchmark>(Benchmark{name, fn, {}}));
  return registry().back().get();
}

inline void run_one(const Benchmark& b, int threads, std::int64_t iters) {
  std::vector<State> states;
  states.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) states.emplace_back(iters, t, threads);

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 1; t < threads; ++t) {
    workers.emplace_back([&b, &states, t] { b.fn(states[t]); });
  }
  b.fn(states[0]);
  for (std::thread& w : workers) w.join();
  auto stop = std::chrono::steady_clock::now();

  double secs = std::chrono::duration<double>(stop - start).count();
  std::int64_t items = 0;
  for (const State& s : states) items += s.items_processed();
  double total_iters = static_cast<double>(iters) * threads;
  std::printf("%-40s %10.1f ns/op %14.0f items/s  (%d threads, %lld iters)\n",
              (b.name + "/threads:" + std::to_string(threads)).c_str(),
              secs / total_iters * 1e9,
              items > 0 ? static_cast<double>(items) / secs : 0.0, threads,
              static_cast<long long>(iters));
  std::fflush(stdout);
}

inline bool parse_iters(const char* text, std::int64_t* out) {
  char* end = nullptr;
  errno = 0;
  std::int64_t v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < 1) return false;
  *out = v;
  return true;
}

inline int run_all(int argc, char** argv) {
  std::int64_t iters = 100000;
  // Strict parsing, and the State iterator counts down to exactly 0 — a
  // typo must not silently become a meaningless 1-iteration "result" or a
  // ~2^63-iteration hang.
  if (const char* env = std::getenv("DETECT_BENCH_ITERS")) {
    if (!parse_iters(env, &iters)) {
      std::fprintf(stderr,
                   "mini_bench: DETECT_BENCH_ITERS='%s' is not a positive "
                   "number\n",
                   env);
      return 2;
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mini_bench: --iters needs a value\n");
        return 2;
      }
      const char* text = argv[++i];
      if (!parse_iters(text, &iters)) {
        std::fprintf(stderr,
                     "mini_bench: --iters '%s' is not a positive number\n",
                     text);
        return 2;
      }
    }
  }
  std::printf("mini_bench fallback (google-benchmark not installed); "
              "%lld iterations/thread\n\n",
              static_cast<long long>(iters));
  for (const auto& b : registry()) {
    std::vector<int> counts =
        b->thread_counts.empty() ? std::vector<int>{1} : b->thread_counts;
    for (int t : counts) run_one(*b, t, iters);
  }
  return 0;
}

}  // namespace internal
}  // namespace benchmark

#define MINI_BENCH_CONCAT2(a, b) a##b
#define MINI_BENCH_CONCAT(a, b) MINI_BENCH_CONCAT2(a, b)
#define BENCHMARK(fn)                                            \
  static ::benchmark::internal::Benchmark* MINI_BENCH_CONCAT(    \
      mini_bench_reg_, __LINE__) =                               \
      ::benchmark::internal::RegisterBenchmark(#fn, fn)

#define BENCHMARK_MAIN()                                  \
  int main(int argc, char** argv) {                       \
    return ::benchmark::internal::run_all(argc, argv);    \
  }
