// Shared helpers for the experiment binaries: fixed-width table printing and
// a tiny free-running workload driver (no simulator, real threads).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace detect::bench {

/// True when DETECT_SMOKE is set (non-empty, not "0"): experiment binaries
/// shrink their parameter sweeps to seconds-scale subsets so the CI
/// bench-smoke stage (and `scripts/check.sh --bench-smoke`) can execute
/// every E-binary on every push.
inline bool smoke() {
  const char* env = std::getenv("DETECT_SMOKE");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// The sweep for this run: the full parameter list, or the first
/// `smoke_prefix` entries under DETECT_SMOKE.
template <typename T>
std::vector<T> sweep(std::vector<T> full, std::size_t smoke_prefix) {
  if (smoke() && full.size() > smoke_prefix) full.resize(smoke_prefix);
  return full;
}

/// Print a row of fixed-width columns.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline void rule(std::size_t cols, int width = 14) {
  std::printf("%s\n", std::string(cols * static_cast<std::size_t>(width), '-').c_str());
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

}  // namespace detect::bench
