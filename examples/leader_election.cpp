// leader_election — crash-robust one-shot leader election on the detectable
// test-and-set object.
//
// Each candidate performs tas_set(); the unique process that observes the
// previous bit as 0 is the leader. The interesting part is a crash in the
// middle of the race: a recovering candidate must learn whether *it* won —
// precisely the question [3] proved needs unbounded space when implemented
// from TAS base objects, and which the flip-vector capsule answers in Θ(N)
// bits here.
//
// Build & run:  ./build/leader_election
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/api.hpp"

int main() {
  using namespace detect;
  constexpr int k_candidates = 4;

  int total_rounds = 0;
  int unique_leader_rounds = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    auto h = api::harness::builder()
                 .procs(k_candidates)
                 .fail_policy(core::runtime::fail_policy::retry)
                 .seed(seed * 1000003)
                 .crash_random(seed * 999983, 0.03, 3)
                 .build();
    api::tas t = h.add_tas();
    for (int p = 0; p < k_candidates; ++p) h.script(p, {t.set()});

    h.run();

    // The winner is whoever got response 0 (previous bit clear). Crashed
    // candidates learn their outcome from the recovery verdict. A crash
    // between an op's response and the client's durable program counter can
    // produce a duplicate "linearized" report for the same operation, so the
    // tally dedupes on (pid, client_seq).
    std::set<std::pair<int, std::uint64_t>> winner_ops;
    for (const auto& e : h.events()) {
      bool final_resp = e.kind == hist::event_kind::response ||
                        (e.kind == hist::event_kind::recover_result &&
                         e.verdict == hist::recovery_verdict::linearized);
      if (final_resp && e.desc.code == hist::opcode::tas_set && e.value == 0) {
        winner_ops.emplace(e.pid, e.desc.client_seq);
      }
    }
    std::vector<int> winners;
    for (const auto& [pid, seq] : winner_ops) winners.push_back(pid);
    ++total_rounds;
    if (winners.size() == 1) ++unique_leader_rounds;

    auto check = h.check();
    std::printf("round %2llu: leader=%s%s  verified=%s\n",
                static_cast<unsigned long long>(seed),
                winners.size() == 1 ? ("p" + std::to_string(winners[0])).c_str()
                                    : "NONE/MULTIPLE",
                winners.size() == 1 ? "" : " (!)", check.ok ? "yes" : "NO");
    if (!check.ok) {
      std::printf("%s\n", check.message.c_str());
      return 1;
    }
  }
  std::printf("\n%d/%d rounds elected exactly one leader across crashes\n",
              unique_leader_rounds, total_rounds);
  return unique_leader_rounds == total_rounds ? 0 : 1;
}
