// Explicit-state model of Algorithm 1 (detectable read/write register) for
// experiment E9.
//
// §6 leaves open whether a non-trivial space lower bound exists for
// detectable read/write objects. This model produces the empirical side of
// that question: the number of reachable, pairwise memory-distinct shared
// configurations of Algorithm 1 (register R plus the toggle-bit arrays
// A[N][N][2]), i.e. how much of its 2N² + O(log N)-bit footprint the
// algorithm actually *uses*. log2 of the reachable count is a lower bound on
// the bits any implementation reaching the same configurations would need.
//
// Instruments mirror cas_model: a faithful line-by-line small-step model
// (operations, crashes, recoveries) explored by BFS for tiny N, and a
// quiescent-graph abstraction (solo writes from quiescent configurations,
// validated against the full model) for slightly larger N.
#pragma once

#include <cstdint>

#include "theory/cas_model.hpp"  // config_count

namespace detect::theory {

/// Exhaustive BFS over the full Algorithm-1 model: `nprocs` processes,
/// written values drawn from {0..domain-1}, crashes and recoveries included.
config_count rw_bfs_configurations(int nprocs, int domain,
                                   std::uint64_t max_states = 20'000'000);

/// BFS over quiescent configurations only (deterministic solo-write
/// transitions); counts distinct shared (R, A) states.
config_count rw_quiescent_reachability(int nprocs, int domain);

}  // namespace detect::theory
