// Scripted-scenario replay and serialization.
#include "api/replay.hpp"

#include <sstream>
#include <stdexcept>

namespace detect::api {

namespace {

harness build_harness(const scripted_scenario& s) {
  harness::builder b;
  b.procs(s.nprocs).fail_policy(s.policy).seed(s.sched_seed);
  if (!s.crash_steps.empty()) b.crash_at(s.crash_steps);
  if (s.shared_cache) b.shared_cache();
  harness h = b.build();
  object_handle obj = h.add(s.kind, s.params);
  for (const auto& [pid, ops] : s.scripts) {
    if (pid < 0 || pid >= s.nprocs) {
      throw std::invalid_argument("replay: script pid " + std::to_string(pid) +
                                  " out of range for " +
                                  std::to_string(s.nprocs) + " procs");
    }
    std::vector<hist::op_desc> bound = ops;
    for (hist::op_desc& d : bound) d.object = obj.id();
    h.script(pid, std::move(bound));
  }
  return h;
}

scripted_outcome replay_impl(const scripted_scenario& s, bool check) {
  harness h = build_harness(s);
  scripted_outcome out;
  out.report = h.run();
  if (check) out.check = h.check();
  out.events = h.events();
  out.log_text = h.log_text();
  return out;
}

}  // namespace

scripted_outcome replay(const scripted_scenario& s) {
  return replay_impl(s, /*check=*/true);
}

scripted_outcome replay_unchecked(const scripted_scenario& s) {
  return replay_impl(s, /*check=*/false);
}

// ---------------------------------------------------------------------------
// opcode families

const std::vector<hist::opcode>& family_opcodes(op_family family) {
  using hist::opcode;
  static const std::vector<opcode> reg_ops = {opcode::reg_write,
                                              opcode::reg_read};
  static const std::vector<opcode> swap_ops = {opcode::swap, opcode::reg_read};
  static const std::vector<opcode> cas_ops = {opcode::cas, opcode::cas_read};
  static const std::vector<opcode> ctr_ops = {opcode::ctr_add,
                                              opcode::ctr_read};
  static const std::vector<opcode> tas_ops = {opcode::tas_set,
                                              opcode::tas_reset};
  static const std::vector<opcode> queue_ops = {opcode::enq, opcode::deq};
  static const std::vector<opcode> stack_ops = {opcode::push, opcode::pop};
  static const std::vector<opcode> max_ops = {opcode::max_write,
                                              opcode::max_read};
  static const std::vector<opcode> lock_ops = {opcode::lock_try,
                                               opcode::lock_release};
  switch (family) {
    case op_family::reg: return reg_ops;
    case op_family::swap: return swap_ops;
    case op_family::cas: return cas_ops;
    case op_family::counter: return ctr_ops;
    case op_family::tas: return tas_ops;
    case op_family::queue: return queue_ops;
    case op_family::stack: return stack_ops;
    case op_family::max_reg: return max_ops;
    case op_family::lock: return lock_ops;
  }
  throw std::logic_error("family_opcodes: unhandled family");
}

const char* family_name(op_family family) noexcept {
  switch (family) {
    case op_family::reg: return "reg";
    case op_family::swap: return "swap";
    case op_family::cas: return "cas";
    case op_family::counter: return "counter";
    case op_family::tas: return "tas";
    case op_family::queue: return "queue";
    case op_family::stack: return "stack";
    case op_family::max_reg: return "max_reg";
    case op_family::lock: return "lock";
  }
  return "?";
}

hist::opcode opcode_from_name(const std::string& name) {
  // Built from the registered kinds' family alphabets (plus nop): a new
  // opcode is parseable as soon as some registry kind speaks it, with no
  // enum-bound to forget — a family nothing registers cannot appear in a
  // dump in the first place.
  static const std::map<std::string, hist::opcode> table = [] {
    std::map<std::string, hist::opcode> t;
    t.emplace(hist::opcode_name(hist::opcode::nop), hist::opcode::nop);
    const object_registry& reg = object_registry::global();
    for (const std::string& kind : reg.kinds()) {
      for (hist::opcode c : family_opcodes(reg.at(kind).family)) {
        t.emplace(hist::opcode_name(c), c);
      }
    }
    return t;
  }();
  auto it = table.find(name);
  if (it == table.end()) {
    throw std::invalid_argument("opcode_from_name: unknown opcode '" + name +
                                "'");
  }
  return it->second;
}

const char* fail_policy_name(core::runtime::fail_policy p) noexcept {
  return p == core::runtime::fail_policy::retry ? "retry" : "skip";
}

core::runtime::fail_policy fail_policy_from_name(const std::string& name) {
  if (name == "retry") return core::runtime::fail_policy::retry;
  if (name == "skip") return core::runtime::fail_policy::skip;
  throw std::invalid_argument("fail_policy_from_name: unknown policy '" +
                              name + "'");
}

// ---------------------------------------------------------------------------
// dump / parse

std::string dump(const scripted_scenario& s) {
  std::ostringstream os;
  os << "# detect scripted_scenario v1\n";
  os << "kind " << s.kind << "\n";
  os << "params " << s.params.init << " " << s.params.capacity << "\n";
  os << "procs " << s.nprocs << "\n";
  os << "policy " << fail_policy_name(s.policy) << "\n";
  os << "shared_cache " << (s.shared_cache ? 1 : 0) << "\n";
  os << "sched_seed " << s.sched_seed << "\n";
  os << "crash_steps";
  for (std::uint64_t k : s.crash_steps) os << " " << k;
  os << "\n";
  for (const auto& [pid, ops] : s.scripts) {
    os << "script " << pid;
    for (const hist::op_desc& d : ops) {
      os << " " << hist::opcode_name(d.code) << ":" << d.a << ":" << d.b;
    }
    os << "\n";
  }
  return os.str();
}

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw std::invalid_argument("parse_scenario: " + what);
}

}  // namespace

scripted_scenario parse_scenario(const std::string& text) {
  scripted_scenario s;
  bool saw_kind = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "kind") {
      if (!(ls >> s.kind)) malformed("missing kind value");
      saw_kind = true;
    } else if (key == "params") {
      if (!(ls >> s.params.init >> s.params.capacity)) {
        malformed("bad params line: " + line);
      }
    } else if (key == "procs") {
      if (!(ls >> s.nprocs) || s.nprocs <= 0) {
        malformed("bad procs line: " + line);
      }
    } else if (key == "policy") {
      std::string p;
      if (!(ls >> p)) malformed("missing policy value");
      s.policy = fail_policy_from_name(p);
    } else if (key == "shared_cache") {
      int v = 0;
      if (!(ls >> v)) malformed("bad shared_cache line: " + line);
      s.shared_cache = v != 0;
    } else if (key == "sched_seed") {
      if (!(ls >> s.sched_seed)) malformed("bad sched_seed line: " + line);
    } else if (key == "crash_steps") {
      std::uint64_t k;
      while (ls >> k) s.crash_steps.push_back(k);
    } else if (key == "script") {
      int pid = -1;
      if (!(ls >> pid)) malformed("bad script line: " + line);
      std::vector<hist::op_desc> ops;
      std::string tok;
      while (ls >> tok) {
        // name:a:b
        std::size_t c1 = tok.find(':');
        std::size_t c2 = tok.rfind(':');
        if (c1 == std::string::npos || c2 == c1) {
          malformed("bad op token '" + tok + "'");
        }
        hist::op_desc d;
        d.code = opcode_from_name(tok.substr(0, c1));
        try {
          d.a = std::stoll(tok.substr(c1 + 1, c2 - c1 - 1));
          d.b = std::stoll(tok.substr(c2 + 1));
        } catch (const std::exception&) {
          malformed("bad op arguments in '" + tok + "'");
        }
        ops.push_back(d);
      }
      s.scripts[pid] = std::move(ops);
    } else {
      malformed("unknown key '" + key + "'");
    }
  }
  if (!saw_kind) malformed("missing kind");
  return s;
}

}  // namespace detect::api
