#include "theory/cas_model.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace detect::theory {

namespace {

constexpr int k_max_procs = 8;  // full-model BFS is for small N only

// Program counters of the small-step encoding. Operation lines follow the
// paper's numbering; recovery lines likewise.
enum pc : std::uint8_t {
  pc_idle = 0,
  pc_l28,       // about to read C
  pc_l30,       // value mismatch: about to persist resp=false
  pc_l33,       // about to persist RD_p (flipped bit)
  pc_l34,       // about to set checkpoint
  pc_l35,       // about to CAS
  pc_l36,       // about to persist CAS response
  // recovery
  pc_r38,       // about to read Ann.resp
  pc_r40,       // about to read Ann.CP
  pc_r42,       // about to read C (vec bit)
  pc_r45,       // about to persist resp=true
};

struct mproc {
  std::uint8_t pc = pc_idle;
  // volatile locals (lost on crash)
  std::int8_t lval = 0;       // value read at line 28
  std::uint8_t lvec = 0;      // vec read at line 28 (N ≤ 8 bits here)
  std::uint8_t lres = 0;      // CAS outcome / bit read in recovery
  // private NVM (survives crashes)
  std::uint8_t rd = 0;        // RD_p
  std::uint8_t ann_cp = 0;
  std::int8_t ann_resp = -1;  // -1 = ⊥, 0 = false, 1 = true
  std::uint8_t has_op = 0;    // announcement valid
  std::int8_t op_old = 0;
  std::int8_t op_new = 0;

  friend bool operator==(const mproc&, const mproc&) = default;
};

struct mconfig {
  std::int8_t cval = 0;
  std::uint8_t vec = 0;
  std::array<mproc, k_max_procs> procs{};

  friend bool operator==(const mconfig&, const mconfig&) = default;

  std::string key(int n) const {
    std::string s;
    s.reserve(2 + static_cast<std::size_t>(n) * sizeof(mproc));
    s.push_back(static_cast<char>(cval));
    s.push_back(static_cast<char>(vec));
    for (int i = 0; i < n; ++i) {
      const char* raw = reinterpret_cast<const char*>(&procs[static_cast<std::size_t>(i)]);
      s.append(raw, sizeof(mproc));
    }
    return s;
  }
  std::uint32_t shared_key() const {
    return static_cast<std::uint32_t>(static_cast<std::uint8_t>(cval)) << 8 |
           vec;
  }
};

// Apply one step of process p; returns the successor configuration.
// Exactly one memory access per transition (invocation/response bookkeeping
// is folded into adjacent steps; it touches no shared memory, so the shared
// projection is unaffected).
mconfig step(const mconfig& c, int p) {
  mconfig n = c;
  mproc& m = n.procs[static_cast<std::size_t>(p)];
  switch (m.pc) {
    case pc_l28:  // read C
      m.lval = c.cval;
      m.lvec = c.vec;
      m.pc = (m.lval != m.op_old) ? pc_l30 : pc_l33;
      break;
    case pc_l30:  // resp := false; return
      m.ann_resp = 0;
      m.has_op = 0;
      m.pc = pc_idle;
      break;
    case pc_l33:  // RD_p := flipped bit
      m.rd = static_cast<std::uint8_t>(((m.lvec ^ (1u << p)) >> p) & 1u);
      m.pc = pc_l34;
      break;
    case pc_l34:  // Ann.CP := 1
      m.ann_cp = 1;
      m.pc = pc_l35;
      break;
    case pc_l35:  // CAS(⟨lval,lvec⟩ → ⟨new, lvec ⊕ e_p⟩)
      if (c.cval == m.lval && c.vec == m.lvec) {
        n.cval = m.op_new;
        n.vec = static_cast<std::uint8_t>(c.vec ^ (1u << p));
        m.lres = 1;
      } else {
        m.lres = 0;
      }
      m.pc = pc_l36;
      break;
    case pc_l36:  // resp := lres; return
      m.ann_resp = static_cast<std::int8_t>(m.lres);
      m.has_op = 0;
      m.pc = pc_idle;
      break;
    case pc_r38:  // read Ann.resp
      m.pc = (m.ann_resp != -1) ? pc_idle : pc_r40;
      if (m.pc == pc_idle) m.has_op = 0;  // recovery returned the response
      break;
    case pc_r40:  // read Ann.CP
      if (m.ann_cp == 0) {  // fail: client gives up (skip policy)
        m.has_op = 0;
        m.pc = pc_idle;
      } else {
        m.pc = pc_r42;
      }
      break;
    case pc_r42:  // read C, extract vec[p]
      m.lres = static_cast<std::uint8_t>((c.vec >> p) & 1u);
      m.pc = (m.lres != m.rd) ? pc_idle : pc_r45;  // fail → idle
      if (m.pc == pc_idle) m.has_op = 0;
      break;
    case pc_r45:  // resp := true; return true
      m.ann_resp = 1;
      m.has_op = 0;
      m.pc = pc_idle;
      break;
    default:
      throw std::logic_error("cas_model: step on idle process");
  }
  return n;
}

// Invocation: announce Cas(old, new) with caller-side auxiliary resets.
mconfig invoke(const mconfig& c, int p, int old_v, int new_v) {
  mconfig n = c;
  mproc& m = n.procs[static_cast<std::size_t>(p)];
  m.has_op = 1;
  m.op_old = static_cast<std::int8_t>(old_v);
  m.op_new = static_cast<std::int8_t>(new_v);
  m.ann_cp = 0;
  m.ann_resp = -1;
  m.pc = pc_l28;
  return n;
}

// System-wide crash: volatile locals wiped, in-flight processes enter
// recovery dispatch, NVM (shared cell, RD, Ann) survives.
mconfig crash(const mconfig& c, int nprocs) {
  mconfig n = c;
  for (int p = 0; p < nprocs; ++p) {
    mproc& m = n.procs[static_cast<std::size_t>(p)];
    m.lval = 0;
    m.lvec = 0;
    m.lres = 0;
    m.pc = (m.has_op != 0) ? pc_r38 : pc_idle;
  }
  return n;
}

}  // namespace

config_count bfs_configurations(int nprocs, int domain,
                                std::uint64_t max_states) {
  if (nprocs < 1 || nprocs > k_max_procs) {
    throw std::invalid_argument("bfs_configurations: 1 <= N <= 8");
  }
  if (domain < 2 || domain > 127) {
    throw std::invalid_argument("bfs_configurations: 2 <= domain <= 127");
  }
  config_count out;
  std::unordered_set<std::string> seen;
  std::unordered_set<std::uint32_t> shared_seen;
  std::deque<mconfig> frontier;

  mconfig init;
  seen.insert(init.key(nprocs));
  shared_seen.insert(init.shared_key());
  frontier.push_back(init);

  auto visit = [&](const mconfig& c) {
    auto [it, fresh] = seen.insert(c.key(nprocs));
    if (fresh) {
      shared_seen.insert(c.shared_key());
      frontier.push_back(c);
    }
  };

  while (!frontier.empty()) {
    if (seen.size() >= max_states) {
      out.complete = false;
      break;
    }
    mconfig c = frontier.front();
    frontier.pop_front();

    for (int p = 0; p < nprocs; ++p) {
      const mproc& m = c.procs[static_cast<std::size_t>(p)];
      if (m.pc == pc_idle) {
        // Operation universe: Cas(i, (i+1) mod domain) plus the
        // self-swap Cas(i, i). The self-swap succeeds and flips vec[p]
        // without changing the value, decoupling the value from the flip
        // vector (with increments alone the two stay parity-correlated for
        // even domain sizes) while keeping BFS tractable.
        for (int i = 0; i < domain; ++i) {
          visit(invoke(c, p, i, (i + 1) % domain));
          visit(invoke(c, p, i, i));
        }
      } else {
        visit(step(c, p));
      }
    }
    visit(crash(c, nprocs));
  }

  out.total_configs = seen.size();
  out.shared_configs = shared_seen.size();
  return out;
}

config_count quiescent_reachability(int nprocs, int domain) {
  if (nprocs < 1 || nprocs > 24) {
    throw std::invalid_argument("quiescent_reachability: 1 <= N <= 24");
  }
  config_count out;
  // Shared state = value * 2^N + vec; derived transition: from a quiescent
  // (v, vec), a solo successful Cas_p(v, v') reaches (v', vec ^ e_p). The
  // operation universe matches the full model: v' ∈ {v, v+1 mod domain}.
  std::unordered_set<std::uint64_t> seen;
  std::deque<std::uint64_t> frontier;
  const std::uint64_t vec_space = std::uint64_t{1} << nprocs;
  seen.insert(0);
  frontier.push_back(0);
  while (!frontier.empty()) {
    std::uint64_t s = frontier.front();
    frontier.pop_front();
    std::uint64_t vec = s % vec_space;
    std::uint64_t val = s / vec_space;
    for (int p = 0; p < nprocs; ++p) {
      const std::uint64_t succs[2] = {val, (val + 1) % domain};
      for (std::uint64_t v2 : succs) {
        std::uint64_t next = v2 * vec_space + (vec ^ (1ull << p));
        if (seen.insert(next).second) frontier.push_back(next);
      }
    }
  }
  out.total_configs = seen.size();
  out.shared_configs = seen.size();
  return out;
}

std::uint64_t gray_code_walk(int nprocs, int domain) {
  if (nprocs < 1 || nprocs > 30) {
    throw std::invalid_argument("gray_code_walk: 1 <= N <= 30");
  }
  if (nprocs > k_max_procs) {
    // The walk only needs the quiescent transition; emulate directly.
    std::unordered_set<std::uint64_t> shared;
    std::uint64_t vec = 0;
    int val = 0;
    shared.insert(0);
    const std::uint64_t total = std::uint64_t{1} << nprocs;
    for (std::uint64_t g = 1; g < total; ++g) {
      int p = std::countr_zero(g);  // Gray code: flip bit index of lowest set
      vec ^= (1ull << p);
      val = (val + 1) % domain;
      shared.insert(static_cast<std::uint64_t>(val) * total + vec);
    }
    return shared.size();
  }
  // Small N: drive the faithful model, one solo successful CAS per flip.
  std::unordered_set<std::uint32_t> shared;
  mconfig c;
  shared.insert(c.shared_key());
  const std::uint32_t total = 1u << nprocs;
  for (std::uint32_t g = 1; g < total; ++g) {
    int p = std::countr_zero(g);
    int cur = c.cval;
    c = invoke(c, p, cur, (cur + 1) % domain);
    while (c.procs[static_cast<std::size_t>(p)].pc != pc_idle) {
      c = step(c, p);
      shared.insert(c.shared_key());
    }
  }
  return shared.size();
}

std::uint64_t theorem1_bound(int nprocs) {
  if (nprocs >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << nprocs) - 1;
}

}  // namespace detect::theory
