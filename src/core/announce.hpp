// Per-process announcement structure Ann_p (§2).
//
// Ann_p.op    — type + arguments of the recoverable operation in flight,
//               written by the *caller* immediately before invoking.
// Ann_p.resp  — the operation's response; initialized to ⊥ by the caller,
//               persisted by the operation before returning.
// Ann_p.CP    — checkpoint counter; set to 0 by the caller, advanced by the
//               operation to let recovery infer where the crash struck.
//
// The caller-side resets of resp/CP are exactly the "auxiliary state provided
// by the system" in the sense of Definition 1 — Theorem 2 proves detectable
// implementations of doubly-perturbing objects cannot do without them. Two
// more fields support the client runtime itself: `valid` marks a live
// announcement, and `done_seq` is the client's durable program counter
// (private client bookkeeping, not state passed into operations).
#pragma once

#include <memory>
#include <vector>

#include "history/event.hpp"
#include "nvm/pvar.hpp"

namespace detect::core {

using hist::value_t;

struct ann_fields {
  explicit ann_fields(nvm::pmem_domain& dom)
      : op(hist::op_desc{}, dom),
        resp(hist::k_bottom, dom),
        cp(0, dom),
        valid(0, dom),
        done_seq(0, dom) {}

  nvm::pvar<hist::op_desc> op;
  nvm::pvar<value_t> resp;
  nvm::pvar<int> cp;
  nvm::pvar<std::uint8_t> valid;
  nvm::pvar<std::uint64_t> done_seq;
};

/// The announcement structures of all N processes. Shared by every object a
/// process uses (a process runs one operation at a time).
class announcement_board {
 public:
  announcement_board(int nprocs, nvm::pmem_domain& dom) {
    anns_.reserve(static_cast<std::size_t>(nprocs));
    for (int i = 0; i < nprocs; ++i) {
      anns_.push_back(std::make_unique<ann_fields>(dom));
    }
  }

  ann_fields& of(int pid) { return *anns_.at(static_cast<std::size_t>(pid)); }
  int nprocs() const noexcept { return static_cast<int>(anns_.size()); }

 private:
  std::vector<std::unique_ptr<ann_fields>> anns_;
};

}  // namespace detect::core
