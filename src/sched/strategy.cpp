#include "sched/strategy.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace detect::sched {

const char* strategy_name(strategy s) noexcept {
  switch (s) {
    case strategy::round_robin:
      return "round_robin";
    case strategy::uniform_random:
      return "uniform_random";
    case strategy::pct:
      return "pct";
  }
  return "unknown";
}

std::optional<strategy> strategy_from_name(const std::string& name) noexcept {
  if (name == "round_robin") return strategy::round_robin;
  if (name == "uniform_random") return strategy::uniform_random;
  if (name == "pct") return strategy::pct;
  return std::nullopt;
}

std::string sched_policy::to_string() const {
  std::string out = strategy_name(strat);
  for (std::uint64_t p : pct_points) out += " " + std::to_string(p);
  return out;
}

sched_policy sched_policy::parse(const std::string& text) {
  std::istringstream in(text);
  std::string name;
  if (!(in >> name)) {
    throw std::invalid_argument("sched_policy: empty strategy");
  }
  std::optional<strategy> s = strategy_from_name(name);
  if (!s) {
    throw std::invalid_argument("sched_policy: unknown strategy '" + name +
                                "'");
  }
  sched_policy out;
  out.strat = *s;
  std::string tok;
  while (in >> tok) {
    if (out.strat != strategy::pct) {
      throw std::invalid_argument(
          "sched_policy: preemption points only apply to pct");
    }
    std::size_t used = 0;
    std::uint64_t v = 0;
    try {
      v = std::stoull(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != tok.size()) {
      throw std::invalid_argument("sched_policy: bad preemption point '" +
                                  tok + "'");
    }
    out.pct_points.push_back(v);
  }
  std::sort(out.pct_points.begin(), out.pct_points.end());
  out.pct_points.erase(
      std::unique(out.pct_points.begin(), out.pct_points.end()),
      out.pct_points.end());
  return out;
}

std::vector<std::uint64_t> draw_pct_points(std::uint64_t seed, int depth,
                                           std::uint64_t horizon) {
  if (horizon == 0) horizon = 1;
  std::uint64_t s = seed | 1;
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(depth > 0 ? depth : 0));
  for (int i = 0; i < depth; ++i) {
    out.push_back(1 + sim::next_rand(s) % horizon);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

pct_scheduler::pct_scheduler(std::uint64_t seed,
                             std::vector<std::uint64_t> points)
    : state_(seed | 1), seed_(seed), points_(std::move(points)) {
  std::sort(points_.begin(), points_.end());
}

std::int64_t pct_scheduler::priority_of(int pid) {
  auto it = prio_.find(pid);
  if (it != prio_.end()) return it->second;
  // Positive initial priorities; demotions go negative, so a demoted process
  // stays below every late arrival too.
  std::int64_t p = static_cast<std::int64_t>(sim::next_rand(state_) >> 1);
  prio_.emplace(pid, p);
  return p;
}

int pct_scheduler::top_runnable(const std::vector<int>& runnable) {
  int best = runnable.front();
  std::int64_t best_p = priority_of(best);
  for (std::size_t i = 1; i < runnable.size(); ++i) {
    std::int64_t p = priority_of(runnable[i]);
    if (p > best_p) {
      best = runnable[i];
      best_p = p;
    }
  }
  return best;
}

int pct_scheduler::pick(const std::vector<int>& runnable,
                        std::uint64_t step_no) {
  while (next_point_ < points_.size() && points_[next_point_] <= step_no) {
    prio_[top_runnable(runnable)] = demote_floor_--;
    ++next_point_;
    ++applied_;
  }
  return top_runnable(runnable);
}

std::string pct_scheduler::describe() const {
  return "pct(seed=" + std::to_string(seed_) +
         ", budget=" + std::to_string(points_.size()) +
         ", applied=" + std::to_string(applied_) + ")";
}

std::unique_ptr<sim::scheduler> make_scheduler(
    const sched_policy& policy, std::optional<std::uint64_t> seed) {
  switch (policy.strat) {
    case strategy::round_robin:
      return std::make_unique<sim::round_robin_scheduler>();
    case strategy::uniform_random:
      if (seed) return std::make_unique<sim::random_scheduler>(*seed);
      return std::make_unique<sim::round_robin_scheduler>();
    case strategy::pct:
      return std::make_unique<pct_scheduler>(seed.value_or(0),
                                             policy.pct_points);
  }
  return std::make_unique<sim::round_robin_scheduler>();
}

}  // namespace detect::sched
