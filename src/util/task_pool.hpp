// util::task_pool — a persistent batch-draining worker pool.
//
// Generalized from the sharded executor's driver pool so the per-object
// checker can fan sub-checks onto the same machinery. Workers live for the
// pool's lifetime (thousands of run_batch() calls reuse the same OS threads
// instead of paying a spawn/join per batch), and — unlike the original
// executor-private pool — batches are independently tracked, so *concurrent*
// run_batch() calls from different submitter threads interleave safely on the
// shared workers: each batch carries its own completion counter and the
// submitter blocks only on its own jobs.
//
// With zero workers the pool degrades to inline execution on the submitting
// thread — identical semantics, zero synchronization — which is the graceful
// fallback on one-core hosts where parallel drivers would only add handoff
// latency.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace detect::util {

class task_pool {
 public:
  /// Hard cap on pool growth: far above any real shard count or per-object
  /// fan-out, small enough that a buggy jobs value cannot fork-bomb threads.
  static constexpr int k_max_workers = 64;

  explicit task_pool(int workers);
  ~task_pool();

  task_pool(const task_pool&) = delete;
  task_pool& operator=(const task_pool&) = delete;

  int workers() const noexcept;

  /// Grow the pool to at least `n` workers (capped at k_max_workers;
  /// shrinking is not supported — idle workers cost one parked thread each).
  /// Thread-safe against concurrent run_batch() calls.
  void ensure_workers(int n);

  /// Run every job to completion. Jobs must not throw (callers capture
  /// exceptions into per-job result slots). Inline on the submitting thread
  /// when the pool has no workers. Safe to call from several threads at
  /// once; each call blocks until exactly its own jobs drain.
  void run_batch(std::vector<std::function<void()>>& jobs);

  /// Process-global pool, lazily created with zero workers. Consumers that
  /// want parallelism call ensure_workers() first; until someone does, every
  /// shared batch runs inline. The per-object checker drives its jobs > 1
  /// fan-out through this instance so repeated check calls reuse one set of
  /// threads.
  static task_pool& shared();

 private:
  // Submitted jobs point back at their batch so any worker can retire work
  // from any batch; the batch outlives the queue entries because the
  // submitting run_batch() call keeps it alive on its stack until all of its
  // jobs report done.
  struct batch {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining = 0;
  };
  struct queued_job {
    std::function<void()> fn;
    batch* owner = nullptr;
  };

  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;  // workers: work available / stop
  std::deque<queued_job> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace detect::util
